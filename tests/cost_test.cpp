// Unit tests for src/cost: grid interpolation and the profiled cost models,
// including the honesty property (exact at grid points, bounded error between).
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "src/cost/grid_interp.h"
#include "src/cost/pipeline_cost_model.h"
#include "src/cost/stage_cost_model.h"
#include "src/model/hardware_spec.h"
#include "src/model/model_config.h"
#include "src/model/stage_perf_model.h"

namespace dynapipe::cost {
namespace {

using model::MicroBatchShape;
using model::RecomputeMode;

// ---------- GridInterp3D ----------

TEST(GridInterp3DTest, ExactAtGridPoints) {
  GridInterp3D g({1.0, 2.0}, {10.0, 20.0}, {0.0, 5.0},
                 {{{1.0, 2.0}, {3.0, 4.0}}, {{5.0, 6.0}, {7.0, 8.0}}});
  EXPECT_DOUBLE_EQ(g(1, 10, 0), 1.0);
  EXPECT_DOUBLE_EQ(g(2, 20, 5), 8.0);
  EXPECT_DOUBLE_EQ(g(1, 20, 0), 3.0);
}

TEST(GridInterp3DTest, TrilinearFunctionReproducedExactly) {
  auto f = [](double x, double y, double z) {
    return 1.0 + 2.0 * x + 3.0 * y + 4.0 * z + 5.0 * x * y + 6.0 * y * z +
           7.0 * x * z + 8.0 * x * y * z;
  };
  std::vector<double> xs{0.0, 1.0, 2.0};
  std::vector<double> ys{0.0, 3.0};
  std::vector<double> zs{1.0, 4.0, 9.0};
  std::vector<std::vector<std::vector<double>>> v(
      xs.size(), std::vector<std::vector<double>>(ys.size(),
                                                  std::vector<double>(zs.size())));
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = 0; j < ys.size(); ++j) {
      for (size_t k = 0; k < zs.size(); ++k) {
        v[i][j][k] = f(xs[i], ys[j], zs[k]);
      }
    }
  }
  GridInterp3D g(xs, ys, zs, v);
  EXPECT_NEAR(g(0.5, 1.5, 2.0), f(0.5, 1.5, 2.0), 1e-9);
  EXPECT_NEAR(g(1.9, 0.1, 8.0), f(1.9, 0.1, 8.0), 1e-9);
}

TEST(GridInterp3DTest, DegenerateAxesBehaveAsConstant) {
  GridInterp3D g({1.0, 2.0}, {5.0}, {0.0}, {{{10.0}}, {{20.0}}});
  EXPECT_DOUBLE_EQ(g(1.5, 999.0, -5.0), 15.0);
}

TEST(GridInterp3DTest, ExtrapolatesBeyondEdges) {
  GridInterp3D g({0.0, 1.0}, {0.0}, {0.0}, {{{0.0}}, {{10.0}}});
  EXPECT_DOUBLE_EQ(g(2.0, 0.0, 0.0), 20.0);
}

// ---------- StageCostModel ----------

class StageCostModelTest : public ::testing::Test {
 protected:
  StageCostModelTest()
      : config_(model::ModelConfig::Gpt3_35B()),
        layouts_(model::PartitionStages(config_, 2)),
        truth_(config_, hw_, layouts_[0], 1) {
    options_.max_microbatch_size = 32;
    options_.min_seq_len = 32;
    options_.max_seq_len = 8192;
    options_.profile_target_axis = false;
    cm_ = StageCostModel::Profile(truth_, options_);
  }

  model::ModelConfig config_;
  model::HardwareSpec hw_;
  std::vector<model::StageLayout> layouts_;
  model::StagePerfModel truth_;
  ProfileOptions options_;
  StageCostModel cm_;
};

TEST_F(StageCostModelTest, ExactAtProfiledGridPoints) {
  for (int32_t b : {1, 2, 8, 32}) {
    for (int32_t s : {32, 256, 2048, 8192}) {
      MicroBatchShape shape{b, s, 0};
      EXPECT_NEAR(cm_.FwdMs(shape), truth_.FwdMs(shape), 1e-9)
          << "b=" << b << " s=" << s;
      EXPECT_NEAR(cm_.BwdMs(shape, RecomputeMode::kNone),
                  truth_.BwdMs(shape, RecomputeMode::kNone), 1e-9);
      EXPECT_NEAR(cm_.ActivationMb(shape, RecomputeMode::kNone),
                  truth_.ActivationMb(shape, RecomputeMode::kNone), 1e-6);
    }
  }
}

TEST_F(StageCostModelTest, InterpolationErrorBoundedOffGrid) {
  // Off-grid queries carry interpolation error but should stay within ~20% — the
  // regime that makes Fig. 18 meaningful.
  for (int32_t b : {3, 5, 12, 24}) {
    for (int32_t s : {100, 300, 1000, 3000, 6000}) {
      MicroBatchShape shape{b, s, 0};
      const double est = cm_.FwdMs(shape);
      const double act = truth_.FwdMs(shape);
      EXPECT_NEAR(est / act, 1.0, 0.2) << "b=" << b << " s=" << s;
    }
  }
}

TEST_F(StageCostModelTest, MonotoneInMicroBatchSize) {
  for (int32_t s : {128, 512, 2048}) {
    double prev = 0.0;
    for (int32_t b = 1; b <= 32; b *= 2) {
      const double t = cm_.FwdMs({b, s, 0});
      EXPECT_GT(t, prev);
      prev = t;
    }
  }
}

TEST_F(StageCostModelTest, MonotoneInSequenceLength) {
  double prev = 0.0;
  for (int32_t s = 32; s <= 8192; s *= 2) {
    const double t = cm_.FwdMs({4, s, 0});
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_F(StageCostModelTest, RecomputeOrderingSurvivesProfiling) {
  MicroBatchShape shape{4, 1024, 0};
  EXPECT_LT(cm_.BwdMs(shape, RecomputeMode::kNone),
            cm_.BwdMs(shape, RecomputeMode::kSelective));
  EXPECT_LT(cm_.BwdMs(shape, RecomputeMode::kSelective),
            cm_.BwdMs(shape, RecomputeMode::kFull));
  EXPECT_GT(cm_.ActivationMb(shape, RecomputeMode::kNone),
            cm_.ActivationMb(shape, RecomputeMode::kFull));
}

TEST_F(StageCostModelTest, AlwaysPositive) {
  // Extrapolation below the profiled grid must never return non-positive times.
  EXPECT_GT(cm_.FwdMs({1, 1, 0}), 0.0);
  EXPECT_GE(cm_.ActivationMb({1, 1, 0}, RecomputeMode::kFull), 0.0);
}

// ---------- PipelineCostModel ----------

class PipelineCostModelTest : public ::testing::Test {
 protected:
  PipelineCostModelTest() : config_(model::ModelConfig::T5_11B()) {
    parallel_ = {2, 1, 4};  // dp2 tp1 pp4 = 8 GPUs
    options_.max_microbatch_size = 16;
    options_.max_seq_len = 4096;
    pcm_ = PipelineCostModel::Profile(config_, hw_, parallel_, options_);
  }

  model::ModelConfig config_;
  model::HardwareSpec hw_;
  model::ParallelConfig parallel_;
  ProfileOptions options_;
  PipelineCostModel pcm_;
};

TEST_F(PipelineCostModelTest, HasOneCostModelPerStage) {
  EXPECT_EQ(pcm_.num_stages(), 4);
}

TEST_F(PipelineCostModelTest, MicroBatchTimeIsBottleneckStage) {
  MicroBatchShape shape{4, 512, 128};
  double worst = 0.0;
  for (int32_t s = 0; s < 4; ++s) {
    worst = std::max(worst, pcm_.StageFwdMs(s, shape) +
                                pcm_.StageBwdMs(s, shape, RecomputeMode::kNone));
  }
  EXPECT_DOUBLE_EQ(pcm_.MicroBatchTimeMs(shape, RecomputeMode::kNone), worst);
}

TEST_F(PipelineCostModelTest, ActivationBudgetPositiveForThisModel) {
  // T5-11B over 4 stages with ZeRO-1(dp=2) fits A100-40GB with room to spare.
  EXPECT_GT(pcm_.ActivationBudgetMb(), 1000.0);
}

TEST_F(PipelineCostModelTest, StaticMemoryAccountsZero1Sharding) {
  model::ParallelConfig dp1{1, 1, 4};
  PipelineCostModel pcm_dp1 =
      PipelineCostModel::Profile(config_, hw_, dp1, options_);
  EXPECT_GT(pcm_dp1.StaticMemoryMb(0), pcm_.StaticMemoryMb(0));
}

TEST_F(PipelineCostModelTest, BoundaryBytesMatchShapeMath) {
  MicroBatchShape shape{2, 512, 128};
  // Stage 0 of T5 pp4 is pure encoder: b*s_enc*h*2 bytes.
  EXPECT_EQ(pcm_.BoundaryBytes(0, shape),
            static_cast<int64_t>(2 * 512 * 1024 * 2));
  // Stage 2 is decoder-side: carries decoder + encoder streams.
  EXPECT_EQ(pcm_.BoundaryBytes(2, shape),
            static_cast<int64_t>(2 * (512 + 128) * 1024 * 2));
}

TEST_F(PipelineCostModelTest, TransferTimeIncreasesWithBytes) {
  const double small = pcm_.TransferMs(0, 1, 1'000'000);
  const double large = pcm_.TransferMs(0, 1, 100'000'000);
  EXPECT_GT(large, small);
}

TEST_F(PipelineCostModelTest, InterNodeBoundarySlower) {
  // With tp=4 on 8-GPU nodes, stage 1 -> 2 crosses the node boundary.
  model::ParallelConfig tp4{1, 4, 2};
  PipelineCostModel pcm = PipelineCostModel::Profile(config_, hw_, tp4, options_);
  const int64_t bytes = 50'000'000;
  EXPECT_GT(pcm.TransferMs(1, 2, bytes), pcm_.TransferMs(0, 1, bytes));
}

TEST_F(PipelineCostModelTest, DpGradSyncPositiveOnlyWithReplicas) {
  EXPECT_GT(pcm_.DpGradSyncMs(), 0.0);
  model::ParallelConfig dp1{1, 1, 4};
  PipelineCostModel pcm_dp1 =
      PipelineCostModel::Profile(config_, hw_, dp1, options_);
  EXPECT_DOUBLE_EQ(pcm_dp1.DpGradSyncMs(), 0.0);
}

TEST_F(PipelineCostModelTest, GptProfileSkipsTargetAxis) {
  // GPT shapes carry target_len = 0; the cost model must handle them.
  model::ModelConfig gpt = model::ModelConfig::Gpt3_35B();
  model::ParallelConfig par{1, 1, 2};
  PipelineCostModel pcm = PipelineCostModel::Profile(gpt, hw_, par, options_);
  EXPECT_GT(pcm.MicroBatchTimeMs({4, 512, 0}, RecomputeMode::kNone), 0.0);
}

}  // namespace
}  // namespace dynapipe::cost

// ---------- Serialization ----------

namespace dynapipe::cost {
namespace {

TEST(SerializationTest, GridRoundTripsExactly) {
  GridInterp3D g({1.0, 2.0, 4.0}, {10.0, 20.0}, {0.0, 5.0, 9.0},
                 std::vector<std::vector<std::vector<double>>>(
                     3, std::vector<std::vector<double>>(
                            2, std::vector<double>{1.5, 2.25, 3.125})));
  std::stringstream ss;
  g.Save(ss);
  const GridInterp3D loaded = GridInterp3D::Load(ss);
  for (double x : {1.0, 1.7, 3.9, 8.0}) {
    for (double y : {10.0, 13.0, 25.0}) {
      for (double z : {0.0, 4.4, 9.0}) {
        EXPECT_DOUBLE_EQ(loaded(x, y, z), g(x, y, z));
      }
    }
  }
}

TEST(SerializationTest, PipelineProfileRoundTrips) {
  const model::ModelConfig config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  const model::ParallelConfig parallel{1, 1, 2};
  ProfileOptions opts;
  opts.max_microbatch_size = 8;
  opts.max_seq_len = 1024;
  const PipelineCostModel original =
      PipelineCostModel::Profile(config, hw, parallel, opts);
  std::stringstream ss;
  original.SaveProfile(ss);
  const PipelineCostModel loaded =
      PipelineCostModel::LoadProfile(config, hw, parallel, ss);
  for (int32_t b : {1, 3, 8}) {
    for (int32_t s : {64, 300, 1024}) {
      model::MicroBatchShape shape{b, s, 0};
      EXPECT_DOUBLE_EQ(loaded.MicroBatchTimeMs(shape, model::RecomputeMode::kNone),
                       original.MicroBatchTimeMs(shape, model::RecomputeMode::kNone));
      EXPECT_DOUBLE_EQ(
          loaded.MaxActivationMb(shape, model::RecomputeMode::kSelective),
          original.MaxActivationMb(shape, model::RecomputeMode::kSelective));
    }
  }
  // Exact-math parts are rebuilt, not serialized.
  EXPECT_DOUBLE_EQ(loaded.StaticMemoryMb(0), original.StaticMemoryMb(0));
  EXPECT_EQ(loaded.BoundaryBytes(0, {2, 512, 0}),
            original.BoundaryBytes(0, {2, 512, 0}));
}

}  // namespace
}  // namespace dynapipe::cost
