// Tests for src/runtime: ground truth wiring, iteration planning (DynaPipe and
// baseline), the instruction store, the trainer loop, and grid search.
#include <gtest/gtest.h>

#include "src/comm/verify.h"
#include "src/data/flan_generator.h"
#include "src/runtime/grid_search.h"
#include "src/runtime/ground_truth.h"
#include "src/runtime/instruction_store.h"
#include "src/runtime/planner.h"
#include "src/runtime/trainer.h"

namespace dynapipe::runtime {
namespace {

// Small, fast profile for tests.
cost::ProfileOptions TestProfile() {
  cost::ProfileOptions opts;
  opts.max_microbatch_size = 32;
  opts.max_seq_len = 4096;
  return opts;
}

PlannerOptions FastPlanner() {
  PlannerOptions opts;
  opts.max_tmax_candidates = 48;
  opts.tmax_interval_ms = 0.5;
  opts.max_microbatch_size = 32;
  opts.reorder_clusters = 2;
  opts.dynamic_recompute = false;  // keep tests fast; dedicated tests enable it
  return opts;
}

std::vector<data::Sample> TestMiniBatch(int n, uint64_t seed, int32_t max_len = 1024) {
  data::FlanGeneratorOptions gen;
  gen.num_samples = n;
  gen.seed = seed;
  gen.length_cap = max_len;
  const data::Dataset d = data::GenerateFlanLikeDataset(gen);
  return d.samples();
}

// ---------- SimGroundTruth ----------

TEST(SimGroundTruthTest, MatchesStageModelsWithoutNoise) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  const model::ParallelConfig par{1, 1, 4};
  SimGroundTruth gt(config, hw, par, 0.0, 1);
  sim::Instruction fwd;
  fwd.type = sim::InstrType::kForwardPass;
  fwd.shape = {2, 512, 0};
  const auto stages = model::BuildStageModels(config, hw, 4, 1);
  EXPECT_DOUBLE_EQ(gt.ComputeMs(1, fwd), stages[1].FwdMs(fwd.shape));
  EXPECT_DOUBLE_EQ(gt.ActivationMb(1, fwd),
                   stages[1].ActivationMb(fwd.shape, fwd.recompute));
}

TEST(SimGroundTruthTest, NoiseChangesDurations) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  const model::ParallelConfig par{1, 1, 2};
  SimGroundTruth noisy(config, hw, par, 0.2, 5);
  SimGroundTruth exact(config, hw, par, 0.0, 5);
  sim::Instruction fwd;
  fwd.type = sim::InstrType::kForwardPass;
  fwd.shape = {2, 512, 0};
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    if (std::abs(noisy.ComputeMs(0, fwd) - exact.ComputeMs(0, fwd)) > 1e-9) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(SimGroundTruthTest, StaticMemoryPerStage) {
  const auto config = model::ModelConfig::Gpt6_7B();
  const model::HardwareSpec hw;
  SimGroundTruth gt(config, hw, {2, 1, 4}, 0.0, 1);
  const auto mem = gt.StaticMemoryMb();
  ASSERT_EQ(mem.size(), 4u);
  for (const double m : mem) {
    EXPECT_GT(m, 0.0);
  }
}

// ---------- InstructionStore ----------

TEST(InstructionStoreTest, PushFetchRoundTrip) {
  InstructionStore store;
  sim::ExecutionPlan plan;
  plan.num_microbatches = 3;
  store.Push(7, 0, plan);
  EXPECT_TRUE(store.Contains(7, 0));
  EXPECT_EQ(store.size(), 1u);
  const sim::ExecutionPlan out = store.Fetch(7, 0);
  EXPECT_EQ(out.num_microbatches, 3);
  EXPECT_FALSE(store.Contains(7, 0));
}

TEST(InstructionStoreTest, KeysAreIndependent) {
  InstructionStore store;
  store.Push(1, 0, {});
  store.Push(1, 1, {});
  store.Push(2, 0, {});
  EXPECT_EQ(store.size(), 3u);
  store.Fetch(1, 1);
  EXPECT_TRUE(store.Contains(1, 0));
  EXPECT_TRUE(store.Contains(2, 0));
}

// ---------- IterationPlanner ----------

class IterationPlannerTest : public ::testing::Test {
 protected:
  IterationPlannerTest()
      : config_(model::ModelConfig::Gpt3_35B()), parallel_{1, 1, 4},
        cm_(cost::PipelineCostModel::Profile(config_, hw_, parallel_,
                                             TestProfile())) {}

  model::ModelConfig config_;
  model::HardwareSpec hw_;
  model::ParallelConfig parallel_;
  cost::PipelineCostModel cm_;
};

TEST_F(IterationPlannerTest, ProducesFeasiblePlan) {
  IterationPlanner planner(cm_, FastPlanner());
  const IterationPlan plan = planner.PlanIteration(TestMiniBatch(60, 1));
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
  ASSERT_EQ(plan.replicas.size(), 1u);
  EXPECT_GT(plan.total_microbatches(), 0);
  EXPECT_GT(plan.predicted_iteration_ms, 0.0);
  EXPECT_GT(plan.planning_time_ms, 0.0);
}

TEST_F(IterationPlannerTest, PlanIsWellFormedAndOrderConsistent) {
  IterationPlanner planner(cm_, FastPlanner());
  const IterationPlan plan = planner.PlanIteration(TestMiniBatch(60, 2));
  ASSERT_TRUE(plan.feasible);
  for (const auto& replica : plan.replicas) {
    EXPECT_TRUE(comm::VerifyWellFormed(replica.exec_plan).empty());
    EXPECT_TRUE(comm::VerifyChannelOrderConsistency(replica.exec_plan).empty());
  }
}

TEST_F(IterationPlannerTest, AllSamplesCovered) {
  IterationPlanner planner(cm_, FastPlanner());
  const auto minibatch = TestMiniBatch(80, 3);
  const IterationPlan plan = planner.PlanIteration(minibatch);
  ASSERT_TRUE(plan.feasible);
  size_t total = 0;
  for (const auto& replica : plan.replicas) {
    for (const auto& m : replica.micro_batches) {
      total += m.samples.size();
    }
  }
  EXPECT_EQ(total, minibatch.size());
}

TEST_F(IterationPlannerTest, DataParallelBalancesReplicas) {
  const model::ParallelConfig par{2, 1, 2};
  const auto cm = cost::PipelineCostModel::Profile(config_, hw_, par, TestProfile());
  IterationPlanner planner(cm, FastPlanner());
  const IterationPlan plan = planner.PlanIteration(TestMiniBatch(100, 4));
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.replicas.size(), 2u);
  double t0 = 0.0;
  double t1 = 0.0;
  for (const auto& m : plan.replicas[0].micro_batches) {
    t0 += m.predicted_time_ms;
  }
  for (const auto& m : plan.replicas[1].micro_batches) {
    t1 += m.predicted_time_ms;
  }
  EXPECT_GT(t0, 0.0);
  EXPECT_GT(t1, 0.0);
  // Karmarkar–Karp keeps totals close.
  EXPECT_LT(std::abs(t0 - t1), 0.5 * std::max(t0, t1));
}

TEST_F(IterationPlannerTest, DynamicRecomputeSelectsCheapestFeasible) {
  PlannerOptions opts = FastPlanner();
  opts.dynamic_recompute = true;
  IterationPlanner planner(cm_, opts);
  const IterationPlan plan = planner.PlanIteration(TestMiniBatch(40, 5));
  ASSERT_TRUE(plan.feasible);
  // With plenty of memory, kNone (no recompute overhead) must win.
  EXPECT_EQ(plan.recompute, model::RecomputeMode::kNone);
}

TEST_F(IterationPlannerTest, TightMemoryFallsBackToRecompute) {
  model::HardwareSpec tight = hw_;
  // Just above the static footprint so only small/recomputed activations fit.
  tight.device_memory_mb = 9000.0;
  const auto cm =
      cost::PipelineCostModel::Profile(config_, tight, parallel_, TestProfile());
  PlannerOptions opts = FastPlanner();
  opts.dynamic_recompute = true;
  IterationPlanner planner(cm, opts);
  const IterationPlan plan = planner.PlanIteration(TestMiniBatch(60, 6, 2048));
  if (plan.feasible) {
    EXPECT_NE(plan.recompute, model::RecomputeMode::kNone);
  }
  // (Either outcome is acceptable; what matters is no crash and no kNone pick.)
}

TEST_F(IterationPlannerTest, InfeasibleWhenWeightsDontFit) {
  model::HardwareSpec tiny = hw_;
  tiny.device_memory_mb = 256.0;  // GPT-3.35B stage cannot fit
  const auto cm =
      cost::PipelineCostModel::Profile(config_, tiny, parallel_, TestProfile());
  IterationPlanner planner(cm, FastPlanner());
  const IterationPlan plan = planner.PlanIteration(TestMiniBatch(20, 7));
  EXPECT_FALSE(plan.feasible);
  EXPECT_FALSE(plan.infeasible_reason.empty());
}

TEST_F(IterationPlannerTest, EmptyMiniBatchFeasible) {
  IterationPlanner planner(cm_, FastPlanner());
  const IterationPlan plan = planner.PlanIteration({});
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.total_microbatches(), 0);
}

// ---------- Baseline planning ----------

TEST_F(IterationPlannerTest, BaselinePackingPlanExecutable) {
  BaselineOptions opts;
  opts.batching = BaselineBatching::kPacking;
  opts.microbatch_size = 2;
  opts.max_input_len = 1024;
  const IterationPlan plan =
      PlanBaselineIteration(cm_, opts, TestMiniBatch(80, 8));
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
  for (const auto& replica : plan.replicas) {
    EXPECT_TRUE(comm::VerifyWellFormed(replica.exec_plan).empty());
    // Fused 1F1B naive comm is order-consistent for uniform micro-batches.
    EXPECT_TRUE(comm::VerifyChannelOrderConsistency(replica.exec_plan).empty());
  }
}

TEST_F(IterationPlannerTest, BaselineTokenBasedCoversSamples) {
  BaselineOptions opts;
  opts.batching = BaselineBatching::kTokenBased;
  opts.tokens_per_microbatch = 4096;
  opts.max_input_len = 1024;
  const auto minibatch = TestMiniBatch(60, 9);
  const IterationPlan plan = PlanBaselineIteration(cm_, opts, minibatch);
  ASSERT_TRUE(plan.feasible);
  size_t total = 0;
  for (const auto& replica : plan.replicas) {
    for (const auto& m : replica.micro_batches) {
      total += m.samples.size();
    }
  }
  EXPECT_EQ(total, minibatch.size());
}

TEST_F(IterationPlannerTest, PackingPaddingEfficiencyHigh) {
  BaselineOptions opts;
  opts.batching = BaselineBatching::kPacking;
  opts.microbatch_size = 4;
  opts.max_input_len = 2048;
  // (4 x 2048) activations under kNone exceed 1F1B's 4-deep accumulation window;
  // the paper's baseline grid search would pick a checkpointing strategy here.
  opts.recompute = model::RecomputeMode::kSelective;
  const IterationPlan plan =
      PlanBaselineIteration(cm_, opts, TestMiniBatch(300, 10, 512));
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(plan.padding.overall_efficiency(), 0.7);
}

// ---------- Trainer ----------

TEST(TrainerTest, EpochRunsAndCountsTokens) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  Trainer trainer(config, hw, {1, 1, 4}, TestProfile());
  data::FlanGeneratorOptions gen;
  gen.num_samples = 400;
  gen.length_cap = 2048;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  TrainerOptions opts;
  opts.global_batch_tokens = 16'384;
  opts.max_input_len = 1024;
  opts.max_iterations = 3;
  const EpochResult res = trainer.RunEpoch(dataset, FastPlanner(), opts);
  ASSERT_TRUE(res.feasible) << res.failure;
  EXPECT_EQ(res.iterations, 3);
  EXPECT_GT(res.real_tokens, 0);
  EXPECT_GT(res.train_time_ms, 0.0);
  EXPECT_GT(res.tokens_per_second(), 0.0);
  EXPECT_EQ(res.deadlocks, 0);
  EXPECT_EQ(res.records.size(), 3u);
}

TEST(TrainerTest, PredictionsTrackMeasurementsWithoutNoise) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  Trainer trainer(config, hw, {1, 1, 4}, TestProfile());
  data::FlanGeneratorOptions gen;
  gen.num_samples = 300;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  TrainerOptions opts;
  opts.global_batch_tokens = 8192;
  opts.max_input_len = 1024;
  opts.max_iterations = 4;
  opts.noise_stddev = 0.0;
  const EpochResult res = trainer.RunEpoch(dataset, FastPlanner(), opts);
  ASSERT_TRUE(res.feasible) << res.failure;
  for (const auto& rec : res.records) {
    // Without noise, error comes only from cost-model interpolation and comm
    // modelling: should be tight.
    EXPECT_NEAR(rec.predicted_ms / rec.measured_ms, 1.0, 0.25);
    EXPECT_NEAR(rec.predicted_peak_mb / rec.measured_peak_mb, 1.0, 0.25);
  }
}

TEST(TrainerTest, BaselineEpochRuns) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  Trainer trainer(config, hw, {1, 1, 4}, TestProfile());
  data::FlanGeneratorOptions gen;
  gen.num_samples = 300;
  gen.length_cap = 2048;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  TrainerOptions opts;
  opts.global_batch_tokens = 16'384;
  opts.max_input_len = 1024;
  opts.max_iterations = 2;
  BaselineOptions base;
  base.batching = BaselineBatching::kPacking;
  base.microbatch_size = 2;
  const EpochResult res = trainer.RunEpochBaseline(dataset, base, opts);
  ASSERT_TRUE(res.feasible) << res.failure;
  EXPECT_GT(res.tokens_per_second(), 0.0);
}

TEST(TrainerTest, T5PathRuns) {
  const auto config = model::ModelConfig::T5_5_5B();
  const model::HardwareSpec hw;
  // T5-5.5B at dp=1 needs 16 B/param: pp=2 alone does not fit 40 GB; tp=2 does.
  Trainer trainer(config, hw, {1, 2, 2}, TestProfile());
  data::FlanGeneratorOptions gen;
  gen.num_samples = 200;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  TrainerOptions opts;
  opts.global_batch_tokens = 8192;
  opts.max_input_len = 512;
  opts.max_iterations = 2;
  const EpochResult res = trainer.RunEpoch(dataset, FastPlanner(), opts);
  ASSERT_TRUE(res.feasible) << res.failure;
  EXPECT_GT(res.real_tokens, 0);
  // Decoder side exists for T5.
  EXPECT_GT(res.padding.padded_target_tokens, 0);
}

// ---------- Grid search ----------

TEST(GridSearchTest, FindsAConfigForSmallSetup) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  data::FlanGeneratorOptions gen;
  gen.num_samples = 200;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  GridSearchOptions opts;
  opts.eval_iterations = 1;
  opts.profile = TestProfile();
  opts.trainer.global_batch_tokens = 8192;
  opts.trainer.max_input_len = 512;
  const DynaPipeSearchResult res =
      GridSearchDynaPipe(config, hw, 4, dataset, FastPlanner(), opts);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.best.num_gpus(), 4);
  EXPECT_GT(res.tokens_per_second, 0.0);
  EXPECT_FALSE(res.all.empty());
}

TEST(GridSearchTest, BaselineSweepsMicrobatchSize) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  data::FlanGeneratorOptions gen;
  gen.num_samples = 200;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  GridSearchOptions opts;
  opts.eval_iterations = 1;
  opts.profile = TestProfile();
  opts.trainer.global_batch_tokens = 8192;
  opts.trainer.max_input_len = 512;
  opts.microbatch_sizes = {1, 4};
  opts.recompute_modes = {model::RecomputeMode::kNone};
  const BaselineSearchResult res = GridSearchBaselineAtParallel(
      config, hw, {1, 1, 2}, dataset, BaselineBatching::kPacking, opts);
  ASSERT_TRUE(res.found);
  EXPECT_GT(res.microbatch_size, 0);
  EXPECT_GT(res.tokens_per_second, 0.0);
}

}  // namespace
}  // namespace dynapipe::runtime
