// End-to-end integration tests: the paper's headline claims at test scale.
//
//  - DynaPipe out-throughputs the packing baseline on heavy-tailed multi-task data.
//  - Dynamic micro-batching achieves high padding efficiency.
//  - Every planned iteration executes deadlock-free on NCCL-like channels.
//  - The profiled cost model predicts iteration time and peak memory accurately
//    (the Fig. 18 property).
#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/data/flan_generator.h"
#include "src/runtime/planner.h"
#include "src/runtime/trainer.h"

namespace dynapipe::runtime {
namespace {

cost::ProfileOptions TestProfile() {
  cost::ProfileOptions opts;
  opts.max_microbatch_size = 64;
  opts.max_seq_len = 4096;
  return opts;
}

PlannerOptions DefaultPlanner() {
  PlannerOptions opts;
  opts.max_tmax_candidates = 64;
  opts.tmax_interval_ms = 0.2;
  opts.max_microbatch_size = 64;
  opts.dynamic_recompute = false;
  return opts;
}

data::Dataset HeavyTailedDataset(int64_t n, uint64_t seed = 42) {
  data::FlanGeneratorOptions gen;
  gen.num_samples = n;
  gen.seed = seed;
  return data::GenerateFlanLikeDataset(gen);
}

TEST(IntegrationTest, DynaPipeBeatsPackingOnMultiTaskData) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  const model::ParallelConfig par{1, 1, 4};
  Trainer trainer(config, hw, par, TestProfile());
  const data::Dataset dataset = HeavyTailedDataset(1500);

  TrainerOptions opts;
  opts.global_batch_tokens = 32'768;
  opts.max_input_len = 2048;
  opts.max_iterations = 4;

  const EpochResult dyna = trainer.RunEpoch(dataset, DefaultPlanner(), opts);
  ASSERT_TRUE(dyna.feasible) << dyna.failure;

  // Best packing configuration among a small sweep (grid search in miniature).
  double best_packing = 0.0;
  for (const int32_t mbs : {1, 2, 4, 8}) {
    BaselineOptions base;
    base.batching = BaselineBatching::kPacking;
    base.microbatch_size = mbs;
    const EpochResult packed = trainer.RunEpochBaseline(dataset, base, opts);
    if (packed.feasible) {
      best_packing = std::max(best_packing, packed.tokens_per_second());
    }
  }
  ASSERT_GT(best_packing, 0.0);
  EXPECT_GT(dyna.tokens_per_second(), best_packing);
}

TEST(IntegrationTest, DynamicMicroBatchingPaddingEfficiencyHigh) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  Trainer trainer(config, hw, {1, 1, 4}, TestProfile());
  const data::Dataset dataset = HeavyTailedDataset(1000);
  TrainerOptions opts;
  opts.global_batch_tokens = 32'768;
  opts.max_input_len = 2048;
  opts.max_iterations = 4;
  const EpochResult res = trainer.RunEpoch(dataset, DefaultPlanner(), opts);
  ASSERT_TRUE(res.feasible) << res.failure;
  // Paper reports > 0.8 padding efficiency for GPT (Fig. 15a).
  EXPECT_GT(res.padding.overall_efficiency(), 0.8);
}

TEST(IntegrationTest, ManyIterationsDeadlockFree) {
  const auto config = model::ModelConfig::T5_5_5B();
  const model::HardwareSpec hw;
  Trainer trainer(config, hw, {2, 1, 2}, TestProfile());
  const data::Dataset dataset = HeavyTailedDataset(1200, 7);
  TrainerOptions opts;
  opts.global_batch_tokens = 16'384;
  opts.max_input_len = 1024;
  opts.max_iterations = 8;
  opts.noise_stddev = 0.3;  // heavy noise: schedules shift, comm order must hold
  const EpochResult res = trainer.RunEpoch(dataset, DefaultPlanner(), opts);
  ASSERT_TRUE(res.feasible) << res.failure;
  EXPECT_EQ(res.deadlocks, 0);
  EXPECT_EQ(res.ooms, 0);
  EXPECT_EQ(res.iterations, 8);
}

TEST(IntegrationTest, CostModelAccuracyFig18Property) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  Trainer trainer(config, hw, {1, 1, 4}, TestProfile());
  const data::Dataset dataset = HeavyTailedDataset(1500, 13);
  TrainerOptions opts;
  opts.global_batch_tokens = 16'384;
  opts.max_input_len = 2048;
  opts.max_iterations = 6;
  opts.noise_stddev = 0.05;  // realistic kernel jitter
  const EpochResult res = trainer.RunEpoch(dataset, DefaultPlanner(), opts);
  ASSERT_TRUE(res.feasible) << res.failure;
  std::vector<double> pred_t;
  std::vector<double> act_t;
  std::vector<double> pred_m;
  std::vector<double> act_m;
  for (const auto& rec : res.records) {
    pred_t.push_back(rec.predicted_ms);
    act_t.push_back(rec.measured_ms);
    pred_m.push_back(rec.predicted_peak_mb);
    act_m.push_back(rec.measured_peak_mb);
  }
  // Paper: 4-11% iteration-time MPE, < 6% memory MPE. Allow generous headroom.
  EXPECT_LT(MeanPercentageError(pred_t, act_t), 20.0);
  EXPECT_LT(MeanPercentageError(pred_m, act_m), 15.0);
}

TEST(IntegrationTest, AdaptiveScheduleBeats1F1BOnDynamicMicroBatches) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  Trainer trainer(config, hw, {1, 1, 4}, TestProfile());
  const data::Dataset dataset = HeavyTailedDataset(1500, 21);
  TrainerOptions opts;
  opts.global_batch_tokens = 32'768;
  opts.max_input_len = 2048;
  opts.max_iterations = 4;

  PlannerOptions adaptive = DefaultPlanner();
  PlannerOptions one_f_one_b = DefaultPlanner();
  one_f_one_b.adaptive_schedule = false;
  one_f_one_b.reorder_microbatches = false;

  const EpochResult a = trainer.RunEpoch(dataset, adaptive, opts);
  const EpochResult b = trainer.RunEpoch(dataset, one_f_one_b, opts);
  ASSERT_TRUE(a.feasible) << a.failure;
  ASSERT_TRUE(b.feasible) << b.failure;
  // Adaptive should not lose; it usually wins by a few percent (Fig. 16b shows
  // 7-10% on real hardware).
  EXPECT_LE(a.train_time_ms, b.train_time_ms * 1.02);
}

TEST(IntegrationTest, SequenceLengthScalingShape) {
  // Fig. 13's qualitative shape at test scale: packing throughput decays sharply
  // with max sequence length; DynaPipe decays more slowly.
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  Trainer trainer(config, hw, {1, 1, 4}, TestProfile());
  const data::Dataset dataset = HeavyTailedDataset(1500, 33);
  TrainerOptions opts;
  opts.global_batch_tokens = 16'384;
  opts.max_iterations = 3;

  auto throughput_at = [&](int32_t max_len, bool dynapipe) {
    TrainerOptions o = opts;
    o.max_input_len = max_len;
    if (dynapipe) {
      const EpochResult r = trainer.RunEpoch(dataset, DefaultPlanner(), o);
      return r.feasible ? r.tokens_per_second() : 0.0;
    }
    double best = 0.0;
    for (const int32_t mbs : {1, 2, 4}) {
      BaselineOptions base;
      base.batching = BaselineBatching::kPacking;
      base.microbatch_size = mbs;
      const EpochResult r = trainer.RunEpochBaseline(dataset, base, o);
      if (r.feasible) {
        best = std::max(best, r.tokens_per_second());
      }
    }
    return best;
  };

  const double dyna_512 = throughput_at(512, true);
  const double dyna_4096 = throughput_at(4096, true);
  const double pack_512 = throughput_at(512, false);
  const double pack_4096 = throughput_at(4096, false);
  ASSERT_GT(dyna_512, 0.0);
  ASSERT_GT(pack_512, 0.0);
  ASSERT_GT(pack_4096, 0.0);
  // Packing's relative decay exceeds DynaPipe's.
  const double pack_decay = pack_4096 / pack_512;
  const double dyna_decay = dyna_4096 / dyna_512;
  EXPECT_GT(dyna_decay, pack_decay);
}

}  // namespace
}  // namespace dynapipe::runtime
