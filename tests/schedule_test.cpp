// Unit + property tests for src/schedule: 1F1B, memory-aware adaptive scheduling
// (Alg. 1), the timeline simulator, safety-stock behavior (Fig. 7), and micro-batch
// reordering.
#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/schedule/adaptive_scheduler.h"
#include "src/schedule/executor_simulator.h"
#include "src/schedule/one_f_one_b.h"
#include "src/schedule/reorder.h"
#include "src/schedule/schedule_types.h"

namespace dynapipe::schedule {
namespace {

// A schedule is *valid* if every device runs each micro-batch's fwd and bwd exactly
// once and the order can execute (SimulateSchedule CHECKs progress).
void ExpectValidSchedule(const PipelineSchedule& sched) {
  for (int32_t j = 0; j < sched.num_stages(); ++j) {
    std::map<int32_t, int> fwd;
    std::map<int32_t, int> bwd;
    for (const auto& op : sched.devices[static_cast<size_t>(j)]) {
      ++(op.is_backward ? bwd : fwd)[op.microbatch];
    }
    for (int32_t i = 0; i < sched.num_microbatches; ++i) {
      EXPECT_EQ(fwd[i], 1) << "stage " << j << " mb " << i;
      EXPECT_EQ(bwd[i], 1) << "stage " << j << " mb " << i;
    }
  }
}

// ---------- 1F1B ----------

TEST(OneFOneBTest, OpCountsCorrect) {
  const PipelineSchedule s = OneFOneBSchedule(8, 4);
  ExpectValidSchedule(s);
}

TEST(OneFOneBTest, LastStageAlternates) {
  const PipelineSchedule s = OneFOneBSchedule(4, 3);
  const auto& last = s.devices[2];
  // No warmup: F0 B0 F1 B1 ...
  for (int32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(last[static_cast<size_t>(2 * i)].microbatch, i);
    EXPECT_FALSE(last[static_cast<size_t>(2 * i)].is_backward);
    EXPECT_EQ(last[static_cast<size_t>(2 * i + 1)].microbatch, i);
    EXPECT_TRUE(last[static_cast<size_t>(2 * i + 1)].is_backward);
  }
}

TEST(OneFOneBTest, FirstStageWarmupDepth) {
  const PipelineSchedule s = OneFOneBSchedule(8, 4);
  const auto& first = s.devices[0];
  // First c-1 = 3 ops are forwards.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(first[static_cast<size_t>(i)].is_backward);
  }
  EXPECT_TRUE(first[4].is_backward);  // steady state begins
}

TEST(OneFOneBTest, MemoryHighWaterIsStagesMinusIndex) {
  // Uniform activations of 1.0: stage j accumulates at most (c - j) in flight.
  const int32_t c = 4;
  const int32_t m = 8;
  const PipelineSchedule s = OneFOneBSchedule(m, c);
  const OpCosts costs = OpCosts::Uniform(c, m, 1.0, 2.0, 1.0);
  const std::vector<double> hw = ScheduleMemoryHighWater(s, costs);
  for (int32_t j = 0; j < c; ++j) {
    EXPECT_DOUBLE_EQ(hw[static_cast<size_t>(j)], static_cast<double>(c - j));
  }
}

TEST(OneFOneBTest, FewerMicrobatchesThanStages) {
  const PipelineSchedule s = OneFOneBSchedule(2, 6);
  ExpectValidSchedule(s);
}

// ---------- Adaptive scheduler ----------

TEST(AdaptiveTest, ValidWithoutMemoryLimit) {
  const OpCosts costs = OpCosts::Uniform(4, 10, 1.0, 2.0, 1.0);
  const auto s = MemoryAwareAdaptiveSchedule(costs);
  ASSERT_TRUE(s.has_value());
  ExpectValidSchedule(*s);
}

TEST(AdaptiveTest, RespectsInjectionOrder) {
  const OpCosts costs = OpCosts::Uniform(2, 4, 1.0, 2.0, 1.0);
  AdaptiveScheduleOptions opts;
  opts.injection_order = {3, 1, 0, 2};
  const auto s = MemoryAwareAdaptiveSchedule(costs, opts);
  ASSERT_TRUE(s.has_value());
  // First stage forwards appear in injection order.
  std::vector<int32_t> fwd_order;
  for (const auto& op : s->devices[0]) {
    if (!op.is_backward) {
      fwd_order.push_back(op.microbatch);
    }
  }
  EXPECT_EQ(fwd_order, (std::vector<int32_t>{3, 1, 0, 2}));
}

TEST(AdaptiveTest, MemoryLimitCapsHighWater) {
  const int32_t c = 4;
  const int32_t m = 12;
  const OpCosts costs = OpCosts::Uniform(c, m, 1.0, 2.0, 1.0);
  AdaptiveScheduleOptions opts;
  opts.device_limit_mb.assign(static_cast<size_t>(c), 3.5);  // < 3.5 means <= 3 held
  const auto s = MemoryAwareAdaptiveSchedule(costs, opts);
  ASSERT_TRUE(s.has_value());
  ExpectValidSchedule(*s);
  const std::vector<double> hw = ScheduleMemoryHighWater(*s, costs);
  for (const double x : hw) {
    EXPECT_LE(x, 3.0 + 1e-9);
  }
}

TEST(AdaptiveTest, InfeasibleWhenSingleMicrobatchExceedsLimit) {
  const OpCosts costs = OpCosts::Uniform(2, 4, 1.0, 2.0, 10.0);
  AdaptiveScheduleOptions opts;
  opts.device_limit_mb = {5.0, 5.0};
  EXPECT_FALSE(MemoryAwareAdaptiveSchedule(costs, opts).has_value());
}

TEST(AdaptiveTest, UnlimitedMemoryInjectsEagerly) {
  // Without limits the cyclic schedule front-loads forwards: stage 0's first m ops
  // include at most one backward before all forwards are issued... check simply
  // that the first stage's high-water equals m (all injected before first bwd
  // completes upstream).
  const int32_t m = 6;
  const OpCosts costs = OpCosts::Uniform(3, m, 1.0, 2.0, 1.0);
  const auto s = MemoryAwareAdaptiveSchedule(costs);
  ASSERT_TRUE(s.has_value());
  const std::vector<double> hw = ScheduleMemoryHighWater(*s, costs);
  EXPECT_GT(hw[0], 3.0);  // deeper than 1F1B's c - 0 = 3
}

TEST(AdaptiveTest, EmptyInputYieldsEmptySchedule) {
  OpCosts costs;
  costs.fwd_ms.assign(3, {});
  costs.bwd_ms.assign(3, {});
  costs.act_mb.assign(3, {});
  const auto s = MemoryAwareAdaptiveSchedule(costs);
  ASSERT_TRUE(s.has_value());
  for (const auto& dev : s->devices) {
    EXPECT_TRUE(dev.empty());
  }
}

// ---------- Executor simulator ----------

TEST(SimulateTest, SingleStageSumsDurations) {
  const OpCosts costs = OpCosts::Uniform(1, 3, 2.0, 4.0, 1.0);
  const PipelineSchedule s = OneFOneBSchedule(3, 1);
  const SimulatedTimeline tl = SimulateSchedule(s, costs);
  EXPECT_DOUBLE_EQ(tl.makespan_ms, 18.0);
  EXPECT_DOUBLE_EQ(tl.MeanBubbleFraction(), 0.0);
}

TEST(SimulateTest, UniformOneFOneBMakespanFormula) {
  // With fwd = bwd = t and no comm, 1F1B's makespan is (m + c - 1) * (fwd + bwd)
  // ... exactly: (c-1)*fwd + m*(fwd+bwd) + (c-1)*bwd.
  const int32_t c = 4;
  const int32_t m = 8;
  const double f = 1.0;
  const double b = 2.0;
  const OpCosts costs = OpCosts::Uniform(c, m, f, b, 1.0);
  const SimulatedTimeline tl = SimulateSchedule(OneFOneBSchedule(m, c), costs);
  EXPECT_NEAR(tl.makespan_ms, (c - 1) * f + m * (f + b) + (c - 1) * b, 1e-9);
}

TEST(SimulateTest, DependenciesRespected) {
  const int32_t c = 3;
  const int32_t m = 4;
  const OpCosts costs = OpCosts::Uniform(c, m, 1.0, 2.0, 1.0);
  const PipelineSchedule s = OneFOneBSchedule(m, c);
  const SimulatedTimeline tl = SimulateSchedule(s, costs);
  for (int32_t j = 1; j < c; ++j) {
    for (int32_t i = 0; i < m; ++i) {
      EXPECT_GE(tl.fwd[static_cast<size_t>(j)][static_cast<size_t>(i)].start_ms,
                tl.fwd[static_cast<size_t>(j - 1)][static_cast<size_t>(i)].end_ms);
    }
  }
  for (int32_t j = 0; j + 1 < c; ++j) {
    for (int32_t i = 0; i < m; ++i) {
      EXPECT_GE(tl.bwd[static_cast<size_t>(j)][static_cast<size_t>(i)].start_ms,
                tl.bwd[static_cast<size_t>(j + 1)][static_cast<size_t>(i)].end_ms);
    }
  }
}

TEST(SimulateTest, CommDelayShiftsMakespan) {
  const OpCosts costs = OpCosts::Uniform(2, 2, 1.0, 2.0, 1.0);
  const PipelineSchedule s = OneFOneBSchedule(2, 2);
  ExecutorSimOptions opts;
  opts.comm_delay_ms = [](int32_t, int32_t, int32_t, bool) { return 0.5; };
  const SimulatedTimeline with_comm = SimulateSchedule(s, costs, opts);
  const SimulatedTimeline without = SimulateSchedule(s, costs);
  EXPECT_GT(with_comm.makespan_ms, without.makespan_ms);
}

TEST(SimulateTest, PeakMemoryMatchesOrderHighWaterForUniform1F1B) {
  const int32_t c = 3;
  const int32_t m = 6;
  const OpCosts costs = OpCosts::Uniform(c, m, 1.0, 1.0, 2.0);
  const PipelineSchedule s = OneFOneBSchedule(m, c);
  const SimulatedTimeline tl = SimulateSchedule(s, costs);
  const std::vector<double> hw = ScheduleMemoryHighWater(s, costs);
  for (int32_t j = 0; j < c; ++j) {
    EXPECT_NEAR(tl.device_peak_mb[static_cast<size_t>(j)],
                hw[static_cast<size_t>(j)], 1e-9);
  }
}

TEST(SimulateTest, OneFOneBSteadyStateHasZeroSlack) {
  // The paper's safety-stock analysis: with uniform micro-batches, interior-stage
  // ops in the 1F1B steady state become ready exactly when the device gets to them.
  const int32_t c = 4;
  const int32_t m = 12;
  const OpCosts costs = OpCosts::Uniform(c, m, 1.0, 2.0, 1.0);
  const SimulatedTimeline tl = SimulateSchedule(OneFOneBSchedule(m, c), costs);
  // Middle micro-batches on the last stage: slack must be ~0.
  for (int32_t i = 4; i < 8; ++i) {
    EXPECT_NEAR(
        tl.fwd[static_cast<size_t>(c - 1)][static_cast<size_t>(i)].slack_ms(), 0.0,
        1e-9);
  }
}

TEST(SimulateTest, AdaptiveBuildsPositiveSlack) {
  const int32_t c = 4;
  const int32_t m = 12;
  const OpCosts costs = OpCosts::Uniform(c, m, 1.0, 2.0, 1.0);
  const auto sched = MemoryAwareAdaptiveSchedule(costs);
  ASSERT_TRUE(sched.has_value());
  const SimulatedTimeline tl = SimulateSchedule(*sched, costs);
  double total_slack = 0.0;
  for (int32_t i = 0; i < m; ++i) {
    total_slack +=
        tl.fwd[static_cast<size_t>(c - 1)][static_cast<size_t>(i)].slack_ms();
  }
  EXPECT_GT(total_slack, 0.0);  // ready ops queue up: non-zero safety stock
}

// Fig. 7 property: under execution-time noise, the adaptive schedule's makespan
// degrades less than 1F1B's.
class NoiseRobustness : public ::testing::TestWithParam<int> {};

TEST_P(NoiseRobustness, AdaptiveBeats1F1BUnderNoise) {
  const int32_t c = 8;
  const int32_t m = 32;
  Rng rng(static_cast<uint64_t>(GetParam()) + 11);
  // Noisy per-op durations (zero-mean multiplicative Gaussian, sigma = 1.0).
  OpCosts costs = OpCosts::Uniform(c, m, 1.0, 2.0, 1.0);
  for (int32_t j = 0; j < c; ++j) {
    for (int32_t i = 0; i < m; ++i) {
      const double factor = std::max(0.05, 1.0 + rng.NextGaussian(0.0, 1.0));
      costs.fwd_ms[static_cast<size_t>(j)][static_cast<size_t>(i)] *= factor;
      costs.bwd_ms[static_cast<size_t>(j)][static_cast<size_t>(i)] *= factor;
    }
  }
  const SimulatedTimeline tl_1f1b =
      SimulateSchedule(OneFOneBSchedule(m, c), costs);
  const auto adaptive = MemoryAwareAdaptiveSchedule(costs);
  ASSERT_TRUE(adaptive.has_value());
  const SimulatedTimeline tl_adaptive = SimulateSchedule(*adaptive, costs);
  // Allow slack: adaptive wins on average; individual draws may tie.
  EXPECT_LT(tl_adaptive.makespan_ms, tl_1f1b.makespan_ms * 1.05)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoiseRobustness, ::testing::Range(0, 15));

TEST(NoiseRobustnessAggregate, AdaptiveWinsOnAverage) {
  const int32_t c = 8;
  const int32_t m = 32;
  double total_1f1b = 0.0;
  double total_adaptive = 0.0;
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 500);
    OpCosts costs = OpCosts::Uniform(c, m, 1.0, 2.0, 1.0);
    for (int32_t j = 0; j < c; ++j) {
      for (int32_t i = 0; i < m; ++i) {
        const double factor = std::max(0.05, 1.0 + rng.NextGaussian(0.0, 1.5));
        costs.fwd_ms[static_cast<size_t>(j)][static_cast<size_t>(i)] *= factor;
        costs.bwd_ms[static_cast<size_t>(j)][static_cast<size_t>(i)] *= factor;
      }
    }
    total_1f1b += SimulateSchedule(OneFOneBSchedule(m, c), costs).makespan_ms;
    const auto adaptive = MemoryAwareAdaptiveSchedule(costs);
    ASSERT_TRUE(adaptive.has_value());
    total_adaptive += SimulateSchedule(*adaptive, costs).makespan_ms;
  }
  EXPECT_LT(total_adaptive, total_1f1b);
}

// ---------- Clustering / reordering ----------

TEST(ClusterByTimeTest, SeparatesObviousGroups) {
  const std::vector<double> values{1.0, 1.1, 0.9, 10.0, 10.5, 9.8};
  const std::vector<int32_t> assign = ClusterByTime(values, 2);
  EXPECT_EQ(assign[0], assign[1]);
  EXPECT_EQ(assign[0], assign[2]);
  EXPECT_EQ(assign[3], assign[4]);
  EXPECT_EQ(assign[3], assign[5]);
  EXPECT_NE(assign[0], assign[3]);
  EXPECT_LT(assign[0], assign[3]);  // clusters ordered by center
}

TEST(ClusterByTimeTest, MoreClustersThanValues) {
  const std::vector<int32_t> assign = ClusterByTime({5.0, 6.0}, 4);
  EXPECT_EQ(assign.size(), 2u);
}

TEST(ReorderTest, FindsFeasibleOrderAndBestMakespan) {
  const int32_t c = 4;
  const int32_t m = 9;
  OpCosts costs = OpCosts::Uniform(c, m, 1.0, 2.0, 1.0);
  std::vector<double> times(static_cast<size_t>(m), 3.0);
  // Three big micro-batches.
  for (int i : {0, 4, 8}) {
    for (int32_t j = 0; j < c; ++j) {
      costs.fwd_ms[static_cast<size_t>(j)][static_cast<size_t>(i)] = 4.0;
      costs.bwd_ms[static_cast<size_t>(j)][static_cast<size_t>(i)] = 8.0;
    }
    times[static_cast<size_t>(i)] = 12.0;
  }
  ReorderOptions opts;
  opts.num_clusters = 3;
  const ReorderResult res = ReorderMicroBatches(costs, times, opts);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.orders_tried, 6);  // 3! permutations
  ExpectValidSchedule(res.schedule);
  // The chosen order must be at least as good as natural-order adaptive.
  const auto natural = MemoryAwareAdaptiveSchedule(costs);
  ASSERT_TRUE(natural.has_value());
  EXPECT_LE(res.makespan_ms, SimulateSchedule(*natural, costs).makespan_ms + 1e-9);
}

TEST(ReorderTest, InjectionOrderIsPermutation) {
  const OpCosts costs = OpCosts::Uniform(3, 7, 1.0, 2.0, 1.0);
  const std::vector<double> times{1, 5, 2, 8, 3, 9, 4};
  ReorderOptions opts;
  opts.num_clusters = 3;
  const ReorderResult res = ReorderMicroBatches(costs, times, opts);
  ASSERT_TRUE(res.feasible);
  std::vector<int32_t> sorted = res.injection_order;
  std::sort(sorted.begin(), sorted.end());
  for (int32_t i = 0; i < 7; ++i) {
    EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
  }
}

}  // namespace
}  // namespace dynapipe::schedule
