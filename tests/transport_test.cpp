// Tests for the cross-process plan distribution wire (src/transport): the
// length-prefixed frame protocol (round-trip, malformed-input rejection), the
// loopback and Unix-socket byte streams, the store server / remote client
// pair, and — the point of the subsystem — a fork()ed two-process run where a
// planner process publishes an epoch of plans over a Unix domain socket and
// an executor process fetches byte-identical copies of what the in-process
// store would have delivered.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fault_injection.h"
#include "src/cost/pipeline_cost_model.h"
#include "src/data/flan_generator.h"
#include "src/data/minibatch_sampler.h"
#include "src/executor/executor.h"
#include "src/runtime/instruction_store.h"
#include "src/runtime/planner.h"
#include "src/service/heartbeat_monitor.h"
#include "src/service/plan_serde.h"
#include "src/service/rebalance.h"
#include "src/service/recovery.h"
#include "src/transport/frame.h"
#include "src/transport/mux.h"
#include "src/transport/remote_store.h"
#include "src/transport/shm_store.h"
#include "src/transport/store_server.h"
#include "src/transport/transport.h"

namespace dynapipe {
namespace {

std::string UniqueSocketPath(const char* tag) {
  static std::atomic<uint64_t> counter{0};
  return std::string("/tmp/dynapipe-tt-") + tag + "-" +
         std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// ---------- frame protocol ----------

TEST(FrameTest, RoundTripOverLoopback) {
  transport::LoopbackTransport lo;
  std::unique_ptr<transport::Stream> client = lo.Connect();
  std::unique_ptr<transport::Stream> server = lo.Accept();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  transport::Frame out;
  out.type = transport::FrameType::kPush;
  out.iteration = -3;  // zigzag keeps negatives 1 byte
  out.replica = 1 << 20;
  out.payload = std::string("\x00\x80\xff binary ok", 13);
  ASSERT_TRUE(WriteFrame(*client, out));

  std::string error;
  std::optional<transport::Frame> in = ReadFrame(*server, &error);
  ASSERT_TRUE(in.has_value()) << error;
  EXPECT_EQ(in->type, out.type);
  EXPECT_EQ(in->iteration, out.iteration);
  EXPECT_EQ(in->replica, out.replica);
  EXPECT_EQ(in->payload, out.payload);

  // And the reply direction.
  transport::Frame reply;
  reply.type = transport::FrameType::kOk;
  ASSERT_TRUE(WriteFrame(*server, reply));
  std::optional<transport::Frame> got = ReadFrame(*client, &error);
  ASSERT_TRUE(got.has_value()) << error;
  EXPECT_EQ(got->type, transport::FrameType::kOk);
}

TEST(FrameTest, RejectsImplausibleLengthAndTruncatedBody) {
  {
    transport::LoopbackTransport lo;
    auto client = lo.Connect();
    auto server = lo.Accept();
    // Length field far over kMaxFrameBytes.
    const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_TRUE(client->WriteAll(huge, sizeof(huge)));
    std::string error;
    EXPECT_FALSE(ReadFrame(*server, &error).has_value());
    EXPECT_EQ(error, "frame: implausible length");
  }
  {
    transport::LoopbackTransport lo;
    auto client = lo.Connect();
    auto server = lo.Accept();
    // Claims 10 body bytes, delivers 3, then closes.
    const unsigned char header[4] = {10, 0, 0, 0};
    ASSERT_TRUE(client->WriteAll(header, sizeof(header)));
    ASSERT_TRUE(client->WriteAll("abc", 3));
    client->Close();
    std::string error;
    EXPECT_FALSE(ReadFrame(*server, &error).has_value());
    EXPECT_EQ(error, "frame: truncated body");
  }
  {
    transport::LoopbackTransport lo;
    auto client = lo.Connect();
    auto server = lo.Accept();
    const unsigned char header[4] = {0, 0, 0, 0};  // empty body
    ASSERT_TRUE(client->WriteAll(header, sizeof(header)));
    std::string error;
    EXPECT_FALSE(ReadFrame(*server, &error).has_value());
    EXPECT_EQ(error, "frame: empty body");
  }
  {
    transport::LoopbackTransport lo;
    auto client = lo.Connect();
    auto server = lo.Accept();
    client->Close();  // clean EOF before any byte
    std::string error = "sentinel";
    EXPECT_FALSE(ReadFrame(*server, &error).has_value());
    EXPECT_TRUE(error.empty());
  }
}

// ---------- streams ----------

TEST(LoopbackTransportTest, CloseUnblocksAcceptAndReaders) {
  transport::LoopbackTransport lo;
  std::thread acceptor([&] { EXPECT_EQ(lo.Accept(), nullptr); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  lo.Close();
  acceptor.join();
  EXPECT_EQ(lo.Connect(), nullptr);  // closed transport refuses connections

  // A reader parked on an open stream unblocks when the peer closes.
  transport::LoopbackTransport lo2;
  auto client = lo2.Connect();
  auto server = lo2.Accept();
  std::thread reader([&] {
    char byte;
    EXPECT_FALSE(server->ReadAll(&byte, 1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  client->Close();
  reader.join();
}

TEST(UnixSocketTransportTest, ConnectAcceptEcho) {
  transport::UnixSocketTransport transport(UniqueSocketPath("echo"));
  std::thread server([&] {
    std::unique_ptr<transport::Stream> conn = transport.Accept();
    ASSERT_NE(conn, nullptr);
    char buf[5];
    ASSERT_TRUE(conn->ReadAll(buf, sizeof(buf)));
    ASSERT_TRUE(conn->WriteAll(buf, sizeof(buf)));
  });
  std::unique_ptr<transport::Stream> client = transport.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->WriteAll("hello", 5));
  char echo[5];
  ASSERT_TRUE(client->ReadAll(echo, sizeof(echo)));
  EXPECT_EQ(std::string(echo, 5), "hello");
  server.join();
  transport.Close();
}

TEST(UnixSocketTransportTest, ConnectToAbsentServerTimesOut) {
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(transport::ConnectUnixSocket("/tmp/dynapipe-absent.sock",
                                         /*timeout_ms=*/60),
            nullptr);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

// ---------- remote store over both transports ----------

sim::ExecutionPlan MarkerPlan(int32_t marker) {
  sim::ExecutionPlan plan;
  plan.num_microbatches = marker;
  sim::DevicePlan dev;
  sim::Instruction instr;
  instr.microbatch = marker;
  instr.shape = {marker, 256, 64};
  dev.instructions.push_back(instr);
  plan.devices.push_back(std::move(dev));
  return plan;
}

template <typename MakeTransport>
void RemoteStoreRoundTrip(MakeTransport make_transport) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  auto transport = make_transport();
  transport::InstructionStoreServer server(transport.get(), &store);
  auto client = transport::RemoteInstructionStore::OverTransport(transport.get());

  const sim::ExecutionPlan p0 = MarkerPlan(1);
  const sim::ExecutionPlan p1 = MarkerPlan(2);
  client->Push(0, 0, p0);
  client->Push(0, 1, p1);
  EXPECT_EQ(client->size(), 2u);
  EXPECT_TRUE(client->Contains(0, 0));
  EXPECT_FALSE(client->Contains(1, 0));
  // The client's wire volume matches the server store's resident bytes: the
  // server never re-encodes what the client sent.
  EXPECT_EQ(client->serialized_bytes_total(), store.serialized_bytes_total());
  EXPECT_GT(client->serialized_bytes_total(), 0);
  EXPECT_EQ(client->Fetch(0, 1), p1);
  EXPECT_EQ(client->Fetch(0, 0), p0);
  EXPECT_EQ(client->size(), 0u);
  EXPECT_GE(server.requests_served(), 8);
  server.Stop();
}

TEST(RemoteStoreTest, RoundTripOverLoopback) {
  RemoteStoreRoundTrip(
      [] { return std::make_unique<transport::LoopbackTransport>(); });
}

TEST(RemoteStoreTest, RoundTripOverUnixSocket) {
  RemoteStoreRoundTrip([] {
    return std::make_unique<transport::UnixSocketTransport>(
        UniqueSocketPath("rt"));
  });
}

// ---------- the two-process epoch (acceptance criterion) ----------

bool WriteFull(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0 && errno == EINTR) {
      continue;
    }
    if (w <= 0) {
      return false;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

bool ReadFull(int fd, void* data, size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0 && errno == EINTR) {
      continue;
    }
    if (r <= 0) {
      return false;
    }
    p += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

// The planner process plans a short epoch and publishes every plan to its
// store, served over a Unix domain socket; a fork()ed executor process
// fetches each plan with RemoteInstructionStore, decodes it, and streams the
// re-encoded bytes back over a pipe. Those bytes must equal — byte for byte —
// what the in-process serialized store holds for the same epoch.
TEST(TwoProcessPlanDistributionTest, SocketFetchesAreByteIdenticalToInProcess) {
  // Plan the epoch first, inline and threadless: the planner work happens
  // before fork(), so the child never inherits locks or threads.
  cost::ProfileOptions profile;
  profile.max_microbatch_size = 32;
  profile.max_seq_len = 4096;
  const auto cm = cost::PipelineCostModel::Profile(
      model::ModelConfig::Gpt3_35B(), model::HardwareSpec{}, {1, 1, 4}, profile);
  runtime::PlannerOptions popts;
  popts.max_tmax_candidates = 48;
  popts.tmax_interval_ms = 0.5;
  popts.max_microbatch_size = 32;
  popts.reorder_clusters = 2;
  popts.dynamic_recompute = false;
  runtime::IterationPlanner planner(cm, popts);

  data::FlanGeneratorOptions gen;
  gen.num_samples = 300;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  data::MiniBatchSamplerOptions so;
  so.global_batch_tokens = 6144;
  so.max_input_len = 1024;
  so.seed = 7;
  data::MiniBatchSampler sampler(dataset, so);

  constexpr int kIterations = 3;
  std::vector<sim::ExecutionPlan> exec_plans;
  for (int i = 0; i < kIterations && sampler.HasNext(); ++i) {
    runtime::IterationPlan plan = planner.PlanIteration(sampler.Next());
    ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
    ASSERT_EQ(plan.replicas.size(), 1u);
    exec_plans.push_back(std::move(plan.replicas[0].exec_plan));
  }
  ASSERT_EQ(exec_plans.size(), static_cast<size_t>(kIterations));

  // What the in-process serialized store delivers for this epoch — the
  // reference the socket path must match byte for byte.
  std::vector<std::string> expected_bytes;
  {
    runtime::InstructionStore inproc(
        runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
    for (int i = 0; i < kIterations; ++i) {
      inproc.Push(i, 0, exec_plans[i]);
    }
    for (int i = 0; i < kIterations; ++i) {
      expected_bytes.push_back(inproc.FetchBytes(i, 0));
    }
  }

  const std::string socket_path = UniqueSocketPath("fork");
  int ready_pipe[2];
  int result_pipe[2];
  ASSERT_EQ(::pipe(ready_pipe), 0);
  ASSERT_EQ(::pipe(result_pipe), 0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Executor process. No gtest machinery here: any failure is a nonzero
    // exit the parent turns into a test failure.
    ::close(ready_pipe[1]);
    ::close(result_pipe[0]);
    char go;
    if (!ReadFull(ready_pipe[0], &go, 1)) {
      ::_exit(2);  // planner died before publishing
    }
    auto remote = transport::RemoteInstructionStore::OverUnixSocket(
        socket_path, /*connect_timeout_ms=*/10'000);
    for (int i = 0; i < kIterations; ++i) {
      const sim::ExecutionPlan plan = remote->Fetch(i, 0);
      // Re-encode the decoded plan: the bytes prove the fetch decoded into
      // exactly the published instruction stream.
      const std::string bytes = service::EncodeExecutionPlan(plan);
      const uint32_t len = static_cast<uint32_t>(bytes.size());
      if (!WriteFull(result_pipe[1], &len, sizeof(len)) ||
          !WriteFull(result_pipe[1], bytes.data(), bytes.size())) {
        ::_exit(3);
      }
    }
    ::_exit(0);
  }

  // Planner process: serve the store over the socket and publish the epoch.
  ::close(ready_pipe[0]);
  ::close(result_pipe[1]);
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  transport::UnixSocketTransport transport(socket_path);
  transport::InstructionStoreServer server(&transport, &store);
  for (int i = 0; i < kIterations; ++i) {
    store.Push(i, 0, exec_plans[i]);
  }
  // Publish-before-fetch: only now may the executor start fetching.
  ASSERT_TRUE(WriteFull(ready_pipe[1], "g", 1));

  for (int i = 0; i < kIterations; ++i) {
    uint32_t len = 0;
    ASSERT_TRUE(ReadFull(result_pipe[0], &len, sizeof(len))) << "iteration " << i;
    std::string bytes(len, '\0');
    ASSERT_TRUE(ReadFull(result_pipe[0], bytes.data(), bytes.size()));
    EXPECT_EQ(bytes, expected_bytes[i]) << "iteration " << i;
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "executor process exited with status " << status;
  EXPECT_EQ(store.size(), 0u);  // the executor drained the epoch
  ::close(ready_pipe[1]);
  ::close(result_pipe[0]);
  server.Stop();
}

// Same two-process shape over the shared-memory store: the planner process
// creates the segment and publishes an epoch; a fork()ed executor process
// attaches by name and pulls each plan's *raw bytes* through the zero-copy
// view — no wire, no copy on the fetch side — which must equal, byte for
// byte, what the in-process serialized store holds for the same epoch.
TEST(TwoProcessShmPlanDistributionTest, AttachedFetchesAreByteIdentical) {
  const auto plan_epoch = [] {
    cost::ProfileOptions profile;
    profile.max_microbatch_size = 32;
    profile.max_seq_len = 4096;
    const auto cm = cost::PipelineCostModel::Profile(
        model::ModelConfig::Gpt3_35B(), model::HardwareSpec{}, {1, 1, 4},
        profile);
    runtime::PlannerOptions popts;
    popts.max_tmax_candidates = 48;
    popts.tmax_interval_ms = 0.5;
    popts.max_microbatch_size = 32;
    popts.reorder_clusters = 2;
    popts.dynamic_recompute = false;
    runtime::IterationPlanner planner(cm, popts);
    data::FlanGeneratorOptions gen;
    gen.num_samples = 300;
    gen.length_cap = 1024;
    const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
    data::MiniBatchSamplerOptions so;
    so.global_batch_tokens = 6144;
    so.max_input_len = 1024;
    so.seed = 7;
    data::MiniBatchSampler sampler(dataset, so);
    std::vector<sim::ExecutionPlan> plans;
    for (int i = 0; i < 3 && sampler.HasNext(); ++i) {
      runtime::IterationPlan plan = planner.PlanIteration(sampler.Next());
      EXPECT_TRUE(plan.feasible) << plan.infeasible_reason;
      plans.push_back(std::move(plan.replicas[0].exec_plan));
    }
    return plans;
  };
  // Plan before fork(): the planner work is threadless here, so the child
  // inherits no locks.
  const std::vector<sim::ExecutionPlan> exec_plans = plan_epoch();
  ASSERT_EQ(exec_plans.size(), 3u);

  std::vector<std::string> expected_bytes;
  for (const auto& plan : exec_plans) {
    expected_bytes.push_back(service::EncodeExecutionPlan(plan));
  }

  const std::string shm_name =
      "/dynapipe-tt-fork-" + std::to_string(::getpid());
  int ready_pipe[2];
  int result_pipe[2];
  ASSERT_EQ(::pipe(ready_pipe), 0);
  ASSERT_EQ(::pipe(result_pipe), 0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Executor process: attach by name, acquire zero-copy views, stream the
    // raw mapped bytes back. Nonzero exits become parent-side failures.
    ::close(ready_pipe[1]);
    ::close(result_pipe[0]);
    char go;
    if (!ReadFull(ready_pipe[0], &go, 1)) {
      ::_exit(2);
    }
    auto store = transport::ShmInstructionStore::Attach(
        shm_name, /*timeout_ms=*/10'000);
    for (size_t i = 0; i < exec_plans.size(); ++i) {
      const auto view = store->AcquireView(static_cast<int64_t>(i), 0);
      const uint32_t len = static_cast<uint32_t>(view.bytes().size());
      if (!WriteFull(result_pipe[1], &len, sizeof(len)) ||
          !WriteFull(result_pipe[1], view.bytes().data(),
                     view.bytes().size())) {
        ::_exit(3);
      }
    }
    ::_exit(0);
  }

  // Planner process: create the segment, publish, signal.
  ::close(ready_pipe[0]);
  ::close(result_pipe[1]);
  auto store = transport::ShmInstructionStore::Create(
      shm_name, transport::ShmStoreOptions{});
  for (size_t i = 0; i < exec_plans.size(); ++i) {
    store->Push(static_cast<int64_t>(i), 0, exec_plans[i]);
  }
  EXPECT_EQ(store->serialized_bytes_total(),
            static_cast<int64_t>(expected_bytes[0].size() +
                                 expected_bytes[1].size() +
                                 expected_bytes[2].size()));
  ASSERT_TRUE(WriteFull(ready_pipe[1], "g", 1));

  for (size_t i = 0; i < exec_plans.size(); ++i) {
    uint32_t len = 0;
    ASSERT_TRUE(ReadFull(result_pipe[0], &len, sizeof(len))) << "iteration " << i;
    std::string bytes(len, '\0');
    ASSERT_TRUE(ReadFull(result_pipe[0], bytes.data(), bytes.size()));
    EXPECT_EQ(bytes, expected_bytes[i]) << "iteration " << i;
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "executor process exited with status " << status;
  EXPECT_EQ(store->size(), 0u);  // the executor drained the epoch
  ::close(ready_pipe[1]);
  ::close(result_pipe[0]);
}

// ---------- the executor daemon (acceptance criterion) ----------

// Three fork()ed executor processes — src/executor/RunExecutor, the library
// behind tools/dynapipe_executor — attach to the trainer-side store server,
// fetch their replica's plans, execute them on their own ClusterSims, and
// heartbeat completion back over the transport. Replica 2 is deliberately
// slowed; the trainer's HeartbeatMonitor must attribute the straggle to it
// (and only it) on every iteration, and every plan each executor fetched
// must re-encode to exactly the bytes the trainer published. Replica 1
// attaches through the multiplexed client so heartbeats from both wire
// client types are exercised.
TEST(ExecutorDaemonTest, ForkedExecutorsHeartbeatAndStragglerIsAttributed) {
  // Plan the epoch inline and threadless so the forks below inherit nothing.
  cost::ProfileOptions profile;
  profile.max_microbatch_size = 32;
  profile.max_seq_len = 4096;
  const auto cm = cost::PipelineCostModel::Profile(
      model::ModelConfig::Gpt3_35B(), model::HardwareSpec{}, {1, 1, 4}, profile);
  runtime::PlannerOptions popts;
  popts.max_tmax_candidates = 48;
  popts.tmax_interval_ms = 0.5;
  popts.max_microbatch_size = 32;
  popts.reorder_clusters = 2;
  popts.dynamic_recompute = false;
  runtime::IterationPlanner planner(cm, popts);
  data::FlanGeneratorOptions gen;
  gen.num_samples = 300;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  data::MiniBatchSamplerOptions so;
  so.global_batch_tokens = 6144;
  so.max_input_len = 1024;
  so.seed = 7;
  data::MiniBatchSampler sampler(dataset, so);

  constexpr int kIterations = 3;
  constexpr int32_t kReplicas = 3;
  constexpr int32_t kSlowReplica = 2;
  constexpr double kSlowMs = 250.0;
  std::vector<sim::ExecutionPlan> exec_plans;
  std::vector<std::string> expected_bytes;
  for (int i = 0; i < kIterations && sampler.HasNext(); ++i) {
    runtime::IterationPlan plan = planner.PlanIteration(sampler.Next());
    ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
    exec_plans.push_back(std::move(plan.replicas[0].exec_plan));
    expected_bytes.push_back(service::EncodeExecutionPlan(exec_plans.back()));
  }
  ASSERT_EQ(exec_plans.size(), static_cast<size_t>(kIterations));

  const std::string socket_path = UniqueSocketPath("daemon");
  std::vector<pid_t> children;
  for (int32_t replica = 0; replica < kReplicas; ++replica) {
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // Executor process: the real daemon flow. RunExecutor retries the
      // connect while the parent is still binding the socket, so no ready
      // signal is needed. Exit codes become parent-side failures.
      executor::ExecutorOptions opts;
      opts.attach = socket_path;
      opts.endpoint = replica == 1 ? executor::AttachEndpoint::kUnixSocketMux
                                   : executor::AttachEndpoint::kUnixSocket;
      opts.replica = replica;
      opts.iterations = kIterations;
      opts.slow_ms = replica == kSlowReplica ? kSlowMs : 0.0;
      bool bytes_ok = true;
      opts.observer = [&](const executor::IterationOutcome& outcome) {
        bytes_ok = bytes_ok &&
                   service::EncodeExecutionPlan(*outcome.plan) ==
                       expected_bytes[static_cast<size_t>(outcome.iteration)];
      };
      const executor::ExecutorReport report = executor::RunExecutor(opts);
      if (!report.ok) ::_exit(2);
      if (!bytes_ok) ::_exit(3);
      if (!report.heartbeat_supported ||
          report.heartbeats_sent != kIterations) {
        ::_exit(4);
      }
      ::_exit(0);
    }
    children.push_back(child);
  }

  // Trainer process: serve the store with a heartbeat monitor and publish
  // every replica's plans.
  // Margins sized for TSan (5-20x slowdown inflates fast replicas'
  // walls but not the sleep): a false flag needs a fast replica over
  // 2*median + 50 ms, a miss needs the fast median over ~200 ms.
  service::HeartbeatMonitor monitor(service::HeartbeatMonitorOptions{
      /*straggler_multiple=*/2.0, /*min_straggler_gap_ms=*/50.0});
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  store.set_heartbeat_sink(&monitor);
  transport::UnixSocketTransport transport(socket_path);
  transport::InstructionStoreServer server(&transport, &store);
  for (int i = 0; i < kIterations; ++i) {
    for (int32_t replica = 0; replica < kReplicas; ++replica) {
      store.Push(i, replica, exec_plans[static_cast<size_t>(i)]);
    }
  }

  for (const pid_t child : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "executor exited with status " << status;
  }
  EXPECT_EQ(store.size(), 0u);  // every plan fetched exactly once

  // Straggler attribution: every iteration saw all replicas, and the slowed
  // one — only the slowed one — is over 2x median + 50 ms.
  EXPECT_EQ(monitor.total_heartbeats(), kIterations * kReplicas);
  for (int i = 0; i < kIterations; ++i) {
    const service::IterationHeartbeatStats stats = monitor.ForIteration(i);
    EXPECT_EQ(stats.replicas_reported, kReplicas) << "iteration " << i;
    EXPECT_EQ(stats.stragglers, std::vector<int32_t>{kSlowReplica})
        << "iteration " << i;
    EXPECT_GE(stats.max_wall_ms, kSlowMs) << "iteration " << i;
  }
  // Progress frontiers: every replica finished the epoch, nobody lags.
  for (int32_t replica = 0; replica < kReplicas; ++replica) {
    EXPECT_EQ(monitor.LastIteration(replica), kIterations - 1);
  }
  EXPECT_TRUE(monitor.LaggingReplicas(0).empty());
  server.Stop();
}

// The daemon shape: an open-ended executor (iterations < 0) drains plans as
// they appear and exits *cleanly* — ok report, no abort — when the
// publisher tears its server down, because the publish poll probes the
// socket non-fatally over throwaway connections instead of going through a
// store client's fatal Contains. Both wire attachments are covered: the mux
// endpoint polls the same way precisely so server teardown cannot race a
// Contains on its persistent stream into the fatal no-reply contract.
TEST(ExecutorDaemonTest, OpenEndedRunExitsCleanlyWhenPublisherShutsDown) {
  for (const auto endpoint : {executor::AttachEndpoint::kUnixSocket,
                              executor::AttachEndpoint::kUnixSocketMux}) {
    SCOPED_TRACE(executor::EndpointName(endpoint));
    const std::string socket_path = UniqueSocketPath("drain");
    service::HeartbeatMonitor monitor;
    runtime::InstructionStore store(
        runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
    auto transport =
        std::make_unique<transport::UnixSocketTransport>(socket_path);
    store.set_heartbeat_sink(&monitor);
    auto server = std::make_unique<transport::InstructionStoreServer>(
        transport.get(), &store);
    store.Push(0, 0, MarkerPlan(1));
    store.Push(1, 0, MarkerPlan(2));

    executor::ExecutorReport report;
    std::thread daemon([&] {
      executor::ExecutorOptions opts;
      opts.attach = socket_path;
      opts.endpoint = endpoint;
      opts.replica = 0;
      opts.iterations = -1;           // open-ended: run until the epoch ends
      opts.idle_timeout_ms = 30'000;  // exit must come from teardown
      report = executor::RunExecutor(opts);
    });
    // Both published plans executed and heartbeat; the daemon is now parked
    // polling for iteration 2.
    while (monitor.total_heartbeats() < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Publisher teardown: destroying the transport closes the listener and
    // unlinks the path, so the daemon's probes read "publisher gone".
    server->Stop();
    server.reset();
    transport.reset();
    daemon.join();
    EXPECT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.iterations_run, 2);
    EXPECT_EQ(report.heartbeats_sent, 2);
    EXPECT_EQ(store.size(), 0u);
  }
}

// ---------- the failure control loop (acceptance criterion) ----------

// Child-process body shared by the fault control-loop tests: optionally arm
// one injected fault, run the executor, and encode the outcome as an exit
// code the parent can assert on. gtest macros don't work in a fork()ed
// child, so exit codes are the verdict:
//   0 clean run    2 run failed    3 fetched bytes not among the published
//   5 expected a reconnect that never happened    7 evicted    9 bad spec
// Byte checks are set-membership (not index) because a survivor that picks
// up a dead replica's re-published plan sees it at a spare iteration number,
// with bytes identical to some plan the parent published.
[[noreturn]] void RunFaultChild(const std::string& socket_path,
                                executor::AttachEndpoint endpoint,
                                int32_t replica,
                                const std::vector<std::string>& expected_bytes,
                                const char* fault_spec, int64_t iterations,
                                bool require_reconnect, double slow_ms = 0.0,
                                int idle_timeout_ms = 30'000) {
  if (fault_spec != nullptr) {
    common::FaultSpec spec;
    std::string error;
    if (!common::ParseFaultSpec(fault_spec, &spec, &error)) {
      ::_exit(9);
    }
    common::FaultInjector::Instance().Arm(spec);
  }
  executor::ExecutorOptions opts;
  opts.attach = socket_path;
  opts.endpoint = endpoint;
  opts.replica = replica;
  opts.iterations = iterations;
  opts.slow_ms = slow_ms;
  opts.idle_timeout_ms = idle_timeout_ms;
  bool bytes_ok = true;
  opts.observer = [&](const executor::IterationOutcome& outcome) {
    const std::string bytes = service::EncodeExecutionPlan(*outcome.plan);
    bytes_ok = bytes_ok && std::find(expected_bytes.begin(),
                                     expected_bytes.end(),
                                     bytes) != expected_bytes.end();
  };
  const executor::ExecutorReport report = executor::RunExecutor(opts);
  if (!bytes_ok) ::_exit(3);
  if (report.evicted) ::_exit(7);
  if (!report.ok) ::_exit(2);
  if (require_reconnect && report.reconnects == 0) ::_exit(5);
  ::_exit(0);
}

bool WaitUntil(const std::function<bool()>& condition, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!condition()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

// Three executors; replica 1 SIGKILLs itself at iteration 1's heartbeat
// fault point — a real crash, no unwind, no goodbye. The dedicated liveness
// stream it held drops uncleanly, so with connection grace 0 the monitor
// declares it dead immediately; the recovery coordinator moves its one
// unfetched plan (iteration 2) to a survivor at a spare iteration number,
// and the open-ended survivors — parked polling past their own epoch —
// pick it up and drain the store to zero. Plans are byte-identical: the
// children verify every fetched plan re-encodes to bytes the parent
// published. fork() happens before any parent-side thread exists (TSan).
TEST(FaultControlLoopTest, KilledExecutorIsDeclaredDeadAndBacklogMoves) {
  constexpr int kIterations = 3;
  constexpr int32_t kReplicas = 3;
  constexpr int32_t kVictim = 1;
  std::vector<std::vector<sim::ExecutionPlan>> plans(kReplicas);
  std::vector<std::string> expected;
  for (int i = 0; i < kIterations; ++i) {
    for (int32_t r = 0; r < kReplicas; ++r) {
      plans[static_cast<size_t>(r)].push_back(MarkerPlan(10 * i + r));
      expected.push_back(
          service::EncodeExecutionPlan(plans[static_cast<size_t>(r)].back()));
    }
  }
  const std::string socket_path = UniqueSocketPath("kill");
  std::vector<pid_t> children;
  for (int32_t r = 0; r < kReplicas; ++r) {
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      RunFaultChild(socket_path, executor::AttachEndpoint::kUnixSocket, r,
                    expected, r == kVictim ? "crash@1" : nullptr,
                    /*iterations=*/-1, /*require_reconnect=*/false);
    }
    children.push_back(child);
  }

  // Control plane. No heartbeat deadlines: death comes from the unclean
  // connection drop alone (grace 0 = a vanished process is dead now). The
  // coordinator subscribes before the server serves its first frame.
  service::HeartbeatMonitor monitor;
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  store.set_heartbeat_sink(&monitor);
  service::RecoveryOptions ropts;
  ropts.replicas = {0, 1, 2};
  ropts.spare_iteration_base = kIterations;
  service::RecoveryCoordinator recovery(&store, &monitor, ropts);
  auto transport = std::make_unique<transport::UnixSocketTransport>(socket_path);
  auto server = std::make_unique<transport::InstructionStoreServer>(
      transport.get(), &store);
  for (int i = 0; i < kIterations; ++i) {
    for (int32_t r = 0; r < kReplicas; ++r) {
      store.Push(i, r, plans[static_cast<size_t>(r)][static_cast<size_t>(i)]);
    }
  }

  // The victim dies by SIGKILL at its own fault point, after consuming
  // iterations 0 and 1.
  int status = 0;
  ASSERT_EQ(::waitpid(children[kVictim], &status, 0), children[kVictim]);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "victim status " << status;
  // Death declared, backlog re-published, survivors drain everything —
  // including the moved plan at its spare iteration.
  ASSERT_TRUE(WaitUntil([&] { return store.size() == 0; }, 30'000));
  EXPECT_EQ(monitor.Liveness(kVictim), service::ReplicaLiveness::kDead);
  EXPECT_EQ(monitor.DeadReplicas(), std::vector<int32_t>{kVictim});
  const service::RecoveryReport report = recovery.report();
  EXPECT_EQ(report.dead_replicas, std::vector<int32_t>{kVictim});
  EXPECT_EQ(report.replanned_iterations, 1);  // iteration 2's plan moved
  EXPECT_EQ(report.dropped_iterations, 0);
  EXPECT_FALSE(report.fail_fast_triggered);
  EXPECT_GE(report.recovery_ms, 0.0);

  // Teardown ends the survivors' open-ended runs cleanly.
  server->Stop();
  server.reset();
  transport.reset();
  for (int32_t r = 0; r < kReplicas; ++r) {
    if (r == kVictim) continue;
    ASSERT_EQ(::waitpid(children[static_cast<size_t>(r)], &status, 0),
              children[static_cast<size_t>(r)]);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "survivor " << r << " status " << status;
  }
}

// Replica 1 wedges (stalls 1500 ms mid-iteration — connection still up, so
// only the heartbeat deadline can catch it). The watchdog declares it dead
// at dead_after_ms, its pending plan moves to a survivor, and when the
// stalled process wakes and heartbeats, the server answers kEvicted: the
// zombie stops instead of double-running work that was re-published. The
// drained survivors meanwhile sit in publish-polls — traffic that refreshes
// their liveness, which is exactly why a deadline much shorter than the
// idle window doesn't kill them. Margins are TSan-safe: the 1500 ms sleep
// is not inflated, and the deadline only has to split 1500 from the
// milliseconds of real work per iteration.
TEST(FaultControlLoopTest, StalledExecutorIsEvictedAndSurvivorsTakeBacklog) {
  constexpr int kIterations = 3;
  constexpr int32_t kReplicas = 3;
  constexpr int32_t kVictim = 1;
  std::vector<std::vector<sim::ExecutionPlan>> plans(kReplicas);
  std::vector<std::string> expected;
  for (int i = 0; i < kIterations; ++i) {
    for (int32_t r = 0; r < kReplicas; ++r) {
      plans[static_cast<size_t>(r)].push_back(MarkerPlan(100 + 10 * i + r));
      expected.push_back(
          service::EncodeExecutionPlan(plans[static_cast<size_t>(r)].back()));
    }
  }
  const std::string socket_path = UniqueSocketPath("stall");
  std::vector<pid_t> children;
  for (int32_t r = 0; r < kReplicas; ++r) {
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      RunFaultChild(socket_path, executor::AttachEndpoint::kUnixSocketMux, r,
                    expected, r == kVictim ? "stall:1500@1" : nullptr,
                    /*iterations=*/-1, /*require_reconnect=*/false);
    }
    children.push_back(child);
  }

  service::HeartbeatMonitorOptions mopts;
  mopts.suspect_after_ms = 150.0;
  mopts.dead_after_ms = 450.0;
  service::HeartbeatMonitor monitor(mopts);
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  store.set_heartbeat_sink(&monitor);
  service::RecoveryOptions ropts;
  ropts.replicas = {0, 1, 2};
  ropts.spare_iteration_base = kIterations;
  service::RecoveryCoordinator recovery(&store, &monitor, ropts);
  auto transport = std::make_unique<transport::UnixSocketTransport>(socket_path);
  auto server = std::make_unique<transport::InstructionStoreServer>(
      transport.get(), &store);
  for (int i = 0; i < kIterations; ++i) {
    for (int32_t r = 0; r < kReplicas; ++r) {
      store.Push(i, r, plans[static_cast<size_t>(r)][static_cast<size_t>(i)]);
    }
  }

  // The victim wakes from its stall into a kEvicted heartbeat reply and
  // exits as evicted (code 7) — the server must still be up for it to hear
  // the verdict, so it is reaped before teardown.
  int status = 0;
  ASSERT_EQ(::waitpid(children[kVictim], &status, 0), children[kVictim]);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 7)
      << "victim status " << status;
  ASSERT_TRUE(WaitUntil([&] { return store.size() == 0; }, 30'000));
  EXPECT_EQ(monitor.DeadReplicas(), std::vector<int32_t>{kVictim});
  const service::RecoveryReport report = recovery.report();
  EXPECT_EQ(report.dead_replicas, std::vector<int32_t>{kVictim});
  EXPECT_EQ(report.replanned_iterations, 1);
  EXPECT_EQ(report.dropped_iterations, 0);

  server->Stop();
  server.reset();
  transport.reset();
  for (int32_t r = 0; r < kReplicas; ++r) {
    if (r == kVictim) continue;
    ASSERT_EQ(::waitpid(children[static_cast<size_t>(r)], &status, 0),
              children[static_cast<size_t>(r)]);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "survivor " << r << " status " << status;
  }
}

// Replica 1's third frame on its persistent mux stream is corrupted in
// flight (the injector flips the type byte, so the server deterministically
// rejects it and drops the connection). With a connection grace configured
// the drop is suspicion, not death: the executor reconnects, re-attaches,
// retries, and finishes its counted run — the fault is a hiccup, nobody is
// declared dead, and nothing is re-published.
TEST(FaultControlLoopTest, CorruptedFrameCausesReconnectNotDeath) {
  constexpr int kIterations = 3;
  constexpr int32_t kReplicas = 3;
  constexpr int32_t kVictim = 1;
  std::vector<std::vector<sim::ExecutionPlan>> plans(kReplicas);
  std::vector<std::string> expected;
  for (int i = 0; i < kIterations; ++i) {
    for (int32_t r = 0; r < kReplicas; ++r) {
      plans[static_cast<size_t>(r)].push_back(MarkerPlan(200 + 10 * i + r));
      expected.push_back(
          service::EncodeExecutionPlan(plans[static_cast<size_t>(r)].back()));
    }
  }
  const std::string socket_path = UniqueSocketPath("corrupt");
  std::vector<pid_t> children;
  for (int32_t r = 0; r < kReplicas; ++r) {
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      RunFaultChild(socket_path, executor::AttachEndpoint::kUnixSocketMux, r,
                    expected, r == kVictim ? "corrupt@2" : nullptr,
                    /*iterations=*/kIterations,
                    /*require_reconnect=*/r == kVictim);
    }
    children.push_back(child);
  }

  service::HeartbeatMonitorOptions mopts;
  mopts.connection_grace_ms = 2'000.0;  // a drop is suspicion, not death
  service::HeartbeatMonitor monitor(mopts);
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  store.set_heartbeat_sink(&monitor);
  service::RecoveryOptions ropts;
  ropts.replicas = {0, 1, 2};
  ropts.spare_iteration_base = kIterations;
  service::RecoveryCoordinator recovery(&store, &monitor, ropts);
  auto transport = std::make_unique<transport::UnixSocketTransport>(socket_path);
  auto server = std::make_unique<transport::InstructionStoreServer>(
      transport.get(), &store);
  for (int i = 0; i < kIterations; ++i) {
    for (int32_t r = 0; r < kReplicas; ++r) {
      store.Push(i, r, plans[static_cast<size_t>(r)][static_cast<size_t>(i)]);
    }
  }

  for (const pid_t child : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "executor status " << status;
  }
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(monitor.DeadReplicas().empty());
  const service::RecoveryReport report = recovery.report();
  EXPECT_TRUE(report.dead_replicas.empty());
  EXPECT_EQ(report.replanned_iterations, 0);
  server->Stop();
}

// Two deaths in one epoch. Replica 1 crashes at its first heartbeat; the
// first recovery moves its two unfetched plans to spare keys on the
// survivors — one lands on replica 2. Replica 2 (deliberately slowed so the
// first recovery completes while it is still mid-epoch) then crashes at its
// third heartbeat, dying with that inherited spare still unfetched. The
// second recovery must move the spare *again*: spare keys are per-replica
// monotonic and burn on allocation, so the re-move lands at a fresh key on
// replica 0 instead of colliding with the first death's allocations. The
// lone survivor drains everything — three replanned plans total, store
// empty, every fetched plan byte-identical to something published.
TEST(FaultControlLoopTest, SpareKeysSurviveASecondForkedDeath) {
  constexpr int kIterations = 3;
  constexpr int32_t kReplicas = 3;
  constexpr int32_t kFirstVictim = 1;
  constexpr int32_t kSecondVictim = 2;
  std::vector<std::vector<sim::ExecutionPlan>> plans(kReplicas);
  std::vector<std::string> expected;
  for (int i = 0; i < kIterations; ++i) {
    for (int32_t r = 0; r < kReplicas; ++r) {
      plans[static_cast<size_t>(r)].push_back(MarkerPlan(300 + 10 * i + r));
      expected.push_back(
          service::EncodeExecutionPlan(plans[static_cast<size_t>(r)].back()));
    }
  }
  const std::string socket_path = UniqueSocketPath("twokill");
  std::vector<pid_t> children;
  for (int32_t r = 0; r < kReplicas; ++r) {
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      const char* fault = r == kFirstVictim    ? "crash@0"
                          : r == kSecondVictim ? "crash@2"
                                               : nullptr;
      // The second victim is paced so the first death's recovery publishes
      // the inherited spare well before this replica reaches its own crash
      // point — the spare must demonstrably be resident when it dies.
      RunFaultChild(socket_path, executor::AttachEndpoint::kUnixSocket, r,
                    expected, fault, /*iterations=*/-1,
                    /*require_reconnect=*/false,
                    /*slow_ms=*/r == kSecondVictim ? 150.0 : 0.0);
    }
    children.push_back(child);
  }

  service::HeartbeatMonitor monitor;
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  store.set_heartbeat_sink(&monitor);
  service::RecoveryOptions ropts;
  ropts.replicas = {0, 1, 2};
  ropts.spare_iteration_base = kIterations;
  service::RecoveryCoordinator recovery(&store, &monitor, ropts);
  auto transport = std::make_unique<transport::UnixSocketTransport>(socket_path);
  auto server = std::make_unique<transport::InstructionStoreServer>(
      transport.get(), &store);
  for (int i = 0; i < kIterations; ++i) {
    for (int32_t r = 0; r < kReplicas; ++r) {
      store.Push(i, r, plans[static_cast<size_t>(r)][static_cast<size_t>(i)]);
    }
  }

  // Both victims die by SIGKILL at their fault points, in pace order.
  int status = 0;
  ASSERT_EQ(::waitpid(children[kFirstVictim], &status, 0),
            children[kFirstVictim]);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "first victim status " << status;
  ASSERT_EQ(::waitpid(children[kSecondVictim], &status, 0),
            children[kSecondVictim]);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "second victim status " << status;

  ASSERT_TRUE(WaitUntil([&] { return store.size() == 0; }, 30'000));
  EXPECT_EQ(monitor.DeadReplicas(),
            (std::vector<int32_t>{kFirstVictim, kSecondVictim}));
  const service::RecoveryReport report = recovery.report();
  EXPECT_EQ(report.dead_replicas,
            (std::vector<int32_t>{kFirstVictim, kSecondVictim}));
  // First death: iterations 1 and 2 of replica 1 move. Second death: the
  // spare replica 2 inherited moves on. 2 + 1, no plan lost.
  EXPECT_EQ(report.replanned_iterations, 3);
  EXPECT_EQ(report.dropped_iterations, 0);
  EXPECT_FALSE(report.fail_fast_triggered);

  server->Stop();
  server.reset();
  transport.reset();
  ASSERT_EQ(::waitpid(children[0], &status, 0), children[0]);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "survivor status " << status;
}

// ---------- the shm failure control loop (acceptance criterion) ----------

std::string UniqueShmName(const char* tag) {
  static std::atomic<uint64_t> counter{0};
  return std::string("/dynapipe-tt-") + tag + "-" + std::to_string(::getpid()) +
         "-" + std::to_string(counter.fetch_add(1));
}

// The crash-pinned arena. A reader process acquires a zero-copy view — which
// pins the arena against rewinds — and is SIGKILLed before releasing it.
// The pin can never be released by its owner; a publisher blocked on arena
// space must notice the pinner is dead (kill(pid, 0) == ESRCH), reclaim the
// pin, rewind, and proceed on its own timed re-evaluation — no broadcast,
// nobody left to send one. The arena is sized to hold exactly one plan so
// the second Push genuinely parks on the pinned arena first. The parent
// reaps the child before expecting the reclaim: a zombie still answers
// kill(pid, 0), so liveness probing only sees the death after waitpid.
TEST(ShmFaultControlLoopTest, SigkilledReaderPinIsReclaimedAndArenaRewinds) {
  // Plans padded past the arena minimum (4 KB) so "room for one, not two"
  // is expressible: each encodes to a few KB of instructions.
  const auto fat_plan = [](int32_t marker) {
    sim::ExecutionPlan plan = MarkerPlan(marker);
    for (int i = 0; i < 256; ++i) {
      plan.devices[0].instructions.push_back(plan.devices[0].instructions[0]);
    }
    return plan;
  };
  const sim::ExecutionPlan plan_a = fat_plan(41);
  const sim::ExecutionPlan plan_b = fat_plan(42);
  const std::string bytes_a = service::EncodeExecutionPlan(plan_a);
  const std::string bytes_b = service::EncodeExecutionPlan(plan_b);
  const std::string shm_name = UniqueShmName("pin");

  int ready_pipe[2];   // parent -> child: segment exists
  int pinned_pipe[2];  // child -> parent: view acquired, arena pinned
  ASSERT_EQ(::pipe(ready_pipe), 0);
  ASSERT_EQ(::pipe(pinned_pipe), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(ready_pipe[1]);
    ::close(pinned_pipe[0]);
    char go;
    if (!ReadFull(ready_pipe[0], &go, 1)) ::_exit(2);
    auto reader = transport::ShmInstructionStore::Attach(shm_name, 10'000);
    auto view = reader->AcquireView(0, 0);
    if (view.bytes().empty()) ::_exit(3);
    if (!WriteFull(pinned_pipe[1], "p", 1)) ::_exit(4);
    // Park holding the pin until the parent SIGKILLs us: the view's
    // destructor never runs, so only dead-pin reclaim can free the arena.
    ::pause();
    ::_exit(5);
  }
  ::close(ready_pipe[0]);
  ::close(pinned_pipe[1]);

  transport::ShmStoreOptions sopts;
  // Room for one plan, not two: the second Push must wait for a rewind.
  sopts.arena_bytes = bytes_a.size() + bytes_a.size() / 2;
  auto store = transport::ShmInstructionStore::Create(shm_name, sopts);
  store->Push(0, 0, plan_a);
  ASSERT_TRUE(WriteFull(ready_pipe[1], "g", 1));
  char pinned;
  ASSERT_TRUE(ReadFull(pinned_pipe[0], &pinned, 1));

  // The publisher parks: the store is drained (the child consumed the only
  // plan) but the child's unreleased view pins the arena.
  std::atomic<bool> pushed{false};
  std::thread publisher([&] {
    store->Push(1, 0, plan_b);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_FALSE(pushed.load());  // a live pin really does hold the publisher
  EXPECT_EQ(store->pin_reclaims(), 0);

  ::kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // The parked publisher's next timed re-evaluation probes the pinner,
  // reclaims the dead pin, rewinds, and completes the push unaided.
  ASSERT_TRUE(WaitUntil([&] { return pushed.load(); }, 10'000));
  publisher.join();
  EXPECT_EQ(store->pin_reclaims(), 1);
  EXPECT_GE(store->arena_rewinds(), 1);
  // The reclaimed arena serves the new plan intact.
  {
    auto view = store->AcquireView(1, 0);
    EXPECT_EQ(view.bytes(), bytes_b);
  }
  ::close(ready_pipe[1]);
  ::close(pinned_pipe[0]);
}

// The shm-native straggler reaction, end to end with no socket anywhere:
// three executor processes attach to one segment; liveness and completions
// flow only through the segment's heartbeat slots into the trainer-side
// poller. Replica 1 stalls 1200 ms inside iteration 1, so its heartbeat
// arrives late and over-wall; the monitor flags it the moment the report
// set completes, and the rebalance coordinator moves the tail of its
// unfetched backlog to spare keys on the fast replicas, which drain them.
// Every child verifies each fetched plan re-encodes to published bytes
// (set membership — migrated plans appear under spare keys, bytes
// unchanged). All children are paced identically so pacing cannot shift
// the straggler medians, and so the stalled replica still has a movable
// backlog when its flag lands.
TEST(ShmFaultControlLoopTest, StalledShmExecutorIsFlaggedAndBacklogRebalances) {
  constexpr int kIterations = 6;
  constexpr int32_t kReplicas = 3;
  constexpr int32_t kVictim = 1;
  constexpr double kPaceMs = 60.0;
  std::vector<std::vector<sim::ExecutionPlan>> plans(kReplicas);
  std::vector<std::string> expected;
  for (int i = 0; i < kIterations; ++i) {
    for (int32_t r = 0; r < kReplicas; ++r) {
      plans[static_cast<size_t>(r)].push_back(MarkerPlan(400 + 10 * i + r));
      expected.push_back(
          service::EncodeExecutionPlan(plans[static_cast<size_t>(r)].back()));
    }
  }
  const std::string shm_name = UniqueShmName("stall");
  std::vector<pid_t> children;
  for (int32_t r = 0; r < kReplicas; ++r) {
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // Open-ended: survivors must pick up migrated plans at spare keys
      // past their own epoch. The idle timeout is the exit condition — it
      // must outlast the park between a fast replica draining its epoch
      // (~360 ms) and the migration landing (after the 1200 ms stall).
      RunFaultChild(shm_name, executor::AttachEndpoint::kSharedMemory, r,
                    expected, r == kVictim ? "stall:1200@1" : nullptr,
                    /*iterations=*/-1, /*require_reconnect=*/false,
                    /*slow_ms=*/kPaceMs, /*idle_timeout_ms=*/5'000);
    }
    children.push_back(child);
  }

  // Control plane, created only after the forks (no threads cross fork).
  // No death deadlines: a 1200 ms stall must stay a straggler, never a
  // death — rebalancing, not recovery, is under test.
  service::HeartbeatMonitorOptions mopts;
  mopts.straggler_multiple = 2.0;
  mopts.min_straggler_gap_ms = 50.0;
  mopts.expected_replicas = kReplicas;
  service::HeartbeatMonitor monitor(mopts);
  auto store = transport::ShmInstructionStore::Create(
      shm_name, transport::ShmStoreOptions{});
  service::RebalanceOptions bopts;
  bopts.consecutive_flags = 1;
  bopts.max_moves_per_event = 2;
  bopts.hysteresis_iterations = kIterations;  // one event per epoch, max
  bopts.replicas = {0, 1, 2};
  bopts.spare_iteration_base = kIterations;
  service::RebalanceCoordinator rebalance(store.get(), &monitor, bopts);
  transport::ShmHeartbeatPoller poller(store, &monitor);
  for (int i = 0; i < kIterations; ++i) {
    for (int32_t r = 0; r < kReplicas; ++r) {
      store->Push(i, r, plans[static_cast<size_t>(r)][static_cast<size_t>(i)]);
    }
  }

  // Every plan — including the migrated ones at spare keys — executes
  // exactly once somewhere, so the drain and the heartbeat total are exact
  // regardless of how the move races resolve.
  ASSERT_TRUE(WaitUntil([&] { return store->size() == 0; }, 30'000));
  ASSERT_TRUE(WaitUntil(
      [&] {
        return monitor.total_heartbeats() >= kIterations * kReplicas;
      },
      10'000));
  EXPECT_EQ(monitor.total_heartbeats(), kIterations * kReplicas);

  for (const pid_t child : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "executor status " << status;
  }

  // The stall was detected through the segment alone: iteration 1 saw all
  // three replicas report and flagged exactly the stalled one.
  const service::IterationHeartbeatStats stalled = monitor.ForIteration(1);
  EXPECT_EQ(stalled.replicas_reported, kReplicas);
  EXPECT_EQ(stalled.stragglers, std::vector<int32_t>{kVictim});
  EXPECT_GE(stalled.max_wall_ms, 1200.0);
  // And reacted to: unfetched backlog moved off the straggler mid-epoch.
  const service::RebalanceReport report = rebalance.report();
  EXPECT_GE(report.events, 1);
  EXPECT_GE(report.moved_iterations, 1);
  EXPECT_EQ(report.rebalanced_replicas, std::vector<int32_t>{kVictim});
  // Nobody was declared dead: a stall is a straggle, not a failure.
  EXPECT_TRUE(monitor.DeadReplicas().empty());
}

// The mux client against the store server: many threads sharing ONE stream,
// pushes parked in deferred-kOk backpressure while fetches on the same
// stream free them — the scenario the demux loop and credit protocol exist
// for.
TEST(MuxStoreTest, ConcurrentPushersAndFetchersShareOneStream) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/2});
  transport::LoopbackTransport transport;
  transport::InstructionStoreServer server(&transport, &store);
  {
    auto client = transport::MuxInstructionStore::OverTransport(&transport);

    constexpr int kPlans = 24;
    std::thread producer([&] {
      for (int i = 0; i < kPlans; ++i) {
        client->Push(i, 0, MarkerPlan(i));  // parks whenever 2 are resident
      }
    });
    for (int i = 0; i < kPlans; ++i) {
      // Publish-before-fetch: poll Contains (multiplexed over the same
      // stream the parked Push is waiting on) until the plan lands.
      while (!client->Contains(i, 0)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      EXPECT_EQ(client->Fetch(i, 0), MarkerPlan(i));
    }
    producer.join();
    EXPECT_EQ(client->size(), 0u);
    EXPECT_TRUE(client->connection_ok());
    // Every exchange multiplexed over the single persistent connection.
    EXPECT_GE(server.requests_served(), 2 * kPlans + 1);
  }
  server.Stop();
}

}  // namespace
}  // namespace dynapipe
