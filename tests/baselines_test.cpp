// Tests for src/baselines: packing correctness and the alternative batchers.
#include <set>

#include <gtest/gtest.h>

#include "src/baselines/batchers.h"
#include "src/baselines/packing.h"
#include "src/common/rng.h"
#include "src/mb/ordering.h"

namespace dynapipe::baselines {
namespace {

data::Sample S(int32_t input, int32_t target = 0, uint64_t id = 0) {
  data::Sample s;
  s.id = id;
  s.input_len = input;
  s.target_len = target;
  return s;
}

std::vector<data::Sample> RandomSamples(int n, uint64_t seed, int32_t max_in = 3000,
                                        int32_t max_tg = 400) {
  dynapipe::Rng rng(seed);
  std::vector<data::Sample> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(S(static_cast<int32_t>(rng.NextInt(1, max_in)),
                    static_cast<int32_t>(rng.NextInt(1, max_tg)),
                    static_cast<uint64_t>(i)));
  }
  return out;
}

// ---------- Packing ----------

TEST(PackingTest, NoBinExceedsCapacity) {
  PackingOptions opts;
  opts.max_input_len = 2048;
  opts.max_target_len = 512;
  const auto bins = PackSamples(RandomSamples(500, 1), opts);
  for (const auto& bin : bins) {
    EXPECT_LE(bin.input_fill, 2048);
    EXPECT_LE(bin.target_fill, 512);
    EXPECT_FALSE(bin.members.empty());
  }
}

TEST(PackingTest, EverySamplePlacedExactlyOnce) {
  PackingOptions opts;
  opts.max_input_len = 1024;
  const auto samples = RandomSamples(300, 2, 900, 100);
  const auto bins = PackSamples(samples, opts);
  std::set<uint64_t> seen;
  for (const auto& bin : bins) {
    for (const auto& s : bin.members) {
      EXPECT_TRUE(seen.insert(s.id).second);
    }
  }
  EXPECT_EQ(seen.size(), samples.size());
}

TEST(PackingTest, LongSamplesTruncated) {
  PackingOptions opts;
  opts.max_input_len = 512;
  opts.max_target_len = 64;
  const auto bins = PackSamples({S(10'000, 500)}, opts);
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_EQ(bins[0].input_fill, 512);
  EXPECT_EQ(bins[0].target_fill, 64);
}

TEST(PackingTest, ShortSamplesShareBins) {
  PackingOptions opts;
  opts.max_input_len = 1000;
  opts.max_target_len = 1000;
  const auto bins = PackSamples({S(300, 10), S(300, 10), S(300, 10)}, opts);
  EXPECT_EQ(bins.size(), 1u);
  EXPECT_EQ(bins[0].members.size(), 3u);
  EXPECT_EQ(bins[0].input_fill, 900);
}

TEST(PackingTest, HighFillEfficiencyOnShortSamples) {
  // Packing many short samples should fill bins nearly to capacity — the paper's
  // premise that packing is padding-efficient.
  PackingOptions opts;
  opts.max_input_len = 2048;
  opts.max_target_len = 512;
  const auto samples = RandomSamples(2000, 3, 300, 40);
  const auto bins = PackSamples(samples, opts);
  int64_t fill = 0;
  for (const auto& bin : bins) {
    fill += bin.input_fill;
  }
  const double mean_fill =
      static_cast<double>(fill) / static_cast<double>(bins.size());
  EXPECT_GT(mean_fill / 2048.0, 0.85);
}

TEST(PackingTest, SortBeforePackingDoesNotLoseSamples) {
  PackingOptions opts;
  opts.max_input_len = 1024;
  opts.sort_before_packing = true;
  const auto samples = RandomSamples(200, 4, 800, 100);
  const auto bins = PackSamples(samples, opts);
  size_t total = 0;
  for (const auto& bin : bins) {
    total += bin.members.size();
  }
  EXPECT_EQ(total, samples.size());
}

TEST(PackedMicroBatchesTest, GroupsBinsBySize) {
  PackingOptions opts;
  opts.max_input_len = 512;
  opts.max_target_len = 128;
  const auto bins = PackSamples(RandomSamples(400, 5, 450, 60), opts);
  const auto mbs = PackedMicroBatches(bins, 4, 512, 128);
  size_t total_seqs = 0;
  for (const auto& m : mbs) {
    EXPECT_LE(m.shape.num_samples, 4);
    total_seqs += m.samples.size();
  }
  EXPECT_EQ(total_seqs, bins.size());
}

TEST(PackedMicroBatchesTest, ShapeIsTheStaticPackedShape) {
  PackingOptions opts;
  opts.max_input_len = 1024;
  opts.max_target_len = 256;
  const auto bins = PackSamples(RandomSamples(1000, 6, 200, 30), opts);
  const auto mbs = PackedMicroBatches(bins, 8, 1024, 256);
  // Static dataloaders emit fixed-shape tensors: the quadratic-attention cost of
  // packing follows from every sequence being max_seq_len long.
  for (const auto& m : mbs) {
    EXPECT_EQ(m.shape.input_len, 1024);
    EXPECT_EQ(m.shape.target_len, 256);
  }
}

TEST(PackedMicroBatchesTest, T5DecoderSideMostlyPadding) {
  // The input dimension saturates bins first, so decoder fill stays low — the
  // paper's Fig. 15b packing behaviour.
  PackingOptions opts;
  opts.max_input_len = 2048;
  opts.max_target_len = 512;
  const auto samples = RandomSamples(2000, 12, 600, 40);  // targets ~20 tokens
  const auto bins = PackSamples(samples, opts);
  const auto mbs = PackedMicroBatches(bins, 4, 2048, 512);
  const mb::PaddingStats stats = mb::ComputePaddingStats(mbs);
  EXPECT_GT(stats.input_efficiency(), 0.75);
  EXPECT_LT(stats.target_efficiency(), 0.5);
}

// ---------- Token-based / fixed-size / naive ----------

TEST(TokenBasedTest, RespectsTokenBudget) {
  auto ordered = mb::OrderSamples(RandomSamples(300, 7),
                                  mb::OrderingMethod::kSortByLength);
  const auto mbs = TokenBasedMicroBatches(ordered, 8192);
  for (const auto& m : mbs) {
    if (m.shape.num_samples > 1) {
      // Removing the last sample must bring it under budget.
      const int64_t without_one =
          static_cast<int64_t>(m.shape.num_samples - 1) *
          (m.shape.input_len + m.shape.target_len);
      EXPECT_LE(without_one, 8192);
    }
  }
}

TEST(TokenBasedTest, CoversAllSamplesInOrder) {
  auto ordered = mb::OrderSamples(RandomSamples(150, 8),
                                  mb::OrderingMethod::kSortByLength);
  const auto mbs = TokenBasedMicroBatches(ordered, 4096);
  size_t idx = 0;
  for (const auto& m : mbs) {
    for (const auto& s : m.samples) {
      EXPECT_EQ(s.id, ordered[idx++].id);
    }
  }
  EXPECT_EQ(idx, ordered.size());
}

TEST(TokenBasedTest, LargerBudgetFewerMicroBatches) {
  auto ordered = mb::OrderSamples(RandomSamples(300, 9),
                                  mb::OrderingMethod::kSortByLength);
  const auto small = TokenBasedMicroBatches(ordered, 2048);
  const auto large = TokenBasedMicroBatches(ordered, 16'384);
  EXPECT_GT(small.size(), large.size());
}

TEST(TokenBasedTest, OversizedSingleSampleGetsOwnMicroBatch) {
  const auto mbs = TokenBasedMicroBatches({S(10'000, 100)}, 1024);
  ASSERT_EQ(mbs.size(), 1u);
  EXPECT_EQ(mbs[0].shape.num_samples, 1);
}

TEST(FixedSizeTest, ExactChunking) {
  const auto mbs = FixedSizeMicroBatches(RandomSamples(10, 10), 4);
  ASSERT_EQ(mbs.size(), 3u);
  EXPECT_EQ(mbs[0].shape.num_samples, 4);
  EXPECT_EQ(mbs[1].shape.num_samples, 4);
  EXPECT_EQ(mbs[2].shape.num_samples, 2);
}

TEST(NaivePaddingTest, UnsortedChunksHaveWorsePaddingThanSorted) {
  const auto samples = RandomSamples(256, 11);
  const auto naive = NaivePaddingMicroBatches(samples, 16);
  auto ordered = mb::OrderSamples(samples, mb::OrderingMethod::kSortByLength);
  const auto sorted = FixedSizeMicroBatches(ordered, 16);
  const double naive_eff = mb::ComputePaddingStats(naive).overall_efficiency();
  const double sorted_eff = mb::ComputePaddingStats(sorted).overall_efficiency();
  EXPECT_LT(naive_eff, sorted_eff);
}

}  // namespace
}  // namespace dynapipe::baselines
