// Tests for src/comm: the ahead-of-time communication planner (deadlock-freedom by
// construction), the naive baseline (deadlocks under dynamic schedules, works
// under fused uniform 1F1B), and the static verifiers.
#include <vector>

#include <gtest/gtest.h>

#include "src/comm/comm_planner.h"
#include "src/comm/verify.h"
#include "src/common/rng.h"
#include "src/schedule/adaptive_scheduler.h"
#include "src/schedule/executor_simulator.h"
#include "src/schedule/one_f_one_b.h"
#include "src/sim/cluster_sim.h"

namespace dynapipe::comm {
namespace {

using schedule::OpCosts;
using schedule::PipelineSchedule;

// Ground truth keyed off instruction shape: duration scales with padded tokens.
class ShapeGroundTruth : public sim::GroundTruth {
 public:
  double ComputeMs(int32_t, const sim::Instruction& instr) override {
    const double tokens = static_cast<double>(instr.shape.padded_tokens());
    return (instr.type == sim::InstrType::kForwardPass ? 1.0 : 2.0) *
           (0.1 + tokens / 1000.0);
  }
  double ActivationMb(int32_t, const sim::Instruction& instr) override {
    return static_cast<double>(instr.shape.padded_tokens()) / 100.0;
  }
  double TransferMs(int32_t, int32_t, int64_t bytes) override {
    return 0.01 + static_cast<double>(bytes) / 1e7;
  }
};

struct Scenario {
  OpCosts costs;
  std::vector<model::MicroBatchShape> shapes;
};

Scenario MakeScenario(int32_t c, int32_t m, uint64_t seed) {
  Scenario sc;
  dynapipe::Rng rng(seed);
  sc.shapes.resize(static_cast<size_t>(m));
  sc.costs.fwd_ms.assign(static_cast<size_t>(c),
                         std::vector<double>(static_cast<size_t>(m)));
  sc.costs.bwd_ms = sc.costs.fwd_ms;
  sc.costs.act_mb = sc.costs.fwd_ms;
  for (int32_t i = 0; i < m; ++i) {
    model::MicroBatchShape& shape = sc.shapes[static_cast<size_t>(i)];
    shape.num_samples = static_cast<int32_t>(rng.NextInt(1, 8));
    shape.input_len = static_cast<int32_t>(rng.NextInt(64, 2048));
    shape.target_len = 0;
    const double tokens = static_cast<double>(shape.padded_tokens());
    for (int32_t j = 0; j < c; ++j) {
      sc.costs.fwd_ms[static_cast<size_t>(j)][static_cast<size_t>(i)] =
          0.1 + tokens / 1000.0;
      sc.costs.bwd_ms[static_cast<size_t>(j)][static_cast<size_t>(i)] =
          2.0 * (0.1 + tokens / 1000.0);
      sc.costs.act_mb[static_cast<size_t>(j)][static_cast<size_t>(i)] =
          tokens / 100.0;
    }
  }
  return sc;
}

CommPlannerInputs MakeInputs(const PipelineSchedule& sched,
                             const schedule::SimulatedTimeline& tl,
                             const Scenario& sc) {
  CommPlannerInputs in;
  in.schedule = &sched;
  in.timeline = &tl;
  in.shapes = sc.shapes;
  in.boundary_bytes = [&sc](int32_t, int32_t mb) {
    return static_cast<int64_t>(sc.shapes[static_cast<size_t>(mb)].padded_tokens()) *
           128;
  };
  return in;
}

// ---------- Planner output structure ----------

TEST(CommPlannerTest, WellFormedFor1F1B) {
  const Scenario sc = MakeScenario(4, 8, 1);
  const PipelineSchedule sched = schedule::OneFOneBSchedule(8, 4);
  const auto tl = schedule::SimulateSchedule(sched, sc.costs);
  const sim::ExecutionPlan plan = PlanCommunication(MakeInputs(sched, tl, sc));
  EXPECT_TRUE(VerifyWellFormed(plan).empty());
  EXPECT_TRUE(VerifyChannelOrderConsistency(plan).empty());
}

TEST(CommPlannerTest, WellFormedForAdaptive) {
  const Scenario sc = MakeScenario(4, 10, 2);
  const auto sched = schedule::MemoryAwareAdaptiveSchedule(sc.costs);
  ASSERT_TRUE(sched.has_value());
  const auto tl = schedule::SimulateSchedule(*sched, sc.costs);
  const sim::ExecutionPlan plan = PlanCommunication(MakeInputs(*sched, tl, sc));
  EXPECT_TRUE(VerifyWellFormed(plan).empty()) << plan.ToString();
  EXPECT_TRUE(VerifyChannelOrderConsistency(plan).empty());
}

TEST(CommPlannerTest, WaitImmediatelyPrecedesConsumer) {
  const Scenario sc = MakeScenario(3, 5, 3);
  const PipelineSchedule sched = schedule::OneFOneBSchedule(5, 3);
  const auto tl = schedule::SimulateSchedule(sched, sc.costs);
  const sim::ExecutionPlan plan = PlanCommunication(MakeInputs(sched, tl, sc));
  // On every non-first device, each ForwardPass must be directly preceded by its
  // WaitRecvAct (late placement, Fig. 12).
  for (int32_t j = 1; j < 3; ++j) {
    const auto& instrs = plan.devices[static_cast<size_t>(j)].instructions;
    for (size_t k = 0; k < instrs.size(); ++k) {
      if (instrs[k].type == sim::InstrType::kForwardPass) {
        ASSERT_GT(k, 0u);
        EXPECT_EQ(instrs[k - 1].type, sim::InstrType::kWaitRecvAct);
        EXPECT_EQ(instrs[k - 1].microbatch, instrs[k].microbatch);
      }
    }
  }
}

TEST(CommPlannerTest, BoundaryBytesEmbedded) {
  const Scenario sc = MakeScenario(2, 3, 4);
  const PipelineSchedule sched = schedule::OneFOneBSchedule(3, 2);
  const auto tl = schedule::SimulateSchedule(sched, sc.costs);
  const sim::ExecutionPlan plan = PlanCommunication(MakeInputs(sched, tl, sc));
  for (const auto& dev : plan.devices) {
    for (const auto& in : dev.instructions) {
      if (sim::IsCommStart(in.type)) {
        const int64_t expected =
            static_cast<int64_t>(
                sc.shapes[static_cast<size_t>(in.microbatch)].padded_tokens()) *
            128;
        EXPECT_EQ(in.bytes, expected);
      }
    }
  }
}

// ---------- End-to-end execution on the cluster simulator ----------

class PlannerExecutes : public ::testing::TestWithParam<int> {};

TEST_P(PlannerExecutes, AdaptiveScheduleRunsDeadlockFree) {
  dynapipe::Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  const int32_t c = static_cast<int32_t>(rng.NextInt(2, 6));
  const int32_t m = static_cast<int32_t>(rng.NextInt(2, 16));
  const Scenario sc = MakeScenario(c, m, rng.NextU64());
  const auto sched = schedule::MemoryAwareAdaptiveSchedule(sc.costs);
  ASSERT_TRUE(sched.has_value());
  const auto tl = schedule::SimulateSchedule(*sched, sc.costs);
  const sim::ExecutionPlan plan = PlanCommunication(MakeInputs(*sched, tl, sc));
  ASSERT_TRUE(VerifyChannelOrderConsistency(plan).empty());
  ShapeGroundTruth gt;
  sim::ClusterSim cluster(c, &gt);
  const sim::SimResult res = cluster.Run(plan);
  EXPECT_FALSE(res.deadlocked) << res.diagnostic;
  EXPECT_GT(res.makespan_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, PlannerExecutes, ::testing::Range(0, 25));

TEST(CommPlannerTest, ReorderedInjectionStillDeadlockFree) {
  const Scenario sc = MakeScenario(4, 12, 9);
  schedule::AdaptiveScheduleOptions opts;
  opts.injection_order = {11, 3, 7, 0, 5, 9, 1, 10, 2, 8, 4, 6};
  const auto sched = schedule::MemoryAwareAdaptiveSchedule(sc.costs, opts);
  ASSERT_TRUE(sched.has_value());
  const auto tl = schedule::SimulateSchedule(*sched, sc.costs);
  const sim::ExecutionPlan plan = PlanCommunication(MakeInputs(*sched, tl, sc));
  ShapeGroundTruth gt;
  sim::ClusterSim cluster(4, &gt);
  const sim::SimResult res = cluster.Run(plan);
  EXPECT_FALSE(res.deadlocked) << res.diagnostic;
}

// ---------- Naive baseline ----------

TEST(NaivePlanTest, FusedNaiveWorksForUniform1F1B) {
  // Uniform micro-batches, 1F1B, fused crossing pairs: the Megatron status quo.
  Scenario sc = MakeScenario(4, 8, 5);
  // Make all micro-batches identical (uniform).
  for (auto& shape : sc.shapes) {
    shape = {2, 512, 0};
  }
  for (int32_t j = 0; j < 4; ++j) {
    for (int32_t i = 0; i < 8; ++i) {
      sc.costs.fwd_ms[static_cast<size_t>(j)][static_cast<size_t>(i)] = 1.0;
      sc.costs.bwd_ms[static_cast<size_t>(j)][static_cast<size_t>(i)] = 2.0;
      sc.costs.act_mb[static_cast<size_t>(j)][static_cast<size_t>(i)] = 1.0;
    }
  }
  const PipelineSchedule sched = schedule::OneFOneBSchedule(8, 4);
  const auto tl = schedule::SimulateSchedule(sched, sc.costs);
  const sim::ExecutionPlan plan = PlanCommunicationNaive(MakeInputs(sched, tl, sc));
  EXPECT_TRUE(VerifyChannelOrderConsistency(plan).empty());
  ShapeGroundTruth gt;
  sim::ClusterSim cluster(4, &gt);
  const sim::SimResult res = cluster.Run(plan);
  EXPECT_FALSE(res.deadlocked) << res.diagnostic;
}

TEST(NaivePlanTest, NaiveDeadlocksUnderAdaptiveSchedule) {
  // The paper's §2.3 deadlock. The fixed fused primitives that rescue uniform 1F1B
  // (send_forward_recv_backward and friends) do not exist for dynamic schedules —
  // the executor launches comm ops sequentially — so the naive plan runs unfused
  // and its send-at-production / recv-at-use orders mismatch across devices.
  const Scenario sc = MakeScenario(4, 12, 6);
  const auto sched = schedule::MemoryAwareAdaptiveSchedule(sc.costs);
  ASSERT_TRUE(sched.has_value());
  const auto tl = schedule::SimulateSchedule(*sched, sc.costs);
  NaivePlanOptions no_fusion;
  no_fusion.fuse_adjacent_pairs = false;
  const sim::ExecutionPlan naive =
      PlanCommunicationNaive(MakeInputs(*sched, tl, sc), no_fusion);
  const auto violations = VerifyChannelOrderConsistency(naive);
  EXPECT_FALSE(violations.empty());  // statically detectable
  ShapeGroundTruth gt;
  sim::ClusterSim cluster(4, &gt);
  const sim::SimResult res = cluster.Run(naive);
  EXPECT_TRUE(res.deadlocked);
}

TEST(NaivePlanTest, OpportunisticPairFusionRescuesWaveAlignedSchedules) {
  // Observation (see DESIGN.md): because the cyclic scheduler advances in waves
  // with backward-before-forward cycles, naive crossings land adjacent, and
  // hypothetical opportunistic pair fusion would resolve them. Real executors
  // cannot do this (sequential launches); DynaPipe's planner removes the need.
  const Scenario sc = MakeScenario(4, 12, 6);
  const auto sched = schedule::MemoryAwareAdaptiveSchedule(sc.costs);
  ASSERT_TRUE(sched.has_value());
  const auto tl = schedule::SimulateSchedule(*sched, sc.costs);
  const sim::ExecutionPlan fused = PlanCommunicationNaive(MakeInputs(*sched, tl, sc));
  ShapeGroundTruth gt;
  sim::ClusterSim cluster(4, &gt);
  EXPECT_FALSE(cluster.Run(fused).deadlocked);
}

TEST(NaivePlanTest, UnfusedNaiveDeadlocksEvenFor1F1B) {
  // Without fused crossing pairs, strict per-pair ordering stalls 1F1B too — this
  // is why real systems batch those sends/recvs.
  Scenario sc = MakeScenario(2, 4, 7);
  const PipelineSchedule sched = schedule::OneFOneBSchedule(4, 2);
  const auto tl = schedule::SimulateSchedule(sched, sc.costs);
  NaivePlanOptions opts;
  opts.fuse_adjacent_pairs = false;
  const sim::ExecutionPlan plan =
      PlanCommunicationNaive(MakeInputs(sched, tl, sc), opts);
  ShapeGroundTruth gt;
  sim::ClusterSim cluster(2, &gt);
  const sim::SimResult res = cluster.Run(plan);
  EXPECT_TRUE(res.deadlocked);
}

// ---------- Verifier negatives ----------

TEST(VerifyTest, DetectsMissingWait) {
  sim::ExecutionPlan plan;
  plan.num_microbatches = 1;
  plan.devices.resize(1);
  sim::Instruction wait;
  wait.type = sim::InstrType::kWaitRecvAct;
  wait.microbatch = 0;
  wait.peer = 0;
  plan.devices[0].instructions = {wait};
  const auto violations = VerifyWellFormed(plan);
  EXPECT_FALSE(violations.empty());
}

TEST(VerifyTest, DetectsOrderMismatch) {
  sim::ExecutionPlan plan;
  plan.num_microbatches = 2;
  plan.devices.resize(2);
  auto comm = [](sim::InstrType t, int32_t mb, int32_t peer) {
    sim::Instruction in;
    in.type = t;
    in.microbatch = mb;
    in.peer = peer;
    in.bytes = 10;
    return in;
  };
  plan.devices[0].instructions = {comm(sim::InstrType::kSendActStart, 0, 1),
                                  comm(sim::InstrType::kSendActStart, 1, 1)};
  plan.devices[1].instructions = {comm(sim::InstrType::kRecvActStart, 1, 0),
                                  comm(sim::InstrType::kRecvActStart, 0, 0)};
  const auto violations = VerifyChannelOrderConsistency(plan);
  ASSERT_EQ(violations.size(), 1u);
}

}  // namespace
}  // namespace dynapipe::comm
