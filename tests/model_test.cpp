// Unit tests for src/model: Table 1 configs, stage partitioning, the analytic
// layer/stage performance model, and parallel-config enumeration.
#include <cmath>

#include <gtest/gtest.h>

#include "src/model/hardware_spec.h"
#include "src/model/layer_perf_model.h"
#include "src/model/model_config.h"
#include "src/model/shapes.h"
#include "src/model/stage_partition.h"
#include "src/model/stage_perf_model.h"

namespace dynapipe::model {
namespace {

// ---------- Table 1 parameter counts ----------

TEST(ModelConfigTest, GptParamCountsMatchTable1) {
  EXPECT_NEAR(ModelConfig::Gpt3_35B().total_params_billions(), 3.35, 0.35);
  EXPECT_NEAR(ModelConfig::Gpt6_7B().total_params_billions(), 6.7, 0.7);
  EXPECT_NEAR(ModelConfig::Gpt13B().total_params_billions(), 13.0, 1.3);
  EXPECT_NEAR(ModelConfig::Gpt29B().total_params_billions(), 29.0, 2.9);
}

TEST(ModelConfigTest, T5ParamCountsMatchTable1) {
  EXPECT_NEAR(ModelConfig::T5_5_5B().total_params_billions(), 5.5, 0.6);
  EXPECT_NEAR(ModelConfig::T5_11B().total_params_billions(), 11.0, 1.1);
  EXPECT_NEAR(ModelConfig::T5_22B().total_params_billions(), 22.0, 2.2);
  EXPECT_NEAR(ModelConfig::T5_44B().total_params_billions(), 44.0, 4.4);
}

TEST(ModelConfigTest, T5UsesWideProjection) {
  // T5-11B: 128 heads x 128 kv channels = 16384 projection over hidden 1024.
  const ModelConfig c = ModelConfig::T5_11B();
  EXPECT_EQ(c.projection_dim(), 16'384);
  EXPECT_EQ(c.hidden_dim, 1024);
  EXPECT_EQ(c.ffn_dim, 65'536);
}

TEST(ModelConfigTest, TotalLayersDoublesForT5) {
  EXPECT_EQ(ModelConfig::T5_11B().total_layers(), 48);
  EXPECT_EQ(ModelConfig::Gpt6_7B().total_layers(), 32);
}

TEST(ModelConfigTest, ForClusterSelectsPerTable1) {
  EXPECT_EQ(ModelConfig::ForCluster(ModelArch::kGpt, 4).name, "GPT-3.35B");
  EXPECT_EQ(ModelConfig::ForCluster(ModelArch::kGpt, 32).name, "GPT-29B");
  EXPECT_EQ(ModelConfig::ForCluster(ModelArch::kT5, 8).name, "T5-11B");
  EXPECT_EQ(ModelConfig::ForCluster(ModelArch::kT5, 16).name, "T5-22B");
}

TEST(ModelConfigTest, DecoderLayerLargerThanEncoderForT5) {
  const ModelConfig c = ModelConfig::T5_11B();
  EXPECT_GT(c.params_per_decoder_layer(), c.params_per_encoder_layer());
}

// ---------- Parallel config enumeration ----------

TEST(ParallelConfigTest, EnumerationCoversAllFactorizations) {
  const auto configs = EnumerateParallelConfigs(8, 8, 8);
  // tp*pp*dp = 8, all power-of-two: (1,1,8),(1,2,4),(1,4,2),(1,8,1),
  // (2,1,4),(2,2,2),(2,4,1),(4,1,2),(4,2,1),(8,1,1) = 10 combos.
  EXPECT_EQ(configs.size(), 10u);
  for (const auto& c : configs) {
    EXPECT_EQ(c.num_gpus(), 8);
  }
}

TEST(ParallelConfigTest, TensorParallelLimitedToNode) {
  const auto configs = EnumerateParallelConfigs(32, 8, 32);
  for (const auto& c : configs) {
    EXPECT_LE(c.tp, 8);
  }
}

TEST(ParallelConfigTest, PipelineCappedByLayers) {
  const auto configs = EnumerateParallelConfigs(32, 8, 4);
  for (const auto& c : configs) {
    EXPECT_LE(c.pp, 4);
  }
}

// ---------- Stage partition ----------

TEST(StagePartitionTest, ConservesLayers) {
  for (int pp : {1, 2, 3, 4, 8}) {
    const auto stages = PartitionStages(ModelConfig::Gpt6_7B(), pp);
    int total = 0;
    for (const auto& s : stages) {
      total += s.num_layers();
      EXPECT_EQ(s.num_encoder_layers, 0);  // GPT has no encoder stack
    }
    EXPECT_EQ(total, 32);
  }
}

TEST(StagePartitionTest, BalancedWithinOne) {
  const auto stages = PartitionStages(ModelConfig::Gpt13B(), 16);  // 40 layers / 16
  int mn = 1000;
  int mx = 0;
  for (const auto& s : stages) {
    mn = std::min(mn, s.num_layers());
    mx = std::max(mx, s.num_layers());
  }
  EXPECT_LE(mx - mn, 1);
}

TEST(StagePartitionTest, EmbeddingAndHeadFlags) {
  const auto stages = PartitionStages(ModelConfig::Gpt6_7B(), 4);
  EXPECT_TRUE(stages.front().has_embedding);
  EXPECT_TRUE(stages.back().has_lm_head);
  for (size_t i = 1; i + 1 < stages.size(); ++i) {
    EXPECT_FALSE(stages[i].has_embedding);
    EXPECT_FALSE(stages[i].has_lm_head);
  }
}

TEST(StagePartitionTest, T5EncoderPrecedesDecoder) {
  const auto stages = PartitionStages(ModelConfig::T5_11B(), 4);  // 48 layers
  // First two stages must be pure encoder (24 encoder layers / 12 per stage),
  // last two pure decoder.
  EXPECT_EQ(stages[0].num_encoder_layers, 12);
  EXPECT_EQ(stages[0].num_decoder_layers, 0);
  EXPECT_EQ(stages[1].num_encoder_layers, 12);
  EXPECT_EQ(stages[3].num_decoder_layers, 12);
  EXPECT_EQ(stages[3].num_encoder_layers, 0);
}

TEST(StagePartitionTest, T5MixedBoundaryStage) {
  const auto stages = PartitionStages(ModelConfig::T5_11B(), 3);  // 48 layers / 3 = 16
  // Stage 1 holds encoder layers 16..23 (8 layers) and decoder layers 0..7.
  EXPECT_EQ(stages[1].num_encoder_layers, 8);
  EXPECT_EQ(stages[1].num_decoder_layers, 8);
}

TEST(StagePartitionTest, SingleStageHoldsEverything) {
  const auto stages = PartitionStages(ModelConfig::T5_5_5B(), 1);
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_TRUE(stages[0].has_embedding);
  EXPECT_TRUE(stages[0].has_lm_head);
  EXPECT_EQ(stages[0].num_layers(), 24);
}

// ---------- Layer performance model ----------

class LayerPerfModelTest : public ::testing::Test {
 protected:
  ModelConfig config_ = ModelConfig::Gpt3_35B();
  HardwareSpec hw_;
  LayerPerfModel lm_{config_, hw_, 1};
};

TEST_F(LayerPerfModelTest, FlopsScaleLinearlyInBatch) {
  const double f1 = lm_.EncoderLayerFwdFlops(1, 512);
  const double f4 = lm_.EncoderLayerFwdFlops(4, 512);
  EXPECT_NEAR(f4 / f1, 4.0, 1e-9);
}

TEST_F(LayerPerfModelTest, FlopsSuperLinearInSequence) {
  // Doubling s more than doubles FLOPs (quadratic attention term).
  const double f1 = lm_.EncoderLayerFwdFlops(1, 2048);
  const double f2 = lm_.EncoderLayerFwdFlops(1, 4096);
  EXPECT_GT(f2, 2.0 * f1);
}

TEST_F(LayerPerfModelTest, TimeSuperLinearAtLongSequences) {
  // Fig. 3's property (measured there on a T5-11B encoder layer): per-layer time
  // grows super-linearly with sequence length once compute-bound.
  LayerPerfModel t5(ModelConfig::T5_11B(), hw_, 1);
  const double t4k = t5.EncoderLayerFwdMs(1, 4096);
  const double t8k = t5.EncoderLayerFwdMs(1, 8192);
  EXPECT_GT(t8k, 2.0 * t4k);
  // GPT's wider hidden dim dilutes the quadratic term; still at least linear.
  EXPECT_GT(lm_.EncoderLayerFwdMs(1, 8192), 1.9 * lm_.EncoderLayerFwdMs(1, 4096));
}

TEST_F(LayerPerfModelTest, SmallShapesLaunchBound) {
  // At tiny shapes, time is dominated by fixed overhead: halving work does not
  // halve time.
  const double t64 = lm_.EncoderLayerFwdMs(1, 64);
  const double t32 = lm_.EncoderLayerFwdMs(1, 32);
  EXPECT_GT(t32, 0.4 * t64);
}

TEST_F(LayerPerfModelTest, BackwardCostsAboutTwiceForward) {
  const double fwd = lm_.EncoderLayerFwdMs(4, 1024);
  const double bwd = lm_.EncoderLayerBwdMs(4, 1024, RecomputeMode::kNone);
  EXPECT_GT(bwd, 1.5 * fwd);
  EXPECT_LT(bwd, 2.6 * fwd);
}

TEST_F(LayerPerfModelTest, RecomputeOrderingOnBackwardTime) {
  const double none = lm_.EncoderLayerBwdMs(4, 1024, RecomputeMode::kNone);
  const double sel = lm_.EncoderLayerBwdMs(4, 1024, RecomputeMode::kSelective);
  const double full = lm_.EncoderLayerBwdMs(4, 1024, RecomputeMode::kFull);
  EXPECT_LT(none, sel);
  EXPECT_LT(sel, full);
}

TEST_F(LayerPerfModelTest, RecomputeOrderingOnActivationMemory) {
  const double none = lm_.EncoderLayerActivationMb(4, 1024, RecomputeMode::kNone);
  const double sel = lm_.EncoderLayerActivationMb(4, 1024, RecomputeMode::kSelective);
  const double full = lm_.EncoderLayerActivationMb(4, 1024, RecomputeMode::kFull);
  EXPECT_GT(none, sel);
  EXPECT_GT(sel, full);
}

TEST_F(LayerPerfModelTest, AttentionScoresDominateMemoryAtLongSeq) {
  // The s^2 score matrices make kNone memory grow super-linearly in s.
  const double m2k = lm_.EncoderLayerActivationMb(1, 2048, RecomputeMode::kNone);
  const double m8k = lm_.EncoderLayerActivationMb(1, 8192, RecomputeMode::kNone);
  EXPECT_GT(m8k, 4.0 * m2k);
  // While kFull stays linear.
  const double f2k = lm_.EncoderLayerActivationMb(1, 2048, RecomputeMode::kFull);
  const double f8k = lm_.EncoderLayerActivationMb(1, 8192, RecomputeMode::kFull);
  EXPECT_NEAR(f8k / f2k, 4.0, 0.01);
}

TEST_F(LayerPerfModelTest, TensorParallelReducesTimeButNotToZero) {
  LayerPerfModel tp4(config_, hw_, 4);
  const double t1 = lm_.EncoderLayerFwdMs(8, 2048);
  const double t4 = tp4.EncoderLayerFwdMs(8, 2048);
  EXPECT_LT(t4, t1);
  EXPECT_GT(t4, t1 / 4.0);  // allreduce + overhead prevent perfect scaling
}

TEST_F(LayerPerfModelTest, T5DecoderCrossAttentionAddsCost) {
  const ModelConfig t5 = ModelConfig::T5_11B();
  LayerPerfModel lm(t5, hw_, 1);
  const double self_only = lm.EncoderLayerFwdFlops(2, 256);
  const double with_cross = lm.DecoderLayerFwdFlops(2, 256, 1024);
  EXPECT_GT(with_cross, self_only);
}

TEST_F(LayerPerfModelTest, GptDecoderHasNoCrossAttention) {
  EXPECT_DOUBLE_EQ(lm_.DecoderLayerFwdFlops(2, 512, 9999),
                   lm_.EncoderLayerFwdFlops(2, 512));
}

// ---------- Stage performance model ----------

TEST(StagePerfModelTest, FwdTimeScalesWithLayerCount) {
  const ModelConfig config = ModelConfig::Gpt6_7B();
  const HardwareSpec hw;
  const auto stages4 = BuildStageModels(config, hw, 4, 1);
  const auto stages8 = BuildStageModels(config, hw, 8, 1);
  MicroBatchShape shape{4, 1024, 0};
  // Interior stages: 8 layers vs 4 layers -> roughly 2x.
  const double t4 = stages4[1].FwdMs(shape);
  const double t8 = stages8[1].FwdMs(shape);
  EXPECT_NEAR(t4 / t8, 2.0, 0.1);
}

TEST(StagePerfModelTest, LastStagePaysLmHead) {
  const ModelConfig config = ModelConfig::Gpt6_7B();
  const HardwareSpec hw;
  const auto stages = BuildStageModels(config, hw, 4, 1);
  MicroBatchShape shape{4, 1024, 0};
  EXPECT_GT(stages[3].FwdMs(shape), stages[1].FwdMs(shape));
}

TEST(StagePerfModelTest, StaticMemoryShrinksWithZeroDp) {
  const ModelConfig config = ModelConfig::Gpt6_7B();
  const HardwareSpec hw;
  const auto stages = BuildStageModels(config, hw, 4, 1);
  // ZeRO-1: optimizer state shards across dp.
  EXPECT_GT(stages[1].StaticMemoryMb(1), stages[1].StaticMemoryMb(4));
}

TEST(StagePerfModelTest, StaticMemoryMatchesParamArithmetic) {
  const ModelConfig config = ModelConfig::Gpt3_35B();
  const HardwareSpec hw;
  const auto stages = BuildStageModels(config, hw, 1, 1);
  // Whole model on one device, dp=1: 16 bytes/param.
  const double expected_mb =
      static_cast<double>(config.total_params()) * 16.0 / (1024.0 * 1024.0);
  EXPECT_NEAR(stages[0].StaticMemoryMb(1), expected_mb, expected_mb * 0.01);
}

TEST(StagePerfModelTest, BoundaryBytesGpt) {
  const ModelConfig config = ModelConfig::Gpt3_35B();
  const HardwareSpec hw;
  const auto stages = BuildStageModels(config, hw, 4, 1);
  MicroBatchShape shape{2, 512, 0};
  // b * s * h * 2 bytes.
  EXPECT_DOUBLE_EQ(stages[0].OutputActivationBytes(shape),
                   2.0 * 512 * 4096 * 2.0);
  EXPECT_DOUBLE_EQ(stages[3].OutputActivationBytes(shape), 0.0);  // last stage
}

TEST(StagePerfModelTest, BoundaryBytesT5CarriesEncoderOutputThroughDecoder) {
  const ModelConfig config = ModelConfig::T5_11B();
  const HardwareSpec hw;
  const auto stages = BuildStageModels(config, hw, 4, 1);
  MicroBatchShape shape{2, 512, 128};
  // Encoder-side boundary: b*s_enc*h*2; decoder-side adds the decoder stream.
  const double enc_bytes = stages[0].OutputActivationBytes(shape);
  const double dec_bytes = stages[2].OutputActivationBytes(shape);
  EXPECT_DOUBLE_EQ(enc_bytes, 2.0 * 512 * 1024 * 2.0);
  EXPECT_DOUBLE_EQ(dec_bytes, 2.0 * (512.0 + 128.0) * 1024 * 2.0);
}

TEST(StagePerfModelTest, DpGradSyncGrowsWithModelShare) {
  const ModelConfig config = ModelConfig::Gpt6_7B();
  const HardwareSpec hw;
  const auto layouts = PartitionStages(config, 2);
  EXPECT_EQ(DpGradSyncMs(config, hw, layouts[0], 1, 1), 0.0);
  const double dp2 = DpGradSyncMs(config, hw, layouts[0], 1, 2);
  const double dp8 = DpGradSyncMs(config, hw, layouts[0], 1, 8);
  EXPECT_GT(dp2, 0.0);
  EXPECT_GT(dp8, dp2);  // ring factor 2(d-1)/d grows with d
}

TEST(StagePerfModelTest, T5StageTimeDependsOnBothSequences) {
  const ModelConfig config = ModelConfig::T5_11B();
  const HardwareSpec hw;
  const auto stages = BuildStageModels(config, hw, 2, 1);
  // Stage 1 is pure decoder: its time must react to both target and input length
  // (cross-attention reads the encoder output).
  const double base = stages[1].FwdMs({2, 512, 128});
  const double longer_target = stages[1].FwdMs({2, 512, 256});
  const double longer_input = stages[1].FwdMs({2, 1024, 128});
  EXPECT_GT(longer_target, base);
  EXPECT_GT(longer_input, base);
}

}  // namespace
}  // namespace dynapipe::model
