// Tests for the parallel, cache-aware planning subsystem: ParallelFor
// (including nested fan-outs), the memoized cost oracle (bit-equality with the
// uncached cost model, counters), parallel-vs-serial determinism of the DP
// partitioner and the full planner, and ThreadPool-backed grid search
// equivalence.
#include <atomic>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/cost/cost_cache.h"
#include "src/data/flan_generator.h"
#include "src/mb/dp_partitioner.h"
#include "src/runtime/grid_search.h"
#include "src/runtime/planner.h"
#include "src/runtime/trainer.h"

namespace dynapipe {
namespace {

// ---------- ParallelFor ----------

TEST(ParallelForTest, CoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(100);
  ParallelFor(&pool, counts.size(), [&](size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  int sum = 0;
  ParallelFor(nullptr, 10, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ParallelForTest, AcceptsLvalueCallable) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  auto body = [&](size_t i) { sum.fetch_add(static_cast<int>(i)); };
  ParallelFor(&pool, 10, body);  // Fn deduces to L&; must still compile
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelForTest, NestedFanOutsComplete) {
  // A fan-out whose tasks fan out again onto the same pool must not deadlock
  // even when the pool is narrower than the nesting (help-draining waiters).
  ThreadPool pool(2);
  std::atomic<int> total{0};
  ParallelFor(&pool, 4, [&](size_t) {
    ParallelFor(&pool, 4, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

// ---------- Cost cache ----------

cost::ProfileOptions SmallProfile() {
  cost::ProfileOptions opts;
  opts.max_microbatch_size = 32;
  opts.max_seq_len = 4096;
  return opts;
}

runtime::PlannerOptions FastPlanner() {
  runtime::PlannerOptions opts;
  opts.max_tmax_candidates = 48;
  opts.tmax_interval_ms = 0.5;
  opts.max_microbatch_size = 32;
  opts.reorder_clusters = 2;
  opts.dynamic_recompute = true;
  return opts;
}

class CostCacheTest : public ::testing::Test {
 protected:
  CostCacheTest()
      : cm_(cost::PipelineCostModel::Profile(model::ModelConfig::Gpt3_35B(),
                                             model::HardwareSpec{}, {1, 1, 4},
                                             SmallProfile())) {}

  cost::PipelineCostModel cm_;
};

TEST_F(CostCacheTest, CachedValuesBitEqualUncached) {
  const cost::CachedCostOracle oracle(cm_);
  for (const auto mode :
       {model::RecomputeMode::kNone, model::RecomputeMode::kSelective,
        model::RecomputeMode::kFull}) {
    for (int32_t b : {1, 3, 8, 17}) {
      for (int32_t s : {33, 64, 301, 1024, 2999}) {
        const model::MicroBatchShape shape{b, s, 0};
        // Twice each: the second query must be a hit and still bit-equal.
        for (int rep = 0; rep < 2; ++rep) {
          EXPECT_EQ(oracle.TimeMs(shape, mode), cm_.MicroBatchTimeMs(shape, mode));
          EXPECT_EQ(oracle.ActivationMb(shape, mode),
                    cm_.MaxActivationMb(shape, mode));
        }
      }
    }
  }
  const cost::CostCacheCounters c = oracle.counters();
  EXPECT_GT(c.hits, 0);
  EXPECT_GT(c.misses, 0);
  EXPECT_GT(oracle.size(), 0u);
  EXPECT_LE(oracle.size(), oracle.capacity());
}

TEST_F(CostCacheTest, LazyTimeUpgradeAfterActOnlyQuery) {
  const cost::CachedCostOracle oracle(cm_);
  const model::MicroBatchShape shape{4, 777, 0};
  const auto mode = model::RecomputeMode::kSelective;
  // Act-only query caches the entry without pricing it...
  EXPECT_EQ(oracle.ActivationMb(shape, mode), cm_.MaxActivationMb(shape, mode));
  // ...and a later time query on the same key upgrades it, bit-equal.
  EXPECT_EQ(oracle.TimeMs(shape, mode), cm_.MicroBatchTimeMs(shape, mode));
  EXPECT_EQ(oracle.TimeMs(shape, mode), cm_.MicroBatchTimeMs(shape, mode));
}

TEST_F(CostCacheTest, WindowQueryRespectsLimit) {
  const cost::CachedCostOracle oracle(cm_);
  const model::MicroBatchShape shape{8, 2048, 0};
  const auto mode = model::RecomputeMode::kNone;
  const double act = cm_.MaxActivationMb(shape, mode);
  // Over-limit window probe: act returned, time not required to be computed.
  bool hit = true;
  const auto over = oracle.Query(shape, mode, &hit, act / 2.0);
  EXPECT_FALSE(hit);
  EXPECT_EQ(over.act_mb, act);
  // Within-limit probe of the same key must now produce the real time.
  const auto within = oracle.Query(shape, mode, &hit, act * 2.0);
  EXPECT_TRUE(hit);
  EXPECT_EQ(within.time_ms, cm_.MicroBatchTimeMs(shape, mode));
}

TEST_F(CostCacheTest, HitRateCountsOnOrderedBatch) {
  // Length-ordered batches with duplicate lengths produce repeated padded
  // window shapes — the cache's bread and butter.
  const cost::CachedCostOracle oracle(cm_);
  runtime::CachedCostAdapter adapter(oracle, model::RecomputeMode::kNone);
  mb::DpPartitionerOptions opts;
  opts.num_stages = 4;
  opts.max_microbatch_size = 8;
  mb::DpPartitioner partitioner(adapter, opts);
  std::vector<data::Sample> ordered;
  for (int i = 0; i < 60; ++i) {
    data::Sample s;
    s.id = static_cast<uint64_t>(i);
    s.input_len = 64 + 32 * (i / 20);  // runs of identical lengths
    ordered.push_back(s);
  }
  const mb::PartitionResult result = partitioner.Partition(ordered);
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.stats.cost_cache_hits, 0);
  EXPECT_GT(result.stats.cost_cache_misses, 0);
  const auto [hits, misses] = adapter.CacheCounters();
  EXPECT_EQ(hits, result.stats.cost_cache_hits);
  EXPECT_EQ(misses, result.stats.cost_cache_misses);
}

// ---------- DpPartitioner parallel determinism ----------

// Synthetic monotone cost oracle (cheap, deterministic).
class SyntheticCost : public mb::MicroBatchCostFn {
 public:
  double TimeMs(const model::MicroBatchShape& shape) const override {
    return 0.3 + 0.002 * static_cast<double>(shape.padded_tokens());
  }
  double ActivationMb(const model::MicroBatchShape& shape) const override {
    return 0.05 * static_cast<double>(shape.padded_tokens());
  }
};

std::vector<data::Sample> RandomOrderedSamples(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<data::Sample> samples;
  for (int i = 0; i < n; ++i) {
    data::Sample s;
    s.id = static_cast<uint64_t>(i);
    s.input_len = static_cast<int32_t>(rng.NextInt(10, 300));
    s.target_len = static_cast<int32_t>(rng.NextInt(0, 60));
    samples.push_back(s);
  }
  return mb::OrderSamples(samples, mb::OrderingMethod::kSortByLength);
}

TEST(DpPartitionerParallelTest, PoolOutputBitIdenticalToSerial) {
  const auto ordered = RandomOrderedSamples(200, 11);
  SyntheticCost cost;
  mb::DpPartitionerOptions opts;
  opts.num_stages = 4;
  opts.num_replicas = 2;
  opts.activation_limit_mb = 40.0;
  opts.max_microbatch_size = 16;
  opts.tmax_interval_ms = 0.05;
  opts.max_tmax_candidates = 64;

  mb::DpPartitioner serial(cost, opts);
  const mb::PartitionResult base = serial.Partition(ordered);
  ASSERT_TRUE(base.feasible);
  ASSERT_GT(base.micro_batches.size(), 1u);

  for (const int32_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    mb::DpPartitionerOptions popts = opts;
    popts.pool = &pool;
    mb::DpPartitioner parallel(cost, popts);
    const mb::PartitionResult got = parallel.Partition(ordered);
    ASSERT_TRUE(got.feasible);
    // Bit-identical: same widths, same realized times, same objective.
    ASSERT_EQ(got.micro_batches.size(), base.micro_batches.size());
    for (size_t k = 0; k < base.micro_batches.size(); ++k) {
      EXPECT_EQ(got.micro_batches[k].samples.size(),
                base.micro_batches[k].samples.size());
      EXPECT_EQ(got.micro_batches[k].predicted_time_ms,
                base.micro_batches[k].predicted_time_ms);
    }
    EXPECT_EQ(got.objective_ms, base.objective_ms);
    EXPECT_EQ(got.max_time_ms, base.max_time_ms);
    EXPECT_EQ(got.total_time_ms, base.total_time_ms);
    EXPECT_EQ(got.candidates_tried, base.candidates_tried);
  }
}

TEST(DpPartitionerParallelTest, InLambdaCutoffsStillFindBruteForceOptimum) {
  // The t_max cutoff per (start, candidate) is now derived inside the
  // parallel candidate lambda (binary search on the sorted window times)
  // instead of a serial pre-walked table. upper_bound returns exactly the
  // count the old merge-walk produced, so the DP must still land on the
  // brute-force-optimal objective — serial and pooled alike.
  for (const uint64_t seed : {3u, 19u, 42u}) {
    const auto ordered = RandomOrderedSamples(12, seed);
    SyntheticCost cost;
    mb::DpPartitionerOptions opts;
    opts.num_stages = 3;
    opts.num_replicas = 1;
    opts.activation_limit_mb = 60.0;
    opts.max_microbatch_size = 6;
    opts.tmax_interval_ms = 0.001;  // fine quantization: near-exact candidates
    opts.max_tmax_candidates = 256;
    const mb::PartitionResult brute =
        mb::BruteForcePartition(cost, opts, ordered);
    ASSERT_TRUE(brute.feasible);

    mb::DpPartitioner serial(cost, opts);
    const mb::PartitionResult dp = serial.Partition(ordered);
    ASSERT_TRUE(dp.feasible);
    EXPECT_NEAR(dp.objective_ms, brute.objective_ms, 1e-2) << "seed " << seed;

    ThreadPool pool(4);
    mb::DpPartitionerOptions popts = opts;
    popts.pool = &pool;
    mb::DpPartitioner parallel(cost, popts);
    const mb::PartitionResult pooled = parallel.Partition(ordered);
    ASSERT_TRUE(pooled.feasible);
    // Pooled is bit-identical to serial, not merely near the optimum.
    EXPECT_EQ(pooled.objective_ms, dp.objective_ms) << "seed " << seed;
    EXPECT_EQ(pooled.max_time_ms, dp.max_time_ms) << "seed " << seed;
  }
}

TEST(DpPartitionerParallelTest, SubsampledCandidatesKeepExtremesFeasible) {
  // With the candidate cap at its minimum the subsample must still include the
  // largest quantized window time, without which no candidate is feasible.
  const auto ordered = RandomOrderedSamples(120, 7);
  SyntheticCost cost;
  mb::DpPartitionerOptions opts;
  opts.num_stages = 2;
  opts.max_microbatch_size = 16;
  opts.tmax_interval_ms = 0.01;  // many distinct quantized times
  opts.max_tmax_candidates = 2;
  mb::DpPartitioner partitioner(cost, opts);
  const mb::PartitionResult result = partitioner.Partition(ordered);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.candidates_tried, 2);
}

// ---------- Planner determinism and stats ----------

class PlannerParallelTest : public ::testing::Test {
 protected:
  PlannerParallelTest()
      : cm_(cost::PipelineCostModel::Profile(model::ModelConfig::Gpt3_35B(),
                                             model::HardwareSpec{}, {1, 1, 4},
                                             SmallProfile())) {}

  static std::vector<data::Sample> MiniBatch(int n, uint64_t seed) {
    data::FlanGeneratorOptions gen;
    gen.num_samples = n;
    gen.seed = seed;
    gen.length_cap = 1024;
    return data::GenerateFlanLikeDataset(gen).samples();
  }

  static void ExpectPlansBitIdentical(const runtime::IterationPlan& a,
                                      const runtime::IterationPlan& b) {
    ASSERT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.recompute, b.recompute);
    EXPECT_EQ(a.predicted_iteration_ms, b.predicted_iteration_ms);
    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    for (size_t d = 0; d < a.replicas.size(); ++d) {
      ASSERT_EQ(a.replicas[d].micro_batches.size(),
                b.replicas[d].micro_batches.size());
      for (size_t k = 0; k < a.replicas[d].micro_batches.size(); ++k) {
        EXPECT_EQ(a.replicas[d].micro_batches[k].samples.size(),
                  b.replicas[d].micro_batches[k].samples.size());
        EXPECT_EQ(a.replicas[d].micro_batches[k].predicted_time_ms,
                  b.replicas[d].micro_batches[k].predicted_time_ms);
      }
    }
  }

  cost::PipelineCostModel cm_;
};

TEST_F(PlannerParallelTest, CachedPlanningBitIdenticalToUncached) {
  const auto minibatch = MiniBatch(60, 21);
  runtime::PlannerOptions uncached = FastPlanner();
  uncached.cost_cache = false;
  runtime::PlannerOptions cached = FastPlanner();
  cached.cost_cache = true;
  const runtime::IterationPlanner p1(cm_, uncached);
  const runtime::IterationPlanner p2(cm_, cached);
  const runtime::IterationPlan a = p1.PlanIteration(minibatch);
  const runtime::IterationPlan b = p2.PlanIteration(minibatch);
  ASSERT_TRUE(a.feasible);
  ExpectPlansBitIdentical(a, b);
  EXPECT_EQ(a.stats.cost_cache_hits + a.stats.cost_cache_misses, 0);
  EXPECT_GT(b.stats.cost_cache_hits + b.stats.cost_cache_misses, 0);
  EXPECT_EQ(b.stats.recompute_modes_tried, 3);
}

TEST_F(PlannerParallelTest, PooledPlanningBitIdenticalToSerial) {
  const auto minibatch = MiniBatch(60, 22);
  const runtime::IterationPlanner serial(cm_, FastPlanner());
  const runtime::IterationPlan base = serial.PlanIteration(minibatch);
  ASSERT_TRUE(base.feasible);
  for (const int32_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    runtime::PlannerOptions opts = FastPlanner();
    opts.pool = &pool;
    const runtime::IterationPlanner parallel(cm_, opts);
    const runtime::IterationPlan got = parallel.PlanIteration(minibatch);
    ExpectPlansBitIdentical(base, got);
  }
}

// ---------- Grid search equivalence ----------

TEST(GridSearchParallelTest, PooledSearchMatchesSerial) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  data::FlanGeneratorOptions gen;
  gen.num_samples = 150;
  gen.length_cap = 512;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);

  runtime::GridSearchOptions opts;
  opts.eval_iterations = 1;
  opts.profile = SmallProfile();
  opts.trainer.global_batch_tokens = 4096;
  opts.trainer.max_input_len = 512;

  runtime::PlannerOptions planner = FastPlanner();
  planner.dynamic_recompute = false;

  const runtime::DynaPipeSearchResult serial =
      GridSearchDynaPipe(config, hw, 2, dataset, planner, opts);

  ThreadPool pool(4);
  runtime::GridSearchOptions popts = opts;
  popts.pool = &pool;
  const runtime::DynaPipeSearchResult parallel =
      GridSearchDynaPipe(config, hw, 2, dataset, planner, popts);

  ASSERT_EQ(serial.found, parallel.found);
  EXPECT_EQ(serial.best.dp, parallel.best.dp);
  EXPECT_EQ(serial.best.tp, parallel.best.tp);
  EXPECT_EQ(serial.best.pp, parallel.best.pp);
  EXPECT_EQ(serial.tokens_per_second, parallel.tokens_per_second);
  ASSERT_EQ(serial.all.size(), parallel.all.size());
  for (size_t i = 0; i < serial.all.size(); ++i) {
    EXPECT_EQ(serial.all[i].feasible, parallel.all[i].feasible);
    EXPECT_EQ(serial.all[i].tokens_per_second, parallel.all[i].tokens_per_second);
  }
}

}  // namespace
}  // namespace dynapipe
