// Unit + property tests for src/mb: micro-batch math, sample ordering, the DP
// partitioner (validated against brute force), and Karmarkar–Karp balancing.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/mb/dp_partitioner.h"
#include "src/mb/karmarkar_karp.h"
#include "src/mb/micro_batch.h"
#include "src/mb/ordering.h"

namespace dynapipe::mb {
namespace {

data::Sample S(int32_t input, int32_t target = 0, uint64_t id = 0) {
  data::Sample s;
  s.id = id;
  s.input_len = input;
  s.target_len = target;
  return s;
}

// ---------- MicroBatch ----------

TEST(MicroBatchTest, ShapeIsElementwiseMax) {
  const MicroBatch m = MakeMicroBatch({S(10, 5), S(20, 3), S(15, 8)});
  EXPECT_EQ(m.shape.num_samples, 3);
  EXPECT_EQ(m.shape.input_len, 20);
  EXPECT_EQ(m.shape.target_len, 8);
}

TEST(MicroBatchTest, TokenAccounting) {
  const MicroBatch m = MakeMicroBatch({S(10, 5), S(20, 3)});
  EXPECT_EQ(m.real_tokens(), 38);
  EXPECT_EQ(m.padded_tokens(), 2 * (20 + 5));
}

TEST(PaddingStatsTest, PerfectWhenUniform) {
  const std::vector<MicroBatch> mbs{MakeMicroBatch({S(10, 5), S(10, 5)})};
  const PaddingStats st = ComputePaddingStats(mbs);
  EXPECT_DOUBLE_EQ(st.overall_efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(st.input_efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(st.target_efficiency(), 1.0);
}

TEST(PaddingStatsTest, SeparatesEncoderAndDecoderSides) {
  const std::vector<MicroBatch> mbs{MakeMicroBatch({S(10, 10), S(10, 5)})};
  const PaddingStats st = ComputePaddingStats(mbs);
  EXPECT_DOUBLE_EQ(st.input_efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(st.target_efficiency(), 15.0 / 20.0);
}

// ---------- Ordering ----------

TEST(OrderingTest, SortByLengthIsSorted) {
  auto out = OrderSamples({S(30), S(10), S(20)}, OrderingMethod::kSortByLength);
  EXPECT_EQ(out[0].input_len, 10);
  EXPECT_EQ(out[1].input_len, 20);
  EXPECT_EQ(out[2].input_len, 30);
}

TEST(OrderingTest, SortBreaksTiesByTarget) {
  auto out = OrderSamples({S(10, 9), S(10, 1), S(10, 5)},
                          OrderingMethod::kSortByLength);
  EXPECT_EQ(out[0].target_len, 1);
  EXPECT_EQ(out[1].target_len, 5);
  EXPECT_EQ(out[2].target_len, 9);
}

TEST(OrderingTest, OrderingsPreserveMultiset) {
  Rng rng(3);
  std::vector<data::Sample> samples;
  for (int i = 0; i < 50; ++i) {
    samples.push_back(S(static_cast<int32_t>(rng.NextInt(1, 1000)),
                        static_cast<int32_t>(rng.NextInt(1, 200)),
                        static_cast<uint64_t>(i)));
  }
  for (const auto method : {OrderingMethod::kSortByLength, OrderingMethod::kTsp}) {
    auto out = OrderSamples(samples, method);
    std::multiset<uint64_t> in_ids;
    std::multiset<uint64_t> out_ids;
    for (const auto& s : samples) {
      in_ids.insert(s.id);
    }
    for (const auto& s : out) {
      out_ids.insert(s.id);
    }
    EXPECT_EQ(in_ids, out_ids);
  }
}

TEST(OrderingTest, TspBeatsRandomOrderOnTourCost) {
  Rng rng(17);
  std::vector<data::Sample> samples;
  for (int i = 0; i < 80; ++i) {
    samples.push_back(S(static_cast<int32_t>(rng.NextInt(1, 4000)),
                        static_cast<int32_t>(rng.NextInt(1, 500)),
                        static_cast<uint64_t>(i)));
  }
  const double random_cost = TourCost(samples);
  const double tsp_cost = TourCost(OrderSamples(samples, OrderingMethod::kTsp));
  EXPECT_LT(tsp_cost, random_cost * 0.5);
}

TEST(OrderingTest, SortAndTspSimilarQualityFor1D) {
  // For decoder-only models (target 0), sorting is optimal; TSP should come close.
  Rng rng(23);
  std::vector<data::Sample> samples;
  for (int i = 0; i < 60; ++i) {
    samples.push_back(S(static_cast<int32_t>(rng.NextInt(1, 5000)), 0,
                        static_cast<uint64_t>(i)));
  }
  const double sort_cost =
      TourCost(OrderSamples(samples, OrderingMethod::kSortByLength));
  const double tsp_cost = TourCost(OrderSamples(samples, OrderingMethod::kTsp));
  EXPECT_LE(sort_cost, tsp_cost * 1.001);  // sorted is optimal in 1D
  EXPECT_LE(tsp_cost, sort_cost * 1.5);
}

// ---------- DP partitioner ----------

// Simple cost oracle: time = a + b*samples*len + c*samples*len^2 (quadratic
// "attention" term), activation = samples * len.
class QuadraticCost : public MicroBatchCostFn {
 public:
  double TimeMs(const model::MicroBatchShape& shape) const override {
    const double tokens =
        static_cast<double>(shape.num_samples) * (shape.input_len + shape.target_len);
    const double quad = static_cast<double>(shape.num_samples) *
                        std::pow(shape.input_len + shape.target_len, 2.0);
    return 0.5 + 0.001 * tokens + 1e-6 * quad;
  }
  double ActivationMb(const model::MicroBatchShape& shape) const override {
    return static_cast<double>(shape.num_samples) *
           (shape.input_len + shape.target_len) * 0.01;
  }
};

DpPartitionerOptions SmallOptions() {
  DpPartitionerOptions opts;
  opts.num_stages = 4;
  opts.tmax_interval_ms = 0.001;
  opts.max_tmax_candidates = 4096;
  return opts;
}

TEST(DpPartitionerTest, EmptyInputFeasible) {
  QuadraticCost cost;
  DpPartitioner part(cost, SmallOptions());
  const PartitionResult res = part.Partition({});
  EXPECT_TRUE(res.feasible);
  EXPECT_TRUE(res.micro_batches.empty());
}

TEST(DpPartitionerTest, SingleSample) {
  QuadraticCost cost;
  DpPartitioner part(cost, SmallOptions());
  const PartitionResult res = part.Partition({S(100, 10)});
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.micro_batches.size(), 1u);
  EXPECT_EQ(res.micro_batches[0].shape.num_samples, 1);
}

TEST(DpPartitionerTest, CoversAllSamplesInOrder) {
  QuadraticCost cost;
  DpPartitioner part(cost, SmallOptions());
  std::vector<data::Sample> samples;
  for (int i = 0; i < 40; ++i) {
    samples.push_back(S(10 * (i + 1), i, static_cast<uint64_t>(i)));
  }
  const PartitionResult res = part.Partition(samples);
  ASSERT_TRUE(res.feasible);
  uint64_t expect_id = 0;
  for (const auto& m : res.micro_batches) {
    for (const auto& s : m.samples) {
      EXPECT_EQ(s.id, expect_id++);
    }
  }
  EXPECT_EQ(expect_id, 40u);
}

TEST(DpPartitionerTest, RespectsActivationLimit) {
  QuadraticCost cost;
  DpPartitionerOptions opts = SmallOptions();
  opts.activation_limit_mb = 20.0;  // 2000 tokens per micro-batch
  DpPartitioner part(cost, opts);
  std::vector<data::Sample> samples;
  for (int i = 0; i < 30; ++i) {
    samples.push_back(S(500, 0, static_cast<uint64_t>(i)));
  }
  const PartitionResult res = part.Partition(samples);
  ASSERT_TRUE(res.feasible);
  for (const auto& m : res.micro_batches) {
    EXPECT_LE(cost.ActivationMb(m.shape), 20.0 + 1e-9);
  }
}

TEST(DpPartitionerTest, InfeasibleWhenSingleSampleTooBig) {
  QuadraticCost cost;
  DpPartitionerOptions opts = SmallOptions();
  opts.activation_limit_mb = 1.0;  // 100 tokens
  DpPartitioner part(cost, opts);
  const PartitionResult res = part.Partition({S(500)});
  EXPECT_FALSE(res.feasible);
}

TEST(DpPartitionerTest, RespectsMaxMicrobatchSize) {
  QuadraticCost cost;
  DpPartitionerOptions opts = SmallOptions();
  opts.max_microbatch_size = 3;
  DpPartitioner part(cost, opts);
  std::vector<data::Sample> samples(20, S(10));
  const PartitionResult res = part.Partition(samples);
  ASSERT_TRUE(res.feasible);
  for (const auto& m : res.micro_batches) {
    EXPECT_LE(m.shape.num_samples, 3);
  }
}

TEST(DpPartitionerTest, UniformSamplesGroupTogether) {
  // With identical samples and a quadratic term, some batching is cheaper than
  // one-per-micro-batch (amortizing the per-op constant) but a single huge
  // micro-batch pays (c-1)*tmax; DP should find an interior optimum.
  QuadraticCost cost;
  DpPartitioner part(cost, SmallOptions());
  std::vector<data::Sample> samples(32, S(100));
  const PartitionResult res = part.Partition(samples);
  ASSERT_TRUE(res.feasible);
  EXPECT_GT(res.micro_batches.size(), 1u);
  EXPECT_LT(res.micro_batches.size(), 32u);
}

// Property: DP matches brute force on small random instances.
class DpVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(DpVsBruteForce, ObjectiveMatches) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<data::Sample> samples;
  const int n = 2 + static_cast<int>(rng.NextBelow(8));
  for (int i = 0; i < n; ++i) {
    samples.push_back(S(static_cast<int32_t>(rng.NextInt(10, 2000)),
                        static_cast<int32_t>(rng.NextInt(0, 300)),
                        static_cast<uint64_t>(i)));
  }
  auto ordered = OrderSamples(samples, OrderingMethod::kSortByLength);
  QuadraticCost cost;
  DpPartitionerOptions opts;
  opts.num_stages = 1 + static_cast<int32_t>(rng.NextBelow(6));
  opts.num_replicas = 1 + static_cast<int32_t>(rng.NextBelow(3));
  opts.activation_limit_mb = rng.NextDouble(15.0, 80.0);
  opts.tmax_interval_ms = 1e-6;  // effectively exact candidates
  opts.max_tmax_candidates = 100'000;
  DpPartitioner part(cost, opts);
  const PartitionResult dp_res = part.Partition(ordered);
  const PartitionResult bf_res = BruteForcePartition(cost, opts, ordered);
  ASSERT_EQ(dp_res.feasible, bf_res.feasible);
  if (dp_res.feasible) {
    EXPECT_NEAR(dp_res.objective_ms, bf_res.objective_ms,
                1e-6 + 1e-9 * bf_res.objective_ms)
        << "n=" << n << " stages=" << opts.num_stages;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DpVsBruteForce, ::testing::Range(0, 40));

// Property: quantized t_max sampling degrades the objective only boundedly.
class DpQuantization : public ::testing::TestWithParam<int> {};

TEST_P(DpQuantization, CoarseCandidatesStayClose) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  std::vector<data::Sample> samples;
  for (int i = 0; i < 30; ++i) {
    samples.push_back(S(static_cast<int32_t>(rng.NextInt(10, 3000)), 0,
                        static_cast<uint64_t>(i)));
  }
  auto ordered = OrderSamples(samples, OrderingMethod::kSortByLength);
  QuadraticCost cost;
  DpPartitionerOptions fine = SmallOptions();
  fine.tmax_interval_ms = 1e-5;
  fine.max_tmax_candidates = 1'000'000;
  DpPartitionerOptions coarse = SmallOptions();
  coarse.tmax_interval_ms = 0.5;
  coarse.max_tmax_candidates = 64;
  const PartitionResult f = DpPartitioner(cost, fine).Partition(ordered);
  const PartitionResult c = DpPartitioner(cost, coarse).Partition(ordered);
  ASSERT_TRUE(f.feasible);
  ASSERT_TRUE(c.feasible);
  EXPECT_LE(f.objective_ms, c.objective_ms + 1e-9);
  EXPECT_LE(c.objective_ms, f.objective_ms * 1.3);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DpQuantization, ::testing::Range(0, 10));

// ---------- Karmarkar–Karp ----------

TEST(KarmarkarKarpTest, AssignsEveryItemExactlyOnce) {
  Rng rng(5);
  std::vector<double> w;
  for (int i = 0; i < 50; ++i) {
    w.push_back(rng.NextDouble(1.0, 100.0));
  }
  const BalanceResult res = KarmarkarKarp(w, 4);
  ASSERT_EQ(res.groups.size(), 4u);
  std::set<int32_t> seen;
  for (const auto& g : res.groups) {
    for (const int32_t idx : g) {
      EXPECT_TRUE(seen.insert(idx).second);
    }
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(KarmarkarKarpTest, SumsConsistentWithAssignment) {
  std::vector<double> w{10.0, 20.0, 30.0, 40.0};
  const BalanceResult res = KarmarkarKarp(w, 2);
  double max_sum = 0.0;
  for (const auto& g : res.groups) {
    double sum = 0.0;
    for (const int32_t idx : g) {
      sum += w[static_cast<size_t>(idx)];
    }
    max_sum = std::max(max_sum, sum);
  }
  EXPECT_DOUBLE_EQ(max_sum, res.max_sum);
  EXPECT_DOUBLE_EQ(res.max_sum, 50.0);  // perfect split exists: {40,10},{30,20}
}

TEST(KarmarkarKarpTest, EmptyInput) {
  const BalanceResult res = KarmarkarKarp({}, 3);
  EXPECT_EQ(res.groups.size(), 3u);
  EXPECT_DOUBLE_EQ(res.max_sum, 0.0);
}

TEST(KarmarkarKarpTest, SingleGroupGetsEverything) {
  const BalanceResult res = KarmarkarKarp({1.0, 2.0, 3.0}, 1);
  EXPECT_EQ(res.groups[0].size(), 3u);
  EXPECT_DOUBLE_EQ(res.max_sum, 6.0);
}

TEST(KarmarkarKarpTest, FewerItemsThanGroups) {
  const BalanceResult res = KarmarkarKarp({5.0, 7.0}, 4);
  EXPECT_EQ(res.groups.size(), 4u);
  EXPECT_DOUBLE_EQ(res.max_sum, 7.0);
  EXPECT_DOUBLE_EQ(res.min_sum, 0.0);
}

class KkVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(KkVsBruteForce, WithinFactorOfOptimal) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 77);
  const int n = 4 + static_cast<int>(rng.NextBelow(7));
  const int k = 2 + static_cast<int>(rng.NextBelow(3));
  std::vector<double> w;
  for (int i = 0; i < n; ++i) {
    w.push_back(rng.NextDouble(1.0, 50.0));
  }
  const BalanceResult kk = KarmarkarKarp(w, k);
  const BalanceResult opt = BruteForceBalance(w, k);
  EXPECT_GE(kk.max_sum, opt.max_sum - 1e-9);
  EXPECT_LE(kk.max_sum, opt.max_sum * 1.25);  // LDM is near-optimal on small inputs
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, KkVsBruteForce, ::testing::Range(0, 30));

TEST(KarmarkarKarpTest, BeatsOrMatchesRoundRobinOnSkewedInput) {
  Rng rng(31);
  std::vector<double> w;
  for (int i = 0; i < 64; ++i) {
    // Heavy-tailed weights, the realistic case for micro-batch times.
    w.push_back(std::exp(rng.NextGaussian(2.0, 1.0)));
  }
  const BalanceResult kk = KarmarkarKarp(w, 4);
  const BalanceResult rr = RoundRobinBalance(w, 4);
  EXPECT_LE(kk.max_sum, rr.max_sum + 1e-9);
  EXPECT_LT(kk.imbalance(), rr.imbalance() * 0.9);
}

}  // namespace
}  // namespace dynapipe::mb
