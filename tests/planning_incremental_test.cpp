// Tests for incremental planning (sub-plan memoization): the PrefixWindowCache
// and warm-start pruning inside the DP partitioner, the StageCostCache behind
// the replica build, plan-cache byte bounding and near-miss seeding, and —
// the property everything above hangs on — bit-identity of incremental
// planning to cold from-scratch planning under batch shuffles, swaps,
// insertions, and deletions.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/cost/cost_cache.h"
#include "src/data/flan_generator.h"
#include "src/mb/dp_partitioner.h"
#include "src/mb/ordering.h"
#include "src/runtime/planner.h"
#include "src/service/plan_cache.h"

namespace dynapipe {
namespace {

// ---------- DP-level: PrefixWindowCache and warm starts ----------

class SyntheticCost : public mb::MicroBatchCostFn {
 public:
  double TimeMs(const model::MicroBatchShape& shape) const override {
    return 0.3 + 0.002 * static_cast<double>(shape.padded_tokens());
  }
  double ActivationMb(const model::MicroBatchShape& shape) const override {
    return 0.05 * static_cast<double>(shape.padded_tokens());
  }
};

std::vector<data::Sample> RandomSamples(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<data::Sample> samples;
  for (int i = 0; i < n; ++i) {
    data::Sample s;
    s.id = static_cast<uint64_t>(i);
    s.input_len = static_cast<int32_t>(rng.NextInt(10, 300));
    s.target_len = static_cast<int32_t>(rng.NextInt(0, 60));
    samples.push_back(s);
  }
  return samples;
}

std::vector<data::Sample> Ordered(std::vector<data::Sample> samples) {
  return mb::OrderSamples(std::move(samples), mb::OrderingMethod::kSortByLength);
}

mb::DpPartitionerOptions BaseDpOptions() {
  mb::DpPartitionerOptions opts;
  opts.num_stages = 4;
  opts.num_replicas = 2;
  opts.activation_limit_mb = 40.0;
  opts.max_microbatch_size = 16;
  opts.tmax_interval_ms = 0.05;
  opts.max_tmax_candidates = 64;
  return opts;
}

void ExpectPartitionsBitIdentical(const mb::PartitionResult& got,
                                  const mb::PartitionResult& want) {
  ASSERT_EQ(got.feasible, want.feasible);
  if (!want.feasible) {
    return;
  }
  ASSERT_EQ(got.micro_batches.size(), want.micro_batches.size());
  for (size_t k = 0; k < want.micro_batches.size(); ++k) {
    EXPECT_EQ(got.micro_batches[k].samples.size(),
              want.micro_batches[k].samples.size());
    EXPECT_EQ(got.micro_batches[k].predicted_time_ms,
              want.micro_batches[k].predicted_time_ms);
    EXPECT_EQ(got.micro_batches[k].predicted_activation_mb,
              want.micro_batches[k].predicted_activation_mb);
  }
  EXPECT_EQ(got.objective_ms, want.objective_ms);
  EXPECT_EQ(got.max_time_ms, want.max_time_ms);
  EXPECT_EQ(got.total_time_ms, want.total_time_ms);
  EXPECT_EQ(got.candidates_tried, want.candidates_tried);
}

// One mutated successor of `base`, cycling through the batch edits the
// plan-ahead pipeline actually sees: full reshuffle (same multiset), a swap
// of two samples' lengths, an insertion, a deletion, and a tail-length edit.
std::vector<data::Sample> Mutate(std::vector<data::Sample> samples, int kind,
                                 Rng* rng) {
  switch (kind % 5) {
    case 0: {  // reshuffle: identical multiset, different arrival order
      for (size_t i = samples.size(); i > 1; --i) {
        std::swap(samples[i - 1],
                  samples[static_cast<size_t>(rng->NextInt(
                      0, static_cast<int32_t>(i) - 1))]);
      }
      break;
    }
    case 1: {  // swap two samples' length pairs
      const size_t a = static_cast<size_t>(
          rng->NextInt(0, static_cast<int32_t>(samples.size()) - 1));
      const size_t b = static_cast<size_t>(
          rng->NextInt(0, static_cast<int32_t>(samples.size()) - 1));
      std::swap(samples[a].input_len, samples[b].input_len);
      std::swap(samples[a].target_len, samples[b].target_len);
      break;
    }
    case 2: {  // insertion
      data::Sample s;
      s.id = 10'000 + static_cast<uint64_t>(kind);
      s.input_len = static_cast<int32_t>(rng->NextInt(10, 300));
      s.target_len = static_cast<int32_t>(rng->NextInt(0, 60));
      samples.push_back(s);
      break;
    }
    case 3: {  // deletion
      if (samples.size() > 2) {
        samples.erase(samples.begin() +
                      rng->NextInt(0, static_cast<int32_t>(samples.size()) - 1));
      }
      break;
    }
    default: {  // perturb one sample's length
      const size_t a = static_cast<size_t>(
          rng->NextInt(0, static_cast<int32_t>(samples.size()) - 1));
      samples[a].input_len =
          std::max(1, samples[a].input_len +
                          static_cast<int32_t>(rng->NextInt(0, 20)) - 10);
      break;
    }
  }
  return samples;
}

TEST(PrefixWindowCacheTest, IncrementalBitIdenticalToColdUnderMutations) {
  // The tentpole property: a partitioner carrying the prefix cache (and its
  // own previous solution as a warm seed) across a drifting batch sequence
  // must emit exactly the partitions a cold partitioner computes from
  // scratch — for every mutation kind and pool width.
  for (const int32_t threads : {0, 2, 8}) {
    std::optional<ThreadPool> pool;
    if (threads > 0) {
      pool.emplace(threads);
    }
    SyntheticCost cost;
    mb::PrefixWindowCache cache;
    Rng rng(91u + static_cast<uint64_t>(threads));
    std::vector<data::Sample> raw = RandomSamples(120, 17);
    std::vector<int32_t> prev_widths;
    for (int step = 0; step < 10; ++step) {
      const std::vector<data::Sample> ordered = Ordered(raw);

      mb::DpPartitionerOptions cold_opts = BaseDpOptions();
      cold_opts.pool = pool ? &*pool : nullptr;
      mb::DpPartitioner cold(cost, cold_opts);
      const mb::PartitionResult want = cold.Partition(ordered);

      mb::DpPartitionerOptions inc_opts = cold_opts;
      inc_opts.prefix_cache = &cache;
      inc_opts.prefix_cache_context = 0xfeedULL;
      if (!prev_widths.empty()) {
        inc_opts.warm_start_seeds.push_back(prev_widths);
      }
      mb::DpPartitioner incremental(cost, inc_opts);
      const mb::PartitionResult got = incremental.Partition(ordered);

      ExpectPartitionsBitIdentical(got, want);
      if (want.feasible) {
        prev_widths.clear();
        for (const auto& m : want.micro_batches) {
          prev_widths.push_back(m.shape.num_samples);
        }
      }
      raw = Mutate(std::move(raw), step, &rng);
    }
    EXPECT_GT(cache.stats().insertions, 0);
  }
}

TEST(PrefixWindowCacheTest, IdenticalBatchHitsAndReusesRows) {
  SyntheticCost cost;
  mb::PrefixWindowCache cache;
  const std::vector<data::Sample> ordered = Ordered(RandomSamples(80, 5));
  mb::DpPartitionerOptions opts = BaseDpOptions();
  opts.prefix_cache = &cache;
  opts.prefix_cache_context = 1;

  mb::DpPartitioner p(cost, opts);
  const mb::PartitionResult first = p.Partition(ordered);
  ASSERT_TRUE(first.feasible);
  EXPECT_FALSE(first.stats.prefix_cache_hit);

  const mb::PartitionResult second = p.Partition(ordered);
  ExpectPartitionsBitIdentical(second, first);
  EXPECT_TRUE(second.stats.prefix_cache_hit);
  // An identical batch reuses the whole window table and every candidate's
  // DP row — the replay loop never runs.
  EXPECT_GT(second.stats.prefix_window_rows_reused, 0);
  EXPECT_GT(second.stats.prefix_f_rows_reused, 0);
}

TEST(PrefixWindowCacheTest, ContextMismatchNeverReuses) {
  // Entries are context-keyed: a partitioner whose fingerprint differs (other
  // cost model, other recompute mode) must miss even on an identical batch.
  SyntheticCost cost;
  mb::PrefixWindowCache cache;
  const std::vector<data::Sample> ordered = Ordered(RandomSamples(60, 9));
  mb::DpPartitionerOptions opts = BaseDpOptions();
  opts.prefix_cache = &cache;
  opts.prefix_cache_context = 1;
  mb::DpPartitioner(cost, opts).Partition(ordered);

  mb::DpPartitionerOptions other = opts;
  other.prefix_cache_context = 2;
  const mb::PartitionResult got = mb::DpPartitioner(cost, other).Partition(ordered);
  ASSERT_TRUE(got.feasible);
  EXPECT_FALSE(got.stats.prefix_cache_hit);
}

TEST(PrefixWindowCacheTest, InvalidateDropsEverything) {
  SyntheticCost cost;
  mb::PrefixWindowCache cache;
  const std::vector<data::Sample> ordered = Ordered(RandomSamples(60, 13));
  mb::DpPartitionerOptions opts = BaseDpOptions();
  opts.prefix_cache = &cache;
  opts.prefix_cache_context = 7;
  mb::DpPartitioner p(cost, opts);
  p.Partition(ordered);
  ASSERT_GT(cache.size(), 0u);

  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0u);
  const mb::PartitionResult after = p.Partition(ordered);
  ASSERT_TRUE(after.feasible);
  EXPECT_FALSE(after.stats.prefix_cache_hit);
}

TEST(PrefixWindowCacheTest, ByteBoundEvictsOldestButKeepsOne)
{
  SyntheticCost cost;
  mb::PrefixWindowCache::Options copts;
  copts.max_bytes = 1;  // every insert exceeds the cap
  mb::PrefixWindowCache cache(copts);
  mb::DpPartitionerOptions opts = BaseDpOptions();
  opts.prefix_cache = &cache;
  opts.prefix_cache_context = 3;
  for (const uint64_t seed : {1u, 2u, 3u}) {
    mb::DpPartitioner(cost, opts).Partition(Ordered(RandomSamples(50, seed)));
  }
  // The cap keeps the most recent entry even though it alone exceeds it.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(WarmStartTest, SeededSweepPrunesAndStaysBitIdentical) {
  // Uniform lengths make the pruning bound provable by hand: every window of
  // width w costs 0.3 + 0.2w ms, so the smallest candidate (0.5 ms) admits
  // only width-1 windows — 100 parts whose summed overhead exceeds the
  // seeded upper bound from the optimum — and must be pruned, while wider
  // candidates survive. (With widely spread random lengths the conservative
  // per-part floor keeps the bound from firing; that regime is covered by
  // GarbageSeedsAreHarmless and the drifting-sequence test.)
  SyntheticCost cost;
  std::vector<data::Sample> uniform;
  for (int i = 0; i < 100; ++i) {
    data::Sample s;
    s.id = static_cast<uint64_t>(i);
    s.input_len = 100;
    s.target_len = 0;
    uniform.push_back(s);
  }
  const std::vector<data::Sample> ordered = Ordered(std::move(uniform));
  mb::DpPartitionerOptions opts = BaseDpOptions();
  mb::DpPartitioner cold(cost, opts);
  const mb::PartitionResult want = cold.Partition(ordered);
  ASSERT_TRUE(want.feasible);
  EXPECT_EQ(want.stats.warmstart_pruned, 0);

  std::vector<int32_t> widths;
  for (const auto& m : want.micro_batches) {
    widths.push_back(m.shape.num_samples);
  }
  mb::DpPartitionerOptions seeded_opts = opts;
  seeded_opts.warm_start_seeds.push_back(widths);
  mb::DpPartitioner seeded(cost, seeded_opts);
  const mb::PartitionResult got = seeded.Partition(ordered);
  ExpectPartitionsBitIdentical(got, want);
  EXPECT_GT(got.stats.warmstart_pruned, 0);
}

TEST(WarmStartTest, GarbageSeedsAreHarmless) {
  // Seeds that don't cover the batch, exceed the size cap, or break the
  // memory limit must be ignored (revalidation), never corrupt the result.
  SyntheticCost cost;
  const std::vector<data::Sample> ordered = Ordered(RandomSamples(60, 29));
  mb::DpPartitionerOptions opts = BaseDpOptions();
  const mb::PartitionResult want = mb::DpPartitioner(cost, opts).Partition(ordered);

  mb::DpPartitionerOptions seeded = opts;
  seeded.warm_start_seeds.push_back({});                 // empty
  seeded.warm_start_seeds.push_back({5, 5});             // short of n
  seeded.warm_start_seeds.push_back({1'000'000});        // over size cap
  seeded.warm_start_seeds.push_back(
      std::vector<int32_t>(ordered.size(), 1));          // valid all-ones seed
  const mb::PartitionResult got = mb::DpPartitioner(cost, seeded).Partition(ordered);
  ExpectPartitionsBitIdentical(got, want);
}

// ---------- StageCostCache ----------

TEST(StageCostCacheTest, RoundTripsPerStageEntries) {
  cost::StageCostCache cache;
  model::MicroBatchShape shape{4, 128, 32};
  cost::StageCostCache::Entry in{1.5, 3.25, 77.0};
  cache.Insert(/*context=*/9, /*stage=*/2, shape, model::RecomputeMode::kFull, in);

  cost::StageCostCache::Entry out;
  ASSERT_TRUE(
      cache.Lookup(9, 2, shape, model::RecomputeMode::kFull, &out));
  EXPECT_EQ(out.fwd_ms, in.fwd_ms);
  EXPECT_EQ(out.bwd_ms, in.bwd_ms);
  EXPECT_EQ(out.act_mb, in.act_mb);
  // Any key component change misses: context, stage, shape, mode.
  EXPECT_FALSE(cache.Lookup(8, 2, shape, model::RecomputeMode::kFull, &out));
  EXPECT_FALSE(cache.Lookup(9, 1, shape, model::RecomputeMode::kFull, &out));
  EXPECT_FALSE(cache.Lookup(9, 2, shape, model::RecomputeMode::kNone, &out));
  shape.input_len = 129;
  EXPECT_FALSE(cache.Lookup(9, 2, shape, model::RecomputeMode::kFull, &out));
}

TEST(StageCostCacheTest, ByteBoundEvictsLru) {
  cost::StageCostCache cache(/*max_bytes=*/1);  // each insert exceeds the cap
  for (int32_t i = 0; i < 10; ++i) {
    cache.Insert(1, 0, {1, 100 + i, 0}, model::RecomputeMode::kNone,
                 {1.0, 2.0, 3.0});
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.stats().evictions, 0);
  // The survivor is the most recent insert.
  cost::StageCostCache::Entry out;
  EXPECT_TRUE(cache.Lookup(1, 0, {1, 109, 0}, model::RecomputeMode::kNone, &out));
}

TEST(StageCostCacheTest, OversizedShapesBypassTheCache) {
  cost::StageCostCache cache;
  const model::MicroBatchShape huge{1, 1 << 21, 0};  // input_len over 2^20
  cache.Insert(1, 0, huge, model::RecomputeMode::kNone, {1.0, 2.0, 3.0});
  cost::StageCostCache::Entry out;
  EXPECT_FALSE(cache.Lookup(1, 0, huge, model::RecomputeMode::kNone, &out));
  EXPECT_EQ(cache.size(), 0u);
}

// ---------- PlanCache: byte bounding and near-miss seeding ----------

runtime::IterationPlan TinyPlan(const std::vector<data::Sample>& samples,
                                std::vector<int32_t> widths) {
  runtime::IterationPlan plan;
  plan.feasible = true;
  plan.partition_widths = std::move(widths);
  runtime::ReplicaPlan replica;
  mb::MicroBatch m;
  m.samples = samples;
  replica.micro_batches.push_back(std::move(m));
  plan.replicas.push_back(std::move(replica));
  return plan;
}

std::vector<data::Sample> LengthRun(int n, int32_t input, int32_t target) {
  std::vector<data::Sample> out;
  for (int i = 0; i < n; ++i) {
    data::Sample s;
    s.id = static_cast<uint64_t>(i);
    s.input_len = input;
    s.target_len = target;
    out.push_back(s);
  }
  return out;
}

TEST(PlanCacheBytesTest, ByteCapEvictsButKeepsMostRecent) {
  service::PlanCacheOptions opts;
  opts.capacity = 100;
  opts.max_bytes = 1;  // every entry exceeds it
  service::PlanCache cache(opts);
  for (int i = 0; i < 4; ++i) {
    const auto batch = LengthRun(8, 100 + i, 10);
    cache.Insert(service::PlanCache::Signature(batch, false, 1, 0),
                 TinyPlan(batch, {4, 4}));
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.stats().evictions, 0);
  EXPECT_GT(cache.bytes(), 0u);
  // The survivor is the most recent signature.
  const auto last = LengthRun(8, 103, 10);
  EXPECT_TRUE(cache
                  .Lookup(service::PlanCache::Signature(last, false, 1, 0), last,
                          false, 1)
                  .has_value());
}

TEST(PlanCacheBytesTest, EstimateTracksInsertAndEvict) {
  service::PlanCache cache(service::PlanCacheOptions{});
  const auto batch = LengthRun(16, 200, 20);
  const runtime::IterationPlan plan = TinyPlan(batch, {8, 8});
  const size_t estimate = service::PlanCache::EstimatePlanBytes(plan);
  EXPECT_GT(estimate, sizeof(runtime::IterationPlan));
  cache.Insert(service::PlanCache::Signature(batch, false, 1, 0), plan);
  EXPECT_GE(cache.bytes(), estimate);
}

TEST(PlanCacheNearMissTest, SharedPrefixYieldsSeedDisjointDoesNot) {
  service::PlanCache cache(service::PlanCacheOptions{});
  const auto cached_batch = LengthRun(10, 100, 10);
  cache.Insert(service::PlanCache::Signature(cached_batch, false, 1, 0),
               TinyPlan(cached_batch, {5, 5}));

  // 8 of 10 samples identical: ample shared prefix.
  auto near = LengthRun(10, 100, 10);
  near[8].input_len = 250;
  near[9].input_len = 260;
  const auto near_sig = service::PlanCache::Signature(near, false, 1, 0);
  ASSERT_FALSE(cache.Lookup(near_sig, near, false, 1).has_value());
  const auto seed = cache.LookupNearMiss(near_sig);
  ASSERT_TRUE(seed.has_value());
  EXPECT_EQ(seed->partition_widths, (std::vector<int32_t>{5, 5}));

  // Completely different lengths: no overlap, no seed.
  const auto far = LengthRun(10, 999, 99);
  EXPECT_FALSE(
      cache.LookupNearMiss(service::PlanCache::Signature(far, false, 1, 0))
          .has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.near_miss_hits, 1);
  EXPECT_EQ(stats.near_miss_misses, 1);
}

TEST(PlanCacheNearMissTest, PromotionRefreshesDonorLru) {
  service::PlanCacheOptions opts;
  opts.capacity = 2;
  service::PlanCache cache(opts);
  const auto a = LengthRun(10, 100, 10);
  const auto b = LengthRun(10, 500, 50);
  cache.Insert(service::PlanCache::Signature(a, false, 1, 0), TinyPlan(a, {5, 5}));
  cache.Insert(service::PlanCache::Signature(b, false, 1, 0), TinyPlan(b, {2, 8}));

  // Near-miss against `a` promotes it over `b` in LRU order...
  auto near_a = a;
  near_a[9].input_len = 130;
  ASSERT_TRUE(
      cache.LookupNearMiss(service::PlanCache::Signature(near_a, false, 1, 0))
          .has_value());
  // ...so the next insert evicts `b`, not `a`.
  const auto c = LengthRun(10, 700, 70);
  cache.Insert(service::PlanCache::Signature(c, false, 1, 0), TinyPlan(c, {10}));
  EXPECT_TRUE(
      cache.Lookup(service::PlanCache::Signature(a, false, 1, 0), a, false, 1)
          .has_value());
  EXPECT_FALSE(
      cache.Lookup(service::PlanCache::Signature(b, false, 1, 0), b, false, 1)
          .has_value());
}

// ---------- Planner-level: end-to-end bit-identity ----------

class IncrementalPlannerTest : public ::testing::Test {
 protected:
  IncrementalPlannerTest()
      : cm_(cost::PipelineCostModel::Profile(model::ModelConfig::Gpt3_35B(),
                                             model::HardwareSpec{}, {1, 1, 4},
                                             SmallProfile())) {}

  static cost::ProfileOptions SmallProfile() {
    cost::ProfileOptions opts;
    opts.max_microbatch_size = 32;
    opts.max_seq_len = 4096;
    return opts;
  }

  static runtime::PlannerOptions FastPlanner() {
    runtime::PlannerOptions opts;
    opts.max_tmax_candidates = 48;
    opts.tmax_interval_ms = 0.5;
    opts.max_microbatch_size = 32;
    opts.reorder_clusters = 2;
    opts.dynamic_recompute = true;
    return opts;
  }

  static std::vector<data::Sample> MiniBatch(int n, uint64_t seed) {
    data::FlanGeneratorOptions gen;
    gen.num_samples = n;
    gen.seed = seed;
    gen.length_cap = 1024;
    return data::GenerateFlanLikeDataset(gen).samples();
  }

  static void ExpectPlansBitIdentical(const runtime::IterationPlan& a,
                                      const runtime::IterationPlan& b) {
    ASSERT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.recompute, b.recompute);
    EXPECT_EQ(a.predicted_iteration_ms, b.predicted_iteration_ms);
    EXPECT_EQ(a.partition_widths, b.partition_widths);
    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    for (size_t d = 0; d < a.replicas.size(); ++d) {
      ASSERT_EQ(a.replicas[d].micro_batches.size(),
                b.replicas[d].micro_batches.size());
      for (size_t k = 0; k < a.replicas[d].micro_batches.size(); ++k) {
        EXPECT_EQ(a.replicas[d].micro_batches[k].samples.size(),
                  b.replicas[d].micro_batches[k].samples.size());
        EXPECT_EQ(a.replicas[d].micro_batches[k].predicted_time_ms,
                  b.replicas[d].micro_batches[k].predicted_time_ms);
      }
      // The strongest check available: the serialized instruction streams
      // executors consume are equal field for field.
      EXPECT_EQ(a.replicas[d].exec_plan, b.replicas[d].exec_plan);
    }
  }

  cost::PipelineCostModel cm_;
};

TEST_F(IncrementalPlannerTest, DriftingSequenceBitIdenticalToColdPlanning) {
  runtime::PlannerOptions inc_opts = FastPlanner();
  inc_opts.incremental_planning = true;
  const runtime::IterationPlanner incremental(cm_, inc_opts);

  runtime::PlannerOptions cold_opts = FastPlanner();
  cold_opts.incremental_planning = false;

  Rng rng(37);
  std::vector<data::Sample> raw = MiniBatch(48, 3);
  for (int step = 0; step < 6; ++step) {
    // Cold planner rebuilt per step: no state can carry over.
    const runtime::IterationPlanner cold(cm_, cold_opts);
    const runtime::IterationPlan want = cold.PlanIteration(raw);
    const runtime::IterationPlan got = incremental.PlanIteration(raw);
    ExpectPlansBitIdentical(got, want);
    raw = Mutate(std::move(raw), step, &rng);
  }
  // The incremental planner actually engaged its caches along the way.
  EXPECT_GT(incremental.prefix_cache()->stats().insertions, 0);
  EXPECT_GT(incremental.stage_cost_cache()->stats().insertions, 0);
}

TEST_F(IncrementalPlannerTest, RepeatedBatchHitsPrefixCache) {
  const runtime::IterationPlanner planner(cm_, FastPlanner());
  const auto minibatch = MiniBatch(40, 11);
  const runtime::IterationPlan first = planner.PlanIteration(minibatch);
  ASSERT_TRUE(first.feasible);
  const runtime::IterationPlan second = planner.PlanIteration(minibatch);
  ExpectPlansBitIdentical(second, first);
  EXPECT_GT(second.stats.prefix_cache_hits, 0);
  EXPECT_GT(second.stats.prefix_window_rows_reused, 0);
  EXPECT_GT(second.stats.stage_cache_hits, 0);
}

TEST_F(IncrementalPlannerTest, PlanSeedChangesNothingButPlanStats) {
  const runtime::IterationPlanner planner(cm_, FastPlanner());
  const auto minibatch = MiniBatch(40, 19);
  const runtime::IterationPlan unseeded = planner.PlanIteration(minibatch);
  ASSERT_TRUE(unseeded.feasible);

  runtime::PlannerOptions cold_opts = FastPlanner();
  cold_opts.incremental_planning = false;
  const runtime::IterationPlanner cold(cm_, cold_opts);
  runtime::PlanSeed seed;
  seed.partition_widths = unseeded.partition_widths;
  // Seed a *different* batch's planner with this plan's widths — the
  // near-miss scenario — and check the result matches unseeded planning.
  auto shifted = minibatch;
  shifted.pop_back();
  const runtime::IterationPlan want = cold.PlanIteration(shifted);
  const runtime::IterationPlan got = planner.PlanIteration(shifted, &seed);
  ExpectPlansBitIdentical(got, want);
}

TEST_F(IncrementalPlannerTest, InvalidateResetsCaches) {
  const runtime::IterationPlanner planner(cm_, FastPlanner());
  const auto minibatch = MiniBatch(32, 29);
  planner.PlanIteration(minibatch);
  ASSERT_GT(planner.prefix_cache()->size(), 0u);
  planner.InvalidateIncrementalCaches();
  EXPECT_EQ(planner.prefix_cache()->size(), 0u);
  EXPECT_EQ(planner.stage_cost_cache()->size(), 0u);
  const runtime::IterationPlan after = planner.PlanIteration(minibatch);
  EXPECT_TRUE(after.feasible);
  EXPECT_EQ(after.stats.prefix_cache_hits, 0);
}

}  // namespace
}  // namespace dynapipe
