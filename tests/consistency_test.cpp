// Cross-validation between the two execution models.
//
// The planning-side ExecutorSimulator (dependency timeline, per-boundary comm
// delays) and the instruction-level ClusterSim (explicit channels, rendezvous
// matching) implement the same execution semantics from opposite directions.
// With zero-cost transfers and no noise they must agree *exactly* on every
// makespan; with real transfer costs ClusterSim can only be slower (channel
// serialization adds constraints the timeline model relaxes). Also checks the
// thread-pool-planned epoch is bit-identical to serial planning.
#include <gtest/gtest.h>

#include "src/comm/comm_planner.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/data/flan_generator.h"
#include "src/runtime/trainer.h"
#include "src/schedule/adaptive_scheduler.h"
#include "src/schedule/executor_simulator.h"
#include "src/schedule/one_f_one_b.h"
#include "src/sim/cluster_sim.h"

namespace dynapipe {
namespace {

// Ground truth that mirrors an OpCosts table exactly (no noise).
class TableGroundTruth : public sim::GroundTruth {
 public:
  TableGroundTruth(const schedule::OpCosts& costs, double transfer_ms)
      : costs_(costs), transfer_ms_(transfer_ms) {}

  double ComputeMs(int32_t device, const sim::Instruction& instr) override {
    const auto& table = instr.type == sim::InstrType::kForwardPass
                            ? costs_.fwd_ms
                            : costs_.bwd_ms;
    return table[static_cast<size_t>(device)][static_cast<size_t>(instr.microbatch)];
  }
  double ActivationMb(int32_t device, const sim::Instruction& instr) override {
    return costs_.act_mb[static_cast<size_t>(device)]
                        [static_cast<size_t>(instr.microbatch)];
  }
  double TransferMs(int32_t, int32_t, int64_t) override { return transfer_ms_; }

 private:
  const schedule::OpCosts& costs_;
  double transfer_ms_;
};

schedule::OpCosts RandomCosts(int32_t c, int32_t m, uint64_t seed) {
  Rng rng(seed);
  schedule::OpCosts costs;
  costs.fwd_ms.assign(static_cast<size_t>(c),
                      std::vector<double>(static_cast<size_t>(m)));
  costs.bwd_ms = costs.fwd_ms;
  costs.act_mb = costs.fwd_ms;
  for (int32_t j = 0; j < c; ++j) {
    for (int32_t i = 0; i < m; ++i) {
      const double fwd = rng.NextDouble(0.5, 5.0);
      costs.fwd_ms[j][i] = fwd;
      costs.bwd_ms[j][i] = 2.0 * fwd;
      costs.act_mb[j][i] = rng.NextDouble(1.0, 10.0);
    }
  }
  return costs;
}

sim::ExecutionPlan PlanFor(const schedule::PipelineSchedule& sched,
                           const schedule::OpCosts& costs) {
  const auto tl = schedule::SimulateSchedule(sched, costs);
  std::vector<model::MicroBatchShape> shapes(
      static_cast<size_t>(sched.num_microbatches), model::MicroBatchShape{1, 64, 0});
  comm::CommPlannerInputs inputs;
  inputs.schedule = &sched;
  inputs.timeline = &tl;
  inputs.shapes = shapes;
  inputs.boundary_bytes = [](int32_t, int32_t) { return int64_t{1}; };
  return comm::PlanCommunication(inputs);
}

class SimulatorAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorAgreement, ExactMatchWithFreeTransfers) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int32_t c = static_cast<int32_t>(rng.NextInt(2, 6));
  const int32_t m = static_cast<int32_t>(rng.NextInt(2, 12));
  const schedule::OpCosts costs = RandomCosts(c, m, rng.NextU64());

  for (const bool adaptive : {false, true}) {
    schedule::PipelineSchedule sched;
    if (adaptive) {
      auto maybe = schedule::MemoryAwareAdaptiveSchedule(costs);
      ASSERT_TRUE(maybe.has_value());
      sched = *maybe;
    } else {
      sched = schedule::OneFOneBSchedule(m, c);
    }
    const auto tl = schedule::SimulateSchedule(sched, costs);
    const sim::ExecutionPlan plan = PlanFor(sched, costs);
    TableGroundTruth gt(costs, /*transfer_ms=*/0.0);
    sim::ClusterSim cluster(c, &gt);
    const sim::SimResult res = cluster.Run(plan);
    ASSERT_FALSE(res.deadlocked) << res.diagnostic;
    EXPECT_NEAR(res.makespan_ms, tl.makespan_ms, 1e-9)
        << (adaptive ? "adaptive" : "1F1B") << " c=" << c << " m=" << m;
    // Per-device busy time must match too (same compute, different bookkeeping).
    for (int32_t j = 0; j < c; ++j) {
      EXPECT_NEAR(res.devices[static_cast<size_t>(j)].busy_ms,
                  tl.device_busy_ms[static_cast<size_t>(j)], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCases, SimulatorAgreement, ::testing::Range(0, 30));

class SimulatorOrdering : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorOrdering, ChannelsOnlyAddDelay) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 400);
  const int32_t c = static_cast<int32_t>(rng.NextInt(2, 5));
  const int32_t m = static_cast<int32_t>(rng.NextInt(2, 10));
  const schedule::OpCosts costs = RandomCosts(c, m, rng.NextU64());
  const auto sched = schedule::MemoryAwareAdaptiveSchedule(costs);
  ASSERT_TRUE(sched.has_value());
  const auto tl = schedule::SimulateSchedule(*sched, costs);
  const sim::ExecutionPlan plan = PlanFor(*sched, costs);
  TableGroundTruth gt(costs, /*transfer_ms=*/0.4);
  sim::ClusterSim cluster(c, &gt);
  const sim::SimResult res = cluster.Run(plan);
  ASSERT_FALSE(res.deadlocked);
  // The free-transfer timeline is a lower bound on the constrained execution.
  EXPECT_GE(res.makespan_ms, tl.makespan_ms - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomCases, SimulatorOrdering, ::testing::Range(0, 15));

// ---------- Thread pool + parallel planning ----------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, DrainsOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&done] { ++done; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(done.load(), 16);
}

TEST(ParallelPlanningTest, IdenticalToSerialPlanning) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  cost::ProfileOptions profile;
  profile.max_microbatch_size = 32;
  profile.max_seq_len = 4096;
  runtime::Trainer trainer(config, hw, {1, 1, 4}, profile);
  data::FlanGeneratorOptions gen;
  gen.num_samples = 400;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);

  runtime::PlannerOptions popts;
  popts.dynamic_recompute = false;
  popts.max_tmax_candidates = 32;
  popts.tmax_interval_ms = 0.5;
  runtime::TrainerOptions serial_opts;
  serial_opts.global_batch_tokens = 8192;
  serial_opts.max_input_len = 1024;
  serial_opts.max_iterations = 5;
  runtime::TrainerOptions parallel_opts = serial_opts;
  parallel_opts.planning_threads = 4;

  const runtime::EpochResult serial = trainer.RunEpoch(dataset, popts, serial_opts);
  const runtime::EpochResult parallel =
      trainer.RunEpoch(dataset, popts, parallel_opts);
  ASSERT_TRUE(serial.feasible) << serial.failure;
  ASSERT_TRUE(parallel.feasible) << parallel.failure;
  ASSERT_EQ(serial.iterations, parallel.iterations);
  EXPECT_EQ(serial.real_tokens, parallel.real_tokens);
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (size_t i = 0; i < serial.records.size(); ++i) {
    // Planning is deterministic; measured times match because the noise stream
    // is consumed in the same per-iteration order.
    EXPECT_DOUBLE_EQ(serial.records[i].predicted_ms, parallel.records[i].predicted_ms);
    EXPECT_DOUBLE_EQ(serial.records[i].measured_ms, parallel.records[i].measured_ms);
    EXPECT_EQ(serial.records[i].num_microbatches,
              parallel.records[i].num_microbatches);
  }
}

}  // namespace
}  // namespace dynapipe
