// Backend-conformance suite for the InstructionStoreInterface contract.
//
// Every store backend — in-process plain, in-process serialized, the remote
// client over the loopback and Unix-socket transports, the multiplexed
// persistent-connection client, and the shared-memory store — must honor the
// same publish-before-fetch contract: push/fetch round-trips plans losslessly
// under independent keys, double-publish and fetch-before-publish abort,
// capacity backpressures Push (blocking until a Fetch frees a slot), and
// Shutdown unblocks blocked pushers and drops their plans. The suite is
// value-parameterized over backend factories, so any future backend (a real
// Redis client) inherits the whole contract by adding one factory line.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/mman.h>
#include <unistd.h>

#include "src/runtime/instruction_store.h"
#include "src/service/heartbeat_monitor.h"
#include "src/sim/instruction.h"
#include "src/transport/frame.h"
#include "src/transport/mux.h"
#include "src/transport/remote_store.h"
#include "src/transport/shm_store.h"
#include "src/transport/store_server.h"
#include "src/transport/transport.h"

namespace dynapipe {
namespace {

// TSan intercepts the fork/re-exec machinery death tests rely on; the
// sanitizer job covers the concurrency tests instead.
#if defined(__SANITIZE_THREAD__)
#define DYNAPIPE_DEATH_TESTS 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DYNAPIPE_DEATH_TESTS 0
#else
#define DYNAPIPE_DEATH_TESTS 1
#endif
#else
#define DYNAPIPE_DEATH_TESTS 1
#endif

sim::ExecutionPlan MarkerPlan(int32_t marker) {
  sim::ExecutionPlan plan;
  plan.num_microbatches = marker;
  sim::DevicePlan dev;
  dev.device = 0;
  sim::Instruction instr;
  instr.type = sim::InstrType::kForwardPass;
  instr.microbatch = marker;
  instr.shape = {marker, 128, 0};
  dev.instructions.push_back(instr);
  plan.devices.push_back(std::move(dev));
  return plan;
}

// A live backend: whatever machinery the store needs (server, transport)
// plus the interface handle the tests drive. Backends with a heartbeat
// channel route it into a HeartbeatMonitor and expose it so the capability
// test can verify delivery; a backend whose delivery is asynchronous (shm:
// beats land in segment slots and a poller replays them) also reports that,
// so the test knows to wait instead of asserting instantly.
struct Backend {
  virtual ~Backend() = default;
  virtual runtime::InstructionStoreInterface& store() = 0;
  virtual const service::HeartbeatMonitor* heartbeats() const {
    return nullptr;
  }
  virtual bool heartbeats_are_async() const { return false; }
  // Mid-epoch join is a capability too: how a replica outside the configured
  // fleet announces itself to a running store. Wire clients carry
  // kAttachCapJoin on their kAttach (frame v4); a shm replica claims a
  // heartbeat slot with no frame at all; a plain in-process store has no
  // membership plane. Returns whether the announcement was delivered.
  virtual bool supports_join() const { return false; }
  virtual bool Join(int32_t replica) {
    (void)replica;
    return false;
  }
};

struct InProcessBackend : Backend {
  explicit InProcessBackend(bool serialized, size_t capacity)
      : store_(runtime::InstructionStoreOptions{serialized, capacity}) {
    store_.set_heartbeat_sink(&monitor_);
  }
  runtime::InstructionStoreInterface& store() override { return store_; }
  const service::HeartbeatMonitor* heartbeats() const override {
    return &monitor_;
  }
  service::HeartbeatMonitor monitor_;  // before store_: outlives the sink user
  runtime::InstructionStore store_;
};

// Remote client + in-process server over a transport. Member order is the
// teardown order in reverse: client dies first, then the server (which joins
// its handlers), then the transport, then the storage.
template <typename TransportT>
struct RemoteBackend : Backend {
  template <typename... TransportArgs>
  explicit RemoteBackend(size_t capacity, TransportArgs&&... args)
      : store_(runtime::InstructionStoreOptions{/*serialized=*/true, capacity}),
        transport_(std::forward<TransportArgs>(args)...),
        server_(&transport_, &store_),
        client_(transport::RemoteInstructionStore::OverTransport(&transport_)) {
    store_.set_heartbeat_sink(&monitor_);
  }
  runtime::InstructionStoreInterface& store() override { return *client_; }
  const service::HeartbeatMonitor* heartbeats() const override {
    return &monitor_;
  }
  bool supports_join() const override { return true; }
  bool Join(int32_t replica) override {
    // The raw v4 exchange a wire joiner performs: kAttach whose one-byte
    // capability payload carries kAttachCapJoin. The stream stays open on
    // the backend (join_conn_) — closing it here would read as the joiner
    // vanishing right after it arrived.
    join_conn_ = transport_.Connect();
    if (join_conn_ == nullptr) {
      return false;
    }
    transport::Frame attach;
    attach.type = transport::FrameType::kAttach;
    attach.replica = replica;
    attach.payload.push_back(static_cast<char>(transport::kAttachCapJoin));
    if (!WriteFrame(*join_conn_, attach)) {
      return false;
    }
    const std::optional<transport::Frame> reply = ReadFrame(*join_conn_);
    return reply.has_value() && reply->type == transport::FrameType::kOk;
  }

  service::HeartbeatMonitor monitor_;
  runtime::InstructionStore store_;
  TransportT transport_;
  transport::InstructionStoreServer server_;
  std::shared_ptr<transport::RemoteInstructionStore> client_;
  std::unique_ptr<transport::Stream> join_conn_;  // dies before the server
};

// Same server, but reached through one persistent multiplexed connection
// (request-id-tagged frames, credit-based deferred kPush replies) instead of
// a connection per request.
template <typename TransportT>
struct MuxBackend : Backend {
  template <typename... TransportArgs>
  explicit MuxBackend(size_t capacity, TransportArgs&&... args)
      : store_(runtime::InstructionStoreOptions{/*serialized=*/true, capacity}),
        transport_(std::forward<TransportArgs>(args)...),
        server_(&transport_, &store_),
        client_(transport::MuxInstructionStore::OverTransport(&transport_)) {
    store_.set_heartbeat_sink(&monitor_);
  }
  runtime::InstructionStoreInterface& store() override { return *client_; }
  const service::HeartbeatMonitor* heartbeats() const override {
    return &monitor_;
  }
  bool supports_join() const override { return true; }
  bool Join(int32_t replica) override {
    // The mux client's own attach surface; join=true sets kAttachCapJoin on
    // the persistent connection's kAttach.
    bool evicted = false;
    return client_->Attach(replica, &evicted, /*timeout_ms=*/2000,
                           /*join=*/true) &&
           !evicted;
  }

  service::HeartbeatMonitor monitor_;
  runtime::InstructionStore store_;
  TransportT transport_;
  transport::InstructionStoreServer server_;
  std::shared_ptr<transport::MuxInstructionStore> client_;
};

// The shared-memory segment: the store object is the backend — no server,
// no wire; an executor process could attach to the same name. Heartbeats are
// shm-native: Heartbeat writes the caller's segment slot, and the poller
// replays the beats into the monitor from its own thread — delivery is
// eventual, not synchronous with the call.
struct ShmBackend : Backend {
  explicit ShmBackend(size_t capacity, std::string name)
      : store_(transport::ShmInstructionStore::Create(
            std::move(name), transport::ShmStoreOptions{capacity, 64,
                                                        size_t{1} << 20})),
        poller_(store_, &monitor_, /*poll_interval_ms=*/1) {}
  runtime::InstructionStoreInterface& store() override { return *store_; }
  const service::HeartbeatMonitor* heartbeats() const override {
    return &monitor_;
  }
  bool heartbeats_are_async() const override { return true; }
  bool supports_join() const override { return true; }
  bool Join(int32_t replica) override {
    // No frame at all: claiming a heartbeat slot *is* the announcement; the
    // poller surfaces it as the replica turning alive.
    store_->AnnounceReplica(replica);
    return true;
  }

  service::HeartbeatMonitor monitor_;  // before poller_: outlives its sink
  std::shared_ptr<transport::ShmInstructionStore> store_;
  transport::ShmHeartbeatPoller poller_;
};

std::string UniqueSocketPath() {
  static std::atomic<uint64_t> counter{0};
  return "/tmp/dynapipe-conf-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

std::string UniqueShmName() {
  static std::atomic<uint64_t> counter{0};
  return "/dynapipe-conf-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1));
}

// The shm death tests abort a forked child mid-test, so its segment's owner
// destructor (which shm_unlinks) never runs and the segment leaks in
// /dev/shm. Sweep this suite's prefix at startup — names embed the pid, so
// anything matching is a stale leftover from a previous run, never a live
// segment of this one.
const bool g_stale_shm_swept = [] {
  if (DIR* dir = ::opendir("/dev/shm")) {
    while (const dirent* entry = ::readdir(dir)) {
      if (std::string_view(entry->d_name).substr(0, 14) == "dynapipe-conf-") {
        ::shm_unlink((std::string("/") + entry->d_name).c_str());
      }
    }
    ::closedir(dir);
  }
  return true;
}();

struct BackendParam {
  const char* name;
  std::function<std::unique_ptr<Backend>(size_t capacity)> make;
};

const BackendParam kBackends[] = {
    {"InProcessPlain",
     [](size_t cap) { return std::make_unique<InProcessBackend>(false, cap); }},
    {"InProcessSerialized",
     [](size_t cap) { return std::make_unique<InProcessBackend>(true, cap); }},
    {"Loopback",
     [](size_t cap) {
       return std::make_unique<RemoteBackend<transport::LoopbackTransport>>(cap);
     }},
    {"UnixSocket",
     [](size_t cap) {
       return std::make_unique<RemoteBackend<transport::UnixSocketTransport>>(
           cap, UniqueSocketPath());
     }},
    {"UnixSocketMux",
     [](size_t cap) {
       return std::make_unique<MuxBackend<transport::UnixSocketTransport>>(
           cap, UniqueSocketPath());
     }},
    {"SharedMemory",
     [](size_t cap) {
       return std::make_unique<ShmBackend>(cap, UniqueShmName());
     }},
};

class StoreConformanceTest : public ::testing::TestWithParam<BackendParam> {};

TEST_P(StoreConformanceTest, PushFetchRoundTripsLosslessly) {
  auto backend = GetParam().make(0);
  runtime::InstructionStoreInterface& store = backend->store();
  const sim::ExecutionPlan plan = MarkerPlan(7);
  store.Push(3, 1, plan);
  EXPECT_TRUE(store.Contains(3, 1));
  EXPECT_FALSE(store.Contains(3, 0));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Fetch(3, 1), plan);
  EXPECT_FALSE(store.Contains(3, 1));
  EXPECT_EQ(store.size(), 0u);
}

TEST_P(StoreConformanceTest, KeysAreIndependent) {
  auto backend = GetParam().make(0);
  runtime::InstructionStoreInterface& store = backend->store();
  store.Push(0, 0, MarkerPlan(1));
  store.Push(0, 1, MarkerPlan(2));
  store.Push(1, 0, MarkerPlan(3));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.Fetch(0, 1), MarkerPlan(2));
  EXPECT_EQ(store.Fetch(1, 0), MarkerPlan(3));
  EXPECT_EQ(store.Fetch(0, 0), MarkerPlan(1));
}

TEST_P(StoreConformanceTest, CapacityBackpressuresPush) {
  auto backend = GetParam().make(2);
  runtime::InstructionStoreInterface& store = backend->store();
  store.Push(0, 0, MarkerPlan(0));
  store.Push(1, 0, MarkerPlan(1));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    store.Push(2, 0, MarkerPlan(2));
    third_pushed.store(true);
  });
  // The third Push must block while two plans are resident.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(store.size(), 2u);
  // A Fetch frees a slot and unblocks it.
  EXPECT_EQ(store.Fetch(0, 0), MarkerPlan(0));
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains(2, 0));
}

TEST_P(StoreConformanceTest, ShutdownUnblocksBlockedPushAndDropsItsPlan) {
  auto backend = GetParam().make(1);
  runtime::InstructionStoreInterface& store = backend->store();
  store.Push(0, 0, MarkerPlan(0));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    store.Push(1, 0, MarkerPlan(1));  // blocks at capacity, dropped by Shutdown
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  store.Shutdown();
  producer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(store.Contains(1, 0));
  // Plans published before shutdown stay fetchable.
  EXPECT_TRUE(store.Contains(0, 0));
  EXPECT_EQ(store.Fetch(0, 0), MarkerPlan(0));
}

// Heartbeats are a *capability*, not part of the core contract: backends
// with a channel back to the planner (the wire clients, a sink-equipped
// in-process store, the shm segment's heartbeat slots) deliver the report
// and return true; a backend without one returns false cleanly. Either way,
// calling Heartbeat on any backend must never crash, and the answer must
// agree with supports_heartbeat(). Shm delivery rides the poller thread, so
// the assertions wait for it there instead of firing instantly.
TEST_P(StoreConformanceTest, HeartbeatIsACapabilityNotACrash) {
  auto backend = GetParam().make(0);
  runtime::InstructionStoreInterface& store = backend->store();
  const bool supported = store.supports_heartbeat();
  EXPECT_EQ(store.Heartbeat(/*replica=*/1, /*iteration=*/7, /*wall_ms=*/3.25),
            supported);
  EXPECT_EQ(store.supports_heartbeat(), supported);  // stable answer
  if (supported) {
    ASSERT_NE(backend->heartbeats(), nullptr);
    if (backend->heartbeats_are_async()) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (backend->heartbeats()->total_heartbeats() < 1 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    EXPECT_EQ(backend->heartbeats()->total_heartbeats(), 1);
    EXPECT_EQ(backend->heartbeats()->LastIteration(1), 7);
    const service::IterationHeartbeatStats stats =
        backend->heartbeats()->ForIteration(7);
    EXPECT_EQ(stats.replicas_reported, 1);
    EXPECT_DOUBLE_EQ(stats.max_wall_ms, 3.25);
  } else {
    // No channel: the report is dropped, not recorded and not fatal.
    EXPECT_EQ(backend->heartbeats(), nullptr);
  }
}

// The recovery surface is a capability too: stores that physically hold
// plans (in-process, shm) can enumerate and move them; wire clients cannot —
// recovery always runs where the plans live. Backends that support it must
// honor the Repost outcome contract; backends that don't must refuse
// harmlessly rather than crash.
TEST_P(StoreConformanceTest, RecoverySurfaceIsACapabilityNotACrash) {
  auto backend = GetParam().make(0);
  runtime::InstructionStoreInterface& store = backend->store();
  store.Push(0, 1, MarkerPlan(10));
  store.Push(5, 1, MarkerPlan(11));
  if (store.supports_recovery()) {
    const std::vector<int64_t> pending = store.PendingIterations(1);
    ASSERT_EQ(pending.size(), 2u);
    EXPECT_EQ(pending[0], 0);  // sorted ascending
    EXPECT_EQ(pending[1], 5);
    EXPECT_EQ(store.Repost(5, 1, 7, 2), runtime::RepostOutcome::kMoved);
    EXPECT_EQ(store.Repost(5, 1, 8, 2), runtime::RepostOutcome::kSourceGone);
    store.Push(9, 2, MarkerPlan(12));
    EXPECT_EQ(store.Repost(0, 1, 9, 2),
              runtime::RepostOutcome::kDestinationTaken);
    EXPECT_TRUE(store.Contains(0, 1));  // a refused move leaves the source
    EXPECT_EQ(store.Fetch(7, 2), MarkerPlan(11));  // moved bytes intact
    EXPECT_EQ(store.DropReplica(1), 1u);
    EXPECT_FALSE(store.Contains(0, 1));
    EXPECT_EQ(store.Fetch(9, 2), MarkerPlan(12));
  } else {
    EXPECT_EQ(store.Repost(0, 1, 7, 2), runtime::RepostOutcome::kUnsupported);
    EXPECT_TRUE(store.PendingIterations(1).empty());
    EXPECT_EQ(store.DropReplica(1), 0u);
    EXPECT_EQ(store.Fetch(0, 1), MarkerPlan(10));
    EXPECT_EQ(store.Fetch(5, 1), MarkerPlan(11));
  }
}

// Joining a running fleet is a capability on the same footing as
// heartbeats: where the backend has an announcement path, delivering it
// must surface as the replica turning alive in the monitor — the liveness
// event the MembershipCoordinator keys admission off — and where it has
// none, asking must refuse cleanly, never crash. Shm announcement rides the
// poller thread, so the assertion waits for it there.
TEST_P(StoreConformanceTest, JoinIsACapabilityNotACrash) {
  auto backend = GetParam().make(0);
  const bool supported = backend->supports_join();
  EXPECT_EQ(backend->Join(/*replica=*/9), supported);
  EXPECT_EQ(backend->supports_join(), supported);  // stable answer
  if (supported) {
    ASSERT_NE(backend->heartbeats(), nullptr);
    if (backend->heartbeats_are_async()) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (backend->heartbeats()->Liveness(9) !=
                 service::ReplicaLiveness::kAlive &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    EXPECT_EQ(backend->heartbeats()->Liveness(9),
              service::ReplicaLiveness::kAlive);
    // A join is announcement, not publication: the store itself is untouched.
    EXPECT_EQ(backend->store().size(), 0u);
  }
}

TEST_P(StoreConformanceTest, PushAfterShutdownIsDroppedImmediately) {
  auto backend = GetParam().make(1);
  runtime::InstructionStoreInterface& store = backend->store();
  store.Shutdown();
  store.Push(0, 0, MarkerPlan(0));  // returns immediately, plan dropped
  EXPECT_FALSE(store.Contains(0, 0));
  EXPECT_EQ(store.size(), 0u);
  store.Shutdown();  // idempotent
}

std::string BackendName(const ::testing::TestParamInfo<BackendParam>& info) {
  return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StoreConformanceTest,
                         ::testing::ValuesIn(kBackends), BackendName);

#if DYNAPIPE_DEATH_TESTS
class StoreConformanceDeathTest : public ::testing::TestWithParam<BackendParam> {
};

TEST_P(StoreConformanceDeathTest, DoublePublishDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // For remote backends the abort fires on the server side of the boundary —
  // inside this (forked) process for the in-process servers the tests host.
  EXPECT_DEATH(
      {
        auto backend = GetParam().make(0);
        backend->store().Push(0, 0, MarkerPlan(0));
        backend->store().Push(0, 0, MarkerPlan(0));
      },
      "already published");
}

TEST_P(StoreConformanceDeathTest, FetchBeforePublishDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        auto backend = GetParam().make(0);
        backend->store().Push(1, 0, MarkerPlan(0));
        backend->store().Fetch(1, 1);
      },
      "unpublished");
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StoreConformanceDeathTest,
                         ::testing::ValuesIn(kBackends), BackendName);
#endif

}  // namespace
}  // namespace dynapipe
