// Tests for the caching/pooled allocator simulation (§7 memory fragmentation).
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/caching_allocator.h"

namespace dynapipe::sim {
namespace {

constexpr int64_t kMB = 1ll << 20;

// ---------- CachingAllocator ----------

TEST(CachingAllocatorTest, FirstAllocationHitsDevice) {
  CachingAllocator alloc(100 * kMB);
  const auto h = alloc.Allocate(10 * kMB);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(alloc.stats().device_mallocs, 1);
  EXPECT_GE(alloc.reserved_bytes(), 10 * kMB);
}

TEST(CachingAllocatorTest, FreedBlockIsReusedNotReturned) {
  CachingAllocator alloc(100 * kMB);
  const auto h1 = alloc.Allocate(10 * kMB);
  alloc.Free(*h1);
  EXPECT_GE(alloc.reserved_bytes(), 10 * kMB);  // cached, not freed to device
  const auto h2 = alloc.Allocate(10 * kMB);
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(alloc.stats().device_mallocs, 1);  // cache hit, no new device call
}

TEST(CachingAllocatorTest, SmallerRequestFitsCachedBlock) {
  CachingAllocator alloc(100 * kMB);
  const auto h1 = alloc.Allocate(10 * kMB);
  alloc.Free(*h1);
  const auto h2 = alloc.Allocate(6 * kMB);
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(alloc.stats().device_mallocs, 1);  // block split, still no device call
}

TEST(CachingAllocatorTest, LargerRequestMissesCache) {
  CachingAllocator alloc(100 * kMB);
  const auto h1 = alloc.Allocate(10 * kMB);
  alloc.Free(*h1);
  const auto h2 = alloc.Allocate(20 * kMB);
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(alloc.stats().device_mallocs, 2);  // cached 10MB block cannot serve it
}

TEST(CachingAllocatorTest, FlushUnderPressureThenSucceeds) {
  CachingAllocator alloc(32 * kMB);
  // Fill the device with cached-but-free blocks of the wrong size.
  std::vector<int64_t> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(*alloc.Allocate(7 * kMB));
  }
  for (const auto h : handles) {
    alloc.Free(h);
  }
  // A 20MB request fits no cached block and no headroom -> flush, then succeed.
  const auto big = alloc.Allocate(20 * kMB);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(alloc.stats().cache_flushes, 1);
  EXPECT_GT(alloc.stats().device_frees, 0);
}

TEST(CachingAllocatorTest, TrueOomReported) {
  CachingAllocator alloc(8 * kMB);
  const auto h = alloc.Allocate(16 * kMB);
  EXPECT_FALSE(h.has_value());
  EXPECT_EQ(alloc.stats().failed_allocs, 1);
}

TEST(CachingAllocatorTest, DynamicShapesCauseMoreDeviceCallsThanStatic) {
  // The §7 observation: variable tensor sizes defeat the cache.
  Rng rng(3);
  CachingAllocator dynamic_alloc(512 * kMB);
  CachingAllocator static_alloc(512 * kMB);
  for (int iter = 0; iter < 200; ++iter) {
    const int64_t dyn_size = rng.NextInt(1, 48) * kMB;
    const auto hd = dynamic_alloc.Allocate(dyn_size);
    const auto hs = static_alloc.Allocate(24 * kMB);
    ASSERT_TRUE(hd.has_value());
    ASSERT_TRUE(hs.has_value());
    dynamic_alloc.Free(*hd);
    static_alloc.Free(*hs);
  }
  EXPECT_GT(dynamic_alloc.stats().device_mallocs,
            2 * static_alloc.stats().device_mallocs);
}

// ---------- PooledAllocator ----------

TEST(PooledAllocatorTest, SingleUpfrontReservation) {
  PooledAllocator pool(64 * kMB);
  const auto h1 = pool.Allocate(10 * kMB);
  const auto h2 = pool.Allocate(20 * kMB);
  ASSERT_TRUE(h1.has_value());
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(pool.stats().device_mallocs, 1);  // only the pool reservation
  EXPECT_EQ(pool.stats().cache_flushes, 0);
}

TEST(PooledAllocatorTest, CoalescingPreventsFragmentation) {
  PooledAllocator pool(30 * kMB);
  const auto a = pool.Allocate(10 * kMB);
  const auto b = pool.Allocate(10 * kMB);
  const auto c = pool.Allocate(10 * kMB);
  pool.Free(*a);
  pool.Free(*c);
  pool.Free(*b);  // middle free merges all three spans
  const auto big = pool.Allocate(30 * kMB);
  EXPECT_TRUE(big.has_value());
}

TEST(PooledAllocatorTest, OomWhenPoolExhausted) {
  PooledAllocator pool(16 * kMB);
  const auto a = pool.Allocate(12 * kMB);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(pool.Allocate(8 * kMB).has_value());
  EXPECT_EQ(pool.stats().failed_allocs, 1);
}

TEST(PooledAllocatorTest, RandomTraceNeverTouchesDeviceAgain) {
  Rng rng(9);
  PooledAllocator pool(1024 * kMB);
  std::vector<int64_t> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.NextDouble() < 0.55) {
      const auto h = pool.Allocate(rng.NextInt(1, 8) * kMB);
      if (h.has_value()) {
        live.push_back(*h);
      }
    } else {
      const size_t idx = static_cast<size_t>(rng.NextBelow(live.size()));
      pool.Free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(pool.stats().device_mallocs, 1);
}

// LIFO-ish activation traces: alloc on forward, free on backward — both
// allocators must survive an entire epoch-like trace without failures when sized
// to the high-water mark.
class AllocatorTraceTest : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorTraceTest, BothAllocatorsServeActivationTrace) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 50);
  const int64_t budget = 2048 * kMB;
  CachingAllocator caching(budget);
  PooledAllocator pooled(budget);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<std::pair<int64_t, int64_t>> live;  // (caching, pooled)
    const int depth = static_cast<int>(rng.NextInt(2, 8));
    for (int d = 0; d < depth; ++d) {
      const int64_t size = rng.NextInt(4, 64) * kMB;
      const auto hc = caching.Allocate(size);
      const auto hp = pooled.Allocate(size);
      ASSERT_TRUE(hc.has_value());
      ASSERT_TRUE(hp.has_value());
      live.emplace_back(*hc, *hp);
    }
    while (!live.empty()) {
      caching.Free(live.back().first);
      pooled.Free(live.back().second);
      live.pop_back();
    }
  }
  EXPECT_EQ(caching.stats().failed_allocs, 0);
  EXPECT_EQ(pooled.stats().failed_allocs, 0);
  EXPECT_EQ(pooled.stats().device_mallocs, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorTraceTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace dynapipe::sim
