// Tests for the cross-process observability stack (src/common/metrics.h,
// src/common/trace.h, and the frame-v3 stats channel): lock-free instrument
// correctness under thread hammering (the TSan job runs this suite), snapshot
// deltas, stats-payload codec round trips and hostile-input fuzzing — both
// standalone and against a live store server — a mid-epoch CollectRemoteStats
// pull from a fork()ed executor, ring-buffer wraparound JSON well-formedness,
// and the acceptance run: a fork()ed three-executor mux epoch whose merged
// trace must contain a complete, clock-aligned
// planned → published → fetched → decoded → executed chain for every
// iteration across all four processes.
//
// Ordering note: Tracer enablement is process-global and sticky, so every
// test that enables tracing lives at the BOTTOM of this file (gtest runs
// same-file tests in registration order). Metrics arming is toggled and
// always restored.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/executor/executor.h"
#include "src/runtime/instruction_store.h"
#include "src/service/heartbeat_monitor.h"
#include "src/sim/cluster_sim.h"
#include "src/transport/frame.h"
#include "src/transport/mux.h"
#include "src/transport/store_server.h"
#include "src/transport/transport.h"

namespace dynapipe {
namespace {

std::string UniqueSocketPath(const char* tag) {
  static std::atomic<uint64_t> counter{0};
  return std::string("/tmp/dynapipe-obs-") + tag + "-" +
         std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

sim::ExecutionPlan MarkerPlan(int32_t marker) {
  sim::ExecutionPlan plan;
  plan.num_microbatches = marker;
  sim::DevicePlan dev;
  sim::Instruction instr;
  instr.microbatch = marker;
  instr.shape = {marker, 256, 64};
  dev.instructions.push_back(instr);
  plan.devices.push_back(std::move(dev));
  return plan;
}

// ---------- metrics: lock-free instruments ----------

TEST(MetricsTest, ConcurrentHammerIsLossless) {
  common::MetricsRegistry& reg = common::MetricsRegistry::Instance();
  common::Counter& counter = reg.GetCounter("obs_test_hammer_total");
  common::Gauge& gauge = reg.GetGauge("obs_test_hammer_gauge");
  common::LatencyHistogram& hist = reg.GetHistogram("obs_test_hammer_us");

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20'000;
  const int64_t counter_before = counter.value();
  const int64_t hist_count_before = hist.count();
  const int64_t hist_sum_before = hist.sum_us();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.Add();
        gauge.Set(t);
        gauge.Add(0);
        hist.RecordUs(i % 128);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  EXPECT_EQ(counter.value() - counter_before,
            int64_t{kThreads} * kOpsPerThread);
  EXPECT_EQ(hist.count() - hist_count_before, int64_t{kThreads} * kOpsPerThread);
  int64_t per_thread_sum = 0;
  for (int i = 0; i < kOpsPerThread; ++i) {
    per_thread_sum += i % 128;
  }
  EXPECT_EQ(hist.sum_us() - hist_sum_before, int64_t{kThreads} * per_thread_sum);
  // Buckets account for every sample.
  int64_t bucket_total = 0;
  for (int b = 0; b < common::LatencyHistogram::kNumBuckets; ++b) {
    bucket_total += hist.bucket(b);
  }
  EXPECT_EQ(bucket_total, hist.count());
  // The gauge holds some thread's last write, not garbage.
  EXPECT_GE(gauge.value(), 0);
  EXPECT_LT(gauge.value(), kThreads);
}

TEST(MetricsTest, DisarmedInstrumentsAreInert) {
  common::MetricsRegistry& reg = common::MetricsRegistry::Instance();
  common::Counter& counter = reg.GetCounter("obs_test_disarm_total");
  common::LatencyHistogram& hist = reg.GetHistogram("obs_test_disarm_us");
  common::Gauge& gauge = reg.GetGauge("obs_test_disarm_gauge");

  counter.Add(5);
  gauge.Set(7);
  hist.RecordUs(100);
  common::Metrics::set_enabled(false);
  counter.Add(100);
  gauge.Set(999);
  hist.RecordUs(1'000'000);
  {
    // A timer constructed disarmed observes nothing even if re-armed later.
    const common::LatencyTimer timer;
    common::Metrics::set_enabled(true);
    timer.ObserveInto(hist);
  }
  EXPECT_EQ(counter.value(), 5);
  EXPECT_EQ(gauge.value(), 7);
  EXPECT_EQ(hist.count(), 1);
  EXPECT_EQ(hist.sum_us(), 100);
}

TEST(MetricsTest, SnapshotDeltaMatchesActivity) {
  common::MetricsRegistry& reg = common::MetricsRegistry::Instance();
  common::Counter& counter = reg.GetCounter("obs_test_delta_total");
  common::Gauge& gauge = reg.GetGauge("obs_test_delta_gauge");
  common::LatencyHistogram& hist = reg.GetHistogram("obs_test_delta_us");

  counter.Add(3);
  gauge.Set(10);
  hist.RecordUs(8);
  const common::MetricsSnapshot before = reg.Snapshot();

  counter.Add(4);
  gauge.Set(42);
  hist.RecordUs(16);
  hist.RecordUs(16);
  const common::MetricsSnapshot after = reg.Snapshot();

  const common::MetricsSnapshot delta = after.DeltaSince(before);
  EXPECT_EQ(delta.counter("obs_test_delta_total"), 4);
  // Gauges are levels, not rates: the delta keeps the later level.
  EXPECT_EQ(delta.gauge("obs_test_delta_gauge"), 42);
  const common::MetricsSnapshot::HistogramValue* h =
      delta.histogram("obs_test_delta_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_EQ(h->sum_us, 32);
}

TEST(MetricsTest, PrometheusTextExportsRegisteredInstruments) {
  common::MetricsRegistry& reg = common::MetricsRegistry::Instance();
  reg.GetCounter("obs_test_prom_total").Add(11);
  reg.GetGauge("obs_test_prom_gauge").Set(-3);
  reg.GetHistogram("obs_test_prom_us").RecordUs(5);
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("dynapipe_obs_test_prom_total 11"), std::string::npos);
  EXPECT_NE(text.find("dynapipe_obs_test_prom_gauge -3"), std::string::npos);
  EXPECT_NE(text.find("dynapipe_obs_test_prom_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("dynapipe_obs_test_prom_us_sum"), std::string::npos);
}

// ---------- stats payload codec ----------

common::MetricsSnapshot SyntheticSnapshot() {
  common::MetricsSnapshot snap;
  snap.counters.push_back({"alpha_total", 17});
  snap.counters.push_back({"beta_total", 0});
  snap.gauges.push_back({"depth", -5});
  common::MetricsSnapshot::HistogramValue h;
  h.name = "lat_us";
  h.count = 3;
  h.sum_us = 700;
  h.buckets = {0, 1, 2};
  snap.histograms.push_back(h);
  return snap;
}

TEST(StatsPayloadTest, RoundTrip) {
  const common::MetricsSnapshot snap = SyntheticSnapshot();
  std::string payload;
  transport::AppendStatsPayload(123'456'789, snap, &payload);

  int64_t now_us = 0;
  common::MetricsSnapshot parsed;
  ASSERT_TRUE(transport::TryParseStatsPayload(payload, &now_us, &parsed));
  EXPECT_EQ(now_us, 123'456'789);
  ASSERT_EQ(parsed.counters.size(), 2u);
  EXPECT_EQ(parsed.counter("alpha_total"), 17);
  EXPECT_EQ(parsed.counter("beta_total"), 0);
  EXPECT_EQ(parsed.gauge("depth"), -5);
  const common::MetricsSnapshot::HistogramValue* h = parsed.histogram("lat_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3);
  EXPECT_EQ(h->sum_us, 700);
  EXPECT_EQ(h->buckets, (std::vector<int64_t>{0, 1, 2}));
}

TEST(StatsPayloadTest, TruncationAndBitFlipsNeverCrash) {
  const common::MetricsSnapshot snap = SyntheticSnapshot();
  std::string payload;
  transport::AppendStatsPayload(987'654, snap, &payload);

  // Every proper prefix is either rejected or parses to something sane —
  // never a crash, never an over-allocation.
  for (size_t len = 0; len < payload.size(); ++len) {
    int64_t now_us = 0;
    common::MetricsSnapshot parsed;
    const bool ok = transport::TryParseStatsPayload(
        std::string_view(payload.data(), len), &now_us, &parsed);
    EXPECT_FALSE(ok) << "truncated payload of " << len << " bytes accepted";
  }
  // Trailing garbage is malformed.
  {
    int64_t now_us = 0;
    common::MetricsSnapshot parsed;
    EXPECT_FALSE(
        transport::TryParseStatsPayload(payload + '\0', &now_us, &parsed));
  }
  // Deterministic bit flips: whatever they decode to, the parser must return
  // and any accepted snapshot must stay within hostile-input bounds.
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  for (int trial = 0; trial < 2000; ++trial) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    std::string corrupt = payload;
    corrupt[(rng >> 16) % corrupt.size()] ^=
        static_cast<char>(1u << ((rng >> 40) % 8));
    int64_t now_us = 0;
    common::MetricsSnapshot parsed;
    if (transport::TryParseStatsPayload(corrupt, &now_us, &parsed)) {
      for (const auto& c : parsed.counters) {
        EXPECT_LE(c.name.size(), 256u);
      }
      for (const auto& h : parsed.histograms) {
        EXPECT_LE(h.buckets.size(),
                  static_cast<size_t>(common::LatencyHistogram::kNumBuckets));
      }
    }
  }
}

// ---------- stats channel against a live server ----------

TEST(StatsChannelTest, ServerSurvivesHostileBytesAndStillServesStats) {
  const std::string socket_path = UniqueSocketPath("hostile");
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  transport::UnixSocketTransport transport(socket_path);
  transport::InstructionStoreServer server(&transport, &store);

  // A few hostile connections: raw garbage, a truncated frame header, an
  // oversized attach payload (capability payloads over one byte are
  // malformed), and a kStatsReply nobody asked for. The server must shrug
  // every one of them off.
  {
    std::unique_ptr<transport::Stream> s = transport.Connect();
    ASSERT_NE(s, nullptr);
    const std::string garbage = "\xff\xfe\xfd not a frame at all";
    s->WriteAll(garbage.data(), garbage.size());
  }
  {
    std::unique_ptr<transport::Stream> s = transport.Connect();
    ASSERT_NE(s, nullptr);
    transport::Frame attach;
    attach.type = transport::FrameType::kAttach;
    attach.replica = 0;
    attach.payload = std::string(16, '\x01');  // 16-byte capability mask: bad
    WriteFrame(*s, attach);
  }
  {
    std::unique_ptr<transport::Stream> s = transport.Connect();
    ASSERT_NE(s, nullptr);
    transport::Frame reply;
    reply.type = transport::FrameType::kStatsReply;
    reply.iteration = 424242;  // matches no pending server request
    reply.payload = "definitely not a stats payload";
    WriteFrame(*s, reply);
  }

  // A well-behaved client still gets full service: attach, a stats pull of
  // the server's process-wide snapshot, and plan traffic.
  std::shared_ptr<transport::MuxInstructionStore> client =
      transport::MuxInstructionStore::OverUnixSocket(socket_path);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->connection_ok());
  bool evicted = true;
  ASSERT_TRUE(client->Attach(0, &evicted, /*timeout_ms=*/2000));
  EXPECT_FALSE(evicted);

  store.Push(7, 0, MarkerPlan(3));
  bool lost = false;
  std::optional<sim::ExecutionPlan> plan = client->TryFetch(7, 0, &lost);
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(lost);

  int64_t server_now_us = 0;
  common::MetricsSnapshot snap;
  ASSERT_TRUE(client->TryStats(&server_now_us, &snap, /*timeout_ms=*/2000));
  EXPECT_GT(server_now_us, 0);
  // The fetch above went through the mux backend on the server side.
  EXPECT_GE(snap.counter("store_mux_fetch_total"), 1);

  client->Detach(0);
  client->Shutdown();
  server.Stop();
}

TEST(StatsChannelTest, CollectRemoteStatsPullsForkedExecutorSnapshot) {
  constexpr int kIterations = 2;
  const std::string socket_path = UniqueSocketPath("pull");

  // fork() before any parent-side thread exists (TSan).
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    executor::ExecutorOptions opts;
    opts.attach = socket_path;
    opts.endpoint = executor::AttachEndpoint::kUnixSocketMux;
    opts.replica = 0;
    opts.iterations = kIterations;
    // Slow enough that the executor stays attached while the parent pulls.
    opts.slow_ms = 300.0;
    const executor::ExecutorReport report = executor::RunExecutor(opts);
    ::_exit(report.ok ? 0 : 2);
  }

  service::HeartbeatMonitor monitor;
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  store.set_heartbeat_sink(&monitor);
  transport::UnixSocketTransport transport(socket_path);
  transport::InstructionStoreServer server(&transport, &store);
  for (int i = 0; i < kIterations; ++i) {
    store.Push(i, 0, MarkerPlan(i + 1));
  }

  // The executor needs a moment to attach; retry the pull until it answers.
  std::vector<transport::RemoteReplicaStats> remote;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (remote.empty() && std::chrono::steady_clock::now() < deadline) {
    remote = server.CollectRemoteStats(/*timeout_ms=*/1000);
    if (remote.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_FALSE(remote.empty()) << "no executor answered the stats pull";
  EXPECT_EQ(remote[0].replicas, std::vector<int32_t>{0});
  EXPECT_GT(remote[0].remote_trace_now_us, 0);
  // The executor fetched at least one plan through its mux client by now.
  EXPECT_GE(remote[0].snapshot.counter("store_mux_fetch_total"), 1);

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "executor exited with status " << status;
  server.Stop();
}

// ---------- trace JSON helpers (shared by the tracing tests below) ----------

// Minimal well-formedness scan for the JSON this tracer emits: every quote
// closed (no escapes in our output except none — names are literals), every
// brace/bracket balanced, and nothing outside a string that isn't structural
// or a number. Not a general JSON parser; strict enough to catch a torn
// write or interleaved dump.
bool JsonWellFormed(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) {
          return false;
        }
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string;
}

struct ParsedEvent {
  std::string name;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  int pid = 0;
  int64_t iteration = common::kTraceNoIteration;
  int32_t replica = common::kTraceNoReplica;
};

// Field extraction by string search — sound because this test controls the
// writer and every event object lives on one line.
std::optional<int64_t> FindIntField(const std::string& line,
                                    const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return std::nullopt;
  }
  return std::stoll(line.substr(pos + needle.size()));
}

std::vector<ParsedEvent> ParseTraceLines(const std::string& text) {
  std::vector<ParsedEvent> events;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const size_t name_pos = line.find("\"name\":\"");
    if (name_pos == std::string::npos) {
      continue;  // array brackets
    }
    ParsedEvent e;
    const size_t name_start = name_pos + 8;
    e.name = line.substr(name_start, line.find('"', name_start) - name_start);
    e.ts_us = FindIntField(line, "ts").value_or(0);
    e.dur_us = FindIntField(line, "dur").value_or(0);
    e.pid = static_cast<int>(FindIntField(line, "pid").value_or(0));
    e.iteration =
        FindIntField(line, "iteration").value_or(common::kTraceNoIteration);
    e.replica = static_cast<int32_t>(
        FindIntField(line, "replica").value_or(common::kTraceNoReplica));
    events.push_back(std::move(e));
  }
  return events;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------- tracing (enablement is sticky: these stay last) ----------

TEST(TraceTest, RingWraparoundKeepsRecentEventsAndWellFormedJson) {
  const std::string path =
      "/tmp/dynapipe-obs-wrap-" + std::to_string(::getpid()) + ".json";
  common::Tracer& tracer = common::Tracer::Instance();
  tracer.EnableToPath(path);
  ASSERT_TRUE(common::Tracer::enabled());

  // Overfill this thread's ring; the ring must keep exactly the newest
  // kRingCapacity events, oldest first, and also flush any events earlier
  // tests happened to record on other threads — hence the >= bounds on the
  // full dump and exact bounds on this thread's window.
  constexpr size_t kOverfill = 128;
  const size_t total = common::Tracer::kRingCapacity + kOverfill;
  for (size_t i = 0; i < total; ++i) {
    tracer.RecordComplete("wrap", "test", static_cast<int64_t>(i), 1,
                          static_cast<int64_t>(i));
  }
  std::string jsonl;
  tracer.DumpJsonl(&jsonl);

  const std::vector<ParsedEvent> events = ParseTraceLines(jsonl);
  std::vector<int64_t> wrap_iters;
  for (const ParsedEvent& e : events) {
    EXPECT_TRUE(JsonWellFormed(
        std::string("{") + e.name + "}"));  // name extracted cleanly
    if (e.name == "wrap") {
      wrap_iters.push_back(e.iteration);
    }
  }
  ASSERT_EQ(wrap_iters.size(), common::Tracer::kRingCapacity);
  // Oldest surviving event first, newest last, contiguous.
  EXPECT_EQ(wrap_iters.front(), static_cast<int64_t>(kOverfill));
  EXPECT_EQ(wrap_iters.back(), static_cast<int64_t>(total - 1));
  EXPECT_TRUE(std::is_sorted(wrap_iters.begin(), wrap_iters.end()));

  // The merged file is one well-formed JSON array.
  ASSERT_TRUE(tracer.WriteMergedTrace());
  const std::string merged = ReadFileOrEmpty(path);
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(merged.front(), '[');
  EXPECT_TRUE(JsonWellFormed(merged));
  std::remove(path.c_str());
}

// The acceptance run: three fork()ed mux executors under tracing, one merged
// trace, complete clock-aligned lifecycle chains for every (iteration,
// replica), and — the fork-inheritance regression — each parent-side
// "planned" span appears exactly once, not once per process.
TEST(TraceAcceptanceTest, ForkedMuxEpochProducesCompleteAlignedChains) {
  constexpr int kIterations = 3;
  constexpr int32_t kReplicas = 3;
  const std::string trace_path =
      "/tmp/dynapipe-obs-accept-" + std::to_string(::getpid()) + ".json";
  const std::string socket_path = UniqueSocketPath("accept");

  // Enable BEFORE fork so children inherit the tracer state, like they
  // inherit DYNAPIPE_TRACE in the daemon flow.
  common::Tracer::Instance().EnableToPath(trace_path);

  std::vector<pid_t> children;
  for (int32_t replica = 0; replica < kReplicas; ++replica) {
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      executor::ExecutorOptions opts;
      opts.attach = socket_path;
      opts.endpoint = executor::AttachEndpoint::kUnixSocketMux;
      opts.replica = replica;
      opts.iterations = kIterations;
      opts.slow_ms = 10.0;  // keep executed spans visibly wide
      const executor::ExecutorReport report = executor::RunExecutor(opts);
      const bool wrote = common::Tracer::Instance().WritePartFile();
      ::_exit(report.ok ? (wrote ? 0 : 5) : 2);
    }
    children.push_back(child);
  }

  service::HeartbeatMonitor monitor;
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  store.set_heartbeat_sink(&monitor);
  transport::UnixSocketTransport transport(socket_path);
  transport::InstructionStoreServer server(&transport, &store);
  for (int i = 0; i < kIterations; ++i) {
    // The "planned" span a PlanAheadService iteration would emit; replica −1
    // because one planning pass covers every replica.
    common::TraceSpan planned("planned", "plan", i, /*replica=*/-1);
    for (int32_t replica = 0; replica < kReplicas; ++replica) {
      store.Push(i, replica, MarkerPlan(i * kReplicas + replica + 1));
    }
  }

  for (const pid_t child : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "executor exited with status " << status;
  }
  server.Stop();
  ASSERT_TRUE(common::Tracer::Instance().WriteMergedTrace());

  const std::string merged = ReadFileOrEmpty(trace_path);
  ASSERT_FALSE(merged.empty());
  EXPECT_TRUE(JsonWellFormed(merged));
  const std::vector<ParsedEvent> events = ParseTraceLines(merged);

  // All four processes contributed.
  std::set<int> pids;
  for (const ParsedEvent& e : events) {
    pids.insert(e.pid);
  }
  EXPECT_EQ(pids.size(), static_cast<size_t>(kReplicas + 1));

  // Fork-inheritance regression: children must NOT replay the parent's
  // pre-fork ring. "planned" spans are parent-only, one per iteration.
  const int parent_pid = static_cast<int>(::getpid());
  int planned_count = 0;
  for (const ParsedEvent& e : events) {
    if (e.name == "planned") {
      ++planned_count;
      EXPECT_EQ(e.pid, parent_pid) << "child replayed a parent-side span";
    }
  }
  EXPECT_EQ(planned_count, kIterations);

  // Index the chain per (iteration, replica): first event of each name wins.
  std::map<std::pair<int64_t, int32_t>, std::map<std::string, ParsedEvent>>
      chains;
  std::map<int64_t, ParsedEvent> planned_by_iter;
  for (const ParsedEvent& e : events) {
    if (e.iteration == common::kTraceNoIteration) {
      continue;
    }
    if (e.name == "planned") {
      planned_by_iter.emplace(e.iteration, e);
      continue;
    }
    auto& chain = chains[{e.iteration, e.replica}];
    chain.emplace(e.name, e);
  }

  // Clock alignment across processes is RTT-midpoint on a local socket plus
  // a shared wall anchor; allow a small slack on the one cross-process edge.
  constexpr int64_t kCrossProcessSlackUs = 2000;
  for (int i = 0; i < kIterations; ++i) {
    ASSERT_TRUE(planned_by_iter.count(i)) << "iteration " << i;
    const ParsedEvent& planned = planned_by_iter[i];
    for (int32_t replica = 0; replica < kReplicas; ++replica) {
      SCOPED_TRACE("iteration " + std::to_string(i) + " replica " +
                   std::to_string(replica));
      auto it = chains.find({i, replica});
      ASSERT_NE(it, chains.end());
      const std::map<std::string, ParsedEvent>& chain = it->second;
      for (const char* stage :
           {"published", "fetched", "decoded", "executed", "heartbeat"}) {
        ASSERT_TRUE(chain.count(stage)) << "missing span: " << stage;
      }
      const ParsedEvent& published = chain.at("published");
      const ParsedEvent& fetched = chain.at("fetched");
      const ParsedEvent& decoded = chain.at("decoded");
      const ParsedEvent& executed = chain.at("executed");
      const ParsedEvent& heartbeat = chain.at("heartbeat");
      // Parent-side, same clock: planning starts before its publish.
      EXPECT_EQ(published.pid, parent_pid);
      EXPECT_LE(planned.ts_us, published.ts_us);
      // The one cross-process edge: the child cannot fetch before the
      // parent published (modulo alignment error).
      EXPECT_NE(fetched.pid, parent_pid);
      EXPECT_LE(published.ts_us, fetched.ts_us + kCrossProcessSlackUs);
      // Child-side, same clock, strictly sequential code.
      EXPECT_EQ(decoded.pid, fetched.pid);
      EXPECT_EQ(executed.pid, fetched.pid);
      EXPECT_EQ(heartbeat.pid, fetched.pid);
      EXPECT_LE(fetched.ts_us, decoded.ts_us);
      EXPECT_LE(decoded.ts_us, executed.ts_us);
      EXPECT_LE(executed.ts_us, heartbeat.ts_us);
      // The slowed executor span is visibly wide.
      EXPECT_GE(executed.dur_us, 5'000);
    }
  }
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace dynapipe
