// Unit tests for src/sim: channels (NCCL matching + fusion), memory tracking,
// noise, and the cluster simulator including deadlock and OOM detection.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/sim/channel.h"
#include "src/sim/cluster_sim.h"
#include "src/sim/instruction.h"
#include "src/sim/memory_tracker.h"
#include "src/sim/noise.h"
#include "src/sim/trace.h"

namespace dynapipe::sim {
namespace {

// ---------- Channel ----------

struct TransferLog {
  int64_t send_handle;
  int64_t recv_handle;
  double start;
  double end;
};

class ChannelFixture : public ::testing::Test {
 protected:
  void Match(Channel& ch, double dur = 1.0) {
    ch.TryMatch([dur](int64_t) { return dur; },
                [&](int64_t sh, int64_t rh, double st, double en, int64_t) {
                  log_.push_back({sh, rh, st, en});
                });
  }
  std::vector<TransferLog> log_;
};

CommOp MakeOp(bool is_send, uint64_t tag, double post, int64_t handle) {
  CommOp op;
  op.is_send = is_send;
  op.tag = tag;
  op.bytes = 100;
  op.post_time_ms = post;
  op.handle = handle;
  return op;
}

TEST_F(ChannelFixture, SimplePairMatches) {
  Channel ch(0, 1);
  ch.PostGroup(0, {MakeOp(true, 5, 2.0, 10)});
  ch.PostGroup(1, {MakeOp(false, 5, 3.0, 20)});
  Match(ch);
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].send_handle, 10);
  EXPECT_EQ(log_[0].recv_handle, 20);
  EXPECT_DOUBLE_EQ(log_[0].start, 3.0);  // waits for the later post
  EXPECT_DOUBLE_EQ(log_[0].end, 4.0);
  EXPECT_FALSE(ch.HasPendingOps());
}

TEST_F(ChannelFixture, TransfersSerializePerPair) {
  Channel ch(0, 1);
  ch.PostGroup(0, {MakeOp(true, 1, 0.0, 1)});
  ch.PostGroup(0, {MakeOp(true, 2, 0.0, 2)});
  ch.PostGroup(1, {MakeOp(false, 1, 0.0, 3)});
  ch.PostGroup(1, {MakeOp(false, 2, 0.0, 4)});
  Match(ch, 5.0);
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_DOUBLE_EQ(log_[0].end, 5.0);
  EXPECT_DOUBLE_EQ(log_[1].start, 5.0);  // second waits for channel
  EXPECT_DOUBLE_EQ(log_[1].end, 10.0);
}

TEST_F(ChannelFixture, OutOfOrderTagsStall) {
  Channel ch(0, 1);
  ch.PostGroup(0, {MakeOp(true, 1, 0.0, 1)});
  ch.PostGroup(0, {MakeOp(true, 2, 0.0, 2)});
  ch.PostGroup(1, {MakeOp(false, 2, 0.0, 3)});  // wrong order
  ch.PostGroup(1, {MakeOp(false, 1, 0.0, 4)});
  Match(ch);
  EXPECT_TRUE(log_.empty());  // heads are send(1) vs recv(2): never matches
  EXPECT_TRUE(ch.HasPendingOps());
}

TEST_F(ChannelFixture, BothHeadsSendStall) {
  Channel ch(0, 1);
  ch.PostGroup(0, {MakeOp(true, 1, 0.0, 1)});
  ch.PostGroup(1, {MakeOp(true, 2, 0.0, 2)});
  Match(ch);
  EXPECT_TRUE(log_.empty());
}

TEST_F(ChannelFixture, FusedGroupResolvesCrossingPair) {
  // The 1F1B crossing: dev0 issues {send A1, recv G0} fused; dev1 issues
  // {send G0, recv A1} fused. Without fusion this would be send/send heads.
  Channel ch(0, 1);
  ch.PostGroup(0, {MakeOp(true, 10, 0.0, 1), MakeOp(false, 21, 0.0, 2)});
  ch.PostGroup(1, {MakeOp(true, 21, 0.0, 3), MakeOp(false, 10, 0.0, 4)});
  Match(ch);
  EXPECT_EQ(log_.size(), 2u);
  EXPECT_FALSE(ch.HasPendingOps());
}

TEST_F(ChannelFixture, FusedGroupInteroperatesWithSequentialSide) {
  Channel ch(0, 1);
  ch.PostGroup(0, {MakeOp(true, 1, 0.0, 1), MakeOp(false, 2, 0.0, 2)});
  ch.PostGroup(1, {MakeOp(false, 1, 0.0, 3)});
  ch.PostGroup(1, {MakeOp(true, 2, 0.0, 4)});
  Match(ch);
  EXPECT_EQ(log_.size(), 2u);
  EXPECT_FALSE(ch.HasPendingOps());
}

TEST_F(ChannelFixture, DescribeHeadsMentionsPendingTag) {
  Channel ch(2, 5);
  ch.PostGroup(2, {MakeOp(true, 7, 0.0, 1)});
  const std::string desc = ch.DescribeHeads();
  EXPECT_NE(desc.find("tag=7"), std::string::npos);
  EXPECT_NE(desc.find("send"), std::string::npos);
}

// ---------- MemoryTracker ----------

TEST(MemoryTrackerTest, TracksPeakAndCurrent) {
  MemoryTracker mt(100.0, 0.0);
  mt.Allocate(1, 50.0);
  mt.Allocate(2, 30.0);
  EXPECT_DOUBLE_EQ(mt.current_mb(), 180.0);
  mt.Free(1);
  EXPECT_DOUBLE_EQ(mt.current_mb(), 130.0);
  EXPECT_DOUBLE_EQ(mt.peak_mb(), 180.0);
  EXPECT_EQ(mt.live_allocations(), 1);
}

TEST(MemoryTrackerTest, OomDetected) {
  MemoryTracker mt(0.0, 100.0);
  EXPECT_TRUE(mt.Allocate(1, 60.0));
  EXPECT_FALSE(mt.Allocate(2, 60.0));
  EXPECT_TRUE(mt.oom());
  EXPECT_NE(mt.DescribeOom().find("OOM"), std::string::npos);
}

TEST(MemoryTrackerTest, NoLimitNeverOoms) {
  MemoryTracker mt(0.0, 0.0);
  EXPECT_TRUE(mt.Allocate(1, 1e9));
  EXPECT_FALSE(mt.oom());
}

TEST(MemoryTrackerTest, BaseAboveLimitIsImmediateOom) {
  MemoryTracker mt(200.0, 100.0);
  EXPECT_TRUE(mt.oom());
}

// ---------- NoiseModel ----------

TEST(NoiseModelTest, ZeroSigmaIsIdentity) {
  NoiseModel nm(0.0, 1);
  EXPECT_DOUBLE_EQ(nm.Apply(42.0), 42.0);
}

TEST(NoiseModelTest, MeanApproximatelyPreserved) {
  NoiseModel nm(0.1, 7);
  RunningStats s;
  for (int i = 0; i < 50'000; ++i) {
    s.Add(nm.Apply(100.0));
  }
  EXPECT_NEAR(s.mean(), 100.0, 1.0);
  EXPECT_NEAR(s.stddev(), 10.0, 1.0);
}

TEST(NoiseModelTest, AlwaysPositive) {
  NoiseModel nm(3.0, 9);  // huge sigma
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GT(nm.Apply(1.0), 0.0);
  }
}

// ---------- Instruction helpers ----------

TEST(InstructionTest, Classification) {
  EXPECT_TRUE(IsCompute(InstrType::kForwardPass));
  EXPECT_TRUE(IsCommStart(InstrType::kSendActStart));
  EXPECT_TRUE(IsCommWait(InstrType::kWaitRecvGrad));
  EXPECT_TRUE(IsSend(InstrType::kSendGradStart));
  EXPECT_FALSE(IsSend(InstrType::kRecvActStart));
  EXPECT_EQ(WaitFor(InstrType::kRecvActStart), InstrType::kWaitRecvAct);
}

// ---------- ClusterSim ----------

// Fixed-cost ground truth for hand-computable scenarios.
class FixedGroundTruth : public GroundTruth {
 public:
  FixedGroundTruth(double fwd_ms, double bwd_ms, double act_mb, double xfer_ms)
      : fwd_ms_(fwd_ms), bwd_ms_(bwd_ms), act_mb_(act_mb), xfer_ms_(xfer_ms) {}

  double ComputeMs(int32_t, const Instruction& instr) override {
    return instr.type == InstrType::kForwardPass ? fwd_ms_ : bwd_ms_;
  }
  double ActivationMb(int32_t, const Instruction&) override { return act_mb_; }
  double TransferMs(int32_t, int32_t, int64_t) override { return xfer_ms_; }

 private:
  double fwd_ms_;
  double bwd_ms_;
  double act_mb_;
  double xfer_ms_;
};

Instruction Compute(InstrType type, int32_t mb) {
  Instruction in;
  in.type = type;
  in.microbatch = mb;
  in.shape = {1, 128, 0};
  return in;
}

Instruction Comm(InstrType type, int32_t mb, int32_t peer) {
  Instruction in;
  in.type = type;
  in.microbatch = mb;
  in.peer = peer;
  in.bytes = 1000;
  return in;
}

// Two devices, one micro-batch: F on 0, send act, F+B on 1, send grad, B on 0.
ExecutionPlan TwoStageOneMicrobatchPlan() {
  ExecutionPlan plan;
  plan.num_microbatches = 1;
  plan.devices.resize(2);
  plan.devices[0].device = 0;
  plan.devices[0].instructions = {
      Compute(InstrType::kForwardPass, 0),
      Comm(InstrType::kSendActStart, 0, 1),
      Comm(InstrType::kRecvGradStart, 0, 1),
      Comm(InstrType::kWaitRecvGrad, 0, 1),
      Compute(InstrType::kBackwardPass, 0),
  };
  plan.devices[1].device = 1;
  plan.devices[1].instructions = {
      Comm(InstrType::kRecvActStart, 0, 0),
      Comm(InstrType::kWaitRecvAct, 0, 0),
      Compute(InstrType::kForwardPass, 0),
      Compute(InstrType::kBackwardPass, 0),
      Comm(InstrType::kSendGradStart, 0, 0),
  };
  return plan;
}

TEST(ClusterSimTest, TwoStageMakespanHandComputed) {
  FixedGroundTruth gt(10.0, 20.0, 5.0, 1.0);
  ClusterSim sim(2, &gt);
  const SimResult res = sim.Run(TwoStageOneMicrobatchPlan());
  ASSERT_FALSE(res.deadlocked) << res.diagnostic;
  // dev0: F ends 10; transfer 10->11; dev1 F 11..21, B 21..41; grad 41..42;
  // dev0 B 42..62.
  EXPECT_DOUBLE_EQ(res.makespan_ms, 62.0);
  EXPECT_DOUBLE_EQ(res.devices[0].busy_ms, 30.0);
  EXPECT_DOUBLE_EQ(res.devices[1].busy_ms, 30.0);
}

TEST(ClusterSimTest, PeakMemoryCountsInFlightActivations) {
  FixedGroundTruth gt(10.0, 20.0, 5.0, 1.0);
  ClusterSimOptions opts;
  opts.static_memory_mb = {100.0, 200.0};
  ClusterSim sim(2, &gt, opts);
  const SimResult res = sim.Run(TwoStageOneMicrobatchPlan());
  EXPECT_DOUBLE_EQ(res.devices[0].peak_memory_mb, 105.0);
  EXPECT_DOUBLE_EQ(res.devices[1].peak_memory_mb, 205.0);
}

TEST(ClusterSimTest, OomDetectedAgainstLimit) {
  FixedGroundTruth gt(10.0, 20.0, 50.0, 1.0);
  ClusterSimOptions opts;
  opts.static_memory_mb = {100.0, 100.0};
  opts.memory_limit_mb = 120.0;
  ClusterSim sim(2, &gt, opts);
  const SimResult res = sim.Run(TwoStageOneMicrobatchPlan());
  EXPECT_TRUE(res.oom);
  EXPECT_NE(res.diagnostic.find("OOM"), std::string::npos);
}

TEST(ClusterSimTest, MismatchedCommOrderDeadlocks) {
  // Both devices try to *send* to each other first with unmatched tags.
  ExecutionPlan plan;
  plan.num_microbatches = 2;
  plan.devices.resize(2);
  plan.devices[0].device = 0;
  plan.devices[0].instructions = {
      Compute(InstrType::kForwardPass, 0),
      Comm(InstrType::kSendActStart, 0, 1),
      Comm(InstrType::kSendActStart, 1, 1),  // posted before the recv dev1 wants
      Comm(InstrType::kRecvGradStart, 0, 1),
      Comm(InstrType::kWaitRecvGrad, 0, 1),
      Compute(InstrType::kBackwardPass, 0),
      Compute(InstrType::kForwardPass, 1),
      Compute(InstrType::kBackwardPass, 1),
  };
  plan.devices[1].device = 1;
  plan.devices[1].instructions = {
      Comm(InstrType::kRecvActStart, 0, 0),
      Comm(InstrType::kWaitRecvAct, 0, 0),
      Compute(InstrType::kForwardPass, 0),
      Compute(InstrType::kBackwardPass, 0),
      Comm(InstrType::kSendGradStart, 0, 0),  // dev0's head is SendAct(1): stuck
      Comm(InstrType::kRecvActStart, 1, 0),
      Comm(InstrType::kWaitRecvAct, 1, 0),
      Compute(InstrType::kForwardPass, 1),
      Compute(InstrType::kBackwardPass, 1),
  };
  FixedGroundTruth gt(1.0, 2.0, 0.0, 0.1);
  ClusterSim sim(2, &gt);
  const SimResult res = sim.Run(plan);
  EXPECT_TRUE(res.deadlocked);
  EXPECT_NE(res.diagnostic.find("deadlock"), std::string::npos);
}

TEST(ClusterSimTest, FusedCrossingPairDoesNotDeadlock) {
  // Same crossing as above but dev0 fuses {SendAct(1), RecvGrad(0)} and dev1 fuses
  // {SendGrad(0), RecvAct(1)} — the 1F1B pattern.
  ExecutionPlan plan;
  plan.num_microbatches = 2;
  plan.devices.resize(2);
  auto fused = [](Instruction in, int32_t group) {
    in.fusion_group = group;
    return in;
  };
  plan.devices[0].device = 0;
  plan.devices[0].instructions = {
      Compute(InstrType::kForwardPass, 0),
      Comm(InstrType::kSendActStart, 0, 1),
      Compute(InstrType::kForwardPass, 1),
      fused(Comm(InstrType::kSendActStart, 1, 1), 0),
      fused(Comm(InstrType::kRecvGradStart, 0, 1), 0),
      Comm(InstrType::kWaitRecvGrad, 0, 1),
      Compute(InstrType::kBackwardPass, 0),
      Comm(InstrType::kRecvGradStart, 1, 1),
      Comm(InstrType::kWaitRecvGrad, 1, 1),
      Compute(InstrType::kBackwardPass, 1),
  };
  plan.devices[1].device = 1;
  plan.devices[1].instructions = {
      Comm(InstrType::kRecvActStart, 0, 0),
      Comm(InstrType::kWaitRecvAct, 0, 0),
      Compute(InstrType::kForwardPass, 0),
      Compute(InstrType::kBackwardPass, 0),
      fused(Comm(InstrType::kSendGradStart, 0, 0), 1),
      fused(Comm(InstrType::kRecvActStart, 1, 0), 1),
      Comm(InstrType::kWaitRecvAct, 1, 0),
      Compute(InstrType::kForwardPass, 1),
      Compute(InstrType::kBackwardPass, 1),
      Comm(InstrType::kSendGradStart, 1, 0),
  };
  FixedGroundTruth gt(1.0, 2.0, 0.0, 0.1);
  ClusterSim sim(2, &gt);
  const SimResult res = sim.Run(plan);
  EXPECT_FALSE(res.deadlocked) << res.diagnostic;
  EXPECT_FALSE(res.oom);
  EXPECT_GT(res.makespan_ms, 0.0);
}

TEST(ClusterSimTest, SingleDeviceNoComm) {
  ExecutionPlan plan;
  plan.num_microbatches = 2;
  plan.devices.resize(1);
  plan.devices[0].device = 0;
  plan.devices[0].instructions = {
      Compute(InstrType::kForwardPass, 0), Compute(InstrType::kBackwardPass, 0),
      Compute(InstrType::kForwardPass, 1), Compute(InstrType::kBackwardPass, 1)};
  FixedGroundTruth gt(3.0, 6.0, 1.0, 0.0);
  ClusterSim sim(1, &gt);
  const SimResult res = sim.Run(plan);
  EXPECT_FALSE(res.deadlocked);
  EXPECT_DOUBLE_EQ(res.makespan_ms, 18.0);
  EXPECT_DOUBLE_EQ(res.MeanIdleFraction(), 0.0);
}

TEST(ClusterSimTest, IdleFractionReflectsBubbles) {
  FixedGroundTruth gt(10.0, 20.0, 5.0, 1.0);
  ClusterSim sim(2, &gt);
  const SimResult res = sim.Run(TwoStageOneMicrobatchPlan());
  // Each device busy 30 of 62 ms.
  EXPECT_NEAR(res.MeanIdleFraction(), 1.0 - 30.0 / 62.0, 1e-9);
}

// ---------- Trace recording ----------

TEST(TraceTest, RecordsComputeAndTransferSpans) {
  FixedGroundTruth gt(10.0, 20.0, 5.0, 1.0);
  TraceRecorder trace;
  ClusterSimOptions opts;
  opts.trace = &trace;
  ClusterSim sim(2, &gt, opts);
  const SimResult res = sim.Run(TwoStageOneMicrobatchPlan());
  ASSERT_FALSE(res.deadlocked);
  // 4 compute ops + 2 transfers.
  EXPECT_EQ(trace.spans().size(), 6u);
  bool saw_fwd = false;
  bool saw_transfer = false;
  for (const auto& span : trace.spans()) {
    EXPECT_GE(span.end_ms, span.start_ms);
    saw_fwd = saw_fwd || span.name == "F0";
    saw_transfer = saw_transfer || span.track >= 1000;
  }
  EXPECT_TRUE(saw_fwd);
  EXPECT_TRUE(saw_transfer);
}

TEST(TraceTest, ChromeTraceJsonStructure) {
  TraceRecorder trace;
  trace.AddSpan("F0", 0, 1.0, 2.0);
  trace.AddSpan("act mb0 0->1", 1001, 2.0, 2.5);
  const std::string json = trace.ToChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"F0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);  // ms -> us
  EXPECT_NE(json.find("device 0"), std::string::npos);
  EXPECT_NE(json.find("channel 1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceTest, SpansCoverBusyTimeExactly) {
  FixedGroundTruth gt(10.0, 20.0, 5.0, 1.0);
  TraceRecorder trace;
  ClusterSimOptions opts;
  opts.trace = &trace;
  ClusterSim sim(2, &gt, opts);
  const SimResult res = sim.Run(TwoStageOneMicrobatchPlan());
  double device0_span_ms = 0.0;
  for (const auto& span : trace.spans()) {
    if (span.track == 0) {
      device0_span_ms += span.end_ms - span.start_ms;
    }
  }
  EXPECT_DOUBLE_EQ(device0_span_ms, res.devices[0].busy_ms);
}

}  // namespace
}  // namespace dynapipe::sim
