// Tests for the plan-ahead service subsystem (src/service): the binary plan
// serde (round-trip on every instruction kind), the serialized /
// capacity-bounded instruction store (publish-before-fetch contract,
// double-publish death, backpressure), the cross-iteration plan cache
// (signatures, LRU, quantization, rebinding), and PlanAheadService — whose
// plans must be bit-identical to inline serial planning at any lookahead,
// cache on/off, serde on/off, and whose cache hits must skip partition and
// schedule work entirely.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fault_injection.h"
#include "src/common/thread_pool.h"
#include "src/data/flan_generator.h"
#include "src/data/minibatch_sampler.h"
#include "src/runtime/instruction_store.h"
#include "src/runtime/planner.h"
#include "src/runtime/trainer.h"
#include "src/service/heartbeat_monitor.h"
#include "src/service/membership.h"
#include "src/service/plan_ahead_service.h"
#include "src/service/plan_cache.h"
#include "src/service/plan_serde.h"
#include "src/service/rebalance.h"
#include "src/service/recovery.h"
#include "src/transport/frame.h"
#include "src/transport/mux.h"
#include "src/transport/remote_store.h"
#include "src/transport/shm_store.h"
#include "src/transport/store_server.h"
#include "src/transport/transport.h"

namespace dynapipe {
namespace {

// TSan intercepts the fork/re-exec machinery death tests rely on; the
// sanitizer job covers the concurrency tests instead.
#if defined(__SANITIZE_THREAD__)
#define DYNAPIPE_DEATH_TESTS 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DYNAPIPE_DEATH_TESTS 0
#else
#define DYNAPIPE_DEATH_TESTS 1
#endif
#else
#define DYNAPIPE_DEATH_TESTS 1
#endif

// ---------- plan serde ----------

sim::ExecutionPlan SamplePlan() {
  // Every instruction kind, every recompute mode, sentinel peers/fusion
  // groups, and multi-byte varint values.
  sim::ExecutionPlan plan;
  plan.num_microbatches = 300;  // forces a 2-byte varint
  const model::RecomputeMode modes[] = {model::RecomputeMode::kNone,
                                        model::RecomputeMode::kSelective,
                                        model::RecomputeMode::kFull};
  for (int32_t d = 0; d < 3; ++d) {
    sim::DevicePlan dev;
    dev.device = d;
    for (int32_t t = 0; t < sim::kNumInstrTypes; ++t) {
      sim::Instruction instr;
      instr.type = static_cast<sim::InstrType>(t);
      instr.microbatch = 17 * t + d;
      instr.peer = sim::IsCompute(instr.type) ? -1 : (d + 1) % 3;
      instr.bytes = sim::IsCompute(instr.type) ? 0 : (int64_t{1} << 33) + t;
      instr.shape = {8, 2048, t % 2 == 0 ? 0 : 512};
      instr.recompute = modes[t % 3];
      instr.fusion_group = t % 4 == 0 ? -1 : t;
      dev.instructions.push_back(instr);
    }
    plan.devices.push_back(std::move(dev));
  }
  return plan;
}

TEST(PlanSerdeTest, VarintRoundTrip) {
  for (const uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                           ~0ull, ~0ull >> 1}) {
    std::string buf;
    service::AppendVarint(v, &buf);
    size_t pos = 0;
    EXPECT_EQ(service::ParseVarint(buf, &pos), v);
    EXPECT_EQ(pos, buf.size());
  }
  for (const int64_t v : std::vector<int64_t>{0, -1, 1, -64, 64, INT64_MIN,
                                              INT64_MAX}) {
    std::string buf;
    service::AppendZigzag(v, &buf);
    size_t pos = 0;
    EXPECT_EQ(service::ParseZigzag(buf, &pos), v);
    EXPECT_EQ(pos, buf.size());
  }
  // The -1 sentinels must stay single-byte.
  std::string buf;
  service::AppendZigzag(-1, &buf);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(PlanSerdeTest, RoundTripEveryInstructionKind) {
  const sim::ExecutionPlan plan = SamplePlan();
  const std::string bytes = service::EncodeExecutionPlan(plan);
  EXPECT_GT(bytes.size(), 0u);
  const sim::ExecutionPlan decoded = service::DecodeExecutionPlan(bytes);
  EXPECT_EQ(decoded, plan);
}

TEST(PlanSerdeTest, RoundTripEmptyPlan) {
  sim::ExecutionPlan plan;
  plan.num_microbatches = 0;
  const sim::ExecutionPlan decoded =
      service::DecodeExecutionPlan(service::EncodeExecutionPlan(plan));
  EXPECT_EQ(decoded, plan);
}

TEST(PlanSerdeTest, SingleInstructionHookRoundTrip) {
  const sim::ExecutionPlan plan = SamplePlan();
  for (const auto& dev : plan.devices) {
    for (const auto& instr : dev.instructions) {
      std::string buf;
      service::AppendInstruction(instr, &buf);
      size_t pos = 0;
      EXPECT_EQ(service::ParseInstruction(buf, &pos), instr);
      EXPECT_EQ(pos, buf.size());
    }
  }
}

#if DYNAPIPE_DEATH_TESTS
TEST(PlanSerdeDeathTest, RejectsCorruptBuffers) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string bytes = service::EncodeExecutionPlan(SamplePlan());
  EXPECT_DEATH(service::DecodeExecutionPlan(bytes.substr(0, bytes.size() - 1)),
               "truncated");
  EXPECT_DEATH(service::DecodeExecutionPlan("XXXX" + bytes.substr(4)),
               "bad magic");
  EXPECT_DEATH(service::DecodeExecutionPlan(bytes + std::string(1, '\0')),
               "trailing");
}
#endif

// ---------- instruction store ----------

TEST(InstructionStoreTest, SerializedModeRoundTrips) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  const sim::ExecutionPlan plan = SamplePlan();
  store.Push(3, 1, plan);
  EXPECT_TRUE(store.Contains(3, 1));
  EXPECT_GT(store.serialized_bytes_total(), 0);
  const sim::ExecutionPlan fetched = store.Fetch(3, 1);
  EXPECT_EQ(fetched, plan);
  EXPECT_FALSE(store.Contains(3, 1));
}

#if DYNAPIPE_DEATH_TESTS
TEST(InstructionStoreDeathTest, DoublePublishDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  runtime::InstructionStore store;
  store.Push(0, 0, SamplePlan());
  EXPECT_DEATH(store.Push(0, 0, SamplePlan()), "already published");
}

TEST(InstructionStoreDeathTest, FetchBeforePublishDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  runtime::InstructionStore store;
  store.Push(1, 0, SamplePlan());
  EXPECT_DEATH(store.Fetch(1, 1), "unpublished");
}
#endif

TEST(InstructionStoreTest, CapacityBackpressuresPush) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/false, /*capacity=*/2});
  store.Push(0, 0, {});
  store.Push(1, 0, {});
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    store.Push(2, 0, {});
    third_pushed.store(true);
  });
  // The third Push must block while two plans are resident.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(store.size(), 2u);
  // A Fetch frees a slot and unblocks it.
  store.Fetch(0, 0);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains(2, 0));
}

TEST(InstructionStoreTest, ShutdownUnblocksBlockedPush) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/false, /*capacity=*/1});
  store.Push(0, 0, {});
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    store.Push(1, 0, {});  // blocks at capacity, then dropped by Shutdown
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  store.Shutdown();
  producer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(store.Contains(1, 0));
  // Plans published before shutdown stay fetchable.
  EXPECT_TRUE(store.Contains(0, 0));
}

// ---------- plan cache ----------

std::vector<data::Sample> MakeBatch(std::vector<std::pair<int32_t, int32_t>> lens,
                                    uint64_t id_base) {
  std::vector<data::Sample> out;
  for (size_t i = 0; i < lens.size(); ++i) {
    data::Sample s;
    s.id = id_base + i;
    s.input_len = lens[i].first;
    s.target_len = lens[i].second;
    out.push_back(s);
  }
  return out;
}

TEST(PlanCacheTest, SignatureIgnoresSampleOrderAndIds) {
  const auto a = MakeBatch({{100, 20}, {50, 10}, {100, 20}}, 0);
  const auto b = MakeBatch({{50, 10}, {100, 20}, {100, 20}}, 1000);
  const auto sig_a = service::PlanCache::Signature(a, false, 1, 42);
  const auto sig_b = service::PlanCache::Signature(b, false, 1, 42);
  EXPECT_EQ(sig_a, sig_b);
  // Different lengths, config hash, fold, or quantization all split the key.
  EXPECT_NE(sig_a, service::PlanCache::Signature(
                       MakeBatch({{100, 20}, {50, 10}, {100, 21}}, 0), false, 1, 42));
  EXPECT_NE(sig_a.hash, service::PlanCache::Signature(a, false, 1, 43).hash);
  EXPECT_NE(sig_a.hash, service::PlanCache::Signature(a, true, 1, 42).hash);
  EXPECT_NE(sig_a.hash, service::PlanCache::Signature(a, false, 16, 42).hash);
}

TEST(PlanCacheTest, FoldedSignatureMatchesDecoderOnlyCanonicalization) {
  // For GPT, (90, 10) and (100, 0) are the same planned sample.
  const auto a = MakeBatch({{90, 10}}, 0);
  const auto b = MakeBatch({{100, 0}}, 50);
  EXPECT_EQ(service::PlanCache::Signature(a, true, 1, 7),
            service::PlanCache::Signature(b, true, 1, 7));
  EXPECT_NE(service::PlanCache::Signature(a, false, 1, 7),
            service::PlanCache::Signature(b, false, 1, 7));
}

TEST(PlanCacheTest, QuantizationCollapsesNearbyLengths) {
  const auto a = MakeBatch({{97, 13}, {250, 60}}, 0);
  const auto b = MakeBatch({{128, 16}, {230, 52}}, 10);  // same multiples of 32/64
  EXPECT_EQ(service::PlanCache::Signature(a, false, 32, 1).key,
            service::PlanCache::Signature(b, false, 32, 1).key);
  EXPECT_EQ(service::PlanCache::Quantize(97, 32), 128);
  EXPECT_EQ(service::PlanCache::Quantize(128, 32), 128);
  EXPECT_EQ(service::PlanCache::Quantize(0, 32), 0);  // absent decoder side
  EXPECT_EQ(service::PlanCache::Quantize(5, 1), 5);
}

runtime::IterationPlan TinyFeasiblePlan(const std::vector<data::Sample>& mb) {
  // A structurally minimal feasible plan whose micro-batch holds `mb`.
  runtime::IterationPlan plan;
  plan.feasible = true;
  runtime::ReplicaPlan replica;
  replica.micro_batches.push_back(mb::MakeMicroBatch(mb));
  plan.replicas.push_back(std::move(replica));
  return plan;
}

TEST(PlanCacheTest, LruEvictionAtCapacity) {
  service::PlanCache cache(service::PlanCacheOptions{2});
  const auto b0 = MakeBatch({{10, 0}}, 0);
  const auto b1 = MakeBatch({{20, 0}}, 0);
  const auto b2 = MakeBatch({{30, 0}}, 0);
  const auto s0 = service::PlanCache::Signature(b0, true, 1, 1);
  const auto s1 = service::PlanCache::Signature(b1, true, 1, 1);
  const auto s2 = service::PlanCache::Signature(b2, true, 1, 1);
  cache.Insert(s0, TinyFeasiblePlan(b0));
  cache.Insert(s1, TinyFeasiblePlan(b1));
  // Touch s0 so s1 is least recently used, then insert s2.
  EXPECT_TRUE(cache.Lookup(s0, b0, true, 1).has_value());
  cache.Insert(s2, TinyFeasiblePlan(b2));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(s0, b0, true, 1).has_value());
  EXPECT_TRUE(cache.Lookup(s2, b2, true, 1).has_value());
  EXPECT_FALSE(cache.Lookup(s1, b1, true, 1).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 1);
}

TEST(PlanCacheTest, InfeasiblePlansAreNotCached) {
  service::PlanCache cache;
  const auto b = MakeBatch({{10, 0}}, 0);
  const auto sig = service::PlanCache::Signature(b, true, 1, 1);
  cache.Insert(sig, runtime::IterationPlan{});  // infeasible default
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(sig, b, true, 1).has_value());
}

TEST(PlanCacheTest, RebindSwapsSamplesByLength) {
  const auto original = MakeBatch({{100, 0}, {100, 0}, {40, 0}}, 0);
  const auto replay = MakeBatch({{40, 0}, {100, 0}, {100, 0}}, 500);
  runtime::IterationPlan rebound = service::PlanCache::Rebind(
      TinyFeasiblePlan(original), replay, true, 1);
  int64_t seen = 0;
  for (const auto& s : rebound.replicas[0].micro_batches[0].samples) {
    EXPECT_GE(s.id, 500u);  // every slot now holds a replay sample
    seen += s.total_tokens();
  }
  EXPECT_EQ(seen, 240);
  EXPECT_EQ(rebound.replicas[0].micro_batches[0].shape,
            (model::MicroBatchShape{3, 100, 0}));
}

// ---------- PlanAheadService ----------

cost::ProfileOptions SmallProfile() {
  cost::ProfileOptions opts;
  opts.max_microbatch_size = 32;
  opts.max_seq_len = 4096;
  return opts;
}

runtime::PlannerOptions FastPlanner() {
  runtime::PlannerOptions opts;
  opts.max_tmax_candidates = 48;
  opts.tmax_interval_ms = 0.5;
  opts.max_microbatch_size = 32;
  opts.reorder_clusters = 2;
  opts.dynamic_recompute = false;
  return opts;
}

struct EpochPlans {
  std::vector<runtime::IterationPlan> plans;  // exec plans fetched back in
  std::vector<bool> cache_hits;
  std::vector<double> stalls_ms;
  int64_t real_tokens = 0;
  service::PlanAheadServiceStats stats;
};

class PlanAheadServiceTest : public ::testing::Test {
 protected:
  PlanAheadServiceTest()
      : cm_(cost::PipelineCostModel::Profile(model::ModelConfig::Gpt3_35B(),
                                             model::HardwareSpec{}, {1, 1, 4},
                                             SmallProfile())) {}

  static data::Dataset SmallDataset() {
    data::FlanGeneratorOptions gen;
    gen.num_samples = 300;
    gen.length_cap = 1024;
    return data::GenerateFlanLikeDataset(gen);
  }

  // Runs one 4-iteration epoch through the service and fetches every exec
  // plan back out of the store.
  EpochPlans Collect(service::PlanAheadOptions sopts,
                     const data::Dataset& dataset) {
    runtime::IterationPlanner planner(cm_, FastPlanner());
    data::MiniBatchSamplerOptions so;
    so.global_batch_tokens = 6144;
    so.max_input_len = 1024;
    so.seed = 7;
    data::MiniBatchSampler sampler(dataset, so);
    int32_t submitted = 0;
    auto source = [&]() -> std::vector<data::Sample> {
      if (submitted >= 4 || !sampler.HasNext()) {
        return {};
      }
      ++submitted;
      return sampler.Next();
    };
    sopts.fold_target_lengths = true;  // GPT
    service::PlanAheadService svc(
        [&](const std::vector<data::Sample>& mb) {
          return planner.PlanIteration(mb);
        },
        source, sopts);
    EpochPlans out;
    int64_t expected_iteration = 0;
    while (std::optional<service::ServicedPlan> sp = svc.NextPlan()) {
      EXPECT_EQ(sp->iteration, expected_iteration++);
      EXPECT_TRUE(sp->plan.feasible) << sp->plan.infeasible_reason;
      for (size_t d = 0; d < sp->plan.replicas.size(); ++d) {
        sp->plan.replicas[d].exec_plan =
            svc.FetchExecPlan(sp->iteration, static_cast<int32_t>(d));
        for (const auto& m : sp->plan.replicas[d].micro_batches) {
          out.real_tokens += m.real_tokens();
        }
      }
      out.cache_hits.push_back(sp->plan_cache_hit);
      out.stalls_ms.push_back(sp->stall_ms);
      out.plans.push_back(std::move(sp->plan));
    }
    out.stats = svc.stats();
    return out;
  }

  static void ExpectPlansBitIdentical(const EpochPlans& a, const EpochPlans& b) {
    ASSERT_EQ(a.plans.size(), b.plans.size());
    EXPECT_EQ(a.real_tokens, b.real_tokens);
    for (size_t i = 0; i < a.plans.size(); ++i) {
      const auto& pa = a.plans[i];
      const auto& pb = b.plans[i];
      EXPECT_EQ(pa.recompute, pb.recompute);
      EXPECT_EQ(pa.predicted_iteration_ms, pb.predicted_iteration_ms);
      ASSERT_EQ(pa.replicas.size(), pb.replicas.size());
      for (size_t d = 0; d < pa.replicas.size(); ++d) {
        ASSERT_EQ(pa.replicas[d].micro_batches.size(),
                  pb.replicas[d].micro_batches.size());
        for (size_t k = 0; k < pa.replicas[d].micro_batches.size(); ++k) {
          EXPECT_EQ(pa.replicas[d].micro_batches[k].samples.size(),
                    pb.replicas[d].micro_batches[k].samples.size());
          EXPECT_EQ(pa.replicas[d].micro_batches[k].shape,
                    pb.replicas[d].micro_batches[k].shape);
          EXPECT_EQ(pa.replicas[d].micro_batches[k].predicted_time_ms,
                    pb.replicas[d].micro_batches[k].predicted_time_ms);
        }
        // The serialized instruction stream is shape-only, so it must be
        // byte-for-byte identical across lookahead/cache/serde modes.
        EXPECT_EQ(pa.replicas[d].exec_plan, pb.replicas[d].exec_plan);
      }
    }
  }

  cost::PipelineCostModel cm_;
};

TEST_F(PlanAheadServiceTest, AnyLookaheadCacheSerdeBitIdenticalToInline) {
  const data::Dataset dataset = SmallDataset();
  service::PlanAheadOptions inline_opts;  // lookahead 0, no cache, no serde
  const EpochPlans base = Collect(inline_opts, dataset);
  ASSERT_EQ(base.plans.size(), 4u);

  ThreadPool pool(2);
  for (const int32_t lookahead : {0, 2, 4}) {
    for (const bool cache : {false, true}) {
      for (const bool serde : {false, true}) {
        if (lookahead == 0 && !cache && !serde) {
          continue;  // that is `base`
        }
        service::PlanAheadOptions sopts;
        sopts.lookahead = lookahead;
        sopts.pool = lookahead > 0 ? &pool : nullptr;
        if (cache) {
          sopts.plan_cache = std::make_shared<service::PlanCache>();
          sopts.config_hash = 99;
        }
        sopts.serialize_plans = serde;
        sopts.store_capacity = serde ? 3 : 0;  // exercise the bound too
        const EpochPlans got = Collect(sopts, dataset);
        SCOPED_TRACE("lookahead=" + std::to_string(lookahead) +
                     " cache=" + std::to_string(cache) +
                     " serde=" + std::to_string(serde));
        ExpectPlansBitIdentical(base, got);
      }
    }
  }
}

// The server half of a wire-backed store: storage, transport, server, and the
// remote client the service publishes through. Declaration order is teardown
// order in reverse — the client-holding service must die before the server.
struct WireBackend {
  WireBackend(std::unique_ptr<transport::Transport> t, size_t capacity)
      : store(runtime::InstructionStoreOptions{/*serialized=*/true, capacity}),
        transport(std::move(t)), server(transport.get(), &store),
        client(transport::RemoteInstructionStore::OverTransport(transport.get())) {}

  runtime::InstructionStore store;
  std::unique_ptr<transport::Transport> transport;
  transport::InstructionStoreServer server;
  std::shared_ptr<transport::RemoteInstructionStore> client;
};

TEST_F(PlanAheadServiceTest, TransportBackendsBitIdenticalToInline) {
  // The transport axis of the bit-identity matrix: publishing through a
  // remote store over the loopback or Unix-socket wire (one-shot or
  // multiplexed connections) or through the shared-memory segment must
  // deliver exactly the plans the in-process inline path does, at any
  // lookahead, cache on or off.
  const data::Dataset dataset = SmallDataset();
  const EpochPlans base = Collect({}, dataset);
  ASSERT_EQ(base.plans.size(), 4u);

  ThreadPool pool(2);
  int backend_id = 0;
  enum class Kind { kLoopback, kSocket, kSocketMux, kShm };
  for (const Kind kind :
       {Kind::kLoopback, Kind::kSocket, Kind::kSocketMux, Kind::kShm}) {
    for (const int32_t lookahead : {0, 2}) {
      for (const bool cache : {false, true}) {
        const std::string id = std::to_string(::getpid()) + "-" +
                               std::to_string(backend_id++);
        // The server half (when the backend has one) plus the client the
        // service publishes through, and how to read the server-side byte
        // counter the client volume must match.
        std::unique_ptr<WireBackend> wire;
        std::shared_ptr<runtime::InstructionStoreInterface> client;
        std::function<int64_t()> server_bytes;
        switch (kind) {
          case Kind::kLoopback:
          case Kind::kSocket: {
            std::unique_ptr<transport::Transport> t;
            if (kind == Kind::kSocket) {
              t = std::make_unique<transport::UnixSocketTransport>(
                  "/tmp/dynapipe-svc-" + id + ".sock");
            } else {
              t = std::make_unique<transport::LoopbackTransport>();
            }
            wire = std::make_unique<WireBackend>(std::move(t), /*capacity=*/3);
            client = wire->client;
            server_bytes = [&w = wire->store] {
              return w.serialized_bytes_total();
            };
            break;
          }
          case Kind::kSocketMux: {
            wire = std::make_unique<WireBackend>(
                std::make_unique<transport::UnixSocketTransport>(
                    "/tmp/dynapipe-svc-" + id + ".sock"),
                /*capacity=*/3);
            client = transport::MuxInstructionStore::OverTransport(
                wire->transport.get());
            server_bytes = [&w = wire->store] {
              return w.serialized_bytes_total();
            };
            break;
          }
          case Kind::kShm: {
            auto shm = transport::ShmInstructionStore::Create(
                "/dynapipe-svc-" + id,
                transport::ShmStoreOptions{/*capacity=*/3, /*num_slots=*/64,
                                           /*arena_bytes=*/size_t{1} << 20});
            client = shm;
            server_bytes = [shm] { return shm->serialized_bytes_total(); };
            break;
          }
        }
        service::PlanAheadOptions sopts;
        sopts.lookahead = lookahead;
        sopts.pool = lookahead > 0 ? &pool : nullptr;
        if (cache) {
          sopts.plan_cache = std::make_shared<service::PlanCache>();
          sopts.config_hash = 99;
        }
        sopts.store = client;
        sopts.store_capacity = 3;  // mirrors the backend store's bound
        const EpochPlans got = Collect(sopts, dataset);
        SCOPED_TRACE("backend=" + std::to_string(static_cast<int>(kind)) +
                     " lookahead=" + std::to_string(lookahead) +
                     " cache=" + std::to_string(cache));
        ExpectPlansBitIdentical(base, got);
        // The wire volume is real and matches what the backend store holds
        // accounted (every plan crossed an encode boundary).
        EXPECT_GT(got.stats.published_bytes, 0);
        EXPECT_EQ(got.stats.published_bytes, server_bytes());
        client.reset();  // mux client must close before the server tears down
      }
    }
  }
}

TEST_F(PlanAheadServiceTest, CacheHitSkipsPartitionAndScheduleWork) {
  // The same length multiset twice (fresh sample ids the second time): the
  // second iteration must be served from the plan cache with zero planning
  // phase work.
  std::vector<std::vector<data::Sample>> batches = {
      MakeBatch({{200, 0}, {200, 0}, {150, 0}, {90, 0}, {90, 0}, {64, 0}}, 0),
      MakeBatch({{90, 0}, {200, 0}, {64, 0}, {150, 0}, {90, 0}, {200, 0}}, 100),
  };
  size_t next = 0;
  auto source = [&]() -> std::vector<data::Sample> {
    return next < batches.size() ? batches[next++] : std::vector<data::Sample>{};
  };
  runtime::IterationPlanner planner(cm_, FastPlanner());
  service::PlanAheadOptions sopts;
  sopts.plan_cache = std::make_shared<service::PlanCache>();
  sopts.fold_target_lengths = true;
  service::PlanAheadService svc(
      [&](const std::vector<data::Sample>& mb) {
        return planner.PlanIteration(mb);
      },
      source, sopts);

  std::optional<service::ServicedPlan> first = svc.NextPlan();
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->plan_cache_hit);
  EXPECT_GT(first->plan.stats.partition_ms, 0.0);
  const sim::ExecutionPlan exec0 = svc.FetchExecPlan(0, 0);

  std::optional<service::ServicedPlan> second = svc.NextPlan();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->plan_cache_hit);
  // The hit skipped partitioning and scheduling entirely.
  EXPECT_EQ(second->plan.stats.partition_ms, 0.0);
  EXPECT_EQ(second->plan.stats.schedule_ms, 0.0);
  EXPECT_EQ(second->plan.stats.cost_cache_hits +
                second->plan.stats.cost_cache_misses,
            0);
  EXPECT_EQ(second->plan.stats.recompute_modes_tried, 0);
  // ...but produced the identical plan, rebound to the new samples.
  EXPECT_EQ(second->plan.predicted_iteration_ms,
            first->plan.predicted_iteration_ms);
  EXPECT_EQ(svc.FetchExecPlan(1, 0), exec0);
  int64_t tokens = 0;
  for (const auto& m : second->plan.replicas[0].micro_batches) {
    for (const auto& s : m.samples) {
      EXPECT_GE(s.id, 100u);
      tokens += s.total_tokens();
    }
  }
  EXPECT_EQ(tokens, 794);

  EXPECT_FALSE(svc.NextPlan().has_value());
  const auto stats = svc.stats();
  EXPECT_EQ(stats.plan_cache_hits, 1);
  EXPECT_EQ(stats.plan_cache_misses, 1);
  EXPECT_EQ(stats.plans_delivered, 2);
}

TEST_F(PlanAheadServiceTest, QuantizedPlanningHitsAcrossNearbyBatches) {
  // Lengths differ between the two batches but round up to the same multiples
  // of 64, so with quantization the second batch is a plan-cache hit and both
  // plans use the rounded shapes.
  std::vector<std::vector<data::Sample>> batches = {
      MakeBatch({{190, 0}, {150, 0}, {60, 0}, {60, 0}}, 0),
      MakeBatch({{180, 0}, {130, 0}, {64, 0}, {33, 0}}, 100),
  };
  size_t next = 0;
  auto source = [&]() -> std::vector<data::Sample> {
    return next < batches.size() ? batches[next++] : std::vector<data::Sample>{};
  };
  runtime::IterationPlanner planner(cm_, FastPlanner());
  service::PlanAheadOptions sopts;
  sopts.plan_cache = std::make_shared<service::PlanCache>();
  sopts.fold_target_lengths = true;
  sopts.quantization = 64;
  service::PlanAheadService svc(
      [&](const std::vector<data::Sample>& mb) {
        return planner.PlanIteration(mb);
      },
      source, sopts);

  std::optional<service::ServicedPlan> first = svc.NextPlan();
  std::optional<service::ServicedPlan> second = svc.NextPlan();
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_FALSE(first->plan_cache_hit);
  EXPECT_TRUE(second->plan_cache_hit);
  int64_t tokens = 0;
  for (const auto* sp : {&*first, &*second}) {
    ASSERT_TRUE(sp->plan.feasible);
    for (const auto& m : sp->plan.replicas[0].micro_batches) {
      // Planned shapes are quantized; the samples inside are the raw ones.
      EXPECT_EQ(m.shape.input_len % 64, 0);
      for (const auto& s : m.samples) {
        EXPECT_LE(s.input_len, m.shape.input_len);
        tokens += s.total_tokens();
      }
    }
  }
  EXPECT_EQ(tokens, 460 + 407);
  EXPECT_EQ(first->plan.predicted_iteration_ms,
            second->plan.predicted_iteration_ms);
}

TEST_F(PlanAheadServiceTest, TeardownWithUnfetchedPlansDoesNotHang) {
  // Consume one plan, never fetch its exec plans, and destroy the service
  // with the store full, publishes deferred, and tasks still in flight:
  // Shutdown must drain them all without delivering anything.
  const data::Dataset dataset = SmallDataset();
  runtime::IterationPlanner planner(cm_, FastPlanner());
  data::MiniBatchSamplerOptions so;
  so.global_batch_tokens = 4096;
  so.max_input_len = 1024;
  data::MiniBatchSampler sampler(dataset, so);
  auto source = [&]() -> std::vector<data::Sample> {
    return sampler.HasNext() ? sampler.Next() : std::vector<data::Sample>{};
  };
  ThreadPool pool(2);
  service::PlanAheadOptions sopts;
  sopts.lookahead = 3;
  sopts.pool = &pool;
  sopts.store_capacity = 1;
  {
    service::PlanAheadService svc(
        [&](const std::vector<data::Sample>& mb) {
          return planner.PlanIteration(mb);
        },
        source, sopts);
    std::optional<service::ServicedPlan> sp = svc.NextPlan();
    ASSERT_TRUE(sp.has_value());
  }  // destructor: shutdown, drain in-flight tasks
  SUCCEED();
}

TEST_F(PlanAheadServiceTest, PlanningExceptionSurfacesAsInfeasiblePlan) {
  // A throwing planner must not wedge the pipeline (the slot would otherwise
  // never be planned); it surfaces as an infeasible plan instead.
  for (const int32_t lookahead : {0, 2}) {
    ThreadPool pool(2);
    size_t next = 0;
    auto source = [&]() -> std::vector<data::Sample> {
      return next++ == 0 ? MakeBatch({{64, 0}}, 0) : std::vector<data::Sample>{};
    };
    service::PlanAheadOptions sopts;
    sopts.lookahead = lookahead;
    sopts.pool = lookahead > 0 ? &pool : nullptr;
    service::PlanAheadService svc(
        [](const std::vector<data::Sample>&) -> runtime::IterationPlan {
          throw std::runtime_error("cost model exploded");
        },
        source, sopts);
    std::optional<service::ServicedPlan> sp = svc.NextPlan();
    ASSERT_TRUE(sp.has_value());
    EXPECT_FALSE(sp->plan.feasible);
    EXPECT_NE(sp->plan.infeasible_reason.find("cost model exploded"),
              std::string::npos);
    EXPECT_FALSE(svc.NextPlan().has_value());
  }
}

TEST_F(PlanAheadServiceTest, EmptySourceYieldsNoPlans) {
  runtime::IterationPlanner planner(cm_, FastPlanner());
  service::PlanAheadService svc(
      [&](const std::vector<data::Sample>& mb) {
        return planner.PlanIteration(mb);
      },
      []() { return std::vector<data::Sample>{}; }, {});
  EXPECT_FALSE(svc.NextPlan().has_value());
  EXPECT_FALSE(svc.NextPlan().has_value());  // idempotent after drain
}

// ---------- trainer integration ----------

TEST(TrainerServiceTest, LookaheadCacheSerdeEpochIdenticalToInline) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  runtime::Trainer trainer(config, hw, {1, 1, 4}, SmallProfile());
  data::FlanGeneratorOptions gen;
  gen.num_samples = 300;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);

  runtime::TrainerOptions inline_opts;
  inline_opts.global_batch_tokens = 6144;
  inline_opts.max_input_len = 1024;
  inline_opts.max_iterations = 3;
  const runtime::EpochResult base =
      trainer.RunEpoch(dataset, FastPlanner(), inline_opts);
  ASSERT_TRUE(base.feasible) << base.failure;

  runtime::TrainerOptions piped = inline_opts;
  piped.planning_threads = 2;
  piped.plan_lookahead = 3;
  piped.serialize_plans = true;
  piped.instruction_store_capacity = 4;
  const runtime::EpochResult got = trainer.RunEpoch(dataset, FastPlanner(), piped);
  ASSERT_TRUE(got.feasible) << got.failure;
  ASSERT_EQ(base.iterations, got.iterations);
  EXPECT_EQ(base.real_tokens, got.real_tokens);
  EXPECT_GT(got.serialized_plan_bytes, 0);
  EXPECT_EQ(base.serialized_plan_bytes, 0);
  for (size_t i = 0; i < base.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(base.records[i].predicted_ms, got.records[i].predicted_ms);
    EXPECT_DOUBLE_EQ(base.records[i].measured_ms, got.records[i].measured_ms);
    EXPECT_EQ(base.records[i].num_microbatches, got.records[i].num_microbatches);
  }
}

TEST(TrainerServiceTest, ReplayedEpochHitsPlanCache) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  runtime::Trainer trainer(config, hw, {1, 1, 4}, SmallProfile());
  data::FlanGeneratorOptions gen;
  gen.num_samples = 300;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);

  runtime::TrainerOptions opts;
  opts.global_batch_tokens = 6144;
  opts.max_input_len = 1024;
  opts.max_iterations = 3;
  opts.plan_cache = true;
  const runtime::EpochResult first = trainer.RunEpoch(dataset, FastPlanner(), opts);
  ASSERT_TRUE(first.feasible) << first.failure;
  EXPECT_EQ(first.plan_cache_hits, 0);
  EXPECT_EQ(first.plan_cache_misses, first.iterations);

  // Same sampler seed -> the epoch replays the same mini-batches; every
  // iteration must now come from the plan cache with identical results.
  const runtime::EpochResult second = trainer.RunEpoch(dataset, FastPlanner(), opts);
  ASSERT_TRUE(second.feasible) << second.failure;
  EXPECT_EQ(second.plan_cache_hits, second.iterations);
  EXPECT_EQ(second.plan_cache_misses, 0);
  EXPECT_EQ(first.real_tokens, second.real_tokens);
  ASSERT_EQ(first.records.size(), second.records.size());
  for (size_t i = 0; i < first.records.size(); ++i) {
    EXPECT_TRUE(second.records[i].plan_cache_hit);
    EXPECT_EQ(second.records[i].partition_ms, 0.0);
    EXPECT_EQ(second.records[i].schedule_ms, 0.0);
    EXPECT_DOUBLE_EQ(first.records[i].predicted_ms, second.records[i].predicted_ms);
    EXPECT_DOUBLE_EQ(first.records[i].measured_ms, second.records[i].measured_ms);
  }
  // Cached planning must be far cheaper than the planned epoch.
  EXPECT_LT(second.planning_time_ms, first.planning_time_ms);
}

TEST(TrainerServiceTest, WireBackendsEpochIdenticalAndReplayHitsPlanCache) {
  // Every non-in-process TrainerOptions::plan_store_backend — the one-shot
  // socket client, the multiplexed persistent connection, and the
  // shared-memory segment — routes every plan through its real distribution
  // path and must change nothing about the results: the epoch is
  // bit-identical to the in-process backend, and a replayed epoch still hits
  // the plan cache on every iteration — cached plans republish through the
  // backend like any other.
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  data::FlanGeneratorOptions gen;
  gen.num_samples = 300;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);

  runtime::TrainerOptions opts;
  opts.global_batch_tokens = 6144;
  opts.max_input_len = 1024;
  opts.max_iterations = 3;
  opts.plan_cache = true;

  runtime::Trainer inproc_trainer(config, hw, {1, 1, 4}, SmallProfile());
  const runtime::EpochResult base =
      inproc_trainer.RunEpoch(dataset, FastPlanner(), opts);
  ASSERT_TRUE(base.feasible) << base.failure;

  for (const auto backend :
       {runtime::TrainerOptions::PlanStoreBackend::kUnixSocket,
        runtime::TrainerOptions::PlanStoreBackend::kUnixSocketMux,
        runtime::TrainerOptions::PlanStoreBackend::kSharedMemory}) {
    SCOPED_TRACE("backend=" + std::to_string(static_cast<int>(backend)));
    runtime::TrainerOptions wire = opts;
    wire.plan_store_backend = backend;
    wire.planning_threads = 2;
    wire.plan_lookahead = 3;
    wire.instruction_store_capacity = 4;
    runtime::Trainer wire_trainer(config, hw, {1, 1, 4}, SmallProfile());
    const runtime::EpochResult first =
        wire_trainer.RunEpoch(dataset, FastPlanner(), wire);
    ASSERT_TRUE(first.feasible) << first.failure;
    ASSERT_EQ(first.iterations, base.iterations);
    EXPECT_EQ(first.real_tokens, base.real_tokens);
    EXPECT_GT(first.serialized_plan_bytes, 0);
    EXPECT_EQ(first.plan_cache_misses, first.iterations);
    for (size_t i = 0; i < base.records.size(); ++i) {
      EXPECT_DOUBLE_EQ(base.records[i].predicted_ms,
                       first.records[i].predicted_ms);
      EXPECT_DOUBLE_EQ(base.records[i].measured_ms,
                       first.records[i].measured_ms);
      EXPECT_EQ(base.records[i].num_microbatches,
                first.records[i].num_microbatches);
    }

    // Same sampler seed -> the epoch replays; every iteration must come from
    // the plan cache and still round-trip the backend bit-identically.
    const runtime::EpochResult second =
        wire_trainer.RunEpoch(dataset, FastPlanner(), wire);
    ASSERT_TRUE(second.feasible) << second.failure;
    EXPECT_EQ(second.plan_cache_hits, second.iterations);
    EXPECT_EQ(second.plan_cache_misses, 0);
    EXPECT_GT(second.serialized_plan_bytes, 0);
    ASSERT_EQ(second.records.size(), first.records.size());
    for (size_t i = 0; i < first.records.size(); ++i) {
      EXPECT_TRUE(second.records[i].plan_cache_hit);
      EXPECT_DOUBLE_EQ(first.records[i].predicted_ms,
                       second.records[i].predicted_ms);
      EXPECT_DOUBLE_EQ(first.records[i].measured_ms,
                       second.records[i].measured_ms);
    }
  }
}

TEST(TrainerServiceTest, BaselineEpochStillRunsThroughService) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  runtime::Trainer trainer(config, hw, {1, 1, 4}, SmallProfile());
  data::FlanGeneratorOptions gen;
  gen.num_samples = 200;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  runtime::TrainerOptions opts;
  opts.global_batch_tokens = 8192;
  opts.max_input_len = 1024;
  opts.max_iterations = 2;
  opts.planning_threads = 2;  // plan-ahead applies to baselines too
  opts.plan_cache = true;     // silently ignored: baseline plans cannot rebind
  opts.serialize_plans = true;
  runtime::BaselineOptions base;
  base.batching = runtime::BaselineBatching::kPacking;
  base.microbatch_size = 2;
  const runtime::EpochResult res = trainer.RunEpochBaseline(dataset, base, opts);
  ASSERT_TRUE(res.feasible) << res.failure;
  EXPECT_GT(res.tokens_per_second(), 0.0);
  EXPECT_GT(res.serialized_plan_bytes, 0);
  EXPECT_EQ(res.plan_cache_hits + res.plan_cache_misses, 0);
}

// ---------- heartbeat monitor ----------

TEST(HeartbeatMonitorTest, MedianThresholdFlagsOnlyTheStraggler) {
  service::HeartbeatMonitor monitor(service::HeartbeatMonitorOptions{
      /*straggler_multiple=*/2.0, /*min_straggler_gap_ms=*/1.0});
  // Iteration 0: replicas at 10/11/12 ms — jitter, nobody straggles.
  monitor.OnHeartbeat(0, 0, 10.0);
  monitor.OnHeartbeat(1, 0, 11.0);
  monitor.OnHeartbeat(2, 0, 12.0);
  service::IterationHeartbeatStats stats = monitor.ForIteration(0);
  EXPECT_EQ(stats.replicas_reported, 3);
  EXPECT_DOUBLE_EQ(stats.median_wall_ms, 11.0);
  EXPECT_DOUBLE_EQ(stats.max_wall_ms, 12.0);
  EXPECT_TRUE(stats.stragglers.empty());
  // Iteration 1: replica 1 takes 4x the others' time — flagged, alone.
  monitor.OnHeartbeat(0, 1, 10.0);
  monitor.OnHeartbeat(1, 1, 40.0);
  monitor.OnHeartbeat(2, 1, 9.0);
  stats = monitor.ForIteration(1);
  EXPECT_EQ(stats.stragglers, std::vector<int32_t>{1});
  EXPECT_DOUBLE_EQ(stats.median_wall_ms, 10.0);
  // With only two replicas the relative criterion cannot fire (nothing
  // exceeds twice the pair's mean): by design, not an accident.
  monitor.OnHeartbeat(0, 2, 1.0);
  monitor.OnHeartbeat(1, 2, 100.0);
  EXPECT_TRUE(monitor.ForIteration(2).stragglers.empty());
  // Unreported iterations answer with zeros, not a crash.
  EXPECT_EQ(monitor.ForIteration(99).replicas_reported, 0);
}

TEST(HeartbeatMonitorTest, ProgressFrontiersAndLaggingReplicas) {
  service::HeartbeatMonitor monitor;
  EXPECT_EQ(monitor.LastIteration(0), -1);  // nothing heard yet
  monitor.OnHeartbeat(0, 0, 1.0);
  monitor.OnHeartbeat(1, 0, 1.0);
  monitor.OnHeartbeat(0, 1, 1.0);
  monitor.OnHeartbeat(0, 2, 1.0);
  EXPECT_EQ(monitor.LastIteration(0), 2);
  EXPECT_EQ(monitor.LastIteration(1), 0);
  // Replica 1 is 2 iterations behind the frontier: lagging under max_lag 1,
  // within tolerance under max_lag 2.
  EXPECT_EQ(monitor.LaggingReplicas(1), std::vector<int32_t>{1});
  EXPECT_TRUE(monitor.LaggingReplicas(2).empty());
  // A late heartbeat for an old iteration never regresses the frontier.
  monitor.OnHeartbeat(0, 0, 2.0);
  EXPECT_EQ(monitor.LastIteration(0), 2);
  EXPECT_EQ(monitor.total_heartbeats(), 5);
}

TEST(TrainerServiceTest, IterationRecordsCarryReplicaCompletionStats) {
  // dp = 2: two in-process replicas report their simulated makespans, so
  // every record carries the completion stats surface (median == one of the
  // two, straggler list empty — the two-replica criterion cannot fire).
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  runtime::Trainer trainer(config, hw, {2, 1, 2}, SmallProfile());
  data::FlanGeneratorOptions gen;
  gen.num_samples = 300;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  runtime::TrainerOptions opts;
  opts.global_batch_tokens = 6144;
  opts.max_input_len = 1024;
  opts.max_iterations = 2;
  const runtime::EpochResult res = trainer.RunEpoch(dataset, FastPlanner(), opts);
  ASSERT_TRUE(res.feasible) << res.failure;
  EXPECT_EQ(res.straggler_flags, 0);
  for (const runtime::IterationRecord& record : res.records) {
    EXPECT_EQ(record.heartbeat_replicas, 2);
    EXPECT_GT(record.replica_median_ms, 0.0);
    EXPECT_GE(record.replica_max_ms, record.replica_median_ms);
    EXPECT_LE(record.replica_max_ms, record.measured_ms);
    EXPECT_TRUE(record.straggler_replicas.empty());
  }
}

// ---------- fault injection ----------

TEST(FaultInjectionTest, SpecGrammarParses) {
  common::FaultSpec spec;
  std::string error;
  ASSERT_TRUE(common::ParseFaultSpec("crash@2", &spec, &error)) << error;
  EXPECT_EQ(spec.kind, common::FaultKind::kCrash);
  EXPECT_EQ(spec.at, 2);
  EXPECT_EQ(spec.site, "executor.heartbeat");  // kind's default site
  ASSERT_TRUE(common::ParseFaultSpec("stall:250@1#my.site", &spec, &error))
      << error;
  EXPECT_EQ(spec.kind, common::FaultKind::kStall);
  EXPECT_DOUBLE_EQ(spec.stall_ms, 250.0);
  EXPECT_EQ(spec.at, 1);
  EXPECT_EQ(spec.site, "my.site");
  ASSERT_TRUE(common::ParseFaultSpec("drop@0", &spec, &error)) << error;
  EXPECT_EQ(spec.kind, common::FaultKind::kDropConnection);
  EXPECT_EQ(spec.site, "transport.write");
  ASSERT_TRUE(common::ParseFaultSpec("corrupt@3", &spec, &error)) << error;
  EXPECT_EQ(spec.kind, common::FaultKind::kCorruptFrame);

  EXPECT_FALSE(common::ParseFaultSpec("", &spec, &error));
  EXPECT_FALSE(common::ParseFaultSpec("crash", &spec, &error));  // no @index
  EXPECT_FALSE(common::ParseFaultSpec("stall@1", &spec, &error));  // no :ms
  EXPECT_FALSE(common::ParseFaultSpec("crash:5@1", &spec, &error));
  EXPECT_FALSE(common::ParseFaultSpec("frobnicate@1", &spec, &error));
  EXPECT_FALSE(common::ParseFaultSpec("crash@x", &spec, &error));
  EXPECT_FALSE(common::ParseFaultSpec("crash@-1", &spec, &error));
  EXPECT_FALSE(common::ParseFaultSpec("crash@1#", &spec, &error));
}

TEST(FaultInjectionTest, DisarmedIsInertAndFiringIsOneShot) {
  common::FaultInjector& injector = common::FaultInjector::Instance();
  injector.Disarm();
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(common::FaultPoint("anywhere"), common::FaultKind::kNone);

  // Counted site: the N-th visit to the site fires, exactly once.
  common::FaultSpec spec;
  std::string error;
  ASSERT_TRUE(common::ParseFaultSpec("drop@1#wire", &spec, &error)) << error;
  injector.Arm(spec);
  EXPECT_TRUE(injector.armed());
  EXPECT_EQ(common::FaultPoint("elsewhere"), common::FaultKind::kNone);
  EXPECT_EQ(common::FaultPoint("wire"), common::FaultKind::kNone);  // visit 0
  EXPECT_EQ(common::FaultPoint("wire"),
            common::FaultKind::kDropConnection);  // visit 1: fires
  EXPECT_EQ(common::FaultPoint("wire"), common::FaultKind::kNone);  // latched

  // Indexed site: fires when the caller-supplied index matches, once.
  ASSERT_TRUE(common::ParseFaultSpec("corrupt@5#iter", &spec, &error)) << error;
  injector.Arm(spec);
  EXPECT_EQ(common::FaultPoint("iter", 4), common::FaultKind::kNone);
  EXPECT_EQ(common::FaultPoint("iter", 5), common::FaultKind::kCorruptFrame);
  EXPECT_EQ(common::FaultPoint("iter", 5), common::FaultKind::kNone);
  injector.Disarm();  // singleton: leave nothing armed for other tests
}

// ---------- liveness state machine ----------

TEST(HeartbeatMonitorTest, LivenessDeadlinesSuspectThenDeadAndDeathIsSticky) {
  service::HeartbeatMonitorOptions opts;
  opts.suspect_after_ms = 50.0;
  opts.dead_after_ms = 500.0;
  opts.watchdog = false;  // deterministic: the test ticks PollLiveness itself
  service::HeartbeatMonitor monitor(opts);

  EXPECT_EQ(monitor.Liveness(0), service::ReplicaLiveness::kUnknown);
  monitor.OnReplicaAttached(0);
  EXPECT_EQ(monitor.Liveness(0), service::ReplicaLiveness::kAlive);
  EXPECT_EQ(monitor.PollLiveness(), 0);

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_GE(monitor.PollLiveness(), 1);
  EXPECT_EQ(monitor.Liveness(0), service::ReplicaLiveness::kSuspect);
  EXPECT_FALSE(monitor.IsReplicaDead(0));

  monitor.OnHeartbeat(0, 0, 1.0);  // a suspect that reports revives
  EXPECT_EQ(monitor.Liveness(0), service::ReplicaLiveness::kAlive);

  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_GE(monitor.PollLiveness(), 1);
  EXPECT_EQ(monitor.Liveness(0), service::ReplicaLiveness::kDead);
  EXPECT_TRUE(monitor.IsReplicaDead(0));
  EXPECT_EQ(monitor.DeadReplicas(), std::vector<int32_t>{0});

  // Sticky: a zombie's heartbeat or re-attach never revives it — its plans
  // may already have been re-published.
  monitor.OnHeartbeat(0, 1, 1.0);
  monitor.OnReplicaAttached(0);
  EXPECT_EQ(monitor.Liveness(0), service::ReplicaLiveness::kDead);
}

TEST(HeartbeatMonitorTest, ConnectionDropGraceAndCleanDetach) {
  // Grace 0: an unclean drop is immediate death (the SIGKILL shape).
  {
    service::HeartbeatMonitorOptions opts;
    opts.watchdog = false;
    service::HeartbeatMonitor monitor(opts);
    monitor.OnReplicaAttached(1);
    monitor.OnReplicaDisconnected(1, /*clean=*/false);
    EXPECT_EQ(monitor.Liveness(1), service::ReplicaLiveness::kDead);
    // Clean detach is expected absence: no death, deadlines off.
    monitor.OnReplicaAttached(2);
    monitor.OnReplicaDisconnected(2, /*clean=*/true);
    EXPECT_EQ(monitor.Liveness(2), service::ReplicaLiveness::kDetached);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(monitor.PollLiveness(), 0);
    EXPECT_EQ(monitor.Liveness(2), service::ReplicaLiveness::kDetached);
  }
  // Grace > 0: the drop is suspicion; reconnecting inside the grace
  // survives, failing to blows the deadline.
  {
    service::HeartbeatMonitorOptions opts;
    opts.connection_grace_ms = 50.0;
    opts.watchdog = false;
    service::HeartbeatMonitor monitor(opts);
    monitor.OnReplicaAttached(3);
    monitor.OnReplicaDisconnected(3, /*clean=*/false);
    EXPECT_EQ(monitor.Liveness(3), service::ReplicaLiveness::kSuspect);
    monitor.OnReplicaAttached(3);  // reconnected in time
    EXPECT_EQ(monitor.Liveness(3), service::ReplicaLiveness::kAlive);
    monitor.OnReplicaDisconnected(3, /*clean=*/false);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_GE(monitor.PollLiveness(), 1);
    EXPECT_EQ(monitor.Liveness(3), service::ReplicaLiveness::kDead);
  }
}

TEST(HeartbeatMonitorTest, EventCallbackStreamsEveryTransition) {
  service::HeartbeatMonitorOptions opts;
  opts.watchdog = false;
  service::HeartbeatMonitor monitor(opts);
  std::vector<service::ReplicaEvent> events;  // no watchdog: single-threaded
  monitor.set_event_callback(
      [&](const service::ReplicaEvent& event) { events.push_back(event); });
  monitor.OnReplicaAttached(0);
  monitor.OnReplicaDisconnected(0, /*clean=*/false);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].replica, 0);
  EXPECT_EQ(events[0].from, service::ReplicaLiveness::kUnknown);
  EXPECT_EQ(events[0].to, service::ReplicaLiveness::kAlive);
  EXPECT_EQ(events[1].from, service::ReplicaLiveness::kAlive);
  EXPECT_EQ(events[1].to, service::ReplicaLiveness::kDead);
  EXPECT_FALSE(events[1].reason.empty());
  monitor.set_event_callback(nullptr);
}

// ---------- recovery coordinator ----------

TEST(RecoveryCoordinatorTest, MovesDeadReplicasBacklogToSurvivorsByteStable) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  service::HeartbeatMonitorOptions mopts;
  mopts.watchdog = false;
  service::HeartbeatMonitor monitor(mopts);
  service::RecoveryOptions ropts;
  ropts.replicas = {0, 1, 2};
  ropts.spare_iteration_base = 10;
  service::RecoveryCoordinator recovery(&store, &monitor, ropts);

  // Replica 1 dies with three unfetched plans; 0 and 2 are survivors.
  store.PushBytes(0, 1, "plan-a");
  store.PushBytes(1, 1, "plan-b");
  store.PushBytes(2, 1, "plan-c");
  monitor.OnReplicaAttached(1);
  monitor.OnReplicaDisconnected(1, /*clean=*/false);  // grace 0 -> kDead

  EXPECT_TRUE(store.PendingIterations(1).empty());
  // Round-robin over the survivors, spare numbers per survivor from the
  // base — and the bytes are exactly what the dead replica would have run.
  EXPECT_EQ(store.FetchBytes(10, 0), "plan-a");
  EXPECT_EQ(store.FetchBytes(10, 2), "plan-b");
  EXPECT_EQ(store.FetchBytes(11, 0), "plan-c");

  const service::RecoveryReport report = recovery.report();
  EXPECT_EQ(report.dead_replicas, std::vector<int32_t>{1});
  EXPECT_EQ(report.replanned_iterations, 3);
  EXPECT_EQ(report.dropped_iterations, 0);
  EXPECT_FALSE(report.fail_fast_triggered);
  EXPECT_GE(report.recovery_ms, 0.0);
}

TEST(RecoveryCoordinatorTest, FailFastShutsTheStoreAndMovesNothing) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  service::HeartbeatMonitorOptions mopts;
  mopts.watchdog = false;
  service::HeartbeatMonitor monitor(mopts);
  service::RecoveryOptions ropts;
  ropts.policy = service::FailurePolicy::kFailFast;
  ropts.replicas = {0, 1};
  service::RecoveryCoordinator recovery(&store, &monitor, ropts);

  store.PushBytes(0, 1, "plan-a");
  monitor.OnReplicaAttached(1);
  monitor.OnReplicaDisconnected(1, /*clean=*/false);

  const service::RecoveryReport report = recovery.report();
  EXPECT_TRUE(report.fail_fast_triggered);
  EXPECT_EQ(report.dead_replicas, std::vector<int32_t>{1});
  EXPECT_EQ(report.replanned_iterations, 0);
  // Nothing moved, and the store is shut down: the parked publisher's next
  // Push is dropped instead of blocking forever.
  EXPECT_EQ(store.PendingIterations(1), std::vector<int64_t>{0});
  EXPECT_FALSE(store.PushBytes(5, 0, "plan-b"));
}

TEST(RecoveryCoordinatorTest, DropsBacklogWhenNoSurvivorRemains) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  service::HeartbeatMonitorOptions mopts;
  mopts.watchdog = false;
  service::HeartbeatMonitor monitor(mopts);
  service::RecoveryOptions ropts;
  ropts.replicas = {1};
  service::RecoveryCoordinator recovery(&store, &monitor, ropts);

  store.PushBytes(0, 1, "plan-a");
  store.PushBytes(1, 1, "plan-b");
  monitor.OnReplicaAttached(1);
  monitor.OnReplicaDisconnected(1, /*clean=*/false);

  EXPECT_TRUE(store.PendingIterations(1).empty());
  const service::RecoveryReport report = recovery.report();
  EXPECT_EQ(report.replanned_iterations, 0);
  EXPECT_EQ(report.dropped_iterations, 2);
}

// A spare destination key that turns out taken is burned and skipped, not
// retried: before the SpareKeyAllocator, a collision wedged the survivor's
// counter on the taken key and every later repost to it was silently lost.
TEST(RecoveryCoordinatorTest, TakenSpareKeyAdvancesInsteadOfWedging) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  service::HeartbeatMonitorOptions mopts;
  mopts.watchdog = false;
  service::HeartbeatMonitor monitor(mopts);
  service::RecoveryOptions ropts;
  ropts.replicas = {0, 1};
  ropts.spare_iteration_base = 10;
  service::RecoveryCoordinator recovery(&store, &monitor, ropts);

  // Someone already published at the survivor's first spare key.
  store.PushBytes(10, 0, "squatter");
  store.PushBytes(0, 1, "plan-a");
  store.PushBytes(1, 1, "plan-b");
  monitor.OnReplicaAttached(1);
  monitor.OnReplicaDisconnected(1, /*clean=*/false);

  // Key 10 was tried, found taken, burned; both plans landed on later keys.
  EXPECT_EQ(recovery.report().replanned_iterations, 2);
  EXPECT_EQ(store.FetchBytes(10, 0), "squatter");
  EXPECT_EQ(store.FetchBytes(11, 0), "plan-a");
  EXPECT_EQ(store.FetchBytes(12, 0), "plan-b");
}

// The double-death case: replica 2 inherits part of replica 1's backlog,
// then dies itself before fetching it. The shared per-survivor counters must
// keep advancing across deaths — reissuing an already-used spare key would
// collide with the first recovery's repost and drop the plan.
TEST(RecoveryCoordinatorTest, SpareKeysSurviveASecondDeath) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  service::HeartbeatMonitorOptions mopts;
  mopts.watchdog = false;
  service::HeartbeatMonitor monitor(mopts);
  service::RecoveryOptions ropts;
  ropts.replicas = {0, 1, 2};
  ropts.spare_iteration_base = 10;
  service::RecoveryCoordinator recovery(&store, &monitor, ropts);

  store.PushBytes(0, 1, "plan-a");
  store.PushBytes(1, 1, "plan-b");
  monitor.OnReplicaAttached(1);
  monitor.OnReplicaAttached(2);
  monitor.OnReplicaDisconnected(1, /*clean=*/false);
  // First death: round-robin lands plan-a at (10, 0) and plan-b at (10, 2).
  // Neither survivor fetches anything before the second death.
  monitor.OnReplicaDisconnected(2, /*clean=*/false);

  const service::RecoveryReport report = recovery.report();
  EXPECT_EQ(report.dead_replicas, (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(report.replanned_iterations, 3);  // 2 from death one, 1 moved on
  EXPECT_EQ(report.dropped_iterations, 0);
  EXPECT_TRUE(store.PendingIterations(2).empty());
  // (10, 0) still holds the first repost; the inherited plan-b moved to the
  // last survivor's *next* spare key, not back onto a used one.
  EXPECT_EQ(store.FetchBytes(10, 0), "plan-a");
  EXPECT_EQ(store.FetchBytes(11, 0), "plan-b");
}

// ---------- heartbeat monitor: expected-replica gating ----------

// Straggler math over a partial report set is meaningless: with one replica
// still running, the reported walls skew the median and the missing replica
// can't be compared at all. With expected_replicas set, flagging waits for
// the full set.
TEST(HeartbeatMonitorTest, PartialReportSetsNeverFlagStragglers) {
  service::HeartbeatMonitorOptions opts;
  opts.straggler_multiple = 2.0;
  opts.min_straggler_gap_ms = 1.0;
  opts.expected_replicas = 3;
  opts.watchdog = false;
  service::HeartbeatMonitor monitor(opts);
  monitor.OnHeartbeat(0, 0, 10.0);
  monitor.OnHeartbeat(1, 0, 500.0);  // looks like a straggler, but 2/3
  service::IterationHeartbeatStats stats = monitor.ForIteration(0);
  EXPECT_EQ(stats.replicas_reported, 2);
  EXPECT_EQ(stats.replicas_expected, 3);
  EXPECT_TRUE(stats.stragglers.empty());
  // The last replica completes the set; now the flag lands.
  monitor.OnHeartbeat(2, 0, 9.0);
  stats = monitor.ForIteration(0);
  EXPECT_EQ(stats.replicas_reported, 3);
  EXPECT_EQ(stats.stragglers, std::vector<int32_t>{1});
}

// The straggler callback is the rebalancer's trigger: it must fire exactly
// once per iteration, on the heartbeat that completes the report set, and a
// duplicate beat must not re-fire it.
TEST(HeartbeatMonitorTest, StragglerCallbackFiresOncePerCompleteIteration) {
  service::HeartbeatMonitorOptions opts;
  opts.straggler_multiple = 2.0;
  opts.min_straggler_gap_ms = 1.0;
  opts.expected_replicas = 2;
  opts.watchdog = false;
  service::HeartbeatMonitor monitor(opts);
  std::vector<service::IterationHeartbeatStats> fired;  // single-threaded
  monitor.set_straggler_callback(
      [&](const service::IterationHeartbeatStats& stats) {
        fired.push_back(stats);
      });
  monitor.OnHeartbeat(0, 7, 10.0);
  EXPECT_TRUE(fired.empty());  // 1/2: incomplete
  monitor.OnHeartbeat(1, 7, 11.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].iteration, 7);
  EXPECT_EQ(fired[0].replicas_reported, 2);
  monitor.OnHeartbeat(1, 7, 12.0);  // duplicate: overwrites, no re-fire
  EXPECT_EQ(fired.size(), 1u);
  monitor.set_straggler_callback(nullptr);
  monitor.OnHeartbeat(0, 8, 1.0);
  monitor.OnHeartbeat(1, 8, 1.0);
  EXPECT_EQ(fired.size(), 1u);  // unhooked
}

// ---------- heartbeat monitor: dynamic expected replicas ----------

// A drain shrinks the fleet mid-epoch. Iterations stuck at N-1 of N reports
// become complete the moment the expectation drops — the callback must fire
// for them retroactively, exactly once, and a late beat from the departed
// replica must not re-fire it.
TEST(HeartbeatMonitorTest, ShrinkingExpectedRetroactivelyCompletesReportSets) {
  service::HeartbeatMonitorOptions opts;
  opts.straggler_multiple = 2.0;
  opts.min_straggler_gap_ms = 1.0;
  opts.expected_replicas = 3;
  opts.watchdog = false;
  service::HeartbeatMonitor monitor(opts);
  std::vector<service::IterationHeartbeatStats> fired;  // single-threaded
  monitor.set_straggler_callback(
      [&](const service::IterationHeartbeatStats& stats) {
        fired.push_back(stats);
      });
  monitor.OnHeartbeat(0, 0, 10.0);
  monitor.OnHeartbeat(1, 0, 11.0);
  EXPECT_TRUE(fired.empty());  // 2/3: the third never comes — it drained
  monitor.set_expected_replicas(2);
  ASSERT_EQ(fired.size(), 1u);  // retroactively complete
  EXPECT_EQ(fired[0].iteration, 0);
  EXPECT_EQ(fired[0].replicas_reported, 2);
  EXPECT_EQ(fired[0].replicas_expected, 2);
  // A straggling beat from the drained replica lands in the stats but must
  // not fire the already-fired iteration again.
  monitor.OnHeartbeat(2, 0, 99.0);
  EXPECT_EQ(fired.size(), 1u);
  // Later iterations complete at the new size.
  monitor.OnHeartbeat(0, 1, 10.0);
  monitor.OnHeartbeat(1, 1, 10.0);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1].iteration, 1);
}

// A join grows the fleet. Iterations that already completed (and fired) at
// the old size stay fired — growth must neither re-fire nor "un-complete"
// them — and new iterations gate on the larger set.
TEST(HeartbeatMonitorTest, GrowingExpectedNeverDoubleFiresACompletedIteration) {
  service::HeartbeatMonitorOptions opts;
  opts.straggler_multiple = 2.0;
  opts.min_straggler_gap_ms = 1.0;
  opts.expected_replicas = 2;
  opts.watchdog = false;
  service::HeartbeatMonitor monitor(opts);
  std::vector<service::IterationHeartbeatStats> fired;  // single-threaded
  monitor.set_straggler_callback(
      [&](const service::IterationHeartbeatStats& stats) {
        fired.push_back(stats);
      });
  monitor.OnHeartbeat(0, 0, 10.0);
  monitor.OnHeartbeat(1, 0, 10.0);
  ASSERT_EQ(fired.size(), 1u);  // complete at the old size
  monitor.set_expected_replicas(3);  // a joiner was admitted
  EXPECT_EQ(fired.size(), 1u);
  monitor.OnHeartbeat(2, 0, 10.0);  // joiner's beat on the fired iteration
  EXPECT_EQ(fired.size(), 1u);
  // The next iteration needs all three.
  monitor.OnHeartbeat(0, 1, 10.0);
  monitor.OnHeartbeat(1, 1, 10.0);
  EXPECT_EQ(fired.size(), 1u);  // 2/3 now incomplete
  monitor.OnHeartbeat(2, 1, 10.0);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1].iteration, 1);
  EXPECT_EQ(fired[1].replicas_expected, 3);
}

// ---------- rebalance coordinator ----------

namespace {
// Feeds one complete iteration's heartbeats: `slow` reports 40 ms, everyone
// else 10 ms — over the 2*median+1 bar, so `slow` is flagged (or nobody,
// with slow < 0).
void FeedIteration(service::HeartbeatMonitor& monitor, int64_t iteration,
                   int32_t slow) {
  for (int32_t replica = 0; replica < 3; ++replica) {
    monitor.OnHeartbeat(replica, iteration, replica == slow ? 40.0 : 10.0);
  }
}

service::HeartbeatMonitorOptions RebalanceMonitorOptions() {
  service::HeartbeatMonitorOptions opts;
  opts.straggler_multiple = 2.0;
  opts.min_straggler_gap_ms = 1.0;
  opts.expected_replicas = 3;
  opts.watchdog = false;
  return opts;
}
}  // namespace

TEST(RebalanceCoordinatorTest, PersistentStragglerShedsTailOfItsBacklog) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  service::HeartbeatMonitor monitor(RebalanceMonitorOptions());
  service::RebalanceOptions bopts;
  bopts.consecutive_flags = 2;
  bopts.max_moves_per_event = 2;
  bopts.hysteresis_iterations = 4;
  bopts.replicas = {0, 1, 2};
  bopts.spare_iteration_base = 10;
  service::RebalanceCoordinator rebalance(&store, &monitor, bopts);

  for (int64_t i = 0; i < 6; ++i) {
    store.PushBytes(i, 1, "p" + std::to_string(i));
  }
  FeedIteration(monitor, 0, /*slow=*/1);  // streak 1: under threshold
  EXPECT_EQ(rebalance.report().events, 0);
  EXPECT_EQ(store.PendingIterations(1).size(), 6u);
  FeedIteration(monitor, 1, /*slow=*/1);  // streak 2: trigger
  const service::RebalanceReport report = rebalance.report();
  EXPECT_EQ(report.events, 1);
  EXPECT_EQ(report.moved_iterations, 2);
  EXPECT_EQ(report.rebalanced_replicas, std::vector<int32_t>{1});
  // The *tail* moved (the slow replica keeps the work it reaches next),
  // round-robin over the fast replicas at their spare keys.
  EXPECT_EQ(store.PendingIterations(1),
            (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(store.FetchBytes(10, 0), "p5");
  EXPECT_EQ(store.FetchBytes(10, 2), "p4");
}

TEST(RebalanceCoordinatorTest, HysteresisAndStreakResetPreventThrash) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  service::HeartbeatMonitor monitor(RebalanceMonitorOptions());
  service::RebalanceOptions bopts;
  bopts.consecutive_flags = 2;
  bopts.max_moves_per_event = 2;
  bopts.hysteresis_iterations = 4;
  bopts.replicas = {0, 1, 2};
  bopts.spare_iteration_base = 10;
  service::RebalanceCoordinator rebalance(&store, &monitor, bopts);

  for (int64_t i = 0; i < 8; ++i) {
    store.PushBytes(i, 1, "p" + std::to_string(i));
  }
  FeedIteration(monitor, 0, 1);
  FeedIteration(monitor, 1, 1);  // event at iteration 1; cooldown until 5
  ASSERT_EQ(rebalance.report().events, 1);
  // Still slow every iteration — but a fresh streak has to build AND the
  // cooldown has to pass before anything moves again.
  FeedIteration(monitor, 2, 1);
  FeedIteration(monitor, 3, 1);
  FeedIteration(monitor, 4, 1);
  EXPECT_EQ(rebalance.report().events, 1);  // iterations < 5: immune
  FeedIteration(monitor, 5, 1);  // past cooldown, streak long since rebuilt
  EXPECT_EQ(rebalance.report().events, 2);
  EXPECT_EQ(rebalance.report().moved_iterations, 4);
  // An intervening fast iteration resets the streak: no third event until
  // two more consecutive flags accumulate.
  FeedIteration(monitor, 9, /*slow=*/-1);  // everyone keeps pace
  FeedIteration(monitor, 10, 1);
  EXPECT_EQ(rebalance.report().events, 2);  // streak 1 of 2
}

TEST(RebalanceCoordinatorTest, ImmovableAndDeadReplicasPinTheirBacklog) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  service::HeartbeatMonitor monitor(RebalanceMonitorOptions());
  service::RebalanceOptions bopts;
  bopts.consecutive_flags = 1;
  bopts.replicas = {0, 1, 2};
  bopts.immovable_replicas = {1};  // the trainer's own replica, say
  bopts.spare_iteration_base = 10;
  service::RebalanceCoordinator rebalance(&store, &monitor, bopts);

  store.PushBytes(0, 1, "pinned");
  FeedIteration(monitor, 0, /*slow=*/1);
  // Flagged, streak met — but immovable means its backlog stays put.
  EXPECT_EQ(rebalance.report().events, 0);
  EXPECT_EQ(store.PendingIterations(1), std::vector<int64_t>{0});

  // A replica the monitor has declared dead is recovery's problem: the
  // rebalancer must not race it for the backlog.
  monitor.OnReplicaAttached(2);
  monitor.OnReplicaDisconnected(2, /*clean=*/false);  // grace 0 -> kDead
  store.PushBytes(0, 2, "dead-backlog");
  FeedIteration(monitor, 1, /*slow=*/2);  // late beats from the dead replica
  EXPECT_EQ(rebalance.report().events, 0);
  EXPECT_EQ(store.PendingIterations(2), std::vector<int64_t>{0});
}

TEST(RebalanceCoordinatorTest, NoFastDestinationMeansNoMove) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  service::HeartbeatMonitor monitor(RebalanceMonitorOptions());
  service::RebalanceOptions bopts;
  bopts.consecutive_flags = 1;
  bopts.replicas = {1};  // nobody else configured to take work
  bopts.spare_iteration_base = 10;
  service::RebalanceCoordinator rebalance(&store, &monitor, bopts);

  store.PushBytes(0, 1, "stuck");
  FeedIteration(monitor, 0, /*slow=*/1);
  EXPECT_EQ(rebalance.report().events, 0);
  EXPECT_EQ(store.PendingIterations(1), std::vector<int64_t>{0});
}

// Recovery and rebalance sharing one SpareKeyAllocator can never hand the
// same destination key to both — the collision that would otherwise silently
// drop whichever plan lost the race.
TEST(RebalanceCoordinatorTest, SharedAllocatorKeepsRecoveryAndRebalanceApart) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  service::HeartbeatMonitor monitor(RebalanceMonitorOptions());
  auto spare_keys = std::make_shared<service::SpareKeyAllocator>(10);
  service::RecoveryOptions ropts;
  ropts.replicas = {0, 1, 2};
  ropts.spare_keys = spare_keys;
  service::RecoveryCoordinator recovery(&store, &monitor, ropts);
  service::RebalanceOptions bopts;
  bopts.consecutive_flags = 1;
  bopts.max_moves_per_event = 1;
  bopts.replicas = {0, 1, 2};
  bopts.spare_keys = spare_keys;
  service::RebalanceCoordinator rebalance(&store, &monitor, bopts);

  // Rebalance moves one plan to a fast replica's first spare key...
  store.PushBytes(0, 1, "slow-tail");
  FeedIteration(monitor, 0, /*slow=*/1);
  ASSERT_EQ(rebalance.report().moved_iterations, 1);
  // ...then that fast replica's peer dies and recovery round-robins the
  // backlog over the survivors: its keys continue after rebalance's on the
  // fast replica, but the straggler's repost reuses the key the steal
  // vacated — the shared allocator reissues released keys first, keeping
  // the still-polling straggler's key sequence gap-free.
  store.PushBytes(1, 2, "dead-a");
  store.PushBytes(2, 2, "dead-b");
  monitor.OnReplicaAttached(2);
  monitor.OnReplicaDisconnected(2, /*clean=*/false);
  EXPECT_EQ(recovery.report().replanned_iterations, 2);
  EXPECT_EQ(store.FetchBytes(10, 0), "slow-tail");
  EXPECT_EQ(store.FetchBytes(11, 0), "dead-a");
  EXPECT_EQ(store.FetchBytes(0, 1), "dead-b");
}

// ---------- membership coordinator ----------

// A replica outside the configured fleet turning alive is a joiner: the
// coordinator admits it, grows the expected fleet, and steals a fair share
// of the deepest member's *tail* backlog to the joiner's spare keys — where
// an open-ended executor polls first.
TEST(MembershipCoordinatorTest, JoinerStealsAFairShareOfTheDeepestTail) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  service::HeartbeatMonitor monitor(RebalanceMonitorOptions());
  auto spare_keys = std::make_shared<service::SpareKeyAllocator>(10);
  service::RecoveryOptions ropts;
  ropts.replicas = {0, 1, 2};
  ropts.spare_keys = spare_keys;
  service::RecoveryCoordinator recovery(&store, &monitor, ropts);
  service::MembershipOptions mopts;
  mopts.initial_replicas = {0, 1, 2};
  mopts.spare_keys = spare_keys;
  service::MembershipCoordinator membership(&store, &monitor, &recovery,
                                            mopts);

  for (int64_t i = 0; i < 8; ++i) {
    store.PushBytes(i, 1, "p" + std::to_string(i));
  }
  store.PushBytes(0, 0, "shallow");
  EXPECT_EQ(membership.ActiveMembers(), (std::vector<int32_t>{0, 1, 2}));

  // A bare shm announce or a kAttach carrying kAttachCapJoin both surface
  // here: an unknown replica turning alive.
  monitor.OnReplicaAttached(3);
  const service::MembershipReport report = membership.report();
  EXPECT_EQ(report.joined, std::vector<int32_t>{3});
  EXPECT_EQ(report.join_stolen_iterations, 2);  // floor(8 / new fleet of 4)
  EXPECT_EQ(monitor.expected_replicas(), 4);
  EXPECT_EQ(membership.ActiveMembers(), (std::vector<int32_t>{0, 1, 2, 3}));
  // Tail first, at the joiner's spare keys; the donor keeps its head and
  // replica 0's shallow backlog was never the donor.
  EXPECT_EQ(store.FetchBytes(10, 3), "p7");
  EXPECT_EQ(store.FetchBytes(11, 3), "p6");
  EXPECT_EQ(store.PendingIterations(1),
            (std::vector<int64_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(store.PendingIterations(0), std::vector<int64_t>{0});
}

// A drain request fences the leaver, hands its unfetched backlog round-robin
// to the surviving members at spare keys, shrinks the expected fleet *after*
// the handoff, and acknowledges through the backend hook. A duplicate
// request must not repost or ack twice.
TEST(MembershipCoordinatorTest, DrainHandsOffBacklogAndAcknowledgesOnce) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  service::HeartbeatMonitor monitor(RebalanceMonitorOptions());
  auto spare_keys = std::make_shared<service::SpareKeyAllocator>(10);
  service::RecoveryOptions ropts;
  ropts.replicas = {0, 1, 2};
  ropts.spare_keys = spare_keys;
  service::RecoveryCoordinator recovery(&store, &monitor, ropts);
  service::MembershipOptions mopts;
  mopts.initial_replicas = {0, 1, 2};
  mopts.spare_keys = spare_keys;
  std::vector<int32_t> acked;  // event chain is synchronous here
  mopts.drain_ack = [&](int32_t replica) { acked.push_back(replica); };
  service::MembershipCoordinator membership(&store, &monitor, &recovery,
                                            mopts);

  monitor.OnReplicaAttached(0);
  monitor.OnReplicaAttached(1);
  monitor.OnReplicaAttached(2);
  store.PushBytes(0, 2, "d0");
  store.PushBytes(1, 2, "d1");
  store.PushBytes(2, 2, "d2");

  monitor.OnReplicaDrainRequested(2);
  const service::MembershipReport report = membership.report();
  EXPECT_EQ(report.drained, std::vector<int32_t>{2});
  EXPECT_EQ(report.drain_reposted_iterations, 3);
  EXPECT_EQ(acked, std::vector<int32_t>{2});
  EXPECT_EQ(monitor.expected_replicas(), 2);
  EXPECT_TRUE(store.IsReplicaFenced(2));
  EXPECT_TRUE(store.PendingIterations(2).empty());
  EXPECT_EQ(membership.ActiveMembers(), (std::vector<int32_t>{0, 1}));
  // Round-robin over the survivors at their spare keys.
  EXPECT_EQ(store.FetchBytes(10, 0), "d0");
  EXPECT_EQ(store.FetchBytes(10, 1), "d1");
  EXPECT_EQ(store.FetchBytes(11, 0), "d2");

  monitor.OnReplicaDrainRequested(2);  // duplicate
  EXPECT_EQ(membership.report().drained, std::vector<int32_t>{2});
  EXPECT_EQ(membership.report().drain_reposted_iterations, 3);
  EXPECT_EQ(acked.size(), 1u);
}

// The store-level fence is what closes the drain-vs-rebalance race: a mover
// that snapshotted the leaver as a destination before the fence landed gets
// kDestinationTaken back — key burned, plan intact — and its key chain
// advances to an open peer. Unfencing restores the replica as a destination.
TEST(InstructionStoreTest, FencedReplicaRefusesIncomingReposts) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  store.PushBytes(0, 0, "race");
  store.FenceReplica(1);
  EXPECT_EQ(store.Repost(0, 0, 10, 1),
            runtime::RepostOutcome::kDestinationTaken);
  // The plan neither moved nor vanished.
  EXPECT_EQ(store.PendingIterations(0), std::vector<int64_t>{0});
  // The mover retries elsewhere and the plan lands whole.
  EXPECT_EQ(store.Repost(0, 0, 10, 2), runtime::RepostOutcome::kMoved);
  EXPECT_EQ(store.FetchBytes(10, 2), "race");
  store.UnfenceReplica(1);
  store.PushBytes(1, 0, "after");
  EXPECT_EQ(store.Repost(1, 0, 11, 1), runtime::RepostOutcome::kMoved);
  EXPECT_EQ(store.FetchBytes(11, 1), "after");
}

// Drain -> clean detach -> re-join, the full elastic round trip: the detach
// retires the drainer without shrinking the expectation a second time, the
// fence persists while it is gone, and a re-join of the same id lifts the
// fence and re-admits it like any other joiner.
TEST(MembershipCoordinatorTest, DetachRetiresADrainerAndRejoinLiftsTheFence) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  service::HeartbeatMonitor monitor(RebalanceMonitorOptions());
  auto spare_keys = std::make_shared<service::SpareKeyAllocator>(10);
  service::RecoveryOptions ropts;
  ropts.replicas = {0, 1, 2};
  ropts.spare_keys = spare_keys;
  service::RecoveryCoordinator recovery(&store, &monitor, ropts);
  service::MembershipOptions mopts;
  mopts.initial_replicas = {0, 1, 2};
  mopts.spare_keys = spare_keys;
  service::MembershipCoordinator membership(&store, &monitor, &recovery,
                                            mopts);

  monitor.OnReplicaAttached(0);
  monitor.OnReplicaAttached(1);
  monitor.OnReplicaAttached(2);
  monitor.OnReplicaDrainRequested(2);
  ASSERT_EQ(monitor.expected_replicas(), 2);
  ASSERT_TRUE(store.IsReplicaFenced(2));

  monitor.OnReplicaDisconnected(2, /*clean=*/true);
  EXPECT_EQ(monitor.expected_replicas(), 2);  // shrank at the drain, not here
  EXPECT_EQ(membership.ActiveMembers(), (std::vector<int32_t>{0, 1}));
  EXPECT_TRUE(store.IsReplicaFenced(2));  // no destination while gone
  EXPECT_TRUE(monitor.DeadReplicas().empty());  // a goodbye, not a death

  monitor.OnReplicaAttached(2);  // comes back: a joiner like any other
  EXPECT_FALSE(store.IsReplicaFenced(2));
  EXPECT_EQ(monitor.expected_replicas(), 3);
  EXPECT_EQ(membership.ActiveMembers(), (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(membership.report().joined, std::vector<int32_t>{2});
}

// ---------- trainer: degraded epochs ----------

// Attaches `replica` to the trainer's store server over a raw socket and
// drops the connection uncleanly (no kDetach) — a vanished executor as seen
// from the wire. The trainer binds the server inside RunEpoch, so the whole
// exchange retries until an ack lands (a half-done attempt that lost the
// startup race just reconnects).
void AttachThenVanish(const std::string& socket_path, int32_t replica) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    std::unique_ptr<transport::Stream> conn =
        transport::ConnectUnixSocket(socket_path, /*timeout_ms=*/100);
    if (conn == nullptr) {
      continue;
    }
    transport::Frame attach;
    attach.type = transport::FrameType::kAttach;
    attach.replica = replica;
    if (!WriteFrame(*conn, attach)) {
      continue;
    }
    const std::optional<transport::Frame> reply = ReadFrame(*conn);
    if (!reply.has_value() || reply->type != transport::FrameType::kOk) {
      continue;
    }
    conn->Close();  // unclean: attached, never detached
    return;
  }
  ADD_FAILURE() << "intruder never managed to attach to " << socket_path;
}

TEST(TrainerServiceTest, EpochContinuesDegradedWhenAttachedReplicaVanishes) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  runtime::Trainer trainer(config, hw, {1, 1, 4}, SmallProfile());
  data::FlanGeneratorOptions gen;
  gen.num_samples = 300;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  runtime::TrainerOptions opts;
  opts.global_batch_tokens = 6144;
  opts.max_input_len = 1024;
  opts.max_iterations = 6;
  opts.serialize_plans = true;
  opts.plan_store_backend =
      runtime::TrainerOptions::PlanStoreBackend::kUnixSocketMux;
  opts.plan_store_socket_path = "/tmp/dynapipe-st-degraded-" +
                                std::to_string(::getpid()) + ".sock";
  // The fleet barrier holds the epoch until the intruder has attached, so
  // the attach-then-vanish always lands inside the epoch, never in the
  // teardown window. Default policy (degrade-and-continue), grace 0: the
  // drop is death.
  opts.liveness_await_replicas = 1;
  std::thread intruder(AttachThenVanish, opts.plan_store_socket_path, 7);
  const runtime::EpochResult res = trainer.RunEpoch(dataset, FastPlanner(), opts);
  intruder.join();
  ASSERT_TRUE(res.feasible) << res.failure;
  EXPECT_EQ(res.iterations, 6);
  EXPECT_EQ(res.dead_replicas, std::vector<int32_t>{7});
  // The intruder published nothing, so death moves no plans.
  EXPECT_EQ(res.replanned_iterations, 0);
  ASSERT_FALSE(res.records.empty());
  EXPECT_EQ(res.records.back().dead_replicas, std::vector<int32_t>{7});
}

TEST(TrainerServiceTest, FailFastPolicyAbortsTheEpochOnReplicaDeath) {
  const auto config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  runtime::Trainer trainer(config, hw, {1, 1, 4}, SmallProfile());
  data::FlanGeneratorOptions gen;
  gen.num_samples = 300;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  runtime::TrainerOptions opts;
  opts.global_batch_tokens = 6144;
  opts.max_input_len = 1024;
  opts.max_iterations = 8;
  opts.serialize_plans = true;
  opts.plan_store_backend =
      runtime::TrainerOptions::PlanStoreBackend::kUnixSocket;
  opts.plan_store_socket_path = "/tmp/dynapipe-st-failfast-" +
                                std::to_string(::getpid()) + ".sock";
  opts.liveness_await_replicas = 1;  // barrier: death lands inside the epoch
  opts.failure_policy = service::FailurePolicy::kFailFast;
  std::thread intruder(AttachThenVanish, opts.plan_store_socket_path, 7);
  const runtime::EpochResult res = trainer.RunEpoch(dataset, FastPlanner(), opts);
  intruder.join();
  EXPECT_FALSE(res.feasible);
  EXPECT_NE(res.failure.find("declared dead"), std::string::npos)
      << res.failure;
  EXPECT_EQ(res.dead_replicas, std::vector<int32_t>{7});
}

}  // namespace
}  // namespace dynapipe
