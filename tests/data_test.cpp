// Unit tests for src/data: dataset accounting, synthetic FLAN generator, sampler.
#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/data/dataset.h"
#include "src/data/flan_generator.h"
#include "src/data/minibatch_sampler.h"

namespace dynapipe::data {
namespace {

Dataset SmallDataset() {
  std::vector<Sample> samples;
  for (int i = 0; i < 10; ++i) {
    Sample s;
    s.id = static_cast<uint64_t>(i);
    s.input_len = 10 * (i + 1);
    s.target_len = i + 1;
    samples.push_back(s);
  }
  return Dataset({}, samples);
}

TEST(DatasetTest, TotalTokens) {
  const Dataset d = SmallDataset();
  // inputs 10+20+...+100 = 550; targets 1+...+10 = 55.
  EXPECT_EQ(d.total_tokens(), 605);
}

TEST(DatasetTest, TruncatedTokens) {
  const Dataset d = SmallDataset();
  // Inputs clamp at 50: 10+20+30+40+50*6 = 400; targets clamp at 5: 1+2+3+4+5*6=40.
  EXPECT_EQ(d.total_tokens_truncated(50, 5), 440);
}

TEST(DatasetTest, MaxLens) {
  const Dataset d = SmallDataset();
  EXPECT_EQ(d.max_input_len(), 100);
  EXPECT_EQ(d.max_target_len(), 10);
  EXPECT_DOUBLE_EQ(d.mean_input_len(), 55.0);
}

TEST(TruncateTest, ClampsOnlyWhenLimitPositive) {
  Sample s;
  s.input_len = 100;
  s.target_len = 50;
  const Sample t = Truncate(s, 80, 0);
  EXPECT_EQ(t.input_len, 80);
  EXPECT_EQ(t.target_len, 50);
}

// ---------- Flan generator ----------

TEST(FlanGeneratorTest, GeneratesRequestedCount) {
  FlanGeneratorOptions opts;
  opts.num_samples = 5000;
  const Dataset d = GenerateFlanLikeDataset(opts);
  EXPECT_EQ(d.size(), 5000u);
  EXPECT_EQ(static_cast<int32_t>(d.tasks().size()), opts.num_tasks);
}

TEST(FlanGeneratorTest, DeterministicInSeed) {
  FlanGeneratorOptions opts;
  opts.num_samples = 500;
  const Dataset a = GenerateFlanLikeDataset(opts);
  const Dataset b = GenerateFlanLikeDataset(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.samples()[i].input_len, b.samples()[i].input_len);
    EXPECT_EQ(a.samples()[i].target_len, b.samples()[i].target_len);
    EXPECT_EQ(a.samples()[i].task_id, b.samples()[i].task_id);
  }
}

TEST(FlanGeneratorTest, DifferentSeedsDiffer) {
  FlanGeneratorOptions a_opts;
  a_opts.num_samples = 500;
  FlanGeneratorOptions b_opts = a_opts;
  b_opts.seed = a_opts.seed + 1;
  const Dataset a = GenerateFlanLikeDataset(a_opts);
  const Dataset b = GenerateFlanLikeDataset(b_opts);
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    same += a.samples()[i].input_len == b.samples()[i].input_len ? 1 : 0;
  }
  EXPECT_LT(same, 100);
}

TEST(FlanGeneratorTest, LengthsWithinCap) {
  FlanGeneratorOptions opts;
  opts.num_samples = 20'000;
  opts.length_cap = 4096;
  const Dataset d = GenerateFlanLikeDataset(opts);
  for (const auto& s : d.samples()) {
    EXPECT_GE(s.input_len, 1);
    EXPECT_LE(s.input_len, 4096);
    EXPECT_GE(s.target_len, 1);
    EXPECT_LE(s.target_len, 4096);
  }
}

TEST(FlanGeneratorTest, DistributionIsHeavyTailed) {
  // Fig. 1b's property: the bulk is short but a visible tail extends far beyond the
  // median (orders of magnitude, log-scale histogram).
  FlanGeneratorOptions opts;
  opts.num_samples = 50'000;
  const Dataset d = GenerateFlanLikeDataset(opts);
  std::vector<double> lens;
  lens.reserve(d.size());
  for (const auto& s : d.samples()) {
    lens.push_back(s.input_len);
  }
  const double p50 = dynapipe::Percentile(lens, 50.0);
  const double p99 = dynapipe::Percentile(lens, 99.0);
  const double pmax = dynapipe::Percentile(lens, 100.0);
  EXPECT_LT(p50, 400.0);      // bulk is short
  EXPECT_GT(p99, 5.0 * p50);  // heavy tail
  EXPECT_GT(pmax, 4000.0);    // very long sequences exist
}

TEST(FlanGeneratorTest, HighLengthVariance) {
  // The coefficient of variation of input lengths should be large (>1), the
  // defining property motivating dynamic micro-batching.
  FlanGeneratorOptions opts;
  opts.num_samples = 50'000;
  const Dataset d = GenerateFlanLikeDataset(opts);
  dynapipe::RunningStats stats;
  for (const auto& s : d.samples()) {
    stats.Add(s.input_len);
  }
  EXPECT_GT(stats.stddev() / stats.mean(), 1.0);
}

TEST(FlanGeneratorTest, TargetsShorterThanInputsOnAverage) {
  FlanGeneratorOptions opts;
  opts.num_samples = 20'000;
  const Dataset d = GenerateFlanLikeDataset(opts);
  double input_total = 0.0;
  double target_total = 0.0;
  for (const auto& s : d.samples()) {
    input_total += s.input_len;
    target_total += s.target_len;
  }
  EXPECT_LT(target_total, input_total / 2.0);
}

TEST(FlanGeneratorTest, AllTasksProduceSamples) {
  FlanGeneratorOptions opts;
  opts.num_samples = 50'000;
  opts.num_tasks = 16;
  const Dataset d = GenerateFlanLikeDataset(opts);
  std::set<int32_t> tasks;
  for (const auto& s : d.samples()) {
    tasks.insert(s.task_id);
  }
  EXPECT_EQ(tasks.size(), 16u);
}

TEST(MakeFlanLikeTaskMixtureTest, FamiliesSpanShortToVeryLong) {
  const std::vector<TaskSpec> tasks = MakeFlanLikeTaskMixture(48, 1);
  EXPECT_EQ(tasks.size(), 48u);
  double min_median = 1e18;
  double max_median = 0.0;
  for (const auto& t : tasks) {
    const double median = std::exp(t.input_log_mean);
    min_median = std::min(min_median, median);
    max_median = std::max(max_median, median);
  }
  EXPECT_LT(min_median, 100.0);
  EXPECT_GT(max_median, 3000.0);
}

// ---------- MiniBatchSampler ----------

TEST(MiniBatchSamplerTest, BatchesRespectTokenBudget) {
  FlanGeneratorOptions gen;
  gen.num_samples = 2000;
  const Dataset d = GenerateFlanLikeDataset(gen);
  MiniBatchSamplerOptions opts;
  opts.global_batch_tokens = 8192;
  MiniBatchSampler sampler(d, opts);
  while (sampler.HasNext()) {
    const auto batch = sampler.Next();
    ASSERT_FALSE(batch.empty());
    int64_t tokens = 0;
    for (const auto& s : batch) {
      tokens += s.total_tokens();
    }
    // A batch may exceed the budget only via its final sample (or a single
    // oversized sample).
    if (batch.size() > 1) {
      int64_t without_last = tokens - batch.back().total_tokens();
      EXPECT_LE(without_last, opts.global_batch_tokens);
    }
  }
}

TEST(MiniBatchSamplerTest, EpochCoversEverySampleExactlyOnce) {
  FlanGeneratorOptions gen;
  gen.num_samples = 777;
  const Dataset d = GenerateFlanLikeDataset(gen);
  MiniBatchSamplerOptions opts;
  opts.global_batch_tokens = 4096;
  MiniBatchSampler sampler(d, opts);
  std::set<uint64_t> seen;
  int64_t count = 0;
  while (sampler.HasNext()) {
    for (const auto& s : sampler.Next()) {
      seen.insert(s.id);
      ++count;
    }
  }
  EXPECT_EQ(count, 777);
  EXPECT_EQ(seen.size(), 777u);
}

TEST(MiniBatchSamplerTest, TruncationApplied) {
  FlanGeneratorOptions gen;
  gen.num_samples = 500;
  const Dataset d = GenerateFlanLikeDataset(gen);
  MiniBatchSamplerOptions opts;
  opts.global_batch_tokens = 4096;
  opts.max_input_len = 512;
  opts.max_target_len = 128;
  MiniBatchSampler sampler(d, opts);
  while (sampler.HasNext()) {
    for (const auto& s : sampler.Next()) {
      EXPECT_LE(s.input_len, 512);
      EXPECT_LE(s.target_len, 128);
    }
  }
}

TEST(MiniBatchSamplerTest, DeterministicInSeed) {
  FlanGeneratorOptions gen;
  gen.num_samples = 300;
  const Dataset d = GenerateFlanLikeDataset(gen);
  MiniBatchSamplerOptions opts;
  opts.global_batch_tokens = 2048;
  MiniBatchSampler a(d, opts);
  MiniBatchSampler b(d, opts);
  while (a.HasNext()) {
    ASSERT_TRUE(b.HasNext());
    const auto ba = a.Next();
    const auto bb = b.Next();
    ASSERT_EQ(ba.size(), bb.size());
    for (size_t i = 0; i < ba.size(); ++i) {
      EXPECT_EQ(ba[i].id, bb[i].id);
    }
  }
  EXPECT_FALSE(b.HasNext());
}

TEST(MiniBatchSamplerTest, ResetRestartsEpoch) {
  FlanGeneratorOptions gen;
  gen.num_samples = 100;
  const Dataset d = GenerateFlanLikeDataset(gen);
  MiniBatchSamplerOptions opts;
  opts.global_batch_tokens = 1024;
  MiniBatchSampler sampler(d, opts);
  const auto first = sampler.Next();
  sampler.Reset();
  const auto again = sampler.Next();
  ASSERT_EQ(first.size(), again.size());
  EXPECT_EQ(first.front().id, again.front().id);
}

TEST(MiniBatchSamplerTest, CountBatchesMatchesIteration) {
  FlanGeneratorOptions gen;
  gen.num_samples = 400;
  const Dataset d = GenerateFlanLikeDataset(gen);
  MiniBatchSamplerOptions opts;
  opts.global_batch_tokens = 4096;
  MiniBatchSampler sampler(d, opts);
  const int64_t expected = sampler.CountBatchesInEpoch();
  int64_t n = 0;
  while (sampler.HasNext()) {
    sampler.Next();
    ++n;
  }
  EXPECT_EQ(n, expected);
}

}  // namespace
}  // namespace dynapipe::data
