// Elastic-membership churn suite (the tentpole acceptance gate).
//
// Two layers:
//
//   1. A deterministic forked acceptance test: three shm executors start an
//      epoch; mid-epoch a fourth joins by bare announce and one of the three
//      drains out through its heartbeat slot's drain word. The joiner must
//      be admitted and seeded with stolen backlog, the drainer must be
//      fenced, handed off, acknowledged, and detached clean — and every
//      published plan must execute exactly once, byte-identical.
//
//   2. A seeded chaos harness: five deterministic std::mt19937 schedules,
//      each picking who drains (and when), who joins (and when), and whether
//      a third replica crashes or stalls mid-epoch. Whatever the schedule,
//      the invariants hold: the store drains to zero, the heartbeat total is
//      exact (published minus exactly one for a crash — the worst-timed
//      death loses the executed-but-unreported plan's beat, nothing else),
//      nobody innocent is declared dead, and the drain and join are
//      recorded. The exact heartbeat count is also the spare-key-collision
//      probe: recovery, rebalance, and membership share one allocator, and a
//      collision would either lose a plan (count short) or double-run one
//      (count over).
//
// Everything is shm-native: liveness, the drain word, and the handoffs all
// live in the segment; no socket exists anywhere in this file. fork()
// happens before any parent-side thread (TSan), and children communicate
// verdicts through exit codes — gtest macros do not work in a fork()ed
// child.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fault_injection.h"
#include "src/executor/executor.h"
#include "src/service/heartbeat_monitor.h"
#include "src/service/membership.h"
#include "src/service/plan_serde.h"
#include "src/service/recovery.h"
#include "src/transport/shm_store.h"

namespace dynapipe {
namespace {

constexpr int kIterations = 6;
constexpr int32_t kBaseReplicas = 3;
constexpr int32_t kJoiner = kBaseReplicas;
// Uniform pacing keeps a movable backlog resident while the churn lands
// (a simulated iteration alone completes in microseconds) without shifting
// any straggler medians.
constexpr double kPaceMs = 50.0;

std::string UniqueShmName(const char* tag) {
  static std::atomic<uint64_t> counter{0};
  return std::string("/dynapipe-mc-") + tag + "-" + std::to_string(::getpid()) +
         "-" + std::to_string(counter.fetch_add(1));
}

sim::ExecutionPlan MarkerPlan(int32_t marker) {
  sim::ExecutionPlan plan;
  plan.num_microbatches = marker;
  sim::DevicePlan dev;
  sim::Instruction instr;
  instr.microbatch = marker;
  instr.shape = {marker, 256, 64};
  dev.instructions.push_back(instr);
  plan.devices.push_back(std::move(dev));
  return plan;
}

bool WaitUntil(const std::function<bool()>& condition, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!condition()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

// One forked executor's role in a churn epoch.
struct ChurnChildSpec {
  int32_t replica = 0;
  bool join = false;              // declare join intent; admission by event
  bool require_work = false;      // joiner in the acceptance test: >= 1 plan
  int64_t start_iteration = 0;    // joiners poll at the spare base
  int64_t drain_after = -1;       // request a drain after this many runs
  std::string fault;              // injected fault spec; empty = none
  int pre_attach_delay_ms = 0;    // late joiner: sleep before attaching
  int idle_timeout_ms = 2500;
};

// Exit codes are the child's verdict:
//   0 clean   2 run failed   3 fetched bytes not among the published
//   4 drain handshake failed   6 joiner fetched nothing (when required)
//   7 evicted   9 bad fault spec
[[noreturn]] void RunChurnChild(const std::string& shm_name,
                                const std::vector<std::string>& expected,
                                const ChurnChildSpec& spec) {
  if (spec.pre_attach_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(spec.pre_attach_delay_ms));
  }
  if (!spec.fault.empty()) {
    common::FaultSpec fault;
    std::string error;
    if (!common::ParseFaultSpec(spec.fault, &fault, &error)) {
      ::_exit(9);
    }
    common::FaultInjector::Instance().Arm(fault);
  }
  executor::ExecutorOptions opts;
  opts.attach = shm_name;
  opts.endpoint = executor::AttachEndpoint::kSharedMemory;
  opts.replica = spec.replica;
  opts.iterations = -1;  // open-ended: handed-off work lands at spare keys
  opts.start_iteration = spec.start_iteration;
  opts.idle_timeout_ms = spec.idle_timeout_ms;
  opts.slow_ms = kPaceMs;
  opts.join = spec.join;
  opts.drain_after = spec.drain_after;
  // Byte checks are set-membership: a moved plan (stolen for a joiner,
  // reposted off a drainer or a corpse) keeps its bytes but not its key.
  bool bytes_ok = true;
  opts.observer = [&](const executor::IterationOutcome& outcome) {
    const std::string bytes = service::EncodeExecutionPlan(*outcome.plan);
    bytes_ok = bytes_ok && std::find(expected.begin(), expected.end(),
                                     bytes) != expected.end();
  };
  const executor::ExecutorReport report = executor::RunExecutor(opts);
  if (!bytes_ok) ::_exit(3);
  if (report.evicted) ::_exit(7);
  if (!report.ok) ::_exit(2);
  if (spec.drain_after >= 0 && !report.drained) ::_exit(4);
  if (spec.require_work && report.iterations_run < 1) ::_exit(6);
  ::_exit(0);
}

// The trainer-side control plane for one churn epoch, wired exactly like the
// Trainer does it: monitor -> recovery -> membership on one shared spare-key
// allocator, fed by the segment poller. Declaration order is teardown order
// in reverse: the poller stops feeding the monitor before membership and
// recovery unhook.
struct ChurnControlPlane {
  ChurnControlPlane(const std::string& shm_name,
                    const std::vector<std::vector<sim::ExecutionPlan>>& plans,
                    double dead_after_ms)
      : monitor(MonitorOptions(dead_after_ms)),
        store(transport::ShmInstructionStore::Create(
            shm_name, transport::ShmStoreOptions{})) {
    // Publish the whole epoch before the poller starts delivering events:
    // a joiner can announce the moment the segment exists, and its
    // admission steal should find a backlog worth sharing.
    for (int i = 0; i < kIterations; ++i) {
      for (int32_t r = 0; r < kBaseReplicas; ++r) {
        store->Push(i, r, plans[static_cast<size_t>(r)][static_cast<size_t>(i)]);
      }
    }
    auto spare_keys =
        std::make_shared<service::SpareKeyAllocator>(kIterations);
    service::RecoveryOptions ropts;
    for (int32_t r = 0; r < kBaseReplicas; ++r) {
      ropts.replicas.push_back(r);
    }
    ropts.spare_iteration_base = kIterations;
    ropts.spare_keys = spare_keys;
    recovery.emplace(store.get(), &monitor, ropts);
    service::MembershipOptions mopts;
    mopts.initial_replicas = ropts.replicas;
    mopts.spare_keys = spare_keys;
    transport::ShmInstructionStore* raw = store.get();
    mopts.drain_ack = [raw](int32_t replica) { raw->AcknowledgeDrain(replica); };
    membership.emplace(store.get(), &monitor, &*recovery, mopts);
    poller.emplace(store, &monitor);
  }

  static service::HeartbeatMonitorOptions MonitorOptions(double dead_after_ms) {
    service::HeartbeatMonitorOptions mopts;
    mopts.straggler_multiple = 2.0;
    mopts.min_straggler_gap_ms = 50.0;
    mopts.expected_replicas = kBaseReplicas;  // membership re-gates it live
    if (dead_after_ms > 0) {
      mopts.suspect_after_ms = dead_after_ms / 3.0;
      mopts.dead_after_ms = dead_after_ms;
    }
    return mopts;
  }

  service::HeartbeatMonitor monitor;
  std::shared_ptr<transport::ShmInstructionStore> store;
  std::optional<service::RecoveryCoordinator> recovery;
  std::optional<service::MembershipCoordinator> membership;
  std::optional<transport::ShmHeartbeatPoller> poller;
};

// ---------- the deterministic acceptance test ----------

// Replica 2 drains after two iterations; replica 3 joins immediately at the
// spare base. Every handoff is asserted individually: the joiner is
// admitted and seeded (>= 1 stolen plan — share = 6 pending / 4 expected),
// the drainer is fenced, reposted, acknowledged (clean handshake, no
// eviction) and retired on detach, and the whole epoch executes exactly
// once, byte-identical.
TEST(MembershipChurnTest, JoinAndDrainHandOffMidEpochExactlyOnce) {
  constexpr int32_t kDrainer = 2;
  std::vector<std::vector<sim::ExecutionPlan>> plans(kBaseReplicas);
  std::vector<std::string> expected;
  for (int i = 0; i < kIterations; ++i) {
    for (int32_t r = 0; r < kBaseReplicas; ++r) {
      plans[static_cast<size_t>(r)].push_back(MarkerPlan(500 + 10 * i + r));
      expected.push_back(
          service::EncodeExecutionPlan(plans[static_cast<size_t>(r)].back()));
    }
  }
  const std::string shm_name = UniqueShmName("accept");
  std::vector<pid_t> children;
  for (int32_t r = 0; r <= kJoiner; ++r) {
    ChurnChildSpec spec;
    spec.replica = r;
    if (r == kJoiner) {
      spec.join = true;
      spec.require_work = true;
      spec.start_iteration = kIterations;  // the spare base
    }
    if (r == kDrainer) {
      spec.drain_after = 2;
    }
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      RunChurnChild(shm_name, expected, spec);
    }
    children.push_back(child);
  }

  // No liveness deadlines: nobody dies here, and a false death would steal
  // the drainer's exit from under the assertion.
  ChurnControlPlane plane(shm_name, plans, /*dead_after_ms=*/0.0);

  ASSERT_TRUE(WaitUntil([&] { return plane.store->size() == 0; }, 30'000));
  const int64_t expected_beats =
      static_cast<int64_t>(kIterations) * kBaseReplicas;
  ASSERT_TRUE(WaitUntil(
      [&] { return plane.monitor.total_heartbeats() >= expected_beats; },
      10'000));

  for (size_t c = 0; c < children.size(); ++c) {
    int status = 0;
    ASSERT_EQ(::waitpid(children[c], &status, 0), children[c]);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "executor " << c << " status " << status;
  }

  // Exactly once: nothing resident, every published plan heartbeat exactly
  // one completion wherever it ended up running.
  EXPECT_EQ(plane.store->size(), 0u);
  EXPECT_EQ(plane.monitor.total_heartbeats(), expected_beats);

  // The join: admitted, seeded with stolen tail backlog.
  const service::MembershipReport mreport = plane.membership->report();
  EXPECT_EQ(mreport.joined, std::vector<int32_t>{kJoiner});
  EXPECT_GE(mreport.join_stolen_iterations, 1);
  // The drain: fenced and handed off (the drainer left 4 unfetched), then
  // acknowledged — the child's exit code already proved the clean handshake.
  EXPECT_EQ(mreport.drained, std::vector<int32_t>{kDrainer});
  EXPECT_GE(mreport.drain_reposted_iterations, 1);

  // The drainer ended detached — not dead, not evicted, and retired from
  // the active fleet while the joiner stays a member.
  ASSERT_TRUE(WaitUntil(
      [&] {
        return plane.monitor.Liveness(kDrainer) ==
               service::ReplicaLiveness::kDetached;
      },
      5'000));
  EXPECT_TRUE(plane.monitor.DeadReplicas().empty());
  EXPECT_EQ(plane.membership->ActiveMembers(),
            (std::vector<int32_t>{0, 1, kJoiner}));

  // Recovery never ran: a drain is not a death.
  const service::RecoveryReport rreport = plane.recovery->report();
  EXPECT_TRUE(rreport.dead_replicas.empty());
  EXPECT_EQ(rreport.replanned_iterations, 0);
}

// ---------- the seeded chaos harness ----------

// One deterministic churn schedule drawn from `seed`. The fault kind cycles
// with the seed (none / crash / stall) so five seeds always cover every
// kind; who drains, who faults, and all the timings come from the seeded
// generator.
struct ChurnSchedule {
  int32_t drainer = 0;
  int64_t drain_after = 1;
  int32_t fault_replica = 0;
  int fault_kind = 0;  // 0 none, 1 crash, 2 stall
  int64_t fault_at = 1;
  int join_delay_ms = 0;

  explicit ChurnSchedule(uint32_t seed) {
    std::mt19937 rng(seed);
    drainer = static_cast<int32_t>(rng() % kBaseReplicas);
    fault_replica = static_cast<int32_t>(rng() % kBaseReplicas);
    while (fault_replica == drainer) {
      fault_replica = static_cast<int32_t>(rng() % kBaseReplicas);
    }
    fault_kind = static_cast<int>(seed % 3);
    drain_after = 1 + static_cast<int64_t>(rng() % 3);
    fault_at = 1 + static_cast<int64_t>(rng() % 3);
    join_delay_ms = static_cast<int>(rng() % 150);
  }

  std::string FaultSpec() const {
    switch (fault_kind) {
      case 1:
        // Crash at the heartbeat site: executed but unreported — the one
        // beat the epoch legitimately loses.
        return "crash@" + std::to_string(fault_at);
      case 2:
        // Stall well under the death deadline: a straggle, never a death.
        return "stall:450@" + std::to_string(fault_at);
      default:
        return "";
    }
  }
};

void RunSeededChurnEpoch(uint32_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  const ChurnSchedule schedule(seed);
  const bool crash = schedule.fault_kind == 1;

  std::vector<std::vector<sim::ExecutionPlan>> plans(kBaseReplicas);
  std::vector<std::string> expected;
  for (int i = 0; i < kIterations; ++i) {
    for (int32_t r = 0; r < kBaseReplicas; ++r) {
      plans[static_cast<size_t>(r)].push_back(
          MarkerPlan(static_cast<int32_t>(1000 * seed) + 10 * i + r));
      expected.push_back(
          service::EncodeExecutionPlan(plans[static_cast<size_t>(r)].back()));
    }
  }
  const std::string shm_name = UniqueShmName("chaos");
  std::vector<pid_t> children;
  for (int32_t r = 0; r <= kJoiner; ++r) {
    ChurnChildSpec spec;
    spec.replica = r;
    if (r == kJoiner) {
      spec.join = true;
      spec.start_iteration = kIterations;
      spec.pre_attach_delay_ms = schedule.join_delay_ms;
      // A late joiner can legitimately find the backlog already fair-shared
      // to zero, so it must not *require* work — the invariants below are
      // global, not per-child.
    }
    if (r == schedule.drainer) {
      spec.drain_after = schedule.drain_after;
    }
    if (r == schedule.fault_replica) {
      spec.fault = schedule.FaultSpec();
    }
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      RunChurnChild(shm_name, expected, spec);
    }
    children.push_back(child);
  }

  // Death deadline sized so a SIGKILLed replica is declared well inside the
  // children's idle windows, while the 450 ms stall and the paced gaps
  // between publishes never get near it (idle shm executors stamp their
  // slot's alive marker on every probe).
  ChurnControlPlane plane(shm_name, plans, /*dead_after_ms=*/1'200.0);

  // A crash loses exactly one heartbeat: the victim dies at the heartbeat
  // site, after executing the plan it never reported. Everything else —
  // drained, stolen, reposted, inherited-spare-reposted-again — reports
  // exactly once.
  const int64_t expected_beats =
      static_cast<int64_t>(kIterations) * kBaseReplicas - (crash ? 1 : 0);
  ASSERT_TRUE(WaitUntil([&] { return plane.store->size() == 0; }, 30'000));
  ASSERT_TRUE(WaitUntil(
      [&] { return plane.monitor.total_heartbeats() >= expected_beats; },
      15'000));

  for (int32_t r = 0; r <= kJoiner; ++r) {
    int status = 0;
    ASSERT_EQ(::waitpid(children[static_cast<size_t>(r)], &status, 0),
              children[static_cast<size_t>(r)]);
    if (crash && r == schedule.fault_replica) {
      EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
          << "crash victim status " << status;
    } else {
      EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << "executor " << r << " status " << status;
    }
  }

  EXPECT_EQ(plane.store->size(), 0u);
  EXPECT_EQ(plane.monitor.total_heartbeats(), expected_beats);

  // Only a crash produces a death; a stall is a straggle and a drain is a
  // goodbye. Nobody innocent ever dies.
  if (crash) {
    EXPECT_EQ(plane.monitor.DeadReplicas(),
              std::vector<int32_t>{schedule.fault_replica});
  } else {
    EXPECT_TRUE(plane.monitor.DeadReplicas().empty());
  }

  // The schedule's churn was recorded: exactly this joiner, exactly this
  // drainer, and no survivor left to drop a plan on.
  const service::MembershipReport mreport = plane.membership->report();
  EXPECT_EQ(mreport.joined, std::vector<int32_t>{kJoiner});
  EXPECT_EQ(mreport.drained, std::vector<int32_t>{schedule.drainer});
  const service::RecoveryReport rreport = plane.recovery->report();
  EXPECT_EQ(rreport.dropped_iterations, 0);
}

TEST(MembershipChurnChaosTest, SeededSchedulesRunExactlyOnce) {
  for (uint32_t seed = 1; seed <= 5; ++seed) {
    RunSeededChurnEpoch(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace dynapipe
