// Unit tests for src/common: RNG, statistics, interpolation, table formatting.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/interp.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace dynapipe {
namespace {

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBelow(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(42);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) {
    stats.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(42);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) {
    stats.Add(rng.NextGaussian(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, LogNormalMedianIsExpMu) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 50'000; ++i) {
    values.push_back(rng.NextLogNormal(std::log(100.0), 0.5));
  }
  EXPECT_NEAR(Percentile(values, 50.0), 100.0, 3.0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), orig.begin()));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  // Child and parent should not produce identical sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == child.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

// ---------- RunningStats ----------

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

// ---------- Percentile / MPE ----------

TEST(PercentileTest, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStats) {
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 9.0);
}

TEST(MeanPercentageErrorTest, ExactMatchIsZero) {
  EXPECT_DOUBLE_EQ(MeanPercentageError({1.0, 2.0}, {1.0, 2.0}), 0.0);
}

TEST(MeanPercentageErrorTest, TenPercentOff) {
  EXPECT_NEAR(MeanPercentageError({110.0}, {100.0}), 10.0, 1e-9);
}

TEST(MeanPercentageErrorTest, SkipsZeroActuals) {
  EXPECT_NEAR(MeanPercentageError({5.0, 110.0}, {0.0, 100.0}), 10.0, 1e-9);
}

// ---------- Histogram ----------

TEST(HistogramTest, CountsFallInRightBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.5);
  h.Add(5.0);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(9), 1);
  EXPECT_EQ(h.bucket_count(5), 1);
  EXPECT_EQ(h.total(), 3);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(4), 1);
}

TEST(HistogramTest, BucketBounds) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 25.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 50.0);
}

TEST(HistogramTest, ToStringHasOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.Add(1.0);
  const std::string s = h.ToString();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

// ---------- LinearInterp1D ----------

TEST(LinearInterp1DTest, ExactAtKnots) {
  LinearInterp1D f({1.0, 2.0, 4.0}, {10.0, 20.0, 40.0});
  EXPECT_DOUBLE_EQ(f(1.0), 10.0);
  EXPECT_DOUBLE_EQ(f(2.0), 20.0);
  EXPECT_DOUBLE_EQ(f(4.0), 40.0);
}

TEST(LinearInterp1DTest, LinearBetweenKnots) {
  LinearInterp1D f({0.0, 10.0}, {0.0, 100.0});
  EXPECT_DOUBLE_EQ(f(2.5), 25.0);
}

TEST(LinearInterp1DTest, ExtrapolatesFromEdges) {
  LinearInterp1D f({0.0, 1.0}, {0.0, 2.0});
  EXPECT_DOUBLE_EQ(f(2.0), 4.0);
  EXPECT_DOUBLE_EQ(f(-1.0), -2.0);
}

// ---------- BilinearInterp2D ----------

TEST(BilinearInterp2DTest, ReproducesBilinearFunctionExactly) {
  // f(x, y) = 2 + 3x + 5y + 7xy is exactly representable.
  auto f = [](double x, double y) { return 2.0 + 3.0 * x + 5.0 * y + 7.0 * x * y; };
  std::vector<double> xs{0.0, 1.0, 3.0};
  std::vector<double> ys{0.0, 2.0, 5.0};
  std::vector<std::vector<double>> values(xs.size(), std::vector<double>(ys.size()));
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = 0; j < ys.size(); ++j) {
      values[i][j] = f(xs[i], ys[j]);
    }
  }
  BilinearInterp2D interp(xs, ys, values);
  for (double x : {0.3, 1.7, 2.9}) {
    for (double y : {0.1, 1.9, 4.2}) {
      EXPECT_NEAR(interp(x, y), f(x, y), 1e-9);
    }
  }
}

TEST(BilinearInterp2DTest, DegenerateAxisIsConstant) {
  BilinearInterp2D interp({1.0}, {0.0, 1.0}, {{3.0, 5.0}});
  EXPECT_DOUBLE_EQ(interp(100.0, 0.5), 4.0);
}

// ---------- TextTable ----------

TEST(TextTableTest, FormatsAlignedColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);  // header + rule + 2 rows
}

TEST(TextTableTest, FmtPrecision) {
  EXPECT_EQ(TextTable::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace dynapipe
