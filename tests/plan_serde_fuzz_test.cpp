// Property/fuzz tests for the binary plan serde (src/service/plan_serde) and
// the frame layer above it (src/transport/frame).
//
// The codec feeds a cross-process wire (src/transport), so it must hold
// two properties against arbitrary input, not just the handwritten samples:
//   - lossless round-trip: Decode(Encode(p)) == p and re-encoding is
//     byte-identical, over randomized plans covering every instruction kind,
//     every recompute mode, sentinel values, and extreme field magnitudes;
//   - malformation safety: truncated or bit-flipped buffers never crash the
//     decoder — TryDecodeExecutionPlan reports a clean error instead (the
//     hardening the transport's receiving side depends on).
// The frame-layer tests push the same hostility one level up: truncated,
// oversized, and bit-flipped frame headers and bodies against a live
// InstructionStoreServer (and against a mux client's demux loop) must yield
// a clean connection drop — never a crash, never a hang, and never a wedged
// server.
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/runtime/instruction_store.h"
#include "src/service/heartbeat_monitor.h"
#include "src/service/plan_serde.h"
#include "src/sim/instruction.h"
#include "src/transport/frame.h"
#include "src/transport/mux.h"
#include "src/transport/remote_store.h"
#include "src/transport/store_server.h"
#include "src/transport/transport.h"

namespace dynapipe {
namespace {

// A plan drawn from the full field space the wire format can carry: device
// counts 0..4, instruction counts 0..40, all instruction kinds and recompute
// modes, the -1 sentinels, and occasional extreme int32/int64 magnitudes that
// force multi-byte varints.
sim::ExecutionPlan RandomPlan(Rng& rng) {
  auto random_i32 = [&](bool allow_extreme) -> int32_t {
    if (allow_extreme && rng.NextBelow(8) == 0) {
      return rng.NextBelow(2) == 0 ? INT32_MIN : INT32_MAX;
    }
    return static_cast<int32_t>(rng.NextInt(-4, 1 << 20));
  };
  sim::ExecutionPlan plan;
  plan.num_microbatches = static_cast<int32_t>(rng.NextInt(0, 512));
  const uint64_t num_devices = rng.NextBelow(5);
  for (uint64_t d = 0; d < num_devices; ++d) {
    sim::DevicePlan dev;
    dev.device = static_cast<int32_t>(d);
    const uint64_t num_instr = rng.NextBelow(41);
    for (uint64_t i = 0; i < num_instr; ++i) {
      sim::Instruction instr;
      instr.type = static_cast<sim::InstrType>(rng.NextBelow(sim::kNumInstrTypes));
      instr.microbatch = random_i32(true);
      instr.peer = rng.NextBelow(4) == 0 ? -1 : static_cast<int32_t>(rng.NextBelow(64));
      instr.bytes = rng.NextBelow(8) == 0 ? static_cast<int64_t>(rng.NextU64())
                                          : rng.NextInt(0, int64_t{1} << 34);
      instr.shape.num_samples = random_i32(false);
      instr.shape.input_len = random_i32(true);
      instr.shape.target_len = random_i32(false);
      instr.recompute = static_cast<model::RecomputeMode>(rng.NextBelow(3));
      instr.fusion_group =
          rng.NextBelow(3) == 0 ? -1 : static_cast<int32_t>(rng.NextBelow(256));
      dev.instructions.push_back(instr);
    }
    plan.devices.push_back(std::move(dev));
  }
  return plan;
}

TEST(PlanSerdeFuzzTest, RandomizedRoundTripIsByteIdentical) {
  Rng rng(0xF00DD00Dull);
  std::set<sim::InstrType> types_seen;
  std::set<model::RecomputeMode> modes_seen;
  for (int case_i = 0; case_i < 1500; ++case_i) {
    const sim::ExecutionPlan plan = RandomPlan(rng);
    for (const auto& dev : plan.devices) {
      for (const auto& instr : dev.instructions) {
        types_seen.insert(instr.type);
        modes_seen.insert(instr.recompute);
      }
    }
    const std::string bytes = service::EncodeExecutionPlan(plan);
    std::string error;
    const std::optional<sim::ExecutionPlan> decoded =
        service::TryDecodeExecutionPlan(bytes, &error);
    ASSERT_TRUE(decoded.has_value()) << "case " << case_i << ": " << error;
    ASSERT_EQ(*decoded, plan) << "case " << case_i;
    // Re-encoding the decode must reproduce the wire bytes exactly — the
    // byte-identity the transport tests pin end to end starts here.
    ASSERT_EQ(service::EncodeExecutionPlan(*decoded), bytes) << "case " << case_i;
    // The fatal decoder is the same decoder.
    ASSERT_EQ(service::DecodeExecutionPlan(bytes), plan) << "case " << case_i;
  }
  // The generator actually exercised the full instruction set.
  EXPECT_EQ(types_seen.size(), static_cast<size_t>(sim::kNumInstrTypes));
  EXPECT_EQ(modes_seen.size(), 3u);
}

TEST(PlanSerdeFuzzTest, EveryTruncationFailsCleanly) {
  Rng rng(0xBEEFull);
  // Exhaustive over one representative buffer: every strict prefix must be
  // rejected (the decoder either runs out of bytes or, having consumed a
  // well-formed prefix, flags what is missing) — never crash, never succeed.
  sim::ExecutionPlan plan;
  do {
    plan = RandomPlan(rng);
  } while (plan.devices.empty() || plan.devices[0].instructions.empty());
  const std::string bytes = service::EncodeExecutionPlan(plan);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    const std::optional<sim::ExecutionPlan> decoded =
        service::TryDecodeExecutionPlan(std::string_view(bytes).substr(0, len),
                                        &error);
    ASSERT_FALSE(decoded.has_value()) << "prefix of " << len << " decoded";
    ASSERT_FALSE(error.empty()) << "prefix of " << len;
  }
  // Randomized truncations across many plans.
  for (int case_i = 0; case_i < 300; ++case_i) {
    const std::string b = service::EncodeExecutionPlan(RandomPlan(rng));
    const size_t len = rng.NextBelow(b.size());
    std::string error;
    ASSERT_FALSE(
        service::TryDecodeExecutionPlan(std::string_view(b).substr(0, len),
                                        &error)
            .has_value());
    ASSERT_FALSE(error.empty());
  }
}

TEST(PlanSerdeFuzzTest, BitFlipsNeverCrashTheDecoder) {
  Rng rng(0xCAFEull);
  int rejected = 0;
  for (int case_i = 0; case_i < 500; ++case_i) {
    const sim::ExecutionPlan plan = RandomPlan(rng);
    std::string bytes = service::EncodeExecutionPlan(plan);
    const size_t byte_i = rng.NextBelow(bytes.size());
    bytes[byte_i] = static_cast<char>(
        static_cast<uint8_t>(bytes[byte_i]) ^ (uint8_t{1} << rng.NextBelow(8)));
    // A flipped bit may still decode (it landed in a value field) — the
    // property is that the decoder never crashes and never reports success
    // with an error, not that every corruption is detectable.
    std::string error;
    const std::optional<sim::ExecutionPlan> decoded =
        service::TryDecodeExecutionPlan(bytes, &error);
    if (!decoded.has_value()) {
      ++rejected;
      EXPECT_FALSE(error.empty());
    }
  }
  // Structural fields dominate small plans, so most flips must be caught.
  EXPECT_GT(rejected, 100);
}

TEST(PlanSerdeFuzzTest, CorruptMagicAndVersionAlwaysRejected) {
  Rng rng(0x5EEDull);
  const std::string bytes = service::EncodeExecutionPlan(RandomPlan(rng));
  for (size_t byte_i = 0; byte_i < 5; ++byte_i) {  // magic + version byte
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte_i] = static_cast<char>(static_cast<uint8_t>(corrupt[byte_i]) ^
                                          (uint8_t{1} << bit));
      std::string error;
      EXPECT_FALSE(service::TryDecodeExecutionPlan(corrupt, &error).has_value());
      EXPECT_TRUE(error == "bad magic" || error == "unsupported version")
          << "byte " << byte_i << " bit " << bit << ": " << error;
    }
  }
}

// ---------- frame layer ----------

// Assembles the wire bytes of one well-formed kContains frame, exactly as
// WriteFrame lays them out. kContains is the fuzz base because every
// corruption of its non-type bytes is non-lethal by design: garbage keys are
// a legitimate "false" answer, while e.g. a corrupted kFetch key would trip
// the store's *intentional* fetch-before-publish abort.
std::string RawContainsFrame(uint64_t request_id, int64_t iteration,
                             int32_t replica) {
  std::string body;
  body.push_back(static_cast<char>(transport::FrameType::kContains));
  service::AppendVarint(request_id, &body);
  service::AppendZigzag(iteration, &body);
  service::AppendZigzag(replica, &body);
  std::string wire;
  const uint32_t len = static_cast<uint32_t>(body.size());
  wire.push_back(static_cast<char>(len & 0xff));
  wire.push_back(static_cast<char>((len >> 8) & 0xff));
  wire.push_back(static_cast<char>((len >> 16) & 0xff));
  wire.push_back(static_cast<char>((len >> 24) & 0xff));
  wire.append(body);
  return wire;
}

// One hostile connection: write `bytes`, optionally close, and drain
// whatever the server sends until it drops us. The server must survive — the
// caller verifies with a valid exchange afterwards.
void SendHostileBytes(transport::Transport& transport, const std::string& bytes,
                      bool close_after) {
  std::unique_ptr<transport::Stream> conn = transport.Connect();
  ASSERT_NE(conn, nullptr);
  conn->WriteAll(bytes.data(), bytes.size());
  if (close_after) {
    conn->Close();
  }
  // Read until the server closes the connection (a reply to a parseable
  // prefix may arrive first). Bounded by the stream closing, not a timer:
  // a hang here IS the failure.
  char sink[256];
  while (conn->ReadAll(sink, 1)) {
    (void)sink;
  }
}

TEST(FrameLayerFuzzTest, MalformedFramesDropConnectionNeverCrashServer) {
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  transport::LoopbackTransport transport;
  transport::InstructionStoreServer server(&transport, &store);

  const auto expect_server_alive = [&] {
    auto client = transport::RemoteInstructionStore::OverTransport(&transport);
    EXPECT_FALSE(client->Contains(1, 1));
    EXPECT_EQ(client->size(), 0u);
  };

  // Oversized length field (over kMaxFrameBytes).
  SendHostileBytes(transport, std::string("\xff\xff\xff\xff", 4), false);
  expect_server_alive();
  // Truncated header: close mid-length-prefix.
  SendHostileBytes(transport, std::string("\x08\x00", 2), true);
  expect_server_alive();
  // Truncated body: length promises more than arrives.
  SendHostileBytes(transport, std::string("\x20\x00\x00\x00", 4) + "abc", true);
  expect_server_alive();
  // Empty body.
  SendHostileBytes(transport, std::string(4, '\0'), false);
  expect_server_alive();
  // Unknown frame type.
  SendHostileBytes(transport, std::string("\x01\x00\x00\x00\x2a", 5), false);
  expect_server_alive();

  // Randomized garbage and bit-flipped valid frames.
  Rng rng(0xFADEDull);
  for (int case_i = 0; case_i < 60; ++case_i) {
    std::string wire;
    if (case_i % 2 == 0) {
      // Pure garbage of random length.
      const size_t len = 1 + rng.NextBelow(64);
      for (size_t b = 0; b < len; ++b) {
        wire.push_back(static_cast<char>(rng.NextBelow(256)));
      }
    } else {
      // A valid kContains frame with one flipped bit anywhere past the type
      // byte (length prefix included): corrupt lengths, request ids, and
      // keys must all be survivable. The type byte is excluded — morphing
      // kContains into kFetch of an unpublished key would trip the store's
      // intentional fatal contract, which is not a parse hazard.
      wire = RawContainsFrame(rng.NextU64() >> 32,
                              static_cast<int64_t>(rng.NextBelow(1000)),
                              static_cast<int32_t>(rng.NextBelow(8)));
      size_t byte_i = rng.NextBelow(wire.size() - 1);
      if (byte_i >= 4) {
        ++byte_i;  // skip the type byte at offset 4
      }
      wire[byte_i] = static_cast<char>(static_cast<uint8_t>(wire[byte_i]) ^
                                       (uint8_t{1} << rng.NextBelow(8)));
    }
    SendHostileBytes(transport, wire, true);
  }
  expect_server_alive();
  server.Stop();
}

TEST(FrameLayerFuzzTest, MalformedRepliesFailMuxDemuxLoopCleanly) {
  // The demux loop is the mux client's receiving side; hostile reply bytes
  // must end in a clean connection error (connection_ok() false, demux
  // thread exited, destructor joins) — never a crash or a hang.
  Rng rng(0xD00Full);
  for (int case_i = 0; case_i < 40; ++case_i) {
    transport::LoopbackTransport transport;
    auto client = transport::MuxInstructionStore::OverTransport(&transport);
    std::unique_ptr<transport::Stream> fake_server = transport.Accept();
    ASSERT_NE(fake_server, nullptr);

    std::string wire;
    switch (case_i % 4) {
      case 0:  // oversized length
        wire = std::string("\xff\xff\xff\xff", 4);
        break;
      case 1:  // truncated body
        wire = std::string("\x20\x00\x00\x00", 4) + "xy";
        break;
      case 2: {  // reply to a request nobody sent
        transport::Frame frame;
        frame.type = transport::FrameType::kOk;
        frame.request_id = 7777;
        WriteFrame(*fake_server, frame);
        break;
      }
      default: {  // random garbage
        const size_t len = 1 + rng.NextBelow(48);
        for (size_t b = 0; b < len; ++b) {
          wire.push_back(static_cast<char>(rng.NextBelow(256)));
        }
        break;
      }
    }
    if (!wire.empty()) {
      fake_server->WriteAll(wire.data(), wire.size());
    }
    fake_server->Close();
    // The demux loop notices and marks the connection dead; no call is
    // outstanding, so nothing crashes and nothing waits forever.
    while (client->connection_ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

// ---------- heartbeat framing ----------

// Assembles the wire bytes of one well-formed kHeartbeat frame, exactly as
// WriteFrame lays them out (length prefix, type, varint request_id, zigzag
// iteration/replica, varint wall-microseconds payload).
std::string RawHeartbeatFrame(uint64_t request_id, int64_t iteration,
                              int32_t replica, double wall_ms) {
  std::string body;
  body.push_back(static_cast<char>(transport::FrameType::kHeartbeat));
  service::AppendVarint(request_id, &body);
  service::AppendZigzag(iteration, &body);
  service::AppendZigzag(replica, &body);
  transport::AppendHeartbeatPayload(wall_ms, &body);
  std::string wire;
  const uint32_t len = static_cast<uint32_t>(body.size());
  wire.push_back(static_cast<char>(len & 0xff));
  wire.push_back(static_cast<char>((len >> 8) & 0xff));
  wire.push_back(static_cast<char>((len >> 16) & 0xff));
  wire.push_back(static_cast<char>((len >> 24) & 0xff));
  wire.append(body);
  return wire;
}

TEST(HeartbeatFramingTest, PayloadCodecRoundTripsAtMicrosecondGranularity) {
  // The payload is a varint of whole microseconds: values on the grid
  // round-trip exactly, off-grid values floor to it, negatives clamp to 0.
  for (const double wall_ms : {0.0, 0.001, 3.25, 250.0, 86'400'000.0}) {
    std::string payload;
    transport::AppendHeartbeatPayload(wall_ms, &payload);
    double decoded = -1.0;
    ASSERT_TRUE(transport::TryParseHeartbeatPayload(payload, &decoded));
    EXPECT_DOUBLE_EQ(decoded, wall_ms);
  }
  std::string payload;
  transport::AppendHeartbeatPayload(-5.0, &payload);
  double decoded = -1.0;
  ASSERT_TRUE(transport::TryParseHeartbeatPayload(payload, &decoded));
  EXPECT_EQ(decoded, 0.0);
  // Truncations of a multi-byte payload fail cleanly, as do trailing bytes.
  payload.clear();
  transport::AppendHeartbeatPayload(1e9, &payload);
  ASSERT_GT(payload.size(), 1u);
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(transport::TryParseHeartbeatPayload(
        std::string_view(payload).substr(0, len), &decoded));
  }
  EXPECT_FALSE(transport::TryParseHeartbeatPayload(payload + "x", &decoded));
}

TEST(HeartbeatFramingTest, FrameRoundTripsOverLoopback) {
  transport::LoopbackTransport lo;
  auto client = lo.Connect();
  auto server = lo.Accept();
  transport::Frame out;
  out.type = transport::FrameType::kHeartbeat;
  out.request_id = 42;
  out.iteration = 17;
  out.replica = 3;
  transport::AppendHeartbeatPayload(123.456, &out.payload);
  ASSERT_TRUE(WriteFrame(*client, out));
  std::string error;
  std::optional<transport::Frame> in = ReadFrame(*server, &error);
  ASSERT_TRUE(in.has_value()) << error;
  EXPECT_EQ(in->type, transport::FrameType::kHeartbeat);
  EXPECT_EQ(in->request_id, 42u);
  EXPECT_EQ(in->iteration, 17);
  EXPECT_EQ(in->replica, 3);
  double wall_ms = 0.0;
  ASSERT_TRUE(transport::TryParseHeartbeatPayload(in->payload, &wall_ms));
  EXPECT_DOUBLE_EQ(wall_ms, 123.456);
}

// Hostile heartbeat bytes against a live server with a real monitor sink:
// every strict prefix (a truncated frame) and every single-bit flip outside
// the type byte must end in either a recorded-or-dropped heartbeat or a
// clean connection drop — never a crash, never a wedged server, and never
// garbage parsed past a malformed payload.
TEST(HeartbeatFramingTest, TruncationsAndBitFlipsNeverCrashServerOrMonitor) {
  service::HeartbeatMonitor monitor;
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  store.set_heartbeat_sink(&monitor);
  transport::LoopbackTransport transport;
  transport::InstructionStoreServer server(&transport, &store);

  const std::string wire = RawHeartbeatFrame(/*request_id=*/9,
                                             /*iteration=*/12, /*replica=*/1,
                                             /*wall_ms=*/987.654);
  // Every strict prefix.
  for (size_t len = 1; len < wire.size(); ++len) {
    SendHostileBytes(transport, wire.substr(0, len), true);
  }
  // Every single-bit flip, skipping the type byte at offset 4 (morphing
  // kHeartbeat into kFetch of an unpublished key would trip the store's
  // intentional fatal contract, which is not a parse hazard).
  for (size_t byte_i = 0; byte_i < wire.size(); ++byte_i) {
    if (byte_i == 4) {
      continue;
    }
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = wire;
      corrupt[byte_i] = static_cast<char>(static_cast<uint8_t>(corrupt[byte_i]) ^
                                          (uint8_t{1} << bit));
      SendHostileBytes(transport, corrupt, true);
    }
  }

  // The server survived all of it: a valid heartbeat still lands.
  auto client = transport::RemoteInstructionStore::OverTransport(&transport);
  EXPECT_TRUE(client->Heartbeat(/*replica=*/5, /*iteration=*/33,
                                /*wall_ms=*/7.5));
  EXPECT_EQ(monitor.LastIteration(5), 33);
  const service::IterationHeartbeatStats stats = monitor.ForIteration(33);
  EXPECT_EQ(stats.replicas_reported, 1);
  EXPECT_DOUBLE_EQ(stats.max_wall_ms, 7.5);
  server.Stop();
}

TEST(PlanSerdeFuzzTest, TryParsePrimitivesRejectTruncationWithoutAborting) {
  std::string buf;
  service::AppendVarint(uint64_t{1} << 40, &buf);  // multi-byte varint
  for (size_t len = 0; len < buf.size(); ++len) {
    size_t pos = 0;
    uint64_t v = 0;
    EXPECT_FALSE(
        service::TryParseVarint(std::string_view(buf).substr(0, len), &pos, &v));
  }
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_TRUE(service::TryParseVarint(buf, &pos, &v));
  EXPECT_EQ(v, uint64_t{1} << 40);
  EXPECT_EQ(pos, buf.size());
  // Overlong varints (ten 0x80 continuation bytes) are malformed, not fatal.
  const std::string overlong(10, '\x80');
  pos = 0;
  EXPECT_FALSE(service::TryParseVarint(overlong, &pos, &v));
}

}  // namespace
}  // namespace dynapipe
