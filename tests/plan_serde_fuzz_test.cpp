// Property/fuzz tests for the binary plan serde (src/service/plan_serde).
//
// The codec now feeds a cross-process wire (src/transport), so it must hold
// two properties against arbitrary input, not just the handwritten samples:
//   - lossless round-trip: Decode(Encode(p)) == p and re-encoding is
//     byte-identical, over randomized plans covering every instruction kind,
//     every recompute mode, sentinel values, and extreme field magnitudes;
//   - malformation safety: truncated or bit-flipped buffers never crash the
//     decoder — TryDecodeExecutionPlan reports a clean error instead (the
//     hardening the transport's receiving side depends on).
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/service/plan_serde.h"
#include "src/sim/instruction.h"

namespace dynapipe {
namespace {

// A plan drawn from the full field space the wire format can carry: device
// counts 0..4, instruction counts 0..40, all instruction kinds and recompute
// modes, the -1 sentinels, and occasional extreme int32/int64 magnitudes that
// force multi-byte varints.
sim::ExecutionPlan RandomPlan(Rng& rng) {
  auto random_i32 = [&](bool allow_extreme) -> int32_t {
    if (allow_extreme && rng.NextBelow(8) == 0) {
      return rng.NextBelow(2) == 0 ? INT32_MIN : INT32_MAX;
    }
    return static_cast<int32_t>(rng.NextInt(-4, 1 << 20));
  };
  sim::ExecutionPlan plan;
  plan.num_microbatches = static_cast<int32_t>(rng.NextInt(0, 512));
  const uint64_t num_devices = rng.NextBelow(5);
  for (uint64_t d = 0; d < num_devices; ++d) {
    sim::DevicePlan dev;
    dev.device = static_cast<int32_t>(d);
    const uint64_t num_instr = rng.NextBelow(41);
    for (uint64_t i = 0; i < num_instr; ++i) {
      sim::Instruction instr;
      instr.type = static_cast<sim::InstrType>(rng.NextBelow(sim::kNumInstrTypes));
      instr.microbatch = random_i32(true);
      instr.peer = rng.NextBelow(4) == 0 ? -1 : static_cast<int32_t>(rng.NextBelow(64));
      instr.bytes = rng.NextBelow(8) == 0 ? static_cast<int64_t>(rng.NextU64())
                                          : rng.NextInt(0, int64_t{1} << 34);
      instr.shape.num_samples = random_i32(false);
      instr.shape.input_len = random_i32(true);
      instr.shape.target_len = random_i32(false);
      instr.recompute = static_cast<model::RecomputeMode>(rng.NextBelow(3));
      instr.fusion_group =
          rng.NextBelow(3) == 0 ? -1 : static_cast<int32_t>(rng.NextBelow(256));
      dev.instructions.push_back(instr);
    }
    plan.devices.push_back(std::move(dev));
  }
  return plan;
}

TEST(PlanSerdeFuzzTest, RandomizedRoundTripIsByteIdentical) {
  Rng rng(0xF00DD00Dull);
  std::set<sim::InstrType> types_seen;
  std::set<model::RecomputeMode> modes_seen;
  for (int case_i = 0; case_i < 1500; ++case_i) {
    const sim::ExecutionPlan plan = RandomPlan(rng);
    for (const auto& dev : plan.devices) {
      for (const auto& instr : dev.instructions) {
        types_seen.insert(instr.type);
        modes_seen.insert(instr.recompute);
      }
    }
    const std::string bytes = service::EncodeExecutionPlan(plan);
    std::string error;
    const std::optional<sim::ExecutionPlan> decoded =
        service::TryDecodeExecutionPlan(bytes, &error);
    ASSERT_TRUE(decoded.has_value()) << "case " << case_i << ": " << error;
    ASSERT_EQ(*decoded, plan) << "case " << case_i;
    // Re-encoding the decode must reproduce the wire bytes exactly — the
    // byte-identity the transport tests pin end to end starts here.
    ASSERT_EQ(service::EncodeExecutionPlan(*decoded), bytes) << "case " << case_i;
    // The fatal decoder is the same decoder.
    ASSERT_EQ(service::DecodeExecutionPlan(bytes), plan) << "case " << case_i;
  }
  // The generator actually exercised the full instruction set.
  EXPECT_EQ(types_seen.size(), static_cast<size_t>(sim::kNumInstrTypes));
  EXPECT_EQ(modes_seen.size(), 3u);
}

TEST(PlanSerdeFuzzTest, EveryTruncationFailsCleanly) {
  Rng rng(0xBEEFull);
  // Exhaustive over one representative buffer: every strict prefix must be
  // rejected (the decoder either runs out of bytes or, having consumed a
  // well-formed prefix, flags what is missing) — never crash, never succeed.
  sim::ExecutionPlan plan;
  do {
    plan = RandomPlan(rng);
  } while (plan.devices.empty() || plan.devices[0].instructions.empty());
  const std::string bytes = service::EncodeExecutionPlan(plan);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    const std::optional<sim::ExecutionPlan> decoded =
        service::TryDecodeExecutionPlan(std::string_view(bytes).substr(0, len),
                                        &error);
    ASSERT_FALSE(decoded.has_value()) << "prefix of " << len << " decoded";
    ASSERT_FALSE(error.empty()) << "prefix of " << len;
  }
  // Randomized truncations across many plans.
  for (int case_i = 0; case_i < 300; ++case_i) {
    const std::string b = service::EncodeExecutionPlan(RandomPlan(rng));
    const size_t len = rng.NextBelow(b.size());
    std::string error;
    ASSERT_FALSE(
        service::TryDecodeExecutionPlan(std::string_view(b).substr(0, len),
                                        &error)
            .has_value());
    ASSERT_FALSE(error.empty());
  }
}

TEST(PlanSerdeFuzzTest, BitFlipsNeverCrashTheDecoder) {
  Rng rng(0xCAFEull);
  int rejected = 0;
  for (int case_i = 0; case_i < 500; ++case_i) {
    const sim::ExecutionPlan plan = RandomPlan(rng);
    std::string bytes = service::EncodeExecutionPlan(plan);
    const size_t byte_i = rng.NextBelow(bytes.size());
    bytes[byte_i] = static_cast<char>(
        static_cast<uint8_t>(bytes[byte_i]) ^ (uint8_t{1} << rng.NextBelow(8)));
    // A flipped bit may still decode (it landed in a value field) — the
    // property is that the decoder never crashes and never reports success
    // with an error, not that every corruption is detectable.
    std::string error;
    const std::optional<sim::ExecutionPlan> decoded =
        service::TryDecodeExecutionPlan(bytes, &error);
    if (!decoded.has_value()) {
      ++rejected;
      EXPECT_FALSE(error.empty());
    }
  }
  // Structural fields dominate small plans, so most flips must be caught.
  EXPECT_GT(rejected, 100);
}

TEST(PlanSerdeFuzzTest, CorruptMagicAndVersionAlwaysRejected) {
  Rng rng(0x5EEDull);
  const std::string bytes = service::EncodeExecutionPlan(RandomPlan(rng));
  for (size_t byte_i = 0; byte_i < 5; ++byte_i) {  // magic + version byte
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte_i] = static_cast<char>(static_cast<uint8_t>(corrupt[byte_i]) ^
                                          (uint8_t{1} << bit));
      std::string error;
      EXPECT_FALSE(service::TryDecodeExecutionPlan(corrupt, &error).has_value());
      EXPECT_TRUE(error == "bad magic" || error == "unsupported version")
          << "byte " << byte_i << " bit " << bit << ": " << error;
    }
  }
}

TEST(PlanSerdeFuzzTest, TryParsePrimitivesRejectTruncationWithoutAborting) {
  std::string buf;
  service::AppendVarint(uint64_t{1} << 40, &buf);  // multi-byte varint
  for (size_t len = 0; len < buf.size(); ++len) {
    size_t pos = 0;
    uint64_t v = 0;
    EXPECT_FALSE(
        service::TryParseVarint(std::string_view(buf).substr(0, len), &pos, &v));
  }
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_TRUE(service::TryParseVarint(buf, &pos, &v));
  EXPECT_EQ(v, uint64_t{1} << 40);
  EXPECT_EQ(pos, buf.size());
  // Overlong varints (ten 0x80 continuation bytes) are malformed, not fatal.
  const std::string overlong(10, '\x80');
  pos = 0;
  EXPECT_FALSE(service::TryParseVarint(overlong, &pos, &v));
}

}  // namespace
}  // namespace dynapipe
