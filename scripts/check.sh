#!/usr/bin/env bash
# Tier-1 verify for CI: configure, build, ctest — with -Wall -Wextra promoted
# to errors for src/ (the library). Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-${BUILD_DIR:-build-check}}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-Release}" \
  -DDYNAPIPE_WERROR=ON

cmake --build "$BUILD_DIR" -j "$JOBS"

# Every tests/*.cpp must be a registered ctest suite: a test file that exists
# but never runs is worse than no test. (CMake globs tests/ today, but this
# guards against explicit lists drifting and against stale configure caches.)
# Runs after the build — pre-build `ctest -N` interleaves missing-executable
# noise into the listing.
registered="$(ctest --test-dir "$BUILD_DIR" -N | sed -n 's/^ *Test *#[0-9]*: //p')"
missing=0
for test_src in tests/*.cpp; do
  name="$(basename "$test_src" .cpp)"
  if ! grep -qx "$name" <<<"$registered"; then
    echo "ERROR: $test_src is not registered with ctest (suite '$name' missing)" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  echo "ERROR: unregistered test files — fix CMakeLists.txt or re-configure" >&2
  exit 1
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Smoke the plan-distribution bench end to end (3 rounds): it drives every
# store backend — in-process, serde, loopback/socket wire, mux, shm — through
# real pushes and fetches, so a backend that builds but cannot move a plan
# fails CI here rather than in a user's hands.
"$BUILD_DIR"/bench_plan_distribution 3

# Smoke the standalone executor daemon against both attachment families:
# each --demo plans a tiny epoch, forks three real executor processes (one
# deliberately slowed), and exits nonzero on any byte mismatch, undrained
# plan, or — on the wire — missed straggler attribution / heartbeat count.
"$BUILD_DIR"/dynapipe_executor --demo socket
"$BUILD_DIR"/dynapipe_executor --demo shm

# Smoke the failure control loop end to end: --fault arms a one-shot fault in
# one forked executor, and the demo exits nonzero unless the death is
# declared, the victim's backlog is re-published, and survivors drain every
# plan byte-identically. crash = SIGKILL mid-epoch (connection-drop path);
# stall = wedged past the heartbeat deadline (liveness-deadline + eviction
# fencing path, over the mux transport).
"$BUILD_DIR"/dynapipe_executor --demo socket --fault crash@1
"$BUILD_DIR"/dynapipe_executor --demo mux --fault stall:1200@1

# Smoke the shm-native straggler reaction: a stall over the shared-memory
# endpoint is detected through the segment's heartbeat slots alone (no
# socket side-channel), and the demo exits nonzero unless the stalled
# replica is flagged, its unfetched backlog migrates to the fast replicas,
# and the epoch still drains byte-identically.
"$BUILD_DIR"/dynapipe_executor --demo shm --fault stall:1200@1

# Smoke elastic membership end to end over shm: mid-epoch one replica drains
# (hands off its backlog, gets acked through the segment's drain word, exits
# clean) while a fourth replica joins (admitted off its slot claim alone,
# steals a share of the deepest backlog at its spare keys). The demo exits
# nonzero unless every plan byte matches, the drainer leaves un-evicted, the
# joiner executes at least one plan, and the heartbeat count proves
# exactly-once execution.
"$BUILD_DIR"/dynapipe_executor --demo shm --churn

# Smoke the observability stack end to end: the traced mux demo must write
# one merged Chrome-trace JSON covering the parent (planner/publisher) and
# all three forked executors. python3 -m json.tool is the structural check;
# the pid count proves cross-process merge actually happened (parent + at
# least one part file — the full 4 is asserted by observability_test).
TRACE_OUT="$(mktemp -t dynapipe-trace-XXXXXX.json)"
DYNAPIPE_TRACE="$TRACE_OUT" "$BUILD_DIR"/dynapipe_executor --demo mux --metrics-dump >/dev/null
python3 -m json.tool "$TRACE_OUT" >/dev/null
pids="$(grep -o '"pid":[0-9]*' "$TRACE_OUT" | sort -u | wc -l)"
if [ "$pids" -lt 2 ]; then
  echo "ERROR: merged trace $TRACE_OUT covers $pids process(es); want >= 2" >&2
  exit 1
fi
rm -f "$TRACE_OUT"

# Smoke incremental planning on a cross-shuffle T5 epoch pair: plans from a
# cold planner and an incremental planner (prefix cache + stage memo + warm
# seeds) must encode byte-identically, and the quantized pass must actually
# exercise the reuse path (zero prefix hits fails — a vacuous comparison
# proves nothing). Exits nonzero on any plan-byte mismatch.
"$BUILD_DIR"/bench_fig17_planning_time --incremental-smoke
