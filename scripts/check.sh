#!/usr/bin/env bash
# Tier-1 verify for CI: configure, build, ctest — with -Wall -Wextra promoted
# to errors for src/ (the library). Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-${BUILD_DIR:-build-check}}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-Release}" \
  -DDYNAPIPE_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
