// Memory pressure demo (§5 / Fig. 11): the memory-aware adaptive scheduler and
// dynamic recomputation under a shrinking device-memory budget.
//
// Runs the same GPT iteration while the per-device activation budget shrinks, and
// shows how the system adapts: first by delaying micro-batch injection (lower
// peak, slightly longer makespan), then by switching recomputation modes, and
// finally reports infeasibility only when a single micro-batch cannot fit.
//
// Run: ./build/examples/memory_pressure
#include <algorithm>
#include <cstdio>

#include "src/common/table.h"
#include "src/data/flan_generator.h"
#include "src/runtime/ground_truth.h"
#include "src/runtime/planner.h"
#include "src/sim/cluster_sim.h"

int main() {
  using namespace dynapipe;

  const model::ModelConfig config = model::ModelConfig::Gpt3_35B();
  const model::ParallelConfig parallel{1, 1, 4};

  data::FlanGeneratorOptions gen;
  gen.num_samples = 3000;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  std::vector<data::Sample> minibatch;
  int64_t tokens = 0;
  for (const auto& s : dataset.samples()) {
    const data::Sample t = data::Truncate(s, 4096, 0);
    minibatch.push_back(t);
    if ((tokens += t.total_tokens()) > 65'536) {
      break;
    }
  }

  TextTable table({"device_mem(GB)", "feasible", "recompute", "#microbatches",
                   "predicted_ms", "measured_peak(MB)", "makespan_ms"});
  for (const double mem_gb : {40.0, 26.0, 20.0, 17.0, 15.5, 15.0}) {
    model::HardwareSpec hw;
    hw.device_memory_mb = mem_gb * 1024.0;
    const auto cost_model = cost::PipelineCostModel::Profile(config, hw, parallel, {});
    runtime::PlannerOptions popts;
    const runtime::IterationPlanner planner(cost_model, popts);
    const runtime::IterationPlan plan = planner.PlanIteration(minibatch);
    if (!plan.feasible) {
      table.AddRow({TextTable::Fmt(mem_gb, 1), "no (" + plan.infeasible_reason + ")",
                    "-", "-", "-", "-", "-"});
      continue;
    }
    runtime::SimGroundTruth gt(config, hw, parallel, 0.05, 3);
    sim::ClusterSimOptions sim_opts;
    sim_opts.static_memory_mb = gt.StaticMemoryMb();
    sim_opts.memory_limit_mb = hw.usable_memory_mb();
    sim::ClusterSim cluster(parallel.pp, &gt, sim_opts);
    const sim::SimResult res = cluster.Run(plan.replicas[0].exec_plan);
    double peak = 0.0;
    for (const auto& dev : res.devices) {
      peak = std::max(peak, dev.peak_memory_mb);
    }
    table.AddRow({TextTable::Fmt(mem_gb, 1),
                  res.oom ? "OOM at runtime!" : "yes",
                  model::RecomputeModeName(plan.recompute),
                  std::to_string(plan.total_microbatches()),
                  TextTable::Fmt(plan.predicted_iteration_ms, 1),
                  TextTable::Fmt(peak, 0), TextTable::Fmt(res.makespan_ms, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\ntakeaway: as memory shrinks the planner first delays injection and\n"
              "re-partitions micro-batches, then pays recompute overhead, and only\n"
              "reports OOM when even a single micro-batch cannot fit (Alg. 1,\n"
              "dynamic recomputation, Fig. 11c).\n");
  return 0;
}
