// Deadlock demo (§2.3 / §6): why dynamic pipelines need communication planning.
//
// Builds one adaptive-schedule iteration and executes it on NCCL-like channels
// three ways:
//   1. naive unfused  — send at production, receive at use, sequential launches:
//                       DEADLOCKS (shown with the channel-head diagnostic);
//   2. naive + fixed 1F1B-style fused pairs on a *uniform* 1F1B schedule: works
//                       (this is the Megatron-LM status quo);
//   3. DynaPipe's planner — sends and receives co-scheduled at tensor production
//                       time: deadlock-free for the dynamic schedule, verified
//                       statically and by execution.
//
// Run: ./build/examples/deadlock_demo
#include <cstdio>

#include "src/comm/comm_planner.h"
#include "src/comm/verify.h"
#include "src/common/rng.h"
#include "src/schedule/adaptive_scheduler.h"
#include "src/schedule/executor_simulator.h"
#include "src/schedule/one_f_one_b.h"
#include "src/sim/cluster_sim.h"

namespace {

using namespace dynapipe;

class DemoGroundTruth : public sim::GroundTruth {
 public:
  double ComputeMs(int32_t, const sim::Instruction& instr) override {
    const double tokens = static_cast<double>(instr.shape.padded_tokens());
    return (instr.type == sim::InstrType::kForwardPass ? 1.0 : 2.0) *
           (0.1 + tokens / 1000.0);
  }
  double ActivationMb(int32_t, const sim::Instruction& instr) override {
    return static_cast<double>(instr.shape.padded_tokens()) / 100.0;
  }
  double TransferMs(int32_t, int32_t, int64_t bytes) override {
    return 0.01 + static_cast<double>(bytes) / 1e7;
  }
};

void Execute(const char* label, const sim::ExecutionPlan& plan, int32_t stages) {
  DemoGroundTruth gt;
  sim::ClusterSim cluster(stages, &gt);
  const sim::SimResult res = cluster.Run(plan);
  const auto violations = comm::VerifyChannelOrderConsistency(plan);
  std::printf("%-34s static check: %-22s execution: ", label,
              violations.empty() ? "consistent"
                                 : (std::to_string(violations.size()) + " conflicts").c_str());
  if (res.deadlocked) {
    std::printf("DEADLOCK\n    diagnostic: %.160s...\n", res.diagnostic.c_str());
  } else {
    std::printf("completed in %.1f ms\n", res.makespan_ms);
  }
}

}  // namespace

int main() {
  constexpr int32_t kStages = 4;
  constexpr int32_t kMicrobatches = 12;

  // Variable-size micro-batches (the dynamic-pipeline setting).
  Rng rng(5);
  schedule::OpCosts costs;
  std::vector<model::MicroBatchShape> shapes(kMicrobatches);
  costs.fwd_ms.assign(kStages, std::vector<double>(kMicrobatches));
  costs.bwd_ms = costs.fwd_ms;
  costs.act_mb = costs.fwd_ms;
  for (int32_t i = 0; i < kMicrobatches; ++i) {
    shapes[i] = {static_cast<int32_t>(rng.NextInt(1, 8)),
                 static_cast<int32_t>(rng.NextInt(64, 2048)), 0};
    const double tokens = static_cast<double>(shapes[i].padded_tokens());
    for (int32_t j = 0; j < kStages; ++j) {
      costs.fwd_ms[j][i] = 0.1 + tokens / 1000.0;
      costs.bwd_ms[j][i] = 2.0 * costs.fwd_ms[j][i];
      costs.act_mb[j][i] = tokens / 100.0;
    }
  }

  const auto adaptive = schedule::MemoryAwareAdaptiveSchedule(costs);
  const auto adaptive_tl = schedule::SimulateSchedule(*adaptive, costs);

  comm::CommPlannerInputs inputs;
  inputs.schedule = &*adaptive;
  inputs.timeline = &adaptive_tl;
  inputs.shapes = shapes;
  inputs.boundary_bytes = [&](int32_t, int32_t mb) {
    return static_cast<int64_t>(shapes[mb].padded_tokens()) * 128;
  };

  std::printf("adaptive schedule, %d dynamic micro-batches, %d stages\n\n",
              kMicrobatches, kStages);

  comm::NaivePlanOptions unfused;
  unfused.fuse_adjacent_pairs = false;
  Execute("1. naive (unfused):", comm::PlanCommunicationNaive(inputs, unfused),
          kStages);

  // The Megatron status quo only exists for uniform 1F1B.
  const auto one_f_one_b = schedule::OneFOneBSchedule(kMicrobatches, kStages);
  schedule::OpCosts uniform =
      schedule::OpCosts::Uniform(kStages, kMicrobatches, 1.0, 2.0, 1.0);
  const auto uniform_tl = schedule::SimulateSchedule(one_f_one_b, uniform);
  comm::CommPlannerInputs uniform_inputs = inputs;
  uniform_inputs.schedule = &one_f_one_b;
  uniform_inputs.timeline = &uniform_tl;
  std::vector<model::MicroBatchShape> uniform_shapes(kMicrobatches, {2, 512, 0});
  uniform_inputs.shapes = uniform_shapes;
  uniform_inputs.boundary_bytes = [](int32_t, int32_t) { return int64_t{131072}; };
  Execute("2. 1F1B + fused pairs (Megatron):",
          comm::PlanCommunicationNaive(uniform_inputs), kStages);

  Execute("3. DynaPipe comm planner:", comm::PlanCommunication(inputs), kStages);

  std::printf("\ntakeaway: under dynamic schedules the naive order deadlocks on\n"
              "NCCL-like ordered channels; DynaPipe co-schedules every send with its\n"
              "receive at tensor-production time, keeping all per-pair orders\n"
              "consistent without fused primitives (Fig. 8, Fig. 12).\n");
  return 0;
}
