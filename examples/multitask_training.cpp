// Multi-task training epoch: DynaPipe vs the packing baseline, end to end.
//
// The workload the paper's introduction motivates: fine-tune one model on a
// mixture of tasks whose sequence lengths differ wildly (grammar checks of ~50
// tokens next to summarizations of ~1000+). Runs a sampled epoch of T5 training
// under both systems at the same parallelism and reports throughput, padding
// efficiency (encoder/decoder), and recompute choices.
//
// Run: ./build/examples/multitask_training
#include <algorithm>
#include <cstdio>

#include "src/common/table.h"
#include "src/data/flan_generator.h"
#include "src/runtime/trainer.h"

int main() {
  using namespace dynapipe;

  const model::ModelConfig config = model::ModelConfig::T5_5_5B();
  const model::HardwareSpec hw;
  const model::ParallelConfig parallel{1, 2, 2};
  runtime::Trainer trainer(config, hw, parallel, {});

  data::FlanGeneratorOptions gen;
  gen.num_samples = 6000;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  std::printf("dataset: %zu samples over %zu tasks, mean input %.0f tokens, max %d\n",
              dataset.size(), dataset.tasks().size(), dataset.mean_input_len(),
              dataset.max_input_len());

  runtime::TrainerOptions topts;
  topts.global_batch_tokens = 65'536;
  topts.max_input_len = 2048;
  topts.max_iterations = 6;

  // DynaPipe path.
  const runtime::EpochResult dyna = trainer.RunEpoch(dataset, {}, topts);
  if (!dyna.feasible) {
    std::printf("DynaPipe failed: %s\n", dyna.failure.c_str());
    return 1;
  }

  // Packing baseline: best over a micro-batch-size/recompute sweep.
  runtime::EpochResult best_packed;
  best_packed.feasible = false;
  for (const int32_t mbs : {1, 2, 4, 8}) {
    for (const auto mode : {model::RecomputeMode::kNone,
                            model::RecomputeMode::kSelective,
                            model::RecomputeMode::kFull}) {
      runtime::BaselineOptions base;
      base.batching = runtime::BaselineBatching::kPacking;
      base.microbatch_size = mbs;
      base.recompute = mode;
      runtime::EpochResult r = trainer.RunEpochBaseline(dataset, base, topts);
      if (r.feasible && (!best_packed.feasible ||
                         r.tokens_per_second() > best_packed.tokens_per_second())) {
        best_packed = std::move(r);
      }
    }
  }

  TextTable table({"system", "tokens/s", "pad_eff(enc)", "pad_eff(dec)",
                   "mean_iter_ms", "mean_#microbatches"});
  auto add_row = [&](const char* name, const runtime::EpochResult& r) {
    double mb_total = 0.0;
    for (const auto& rec : r.records) {
      mb_total += rec.num_microbatches;
    }
    table.AddRow({name, TextTable::Fmt(r.tokens_per_second(), 0),
                  TextTable::Fmt(r.padding.input_efficiency(), 3),
                  TextTable::Fmt(r.padding.target_efficiency(), 3),
                  TextTable::Fmt(r.train_time_ms / r.iterations, 1),
                  TextTable::Fmt(mb_total / r.iterations, 1)});
  };
  add_row("DynaPipe", dyna);
  if (best_packed.feasible) {
    add_row("packing (best)", best_packed);
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf("\nDynaPipe recompute choices per iteration:");
  for (const auto& rec : dyna.records) {
    std::printf(" %s", model::RecomputeModeName(rec.recompute));
  }
  std::printf("\nspeedup: %.2fx\n",
              best_packed.feasible
                  ? dyna.tokens_per_second() / best_packed.tokens_per_second()
                  : 0.0);
  return 0;
}
