// Two-process plan distribution: a planner process publishes an epoch of
// execution plans; a fork()ed executor process fetches and decodes the
// instruction streams — twice, over the two distribution paths:
//
//   1. the wire: InstructionStoreServer over a Unix domain socket, fetched
//      with RemoteInstructionStore (serialized plan bytes cross the socket);
//   2. shared memory: the planner creates a named ShmInstructionStore
//      segment, the executor *attaches by name* (shm_open + mmap) and pulls
//      zero-copy views of the very bytes the planner wrote — no wire, no
//      copy, decode-in-place;
//   3. the executor daemon: three fork()ed executor::RunExecutor processes
//      (the code behind tools/dynapipe_executor) attach over the socket, run
//      the plans on their own ClusterSims, and heartbeat completion back —
//      one replica deliberately slowed so the planner-side HeartbeatMonitor
//      flags it as a straggler.
//
// This is the paper's §3 deployment shape for real: planning happens on the
// dataloader side, executors live in other processes, and the only thing
// that crosses the boundary is serialized plan bytes (plan_serde) — either
// framed over a socket or mapped from the segment. The walk:
//   1. plan a short epoch inline (planner process, before any threads exist),
//   2. fork the executor, which waits for the publish signal,
//   3. planner: serve the store (socket phase) / create the segment (shm
//      phase), publish every (iteration, replica) plan, signal readiness,
//   4. executor: fetch + decode each plan, verify it re-encodes to the exact
//      published bytes, report per-fetch latency over the pipe.
//
// Build & run:  cmake -B build -S . && cmake --build build &&
//               ./build/plan_distribution
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cost/pipeline_cost_model.h"
#include "src/data/flan_generator.h"
#include "src/data/minibatch_sampler.h"
#include "src/executor/executor.h"
#include "src/runtime/instruction_store.h"
#include "src/runtime/planner.h"
#include "src/service/heartbeat_monitor.h"
#include "src/service/plan_serde.h"
#include "src/transport/remote_store.h"
#include "src/transport/shm_store.h"
#include "src/transport/store_server.h"
#include "src/transport/transport.h"

namespace {

bool WriteFull(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0 && errno != EINTR) return false;
    if (w > 0) {
      p += w;
      n -= static_cast<size_t>(w);
    }
  }
  return true;
}

bool ReadFull(int fd, void* data, size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    p += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

struct FetchReport {
  int64_t iteration;
  int64_t bytes;
  double fetch_ms;
  int32_t devices;
  int32_t instructions;
  unsigned char byte_identical;
};

// One two-process phase: fork an executor that fetches every plan through
// `fetch` (run in the child) while the planner publishes through `publish`
// (run in the parent) and tallies the reports. Returns true when the
// executor exited cleanly and every fetch was byte-identical.
bool RunPhase(const char* label, const std::vector<dynapipe::sim::ExecutionPlan>& plans,
              const std::function<dynapipe::sim::ExecutionPlan(int64_t)>& fetch,
              const std::function<void()>& publish,
              const std::function<void()>& planner_cleanup) {
  using namespace dynapipe;
  int ready_pipe[2];
  int report_pipe[2];
  if (::pipe(ready_pipe) != 0 || ::pipe(report_pipe) != 0) {
    std::perror("pipe");
    return false;
  }
  const pid_t child = ::fork();
  if (child < 0) {
    std::perror("fork");
    return false;
  }

  if (child == 0) {
    // --- Executor process: fetch, decode, verify, report.
    ::close(ready_pipe[1]);
    ::close(report_pipe[0]);
    char go;
    if (!ReadFull(ready_pipe[0], &go, 1)) ::_exit(2);
    for (size_t i = 0; i < plans.size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const sim::ExecutionPlan plan = fetch(static_cast<int64_t>(i));
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      // The child inherited the planner's pre-fork plans, so it can verify
      // the distribution path delivered exactly what was published.
      const std::string bytes = service::EncodeExecutionPlan(plan);
      FetchReport report;
      report.iteration = static_cast<int64_t>(i);
      report.bytes = static_cast<int64_t>(bytes.size());
      report.fetch_ms = ms;
      report.devices = plan.num_devices();
      report.instructions = 0;
      for (const auto& dev : plan.devices) {
        report.instructions += static_cast<int32_t>(dev.instructions.size());
      }
      report.byte_identical =
          bytes == service::EncodeExecutionPlan(plans[i]) ? 1 : 0;
      if (!WriteFull(report_pipe[1], &report, sizeof(report))) ::_exit(3);
    }
    ::_exit(0);
  }

  // --- Planner process: publish, signal, tally the reports.
  ::close(ready_pipe[0]);
  ::close(report_pipe[1]);
  const auto publish_start = std::chrono::steady_clock::now();
  publish();
  const double publish_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - publish_start)
                                .count();
  std::printf("[planner] %s: published %zu plans in %.2f ms\n", label,
              plans.size(), publish_ms);
  WriteFull(ready_pipe[1], "g", 1);

  std::printf("  iter | devices | instrs | bytes  | fetch ms | byte-identical\n");
  bool all_identical = true;
  bool executor_alive = true;
  for (size_t i = 0; i < plans.size() && executor_alive; ++i) {
    FetchReport report;
    if (!ReadFull(report_pipe[0], &report, sizeof(report))) {
      // Still reap the child and run cleanup below: a later phase must not
      // inherit this one's server threads (or a zombie) through its fork.
      std::printf("[planner] executor died mid-epoch\n");
      executor_alive = false;
      break;
    }
    all_identical = all_identical && report.byte_identical != 0;
    std::printf("  %4lld | %7d | %6d | %6lld | %8.3f | %s\n",
                static_cast<long long>(report.iteration), report.devices,
                report.instructions, static_cast<long long>(report.bytes),
                report.fetch_ms, report.byte_identical ? "yes" : "NO");
  }
  int status = 0;
  ::waitpid(child, &status, 0);
  planner_cleanup();
  ::close(ready_pipe[1]);
  ::close(report_pipe[0]);
  const bool child_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  std::printf("[planner] %s: executor exit %s; %s\n\n", label,
              child_ok ? "clean" : "ABNORMAL",
              all_identical ? "every fetched plan was byte-identical"
                            : "BYTE MISMATCH");
  return executor_alive && child_ok && all_identical;
}

}  // namespace

int main() {
  using namespace dynapipe;
  const std::string socket_path =
      "/tmp/dynapipe-example-" + std::to_string(::getpid()) + ".sock";

  // --- 1. Plan a short epoch inline (no threads yet: fork below stays safe).
  std::printf("[planner] profiling cost model and planning an epoch...\n");
  cost::ProfileOptions profile;
  profile.max_microbatch_size = 32;
  profile.max_seq_len = 4096;
  const auto cost_model = cost::PipelineCostModel::Profile(
      model::ModelConfig::Gpt3_35B(), model::HardwareSpec{}, {1, 1, 4}, profile);
  runtime::PlannerOptions popts;
  popts.max_tmax_candidates = 48;
  popts.tmax_interval_ms = 0.5;
  popts.max_microbatch_size = 32;
  runtime::IterationPlanner planner(cost_model, popts);

  data::FlanGeneratorOptions gen;
  gen.num_samples = 400;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  data::MiniBatchSamplerOptions sopts;
  sopts.global_batch_tokens = 8192;
  sopts.max_input_len = 1024;
  data::MiniBatchSampler sampler(dataset, sopts);

  constexpr int kIterations = 4;
  std::vector<sim::ExecutionPlan> plans;
  for (int i = 0; i < kIterations && sampler.HasNext(); ++i) {
    runtime::IterationPlan plan = planner.PlanIteration(sampler.Next());
    if (!plan.feasible) {
      std::printf("planning failed: %s\n", plan.infeasible_reason.c_str());
      return 1;
    }
    plans.push_back(std::move(plan.replicas[0].exec_plan));
  }
  std::printf("[planner] %zu iterations planned\n", plans.size());

  // --- Phase 1: the socket wire. The server comes up in the parent *after*
  // the fork (the child inherits no threads); the executor's connect retries
  // until it is listening.
  std::optional<runtime::InstructionStore> store;
  std::optional<transport::UnixSocketTransport> transport_ep;
  std::optional<transport::InstructionStoreServer> server;
  const bool socket_ok = RunPhase(
      "unix socket", plans,
      /*fetch=*/
      [&socket_path,
       client = std::shared_ptr<transport::RemoteInstructionStore>()](
          int64_t iteration) mutable {
        if (client == nullptr) {
          client = transport::RemoteInstructionStore::OverUnixSocket(
              socket_path, /*connect_timeout_ms=*/10'000);
        }
        return client->Fetch(iteration, /*replica=*/0);
      },
      /*publish=*/
      [&] {
        store.emplace(runtime::InstructionStoreOptions{/*serialized=*/true,
                                                       /*capacity=*/0});
        transport_ep.emplace(socket_path);
        server.emplace(&*transport_ep, &*store);
        for (size_t i = 0; i < plans.size(); ++i) {
          store->Push(static_cast<int64_t>(i), /*replica=*/0, plans[i]);
        }
        std::printf("[planner] serving %lld encoded bytes on %s\n",
                    static_cast<long long>(store->serialized_bytes_total()),
                    socket_path.c_str());
      },
      /*planner_cleanup=*/[&] { server->Stop(); });

  // --- Phase 2: shared memory. No server, no wire: the planner creates a
  // named segment, the executor attaches by that name and decodes zero-copy
  // views in place. (The socket server's threads were joined in Stop(), so
  // the fork inside RunPhase is again single-threaded.)
  const std::string shm_name =
      "/dynapipe-example-" + std::to_string(::getpid());
  std::shared_ptr<transport::ShmInstructionStore> shm;
  const bool shm_ok = RunPhase(
      "shared memory", plans,
      /*fetch=*/
      [&shm_name, attached = std::shared_ptr<transport::ShmInstructionStore>()](
          int64_t iteration) mutable {
        if (attached == nullptr) {
          attached = transport::ShmInstructionStore::Attach(
              shm_name, /*timeout_ms=*/10'000);
        }
        return attached->Fetch(iteration, /*replica=*/0);
      },
      /*publish=*/
      [&] {
        shm = transport::ShmInstructionStore::Create(
            shm_name, transport::ShmStoreOptions{});
        for (size_t i = 0; i < plans.size(); ++i) {
          shm->Push(static_cast<int64_t>(i), /*replica=*/0, plans[i]);
        }
        std::printf("[planner] %lld encoded bytes mapped at %s\n",
                    static_cast<long long>(shm->serialized_bytes_total()),
                    shm_name.c_str());
      },
      /*planner_cleanup=*/[&] { shm.reset(); });

  // --- Phase 3: the executor daemon. Three executor processes (the library
  // behind tools/dynapipe_executor) attach over a fresh socket, execute every
  // plan on their own ClusterSims, and heartbeat completion; replica 2 is
  // slowed 150 ms/iteration and must come back flagged as the straggler.
  constexpr int kReplicas = 3;
  constexpr int kSlowReplica = 2;
  constexpr double kSlowMs = 150.0;
  const std::string daemon_socket =
      "/tmp/dynapipe-example-exec-" + std::to_string(::getpid()) + ".sock";
  std::vector<pid_t> executors;
  for (int32_t replica = 0; replica < kReplicas; ++replica) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      executor::ExecutorOptions opts;
      opts.attach = daemon_socket;
      opts.replica = replica;
      opts.iterations = static_cast<int64_t>(plans.size());
      opts.slow_ms = replica == kSlowReplica ? kSlowMs : 0.0;
      ::_exit(executor::RunExecutor(opts).ok ? 0 : 2);
    }
    executors.push_back(pid);
  }

  service::HeartbeatMonitor monitor(service::HeartbeatMonitorOptions{
      /*straggler_multiple=*/2.0, /*min_straggler_gap_ms=*/25.0});
  runtime::InstructionStore daemon_store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  daemon_store.set_heartbeat_sink(&monitor);
  transport::UnixSocketTransport daemon_transport(daemon_socket);
  transport::InstructionStoreServer daemon_server(&daemon_transport,
                                                  &daemon_store);
  for (size_t i = 0; i < plans.size(); ++i) {
    for (int32_t replica = 0; replica < kReplicas; ++replica) {
      daemon_store.Push(static_cast<int64_t>(i), replica, plans[i]);
    }
  }
  std::printf("[planner] executor daemons: %d replicas attached to %s, "
              "replica %d slowed %.0f ms/iter\n",
              kReplicas, daemon_socket.c_str(), kSlowReplica, kSlowMs);

  bool daemons_ok = true;
  for (const pid_t pid : executors) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    daemons_ok =
        daemons_ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
  std::printf("  iter | replicas | median ms | max ms | straggler\n");
  for (size_t i = 0; i < plans.size(); ++i) {
    const service::IterationHeartbeatStats stats =
        monitor.ForIteration(static_cast<int64_t>(i));
    daemons_ok = daemons_ok && stats.replicas_reported == kReplicas &&
                 stats.stragglers == std::vector<int32_t>{kSlowReplica};
    std::printf("  %4zu | %8d | %9.2f | %6.2f | %s\n", i,
                stats.replicas_reported, stats.median_wall_ms,
                stats.max_wall_ms,
                stats.stragglers == std::vector<int32_t>{kSlowReplica}
                    ? "replica 2 (expected)"
                    : "WRONG ATTRIBUTION");
  }
  daemon_server.Stop();
  std::printf("[planner] executor phase %s\n\n",
              daemons_ok ? "ok" : "FAILED");

  std::printf("[planner] socket phase %s, shm phase %s, executor phase %s\n",
              socket_ok ? "ok" : "FAILED", shm_ok ? "ok" : "FAILED",
              daemons_ok ? "ok" : "FAILED");
  return socket_ok && shm_ok && daemons_ok ? 0 : 1;
}
