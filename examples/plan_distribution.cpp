// Two-process plan distribution: a planner process publishes an epoch of
// execution plans through an InstructionStoreServer over a Unix domain
// socket; a fork()ed executor process fetches them with
// RemoteInstructionStore and decodes the instruction streams.
//
// This is the paper's §3 deployment shape for real: planning happens on the
// dataloader side, executors live in other processes, and the only thing that
// crosses the boundary is serialized plan bytes (plan_serde) — no shared
// memory, no in-process pointers. The walk:
//   1. plan a short epoch inline (planner process, before any threads exist),
//   2. fork the executor, which waits for the publish signal,
//   3. planner: serve the store on a socket, publish every (iteration,
//      replica) plan, signal readiness,
//   4. executor: fetch + decode each plan, verify it re-encodes to the exact
//      published bytes, report per-fetch latency over the pipe.
//
// Build & run:  cmake -B build -S . && cmake --build build &&
//               ./build/plan_distribution
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/cost/pipeline_cost_model.h"
#include "src/data/flan_generator.h"
#include "src/data/minibatch_sampler.h"
#include "src/runtime/instruction_store.h"
#include "src/runtime/planner.h"
#include "src/service/plan_serde.h"
#include "src/transport/remote_store.h"
#include "src/transport/store_server.h"
#include "src/transport/transport.h"

namespace {

bool WriteFull(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0 && errno != EINTR) return false;
    if (w > 0) {
      p += w;
      n -= static_cast<size_t>(w);
    }
  }
  return true;
}

bool ReadFull(int fd, void* data, size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    p += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

struct FetchReport {
  int64_t iteration;
  int64_t bytes;
  double fetch_ms;
  int32_t devices;
  int32_t instructions;
  unsigned char byte_identical;
};

}  // namespace

int main() {
  using namespace dynapipe;
  const std::string socket_path =
      "/tmp/dynapipe-example-" + std::to_string(::getpid()) + ".sock";

  // --- 1. Plan a short epoch inline (no threads yet: fork below stays safe).
  std::printf("[planner] profiling cost model and planning an epoch...\n");
  cost::ProfileOptions profile;
  profile.max_microbatch_size = 32;
  profile.max_seq_len = 4096;
  const auto cost_model = cost::PipelineCostModel::Profile(
      model::ModelConfig::Gpt3_35B(), model::HardwareSpec{}, {1, 1, 4}, profile);
  runtime::PlannerOptions popts;
  popts.max_tmax_candidates = 48;
  popts.tmax_interval_ms = 0.5;
  popts.max_microbatch_size = 32;
  runtime::IterationPlanner planner(cost_model, popts);

  data::FlanGeneratorOptions gen;
  gen.num_samples = 400;
  gen.length_cap = 1024;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  data::MiniBatchSamplerOptions sopts;
  sopts.global_batch_tokens = 8192;
  sopts.max_input_len = 1024;
  data::MiniBatchSampler sampler(dataset, sopts);

  constexpr int kIterations = 4;
  std::vector<sim::ExecutionPlan> plans;
  for (int i = 0; i < kIterations && sampler.HasNext(); ++i) {
    runtime::IterationPlan plan = planner.PlanIteration(sampler.Next());
    if (!plan.feasible) {
      std::printf("planning failed: %s\n", plan.infeasible_reason.c_str());
      return 1;
    }
    plans.push_back(std::move(plan.replicas[0].exec_plan));
  }
  std::printf("[planner] %zu iterations planned\n", plans.size());

  int ready_pipe[2];
  int report_pipe[2];
  if (::pipe(ready_pipe) != 0 || ::pipe(report_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }

  const pid_t child = ::fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }

  if (child == 0) {
    // --- Executor process: fetch, decode, verify, report.
    ::close(ready_pipe[1]);
    ::close(report_pipe[0]);
    char go;
    if (!ReadFull(ready_pipe[0], &go, 1)) ::_exit(2);
    auto store = transport::RemoteInstructionStore::OverUnixSocket(
        socket_path, /*connect_timeout_ms=*/10'000);
    for (size_t i = 0; i < plans.size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const sim::ExecutionPlan plan =
          store->Fetch(static_cast<int64_t>(i), /*replica=*/0);
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      // The child inherited the planner's pre-fork plans, so it can verify
      // the wire delivered exactly what was published.
      const std::string bytes = service::EncodeExecutionPlan(plan);
      FetchReport report;
      report.iteration = static_cast<int64_t>(i);
      report.bytes = static_cast<int64_t>(bytes.size());
      report.fetch_ms = ms;
      report.devices = plan.num_devices();
      report.instructions = 0;
      for (const auto& dev : plan.devices) {
        report.instructions += static_cast<int32_t>(dev.instructions.size());
      }
      report.byte_identical =
          bytes == service::EncodeExecutionPlan(plans[i]) ? 1 : 0;
      if (!WriteFull(report_pipe[1], &report, sizeof(report))) ::_exit(3);
    }
    ::_exit(0);
  }

  // --- Planner process: serve the store, publish, then wait for the report.
  ::close(ready_pipe[0]);
  ::close(report_pipe[1]);
  runtime::InstructionStore store(
      runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
  transport::UnixSocketTransport transport(socket_path);
  transport::InstructionStoreServer server(&transport, &store);
  const auto publish_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < plans.size(); ++i) {
    store.Push(static_cast<int64_t>(i), /*replica=*/0, plans[i]);
  }
  const double publish_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - publish_start)
                                .count();
  std::printf("[planner] published %zu plans (%.2f ms, %lld encoded bytes), "
              "serving on %s\n",
              plans.size(), publish_ms,
              static_cast<long long>(store.serialized_bytes_total()),
              socket_path.c_str());
  WriteFull(ready_pipe[1], "g", 1);

  std::printf("  iter | devices | instrs | bytes  | fetch ms | byte-identical\n");
  bool all_identical = true;
  for (size_t i = 0; i < plans.size(); ++i) {
    FetchReport report;
    if (!ReadFull(report_pipe[0], &report, sizeof(report))) {
      std::printf("[planner] executor died mid-epoch\n");
      return 1;
    }
    all_identical = all_identical && report.byte_identical != 0;
    std::printf("  %4lld | %7d | %6d | %6lld | %8.3f | %s\n",
                static_cast<long long>(report.iteration), report.devices,
                report.instructions, static_cast<long long>(report.bytes),
                report.fetch_ms, report.byte_identical ? "yes" : "NO");
  }
  int status = 0;
  ::waitpid(child, &status, 0);
  server.Stop();
  const bool child_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  std::printf("[planner] executor exit %s; store drained to %zu entries; %s\n",
              child_ok ? "clean" : "ABNORMAL", store.size(),
              all_identical ? "every fetched plan was byte-identical"
                            : "BYTE MISMATCH");
  return child_ok && all_identical ? 0 : 1;
}
