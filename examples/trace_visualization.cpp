// Trace visualization: export a planned iteration's execution as a Chrome trace.
//
// Plans one DynaPipe iteration and one uniform-1F1B packing iteration, executes
// both on the simulated cluster with trace recording, and writes
// dynapipe_trace.json / packing_trace.json to the working directory. Open them in
// chrome://tracing or https://ui.perfetto.dev to see the pipelines the paper draws
// in Figs. 6/8/11 — variable-width micro-batches, safety stocks, and transfer
// timing vs the rigid uniform pipeline.
//
// Run: ./build/examples/trace_visualization
#include <cstdio>
#include <fstream>

#include "src/data/flan_generator.h"
#include "src/data/minibatch_sampler.h"
#include "src/runtime/ground_truth.h"
#include "src/runtime/planner.h"
#include "src/sim/cluster_sim.h"
#include "src/sim/trace.h"

namespace {

using namespace dynapipe;

void RunAndDump(const char* path, const runtime::IterationPlan& plan,
                const model::ModelConfig& config, const model::HardwareSpec& hw,
                const model::ParallelConfig& parallel) {
  runtime::SimGroundTruth gt(config, hw, parallel, /*noise=*/0.05, 11);
  sim::TraceRecorder trace;
  sim::ClusterSimOptions opts;
  opts.static_memory_mb = gt.StaticMemoryMb();
  opts.trace = &trace;
  sim::ClusterSim cluster(parallel.pp, &gt, opts);
  const sim::SimResult res = cluster.Run(plan.replicas[0].exec_plan);
  if (res.deadlocked) {
    std::printf("%s: deadlocked (%s)\n", path, res.diagnostic.c_str());
    return;
  }
  std::ofstream out(path);
  out << trace.ToChromeTrace();
  std::printf("%-24s makespan %.1f ms, %zu spans, bubble %.1f%% -> wrote %s\n",
              path, res.makespan_ms, trace.spans().size(),
              100.0 * res.MeanIdleFraction(), path);
}

}  // namespace

int main() {
  const model::ModelConfig config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  const model::ParallelConfig parallel{1, 1, 4};
  const auto cost_model = cost::PipelineCostModel::Profile(config, hw, parallel, {});

  data::FlanGeneratorOptions gen;
  gen.num_samples = 2000;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  data::MiniBatchSamplerOptions sopts;
  sopts.global_batch_tokens = 32'768;
  sopts.max_input_len = 2048;
  data::MiniBatchSampler sampler(dataset, sopts);
  const auto minibatch = sampler.Next();

  const runtime::IterationPlanner planner(cost_model, {});
  const runtime::IterationPlan dyna = planner.PlanIteration(minibatch);
  if (!dyna.feasible) {
    std::printf("planning failed: %s\n", dyna.infeasible_reason.c_str());
    return 1;
  }
  RunAndDump("dynapipe_trace.json", dyna, config, hw, parallel);

  runtime::BaselineOptions base;
  base.batching = runtime::BaselineBatching::kPacking;
  base.microbatch_size = 1;
  base.max_input_len = 2048;
  base.recompute = model::RecomputeMode::kSelective;
  const runtime::IterationPlan packed =
      runtime::PlanBaselineIteration(cost_model, base, minibatch);
  if (packed.feasible) {
    RunAndDump("packing_trace.json", packed, config, hw, parallel);
  }

  std::printf("\nopen the .json files in chrome://tracing or ui.perfetto.dev\n");
  return 0;
}
