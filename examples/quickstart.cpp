// Quickstart: plan and execute one training iteration with DynaPipe.
//
// Walks the full pipeline on a small setup:
//   1. generate a multi-task mini-batch (synthetic FLANv2 mixture),
//   2. profile the cost model for a GPT-3.35B, 4-stage pipeline,
//   3. plan the iteration (ordering -> DP micro-batching -> adaptive schedule ->
//      communication plan -> recompute choice),
//   4. execute the plan on the simulated cluster and compare the planner's
//      prediction with the measurement.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "src/data/flan_generator.h"
#include "src/data/minibatch_sampler.h"
#include "src/runtime/ground_truth.h"
#include "src/runtime/planner.h"
#include "src/sim/cluster_sim.h"

int main() {
  using namespace dynapipe;

  // --- 1. Data: a 65536-token mini-batch from a heavy-tailed task mixture.
  data::FlanGeneratorOptions gen;
  gen.num_samples = 2000;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  data::MiniBatchSamplerOptions sampler_opts;
  sampler_opts.global_batch_tokens = 65'536;
  sampler_opts.max_input_len = 2048;
  data::MiniBatchSampler sampler(dataset, sampler_opts);
  const std::vector<data::Sample> minibatch = sampler.Next();
  std::printf("mini-batch: %zu samples, lengths %d..%d tokens\n", minibatch.size(),
              [&] {
                int32_t mn = 1 << 30;
                for (const auto& s : minibatch) mn = std::min(mn, s.input_len);
                return mn;
              }(),
              [&] {
                int32_t mx = 0;
                for (const auto& s : minibatch) mx = std::max(mx, s.input_len);
                return mx;
              }());

  // --- 2. Cost model: profile the simulated hardware at power-of-two grid points.
  const model::ModelConfig config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  const model::ParallelConfig parallel{1, 1, 4};  // 4 pipeline stages
  const auto cost_model =
      cost::PipelineCostModel::Profile(config, hw, parallel, {});
  std::printf("model: %s (%.2fB params), parallelism %s, activation budget %.0f MB\n",
              config.name.c_str(), config.total_params_billions(),
              parallel.ToString().c_str(), cost_model.ActivationBudgetMb());

  // --- 3. Plan the iteration.
  runtime::PlannerOptions popts;
  const runtime::IterationPlanner planner(cost_model, popts);
  const runtime::IterationPlan plan = planner.PlanIteration(minibatch);
  if (!plan.feasible) {
    std::printf("planning failed: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }
  std::printf("\nplan: %d micro-batches, recompute=%s, planned in %.1f ms\n",
              plan.total_microbatches(), model::RecomputeModeName(plan.recompute),
              plan.planning_time_ms);
  for (const auto& m : plan.replicas[0].micro_batches) {
    std::printf("  micro-batch %s  predicted %.1f ms, %.0f MB\n",
                m.shape.ToString().c_str(), m.predicted_time_ms,
                m.predicted_activation_mb);
  }
  std::printf("padding efficiency: %.3f\n", plan.padding.overall_efficiency());
  std::printf("schedule (per-stage op order):\n%s",
              plan.replicas[0].schedule.ToString().c_str());

  // --- 4. Execute on the simulated cluster.
  runtime::SimGroundTruth ground_truth(config, hw, parallel, /*noise=*/0.05, 1);
  sim::ClusterSimOptions sim_opts;
  sim_opts.static_memory_mb = ground_truth.StaticMemoryMb();
  sim_opts.memory_limit_mb = hw.usable_memory_mb();
  sim::ClusterSim cluster(parallel.pp, &ground_truth, sim_opts);
  const sim::SimResult result = cluster.Run(plan.replicas[0].exec_plan);
  if (result.deadlocked || result.oom) {
    std::printf("execution failed: %s\n", result.diagnostic.c_str());
    return 1;
  }
  std::printf("\npredicted iteration: %.1f ms | measured: %.1f ms (%.1f%% error)\n",
              plan.predicted_iteration_ms, result.makespan_ms,
              100.0 * std::abs(plan.predicted_iteration_ms - result.makespan_ms) /
                  result.makespan_ms);
  for (size_t d = 0; d < result.devices.size(); ++d) {
    std::printf("  stage %zu: busy %.1f ms, peak memory %.0f MB\n", d,
                result.devices[d].busy_ms, result.devices[d].peak_memory_mb);
  }
  std::printf("mean pipeline bubble: %.1f%%\n",
              100.0 * result.MeanIdleFraction());
  return 0;
}
