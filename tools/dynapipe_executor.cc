// dynapipe_executor: standalone executor daemon.
//
// Attaches to a plan publisher's instruction store — by Unix-socket path
// (one-shot or multiplexed connection) or POSIX shm segment name — fetches
// the execution plans published for its replica, runs each on its own
// ClusterSim, and heartbeats iteration completion back over the transport so
// the publisher's HeartbeatMonitor can flag stragglers. This is the paper's
// §3 deployment shape as an actual separate binary: the only thing that
// crosses the process boundary is serialized plan bytes one way and
// heartbeat frames the other. (Fetch consumes — each plan executes exactly
// once — so the publisher side of a multi-process run does not execute
// in-process; a live Trainer epoch consumes its own plans.)
//
//   dynapipe_executor --attach /tmp/trainer.sock --replica 0
//   dynapipe_executor --attach /tmp/trainer.sock --mux --replica 1 --iterations 50
//   dynapipe_executor --attach /dynapipe-store-1234-0 --replica 0   (shm)
//
// Open-ended runs (no --iterations) drain plans as they appear and exit
// cleanly once none arrives for --idle-timeout-ms.
//
// --demo <socket|mux|shm> is a self-contained two-process smoke (used by
// scripts/check.sh): the parent plans a tiny epoch and publishes it through
// the chosen backend while fork()ed children run the exact --attach path
// above — one deliberately slowed — and the parent verifies byte-identical
// delivery, full drain, and (on the wire backends) straggler attribution.
//
// --fault <spec> (or DYNAPIPE_FAULT in the environment) arms the fault
// injector (src/common/fault_injection.h): in --attach mode the fault fires
// in this process; combined with --demo it fires in one forked child and the
// parent verifies the full control loop — death declared, pending plans
// re-published to the survivors, store drained:
//
//   dynapipe_executor --demo socket --fault crash@1      (SIGKILL mid-epoch)
//   dynapipe_executor --demo mux --fault stall:1200@1    (wedge past deadline)
//
// On the shm backend liveness is shm-native (heartbeat slots in the segment
// header, replayed by a ShmHeartbeatPoller — no socket side-channel), and
// --demo shm --fault stall:1200@1 exercises the straggler *reaction* path: a
// longer epoch is published, one executor wedges mid-epoch, the publisher's
// monitor flags it from the shm beats, and a RebalanceCoordinator migrates
// part of its unfetched backlog to the fast executors, which drain it at
// spare iteration numbers.
//
// --demo shm --churn is the elastic-membership smoke: three executors start
// the epoch, one drains out mid-epoch through the slot's drain word while a
// fourth joins by bare announce, and the parent's MembershipCoordinator
// verifies both handoffs — backlog stolen for the joiner, backlog reposted
// off the drainer, every published plan executed exactly once.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/cost/pipeline_cost_model.h"
#include "src/data/flan_generator.h"
#include "src/data/minibatch_sampler.h"
#include "src/executor/executor.h"
#include "src/runtime/instruction_store.h"
#include "src/runtime/planner.h"
#include "src/service/heartbeat_monitor.h"
#include "src/service/membership.h"
#include "src/service/plan_serde.h"
#include "src/service/rebalance.h"
#include "src/service/recovery.h"
#include "src/transport/shm_store.h"
#include "src/transport/store_server.h"
#include "src/transport/transport.h"

namespace {

using namespace dynapipe;

// Strict numeric flag parsing: garbage must be a usage error, not a silent
// zero — `--replica x` quietly fetching replica 0's plans (fetch consumes!)
// would sabotage another executor.
int64_t ParseIntFlag(const char* flag, const char* value) {
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0') {
    std::fprintf(stderr, "%s wants an integer, got '%s'\n", flag, value);
    std::exit(1);
  }
  return parsed;
}

double ParseDoubleFlag(const char* flag, const char* value) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value, &end);
  if (errno != 0 || end == value || *end != '\0') {
    std::fprintf(stderr, "%s wants a number, got '%s'\n", flag, value);
    std::exit(1);
  }
  return parsed;
}

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s --attach <socket-path|shm-name> [options]\n"
      "       %s --demo <socket|mux|shm>\n"
      "\n"
      "  --attach <addr>       socket path (contains an interior '/') or shm\n"
      "                        segment name ('/name'); autodetected, see --endpoint\n"
      "  --endpoint <kind>     auto|socket|mux|shm (default auto)\n"
      "  --mux                 shorthand for --endpoint mux\n"
      "  --replica <n>         replica whose plans to fetch (default 0)\n"
      "  --start-iteration <n> first iteration to fetch (default 0)\n"
      "  --iterations <n>      iterations to run; omit to drain until idle\n"
      "  --slow-ms <ms>        artificial per-iteration delay (straggler demo)\n"
      "  --join                attach as a mid-epoch joiner: declare the join\n"
      "                        capability so the trainer's membership layer\n"
      "                        admits this replica and seeds it with stolen\n"
      "                        backlog (poll at the epoch's spare base)\n"
      "  --drain-after <n>     after n executed iterations, request a drain:\n"
      "                        hand the unfetched backlog back to the fleet\n"
      "                        and detach cleanly once acknowledged\n"
      "  --no-heartbeat        do not report completions back to the trainer\n"
      "  --poll-ms <ms>        publish-poll interval (default 1)\n"
      "  --idle-timeout-ms <ms> exit/open-ended or fail/counted after this\n"
      "                        long with no new plan (default 10000)\n"
      "  --attach-timeout-ms <ms> connect/attach retry budget (default 10000)\n"
      "  --fault <spec>        arm a fault: kind[:ms]@index[#site], kind in\n"
      "                        crash|stall|drop|corrupt (e.g. crash@1,\n"
      "                        stall:1200@1, corrupt@2). With --demo, fires\n"
      "                        in one forked executor and the parent checks\n"
      "                        detection + re-publish to survivors\n"
      "  --churn               with --demo shm: membership-churn smoke — one\n"
      "                        executor drains out mid-epoch, another joins,\n"
      "                        the parent verifies both handoffs\n"
      "  --metrics-dump        print this process's metrics (Prometheus text)\n"
      "                        on exit\n"
      "\n"
      "  DYNAPIPE_TRACE=<path> records plan-lifecycle spans: --attach mode\n"
      "  writes <path>.<pid>.part for the trace owner to merge; --demo merges\n"
      "  the parent and its forked executors into one Perfetto JSON at <path>\n",
      argv0, argv0);
}

int RunAttachMode(const executor::ExecutorOptions& options,
                  bool metrics_dump) {
  executor::ExecutorOptions opts = options;
  opts.observer = [](const executor::IterationOutcome& o) {
    std::printf("[executor] iter %lld: %d devices, %d microbatches, "
                "fetch %.3f ms, makespan %.2f ms (sim), wall %.2f ms\n",
                static_cast<long long>(o.iteration), o.plan->num_devices(),
                o.plan->num_microbatches, o.fetch_ms, o.sim->makespan_ms,
                o.exec_wall_ms);
  };
  const executor::ExecutorReport report = executor::RunExecutor(opts);
  // Daemon exit paths hand their spans to the trace owner (no-op when
  // DYNAPIPE_TRACE is unset) and optionally dump this process's metrics —
  // on failure too, since a failed run's counters are the interesting ones.
  common::Tracer::Instance().WritePartFile();
  if (metrics_dump) {
    std::fputs(common::MetricsRegistry::Instance().PrometheusText().c_str(),
               stdout);
  }
  if (!report.ok) {
    std::fprintf(stderr, "dynapipe_executor: %s\n", report.error.c_str());
    return 1;
  }
  std::printf(
      "[executor] done: %lld iterations, %lld instructions, "
      "%lld heartbeats%s (fetch %.2f ms, heartbeat %.2f ms total, "
      "%lld reconnects%s)\n",
      static_cast<long long>(report.iterations_run),
      static_cast<long long>(report.instructions_executed),
      static_cast<long long>(report.heartbeats_sent),
      report.heartbeat_supported ? "" : " (backend has no heartbeat channel)",
      report.fetch_ms_total, report.heartbeat_ms_total,
      static_cast<long long>(report.reconnects),
      report.evicted ? ", evicted" : "");
  return 0;
}

// ---- --demo: self-contained two-process smoke ----

constexpr int kDemoIterations = 3;
constexpr int kDemoReplicas = 3;
constexpr int kDemoSlowReplica = kDemoReplicas - 1;
// Wide margins so the CI gate never flakes on a loaded runner: flagging
// needs wall > 2*median + 25 ms, so a fast replica would have to stall
// ~30 ms+ to false-flag, and the slow one would be missed only if the
// fast median exceeded ~125 ms.
constexpr double kDemoSlowMs = 150.0;
// The shm stall demo publishes a longer epoch so the wedged replica has an
// unfetched backlog worth migrating when the straggler flag lands, and paces
// *every* executor so the backlog drains on a human timescale: a simulated
// iteration completes in microseconds, and an unpaced stalled replica would
// drain its whole share before the poller (5 ms cadence) could deliver the
// flag that triggers the migration. The pace is uniform, so it shifts no
// medians; the 1200 ms stall still towers over the 2*median+25 ms bar.
constexpr int kDemoStallIterations = 6;
constexpr double kDemoStallPaceMs = 60.0;

std::vector<sim::ExecutionPlan> PlanDemoEpoch() {
  cost::ProfileOptions profile;
  profile.max_microbatch_size = 16;
  profile.max_seq_len = 2048;
  const auto cost_model = cost::PipelineCostModel::Profile(
      model::ModelConfig::Gpt3_35B(), model::HardwareSpec{}, {1, 1, 4},
      profile);
  runtime::PlannerOptions popts;
  popts.max_tmax_candidates = 16;
  popts.tmax_interval_ms = 0.5;
  popts.max_microbatch_size = 16;
  popts.dynamic_recompute = false;
  runtime::IterationPlanner planner(cost_model, popts);

  data::FlanGeneratorOptions gen;
  gen.num_samples = 200;
  gen.length_cap = 512;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);
  data::MiniBatchSamplerOptions sopts;
  sopts.global_batch_tokens = 4096;
  sopts.max_input_len = 512;
  data::MiniBatchSampler sampler(dataset, sopts);

  std::vector<sim::ExecutionPlan> plans;
  for (int i = 0; i < kDemoIterations && sampler.HasNext(); ++i) {
    common::TraceSpan span("planned", "plan", i, /*replica=*/-1);
    runtime::IterationPlan plan = planner.PlanIteration(sampler.Next());
    if (!plan.feasible) {
      std::fprintf(stderr, "demo planning failed: %s\n",
                   plan.infeasible_reason.c_str());
      std::exit(1);
    }
    plans.push_back(std::move(plan.replicas[0].exec_plan));
  }
  if (plans.size() != kDemoIterations) {
    std::fprintf(stderr, "demo: dataset too small\n");
    std::exit(1);
  }
  return plans;
}

// Which replica the --demo --fault run injects into. Not the slow replica:
// the fault demo drops the straggler setup entirely (it verifies the failure
// loop, not attribution).
constexpr int kDemoFaultReplica = 1;

// The forked child's whole life: run the real --attach path against the
// parent, verifying each fetched plan re-encodes to bytes the parent
// published (inherited across the fork). Exit code is the verdict. In fault
// mode all children run open-ended — survivors must keep polling past their
// own share to pick up re-published plans at spare iteration numbers, so the
// byte check becomes set membership (a reposted plan keeps its bytes but not
// its original iteration key).
[[noreturn]] void RunDemoChild(const std::string& attach,
                               executor::AttachEndpoint endpoint,
                               int32_t replica,
                               const std::vector<std::string>& expected,
                               const common::FaultSpec* fault) {
  if (fault != nullptr && replica == kDemoFaultReplica) {
    common::FaultInjector::Instance().Arm(*fault);
  }
  const bool fault_mode = fault != nullptr;
  executor::ExecutorOptions opts;
  opts.attach = attach;
  opts.endpoint = endpoint;
  opts.replica = replica;
  opts.iterations = fault_mode ? -1 : kDemoIterations;
  opts.idle_timeout_ms = fault_mode ? 2000 : 10'000;
  if (fault_mode &&
      endpoint == executor::AttachEndpoint::kSharedMemory) {
    opts.slow_ms = kDemoStallPaceMs;  // uniform pacing (rebalance demo)
  } else if (!fault_mode && replica == kDemoSlowReplica) {
    opts.slow_ms = kDemoSlowMs;
  }
  bool bytes_ok = true;
  opts.observer = [&](const executor::IterationOutcome& o) {
    const std::string encoded = service::EncodeExecutionPlan(*o.plan);
    if (fault_mode) {
      bool member = false;
      for (const std::string& bytes : expected) {
        member = member || encoded == bytes;
      }
      bytes_ok = bytes_ok && member;
    } else {
      bytes_ok = bytes_ok && encoded == expected[static_cast<size_t>(o.iteration)];
    }
  };
  const executor::ExecutorReport report = executor::RunExecutor(opts);
  // Hand this child's spans to the parent (the trace owner) before any
  // verdict exit; no-op when tracing is off.
  common::Tracer::Instance().WritePartFile();
  if (!report.ok) {
    std::fprintf(stderr, "[executor %d] %s\n", replica, report.error.c_str());
    ::_exit(2);
  }
  if (!bytes_ok) {
    std::fprintf(stderr, "[executor %d] fetched plan bytes differ\n", replica);
    ::_exit(3);
  }
  if (report.evicted) {
    std::fprintf(stderr, "[executor %d] evicted after %lld iterations\n",
                 replica, static_cast<long long>(report.iterations_run));
  }
  ::_exit(0);
}

int RunDemo(const std::string& kind, const std::string& fault_text) {
  executor::AttachEndpoint endpoint;
  if (kind == "socket") {
    endpoint = executor::AttachEndpoint::kUnixSocket;
  } else if (kind == "mux") {
    endpoint = executor::AttachEndpoint::kUnixSocketMux;
  } else if (kind == "shm") {
    endpoint = executor::AttachEndpoint::kSharedMemory;
  } else {
    std::fprintf(stderr, "--demo wants socket|mux|shm, got '%s'\n",
                 kind.c_str());
    return 1;
  }
  const bool over_wire = endpoint != executor::AttachEndpoint::kSharedMemory;
  common::FaultSpec fault;
  const bool fault_mode = !fault_text.empty();
  if (fault_mode) {
    std::string error;
    if (!common::ParseFaultSpec(fault_text, &fault, &error)) {
      std::fprintf(stderr, "--fault: %s\n", error.c_str());
      return 1;
    }
    if (!over_wire && fault.kind != common::FaultKind::kStall) {
      // Crash/drop/corrupt demo the *death* loop, which needs the wire's
      // connection semantics; the shm fault demo is the *slowness* loop.
      std::fprintf(stderr, "--demo shm --fault: only 'stall' is supported "
                           "(shm-native straggler detection + rebalance)\n");
      return 1;
    }
  }
  // Shm + stall: the rebalance demo. Everything about it is shm-native —
  // detection, liveness, and the migration itself all live in the segment.
  const bool shm_rebalance = fault_mode && !over_wire;
  const int demo_iterations =
      shm_rebalance ? kDemoStallIterations : kDemoIterations;
  const std::string attach =
      over_wire
          ? "/tmp/dynapipe-exec-demo-" + std::to_string(::getpid()) + ".sock"
          : "/dynapipe-exec-demo-" + std::to_string(::getpid());

  std::printf("[demo] planning %d iterations...\n", kDemoIterations);
  const std::vector<sim::ExecutionPlan> plans = PlanDemoEpoch();
  std::vector<std::string> expected;
  for (const auto& plan : plans) {
    expected.push_back(service::EncodeExecutionPlan(plan));
  }

  // Fork the executors before any server thread exists; they poll/retry
  // while the parent brings the backend up.
  std::vector<pid_t> children;
  for (int32_t replica = 0; replica < kDemoReplicas; ++replica) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      RunDemoChild(attach, endpoint, replica, expected,
                   fault_mode ? &fault : nullptr);
    }
    children.push_back(pid);
  }

  // Trainer side: bring the store up, publish, watch heartbeats. In fault
  // mode the monitor gets liveness deadlines (well under the demo stall and
  // idle budgets) and a RecoveryCoordinator closes the loop: death declared
  // -> pending plans re-published to the survivors at spare iterations.
  service::HeartbeatMonitorOptions monitor_opts;
  monitor_opts.straggler_multiple = 2.0;
  monitor_opts.min_straggler_gap_ms = 25.0;
  // All replicas report every iteration, so gate straggler math on the full
  // set — a partial report set must never flag anyone.
  monitor_opts.expected_replicas = kDemoReplicas;
  if (fault_mode && over_wire) {
    monitor_opts.suspect_after_ms = 150.0;
    monitor_opts.dead_after_ms = 450.0;
    monitor_opts.connection_grace_ms = 0.0;  // a dropped connection is death
  }
  // The shm stall demo leaves the liveness deadlines off: a wedged-but-alive
  // replica is a straggler for the rebalancer, not a death for recovery.
  service::HeartbeatMonitor monitor(monitor_opts);
  std::optional<runtime::InstructionStore> store;
  std::optional<transport::UnixSocketTransport> transport_ep;
  std::optional<transport::InstructionStoreServer> server;
  std::optional<service::RecoveryCoordinator> recovery;
  std::shared_ptr<transport::ShmInstructionStore> shm;
  std::optional<service::RebalanceCoordinator> rebalance;
  // Declared after the coordinators: the poller stops feeding the monitor
  // before either of them unhooks.
  std::optional<transport::ShmHeartbeatPoller> poller;
  runtime::InstructionStoreInterface* publish_to = nullptr;
  if (over_wire) {
    store.emplace(runtime::InstructionStoreOptions{/*serialized=*/true,
                                                   /*capacity=*/0});
    store->set_heartbeat_sink(&monitor);
    transport_ep.emplace(attach);
    server.emplace(&*transport_ep, &*store);
    if (fault_mode) {
      service::RecoveryOptions ropts;
      for (int32_t replica = 0; replica < kDemoReplicas; ++replica) {
        ropts.replicas.push_back(replica);
      }
      ropts.spare_iteration_base = kDemoIterations;
      recovery.emplace(&*store, &monitor, ropts);
    }
    publish_to = &*store;
  } else {
    shm = transport::ShmInstructionStore::Create(attach,
                                                 transport::ShmStoreOptions{});
    publish_to = shm.get();
    if (shm_rebalance) {
      // One persistent flag moves work: the demo stall is a single long
      // wedge, so the streak threshold is 1; two plans migrate, split over
      // the two fast replicas.
      service::RebalanceOptions bopts;
      bopts.consecutive_flags = 1;
      bopts.max_moves_per_event = 2;
      bopts.hysteresis_iterations = kDemoStallIterations;
      for (int32_t replica = 0; replica < kDemoReplicas; ++replica) {
        bopts.replicas.push_back(replica);
      }
      bopts.spare_iteration_base = kDemoStallIterations;
      rebalance.emplace(shm.get(), &monitor, bopts);
    }
    // The shm liveness channel: executors stamp heartbeat slots inside the
    // segment; this poller replays them into the monitor. No socket exists
    // anywhere in this demo.
    poller.emplace(shm, &monitor);
  }
  for (int i = 0; i < demo_iterations; ++i) {
    for (int32_t replica = 0; replica < kDemoReplicas; ++replica) {
      publish_to->Push(i, replica, plans[static_cast<size_t>(i) % plans.size()]);
    }
  }
  if (fault_mode) {
    std::printf("[demo] published %dx%d plans on %s (%s), fault '%s' armed "
                "in replica %d\n",
                demo_iterations, kDemoReplicas, attach.c_str(),
                executor::EndpointName(endpoint), fault_text.c_str(),
                kDemoFaultReplica);
  } else {
    std::printf("[demo] published %dx%d plans on %s (%s), replica %d slowed "
                "%.0f ms/iter\n",
                kDemoIterations, kDemoReplicas, attach.c_str(),
                executor::EndpointName(endpoint), kDemoSlowReplica,
                kDemoSlowMs);
  }

  // After reaping, the parent owns the trace: fold its own spans (planned /
  // published) plus every child's .part file into one Perfetto JSON.
  const auto write_merged_trace = [] {
    if (common::Tracer::enabled() &&
        common::Tracer::Instance().WriteMergedTrace()) {
      std::printf("[demo] merged trace written to %s\n",
                  common::Tracer::Instance().path().c_str());
    }
  };

  const bool expect_stats =
      endpoint == executor::AttachEndpoint::kUnixSocketMux && !fault_mode;
  if (over_wire && !fault_mode) {
    // Mid-epoch stats pull: every stats-capable attached connection (the mux
    // children; one-shot socket children attach without the capability bit)
    // answers a server-initiated kStatsRequest with its process-wide
    // snapshot while still executing. The children are racing us to attach,
    // so retry briefly: the slowed replica stays attached for
    // kDemoIterations * kDemoSlowMs, which bounds how long a hit takes.
    std::vector<transport::RemoteReplicaStats> remote;
    const auto stats_deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
    for (;;) {
      remote = server->CollectRemoteStats(/*timeout_ms=*/1000);
      if (!remote.empty() ||
          std::chrono::steady_clock::now() >= stats_deadline) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    for (const transport::RemoteReplicaStats& stats : remote) {
      std::string replicas;
      for (const int32_t replica : stats.replicas) {
        if (!replicas.empty()) {
          replicas += ",";
        }
        replicas += std::to_string(replica);
      }
      std::printf("[demo] stats: replica(s) [%s] fetched %lld plan(s), "
                  "%lld frame(s) pushed so far\n",
                  replicas.c_str(),
                  static_cast<long long>(
                      stats.snapshot.counter("store_mux_fetch_total")),
                  static_cast<long long>(
                      stats.snapshot.counter("store_mux_push_total")));
    }
    std::printf("[demo] stats channel: %zu executor connection(s) reported\n",
                remote.size());
    if (expect_stats && remote.empty()) {
      std::fprintf(stderr, "[demo] no mux executor answered the stats pull\n");
      return 1;
    }
  }

  bool ok = true;
  for (size_t c = 0; c < children.size(); ++c) {
    const pid_t child = children[c];
    int status = 0;
    if (::waitpid(child, &status, 0) != child) {
      std::fprintf(stderr, "[demo] waitpid for executor %zu failed\n", c);
      ok = false;
      continue;
    }
    const bool is_fault_child =
        fault_mode && static_cast<int>(c) == kDemoFaultReplica;
    if (is_fault_child && fault.kind == common::FaultKind::kCrash) {
      // The injected SIGKILL is the expected death.
      if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
        std::fprintf(stderr,
                     "[demo] fault executor should have died by SIGKILL, "
                     "status %d\n",
                     status);
        ok = false;
      }
    } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      // Covers the stalled fault child too: it must wake into the eviction
      // fence and exit *cleanly* (open-ended run, evicted = ok).
      std::fprintf(stderr, "[demo] executor pid %d exited abnormally (%d)\n",
                   static_cast<int>(child), status);
      ok = false;
    }
  }
  if (publish_to->size() != 0) {
    std::fprintf(stderr, "[demo] %zu plans left undrained\n",
                 publish_to->size());
    ok = false;
  }

  // Reaping finished the epoch, but shm heartbeat delivery is asynchronous:
  // the last beats are already in the segment slots, waiting for the poller
  // thread. Wait for the full count (bounded) before reading the monitor.
  if (poller.has_value()) {
    const int64_t expected_beats =
        static_cast<int64_t>(demo_iterations) * kDemoReplicas;
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
    while (monitor.total_heartbeats() < expected_beats &&
           std::chrono::steady_clock::now() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  if (shm_rebalance) {
    const service::RebalanceReport breport = rebalance->report();
    const service::IterationHeartbeatStats stalled =
        monitor.ForIteration(fault.at);
    std::string stragglers;
    for (const int32_t replica : stalled.stragglers) {
      if (!stragglers.empty()) {
        stragglers += ",";
      }
      stragglers += std::to_string(replica);
    }
    std::printf("[demo] shm straggler reaction: iter %lld stragglers=[%s] "
                "(%d/%d reported), rebalance events=%lld moved=%lld\n",
                static_cast<long long>(fault.at), stragglers.c_str(),
                stalled.replicas_reported, stalled.replicas_expected,
                static_cast<long long>(breport.events),
                static_cast<long long>(breport.moved_iterations));
    if (stalled.stragglers != std::vector<int32_t>{kDemoFaultReplica}) {
      std::fprintf(stderr,
                   "[demo] expected exactly replica %d flagged via the shm "
                   "heartbeat slots\n",
                   kDemoFaultReplica);
      ok = false;
    }
    if (breport.events < 1 || breport.moved_iterations < 1) {
      std::fprintf(stderr, "[demo] no rebalance happened\n");
      ok = false;
    }
    if (breport.rebalanced_replicas !=
        std::vector<int32_t>{kDemoFaultReplica}) {
      std::fprintf(stderr, "[demo] only replica %d should have shed work\n",
                   kDemoFaultReplica);
      ok = false;
    }
    const int64_t expected_beats =
        static_cast<int64_t>(demo_iterations) * kDemoReplicas;
    if (monitor.total_heartbeats() != expected_beats) {
      std::fprintf(stderr,
                   "[demo] %lld heartbeats delivered, expected %lld — every "
                   "plan (migrated included) reports exactly once\n",
                   static_cast<long long>(monitor.total_heartbeats()),
                   static_cast<long long>(expected_beats));
      ok = false;
    }
    write_merged_trace();
    std::printf("[demo] %s\n",
                ok ? "ok: stall flagged via shm heartbeat slots, backlog "
                     "rebalanced to fast replicas, epoch drained"
                   : "FAILED");
    return ok ? 0 : 1;
  }

  if (fault_mode) {
    const service::RecoveryReport rreport = recovery->report();
    std::printf("[demo] recovery: dead=[");
    for (size_t i = 0; i < rreport.dead_replicas.size(); ++i) {
      std::printf("%s%d", i == 0 ? "" : ",", rreport.dead_replicas[i]);
    }
    std::printf("] replanned=%lld dropped=%lld recovery=%.2f ms\n",
                static_cast<long long>(rreport.replanned_iterations),
                static_cast<long long>(rreport.dropped_iterations),
                rreport.recovery_ms);
    if (rreport.dead_replicas !=
        std::vector<int32_t>{kDemoFaultReplica}) {
      std::fprintf(stderr,
                   "[demo] expected exactly replica %d declared dead\n",
                   kDemoFaultReplica);
      ok = false;
    }
    if (rreport.dropped_iterations != 0) {
      std::fprintf(stderr, "[demo] recovery dropped plans despite live "
                           "survivors\n");
      ok = false;
    }
    if (server.has_value()) {
      server->Stop();
    }
    write_merged_trace();
    std::printf("[demo] %s\n",
                ok ? "ok: fault fired, death declared, backlog re-published, "
                     "survivors drained"
                   : "FAILED");
    return ok ? 0 : 1;
  }

  // Straggler attribution works on every backend now: the wire backends
  // heartbeat through the server's sink, shm through the segment's heartbeat
  // slots and the poller.
  std::printf("  iter | replicas | median ms | max ms | stragglers\n");
  for (int i = 0; i < kDemoIterations; ++i) {
    const service::IterationHeartbeatStats stats = monitor.ForIteration(i);
    std::string stragglers;
    for (const int32_t replica : stats.stragglers) {
      if (!stragglers.empty()) {
        stragglers += ",";
      }
      stragglers += std::to_string(replica);
    }
    std::printf("  %4d | %8d | %9.2f | %6.2f | %s\n", i,
                stats.replicas_reported, stats.median_wall_ms,
                stats.max_wall_ms,
                stragglers.empty() ? "-" : stragglers.c_str());
    ok = ok && stats.replicas_reported == kDemoReplicas;
    ok = ok && stats.stragglers == std::vector<int32_t>{kDemoSlowReplica};
  }
  ok = ok && monitor.total_heartbeats() == kDemoIterations * kDemoReplicas;
  if (server.has_value()) {
    server->Stop();
  }
  write_merged_trace();
  std::printf("[demo] %s\n", ok ? "ok: byte-identical plans, full drain, "
                                  "straggler attributed"
                                : "FAILED");
  return ok ? 0 : 1;
}

// ---- --demo shm --churn: elastic membership smoke ----
//
// Three executors (0..2) start a paced shm epoch. Mid-epoch, replica 2
// requests a drain through its heartbeat slot's drain word after two
// iterations, and replica 3 joins by bare AnnounceReplica, polling at the
// spare base. The parent runs the elastic control plane (monitor ->
// recovery -> membership, one shared spare-key allocator) and verifies:
// the joiner was admitted and seeded with stolen backlog, the drainer's
// backlog was reposted to the survivors and its drain acknowledged, the
// store fully drained, and every published plan executed exactly once
// (heartbeat count == plans published).
constexpr int kDemoChurnDrainReplica = kDemoReplicas - 1;
constexpr int kDemoChurnDrainAfter = 2;
constexpr int kDemoChurnJoinReplica = kDemoReplicas;

[[noreturn]] void RunChurnChild(const std::string& attach, int32_t replica,
                                const std::vector<std::string>& expected) {
  executor::ExecutorOptions opts;
  opts.attach = attach;
  opts.endpoint = executor::AttachEndpoint::kSharedMemory;
  opts.replica = replica;
  opts.iterations = -1;  // open-ended: handed-off work lands at spare keys
  opts.idle_timeout_ms = 2000;
  opts.slow_ms = kDemoStallPaceMs;  // pace so the churn happens mid-epoch
  if (replica == kDemoChurnJoinReplica) {
    opts.join = true;
    opts.start_iteration = kDemoStallIterations;  // the spare base
  }
  if (replica == kDemoChurnDrainReplica) {
    opts.drain_after = kDemoChurnDrainAfter;
  }
  // Every plan an executor sees — its own share, stolen, or reposted — must
  // re-encode to bytes the parent published (set membership: a moved plan
  // keeps its bytes but not its original iteration key).
  bool bytes_ok = true;
  opts.observer = [&](const executor::IterationOutcome& o) {
    const std::string encoded = service::EncodeExecutionPlan(*o.plan);
    bool member = false;
    for (const std::string& bytes : expected) {
      member = member || encoded == bytes;
    }
    bytes_ok = bytes_ok && member;
  };
  const executor::ExecutorReport report = executor::RunExecutor(opts);
  common::Tracer::Instance().WritePartFile();
  if (!report.ok) {
    std::fprintf(stderr, "[executor %d] %s\n", replica, report.error.c_str());
    ::_exit(2);
  }
  if (!bytes_ok) {
    std::fprintf(stderr, "[executor %d] fetched plan bytes differ\n", replica);
    ::_exit(3);
  }
  if (replica == kDemoChurnDrainReplica &&
      (!report.drained || report.evicted)) {
    std::fprintf(stderr,
                 "[executor %d] drain handshake failed (drained=%d "
                 "evicted=%d)\n",
                 replica, report.drained ? 1 : 0, report.evicted ? 1 : 0);
    ::_exit(4);
  }
  if (replica == kDemoChurnJoinReplica && report.iterations_run < 1) {
    std::fprintf(stderr, "[executor %d] joiner fetched no plans\n", replica);
    ::_exit(5);
  }
  ::_exit(0);
}

int RunChurnDemo() {
  const std::string attach =
      "/dynapipe-exec-churn-" + std::to_string(::getpid());
  std::printf("[demo] planning %d iterations...\n", kDemoIterations);
  const std::vector<sim::ExecutionPlan> plans = PlanDemoEpoch();
  std::vector<std::string> expected;
  for (const auto& plan : plans) {
    expected.push_back(service::EncodeExecutionPlan(plan));
  }

  // Fork the executors (joiner included) before the segment exists; they
  // poll/retry while the parent brings the control plane up.
  std::vector<pid_t> children;
  for (int32_t replica = 0; replica <= kDemoChurnJoinReplica; ++replica) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      RunChurnChild(attach, replica, expected);
    }
    children.push_back(pid);
  }

  service::HeartbeatMonitorOptions monitor_opts;
  monitor_opts.straggler_multiple = 2.0;
  monitor_opts.min_straggler_gap_ms = 25.0;
  // Membership re-gates this live: 4 while the joiner overlaps the original
  // fleet, 3 after the drainer leaves.
  monitor_opts.expected_replicas = kDemoReplicas;
  service::HeartbeatMonitor monitor(monitor_opts);
  std::shared_ptr<transport::ShmInstructionStore> shm =
      transport::ShmInstructionStore::Create(attach,
                                             transport::ShmStoreOptions{});
  // Publish the whole epoch before the poller starts delivering events: the
  // joiner announces the moment the segment exists, and its admission steal
  // should find a backlog worth sharing.
  for (int i = 0; i < kDemoStallIterations; ++i) {
    for (int32_t replica = 0; replica < kDemoReplicas; ++replica) {
      shm->Push(i, replica, plans[static_cast<size_t>(i) % plans.size()]);
    }
  }
  // One spare-key allocator across recovery and membership, so a crash
  // repost and a churn handoff can never pick colliding destination keys.
  auto spare_keys =
      std::make_shared<service::SpareKeyAllocator>(kDemoStallIterations);
  service::RecoveryOptions ropts;
  for (int32_t replica = 0; replica < kDemoReplicas; ++replica) {
    ropts.replicas.push_back(replica);
  }
  ropts.spare_iteration_base = kDemoStallIterations;
  ropts.spare_keys = spare_keys;
  service::RecoveryCoordinator recovery(shm.get(), &monitor, ropts);
  service::MembershipOptions mopts;
  for (int32_t replica = 0; replica < kDemoReplicas; ++replica) {
    mopts.initial_replicas.push_back(replica);
  }
  mopts.spare_keys = spare_keys;
  transport::ShmInstructionStore* raw_shm = shm.get();
  mopts.drain_ack = [raw_shm](int32_t replica) {
    raw_shm->AcknowledgeDrain(replica);
  };
  service::MembershipCoordinator membership(shm.get(), &monitor, &recovery,
                                            mopts);
  // Declared last: the poller stops feeding the monitor before membership
  // and recovery unhook.
  transport::ShmHeartbeatPoller poller(shm, &monitor);

  std::printf("[demo] published %dx%d plans on %s (shm): replica %d drains "
              "after %d iterations, replica %d joins at the spare base\n",
              kDemoStallIterations, kDemoReplicas, attach.c_str(),
              kDemoChurnDrainReplica, kDemoChurnDrainAfter,
              kDemoChurnJoinReplica);

  bool ok = true;
  for (size_t c = 0; c < children.size(); ++c) {
    const pid_t child = children[c];
    int status = 0;
    if (::waitpid(child, &status, 0) != child) {
      std::fprintf(stderr, "[demo] waitpid for executor %zu failed\n", c);
      ok = false;
      continue;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "[demo] executor pid %d exited abnormally (%d)\n",
                   static_cast<int>(child), status);
      ok = false;
    }
  }
  if (shm->size() != 0) {
    std::fprintf(stderr, "[demo] %zu plans left undrained\n", shm->size());
    ok = false;
  }

  // The last beats are already in the segment slots, waiting for the poller
  // thread; wait for the full count (bounded) before reading the monitor.
  const int64_t expected_beats =
      static_cast<int64_t>(kDemoStallIterations) * kDemoReplicas;
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
  while (monitor.total_heartbeats() < expected_beats &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const service::MembershipReport mreport = membership.report();
  std::string joined, drained;
  for (const int32_t replica : mreport.joined) {
    joined += (joined.empty() ? "" : ",") + std::to_string(replica);
  }
  for (const int32_t replica : mreport.drained) {
    drained += (drained.empty() ? "" : ",") + std::to_string(replica);
  }
  std::printf("[demo] membership: joined=[%s] drained=[%s] stolen=%lld "
              "reposted=%lld, %lld/%lld heartbeats\n",
              joined.c_str(), drained.c_str(),
              static_cast<long long>(mreport.join_stolen_iterations),
              static_cast<long long>(mreport.drain_reposted_iterations),
              static_cast<long long>(monitor.total_heartbeats()),
              static_cast<long long>(expected_beats));
  if (mreport.joined != std::vector<int32_t>{kDemoChurnJoinReplica}) {
    std::fprintf(stderr, "[demo] expected exactly replica %d admitted\n",
                 kDemoChurnJoinReplica);
    ok = false;
  }
  if (mreport.drained != std::vector<int32_t>{kDemoChurnDrainReplica}) {
    std::fprintf(stderr, "[demo] expected exactly replica %d drained\n",
                 kDemoChurnDrainReplica);
    ok = false;
  }
  if (mreport.join_stolen_iterations < 1) {
    std::fprintf(stderr, "[demo] the joiner was seeded no backlog\n");
    ok = false;
  }
  if (mreport.drain_reposted_iterations < 1) {
    std::fprintf(stderr, "[demo] the drainer handed off no backlog\n");
    ok = false;
  }
  if (monitor.total_heartbeats() != expected_beats) {
    std::fprintf(stderr,
                 "[demo] %lld heartbeats delivered, expected %lld — every "
                 "plan (stolen and reposted included) reports exactly once\n",
                 static_cast<long long>(monitor.total_heartbeats()),
                 static_cast<long long>(expected_beats));
    ok = false;
  }
  if (common::Tracer::enabled() &&
      common::Tracer::Instance().WriteMergedTrace()) {
    std::printf("[demo] merged trace written to %s\n",
                common::Tracer::Instance().path().c_str());
  }
  std::printf("[demo] %s\n",
              ok ? "ok: joiner admitted and seeded, drainer acknowledged and "
                   "handed off, epoch drained exactly once"
                 : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // DYNAPIPE_FAULT in the environment arms this process directly (the way a
  // test harness injects into a spawned daemon); --fault below does the same
  // for --attach mode, or selects the demo's injected child.
  common::FaultInjector::Instance().ArmFromEnv();
  executor::ExecutorOptions options;
  std::string demo;
  std::string fault_text;
  bool churn = false;
  bool metrics_dump = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--attach") {
      options.attach = next();
    } else if (arg == "--endpoint") {
      const std::string kind = next();
      if (kind == "auto") {
        options.endpoint = executor::AttachEndpoint::kAuto;
      } else if (kind == "socket") {
        options.endpoint = executor::AttachEndpoint::kUnixSocket;
      } else if (kind == "mux") {
        options.endpoint = executor::AttachEndpoint::kUnixSocketMux;
      } else if (kind == "shm") {
        options.endpoint = executor::AttachEndpoint::kSharedMemory;
      } else {
        std::fprintf(stderr, "unknown endpoint '%s'\n", kind.c_str());
        return 1;
      }
    } else if (arg == "--mux") {
      options.endpoint = executor::AttachEndpoint::kUnixSocketMux;
    } else if (arg == "--replica") {
      options.replica = static_cast<int32_t>(ParseIntFlag("--replica", next()));
    } else if (arg == "--start-iteration") {
      options.start_iteration = ParseIntFlag("--start-iteration", next());
    } else if (arg == "--iterations") {
      options.iterations = ParseIntFlag("--iterations", next());
    } else if (arg == "--slow-ms") {
      options.slow_ms = ParseDoubleFlag("--slow-ms", next());
    } else if (arg == "--join") {
      options.join = true;
    } else if (arg == "--drain-after") {
      options.drain_after = ParseIntFlag("--drain-after", next());
    } else if (arg == "--no-heartbeat") {
      options.heartbeat = false;
    } else if (arg == "--poll-ms") {
      options.poll_interval_ms =
          static_cast<int>(ParseIntFlag("--poll-ms", next()));
    } else if (arg == "--idle-timeout-ms") {
      options.idle_timeout_ms =
          static_cast<int>(ParseIntFlag("--idle-timeout-ms", next()));
    } else if (arg == "--attach-timeout-ms") {
      options.attach_timeout_ms =
          static_cast<int>(ParseIntFlag("--attach-timeout-ms", next()));
    } else if (arg == "--demo") {
      demo = next();
    } else if (arg == "--fault") {
      fault_text = next();
    } else if (arg == "--churn") {
      churn = true;
    } else if (arg == "--metrics-dump") {
      metrics_dump = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      PrintUsage(argv[0]);
      return 1;
    }
  }
  if (!demo.empty()) {
    if (churn) {
      if (demo != "shm") {
        std::fprintf(stderr, "--churn: only the shm demo supports "
                             "membership churn\n");
        return 1;
      }
      if (!fault_text.empty()) {
        std::fprintf(stderr, "--churn and --fault are separate demos\n");
        return 1;
      }
      return RunChurnDemo();
    }
    return RunDemo(demo, fault_text);
  }
  if (!fault_text.empty()) {
    common::FaultSpec fault;
    std::string error;
    if (!common::ParseFaultSpec(fault_text, &fault, &error)) {
      std::fprintf(stderr, "--fault: %s\n", error.c_str());
      return 1;
    }
    common::FaultInjector::Instance().Arm(fault);
  }
  if (options.attach.empty()) {
    PrintUsage(argv[0]);
    return 1;
  }
  return RunAttachMode(options, metrics_dump);
}
