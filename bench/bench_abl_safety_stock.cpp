// Ablation (DESIGN.md / Fig. 11): the safety-stock vs memory trade-off. Sweeps the
// per-device activation-memory limit handed to the memory-aware adaptive scheduler
// (as a multiple of one micro-batch's activation) and reports makespan under
// noise, realized memory high-water, and mean safety-stock slack. Tighter limits
// force delayed injection (Fig. 11c): lower memory, longer makespan.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/schedule/adaptive_scheduler.h"
#include "src/schedule/executor_simulator.h"
#include "src/schedule/one_f_one_b.h"

int main() {
  using namespace dynapipe;
  using namespace dynapipe::schedule;
  bench::PrintHeader("Ablation", "injection depth: safety stock vs memory (Fig. 11)");

  constexpr int32_t kStages = 4;
  constexpr int32_t kMicrobatches = 16;
  constexpr int kTrials = 30;
  constexpr double kSigma = 0.5;

  TextTable table({"mem_limit(x act)", "makespan(norm)", "high_water(x act)",
                   "mean_slack_ms"});

  // Reference: noiseless 1F1B.
  const OpCosts base = OpCosts::Uniform(kStages, kMicrobatches, 1.0, 2.0, 1.0);
  const double ref =
      SimulateSchedule(OneFOneBSchedule(kMicrobatches, kStages), base).makespan_ms;

  for (const double limit_factor : {1.05, 2.05, 3.05, 4.05, 6.05, 16.0}) {
    RunningStats makespan;
    RunningStats slack;
    double high_water = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) + 7);
      OpCosts noisy = base;
      for (int32_t j = 0; j < kStages; ++j) {
        for (int32_t i = 0; i < kMicrobatches; ++i) {
          const double f = std::max(0.05, 1.0 + rng.NextGaussian(0.0, kSigma));
          noisy.fwd_ms[j][i] *= f;
          noisy.bwd_ms[j][i] *= f;
        }
      }
      AdaptiveScheduleOptions opts;
      opts.device_limit_mb.assign(kStages, limit_factor);
      const auto sched = MemoryAwareAdaptiveSchedule(noisy, opts);
      if (!sched.has_value()) {
        continue;
      }
      const SimulatedTimeline tl = SimulateSchedule(*sched, noisy);
      makespan.Add(tl.makespan_ms);
      const auto hw = ScheduleMemoryHighWater(*sched, noisy);
      // Normalize realized high water by the (unit) activation size.
      high_water = std::max(high_water, *std::max_element(hw.begin(), hw.end()));
      for (int32_t i = 0; i < kMicrobatches; ++i) {
        slack.Add(tl.fwd[kStages - 1][i].slack_ms());
      }
    }
    table.AddRow({TextTable::Fmt(limit_factor, 2),
                  TextTable::Fmt(makespan.mean() / ref, 3),
                  TextTable::Fmt(high_water, 2), TextTable::Fmt(slack.mean(), 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("takeaway: raising the memory limit deepens injection (larger high "
              "water), building safety stock (slack) that absorbs noise — lower "
              "makespan. Tight limits recover 1F1B-like memory at 1F1B-like "
              "fragility (Fig. 11's trade-off).\n");
  return 0;
}
