// Fig. 16: ablation study.
//  (a) Micro-batching methods on T5, max seq len 4096, global batch 65536, in a
//      configuration without pipelining (isolates batching): MLM+DS packing,
//      token-based with sorted ordering TB(S), token-based with TSP ordering
//      TB(T), and the DP algorithm with both orderings DP(S) / DP(T).
//      Shape: TB beats MLM+DS clearly; DP beats TB; S vs T barely matters.
//  (b) Pipeline schedules on GPT with 4 pipeline stages: 1F1B vs adaptive without
//      micro-batch reordering vs full adaptive, at global batch 16384 and 65536.
//      Shape: adaptive gains several percent over 1F1B; reordering helps more at
//      the smaller global batch.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace {

using namespace dynapipe;

void MicroBatchingAblation() {
  const model::ModelConfig config = model::ModelConfig::T5_11B();
  const model::HardwareSpec hw;
  // No pipelining: tp-only on 8 GPUs (the paper notes the grid-searched optimum
  // for this setting has no pipeline parallelism).
  const model::ParallelConfig parallel{1, 8, 1};
  runtime::Trainer trainer(config, hw, parallel, bench::BenchProfile());
  const data::Dataset dataset = bench::BenchDataset();
  runtime::TrainerOptions topts;
  topts.global_batch_tokens = 65'536;
  topts.max_input_len = 4096;
  topts.max_iterations = 2;

  TextTable table({"method", "tokens/s"});

  double packing = 0.0;
  for (const int32_t mbs : {1, 2, 4, 8}) {
    for (const auto mode : {model::RecomputeMode::kNone,
                            model::RecomputeMode::kSelective}) {
      runtime::BaselineOptions base;
      base.batching = runtime::BaselineBatching::kPacking;
      base.microbatch_size = mbs;
      base.recompute = mode;
      const runtime::EpochResult r = trainer.RunEpochBaseline(dataset, base, topts);
      if (r.feasible) {
        packing = std::max(packing, r.tokens_per_second());
      }
    }
  }
  table.AddRow({"MLM+DS", TextTable::Fmt(packing, 0)});

  for (const auto ordering :
       {mb::OrderingMethod::kSortByLength, mb::OrderingMethod::kTsp}) {
    double best = 0.0;
    for (const int64_t tokens : {2048ll, 4096ll, 8192ll, 16'384ll}) {
      runtime::BaselineOptions base;
      base.batching = runtime::BaselineBatching::kTokenBased;
      base.tokens_per_microbatch = tokens;
      base.ordering = ordering;
      base.recompute = model::RecomputeMode::kSelective;
      const runtime::EpochResult r = trainer.RunEpochBaseline(dataset, base, topts);
      if (r.feasible) {
        best = std::max(best, r.tokens_per_second());
      }
    }
    table.AddRow({ordering == mb::OrderingMethod::kSortByLength ? "TB (S)" : "TB (T)",
                  TextTable::Fmt(best, 0)});
  }

  for (const auto ordering :
       {mb::OrderingMethod::kSortByLength, mb::OrderingMethod::kTsp}) {
    runtime::PlannerOptions popts = bench::BenchPlanner();
    popts.ordering = ordering;
    const runtime::EpochResult r = trainer.RunEpoch(dataset, popts, topts);
    table.AddRow({ordering == mb::OrderingMethod::kSortByLength ? "DP (S)" : "DP (T)",
                  r.feasible ? TextTable::Fmt(r.tokens_per_second(), 0) : "OOM"});
  }

  std::printf("(a) micro-batching methods — %s, %s, max_seq_len 4096\n%s\n",
              config.name.c_str(), parallel.ToString().c_str(),
              table.ToString().c_str());
}

void ScheduleAblation() {
  const model::ModelConfig config = model::ModelConfig::Gpt6_7B();
  const model::HardwareSpec hw;
  const model::ParallelConfig parallel{2, 1, 4};  // 4 pipeline stages, as in §8.4
  runtime::Trainer trainer(config, hw, parallel, bench::BenchProfile());
  const data::Dataset dataset = bench::BenchDataset();

  TextTable table({"global_batch", "1F1B", "adaptive(no reorder)", "adaptive",
                   "adaptive_vs_1F1B"});
  for (const int64_t batch : {16'384ll, 65'536ll}) {
    runtime::TrainerOptions topts;
    topts.global_batch_tokens = batch;
    topts.max_input_len = 4096;
    topts.max_iterations = 3;
    topts.noise_stddev = 0.1;  // schedule robustness matters under jitter

    runtime::PlannerOptions p_1f1b = bench::BenchPlanner();
    p_1f1b.adaptive_schedule = false;
    p_1f1b.reorder_microbatches = false;
    runtime::PlannerOptions p_noreorder = bench::BenchPlanner();
    p_noreorder.reorder_microbatches = false;
    runtime::PlannerOptions p_full = bench::BenchPlanner();

    const runtime::EpochResult r1 = trainer.RunEpoch(dataset, p_1f1b, topts);
    const runtime::EpochResult r2 = trainer.RunEpoch(dataset, p_noreorder, topts);
    const runtime::EpochResult r3 = trainer.RunEpoch(dataset, p_full, topts);
    const double t1 = r1.feasible ? r1.tokens_per_second() : 0.0;
    const double t3 = r3.feasible ? r3.tokens_per_second() : 0.0;
    table.AddRow({std::to_string(batch), TextTable::Fmt(t1, 0),
                  r2.feasible ? TextTable::Fmt(r2.tokens_per_second(), 0) : "OOM",
                  TextTable::Fmt(t3, 0),
                  t1 > 0 ? TextTable::Fmt((t3 / t1 - 1.0) * 100.0, 1) + "%" : "-"});
  }
  std::printf("(b) pipeline schedules — %s, %s, dynamic micro-batches\n%s\n",
              config.name.c_str(), parallel.ToString().c_str(),
              table.ToString().c_str());
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 16", "ablation study");
  MicroBatchingAblation();
  ScheduleAblation();
  std::printf("paper reference: (a) TB >> MLM+DS, DP > TB, S vs T negligible; "
              "(b) adaptive +7.4-10.1%% over 1F1B, reordering matters more at "
              "small global batch (Fig. 16)\n");
  return 0;
}
