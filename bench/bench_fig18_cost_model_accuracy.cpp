// Fig. 18: prediction accuracy of the iteration-time and peak-memory cost models.
// Collects (estimated, measured) pairs across configurations and reports the mean
// percentage error per model family. The shapes to reproduce: low single-digit
// memory error for both; iteration-time error higher for GPT than T5 (the paper
// attributes GPT's outliers to the un-modelled data-parallel allreduce — our
// planner likewise excludes it from predictions).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace {

using namespace dynapipe;

struct Accuracy {
  std::vector<double> pred_time;
  std::vector<double> meas_time;
  std::vector<double> pred_mem;
  std::vector<double> meas_mem;
};

void Collect(model::ModelArch arch, const model::ParallelConfig& parallel,
             int64_t batch, int32_t seq, Accuracy& acc) {
  const model::ModelConfig config =
      model::ModelConfig::ForCluster(arch, parallel.num_gpus());
  const model::HardwareSpec hw;
  runtime::Trainer trainer(config, hw, parallel, bench::BenchProfile());
  const data::Dataset dataset = bench::BenchDataset();
  runtime::TrainerOptions topts;
  topts.global_batch_tokens = batch;
  topts.max_input_len = seq;
  topts.max_iterations = 3;
  topts.noise_stddev = 0.05;
  const runtime::EpochResult r =
      trainer.RunEpoch(dataset, bench::BenchPlanner(), topts);
  if (!r.feasible) {
    return;
  }
  for (const auto& rec : r.records) {
    acc.pred_time.push_back(rec.predicted_ms);
    acc.meas_time.push_back(rec.measured_ms);
    acc.pred_mem.push_back(rec.predicted_peak_mb);
    acc.meas_mem.push_back(rec.measured_peak_mb);
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 18", "cost model prediction accuracy");

  Accuracy gpt;
  // GPT configurations exercise data parallelism (whose allreduce the cost model
  // deliberately does not cover), pipeline-only, and mixed setups.
  Collect(model::ModelArch::kGpt, {1, 1, 4}, 32'768, 2048, gpt);
  Collect(model::ModelArch::kGpt, {2, 1, 2}, 32'768, 2048, gpt);
  Collect(model::ModelArch::kGpt, {2, 1, 4}, 65'536, 2048, gpt);
  Collect(model::ModelArch::kGpt, {4, 2, 1}, 65'536, 1024, gpt);
  Collect(model::ModelArch::kGpt, {1, 2, 2}, 16'384, 4096, gpt);

  Accuracy t5;
  Collect(model::ModelArch::kT5, {1, 2, 2}, 32'768, 2048, t5);
  Collect(model::ModelArch::kT5, {1, 2, 4}, 65'536, 2048, t5);
  Collect(model::ModelArch::kT5, {2, 2, 2}, 65'536, 1024, t5);
  Collect(model::ModelArch::kT5, {1, 4, 2}, 32'768, 4096, t5);

  TextTable table({"model", "samples", "iter-time MPE", "peak-memory MPE"});
  table.AddRow({"GPT", std::to_string(gpt.pred_time.size()),
                TextTable::Fmt(MeanPercentageError(gpt.pred_time, gpt.meas_time), 2) + "%",
                TextTable::Fmt(MeanPercentageError(gpt.pred_mem, gpt.meas_mem), 2) + "%"});
  table.AddRow({"T5", std::to_string(t5.pred_time.size()),
                TextTable::Fmt(MeanPercentageError(t5.pred_time, t5.meas_time), 2) + "%",
                TextTable::Fmt(MeanPercentageError(t5.pred_mem, t5.meas_mem), 2) + "%"});
  std::printf("%s", table.ToString().c_str());

  std::printf("sample scatter (first few GPT points, pred -> meas, ms):\n");
  for (size_t i = 0; i < std::min<size_t>(5, gpt.pred_time.size()); ++i) {
    std::printf("  %.1f -> %.1f\n", gpt.pred_time[i], gpt.meas_time[i]);
  }
  std::printf("paper reference: iteration-time MPE 4.28%% (T5) / 11.23%% (GPT, "
              "dp-allreduce outliers); peak-memory MPE 5.73%% / 3.30%% "
              "(Fig. 18)\n");
  return 0;
}
