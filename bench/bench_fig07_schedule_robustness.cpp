// Fig. 7: per-iteration makespan of 1F1B vs adaptive scheduling under zero-mean
// Gaussian disturbance of micro-batch execution time, for 2/4/8/16 pipeline
// stages. Makespans are normalized to each schedule's no-noise case and averaged
// over trials. The shape to reproduce: 1F1B's makespan grows rapidly with the
// noise level (especially at more stages); adaptive stays much flatter.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/schedule/adaptive_scheduler.h"
#include "src/schedule/executor_simulator.h"
#include "src/schedule/one_f_one_b.h"

int main() {
  using namespace dynapipe;
  using namespace dynapipe::schedule;
  bench::PrintHeader("Fig. 7", "makespan vs micro-batch execution-time variation");

  constexpr int32_t kMicrobatches = 32;
  constexpr int kTrials = 20;
  const std::vector<int32_t> stage_counts{2, 4, 8, 16};
  const std::vector<double> sigmas{0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0};

  TextTable table({"stages", "sigma", "1F1B(norm)", "adaptive(norm)"});
  for (const int32_t c : stage_counts) {
    const OpCosts base = OpCosts::Uniform(c, kMicrobatches, 1.0, 2.0, 1.0);
    const double base_1f1b =
        SimulateSchedule(OneFOneBSchedule(kMicrobatches, c), base).makespan_ms;
    const auto adaptive_base = MemoryAwareAdaptiveSchedule(base);
    const double base_adaptive =
        SimulateSchedule(*adaptive_base, base).makespan_ms;

    for (const double sigma : sigmas) {
      double total_1f1b = 0.0;
      double total_adaptive = 0.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng rng(static_cast<uint64_t>(trial) * 1000 +
                static_cast<uint64_t>(sigma * 10) + c);
        OpCosts noisy = base;
        for (int32_t j = 0; j < c; ++j) {
          for (int32_t i = 0; i < kMicrobatches; ++i) {
            const double factor = std::max(0.05, 1.0 + rng.NextGaussian(0.0, sigma));
            noisy.fwd_ms[j][i] *= factor;
            noisy.bwd_ms[j][i] *= factor;
          }
        }
        total_1f1b +=
            SimulateSchedule(OneFOneBSchedule(kMicrobatches, c), noisy).makespan_ms;
        const auto adaptive = MemoryAwareAdaptiveSchedule(noisy);
        total_adaptive += SimulateSchedule(*adaptive, noisy).makespan_ms;
      }
      table.AddRow({std::to_string(c), TextTable::Fmt(sigma, 1),
                    TextTable::Fmt(total_1f1b / kTrials / base_1f1b, 3),
                    TextTable::Fmt(total_adaptive / kTrials / base_adaptive, 3)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("paper reference: 1F1B normalized makespan reaches ~1.6-2.6x at "
              "sigma=3 (worse with more stages); adaptive stays well below "
              "(Fig. 7)\n");
  return 0;
}
