// Fig. 1b: input sequence length distribution of the multi-task mixture.
// Prints a log-scale text histogram plus mixture statistics; the shape to match is
// a short-sequence bulk with a heavy tail reaching tens of thousands of tokens.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"

int main() {
  using namespace dynapipe;
  bench::PrintHeader("Fig. 1b", "sequence length distribution (synthetic FLANv2)");

  const data::Dataset dataset = bench::BenchDataset(100'000);
  Histogram hist(0.0, 16'384.0, 32);
  RunningStats stats;
  std::vector<double> lens;
  lens.reserve(dataset.size());
  for (const auto& s : dataset.samples()) {
    hist.Add(s.input_len);
    stats.Add(s.input_len);
    lens.push_back(s.input_len);
  }
  std::printf("%s", hist.ToString().c_str());
  std::printf("samples: %zu  tasks: %zu\n", dataset.size(), dataset.tasks().size());
  std::printf("input length: mean=%.1f stddev=%.1f (cv=%.2f)\n", stats.mean(),
              stats.stddev(), stats.stddev() / stats.mean());
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    std::printf("  p%-5.1f = %.0f\n", p, Percentile(lens, p));
  }
  std::printf("  max    = %d\n", dataset.max_input_len());
  std::printf("paper reference: FLANv2 bulk < ~1000 tokens, tail to 65536 "
              "(log-scale histogram, Fig. 1b)\n");
  return 0;
}
