// Fig. 13: end-to-end training throughput (non-padding tokens/s) vs maximum
// sequence length, for GPT and T5 with grid-searched parallelism:
//   MLM+DS      — packing baseline at its own best (dp, tp, pp, mbs, recompute)
//   MLM+DS (C)  — packing baseline forced onto DynaPipe's best parallelism
//   DynaPipe    — dynamic micro-batching + adaptive schedule + comm planning
// Global batch fixed at 65536 tokens. 4- and 8-GPU clusters (the paper's
// single-node artifact subset: Fig. 13 a, b, e, f).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace {

using namespace dynapipe;

void RunCluster(model::ModelArch arch, int32_t num_gpus,
                const std::vector<int32_t>& seq_lens) {
  const model::ModelConfig config = model::ModelConfig::ForCluster(arch, num_gpus);
  const model::HardwareSpec hw;
  const data::Dataset dataset = bench::BenchDataset();

  TextTable table({"max_seq_len", "MLM+DS(C)", "MLM+DS", "DynaPipe", "dyna_cfg",
                   "mlmds_cfg", "speedup"});
  for (const int32_t seq : seq_lens) {
    runtime::GridSearchOptions grid = bench::BenchGrid(65'536, seq);
    const runtime::DynaPipeSearchResult dyna = runtime::GridSearchDynaPipe(
        config, hw, num_gpus, dataset, bench::BenchPlanner(), grid);
    const runtime::BaselineSearchResult mlmds = runtime::GridSearchBaseline(
        config, hw, num_gpus, dataset, runtime::BaselineBatching::kPacking, grid);
    runtime::BaselineSearchResult constrained;
    if (dyna.found) {
      constrained = runtime::GridSearchBaselineAtParallel(
          config, hw, dyna.best, dataset, runtime::BaselineBatching::kPacking, grid);
    }
    const double speedup = (dyna.found && mlmds.found && mlmds.tokens_per_second > 0)
                               ? dyna.tokens_per_second / mlmds.tokens_per_second
                               : 0.0;
    table.AddRow(
        {std::to_string(seq),
         constrained.found ? TextTable::Fmt(constrained.tokens_per_second, 0) : "OOM",
         mlmds.found ? TextTable::Fmt(mlmds.tokens_per_second, 0) : "OOM",
         dyna.found ? TextTable::Fmt(dyna.tokens_per_second, 0) : "OOM",
         dyna.found ? dyna.best.ToString() : "-",
         mlmds.found ? mlmds.best.ToString() : "-",
         speedup > 0 ? TextTable::Fmt(speedup, 2) + "x" : "-"});
  }
  std::printf("-- %s on %d GPUs (tokens/s) --\n%s\n", config.name.c_str(), num_gpus,
              table.ToString().c_str());
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 13", "throughput vs maximum sequence length");
  RunCluster(model::ModelArch::kGpt, 4, {512, 1024, 2048, 4096, 8192});
  RunCluster(model::ModelArch::kGpt, 8, {512, 1024, 2048, 4096, 8192});
  RunCluster(model::ModelArch::kT5, 4, {512, 1024, 2048, 4096});
  RunCluster(model::ModelArch::kT5, 8, {512, 1024, 2048, 4096});
  std::printf("paper reference: MLM+DS decays rapidly with max seq len; DynaPipe "
              "decays mildly (tracks average not max length); speedups up to "
              "4.39x (T5) / 3.25x (GPT); DynaPipe scales to seq lens where "
              "baselines OOM (Fig. 13)\n");
  return 0;
}
