// Fig. 3: computation time of a single T5-11B Transformer encoder layer vs
// sequence length (micro-batch size 1). The property to reproduce is super-linear
// growth: doubling the sequence length more than doubles layer time once
// compute-bound.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/model/layer_perf_model.h"

int main() {
  using namespace dynapipe;
  bench::PrintHeader("Fig. 3", "single T5-11B encoder layer time vs sequence length");

  const model::ModelConfig config = model::ModelConfig::T5_11B();
  const model::HardwareSpec hw;
  const model::LayerPerfModel layer(config, hw, 1);

  TextTable table({"seq_len", "fwd_ms", "bwd_ms", "ratio_vs_half", "flops(G)"});
  double prev = 0.0;
  for (int32_t s = 512; s <= 16'384; s *= 2) {
    const double fwd = layer.EncoderLayerFwdMs(1, s);
    const double bwd = layer.EncoderLayerBwdMs(1, s, model::RecomputeMode::kNone);
    table.AddRow({std::to_string(s), TextTable::Fmt(fwd, 3), TextTable::Fmt(bwd, 3),
                  prev > 0.0 ? TextTable::Fmt(fwd / prev, 2) : "-",
                  TextTable::Fmt(layer.EncoderLayerFwdFlops(1, s) / 1e9, 1)});
    prev = fwd;
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("paper reference: super-linear growth (ratio_vs_half > 2 at long "
              "sequence lengths)\n");
  return 0;
}
