// Ablation (§7 "Reducing memory fragmentation"): caching allocator vs DynaPipe's
// pre-allocated unified pool under dynamic tensor shapes.
//
// Replays activation allocation traces from planned iterations — alloc at each
// forward, free at the matching backward, sizes from the real micro-batch shapes —
// through (a) a PyTorch-style caching allocator and (b) the pre-allocated pool.
// Metrics: device malloc/free calls and cache flushes (each blocks the GPU in the
// real system) and fragmentation at peak. Static 1F1B shapes are the control:
// caching works fine there; dynamic shapes defeat it.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/runtime/planner.h"
#include "src/sim/caching_allocator.h"

namespace {

using namespace dynapipe;

struct TraceResult {
  sim::AllocatorStats caching;
  sim::AllocatorStats pooled;
};

// Replays per-stage activation traces of `iters` planned iterations.
TraceResult ReplayTraces(const cost::PipelineCostModel& cm, bool dynamic_shapes,
                         int iters) {
  const int64_t budget =
      static_cast<int64_t>(cm.ActivationBudgetMb() * (1ll << 20));
  sim::CachingAllocator caching(budget);
  sim::PooledAllocator pooled(budget);

  const data::Dataset dataset = bench::BenchDataset(4000, 17);
  data::MiniBatchSamplerOptions sopts;
  sopts.global_batch_tokens = 32'768;
  sopts.max_input_len = 2048;
  data::MiniBatchSampler sampler(dataset, sopts);

  runtime::PlannerOptions popts = bench::BenchPlanner();
  popts.dynamic_recompute = false;
  runtime::IterationPlanner planner(cm, popts);

  for (int it = 0; it < iters && sampler.HasNext(); ++it) {
    const auto minibatch = sampler.Next();
    runtime::IterationPlan plan;
    if (dynamic_shapes) {
      plan = planner.PlanIteration(minibatch);
    } else {
      runtime::BaselineOptions base;  // packing: every shape identical
      base.batching = runtime::BaselineBatching::kPacking;
      base.microbatch_size = 2;
      base.recompute = model::RecomputeMode::kSelective;
      plan = runtime::PlanBaselineIteration(cm, base, minibatch);
    }
    if (!plan.feasible) {
      continue;
    }
    // Stage-0 activation trace in schedule order.
    const auto& replica = plan.replicas[0];
    std::vector<std::optional<int64_t>> live_c(replica.micro_batches.size());
    std::vector<std::optional<int64_t>> live_p(replica.micro_batches.size());
    for (const auto& op : replica.schedule.devices[0]) {
      const auto& m = replica.micro_batches[static_cast<size_t>(op.microbatch)];
      const int64_t bytes = static_cast<int64_t>(
          cm.StageActivationMb(0, m.shape, plan.recompute) * (1ll << 20));
      if (bytes <= 0) {
        continue;
      }
      const size_t i = static_cast<size_t>(op.microbatch);
      if (!op.is_backward) {
        live_c[i] = caching.Allocate(bytes);
        live_p[i] = pooled.Allocate(bytes);
      } else {
        if (live_c[i].has_value()) {
          caching.Free(*live_c[i]);
          live_c[i].reset();
        }
        if (live_p[i].has_value()) {
          pooled.Free(*live_p[i]);
          live_p[i].reset();
        }
      }
    }
  }
  return {caching.stats(), pooled.stats()};
}

void Report(const char* label, const TraceResult& r) {
  TextTable table({"allocator", "allocs", "device_mallocs", "device_frees",
                   "cache_flushes", "failed", "fragmentation"});
  auto row = [&](const char* name, const sim::AllocatorStats& s) {
    table.AddRow({name, std::to_string(s.alloc_requests),
                  std::to_string(s.device_mallocs), std::to_string(s.device_frees),
                  std::to_string(s.cache_flushes), std::to_string(s.failed_allocs),
                  TextTable::Fmt(s.fragmentation() * 100.0, 1) + "%"});
  };
  row("caching (PyTorch-style)", r.caching);
  row("pre-allocated pool", r.pooled);
  std::printf("%s\n%s\n", label, table.ToString().c_str());
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation", "caching allocator vs pre-allocated pool (§7)");
  const model::ModelConfig config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  const auto cm = cost::PipelineCostModel::Profile(config, hw, {1, 1, 4},
                                                   bench::BenchProfile());
  Report("static packed shapes (control):", ReplayTraces(cm, false, 12));
  Report("dynamic micro-batch shapes:", ReplayTraces(cm, true, 12));
  std::printf("takeaway: with static shapes the cache warms once; dynamic shapes "
              "keep missing it — repeated device mallocs and flushes (blocking on "
              "real GPUs), which DynaPipe avoids by pre-allocating one pool.\n");
  return 0;
}
