// Fig. 14: training throughput vs global batch size (tokens) at max sequence
// length 2048, for GPT and T5 on 4 and 8 GPUs, MLM+DS vs MLM+DS(C) vs DynaPipe.
// The shapes to reproduce: throughput grows with global batch size for both
// systems, and DynaPipe grows faster (larger batches give its DP more
// micro-batch-splitting opportunities).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace {

using namespace dynapipe;

void RunCluster(model::ModelArch arch, int32_t num_gpus) {
  const model::ModelConfig config = model::ModelConfig::ForCluster(arch, num_gpus);
  const model::HardwareSpec hw;
  const data::Dataset dataset = bench::BenchDataset();

  TextTable table({"global_batch", "MLM+DS(C)", "MLM+DS", "DynaPipe", "speedup"});
  for (const int64_t batch : {16'384ll, 32'768ll, 65'536ll, 131'072ll}) {
    runtime::GridSearchOptions grid = bench::BenchGrid(batch, 2048);
    const runtime::DynaPipeSearchResult dyna = runtime::GridSearchDynaPipe(
        config, hw, num_gpus, dataset, bench::BenchPlanner(), grid);
    const runtime::BaselineSearchResult mlmds = runtime::GridSearchBaseline(
        config, hw, num_gpus, dataset, runtime::BaselineBatching::kPacking, grid);
    runtime::BaselineSearchResult constrained;
    if (dyna.found) {
      constrained = runtime::GridSearchBaselineAtParallel(
          config, hw, dyna.best, dataset, runtime::BaselineBatching::kPacking, grid);
    }
    const double speedup = (dyna.found && mlmds.found && mlmds.tokens_per_second > 0)
                               ? dyna.tokens_per_second / mlmds.tokens_per_second
                               : 0.0;
    table.AddRow(
        {std::to_string(batch),
         constrained.found ? TextTable::Fmt(constrained.tokens_per_second, 0) : "OOM",
         mlmds.found ? TextTable::Fmt(mlmds.tokens_per_second, 0) : "OOM",
         dyna.found ? TextTable::Fmt(dyna.tokens_per_second, 0) : "OOM",
         speedup > 0 ? TextTable::Fmt(speedup, 2) + "x" : "-"});
  }
  std::printf("-- %s on %d GPUs (tokens/s, max_seq_len 2048) --\n%s\n",
              config.name.c_str(), num_gpus, table.ToString().c_str());
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 14", "throughput vs global batch size");
  RunCluster(model::ModelArch::kGpt, 4);
  RunCluster(model::ModelArch::kGpt, 8);
  RunCluster(model::ModelArch::kT5, 4);
  RunCluster(model::ModelArch::kT5, 8);
  std::printf("paper reference: both systems improve with batch size; DynaPipe "
              "improves faster (Fig. 14)\n");
  return 0;
}
