// Shared helpers for the figure-reproduction benches.
//
// Every bench binary regenerates one table/figure from the paper's evaluation
// (§8). They print the same rows/series the paper reports; absolute numbers come
// from the simulated cluster (see DESIGN.md §2), so the *shape* — who wins, by
// roughly what factor, where crossovers fall — is the comparison target, recorded
// in EXPERIMENTS.md.
#ifndef DYNAPIPE_BENCH_BENCH_UTIL_H_
#define DYNAPIPE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/data/flan_generator.h"
#include "src/model/hardware_spec.h"
#include "src/model/model_config.h"
#include "src/runtime/grid_search.h"
#include "src/runtime/planner.h"
#include "src/runtime/trainer.h"

namespace dynapipe::bench {

inline data::Dataset BenchDataset(int64_t num_samples = 4000, uint64_t seed = 42) {
  data::FlanGeneratorOptions gen;
  gen.num_samples = num_samples;
  gen.seed = seed;
  return data::GenerateFlanLikeDataset(gen);
}

inline cost::ProfileOptions BenchProfile() {
  cost::ProfileOptions opts;
  opts.max_microbatch_size = 128;
  opts.max_seq_len = 16'384;
  return opts;
}

inline runtime::PlannerOptions BenchPlanner() {
  runtime::PlannerOptions opts;
  opts.max_tmax_candidates = 96;
  opts.tmax_interval_ms = 0.2;
  opts.max_microbatch_size = 128;
  opts.dynamic_recompute = true;
  return opts;
}

inline runtime::GridSearchOptions BenchGrid(int64_t global_batch_tokens,
                                            int32_t max_input_len,
                                            int32_t eval_iterations = 2) {
  runtime::GridSearchOptions opts;
  opts.eval_iterations = eval_iterations;
  opts.profile = BenchProfile();
  opts.trainer.global_batch_tokens = global_batch_tokens;
  opts.trainer.max_input_len = max_input_len;
  opts.microbatch_sizes = {1, 2, 4, 8, 16};
  opts.recompute_modes = {model::RecomputeMode::kNone,
                          model::RecomputeMode::kSelective,
                          model::RecomputeMode::kFull};
  return opts;
}

inline void PrintHeader(const std::string& figure, const std::string& what) {
  std::printf("\n=== %s — %s ===\n", figure.c_str(), what.c_str());
}

}  // namespace dynapipe::bench

#endif  // DYNAPIPE_BENCH_BENCH_UTIL_H_
