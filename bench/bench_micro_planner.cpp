// Google-benchmark microbenchmarks for the planner's hot paths: cost-model
// queries, the micro-batch DP, adaptive scheduling, timeline simulation, and
// communication planning. These are the per-iteration CPU costs that Fig. 17
// aggregates; keeping them fast is what lets planning overlap training.
//
// The headline pair (bench/README.md "Planning-time methodology"):
//   BM_DpPartition               — the seed path: uncached oracle, serial sweep
//   BM_DpPartitionCachedPool/T   — memoized oracle + T-thread t_max fan-out
// Their ratio at the same token count is the planning-time speedup; outputs
// are bit-identical (tests/planning_parallel_test.cpp holds that line).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/comm/comm_planner.h"
#include "src/common/thread_pool.h"
#include "src/cost/cost_cache.h"
#include "src/mb/dp_partitioner.h"
#include "src/mb/karmarkar_karp.h"
#include "src/mb/ordering.h"
#include "src/schedule/adaptive_scheduler.h"
#include "src/schedule/executor_simulator.h"

namespace {

using namespace dynapipe;

const cost::PipelineCostModel& SharedCostModel() {
  static const cost::PipelineCostModel cm = cost::PipelineCostModel::Profile(
      model::ModelConfig::Gpt3_35B(), model::HardwareSpec{}, {1, 1, 4},
      bench::BenchProfile());
  return cm;
}

class CostAdapter : public mb::MicroBatchCostFn {
 public:
  double TimeMs(const model::MicroBatchShape& shape) const override {
    return SharedCostModel().MicroBatchTimeMs(shape, model::RecomputeMode::kNone);
  }
  double ActivationMb(const model::MicroBatchShape& shape) const override {
    return SharedCostModel().MaxActivationMb(shape, model::RecomputeMode::kNone);
  }
};

std::vector<data::Sample> OrderedMiniBatch(int64_t tokens) {
  const data::Dataset dataset = bench::BenchDataset(4000, 3);
  std::vector<data::Sample> minibatch;
  int64_t total = 0;
  for (const auto& s : dataset.samples()) {
    const data::Sample t = data::Truncate(s, 2048, 0);
    minibatch.push_back(t);
    total += t.total_tokens();
    if (total > tokens) {
      break;
    }
  }
  return mb::OrderSamples(minibatch, mb::OrderingMethod::kSortByLength);
}

void BM_CostModelQuery(benchmark::State& state) {
  const auto& cm = SharedCostModel();
  model::MicroBatchShape shape{4, 777, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.MicroBatchTimeMs(shape, model::RecomputeMode::kNone));
    shape.input_len = shape.input_len % 4000 + 13;
  }
}
BENCHMARK(BM_CostModelQuery);

// Same query mix as BM_CostModelQuery through the memoizing oracle; the shape
// sequence cycles, so this measures the steady-state (warm) hit path.
void BM_CachedCostQuery(benchmark::State& state) {
  const cost::CachedCostOracle oracle(SharedCostModel());
  model::MicroBatchShape shape{4, 777, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.TimeMs(shape, model::RecomputeMode::kNone));
    shape.input_len = shape.input_len % 4000 + 13;
  }
  state.SetLabel("hit rate " +
                 std::to_string(oracle.counters().hit_rate()).substr(0, 4));
}
BENCHMARK(BM_CachedCostQuery);

mb::DpPartitionerOptions PartitionBenchOptions() {
  mb::DpPartitionerOptions opts;
  opts.num_stages = 4;
  opts.activation_limit_mb = SharedCostModel().ActivationBudgetMb();
  opts.tmax_interval_ms = 0.2;
  opts.max_tmax_candidates = 96;
  opts.max_microbatch_size = 128;
  return opts;
}

// Seed path: uncached cost oracle, serial t_max sweep.
void BM_DpPartition(benchmark::State& state) {
  const auto ordered = OrderedMiniBatch(state.range(0));
  CostAdapter cost_fn;
  mb::DpPartitioner partitioner(cost_fn, PartitionBenchOptions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(partitioner.Partition(ordered));
  }
  state.SetLabel(std::to_string(ordered.size()) + " samples");
}
BENCHMARK(BM_DpPartition)->Arg(16'384)->Arg(65'536);

// Parallel, cache-aware path: memoized oracle shared across iterations (the
// planner keeps its oracle for the epoch, so warm-cache steady state is the
// representative regime) + per-t_max DPs fanned over a pool. Second arg is the
// pool size; compare against BM_DpPartition at the same token count.
void BM_DpPartitionCachedPool(benchmark::State& state) {
  const auto ordered = OrderedMiniBatch(state.range(0));
  const int32_t threads = static_cast<int32_t>(state.range(1));
  const cost::CachedCostOracle oracle(SharedCostModel());
  const runtime::CachedCostAdapter cost_fn(oracle, model::RecomputeMode::kNone);
  ThreadPool pool(threads);
  mb::DpPartitionerOptions opts = PartitionBenchOptions();
  opts.pool = &pool;
  mb::DpPartitioner partitioner(cost_fn, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partitioner.Partition(ordered));
  }
  state.SetLabel(std::to_string(ordered.size()) + " samples, " +
                 std::to_string(threads) + " threads, hit rate " +
                 std::to_string(oracle.counters().hit_rate()).substr(0, 4));
}
BENCHMARK(BM_DpPartitionCachedPool)
    ->Args({16'384, 1})
    ->Args({16'384, 2})
    ->Args({16'384, 4})
    ->Args({16'384, 8})
    ->Args({65'536, 4});

void BM_SampleOrderingTsp(benchmark::State& state) {
  const data::Dataset dataset = bench::BenchDataset(4000, 5);
  std::vector<data::Sample> minibatch(dataset.samples().begin(),
                                      dataset.samples().begin() + state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mb::OrderSamples(minibatch, mb::OrderingMethod::kTsp));
  }
}
BENCHMARK(BM_SampleOrderingTsp)->Arg(64)->Arg(256);

void BM_KarmarkarKarp(benchmark::State& state) {
  Rng rng(9);
  std::vector<double> weights;
  for (int i = 0; i < state.range(0); ++i) {
    weights.push_back(rng.NextDouble(1.0, 100.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mb::KarmarkarKarp(weights, 4));
  }
}
BENCHMARK(BM_KarmarkarKarp)->Arg(32)->Arg(256);

void BM_AdaptiveSchedule(benchmark::State& state) {
  const auto costs = schedule::OpCosts::Uniform(
      4, static_cast<int32_t>(state.range(0)), 1.0, 2.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule::MemoryAwareAdaptiveSchedule(costs));
  }
}
BENCHMARK(BM_AdaptiveSchedule)->Arg(16)->Arg(64);

void BM_TimelineSimulation(benchmark::State& state) {
  const int32_t m = static_cast<int32_t>(state.range(0));
  const auto costs = schedule::OpCosts::Uniform(4, m, 1.0, 2.0, 1.0);
  const auto sched = *schedule::MemoryAwareAdaptiveSchedule(costs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule::SimulateSchedule(sched, costs));
  }
}
BENCHMARK(BM_TimelineSimulation)->Arg(16)->Arg(64);

void BM_CommPlanning(benchmark::State& state) {
  const int32_t m = static_cast<int32_t>(state.range(0));
  const auto costs = schedule::OpCosts::Uniform(4, m, 1.0, 2.0, 1.0);
  const auto sched = *schedule::MemoryAwareAdaptiveSchedule(costs);
  const auto tl = schedule::SimulateSchedule(sched, costs);
  std::vector<model::MicroBatchShape> shapes(static_cast<size_t>(m),
                                             model::MicroBatchShape{2, 512, 0});
  comm::CommPlannerInputs inputs;
  inputs.schedule = &sched;
  inputs.timeline = &tl;
  inputs.shapes = shapes;
  inputs.boundary_bytes = [](int32_t, int32_t) { return int64_t{1'000'000}; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm::PlanCommunication(inputs));
  }
}
BENCHMARK(BM_CommPlanning)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
