// Ablation (DESIGN.md): t_max candidate sampling interval in the micro-batch DP.
// The paper samples candidates 5us apart as a speedup over the O(N^4) exact DP
// (§4); this bench quantifies the quality/planning-time trade-off of coarser
// intervals, plus the candidate-count cap.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/mb/dp_partitioner.h"
#include "src/mb/ordering.h"

namespace {

using namespace dynapipe;

class CostAdapter : public mb::MicroBatchCostFn {
 public:
  explicit CostAdapter(const cost::PipelineCostModel& cm) : cm_(cm) {}
  double TimeMs(const model::MicroBatchShape& shape) const override {
    return cm_.MicroBatchTimeMs(shape, model::RecomputeMode::kNone);
  }
  double ActivationMb(const model::MicroBatchShape& shape) const override {
    return cm_.MaxActivationMb(shape, model::RecomputeMode::kNone);
  }

 private:
  const cost::PipelineCostModel& cm_;
};

}  // namespace

int main() {
  using Clock = std::chrono::steady_clock;
  bench::PrintHeader("Ablation", "t_max sampling interval in the micro-batch DP");

  const model::ModelConfig config = model::ModelConfig::Gpt3_35B();
  const model::HardwareSpec hw;
  const auto cm = cost::PipelineCostModel::Profile(config, hw, {1, 1, 4},
                                                   bench::BenchProfile());
  CostAdapter cost_fn(cm);

  const data::Dataset dataset = bench::BenchDataset(3000, 11);
  std::vector<data::Sample> minibatch;
  int64_t tokens = 0;
  for (const auto& s : dataset.samples()) {
    const data::Sample t = data::Truncate(s, 2048, 0);
    minibatch.push_back(t);
    tokens += t.total_tokens();
    if (tokens > 65'536) {
      break;
    }
  }
  const auto ordered = mb::OrderSamples(minibatch, mb::OrderingMethod::kSortByLength);
  std::printf("mini-batch: %zu samples, %lld tokens\n", ordered.size(),
              static_cast<long long>(tokens));

  TextTable table({"interval_ms", "cand_cap", "candidates", "objective_ms",
                   "vs_finest", "plan_ms"});
  double finest = 0.0;
  for (const auto& [interval, cap] :
       std::vector<std::pair<double, int32_t>>{{0.005, 100'000},
                                               {0.02, 100'000},
                                               {0.1, 100'000},
                                               {0.5, 100'000},
                                               {2.0, 100'000},
                                               {0.005, 64},
                                               {0.005, 16}}) {
    mb::DpPartitionerOptions opts;
    opts.num_stages = 4;
    opts.activation_limit_mb = cm.ActivationBudgetMb();
    opts.tmax_interval_ms = interval;
    opts.max_tmax_candidates = cap;
    mb::DpPartitioner partitioner(cost_fn, opts);
    const auto start = Clock::now();
    const mb::PartitionResult res = partitioner.Partition(ordered);
    const double elapsed =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    if (finest == 0.0) {
      finest = res.objective_ms;
    }
    table.AddRow({TextTable::Fmt(interval, 3), std::to_string(cap),
                  std::to_string(res.candidates_tried),
                  TextTable::Fmt(res.objective_ms, 2),
                  TextTable::Fmt(res.objective_ms / finest, 4),
                  TextTable::Fmt(elapsed, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("takeaway: coarse intervals / small candidate caps cut planning time "
              "by orders of magnitude at sub-percent objective loss — the paper's "
              "5us interval is conservative.\n");
  return 0;
}
