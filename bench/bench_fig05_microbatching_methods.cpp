// Fig. 5: throughput of token-based and fixed-size micro-batching across their
// hyper-parameter sweeps, normalized to the DP solution (1.0). The shapes to
// reproduce: both alternatives peak below or at the DP solution, fixed-size OOMs
// at large sizes x long max-seq-len, and the best setting shifts with max
// sequence length — while the DP solution needs no parameter search.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace {

using namespace dynapipe;

void RunModel(model::ModelArch arch) {
  const model::ModelConfig config = model::ModelConfig::ForCluster(arch, 4);
  const model::HardwareSpec hw;
  const model::ParallelConfig parallel =
      arch == model::ModelArch::kGpt ? model::ParallelConfig{1, 1, 4}
                                     : model::ParallelConfig{1, 2, 2};
  runtime::Trainer trainer(config, hw, parallel, bench::BenchProfile());
  const data::Dataset dataset = bench::BenchDataset();

  runtime::TrainerOptions topts;
  topts.global_batch_tokens = 32'768;
  topts.max_iterations = 2;

  const std::vector<int32_t> seq_lens =
      arch == model::ModelArch::kGpt ? std::vector<int32_t>{512, 2048, 8192}
                                     : std::vector<int32_t>{512, 2048, 4096};
  const std::vector<int64_t> token_counts = {256, 1024, 4096, 16'384};
  const std::vector<int32_t> mb_sizes = {1, 4, 16, 64};

  std::printf("-- %s (%s) --\n", config.name.c_str(), parallel.ToString().c_str());
  for (const int32_t seq : seq_lens) {
    topts.max_input_len = seq;
    const runtime::EpochResult dp =
        trainer.RunEpoch(dataset, bench::BenchPlanner(), topts);
    const double dp_tps = dp.feasible ? dp.tokens_per_second() : 0.0;

    TextTable table({"method", "setting", "tput(norm to DP=1.0)"});
    for (const int64_t tokens : token_counts) {
      runtime::BaselineOptions base;
      base.batching = runtime::BaselineBatching::kTokenBased;
      base.tokens_per_microbatch = tokens;
      base.recompute = model::RecomputeMode::kSelective;
      const runtime::EpochResult r = trainer.RunEpochBaseline(dataset, base, topts);
      table.AddRow({"token-based", std::to_string(tokens) + " tok/mb",
                    r.feasible ? TextTable::Fmt(r.tokens_per_second() / dp_tps, 3)
                               : "OOM"});
    }
    for (const int32_t mbs : mb_sizes) {
      runtime::BaselineOptions base;
      base.batching = runtime::BaselineBatching::kFixedSize;
      base.microbatch_size = mbs;
      base.recompute = model::RecomputeMode::kSelective;
      const runtime::EpochResult r = trainer.RunEpochBaseline(dataset, base, topts);
      table.AddRow({"fixed-size", std::to_string(mbs) + " samples/mb",
                    r.feasible ? TextTable::Fmt(r.tokens_per_second() / dp_tps, 3)
                               : "OOM"});
    }
    table.AddRow({"DP solution", "(no parameter)", "1.000"});
    std::printf("max_seq_len = %d\n%s\n", seq, table.ToString().c_str());
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 5", "micro-batching methods vs the DP solution");
  RunModel(model::ModelArch::kGpt);
  RunModel(model::ModelArch::kT5);
  std::printf("paper reference: token-based peaks near but below DP; fixed-size "
              "OOMs at large size x long seq; best settings shift with max seq "
              "len (Fig. 5)\n");
  return 0;
}
