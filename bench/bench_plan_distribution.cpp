// Plan distribution latency: per-plan publish/fetch cost by store backend.
//
// The plan-ahead pipeline hides planning latency, but the *distribution* hop
// — publishing a serialized plan into the store and fetching it back on the
// executor side — sits on the critical path of every iteration start. This
// bench measures that hop per backend, same plan, same contract:
//
//   in-process         move the plan object (no encode)
//   in-process serde   encode on Push, decode on Fetch (plan_serde)
//   loopback wire      full frame protocol over in-memory streams
//   unix socket wire   full frame protocol over AF_UNIX, one connection per
//                      request (connect cost included — that is the wire
//                      path's real per-request price)
//   unix socket mux    same AF_UNIX server through ONE persistent
//                      multiplexed connection (request-id frames, deferred
//                      kPush replies) — no connect per request
//   shm store          shared-memory segment: encode-into-arena on Push,
//                      zero-copy view + decode-in-place on Fetch
//   shm view           same segment, but the fetch column is the raw
//                      distribution hop alone: acquire the zero-copy view
//                      and release it, no decode (decode-in-place costs the
//                      same everywhere and can happen lazily on the executor)
//
// Each row also counts heap allocations per Push/Fetch (global operator new
// interposition): the steady-state publish path is designed to allocate
// nothing (per-thread encode scratch, frame reuse), and the shm rows prove
// it.
//
// Reported numbers go into bench/README.md ("Plan distribution"); the wire
// rows bound what a real multi-process deployment pays per plan, and the gap
// between serde and wire rows is pure transport (frames + syscalls +
// threads). Pass an integer argv[1] to override the round count (CI smoke
// runs use a handful of rounds).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/cost/pipeline_cost_model.h"
#include "src/data/minibatch_sampler.h"
#include "src/runtime/instruction_store.h"
#include "src/service/heartbeat_monitor.h"
#include "src/service/membership.h"
#include "src/service/plan_serde.h"
#include "src/service/recovery.h"
#include "src/transport/mux.h"
#include "src/transport/remote_store.h"
#include "src/transport/shm_store.h"
#include "src/transport/store_server.h"
#include "src/transport/transport.h"

// ---- allocation counting (whole binary) ----
namespace {
std::atomic<int64_t> g_allocs{0};
}  // namespace

void* operator new(size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

namespace {

using namespace dynapipe;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  const char* name;
  double push_ms = 0.0;
  double fetch_ms = 0.0;
  double push_allocs = 0.0;
  double fetch_allocs = 0.0;
};

Row Measure(const char* name, runtime::InstructionStoreInterface& store,
            const sim::ExecutionPlan& plan, int rounds) {
  // Warm-up round: first connect on a fresh socket path, first allocation,
  // and thread-local scratch growth are not steady state.
  store.Push(-1, 0, plan);
  store.Fetch(-1, 0);
  Row row;
  row.name = name;
  int64_t push_allocs = 0;
  int64_t fetch_allocs = 0;
  for (int i = 0; i < rounds; ++i) {
    int64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    auto t0 = std::chrono::steady_clock::now();
    store.Push(i, 0, plan);
    row.push_ms += MsSince(t0);
    const int64_t allocs1 = g_allocs.load(std::memory_order_relaxed);
    push_allocs += allocs1 - allocs0;
    t0 = std::chrono::steady_clock::now();
    const sim::ExecutionPlan fetched = store.Fetch(i, 0);
    row.fetch_ms += MsSince(t0);
    fetch_allocs += g_allocs.load(std::memory_order_relaxed) - allocs1;
    if (fetched.num_microbatches != plan.num_microbatches) {
      std::printf("!! %s corrupted a plan\n", name);
    }
  }
  row.push_ms /= rounds;
  row.fetch_ms /= rounds;
  row.push_allocs = static_cast<double>(push_allocs) / rounds;
  row.fetch_allocs = static_cast<double>(fetch_allocs) / rounds;
  return row;
}

// The shm distribution hop alone: push into the arena, acquire the zero-copy
// view, release — no decode. This is the number to compare against the wire
// rows' transport cost: it is what a same-host executor pays to *obtain* a
// published plan's bytes.
Row MeasureShmView(transport::ShmInstructionStore& store,
                   const sim::ExecutionPlan& plan, int rounds) {
  store.Push(-1, 0, plan);
  { const auto warm = store.AcquireView(-1, 0); (void)warm; }
  Row row;
  row.name = "shm view (no decode)";
  int64_t push_allocs = 0;
  int64_t fetch_allocs = 0;
  for (int i = 0; i < rounds; ++i) {
    int64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    auto t0 = std::chrono::steady_clock::now();
    store.Push(i, 0, plan);
    row.push_ms += MsSince(t0);
    const int64_t allocs1 = g_allocs.load(std::memory_order_relaxed);
    push_allocs += allocs1 - allocs0;
    t0 = std::chrono::steady_clock::now();
    {
      const auto view = store.AcquireView(i, 0);
      if (view.bytes().size() < 5) {
        std::printf("!! shm view too small\n");
      }
    }
    row.fetch_ms += MsSince(t0);
    fetch_allocs += g_allocs.load(std::memory_order_relaxed) - allocs1;
  }
  row.push_ms /= rounds;
  row.fetch_ms /= rounds;
  row.push_allocs = static_cast<double>(push_allocs) / rounds;
  row.fetch_allocs = static_cast<double>(fetch_allocs) / rounds;
  return row;
}

// Heartbeat overhead: what an executor pays per iteration to report
// completion back to the trainer (bench/README.md "Executor deployment").
// Only the wire backends have the channel; the row measures the full
// request/reply exchange landing in a real HeartbeatMonitor.
struct HeartbeatRow {
  const char* name;
  double heartbeat_ms = 0.0;
  double heartbeat_allocs = 0.0;
};

HeartbeatRow MeasureHeartbeat(const char* name,
                              runtime::InstructionStoreInterface& store,
                              int rounds) {
  store.Heartbeat(0, -1, 1.0);  // warm-up: first connect, scratch growth
  HeartbeatRow row;
  row.name = name;
  int64_t allocs = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < rounds; ++i) {
    const int64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    store.Heartbeat(/*replica=*/0, /*iteration=*/i, /*wall_ms=*/12.5);
    allocs += g_allocs.load(std::memory_order_relaxed) - allocs0;
  }
  row.heartbeat_ms = MsSince(t0) / rounds;
  row.heartbeat_allocs = static_cast<double>(allocs) / rounds;
  return row;
}

// Recovery latency: the detect -> re-publish hop of the failure control loop
// (bench/README.md "Failure recovery"). An executor vanishes with `backlog`
// plans still unfetched; the monitor declares it dead (grace 0: an unclean
// connection drop is death) and the RecoveryCoordinator moves the backlog to
// survivors. The coordinator reposts synchronously inside the event
// delivery, so the OnReplicaDisconnected call spans the whole hop — what a
// trainer stalls for before degraded-mode execution can resume. Reposting is
// a key move on resident bytes (no re-plan, no re-encode), so the per-plan
// cost should stay flat as the backlog grows.
struct RecoveryRow {
  int backlog;
  double recovery_ms = 0.0;
  double per_plan_ms = 0.0;
};

RecoveryRow MeasureRecovery(const sim::ExecutionPlan& plan, int backlog,
                            int rounds) {
  RecoveryRow row;
  row.backlog = backlog;
  for (int r = 0; r < rounds; ++r) {
    // Fresh control plane per round: death is sticky, a dead replica cannot
    // be re-killed. Setup (pushes, attach) stays outside the timed window.
    runtime::InstructionStore store(
        runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
    service::HeartbeatMonitor monitor;
    service::RecoveryOptions ropts;
    ropts.replicas = {0, 1, 2};
    ropts.spare_iteration_base = backlog;
    service::RecoveryCoordinator recovery(&store, &monitor, ropts);
    for (int i = 0; i < backlog; ++i) {
      store.Push(i, /*replica=*/1, plan);
    }
    monitor.OnReplicaAttached(1);
    const auto t0 = std::chrono::steady_clock::now();
    monitor.OnReplicaDisconnected(/*replica=*/1, /*clean=*/false);
    row.recovery_ms += MsSince(t0);
    const service::RecoveryReport report = recovery.report();
    if (report.replanned_iterations != backlog) {
      std::printf("!! recovery moved %lld of %d plans\n",
                  static_cast<long long>(report.replanned_iterations),
                  backlog);
    }
  }
  row.recovery_ms /= rounds;
  row.per_plan_ms = row.recovery_ms / backlog;
  return row;
}

// Elastic membership latency: the two mid-epoch fleet-change hops
// (bench/README.md "Elastic membership"). Join: an unknown replica turns
// alive and the MembershipCoordinator admits it, grows the expected fleet,
// and steals the joiner's fair share of the deepest backlog to its spare
// keys — the OnReplicaAttached call spans the whole admission, i.e. the
// delay before the joiner has work to find. Drain: a member asks to leave
// and the coordinator fences it, reposts its remaining backlog round-robin
// to the survivors, and acknowledges — the OnReplicaDrainRequested call
// spans request -> ack, the time a leaver waits before it may finish
// in-flight work and detach. Both hops are key moves on resident bytes
// (no re-plan, no re-encode), so per-plan cost should stay flat like
// recovery's.
struct MembershipRow {
  int backlog;
  double join_ms = 0.0;
  int64_t join_stolen = 0;
  double drain_ms = 0.0;
  int64_t drain_reposted = 0;
};

MembershipRow MeasureMembership(const sim::ExecutionPlan& plan, int backlog,
                                int rounds) {
  MembershipRow row;
  row.backlog = backlog;
  for (int r = 0; r < rounds; ++r) {
    // Fresh control plane per round: membership is sticky too (a replica
    // joins once). Setup (pushes) stays outside the timed windows.
    runtime::InstructionStore store(
        runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
    service::HeartbeatMonitor monitor;
    auto spare_keys = std::make_shared<service::SpareKeyAllocator>(backlog);
    service::RecoveryOptions ropts;
    ropts.replicas = {0, 1, 2};
    ropts.spare_keys = spare_keys;
    service::RecoveryCoordinator recovery(&store, &monitor, ropts);
    service::MembershipOptions mopts;
    mopts.initial_replicas = {0, 1, 2};
    mopts.spare_keys = spare_keys;
    service::MembershipCoordinator membership(&store, &monitor, &recovery,
                                              mopts);
    for (int i = 0; i < backlog; ++i) {
      store.Push(i, /*replica=*/1, plan);
    }
    // Join admission: alive -> admitted, expected grown, fair share stolen.
    auto t0 = std::chrono::steady_clock::now();
    monitor.OnReplicaAttached(3);
    row.join_ms += MsSince(t0);
    // Drain handoff: request -> fence -> repost to survivors -> ack.
    t0 = std::chrono::steady_clock::now();
    monitor.OnReplicaDrainRequested(1);
    row.drain_ms += MsSince(t0);
    const service::MembershipReport report = membership.report();
    const int64_t stolen = backlog / 4;  // fair share of the 4-strong fleet
    if (report.join_stolen_iterations != stolen ||
        report.drain_reposted_iterations != backlog - stolen) {
      std::printf("!! membership moved %lld + %lld of %d plans\n",
                  static_cast<long long>(report.join_stolen_iterations),
                  static_cast<long long>(report.drain_reposted_iterations),
                  backlog);
    }
    row.join_stolen = report.join_stolen_iterations;
    row.drain_reposted = report.drain_reposted_iterations;
  }
  row.join_ms /= rounds;
  row.drain_ms /= rounds;
  return row;
}

// Observability overhead: what one instrument operation costs armed vs
// disarmed (docs/OBSERVABILITY.md "Cost discipline"). The disarmed rows are
// the budget holders: one relaxed load and a branch, zero allocations — in
// particular the shm publish row must show no extra allocations with
// everything disarmed.
struct OverheadRow {
  const char* name;
  double armed_ns = 0.0;
  double disarmed_ns = 0.0;
  double armed_allocs = 0.0;
  double disarmed_allocs = 0.0;
};

// ns and allocations per op. The ops have atomic side effects when armed;
// the barrier keeps the disarmed loops from folding to nothing.
template <typename Op>
std::pair<double, double> MeasureOpNs(Op&& op, int iters) {
  const int64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    op(i);
    asm volatile("" ::: "memory");
  }
  const double ns = MsSince(t0) * 1e6 / iters;
  const double allocs =
      static_cast<double>(g_allocs.load(std::memory_order_relaxed) - allocs0) /
      iters;
  return {ns, allocs};
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 300;
  // One representative plan from the bench epoch (GPT-3.35B, 4 stages,
  // 65k-token batch): a realistic instruction stream, not a toy.
  const auto cost_model = cost::PipelineCostModel::Profile(
      model::ModelConfig::Gpt3_35B(), model::HardwareSpec{}, {1, 1, 4},
      bench::BenchProfile());
  runtime::IterationPlanner planner(cost_model, bench::BenchPlanner());
  const data::Dataset dataset = bench::BenchDataset();
  data::MiniBatchSamplerOptions sopts;
  sopts.global_batch_tokens = 65'536;
  sopts.max_input_len = 2048;
  data::MiniBatchSampler sampler(dataset, sopts);
  runtime::IterationPlan plan = planner.PlanIteration(sampler.Next());
  if (!plan.feasible) {
    std::printf("planning failed: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }
  const sim::ExecutionPlan& exec = plan.replicas[0].exec_plan;
  size_t instructions = 0;
  for (const auto& dev : exec.devices) {
    instructions += dev.instructions.size();
  }
  const std::string encoded = service::EncodeExecutionPlan(exec);
  std::printf("plan: %d microbatches, %d devices, %zu instructions, "
              "%zu encoded bytes\n\n",
              exec.num_microbatches, exec.num_devices(), instructions,
              encoded.size());

  std::vector<Row> rows;
  {
    runtime::InstructionStore store;
    rows.push_back(Measure("in-process", store, exec, rounds));
  }
  {
    runtime::InstructionStore store(
        runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
    rows.push_back(Measure("in-process serde", store, exec, rounds));
  }
  {
    runtime::InstructionStore store(
        runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
    transport::LoopbackTransport transport;
    transport::InstructionStoreServer server(&transport, &store);
    auto client = transport::RemoteInstructionStore::OverTransport(&transport);
    rows.push_back(Measure("loopback wire", *client, exec, rounds));
    server.Stop();
  }
  {
    runtime::InstructionStore store(
        runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
    transport::UnixSocketTransport transport(
        "/tmp/dynapipe-bench-" + std::to_string(::getpid()) + ".sock");
    transport::InstructionStoreServer server(&transport, &store);
    auto client = transport::RemoteInstructionStore::OverTransport(&transport);
    rows.push_back(Measure("unix socket wire", *client, exec, rounds));
    server.Stop();
  }
  {
    runtime::InstructionStore store(
        runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
    transport::UnixSocketTransport transport(
        "/tmp/dynapipe-bench-mux-" + std::to_string(::getpid()) + ".sock");
    transport::InstructionStoreServer server(&transport, &store);
    {
      auto client = transport::MuxInstructionStore::OverTransport(&transport);
      rows.push_back(Measure("unix socket mux", *client, exec, rounds));
    }
    server.Stop();
  }
  {
    auto store = transport::ShmInstructionStore::Create(
        "/dynapipe-bench-" + std::to_string(::getpid()),
        transport::ShmStoreOptions{});
    rows.push_back(Measure("shm store", *store, exec, rounds));
  }
  {
    auto store = transport::ShmInstructionStore::Create(
        "/dynapipe-bench-view-" + std::to_string(::getpid()),
        transport::ShmStoreOptions{});
    rows.push_back(MeasureShmView(*store, exec, rounds));
  }

  std::printf("%-20s | %9s | %9s | %10s | %11s | %12s\n", "backend", "push ms",
              "fetch ms", "round trip", "push allocs", "fetch allocs");
  std::printf("---------------------+-----------+-----------+------------+"
              "-------------+-------------\n");
  for (const Row& row : rows) {
    std::printf("%-20s | %9.4f | %9.4f | %10.4f | %11.1f | %12.1f\n", row.name,
                row.push_ms, row.fetch_ms, row.push_ms + row.fetch_ms,
                row.push_allocs, row.fetch_allocs);
  }
  std::printf(
      "\n(%d rounds per backend; socket wire includes one connect per "
      "request, mux reuses one connection, shm rows never touch a wire; "
      "alloc columns are heap allocations per operation in this process)\n",
      rounds);

  // Heartbeat overhead per iteration (wire backends only — shm has no
  // channel; the conformance suite pins that as a clean capability flag).
  std::vector<HeartbeatRow> hb_rows;
  {
    service::HeartbeatMonitor monitor;
    runtime::InstructionStore store(
        runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
    store.set_heartbeat_sink(&monitor);
    transport::UnixSocketTransport transport(
        "/tmp/dynapipe-bench-hb-" + std::to_string(::getpid()) + ".sock");
    transport::InstructionStoreServer server(&transport, &store);
    auto client = transport::RemoteInstructionStore::OverTransport(&transport);
    hb_rows.push_back(MeasureHeartbeat("unix socket wire", *client, rounds));
    server.Stop();
  }
  {
    service::HeartbeatMonitor monitor;
    runtime::InstructionStore store(
        runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
    store.set_heartbeat_sink(&monitor);
    transport::UnixSocketTransport transport(
        "/tmp/dynapipe-bench-hbmux-" + std::to_string(::getpid()) + ".sock");
    transport::InstructionStoreServer server(&transport, &store);
    {
      auto client = transport::MuxInstructionStore::OverTransport(&transport);
      hb_rows.push_back(MeasureHeartbeat("unix socket mux", *client, rounds));
    }
    server.Stop();
  }
  std::printf("\n%-20s | %12s | %16s\n", "heartbeat backend", "heartbeat ms",
              "heartbeat allocs");
  std::printf("---------------------+--------------+-----------------\n");
  for (const HeartbeatRow& row : hb_rows) {
    std::printf("%-20s | %12.4f | %16.1f\n", row.name, row.heartbeat_ms,
                row.heartbeat_allocs);
  }
  std::printf(
      "(one completion report per iteration, round-tripped into a live "
      "HeartbeatMonitor)\n");

  // Recovery latency: detect -> re-publish for a vanished replica's backlog.
  std::vector<RecoveryRow> rec_rows;
  for (const int backlog : {1, 8, 64}) {
    rec_rows.push_back(MeasureRecovery(exec, backlog, std::min(rounds, 50)));
  }
  std::printf("\n%-20s | %12s | %12s\n", "dead-replica backlog", "recovery ms",
              "per plan ms");
  std::printf("---------------------+--------------+--------------\n");
  for (const RecoveryRow& row : rec_rows) {
    std::printf("%-20d | %12.4f | %12.4f\n", row.backlog, row.recovery_ms,
                row.per_plan_ms);
  }
  std::printf(
      "(unclean connection drop -> death declared -> backlog re-published to "
      "2 survivors; reposts are key moves on resident bytes, no re-encode)\n");

  // Elastic membership: join-admission and drain-handoff latency.
  std::vector<MembershipRow> mem_rows;
  for (const int backlog : {4, 16, 64}) {
    mem_rows.push_back(MeasureMembership(exec, backlog, std::min(rounds, 50)));
  }
  std::printf("\n%-20s | %12s | %8s | %15s | %9s\n", "mid-epoch backlog",
              "join adm ms", "stolen", "drain handoff ms", "reposted");
  std::printf("---------------------+--------------+----------+"
              "-----------------+----------\n");
  for (const MembershipRow& row : mem_rows) {
    std::printf("%-20d | %12.4f | %8lld | %15.4f | %9lld\n", row.backlog,
                row.join_ms, static_cast<long long>(row.join_stolen),
                row.drain_ms, static_cast<long long>(row.drain_reposted));
  }
  std::printf(
      "(join = unknown replica turns alive -> admitted + fair share of the "
      "deepest backlog stolen to its spare keys; drain = request -> fence -> "
      "remaining backlog reposted to survivors -> ack; both are key moves on "
      "resident bytes)\n");

  // Observability overhead. Ordering matters: the shm publish rows run
  // before the trace-span row enables tracing, because tracer enablement is
  // sticky — so "armed" here means metrics armed, tracing off (the
  // steady-state production configuration), and "disarmed" means everything
  // off.
  std::vector<OverheadRow> ov_rows;
  {
    common::MetricsRegistry& reg = common::MetricsRegistry::Instance();
    common::Counter& counter = reg.GetCounter("bench_overhead_total");
    common::LatencyHistogram& hist = reg.GetHistogram("bench_overhead_us");
    constexpr int kOps = 4'000'000;
    const auto measure_metric = [&](const char* name, auto&& op) {
      OverheadRow row;
      row.name = name;
      common::Metrics::set_enabled(true);
      std::tie(row.armed_ns, row.armed_allocs) = MeasureOpNs(op, kOps);
      common::Metrics::set_enabled(false);
      std::tie(row.disarmed_ns, row.disarmed_allocs) = MeasureOpNs(op, kOps);
      common::Metrics::set_enabled(true);
      ov_rows.push_back(row);
    };
    measure_metric("counter add", [&](int) { counter.Add(); });
    measure_metric("histogram record",
                   [&](int i) { hist.RecordUs(i & 1023); });
    measure_metric("latency timer", [&](int) {
      const common::LatencyTimer timer;
      timer.ObserveInto(hist);
    });

    // The shm publish path, armed vs disarmed (µs-scale; shown in ns for
    // one table). The disarmed row is the ≤5%-regression / 0-extra-allocs
    // budget from the acceptance criteria.
    {
      OverheadRow row;
      row.name = "shm publish";
      int shm_tag = 0;
      const auto measure_shm = [&] {
        auto store = transport::ShmInstructionStore::Create(
            "/dynapipe-bench-ov-" + std::to_string(::getpid()) + "-" +
                std::to_string(shm_tag++),
            transport::ShmStoreOptions{});
        store->Push(-1, 0, exec);
        store->Fetch(-1, 0);  // warm: scratch + arena touched
        int64_t allocs = 0;
        double ms = 0.0;
        for (int i = 0; i < rounds; ++i) {
          const int64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
          const auto t0 = std::chrono::steady_clock::now();
          store->Push(i, 0, exec);
          ms += MsSince(t0);
          allocs += g_allocs.load(std::memory_order_relaxed) - allocs0;
          store->Fetch(i, 0);  // drain the slot, untimed
        }
        return std::pair<double, double>(ms * 1e6 / rounds,
                                         static_cast<double>(allocs) / rounds);
      };
      common::Metrics::set_enabled(true);
      std::tie(row.armed_ns, row.armed_allocs) = measure_shm();
      common::Metrics::set_enabled(false);
      std::tie(row.disarmed_ns, row.disarmed_allocs) = measure_shm();
      common::Metrics::set_enabled(true);
      ov_rows.push_back(row);
    }

    // Trace span last: enabling the tracer is process-sticky. Disarmed
    // (tracing off) measured first; armed records into this thread's ring.
    {
      OverheadRow row;
      row.name = "trace span";
      std::tie(row.disarmed_ns, row.disarmed_allocs) = MeasureOpNs(
          [](int i) { common::TraceSpan span("bench", "bench", i); }, kOps);
      common::Tracer::Instance().EnableToPath("/dev/null");
      std::tie(row.armed_ns, row.armed_allocs) = MeasureOpNs(
          [](int i) { common::TraceSpan span("bench", "bench", i); }, kOps);
      ov_rows.push_back(row);
    }
  }
  std::printf("\n%-20s | %11s | %13s | %12s | %15s\n", "instrument",
              "armed ns/op", "disarmed ns/op", "armed allocs",
              "disarmed allocs");
  std::printf("---------------------+-------------+---------------+"
              "--------------+----------------\n");
  for (const OverheadRow& row : ov_rows) {
    std::printf("%-20s | %11.1f | %13.1f | %12.2f | %15.2f\n", row.name,
                row.armed_ns, row.disarmed_ns, row.armed_allocs,
                row.disarmed_allocs);
  }
  std::printf(
      "(disarmed = one relaxed load + branch; shm publish rows are the full "
      "encode-into-arena push of the bench plan, metrics armed vs off — the "
      "alloc columns must match, instrumentation adds none; trace span armed "
      "writes a ring entry + two clock reads, no file I/O)\n");
  return 0;
}
