// Plan distribution latency: per-plan publish/fetch cost by store backend.
//
// The plan-ahead pipeline hides planning latency, but the *distribution* hop
// — publishing a serialized plan into the store and fetching it back on the
// executor side — sits on the critical path of every iteration start. This
// bench measures that hop per backend, same plan, same contract:
//
//   in-process         move the plan object (no encode)
//   in-process serde   encode on Push, decode on Fetch (plan_serde)
//   loopback wire      full frame protocol over in-memory streams
//   unix socket wire   full frame protocol over AF_UNIX, one connection per
//                      request (connect cost included — that is the wire
//                      path's real per-request price)
//
// Reported numbers go into bench/README.md ("Plan distribution"); the wire
// rows bound what a real multi-process deployment pays per plan, and the gap
// between serde and wire rows is pure transport (frames + syscalls + threads).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/bench_util.h"
#include "src/cost/pipeline_cost_model.h"
#include "src/data/minibatch_sampler.h"
#include "src/runtime/instruction_store.h"
#include "src/service/plan_serde.h"
#include "src/transport/remote_store.h"
#include "src/transport/store_server.h"
#include "src/transport/transport.h"

namespace {

using namespace dynapipe;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  const char* name;
  double push_ms;
  double fetch_ms;
};

Row Measure(const char* name, runtime::InstructionStoreInterface& store,
            const sim::ExecutionPlan& plan, int rounds) {
  // Warm-up round: first connect on a fresh socket path and first allocation
  // are not steady state.
  store.Push(-1, 0, plan);
  store.Fetch(-1, 0);
  double push_ms = 0.0;
  double fetch_ms = 0.0;
  for (int i = 0; i < rounds; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    store.Push(i, 0, plan);
    push_ms += MsSince(t0);
    t0 = std::chrono::steady_clock::now();
    const sim::ExecutionPlan fetched = store.Fetch(i, 0);
    fetch_ms += MsSince(t0);
    if (fetched.num_microbatches != plan.num_microbatches) {
      std::printf("!! %s corrupted a plan\n", name);
    }
  }
  return {name, push_ms / rounds, fetch_ms / rounds};
}

}  // namespace

int main() {
  // One representative plan from the bench epoch (GPT-3.35B, 4 stages,
  // 65k-token batch): a realistic instruction stream, not a toy.
  const auto cost_model = cost::PipelineCostModel::Profile(
      model::ModelConfig::Gpt3_35B(), model::HardwareSpec{}, {1, 1, 4},
      bench::BenchProfile());
  runtime::IterationPlanner planner(cost_model, bench::BenchPlanner());
  const data::Dataset dataset = bench::BenchDataset();
  data::MiniBatchSamplerOptions sopts;
  sopts.global_batch_tokens = 65'536;
  sopts.max_input_len = 2048;
  data::MiniBatchSampler sampler(dataset, sopts);
  runtime::IterationPlan plan = planner.PlanIteration(sampler.Next());
  if (!plan.feasible) {
    std::printf("planning failed: %s\n", plan.infeasible_reason.c_str());
    return 1;
  }
  const sim::ExecutionPlan& exec = plan.replicas[0].exec_plan;
  size_t instructions = 0;
  for (const auto& dev : exec.devices) {
    instructions += dev.instructions.size();
  }
  const std::string encoded = service::EncodeExecutionPlan(exec);
  std::printf("plan: %d microbatches, %d devices, %zu instructions, "
              "%zu encoded bytes\n\n",
              exec.num_microbatches, exec.num_devices(), instructions,
              encoded.size());

  constexpr int kRounds = 300;
  std::vector<Row> rows;
  {
    runtime::InstructionStore store;
    rows.push_back(Measure("in-process", store, exec, kRounds));
  }
  {
    runtime::InstructionStore store(
        runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
    rows.push_back(Measure("in-process serde", store, exec, kRounds));
  }
  {
    runtime::InstructionStore store(
        runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
    transport::LoopbackTransport transport;
    transport::InstructionStoreServer server(&transport, &store);
    auto client = transport::RemoteInstructionStore::OverTransport(&transport);
    rows.push_back(Measure("loopback wire", *client, exec, kRounds));
    server.Stop();
  }
  {
    runtime::InstructionStore store(
        runtime::InstructionStoreOptions{/*serialized=*/true, /*capacity=*/0});
    transport::UnixSocketTransport transport(
        "/tmp/dynapipe-bench-" + std::to_string(::getpid()) + ".sock");
    transport::InstructionStoreServer server(&transport, &store);
    auto client = transport::RemoteInstructionStore::OverTransport(&transport);
    rows.push_back(Measure("unix socket wire", *client, exec, kRounds));
    server.Stop();
  }

  std::printf("%-18s | %10s | %10s | %10s\n", "backend", "push ms", "fetch ms",
              "round trip");
  std::printf("-------------------+------------+------------+-----------\n");
  for (const Row& row : rows) {
    std::printf("%-18s | %10.4f | %10.4f | %10.4f\n", row.name, row.push_ms,
                row.fetch_ms, row.push_ms + row.fetch_ms);
  }
  std::printf("\n(%d rounds per backend; wire rows include one connect per "
              "request)\n",
              kRounds);
  return 0;
}
