// Fig. 15: padding efficiency case study on 8 GPUs — GPT-6.7B (single metric) and
// T5-11B (encoder and decoder sides reported separately), MLM+DS packing vs
// DynaPipe, swept over max sequence length and global batch size. The shapes to
// reproduce: GPT — both > 0.8 with DynaPipe slightly higher and packing improving
// with max seq len; T5 — packing's encoder-side efficiency is high but its
// decoder side is much lower, while DynaPipe is balanced across both.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace {

using namespace dynapipe;

struct EffRow {
  bool ok = false;
  double enc = 0.0;
  double dec = 0.0;
};

EffRow DynaEff(runtime::Trainer& trainer, const data::Dataset& dataset,
               const runtime::TrainerOptions& topts) {
  const runtime::EpochResult r =
      trainer.RunEpoch(dataset, bench::BenchPlanner(), topts);
  EffRow row;
  if (r.feasible) {
    row.ok = true;
    row.enc = r.padding.input_efficiency();
    row.dec = r.padding.target_efficiency();
  }
  return row;
}

EffRow PackEff(runtime::Trainer& trainer, const data::Dataset& dataset,
               const runtime::TrainerOptions& topts) {
  EffRow row;
  double best_tps = 0.0;
  for (const int32_t mbs : {1, 2, 4, 8}) {
    runtime::BaselineOptions base;
    base.batching = runtime::BaselineBatching::kPacking;
    base.microbatch_size = mbs;
    base.recompute = model::RecomputeMode::kSelective;
    const runtime::EpochResult r = trainer.RunEpochBaseline(dataset, base, topts);
    if (r.feasible && r.tokens_per_second() > best_tps) {
      best_tps = r.tokens_per_second();
      row.ok = true;
      row.enc = r.padding.input_efficiency();
      row.dec = r.padding.target_efficiency();
    }
  }
  return row;
}

void RunModel(model::ModelArch arch) {
  const model::ModelConfig config = model::ModelConfig::ForCluster(arch, 8);
  const model::HardwareSpec hw;
  const model::ParallelConfig parallel =
      arch == model::ModelArch::kGpt ? model::ParallelConfig{2, 1, 4}
                                     : model::ParallelConfig{1, 2, 4};
  runtime::Trainer trainer(config, hw, parallel, bench::BenchProfile());
  const data::Dataset dataset = bench::BenchDataset();
  const bool is_t5 = arch == model::ModelArch::kT5;

  auto fmt = [&](const EffRow& row) -> std::string {
    if (!row.ok) {
      return "OOM";
    }
    if (is_t5) {
      return TextTable::Fmt(row.enc, 3) + "/" + TextTable::Fmt(row.dec, 3);
    }
    return TextTable::Fmt(row.enc, 3);
  };

  std::printf("-- %s on 8 GPUs (%s)%s --\n", config.name.c_str(),
              parallel.ToString().c_str(), is_t5 ? " [enc/dec]" : "");
  {
    TextTable table({"max_seq_len", "MLM+DS", "DynaPipe"});
    runtime::TrainerOptions topts;
    topts.global_batch_tokens = 65'536;
    topts.max_iterations = 2;
    for (const int32_t seq : is_t5 ? std::vector<int32_t>{512, 1024, 2048, 4096}
                                   : std::vector<int32_t>{512, 1024, 2048, 4096,
                                                          8192}) {
      topts.max_input_len = seq;
      table.AddRow({std::to_string(seq), fmt(PackEff(trainer, dataset, topts)),
                    fmt(DynaEff(trainer, dataset, topts))});
    }
    std::printf("%s", table.ToString().c_str());
  }
  {
    TextTable table({"global_batch", "MLM+DS", "DynaPipe"});
    runtime::TrainerOptions topts;
    topts.max_input_len = 2048;
    topts.max_iterations = 2;
    for (const int64_t batch : {16'384ll, 32'768ll, 65'536ll, 131'072ll}) {
      topts.global_batch_tokens = batch;
      table.AddRow({std::to_string(batch), fmt(PackEff(trainer, dataset, topts)),
                    fmt(DynaEff(trainer, dataset, topts))});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 15", "padding efficiency case study");
  RunModel(model::ModelArch::kGpt);
  RunModel(model::ModelArch::kT5);
  std::printf("paper reference: GPT both > 0.8 (DynaPipe slightly higher); T5 "
              "packing enc high / dec low, DynaPipe balanced (Fig. 15)\n");
  return 0;
}
