// Fig. 4: preliminary comparison of packing vs dynamic micro-batching — normalized
// training throughput and padding efficiency vs maximum sequence length, for GPT
// and T5 on a fixed 4-GPU pipeline configuration. The shapes to reproduce: packing
// throughput decays sharply with max sequence length while dynamic micro-batching
// decays only mildly; padding efficiencies are comparable (both high).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace {

using namespace dynapipe;

void RunModel(model::ModelArch arch, const std::vector<int32_t>& seq_lens) {
  const model::ModelConfig config = model::ModelConfig::ForCluster(arch, 4);
  const model::HardwareSpec hw;
  // Fixed parallelism isolates the batching policy (Fig. 4 is single-setting).
  const model::ParallelConfig parallel =
      arch == model::ModelArch::kGpt ? model::ParallelConfig{1, 1, 4}
                                     : model::ParallelConfig{1, 2, 2};
  runtime::Trainer trainer(config, hw, parallel, bench::BenchProfile());
  const data::Dataset dataset = bench::BenchDataset();

  runtime::TrainerOptions topts;
  topts.global_batch_tokens = 65'536;
  topts.max_iterations = 2;

  struct Row {
    int32_t seq;
    double packing_tps = 0.0;
    double packing_eff = 0.0;
    double dynamic_tps = 0.0;
    double dynamic_eff = 0.0;
  };
  std::vector<Row> rows;
  double best_dynamic = 0.0;
  for (const int32_t seq : seq_lens) {
    Row row;
    row.seq = seq;
    topts.max_input_len = seq;
    const runtime::EpochResult dyn =
        trainer.RunEpoch(dataset, bench::BenchPlanner(), topts);
    if (dyn.feasible) {
      row.dynamic_tps = dyn.tokens_per_second();
      row.dynamic_eff = dyn.padding.overall_efficiency();
      best_dynamic = std::max(best_dynamic, row.dynamic_tps);
    }
    // Packing baseline: best over a small micro-batch-size / recompute sweep.
    for (const int32_t mbs : {1, 2, 4, 8}) {
      for (const auto mode : {model::RecomputeMode::kNone,
                              model::RecomputeMode::kSelective,
                              model::RecomputeMode::kFull}) {
        runtime::BaselineOptions base;
        base.batching = runtime::BaselineBatching::kPacking;
        base.microbatch_size = mbs;
        base.recompute = mode;
        const runtime::EpochResult packed =
            trainer.RunEpochBaseline(dataset, base, topts);
        if (packed.feasible && packed.tokens_per_second() > row.packing_tps) {
          row.packing_tps = packed.tokens_per_second();
          row.packing_eff = packed.padding.overall_efficiency();
        }
      }
    }
    rows.push_back(row);
  }

  TextTable table({"max_seq_len", "packing_tput(norm)", "dynamic_tput(norm)",
                   "packing_pad_eff", "dynamic_pad_eff"});
  for (const auto& row : rows) {
    table.AddRow({std::to_string(row.seq),
                  TextTable::Fmt(row.packing_tps / best_dynamic, 3),
                  TextTable::Fmt(row.dynamic_tps / best_dynamic, 3),
                  TextTable::Fmt(row.packing_eff, 3),
                  TextTable::Fmt(row.dynamic_eff, 3)});
  }
  std::printf("%s (%s, %s)\n%s",
              arch == model::ModelArch::kGpt ? "GPT" : "T5", config.name.c_str(),
              parallel.ToString().c_str(), table.ToString().c_str());
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 4", "packing vs dynamic micro-batching");
  RunModel(model::ModelArch::kGpt, {512, 1024, 2048, 4096, 8192});
  RunModel(model::ModelArch::kT5, {512, 1024, 2048, 4096});
  std::printf("paper reference: packing throughput drops >50%% from 512 to 8192; "
              "dynamic micro-batching only slightly; padding efficiency comparable "
              "(Fig. 4)\n");
  return 0;
}
