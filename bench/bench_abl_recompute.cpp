// Ablation (§7 "Dynamic recomputation"): throughput of static recomputation
// policies vs the dynamic per-iteration choice, under progressively tighter
// device memory. Dynamic recomputation should match kNone when memory is
// plentiful (no overhead) and keep training where static kNone OOMs, without
// paying kFull's overhead everywhere.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace dynapipe;
  bench::PrintHeader("Ablation", "dynamic vs static recomputation (§7)");

  const model::ModelConfig config = model::ModelConfig::Gpt3_35B();
  const model::ParallelConfig parallel{1, 1, 4};
  const data::Dataset dataset = bench::BenchDataset();

  TextTable table({"device_mem(GB)", "static kNone", "static kSelective",
                   "static kFull", "dynamic"});
  for (const double mem_gb : {40.0, 24.0, 18.0, 15.0}) {
    model::HardwareSpec hw;
    hw.device_memory_mb = mem_gb * 1024.0;
    runtime::Trainer trainer(config, hw, parallel, bench::BenchProfile());
    runtime::TrainerOptions topts;
    topts.global_batch_tokens = 32'768;
    topts.max_input_len = 4096;
    topts.max_iterations = 2;

    std::vector<std::string> row{TextTable::Fmt(mem_gb, 0)};
    for (const auto mode : {model::RecomputeMode::kNone,
                            model::RecomputeMode::kSelective,
                            model::RecomputeMode::kFull}) {
      runtime::PlannerOptions popts = bench::BenchPlanner();
      popts.dynamic_recompute = false;
      popts.static_recompute = mode;
      const runtime::EpochResult r = trainer.RunEpoch(dataset, popts, topts);
      row.push_back(r.feasible ? TextTable::Fmt(r.tokens_per_second(), 0) : "OOM");
    }
    runtime::PlannerOptions dyn = bench::BenchPlanner();
    dyn.dynamic_recompute = true;
    const runtime::EpochResult r = trainer.RunEpoch(dataset, dyn, topts);
    row.push_back(r.feasible ? TextTable::Fmt(r.tokens_per_second(), 0) : "OOM");
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("takeaway: dynamic recomputation tracks the best feasible static "
              "policy at every memory budget — no overhead when memory allows, "
              "graceful degradation instead of OOM when it does not.\n");
  return 0;
}
