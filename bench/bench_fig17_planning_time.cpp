// Fig. 17: execution planning time. (a) single-thread planning time per iteration
// vs global batch size, for GPT and T5; (b) ratio of planning time to (simulated)
// iteration time. The paper's claim: the ratio peaks around ~13x, so planning
// fully overlaps training with a modest number of CPU cores; our planner is far
// cheaper in absolute terms (C++ end to end, smaller N), but the growth-with-batch
// shape and the "ratio is small and bounded" property are the comparison targets.
//
// Two planner variants run per batch size (bench/README.md "Planning-time
// methodology"):
//   seed     — uncached cost oracle, fully serial planning (the seed code path)
//   par+cache — memoized cost oracle + 4-thread pool for recompute modes and
//               per-t_max DPs
// Plans are bit-identical between the two; only planning latency changes, so
// "speedup" is their plan-time ratio and "hit%" is the cost-cache hit rate.
// The first kWarmupIters iterations are excluded from both variants' stats:
// the cost cache lives for the planner's lifetime, so a training run's steady
// state — the regime Fig. 17 is about, where planning must keep up with the
// GPU for thousands of iterations — is the warm cache, not the first batch.
//
// A second table measures the plan-ahead service (src/service): per-iteration
// planning *stall* — the time the executors actually waited for a plan — as a
// function of lookahead depth and the cross-iteration plan cache. Stall, not
// planning time, is the paper's Fig. 17 claim ("planning hides behind GPU
// execution"); see bench/README.md "Plan-ahead methodology".
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/cost/pipeline_cost_model.h"
#include "src/data/minibatch_sampler.h"
#include "src/service/plan_cache.h"
#include "src/service/plan_serde.h"

namespace {

using namespace dynapipe;

constexpr size_t kWarmupIters = 8;
constexpr int32_t kMeasuredIters = 24;

struct EpochPlanTimes {
  RunningStats plan_stats;
  std::vector<double> plan_ms;
  RunningStats iter_stats;
  RunningStats stall_stats;
  std::vector<double> stall_ms;
  double hit_rate = 0.0;
  double plan_cache_hit_rate = 0.0;
  int64_t serialized_kb = 0;
  // Incremental planning (RunIncremental): partition-phase time, prefix-cache
  // hit rate, warm-start candidates pruned per iteration, and the predicted
  // iteration times in iteration order (compared bitwise across variants as
  // the bench's bit-identity guard).
  RunningStats partition_stats;
  double prefix_hit_rate = 0.0;
  double pruned_per_iter = 0.0;
  std::vector<double> predicted_ms;
  bool ok = false;
};

EpochPlanTimes MeasureEpoch(runtime::Trainer& trainer, const data::Dataset& dataset,
                            const runtime::PlannerOptions& planner, int64_t batch,
                            const runtime::TrainerOptions& base_topts = {}) {
  runtime::TrainerOptions topts = base_topts;
  topts.global_batch_tokens = batch;
  topts.max_input_len = 2048;
  topts.max_iterations = kMeasuredIters;
  const runtime::EpochResult r = trainer.RunEpoch(dataset, planner, topts);
  EpochPlanTimes out;
  if (!r.feasible) {
    return out;
  }
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t prefix_hits = 0;
  int64_t prefix_misses = 0;
  int64_t pruned = 0;
  for (size_t i = kWarmupIters; i < r.records.size(); ++i) {
    const auto& rec = r.records[i];
    out.plan_ms.push_back(rec.planning_ms);
    out.plan_stats.Add(rec.planning_ms);
    out.iter_stats.Add(rec.measured_ms);
    out.stall_ms.push_back(rec.plan_stall_ms);
    out.stall_stats.Add(rec.plan_stall_ms);
    out.partition_stats.Add(rec.partition_ms);
    out.predicted_ms.push_back(rec.predicted_ms);
    hits += rec.cost_cache_hits;
    misses += rec.cost_cache_misses;
    prefix_hits += rec.prefix_cache_hits;
    prefix_misses += rec.prefix_cache_misses;
    pruned += rec.warmstart_pruned;
  }
  out.hit_rate = hits + misses == 0
                     ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(hits + misses);
  out.prefix_hit_rate =
      prefix_hits + prefix_misses == 0
          ? 0.0
          : static_cast<double>(prefix_hits) /
                static_cast<double>(prefix_hits + prefix_misses);
  out.pruned_per_iter =
      out.plan_ms.empty() ? 0.0
                          : static_cast<double>(pruned) /
                                static_cast<double>(out.plan_ms.size());
  const int64_t plan_lookups = r.plan_cache_hits + r.plan_cache_misses;
  out.plan_cache_hit_rate =
      plan_lookups == 0 ? 0.0
                        : static_cast<double>(r.plan_cache_hits) /
                              static_cast<double>(plan_lookups);
  out.serialized_kb = r.serialized_plan_bytes / 1024;
  // An epoch that drained inside the warm-up window has no steady state to
  // report (and Percentile() on an empty vector would abort).
  out.ok = !out.plan_ms.empty();
  return out;
}

void RunModel(model::ModelArch arch, int32_t pool_threads) {
  const model::ModelConfig config = model::ModelConfig::ForCluster(arch, 4);
  const model::HardwareSpec hw;
  const model::ParallelConfig parallel =
      arch == model::ModelArch::kGpt ? model::ParallelConfig{1, 1, 4}
                                     : model::ParallelConfig{1, 2, 2};
  runtime::Trainer trainer(config, hw, parallel, bench::BenchProfile());
  // Large enough that the biggest global batch sustains kMeasuredIters
  // iterations without draining the epoch.
  const data::Dataset dataset = bench::BenchDataset(16'000);

  runtime::PlannerOptions seed_planner = bench::BenchPlanner();
  seed_planner.cost_cache = false;
  seed_planner.pool = nullptr;

  ThreadPool pool(pool_threads);
  runtime::PlannerOptions par_planner = bench::BenchPlanner();
  par_planner.cost_cache = true;
  par_planner.pool = &pool;

  TextTable table({"global_batch", "seed_plan_ms", "par_plan_ms", "speedup",
                   "cache_hit%", "plan_ms(p95)", "iter_ms(mean)",
                   "plan/iter ratio"});
  for (const int64_t batch : {16'384ll, 32'768ll, 65'536ll, 131'072ll}) {
    const EpochPlanTimes seed = MeasureEpoch(trainer, dataset, seed_planner, batch);
    const EpochPlanTimes par = MeasureEpoch(trainer, dataset, par_planner, batch);
    if (!seed.ok || !par.ok) {
      table.AddRow({std::to_string(batch), "OOM", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    table.AddRow({std::to_string(batch), TextTable::Fmt(seed.plan_stats.mean(), 1),
                  TextTable::Fmt(par.plan_stats.mean(), 1),
                  TextTable::Fmt(seed.plan_stats.mean() / par.plan_stats.mean(), 2),
                  TextTable::Fmt(100.0 * par.hit_rate, 1),
                  TextTable::Fmt(Percentile(par.plan_ms, 95.0), 1),
                  TextTable::Fmt(par.iter_stats.mean(), 1),
                  TextTable::Fmt(par.plan_stats.mean() / par.iter_stats.mean(), 2)});
  }
  std::printf("-- %s (%s), pool=%d --\n%s\n", config.name.c_str(),
              parallel.ToString().c_str(), pool_threads, table.ToString().c_str());
}

// Plan-ahead stall: how much planning latency the executors actually see per
// iteration under the PlanAheadService, at lookahead 0 (inline: stall ==
// planning time) vs >= 2 (pipelined), and with the cross-iteration plan cache
// replaying an epoch (recurring batch signatures skip planning entirely).
// Plans are serialized through the instruction store in every row, so the
// stall numbers include the encode/decode distribution path.
void RunPlanAhead(model::ModelArch arch, int32_t pool_threads, int64_t batch) {
  const model::ModelConfig config = model::ModelConfig::ForCluster(arch, 4);
  const model::HardwareSpec hw;
  const model::ParallelConfig parallel =
      arch == model::ModelArch::kGpt ? model::ParallelConfig{1, 1, 4}
                                     : model::ParallelConfig{1, 2, 2};
  const data::Dataset dataset = bench::BenchDataset(16'000);

  ThreadPool pool(pool_threads);
  runtime::PlannerOptions planner = bench::BenchPlanner();
  planner.cost_cache = true;
  planner.pool = &pool;

  struct Row {
    const char* label;
    int32_t lookahead;
    bool plan_cache;
    int32_t epochs;  // epoch > 1 replays the same sampler stream (cache hits)
  };
  const Row rows[] = {
      {"inline (lookahead 0)", 0, false, 1},
      {"lookahead 2", 2, false, 1},
      {"lookahead 4", 4, false, 1},
      {"lookahead 2 + plan cache, epoch 2", 2, true, 2},
  };

  TextTable table({"variant", "stall_ms(mean)", "stall_ms(p95)", "plan_ms(mean)",
                   "plan$ hit%", "plan_bytes(KB)"});
  for (const Row& row : rows) {
    // Fresh trainer per row: the plan cache lives on the trainer, so hit-rate
    // rows warm it with their own first epoch instead of inheriting state.
    runtime::Trainer trainer(config, hw, parallel, bench::BenchProfile());
    runtime::TrainerOptions topts;
    topts.plan_lookahead = row.lookahead;
    topts.plan_cache = row.plan_cache;
    topts.serialize_plans = true;
    EpochPlanTimes last;
    for (int32_t e = 0; e < row.epochs; ++e) {
      last = MeasureEpoch(trainer, dataset, planner, batch, topts);
      if (!last.ok) {
        break;
      }
    }
    if (!last.ok) {
      table.AddRow({row.label, "OOM", "-", "-", "-", "-"});
      continue;
    }
    table.AddRow({row.label, TextTable::Fmt(last.stall_stats.mean(), 2),
                  TextTable::Fmt(Percentile(last.stall_ms, 95.0), 2),
                  TextTable::Fmt(last.plan_stats.mean(), 1),
                  TextTable::Fmt(100.0 * last.plan_cache_hit_rate, 1),
                  std::to_string(last.serialized_kb)});
  }
  std::printf("-- %s plan-ahead stall (batch=%lld tokens, pool=%d) --\n%s\n",
              config.name.c_str(), static_cast<long long>(batch), pool_threads,
              table.ToString().c_str());
}

// Plan-cache quantization trade-off (ROADMAP PR 2): rounding sequence
// lengths up to a multiple q before keying *and* planning trades padding for
// cache hits. T5 is the interesting arch — its two-dimensional
// (input, target) shape space rarely repeats exactly, so the exact cache
// (q=1) starves on anything but a literal replay. Each row runs three
// epochs: epoch 1 warms the cache (seed A), "replay" re-runs seed A (exact-
// match territory — 100% at any q), and "x-shuf" runs a *different* shuffle
// (seed B) — the regime the knob exists for, where only quantized signatures
// can collapse nearly-identical batches onto a cached plan. Padding and
// throughput columns come from the cross-shuffle epoch: what the rounding
// costs in padded tokens and what that nets out to end to end.
void RunQuantization(model::ModelArch arch, int32_t pool_threads,
                     int64_t batch) {
  const model::ModelConfig config = model::ModelConfig::ForCluster(arch, 4);
  const model::HardwareSpec hw;
  const model::ParallelConfig parallel =
      arch == model::ModelArch::kGpt ? model::ParallelConfig{1, 1, 4}
                                     : model::ParallelConfig{1, 2, 2};
  const data::Dataset dataset = bench::BenchDataset(16'000);

  ThreadPool pool(pool_threads);
  runtime::PlannerOptions planner = bench::BenchPlanner();
  planner.cost_cache = true;
  planner.pool = &pool;

  TextTable table({"quantization", "replay plan$ hit%", "x-shuf plan$ hit%",
                   "padding eff%", "tokens/s", "stall_ms(mean)"});
  for (const int32_t q : {1, 16, 32, 64}) {
    // Fresh trainer per row: the plan cache lives on the trainer and its
    // signatures embed q, so rows must not share state.
    runtime::Trainer trainer(config, hw, parallel, bench::BenchProfile());
    runtime::TrainerOptions topts;
    topts.global_batch_tokens = batch;
    topts.max_input_len = 2048;
    topts.max_iterations = kMeasuredIters;
    topts.plan_lookahead = 2;
    topts.plan_cache = true;
    topts.plan_cache_quantization = q;
    topts.serialize_plans = true;
    const runtime::EpochResult warm = trainer.RunEpoch(dataset, planner, topts);
    const runtime::EpochResult replay =
        trainer.RunEpoch(dataset, planner, topts);
    runtime::TrainerOptions shuffled = topts;
    shuffled.sampler_seed = topts.sampler_seed + 1;
    const runtime::EpochResult xshuf =
        trainer.RunEpoch(dataset, planner, shuffled);
    if (!warm.feasible || !replay.feasible || !xshuf.feasible) {
      table.AddRow({std::to_string(q), "OOM", "-", "-", "-", "-"});
      continue;
    }
    const auto hit_rate = [](const runtime::EpochResult& r) {
      const int64_t lookups = r.plan_cache_hits + r.plan_cache_misses;
      return lookups == 0 ? 0.0
                          : 100.0 * static_cast<double>(r.plan_cache_hits) /
                                static_cast<double>(lookups);
    };
    RunningStats stall;
    for (const auto& rec : xshuf.records) {
      stall.Add(rec.plan_stall_ms);
    }
    table.AddRow({std::to_string(q), TextTable::Fmt(hit_rate(replay), 1),
                  TextTable::Fmt(hit_rate(xshuf), 1),
                  TextTable::Fmt(100.0 * xshuf.padding.overall_efficiency(), 1),
                  TextTable::Fmt(xshuf.tokens_per_second(), 0),
                  TextTable::Fmt(stall.mean(), 2)});
  }
  std::printf("-- %s plan-cache quantization (batch=%lld tokens, pool=%d; "
              "replay = same shuffle, x-shuf = fresh shuffle) --\n%s\n",
              config.name.c_str(), static_cast<long long>(batch), pool_threads,
              table.ToString().c_str());
}

// Incremental planning (sub-plan memoization): cross-shuffle planning time.
// The regime the incremental layer exists for is the one the exact plan cache
// starves in (see RunQuantization): a *fresh shuffle* of the same dataset,
// where batch signatures never repeat verbatim but the sorted length-run
// prefixes the DP actually consumes mostly do. Each variant warms a fresh
// trainer with one epoch on shuffle seed A, then measures an epoch on shuffle
// seed B. "off" disables incremental planning; "on" carries the trainer's
// epoch-spanning PrefixWindowCache / StageCostCache / warm-start seeds into
// the cross-shuffle epoch. Plans are bit-identical by construction — the
// table's final row asserts it by comparing every measured iteration's
// predicted time bits and micro-batch count across the two variants (same
// sampler seeds, so the same batches in the same order).
void RunIncremental(model::ModelArch arch, int32_t pool_threads,
                    int64_t batch) {
  const model::ModelConfig config = model::ModelConfig::ForCluster(arch, 4);
  const model::HardwareSpec hw;
  const model::ParallelConfig parallel =
      arch == model::ModelArch::kGpt ? model::ParallelConfig{1, 1, 4}
                                     : model::ParallelConfig{1, 2, 2};
  const data::Dataset dataset = bench::BenchDataset(16'000);

  ThreadPool pool(pool_threads);
  struct Variant {
    const char* label;
    bool incremental;
    int32_t quantization;
    EpochPlanTimes times;
  };
  // Raw rows are the honest baseline: T5's two-dimensional (input, target)
  // lengths rarely repeat at the sorted batch front, so the prefix cache
  // stays cold and "on" must merely not regress. The quantized rows are the
  // near-match regime the layer exists for: canonicalized lengths collapse
  // the dense short-sample front into long runs that recur across shuffles.
  Variant variants[] = {{"raw, incremental off", false, 1, {}},
                        {"raw, incremental on", true, 1, {}},
                        {"q=64, incremental off", false, 64, {}},
                        {"q=64, incremental on", true, 64, {}}};
  for (Variant& v : variants) {
    runtime::PlannerOptions planner = bench::BenchPlanner();
    planner.cost_cache = true;
    planner.pool = &pool;
    planner.incremental_planning = v.incremental;
    // Paper-typical micro-batch cap (the grid sweeps 1..16). Also the prefix
    // cache's usefulness threshold: a shared prefix shorter than the cap
    // reuses nothing (window row i reads samples [i, i + cap)), and measured
    // cross-shuffle shared prefixes at q=64 run ~50 samples — far below
    // BenchPlanner's 128 cap, comfortably above 16.
    planner.max_microbatch_size = 16;
    // Fresh trainer per variant: the incremental caches live on the trainer,
    // so "off" must not inherit "on"'s state (or vice versa).
    runtime::Trainer trainer(config, hw, parallel, bench::BenchProfile());
    runtime::TrainerOptions topts;
    if (v.quantization > 1) {
      // Quantized canonicalization rides the plan-ahead cache path. The exact
      // cache itself stays cold in the measured epoch (cross-shuffle
      // signatures never repeat verbatim — RunQuantization's x-shuf column),
      // so every measured iteration still plans and the timing deltas below
      // are the planner's own.
      topts.plan_cache = true;
      topts.plan_cache_quantization = v.quantization;
    }
    MeasureEpoch(trainer, dataset, planner, batch, topts);  // warm: shuffle A
    runtime::TrainerOptions cross = topts;
    cross.sampler_seed = topts.sampler_seed + 1;  // measured: shuffle B
    v.times = MeasureEpoch(trainer, dataset, planner, batch, cross);
  }

  TextTable table({"variant", "plan_ms(mean)", "plan_ms(p95)",
                   "partition_ms(mean)", "prefix hit%", "pruned/iter",
                   "speedup", "bit-identical"});
  for (size_t i = 0; i < 4; ++i) {
    Variant& v = variants[i];
    if (!v.times.ok) {
      table.AddRow({v.label, "OOM", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    const EpochPlanTimes& off = variants[i & ~size_t{1}].times;  // same-q off
    // Same dataset, same sampler seeds, same quantization → the same batches
    // in the same order, so predicted iteration times must match bit for bit
    // between the off/on pair.
    std::string identical = "-";
    if (v.incremental && off.ok) {
      identical = v.times.predicted_ms.size() == off.predicted_ms.size() &&
                          std::memcmp(v.times.predicted_ms.data(),
                                      off.predicted_ms.data(),
                                      off.predicted_ms.size() *
                                          sizeof(double)) == 0
                      ? "yes"
                      : "NO — BUG";
    }
    table.AddRow(
        {v.label, TextTable::Fmt(v.times.plan_stats.mean(), 1),
         TextTable::Fmt(Percentile(v.times.plan_ms, 95.0), 1),
         TextTable::Fmt(v.times.partition_stats.mean(), 1),
         TextTable::Fmt(100.0 * v.times.prefix_hit_rate, 1),
         TextTable::Fmt(v.times.pruned_per_iter, 1),
         v.incremental && off.ok && off.plan_stats.mean() > 0.0
             ? TextTable::Fmt(off.plan_stats.mean() / v.times.plan_stats.mean(),
                              2)
             : std::string("1.00"),
         identical});
  }
  std::printf("-- %s incremental planning, cross-shuffle (batch=%lld tokens, "
              "pool=%d; warm epoch on shuffle A, measured on shuffle B) "
              "--\n%s\n",
              config.name.c_str(), static_cast<long long>(batch), pool_threads,
              table.ToString().c_str());
}

// --incremental-smoke: fast bit-identity gate for check.sh. Plans the same
// mini-batch stream (two different shuffles of a small FLAN-like dataset)
// twice — a planner with incremental planning off vs a persistent planner
// carrying the prefix/stage caches and its own warm seeds across batches —
// and fails (exit 1) if any iteration's encoded execution plan bytes or
// predicted-time bits differ. Two passes: raw lengths (prefix cache mostly
// cold — the no-regression leg) and q=32 canonicalized lengths (the
// near-match regime, where the gate also demands the prefix cache actually
// hit — a hit-path that never fires would make the bit-identity check
// vacuous). This is the end-to-end "incremental planning is invisible in the
// plans" contract, enforced on every CI run.
int RunIncrementalSmoke() {
  const model::ModelConfig config =
      model::ModelConfig::ForCluster(model::ModelArch::kT5, 4);
  const model::HardwareSpec hw;
  const model::ParallelConfig parallel{1, 2, 2};
  cost::ProfileOptions popts;
  popts.max_microbatch_size = 32;
  popts.max_seq_len = 4096;
  const cost::PipelineCostModel cm =
      cost::PipelineCostModel::Profile(config, hw, parallel, popts);

  runtime::PlannerOptions base;
  base.max_tmax_candidates = 48;
  base.tmax_interval_ms = 0.5;
  // Shared prefixes must exceed the micro-batch cap to be reusable, so keep
  // the cap small relative to the batch size below (n ~ 100 samples).
  base.max_microbatch_size = 16;
  base.dynamic_recompute = true;
  base.cost_cache = true;
  runtime::PlannerOptions off = base;
  off.incremental_planning = false;
  runtime::PlannerOptions on = base;
  on.incremental_planning = true;

  data::FlanGeneratorOptions gen;
  gen.num_samples = 2000;
  gen.length_cap = 512;
  const data::Dataset dataset = data::GenerateFlanLikeDataset(gen);

  for (const int32_t quantization : {1, 64}) {
    // Fresh planners per pass: the incremental caches live on the planner,
    // and the raw pass must not warm the quantized one (or vice versa).
    const runtime::IterationPlanner cold(cm, off);
    const runtime::IterationPlanner incremental(cm, on);
    int64_t iterations = 0;
    int64_t prefix_hits = 0;
    for (const uint64_t shuffle : {7ull, 8ull}) {
      data::MiniBatchSamplerOptions sopts;
      sopts.global_batch_tokens = 16'384;
      sopts.max_input_len = 512;
      sopts.seed = shuffle;
      data::MiniBatchSampler sampler(dataset, sopts);
      for (int b = 0; b < 6 && sampler.HasNext(); ++b, ++iterations) {
        const std::vector<data::Sample> minibatch =
            service::PlanCache::CanonicalizeForPlanning(
                sampler.Next(), /*fold_target_lengths=*/false, quantization);
        const runtime::IterationPlan want = cold.PlanIteration(minibatch);
        const runtime::IterationPlan got = incremental.PlanIteration(minibatch);
        prefix_hits += got.stats.prefix_cache_hits;
        if (got.feasible != want.feasible) {
          std::fprintf(stderr,
                       "incremental-smoke FAILED: feasibility diverged at "
                       "q=%d shuffle %llu batch %d\n",
                       quantization, static_cast<unsigned long long>(shuffle),
                       b);
          return 1;
        }
        if (!want.feasible) {
          continue;
        }
        if (std::memcmp(&got.predicted_iteration_ms,
                        &want.predicted_iteration_ms, sizeof(double)) != 0) {
          std::fprintf(stderr,
                       "incremental-smoke FAILED: predicted time bits diverged "
                       "at q=%d shuffle %llu batch %d (%.17g vs %.17g)\n",
                       quantization, static_cast<unsigned long long>(shuffle),
                       b, got.predicted_iteration_ms,
                       want.predicted_iteration_ms);
          return 1;
        }
        if (got.replicas.size() != want.replicas.size()) {
          std::fprintf(stderr, "incremental-smoke FAILED: replica count\n");
          return 1;
        }
        for (size_t d = 0; d < want.replicas.size(); ++d) {
          const std::string got_bytes =
              service::EncodeExecutionPlan(got.replicas[d].exec_plan);
          const std::string want_bytes =
              service::EncodeExecutionPlan(want.replicas[d].exec_plan);
          if (got_bytes != want_bytes) {
            std::fprintf(stderr,
                         "incremental-smoke FAILED: plan bytes diverged at "
                         "q=%d shuffle %llu batch %d replica %zu "
                         "(%zu vs %zu bytes)\n",
                         quantization,
                         static_cast<unsigned long long>(shuffle), b, d,
                         got_bytes.size(), want_bytes.size());
            return 1;
          }
        }
      }
    }
    if (quantization > 1 && prefix_hits == 0) {
      std::fprintf(stderr,
                   "incremental-smoke FAILED: prefix cache never hit on "
                   "q=%d canonicalized batches — reuse path untested\n",
                   quantization);
      return 1;
    }
    std::printf("incremental-smoke q=%d: %lld iterations bit-identical across "
                "two shuffles (%lld prefix-cache hits)\n",
                quantization, static_cast<long long>(iterations),
                static_cast<long long>(prefix_hits));
  }
  std::printf("incremental-smoke OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--incremental-smoke") == 0) {
    return RunIncrementalSmoke();
  }
  bench::PrintHeader("Fig. 17", "execution planning time");
  constexpr int32_t kPoolThreads = 4;
  RunModel(model::ModelArch::kGpt, kPoolThreads);
  RunModel(model::ModelArch::kT5, kPoolThreads);
  RunPlanAhead(model::ModelArch::kGpt, kPoolThreads, 65'536);
  RunPlanAhead(model::ModelArch::kT5, kPoolThreads, 65'536);
  RunQuantization(model::ModelArch::kT5, kPoolThreads, 65'536);
  RunIncremental(model::ModelArch::kT5, kPoolThreads, 131'072);
  std::printf("paper reference: planning time grows with global batch size; "
              "plan/iteration ratio stays small enough to overlap with training "
              "(peaks at 12.9x single-thread in the paper) (Fig. 17). Here the "
              "memoized cost oracle + 4-thread pool give the `speedup` column "
              "over the serial seed planner, with identical plans. The "
              "plan-ahead tables report the *stall* executors see through the "
              "PlanAheadService: lookahead >= 2 overlaps planning with "
              "execution (needs spare cores), and a replayed epoch's plan-cache "
              "hits drive stall to ~0 on any machine. The quantization table "
              "trades padding for fresh-epoch hit rate on T5's diverse shape "
              "space (bench/README.md \"Quantization trade-off\").\n");
  return 0;
}
