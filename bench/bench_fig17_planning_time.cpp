// Fig. 17: execution planning time. (a) single-thread planning time per iteration
// vs global batch size, for GPT and T5; (b) ratio of planning time to (simulated)
// iteration time. The paper's claim: the ratio peaks around ~13x, so planning
// fully overlaps training with a modest number of CPU cores; our planner is far
// cheaper in absolute terms (C++ end to end, smaller N), but the growth-with-batch
// shape and the "ratio is small and bounded" property are the comparison targets.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace {

using namespace dynapipe;

void RunModel(model::ModelArch arch) {
  const model::ModelConfig config = model::ModelConfig::ForCluster(arch, 4);
  const model::HardwareSpec hw;
  const model::ParallelConfig parallel =
      arch == model::ModelArch::kGpt ? model::ParallelConfig{1, 1, 4}
                                     : model::ParallelConfig{1, 2, 2};
  runtime::Trainer trainer(config, hw, parallel, bench::BenchProfile());
  const data::Dataset dataset = bench::BenchDataset();

  TextTable table({"global_batch", "plan_ms(mean)", "plan_ms(p95)", "iter_ms(mean)",
                   "plan/iter ratio"});
  for (const int64_t batch : {16'384ll, 32'768ll, 65'536ll, 131'072ll}) {
    runtime::TrainerOptions topts;
    topts.global_batch_tokens = batch;
    topts.max_input_len = 2048;
    topts.max_iterations = 4;
    const runtime::EpochResult r =
        trainer.RunEpoch(dataset, bench::BenchPlanner(), topts);
    if (!r.feasible) {
      table.AddRow({std::to_string(batch), "OOM", "-", "-", "-"});
      continue;
    }
    std::vector<double> plan_ms;
    RunningStats plan_stats;
    RunningStats iter_stats;
    for (const auto& rec : r.records) {
      plan_ms.push_back(rec.planning_ms);
      plan_stats.Add(rec.planning_ms);
      iter_stats.Add(rec.measured_ms);
    }
    table.AddRow({std::to_string(batch), TextTable::Fmt(plan_stats.mean(), 1),
                  TextTable::Fmt(Percentile(plan_ms, 95.0), 1),
                  TextTable::Fmt(iter_stats.mean(), 1),
                  TextTable::Fmt(plan_stats.mean() / iter_stats.mean(), 2)});
  }
  std::printf("-- %s (%s) --\n%s\n", config.name.c_str(), parallel.ToString().c_str(),
              table.ToString().c_str());
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 17", "execution planning time");
  RunModel(model::ModelArch::kGpt);
  RunModel(model::ModelArch::kT5);
  std::printf("paper reference: planning time grows with global batch size; "
              "plan/iteration ratio stays small enough to overlap with training "
              "(peaks at 12.9x single-thread in the paper) (Fig. 17)\n");
  return 0;
}
