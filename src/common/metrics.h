// Process-wide metrics: lock-free counters, gauges, and exponential-bucket
// latency histograms behind one registry, with point-in-time snapshots and
// Prometheus-style text export.
//
// Cost discipline mirrors FaultInjector: the *disarmed* hot path is one
// relaxed atomic load and a predictable branch — no clock read, no lock, no
// allocation. Armed (the default), a counter increment is one relaxed
// fetch_add and a histogram record is three. Registration (name lookup) takes
// the registry mutex, so call sites resolve their instruments once — a
// function-local `static Counter&` or a cached member reference — and never
// touch the registry on the hot path.
//
// The registry never deletes an instrument; returned references stay valid
// for the life of the process, which is what makes the cached-reference
// pattern safe.
#ifndef DYNAPIPE_SRC_COMMON_METRICS_H_
#define DYNAPIPE_SRC_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dynapipe::common {

// Global arm switch. Metrics are armed by default (they are cheap enough to
// leave on); `set_enabled(false)` turns every instrument into the one-load
// no-op — the state the bench's "disarmed" rows and the ≤5% shm-publish
// budget are measured in.
class Metrics {
 public:
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

 private:
  static std::atomic<bool> enabled_;
};

class Counter {
 public:
  void Add(int64_t n = 1) {
    if (!Metrics::enabled()) {
      return;
    }
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) {
    if (!Metrics::enabled()) {
      return;
    }
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!Metrics::enabled()) {
      return;
    }
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Latency histogram with exponential (power-of-two) microsecond buckets:
// bucket 0 holds samples <= 1us, bucket i holds (2^(i-1), 2^i] us. 40 buckets
// reach ~2^39 us (~6 days); larger samples clamp into the last bucket — the
// exponential range makes genuine overflow impossible for any latency this
// system produces, so no overflow counter is kept here (the fixed-range
// `dynapipe::Histogram` is the one that needed it).
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 40;

  void RecordUs(int64_t us) {
    if (!Metrics::enabled()) {
      return;
    }
    if (us < 0) {
      us = 0;
    }
    buckets_[BucketFor(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
  }
  void RecordMs(double ms) {
    RecordUs(ms <= 0 ? 0 : static_cast<int64_t>(ms * 1000.0));
  }

  static int BucketFor(int64_t us) {
    // bit_width(0)=0, bit_width(1)=1 -> bucket 0; bit_width(2)=2 -> bucket 1.
    int w = 0;
    for (uint64_t v = static_cast<uint64_t>(us); v != 0; v >>= 1) {
      ++w;
    }
    const int idx = w <= 1 ? 0 : w - 1;
    return idx >= kNumBuckets ? kNumBuckets - 1 : idx;
  }
  // Inclusive upper bound of bucket i, in microseconds.
  static int64_t BucketUpperUs(int i) { return int64_t{1} << i; }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_us_{0};
};

// Starts the clock only when metrics are armed, so a disarmed timed section
// costs one relaxed load at construction and one at observation — no
// steady_clock reads.
class LatencyTimer {
 public:
  LatencyTimer() : armed_(Metrics::enabled()) {
    if (armed_) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  void ObserveInto(LatencyHistogram& hist) const {
    if (!armed_ || !Metrics::enabled()) {
      return;
    }
    hist.RecordUs(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }

 private:
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

// Point-in-time copy of every registered instrument, name-sorted. Also the
// unit that crosses the wire in a kStatsReply (codec in
// src/transport/frame.h) and folds into EpochResult.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    int64_t count = 0;
    int64_t sum_us = 0;
    // Trailing zero buckets trimmed; at most kNumBuckets entries.
    std::vector<int64_t> buckets;
  };

  std::vector<CounterValue> counters;
  std::vector<CounterValue> gauges;
  std::vector<HistogramValue> histograms;

  // 0 / nullptr when the name is absent.
  int64_t counter(std::string_view name) const;
  int64_t gauge(std::string_view name) const;
  const HistogramValue* histogram(std::string_view name) const;

  // This snapshot minus `earlier`, matched by name — the mid-epoch delta.
  // Instruments absent from `earlier` keep their full value; gauges are not
  // differenced (a gauge is a level, not a rate).
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  std::string ToPrometheusText(std::string_view prefix = "dynapipe_") const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  // Registration: O(log n) under a mutex, idempotent per name. Call once and
  // cache the reference.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  LatencyHistogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  std::string PrometheusText() const { return Snapshot().ToPrometheusText(); }

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

// The per-backend instrument bundle every InstructionStoreInterface
// implementation records into. `For` interns by backend name — callers cache
// the returned reference.
struct StoreMetrics {
  Counter& push_total;
  Counter& fetch_total;
  Counter& bytes_pushed;
  LatencyHistogram& push_us;
  LatencyHistogram& fetch_us;
  // Time spent parked on capacity backpressure inside a push.
  LatencyHistogram& park_us;

  static StoreMetrics& For(const char* backend);
};

}  // namespace dynapipe::common

#endif  // DYNAPIPE_SRC_COMMON_METRICS_H_
