#include "src/common/thread_pool.h"

namespace dynapipe {

ThreadPool::ThreadPool(int32_t num_threads) {
  DYNAPIPE_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

bool ThreadPool::RunPendingTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) {
      return false;
    }
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace dynapipe
