// Cross-process span tracing: per-thread ring buffers of fixed-size events,
// dumped as Chrome/Perfetto trace-event JSON.
//
// Enablement: `DYNAPIPE_TRACE=/path/trace.json` in the environment (read at
// first use — forked children inherit it), or TrainerOptions::trace_path /
// Tracer::EnableToPath programmatically. Disabled, a span costs one relaxed
// atomic load and no clock read.
//
// Timeline alignment: every process stamps events on its own steady clock,
// anchored to wall-clock microseconds at tracer init so independently started
// processes land on roughly the same axis, plus an adjustable offset refined
// by a wire exchange at executor attach (a kStatsRequest round trip: offset
// += peer_now − midpoint(send, recv) — see docs/OBSERVABILITY.md). Offsets
// make timestamps comparable across processes, which is what lets one merged
// trace interleave the trainer and its forked executors.
//
// Merge protocol: worker processes write `<path>.<pid>.part` (one JSON event
// object per line); the process that owns `<path>` — the trainer or the demo
// parent, after reaping children — calls WriteMergedTrace, which folds its
// own events plus every sibling part file into a single JSON array that
// chrome://tracing and ui.perfetto.dev open directly, then removes the parts.
//
// Plan-lifecycle spans are keyed by (iteration, replica) args:
// planned (replica −1, it covers all) → published → fetched → decoded →
// executed → heartbeat.
#ifndef DYNAPIPE_SRC_COMMON_TRACE_H_
#define DYNAPIPE_SRC_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace dynapipe::common {

// Sentinel for "no arg" — the args block omits the field.
inline constexpr int64_t kTraceNoIteration = INT64_MIN;
inline constexpr int32_t kTraceNoReplica = INT32_MIN;

class Tracer {
 public:
  // Events one thread can hold before the ring wraps (oldest overwritten).
  static constexpr size_t kRingCapacity = 4096;

  static Tracer& Instance();
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  // Programmatic enable; also sets the merged-output path.
  void EnableToPath(const std::string& path);
  const std::string& path() const { return path_; }

  // Microseconds on the aligned timeline (wall anchor + steady delta +
  // offset). Valid whether or not tracing is enabled.
  int64_t NowUs() const;

  // Clock-alignment refinement from one request/reply exchange: `peer_now_us`
  // is the peer's aligned NowUs sampled while serving, `local_send_us` /
  // `local_recv_us` are this process's NowUs around the exchange.
  void AlignToPeer(int64_t peer_now_us, int64_t local_send_us,
                   int64_t local_recv_us);
  int64_t clock_offset_us() const {
    return offset_us_.load(std::memory_order_relaxed);
  }

  // `name`/`cat` must be string literals (stored by pointer, never copied).
  void RecordComplete(const char* name, const char* cat, int64_t start_us,
                      int64_t dur_us, int64_t iteration = kTraceNoIteration,
                      int32_t replica = kTraceNoReplica);
  void RecordInstant(const char* name, const char* cat,
                     int64_t iteration = kTraceNoIteration,
                     int32_t replica = kTraceNoReplica);

  // Drains every thread's ring (oldest first per thread) as one JSON event
  // object per line, appended to `out`.
  void DumpJsonl(std::string* out) const;

  // Worker-process exit path: events -> `path().<pid>.part`. False when
  // disabled, pathless, or the write fails.
  bool WritePartFile() const;
  // Owner-process path: own events + every `path().*.part` sibling -> one
  // JSON array at `path()`; consumed part files are removed.
  bool WriteMergedTrace() const;

 private:
  Tracer();
  struct Impl;
  Impl& impl() const;

  static std::atomic<bool> enabled_;
  std::string path_;
  std::atomic<int64_t> offset_us_{0};
};

// RAII complete-event span. Cheap when disabled: the constructor is one
// relaxed load; no clock is read.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat,
            int64_t iteration = kTraceNoIteration,
            int32_t replica = kTraceNoReplica)
      : name_(name), cat_(cat), iteration_(iteration), replica_(replica) {
    armed_ = Tracer::enabled();
    if (armed_) {
      start_us_ = Tracer::Instance().NowUs();
    }
  }
  ~TraceSpan() {
    if (armed_) {
      Tracer& t = Tracer::Instance();
      t.RecordComplete(name_, cat_, start_us_, t.NowUs() - start_us_,
                       iteration_, replica_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  int64_t iteration_;
  int32_t replica_;
  bool armed_;
  int64_t start_us_ = 0;
};

}  // namespace dynapipe::common

#endif  // DYNAPIPE_SRC_COMMON_TRACE_H_
