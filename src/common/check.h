// Lightweight invariant checking. DYNAPIPE_CHECK is always on (planning code is not
// hot enough for checks to matter), and failures abort with a message: planners that
// continue past a broken invariant produce silently wrong schedules, which is worse
// than a crash.
#ifndef DYNAPIPE_SRC_COMMON_CHECK_H_
#define DYNAPIPE_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dynapipe::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "DYNAPIPE_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

}  // namespace dynapipe::internal

#define DYNAPIPE_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::dynapipe::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                     \
  } while (0)

#define DYNAPIPE_CHECK_MSG(cond, msg)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream oss_;                                            \
      oss_ << "(" << (msg) << ")";                                        \
      ::dynapipe::internal::CheckFailed(__FILE__, __LINE__, #cond,        \
                                        oss_.str());                      \
    }                                                                     \
  } while (0)

#endif  // DYNAPIPE_SRC_COMMON_CHECK_H_
