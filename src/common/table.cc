#include "src/common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/common/check.h"

namespace dynapipe {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  DYNAPIPE_CHECK_MSG(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::Fmt(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      oss << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    oss << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (const auto w : widths) {
    total += w + 2;
  }
  oss << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return oss.str();
}

}  // namespace dynapipe
