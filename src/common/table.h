// Aligned text-table printer. Benches use it to print paper-style result rows
// (one table/series per figure) without dragging in a formatting library.
#ifndef DYNAPIPE_SRC_COMMON_TABLE_H_
#define DYNAPIPE_SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace dynapipe {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Fmt(double v, int precision = 2);

  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dynapipe

#endif  // DYNAPIPE_SRC_COMMON_TABLE_H_
