#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/check.h"

namespace dynapipe {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  DYNAPIPE_CHECK(!values.empty());
  DYNAPIPE_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double MeanPercentageError(const std::vector<double>& estimated,
                           const std::vector<double>& actual) {
  DYNAPIPE_CHECK(estimated.size() == actual.size());
  double total = 0.0;
  int64_t n = 0;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] == 0.0) {
      continue;
    }
    total += std::abs(estimated[i] - actual[i]) / std::abs(actual[i]);
    ++n;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n) * 100.0;
}

Histogram::Histogram(double lo, double hi, int num_buckets) : lo_(lo), hi_(hi) {
  DYNAPIPE_CHECK(hi > lo);
  DYNAPIPE_CHECK(num_buckets > 0);
  counts_.assign(static_cast<size_t>(num_buckets), 0);
}

void Histogram::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  int idx = static_cast<int>(std::floor((x - lo_) / width));
  if (idx < 0) {
    ++underflow_;
  } else if (idx >= num_buckets()) {
    ++overflow_;
  }
  idx = std::clamp(idx, 0, num_buckets() - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(int i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(int i) const { return bucket_lo(i + 1); }

std::string Histogram::ToString(int max_bar_width) const {
  int64_t peak = 1;
  for (const auto c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream oss;
  for (int i = 0; i < num_buckets(); ++i) {
    const int64_t c = counts_[static_cast<size_t>(i)];
    // Log-scaled bar so heavy-tailed distributions (Fig. 1b uses a log y axis)
    // remain visible.
    const double frac =
        c == 0 ? 0.0
               : std::log1p(static_cast<double>(c)) / std::log1p(static_cast<double>(peak));
    const int bar = static_cast<int>(frac * max_bar_width);
    oss << "[" << static_cast<int64_t>(bucket_lo(i)) << ", "
        << static_cast<int64_t>(bucket_hi(i)) << ")\t" << c << "\t"
        << std::string(static_cast<size_t>(bar), '#') << "\n";
  }
  if (underflow_ != 0 || overflow_ != 0) {
    oss << "clamped: underflow " << underflow_ << ", overflow " << overflow_
        << "\n";
  }
  return oss.str();
}

}  // namespace dynapipe
