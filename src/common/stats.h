// Small statistics helpers used by benches and tests: running moments, percentiles,
// histograms, and the mean-percentage-error metric the paper reports in Fig. 18.
#ifndef DYNAPIPE_SRC_COMMON_STATS_H_
#define DYNAPIPE_SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dynapipe {

// Single-pass mean / variance / min / max (Welford).
class RunningStats {
 public:
  void Add(double x);
  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance; 0 if count < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// p in [0, 100]; linear interpolation between order statistics. Copies + sorts.
double Percentile(std::vector<double> values, double p);

// mean(|est - actual| / actual) * 100, skipping entries with actual == 0.
double MeanPercentageError(const std::vector<double>& estimated,
                           const std::vector<double>& actual);

// Fixed-width-bucket histogram over [lo, hi); values outside are clamped to
// the first/last bucket but counted — `underflow()`/`overflow()` expose how
// many samples fell off each end, so a mis-sized range is detectable instead
// of silently folding its tail into an edge bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, int num_buckets);
  void Add(double x);
  int64_t bucket_count(int i) const { return counts_[i]; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  double bucket_lo(int i) const;
  double bucket_hi(int i) const;
  int64_t total() const { return total_; }
  // Samples below lo / at-or-above hi (still clamped into the edge buckets).
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  // One line per bucket: "[lo, hi) count bar", plus a trailing
  // "clamped: ..." line only when any sample fell out of range.
  std::string ToString(int max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
};

}  // namespace dynapipe

#endif  // DYNAPIPE_SRC_COMMON_STATS_H_
