// Deterministic fault injection for the failure-path control loop.
//
// The recovery machinery (liveness deadlines, connection-drop detection,
// plan re-publish) is only trustworthy if every failure mode it handles can
// be produced on demand, in-process, under TSan. This layer compiles named
// *fault points* into the transport/store/executor hot paths:
//
//   FaultPoint("executor.heartbeat", iteration)   // crash-before-heartbeat
//   FaultPoint("executor.iteration", iteration)   // stall-for-N-ms
//   FaultPoint("transport.write")                 // drop / corrupt a frame
//
// Disarmed (the default, and the only state outside tests and --fault runs)
// a fault point is one relaxed atomic load and a predictable branch — no
// lock, no allocation, no syscall — so production paths pay nothing.
//
// Armed via a spec string (CLI --fault, or the DYNAPIPE_FAULT environment
// variable for forked children):
//
//   kind[:param]@index[#site]
//
//   crash@2            SIGKILL self when index 2 reaches the crash site
//   stall:250@1        sleep 250 ms at index 1
//   drop@3             close the stream instead of writing the 3rd frame
//   corrupt@5          flip a payload byte in the 5th frame written
//
// `index` is the fault point's unit of progress: the iteration number at
// executor sites, the per-site visit count at transport sites. `#site`
// overrides the kind's default site (crash -> executor.heartbeat, stall ->
// executor.iteration, drop/corrupt -> transport.write). Every fault fires at
// most once (one-shot), so a stalled executor resumes and a reconnecting
// client's retry goes through clean — which is exactly the recovery behavior
// under test.
//
// Crash and stall execute inside the fault point (SIGKILL leaves no chance
// to unwind; a stall is just a sleep). Drop and corrupt cannot — only the
// caller holds the stream — so FaultPoint returns the action for the call
// site to apply. Thread-safe: the armed path takes a mutex (tests only);
// the disarmed path touches one atomic.
#ifndef DYNAPIPE_SRC_COMMON_FAULT_INJECTION_H_
#define DYNAPIPE_SRC_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace dynapipe::common {

enum class FaultKind : uint8_t {
  kNone = 0,
  kCrash,           // SIGKILL self (no unwind, no flush — a real crash)
  kStall,           // sleep stall_ms, then continue
  kDropConnection,  // caller closes the stream without writing
  kCorruptFrame,    // caller flips a byte in the wire bytes
};

struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  std::string site;     // fault point name this spec binds to
  int64_t at = 0;       // index at which to fire (iteration or visit count)
  double stall_ms = 0;  // kStall only
};

// Parses `kind[:param]@index[#site]`. False (with *error set) on a malformed
// spec; never aborts — the spec typically arrives from a CLI flag.
bool ParseFaultSpec(const std::string& text, FaultSpec* spec,
                    std::string* error);

class FaultInjector {
 public:
  static FaultInjector& Instance();

  // Arms one spec. Replaces any previous spec and clears fired/visit state,
  // so a process arms at most one fault at a time (all the control-loop
  // scenarios need exactly one). Disarm() returns to the zero-cost state.
  void Arm(const FaultSpec& spec);
  void Disarm();

  // Arms from DYNAPIPE_FAULT when the variable is set and parses; aborts on
  // a set-but-malformed value (a silently ignored fault spec would make a
  // recovery test vacuously pass). Returns true when a fault was armed.
  bool ArmFromEnv();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // The fault point. Returns the action the *caller* must apply
  // (kDropConnection / kCorruptFrame) or kNone; kCrash and kStall execute
  // internally and never return an action. The overload without an index
  // counts visits per site (transport sites); the indexed overload fires
  // when `index == at` (executor sites, indexed by iteration).
  FaultKind Hit(const char* site) {
    if (!armed_.load(std::memory_order_relaxed)) {
      return FaultKind::kNone;
    }
    return HitSlow(site, /*index=*/-1, /*counted=*/true);
  }
  FaultKind Hit(const char* site, int64_t index) {
    if (!armed_.load(std::memory_order_relaxed)) {
      return FaultKind::kNone;
    }
    return HitSlow(site, index, /*counted=*/false);
  }

 private:
  FaultInjector() = default;
  FaultKind HitSlow(const char* site, int64_t index, bool counted);

  std::atomic<bool> armed_{false};
  std::mutex mu_;
  FaultSpec spec_;        // guarded by mu_
  int64_t visits_ = 0;    // per-site visit count since Arm (guarded by mu_)
  bool fired_ = false;    // one-shot latch (guarded by mu_)
};

// Free-function shorthands so call sites stay one line.
inline FaultKind FaultPoint(const char* site) {
  return FaultInjector::Instance().Hit(site);
}
inline FaultKind FaultPoint(const char* site, int64_t index) {
  return FaultInjector::Instance().Hit(site, index);
}

}  // namespace dynapipe::common

#endif  // DYNAPIPE_SRC_COMMON_FAULT_INJECTION_H_
