// Tiny wall-clock helper shared by the planning stack's phase timers.
#ifndef DYNAPIPE_SRC_COMMON_TIMING_H_
#define DYNAPIPE_SRC_COMMON_TIMING_H_

#include <chrono>

namespace dynapipe {

using SteadyClock = std::chrono::steady_clock;

inline double ElapsedMs(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

}  // namespace dynapipe

#endif  // DYNAPIPE_SRC_COMMON_TIMING_H_
