// Minimal fixed-size thread pool.
//
// DynaPipe overlaps CPU-side execution planning with GPU execution by planning
// future iterations on spare cores (§3, Fig. 17). ThreadPool provides the worker
// substrate: submit callables, get std::futures. Tasks must be independent — the
// pool offers no ordering guarantees beyond the futures themselves.
//
// ParallelFor is the fan-out primitive the planning stack builds on (per-t_max
// DPs, recompute modes, grid-search configs). The calling thread participates
// and, while waiting for stragglers, helps drain the pool's queue — so nested
// fan-outs sharing one pool (a recompute-mode task fanning its t_max DPs onto
// the same workers) cannot deadlock even on a single-thread pool.
#ifndef DYNAPIPE_SRC_COMMON_THREAD_POOL_H_
#define DYNAPIPE_SRC_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/common/check.h"

namespace dynapipe {

class ThreadPool {
 public:
  explicit ThreadPool(int32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      DYNAPIPE_CHECK_MSG(!stopping_, "submit on a stopped pool");
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  int32_t num_threads() const { return static_cast<int32_t>(workers_.size()); }

  // Pops and runs one queued task on the calling thread; returns false when the
  // queue is empty. A thread blocked on work it fanned onto the pool calls this
  // in its wait loop so the pool can never wedge on nested fan-outs.
  bool RunPendingTask();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(0) .. fn(n-1) across `pool`, returning only once every index has
// completed. Indices are claimed from a shared atomic counter, so execution
// order is unspecified: fn must treat indices as independent and write any
// output into per-index slots (that is also what makes parallel callers
// deterministic — merge the slots serially afterwards). fn must not throw.
// A null pool, a single-thread pool, or n <= 1 degrades to a plain serial loop.
template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t n, Fn&& fn) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    // Helpers not yet spawned. Spawning is lazy and cascading: the caller
    // submits one helper, and each helper that actually finds work submits the
    // next before starting. A fan-out whose indices the caller drains alone
    // (small n, or a fully loaded machine) therefore pays for one queue push
    // instead of pool-width thread wakeups — the difference between the pool
    // being free and costing more than it returns on busy single-core boxes.
    std::atomic<int32_t> helpers_left{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  // remove_reference: Fn deduces to L& for lvalue callables, and a pointer to
  // reference is ill-formed.
  std::remove_reference_t<Fn>* fn_ptr = &fn;
  // Helpers are capped by spare hardware threads as well as pool width: the
  // caller occupies one, and oversubscribing CPU-bound index work only adds
  // context-switch thrash (a 4-thread pool on a 1-core container must degrade
  // to the serial path, not run 4x slower). hardware_concurrency() == 0 means
  // unknown; trust the pool width then.
  const size_t hw = static_cast<size_t>(std::thread::hardware_concurrency());
  size_t max_helpers = static_cast<size_t>(pool->num_threads());
  if (hw > 0) {
    max_helpers = std::min(max_helpers, hw - 1);
  }
  state->helpers_left.store(
      static_cast<int32_t>(std::min(n - 1, max_helpers)));
  // Helpers that find the counter exhausted exit without touching fn, so the
  // ones still queued when ParallelFor returns are harmless no-ops; `state`
  // is shared_ptr-owned for exactly that reason.
  struct Drain {
    std::shared_ptr<State> state;
    size_t n;
    std::remove_reference_t<Fn>* fn_ptr;
    ThreadPool* pool;
    void operator()() const {
      size_t i = state->next.fetch_add(1);
      if (i >= n) {
        return;
      }
      if (state->helpers_left.fetch_sub(1) > 0) {
        pool->Submit(*this);
      } else {
        state->helpers_left.fetch_add(1);  // undo; floor stays >= some negative
      }
      for (; i < n; i = state->next.fetch_add(1)) {
        (*fn_ptr)(i);
        // Notify only the completion the caller can be waiting for — the last
        // one. Taking the mutex first closes the lost-wakeup window: a waiter
        // that saw done < n is either still holding mu (and will re-check) or
        // already blocked in wait (and will hear this notify).
        if (state->done.fetch_add(1) + 1 == n) {
          { std::lock_guard<std::mutex> lock(state->mu); }
          state->cv.notify_all();
        }
      }
    }
  };
  const Drain drain{state, n, fn_ptr, pool};
  if (state->helpers_left.fetch_sub(1) > 0) {
    pool->Submit(drain);
  }
  // The caller claims indices like any helper, minus the cascade step (its
  // helper was submitted above) and minus the completion notify — the caller
  // is the only thread that ever waits on this fan-out's cv.
  for (size_t i = state->next.fetch_add(1); i < n;
       i = state->next.fetch_add(1)) {
    (*fn_ptr)(i);
    state->done.fetch_add(1);
  }
  // Indices may still be in flight on workers; help with other queued work
  // (possibly a nested fan-out's indices) instead of blocking outright. Once
  // the queue is dry, sleep until a completion notify — stragglers are on live
  // threads (or nested waiters that bottom out on live threads), so progress
  // is guaranteed without this thread's help. The timeout is only a hedge.
  while (state->done.load(std::memory_order_acquire) < n) {
    if (!pool->RunPendingTask()) {
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait_for(lock, std::chrono::milliseconds(10), [&] {
        return state->done.load(std::memory_order_acquire) >= n;
      });
    }
  }
}

}  // namespace dynapipe

#endif  // DYNAPIPE_SRC_COMMON_THREAD_POOL_H_
