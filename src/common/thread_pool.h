// Minimal fixed-size thread pool.
//
// DynaPipe overlaps CPU-side execution planning with GPU execution by planning
// future iterations on spare cores (§3, Fig. 17). ThreadPool provides the worker
// substrate: submit callables, get std::futures. Tasks must be independent — the
// pool offers no ordering guarantees beyond the futures themselves.
#ifndef DYNAPIPE_SRC_COMMON_THREAD_POOL_H_
#define DYNAPIPE_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/common/check.h"

namespace dynapipe {

class ThreadPool {
 public:
  explicit ThreadPool(int32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      DYNAPIPE_CHECK_MSG(!stopping_, "submit on a stopped pool");
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  int32_t num_threads() const { return static_cast<int32_t>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dynapipe

#endif  // DYNAPIPE_SRC_COMMON_THREAD_POOL_H_
