// Deterministic random number generation.
//
// All randomness in the library flows through Rng so that datasets, noise injection
// and schedules are reproducible from a single seed. The generator is xoshiro256**,
// seeded via splitmix64 (the construction recommended by the xoshiro authors); it is
// small, fast, and — unlike std::mt19937 with std::*_distribution — produces identical
// streams across standard library implementations.
#ifndef DYNAPIPE_SRC_COMMON_RNG_H_
#define DYNAPIPE_SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dynapipe {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Uniform in [0, 2^64).
  uint64_t NextU64();

  // Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Standard normal (Box–Muller; caches the second variate).
  double NextGaussian();

  // Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  // Log-normal: exp(N(mu, sigma)).
  double NextLogNormal(double mu, double sigma);

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child generator (for parallel/streamed use).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dynapipe

#endif  // DYNAPIPE_SRC_COMMON_RNG_H_
