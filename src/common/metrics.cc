#include "src/common/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace dynapipe::common {

std::atomic<bool> Metrics::enabled_{true};

// Instruments live behind unique_ptr so references stay stable as the maps
// grow; the maps are never erased from.
struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms;
};

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaked (like FaultInjector::Instance) so instruments outlive static
  // destructors of threads still recording at exit.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.counters.find(name);
  if (it == i.counters.end()) {
    it = i.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.gauges.find(name);
  if (it == i.gauges.end()) {
    it = i.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::GetHistogram(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.histograms.find(name);
  if (it == i.histograms.end()) {
    it = i.histograms
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& i = impl();
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(i.mu);
  snap.counters.reserve(i.counters.size());
  for (const auto& [name, c] : i.counters) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(i.gauges.size());
  for (const auto& [name, g] : i.gauges) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(i.histograms.size());
  for (const auto& [name, h] : i.histograms) {
    MetricsSnapshot::HistogramValue hv;
    hv.name = name;
    hv.count = h->count();
    hv.sum_us = h->sum_us();
    int last = -1;
    for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      if (h->bucket(b) != 0) {
        last = b;
      }
    }
    hv.buckets.reserve(static_cast<size_t>(last + 1));
    for (int b = 0; b <= last; ++b) {
      hv.buckets.push_back(h->bucket(b));
    }
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

namespace {

template <typename Vec>
auto FindByName(const Vec& vec, std::string_view name) -> decltype(&vec[0]) {
  for (const auto& entry : vec) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

}  // namespace

int64_t MetricsSnapshot::counter(std::string_view name) const {
  const CounterValue* c = FindByName(counters, name);
  return c == nullptr ? 0 : c->value;
}

int64_t MetricsSnapshot::gauge(std::string_view name) const {
  const CounterValue* g = FindByName(gauges, name);
  return g == nullptr ? 0 : g->value;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::histogram(
    std::string_view name) const {
  return FindByName(histograms, name);
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  delta.counters.reserve(counters.size());
  for (const CounterValue& c : counters) {
    delta.counters.push_back({c.name, c.value - earlier.counter(c.name)});
  }
  delta.gauges = gauges;
  delta.histograms.reserve(histograms.size());
  for (const HistogramValue& h : histograms) {
    HistogramValue d = h;
    if (const HistogramValue* e = earlier.histogram(h.name); e != nullptr) {
      d.count -= e->count;
      d.sum_us -= e->sum_us;
      for (size_t b = 0; b < d.buckets.size() && b < e->buckets.size(); ++b) {
        d.buckets[b] -= e->buckets[b];
      }
    }
    delta.histograms.push_back(std::move(d));
  }
  return delta;
}

std::string MetricsSnapshot::ToPrometheusText(std::string_view prefix) const {
  std::ostringstream oss;
  for (const CounterValue& c : counters) {
    oss << "# TYPE " << prefix << c.name << " counter\n"
        << prefix << c.name << " " << c.value << "\n";
  }
  for (const CounterValue& g : gauges) {
    oss << "# TYPE " << prefix << g.name << " gauge\n"
        << prefix << g.name << " " << g.value << "\n";
  }
  for (const HistogramValue& h : histograms) {
    oss << "# TYPE " << prefix << h.name << " histogram\n";
    int64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      oss << prefix << h.name << "_bucket{le=\""
          << LatencyHistogram::BucketUpperUs(static_cast<int>(b)) << "\"} "
          << cumulative << "\n";
    }
    oss << prefix << h.name << "_bucket{le=\"+Inf\"} " << h.count << "\n"
        << prefix << h.name << "_sum " << h.sum_us << "\n"
        << prefix << h.name << "_count " << h.count << "\n";
  }
  return oss.str();
}

StoreMetrics& StoreMetrics::For(const char* backend) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<StoreMetrics>>* interned =
      new std::map<std::string, std::unique_ptr<StoreMetrics>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = interned->find(backend);
  if (it == interned->end()) {
    MetricsRegistry& reg = MetricsRegistry::Instance();
    const std::string base = std::string("store_") + backend + "_";
    auto bundle = std::unique_ptr<StoreMetrics>(new StoreMetrics{
        reg.GetCounter(base + "push_total"),
        reg.GetCounter(base + "fetch_total"),
        reg.GetCounter(base + "bytes_pushed_total"),
        reg.GetHistogram(base + "push_us"),
        reg.GetHistogram(base + "fetch_us"),
        reg.GetHistogram(base + "park_us"),
    });
    it = interned->emplace(backend, std::move(bundle)).first;
  }
  return *it->second;
}

}  // namespace dynapipe::common
