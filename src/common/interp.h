// Piecewise-linear interpolation helpers.
//
// The paper's cost model profiles (micro-batch size, sequence length) at power-of-two
// grid points and bridges the gaps with linear interpolation (§3 "Cost models"). These
// classes implement that: a 1D table over a sorted grid and a 2D table over a
// rectangular grid with bilinear interpolation. Queries outside the grid extrapolate
// linearly from the closest edge segment, matching how an interpolated profile would be
// used beyond its sampled range.
#ifndef DYNAPIPE_SRC_COMMON_INTERP_H_
#define DYNAPIPE_SRC_COMMON_INTERP_H_

#include <cstddef>
#include <vector>

namespace dynapipe {

class LinearInterp1D {
 public:
  // xs must be strictly increasing; xs.size() == ys.size() >= 2.
  LinearInterp1D(std::vector<double> xs, std::vector<double> ys);

  double operator()(double x) const;

  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

class BilinearInterp2D {
 public:
  // values[i][j] corresponds to (xs[i], ys[j]). xs and ys strictly increasing,
  // each of size >= 2 (size 1 along an axis degenerates to constant on that axis).
  BilinearInterp2D(std::vector<double> xs, std::vector<double> ys,
                   std::vector<std::vector<double>> values);

  double operator()(double x, double y) const;

 private:
  // Index of the segment [grid[k], grid[k+1]] to use for v (clamped for
  // extrapolation), plus the interpolation fraction (may fall outside [0,1]).
  static void Locate(const std::vector<double>& grid, double v, size_t& k, double& frac);

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<std::vector<double>> values_;
};

}  // namespace dynapipe

#endif  // DYNAPIPE_SRC_COMMON_INTERP_H_
