#include "src/common/fault_injection.h"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "src/common/check.h"
#include "src/common/metrics.h"

namespace dynapipe::common {
namespace {

// Default site per kind: where the canonical control-loop scenario wants the
// fault. Overridable with the spec's `#site` suffix.
const char* DefaultSite(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "executor.heartbeat";
    case FaultKind::kStall: return "executor.iteration";
    case FaultKind::kDropConnection:
    case FaultKind::kCorruptFrame: return "transport.write";
    case FaultKind::kNone: break;
  }
  return "";
}

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return false;
  }
  *out = static_cast<int64_t>(v);
  return true;
}

}  // namespace

bool ParseFaultSpec(const std::string& text, FaultSpec* spec,
                    std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = "fault spec '" + text + "': " + what;
    }
    return false;
  };
  const size_t at_pos = text.find('@');
  if (at_pos == std::string::npos) {
    return fail("missing '@index'");
  }
  std::string head = text.substr(0, at_pos);  // kind[:param]
  std::string tail = text.substr(at_pos + 1);  // index[#site]

  FaultSpec parsed;
  const size_t colon = head.find(':');
  const std::string kind_name = head.substr(0, colon);
  if (kind_name == "crash") {
    parsed.kind = FaultKind::kCrash;
  } else if (kind_name == "stall") {
    parsed.kind = FaultKind::kStall;
  } else if (kind_name == "drop") {
    parsed.kind = FaultKind::kDropConnection;
  } else if (kind_name == "corrupt") {
    parsed.kind = FaultKind::kCorruptFrame;
  } else {
    return fail("unknown kind '" + kind_name +
                "' (crash|stall|drop|corrupt)");
  }
  if (colon != std::string::npos) {
    if (parsed.kind != FaultKind::kStall) {
      return fail("only stall takes a ':ms' parameter");
    }
    int64_t ms = 0;
    if (!ParseInt64(head.substr(colon + 1), &ms) || ms < 0) {
      return fail("bad stall milliseconds");
    }
    parsed.stall_ms = static_cast<double>(ms);
  } else if (parsed.kind == FaultKind::kStall) {
    return fail("stall needs ':ms' (e.g. stall:250@1)");
  }

  const size_t hash = tail.find('#');
  parsed.site = hash == std::string::npos ? DefaultSite(parsed.kind)
                                          : tail.substr(hash + 1);
  if (parsed.site.empty()) {
    return fail("empty site");
  }
  if (!ParseInt64(tail.substr(0, hash), &parsed.at) || parsed.at < 0) {
    return fail("bad index");
  }
  *spec = parsed;
  return true;
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const FaultSpec& spec) {
  DYNAPIPE_CHECK_MSG(spec.kind != FaultKind::kNone,
                     "arming a kNone fault spec");
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
  visits_ = 0;
  fired_ = false;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  spec_ = FaultSpec{};
  visits_ = 0;
  fired_ = false;
}

bool FaultInjector::ArmFromEnv() {
  const char* value = std::getenv("DYNAPIPE_FAULT");
  if (value == nullptr || value[0] == '\0') {
    return false;
  }
  FaultSpec spec;
  std::string error;
  DYNAPIPE_CHECK_MSG(ParseFaultSpec(value, &spec, &error), error);
  Arm(spec);
  return true;
}

FaultKind FaultInjector::HitSlow(const char* site, int64_t index,
                                 bool counted) {
  FaultKind action = FaultKind::kNone;
  double stall_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed) || fired_ ||
        spec_.site != site) {
      return FaultKind::kNone;
    }
    const int64_t progress = counted ? visits_++ : index;
    if (progress != spec_.at) {
      return FaultKind::kNone;
    }
    fired_ = true;  // one-shot: recovery (reconnect, resume) runs clean
    action = spec_.kind;
    stall_ms = spec_.stall_ms;
  }
  {
    static Counter& faults_fired =
        MetricsRegistry::Instance().GetCounter("faults_fired_total");
    faults_fired.Add();
  }
  switch (action) {
    case FaultKind::kCrash:
      // SIGKILL, not abort(): no unwinding, no atexit, no flushed buffers —
      // the same footprint as an OOM-killed or preempted executor.
      ::kill(::getpid(), SIGKILL);
      return FaultKind::kNone;  // unreachable
    case FaultKind::kStall:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(stall_ms));
      return FaultKind::kNone;
    default:
      return action;  // caller applies drop/corrupt
  }
}

}  // namespace dynapipe::common
