#include "src/common/trace.h"

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace dynapipe::common {

std::atomic<bool> Tracer::enabled_{false};

namespace {
// Force the singleton (and its DYNAPIPE_TRACE read) before main: the cheap
// static enabled() check every TraceSpan starts with would otherwise stay
// false in a process that never happened to call Instance() — the demo
// parent's planning spans were silently dropped that way.
const bool g_tracer_env_init = [] {
  (void)Tracer::Instance();
  return true;
}();
}  // namespace

namespace {

struct TraceEvent {
  const char* name;
  const char* cat;
  char phase;  // 'X' complete, 'i' instant
  int64_t ts_us;
  int64_t dur_us;
  int64_t iteration;
  int32_t replica;
};

// One ring per recording thread. The mutex is per-ring: a recording thread
// only ever contends with a dump (epoch end), never with other recorders.
struct Ring {
  std::mutex mu;
  TraceEvent events[Tracer::kRingCapacity];
  size_t written = 0;  // total ever recorded; head = written % capacity
  int tid = 0;
};

void AppendEventJson(const TraceEvent& e, int pid, int tid, std::string* out) {
  char buf[256];
  int n;
  if (e.phase == 'X') {
    n = std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%lld"
                      ",\"dur\":%lld,\"pid\":%d,\"tid\":%d",
                      e.name, e.cat, static_cast<long long>(e.ts_us),
                      static_cast<long long>(e.dur_us), pid, tid);
  } else {
    n = std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\""
                      ",\"ts\":%lld,\"pid\":%d,\"tid\":%d",
                      e.name, e.cat, static_cast<long long>(e.ts_us), pid,
                      tid);
  }
  out->append(buf, static_cast<size_t>(n));
  out->append(",\"args\":{");
  bool first = true;
  if (e.iteration != kTraceNoIteration) {
    n = std::snprintf(buf, sizeof(buf), "\"iteration\":%lld",
                      static_cast<long long>(e.iteration));
    out->append(buf, static_cast<size_t>(n));
    first = false;
  }
  if (e.replica != kTraceNoReplica) {
    n = std::snprintf(buf, sizeof(buf), "%s\"replica\":%d", first ? "" : ",",
                      e.replica);
    out->append(buf, static_cast<size_t>(n));
  }
  out->append("}}");
}

}  // namespace

struct Tracer::Impl {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  int next_tid = 1;
  pid_t birth_pid = ::getpid();
  int64_t wall_anchor_us = 0;
  std::chrono::steady_clock::time_point steady_anchor;

  // A forked child inherits the parent's rings verbatim; without this check
  // every child's part file would replay the parent's pre-fork events under
  // the child's pid (the demo's "planned" spans showed up four times). Drop
  // the inherited contents the first time the child touches the tracer.
  // Callers must hold mu. Safe because a fork leaves the child
  // single-threaded; the only hazard is forking while another thread holds a
  // tracer mutex, which none of our fork sites do (they fork before spawning
  // recording threads or between iterations).
  void ResetIfForkedLocked(pid_t self) {
    if (birth_pid != self) {
      rings.clear();
      next_tid = 1;
      birth_pid = self;
    }
  }

  Ring& RingForThisThread() {
    thread_local std::shared_ptr<Ring> mine;
    thread_local pid_t mine_pid = 0;
    const pid_t self = ::getpid();
    if (mine == nullptr || mine_pid != self) {
      mine = std::make_shared<Ring>();
      mine_pid = self;
      std::lock_guard<std::mutex> lock(mu);
      ResetIfForkedLocked(self);
      mine->tid = next_tid++;
      rings.push_back(mine);
    }
    return *mine;
  }
};

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Impl& Tracer::impl() const {
  static Impl* impl = [] {
    Impl* i = new Impl();
    i->steady_anchor = std::chrono::steady_clock::now();
    i->wall_anchor_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::system_clock::now().time_since_epoch())
                            .count();
    return i;
  }();
  return *impl;
}

Tracer::Tracer() {
  impl();  // pin the clock anchors at construction
  const char* env = std::getenv("DYNAPIPE_TRACE");
  if (env != nullptr && env[0] != '\0') {
    path_ = env;
    enabled_.store(true, std::memory_order_relaxed);
  }
}

void Tracer::EnableToPath(const std::string& path) {
  path_ = path;
  enabled_.store(true, std::memory_order_relaxed);
}

int64_t Tracer::NowUs() const {
  const Impl& i = impl();
  return i.wall_anchor_us +
         std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - i.steady_anchor)
             .count() +
         offset_us_.load(std::memory_order_relaxed);
}

void Tracer::AlignToPeer(int64_t peer_now_us, int64_t local_send_us,
                         int64_t local_recv_us) {
  const int64_t midpoint = local_send_us + (local_recv_us - local_send_us) / 2;
  offset_us_.fetch_add(peer_now_us - midpoint, std::memory_order_relaxed);
}

void Tracer::RecordComplete(const char* name, const char* cat,
                            int64_t start_us, int64_t dur_us,
                            int64_t iteration, int32_t replica) {
  if (!enabled()) {
    return;
  }
  Ring& ring = impl().RingForThisThread();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.events[ring.written % kRingCapacity] =
      TraceEvent{name, cat, 'X', start_us, dur_us < 0 ? 0 : dur_us, iteration,
                 replica};
  ++ring.written;
}

void Tracer::RecordInstant(const char* name, const char* cat,
                           int64_t iteration, int32_t replica) {
  if (!enabled()) {
    return;
  }
  Ring& ring = impl().RingForThisThread();
  const int64_t now = NowUs();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.events[ring.written % kRingCapacity] =
      TraceEvent{name, cat, 'i', now, 0, iteration, replica};
  ++ring.written;
}

void Tracer::DumpJsonl(std::string* out) const {
  Impl& i = impl();
  const int pid = static_cast<int>(::getpid());
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(i.mu);
    i.ResetIfForkedLocked(static_cast<pid_t>(pid));
    rings = i.rings;
  }
  for (const std::shared_ptr<Ring>& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    const size_t count = ring->written < kRingCapacity ? ring->written
                                                       : kRingCapacity;
    const size_t start = ring->written - count;
    for (size_t k = 0; k < count; ++k) {
      AppendEventJson(ring->events[(start + k) % kRingCapacity], pid,
                      ring->tid, out);
      out->push_back('\n');
    }
  }
}

bool Tracer::WritePartFile() const {
  if (!enabled() || path_.empty()) {
    return false;
  }
  std::string lines;
  DumpJsonl(&lines);
  const std::string part =
      path_ + "." + std::to_string(::getpid()) + ".part";
  std::ofstream out(part, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << lines;
  return static_cast<bool>(out);
}

bool Tracer::WriteMergedTrace() const {
  if (!enabled() || path_.empty()) {
    return false;
  }
  std::string lines;
  DumpJsonl(&lines);

  // Fold in sibling part files: <basename>.<pid>.part next to the output.
  const size_t slash = path_.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path_.substr(0, slash);
  const std::string base =
      (slash == std::string::npos ? path_ : path_.substr(slash + 1)) + ".";
  std::vector<std::string> parts;
  if (DIR* d = ::opendir(dir.c_str()); d != nullptr) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name.size() > base.size() + 5 && name.compare(0, base.size(), base) == 0 &&
          name.compare(name.size() - 5, 5, ".part") == 0) {
        parts.push_back(dir + "/" + name);
      }
    }
    ::closedir(d);
  }
  for (const std::string& part : parts) {
    std::ifstream in(part);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) {
        lines += line;
        lines.push_back('\n');
      }
    }
  }

  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << "[\n";
  size_t pos = 0;
  bool first = true;
  while (pos < lines.size()) {
    const size_t nl = lines.find('\n', pos);
    const std::string_view line(lines.data() + pos,
                                (nl == std::string::npos ? lines.size() : nl) -
                                    pos);
    if (!line.empty()) {
      if (!first) {
        out << ",\n";
      }
      out << line;
      first = false;
    }
    if (nl == std::string::npos) {
      break;
    }
    pos = nl + 1;
  }
  out << "\n]\n";
  if (!out) {
    return false;
  }
  for (const std::string& part : parts) {
    std::remove(part.c_str());
  }
  return true;
}

}  // namespace dynapipe::common
