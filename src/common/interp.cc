#include "src/common/interp.h"

#include <algorithm>

#include "src/common/check.h"

namespace dynapipe {
namespace {

void CheckStrictlyIncreasing(const std::vector<double>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    DYNAPIPE_CHECK_MSG(v[i] > v[i - 1], "grid must be strictly increasing");
  }
}

}  // namespace

LinearInterp1D::LinearInterp1D(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  DYNAPIPE_CHECK(xs_.size() == ys_.size());
  DYNAPIPE_CHECK(xs_.size() >= 2);
  CheckStrictlyIncreasing(xs_);
}

double LinearInterp1D::operator()(double x) const {
  // Segment index, clamped so queries beyond the grid extrapolate from the edge.
  size_t k = static_cast<size_t>(
      std::upper_bound(xs_.begin(), xs_.end(), x) - xs_.begin());
  k = std::clamp<size_t>(k, 1, xs_.size() - 1) - 1;
  const double t = (x - xs_[k]) / (xs_[k + 1] - xs_[k]);
  return ys_[k] + t * (ys_[k + 1] - ys_[k]);
}

BilinearInterp2D::BilinearInterp2D(std::vector<double> xs, std::vector<double> ys,
                                   std::vector<std::vector<double>> values)
    : xs_(std::move(xs)), ys_(std::move(ys)), values_(std::move(values)) {
  DYNAPIPE_CHECK(!xs_.empty() && !ys_.empty());
  DYNAPIPE_CHECK(values_.size() == xs_.size());
  for (const auto& row : values_) {
    DYNAPIPE_CHECK(row.size() == ys_.size());
  }
  CheckStrictlyIncreasing(xs_);
  CheckStrictlyIncreasing(ys_);
}

void BilinearInterp2D::Locate(const std::vector<double>& grid, double v, size_t& k,
                              double& frac) {
  if (grid.size() == 1) {
    k = 0;
    frac = 0.0;
    return;
  }
  size_t idx = static_cast<size_t>(
      std::upper_bound(grid.begin(), grid.end(), v) - grid.begin());
  idx = std::clamp<size_t>(idx, 1, grid.size() - 1) - 1;
  k = idx;
  frac = (v - grid[k]) / (grid[k + 1] - grid[k]);
}

double BilinearInterp2D::operator()(double x, double y) const {
  size_t i;
  size_t j;
  double tx;
  double ty;
  Locate(xs_, x, i, tx);
  Locate(ys_, y, j, ty);
  const size_t i1 = xs_.size() == 1 ? i : i + 1;
  const size_t j1 = ys_.size() == 1 ? j : j + 1;
  const double v00 = values_[i][j];
  const double v01 = values_[i][j1];
  const double v10 = values_[i1][j];
  const double v11 = values_[i1][j1];
  const double v0 = v00 + ty * (v01 - v00);
  const double v1 = v10 + ty * (v11 - v10);
  return v0 + tx * (v1 - v0);
}

}  // namespace dynapipe
