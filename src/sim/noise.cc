#include "src/sim/noise.h"

#include <algorithm>

#include "src/common/check.h"

namespace dynapipe::sim {
namespace {
// A kernel can run somewhat faster than its mean, but not arbitrarily fast.
constexpr double kFloorFactor = 0.05;
}  // namespace

NoiseModel::NoiseModel(double relative_stddev, uint64_t seed)
    : relative_stddev_(relative_stddev), rng_(seed) {
  DYNAPIPE_CHECK(relative_stddev >= 0.0);
}

double NoiseModel::Apply(double duration_ms) {
  if (relative_stddev_ == 0.0) {
    return duration_ms;
  }
  const double factor =
      std::max(kFloorFactor, 1.0 + rng_.NextGaussian(0.0, relative_stddev_));
  return duration_ms * factor;
}

}  // namespace dynapipe::sim
