// Pipeline instruction set.
//
// Execution plans are sequences of these instructions, one sequence per executor
// (device), following the paper's §3: ForwardPass/BackwardPass run compute;
// communication is split into conjugate *Start* ops (launch an async transfer on the
// communication stream) and *Wait* ops (make the compute stream wait on that
// transfer). The split is what gives the communication planner freedom to place
// sends/receives early and waits late (Fig. 12) while keeping per-device-pair
// ordering consistent.
#ifndef DYNAPIPE_SRC_SIM_INSTRUCTION_H_
#define DYNAPIPE_SRC_SIM_INSTRUCTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/shapes.h"

namespace dynapipe::sim {

enum class InstrType : uint8_t {
  kForwardPass,
  kBackwardPass,
  kSendActStart,
  kRecvActStart,
  kSendGradStart,
  kRecvGradStart,
  kWaitSendAct,
  kWaitRecvAct,
  kWaitSendGrad,
  kWaitRecvGrad,
};

// Number of InstrType values. The binary plan serde (src/service/plan_serde)
// encodes the enum as a byte and validates decoded values against this bound;
// keep it in sync when adding instruction kinds.
inline constexpr int32_t kNumInstrTypes = 10;

bool IsCompute(InstrType t);
bool IsCommStart(InstrType t);
bool IsCommWait(InstrType t);
bool IsSend(InstrType t);  // Start or Wait of a send
// The Wait op conjugate to a Start op.
InstrType WaitFor(InstrType start);
const char* InstrTypeName(InstrType t);

struct Instruction {
  InstrType type = InstrType::kForwardPass;
  // Micro-batch index within the iteration (plan-wide numbering).
  int32_t microbatch = 0;
  // Peer device for communication ops; -1 for compute ops.
  int32_t peer = -1;
  // Transfer size for comm ops (plan embeds tensor shapes so executors never
  // exchange shape metadata at runtime, §6).
  int64_t bytes = 0;
  // Padded shape of the micro-batch (compute ops; used by the ground-truth model).
  model::MicroBatchShape shape;
  // Recomputation scheme chosen for this iteration (affects backward duration and
  // activation memory).
  model::RecomputeMode recompute = model::RecomputeMode::kNone;
  // Comm Start ops only: consecutive Start instructions on the same device with the
  // same non-negative fusion_group and the same peer are issued as one fused/batched
  // NCCL group (how uniform 1F1B implements its crossing send/recv pairs). -1 means
  // unfused.
  int32_t fusion_group = -1;

  // Field-wise equality; the serde round-trip tests pin losslessness with it.
  bool operator==(const Instruction&) const = default;

  std::string ToString() const;
};

// Instruction sequence for one executor.
struct DevicePlan {
  int32_t device = 0;
  std::vector<Instruction> instructions;

  bool operator==(const DevicePlan&) const = default;
};

// A full iteration's plan for one pipeline (one data-parallel replica).
struct ExecutionPlan {
  std::vector<DevicePlan> devices;
  int32_t num_microbatches = 0;

  int32_t num_devices() const { return static_cast<int32_t>(devices.size()); }
  bool operator==(const ExecutionPlan&) const = default;
  std::string ToString() const;
};

}  // namespace dynapipe::sim

#endif  // DYNAPIPE_SRC_SIM_INSTRUCTION_H_
