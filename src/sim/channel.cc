#include "src/sim/channel.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"

namespace dynapipe::sim {

Channel::Channel(int32_t dev_a, int32_t dev_b) : dev_a_(dev_a), dev_b_(dev_b) {
  DYNAPIPE_CHECK(dev_a < dev_b);
}

std::deque<std::vector<CommOp>>& Channel::SideFor(int32_t device) {
  if (device == dev_a_) {
    return side_a_;
  }
  DYNAPIPE_CHECK_MSG(device == dev_b_, "device not on this channel");
  return side_b_;
}

void Channel::PostGroup(int32_t device, std::vector<CommOp> group) {
  DYNAPIPE_CHECK(!group.empty());
  SideFor(device).push_back(std::move(group));
}

void Channel::TryMatch(
    const std::function<double(int64_t)>& duration_ms,
    const std::function<void(int64_t, int64_t, double, double, int64_t)>& on_transfer) {
  while (!side_a_.empty() && !side_b_.empty()) {
    std::vector<CommOp>& ga = side_a_.front();
    std::vector<CommOp>& gb = side_b_.front();
    bool matched_any = false;
    for (auto& a : ga) {
      if (a.matched) {
        continue;
      }
      for (auto& b : gb) {
        if (b.matched || a.is_send == b.is_send || a.tag != b.tag) {
          continue;
        }
        DYNAPIPE_CHECK_MSG(a.bytes == b.bytes, "send/recv size mismatch");
        CommOp& send = a.is_send ? a : b;
        CommOp& recv = a.is_send ? b : a;
        const double start =
            std::max({send.post_time_ms, recv.post_time_ms, free_time_ms_});
        const double end = start + duration_ms(send.bytes);
        free_time_ms_ = end;
        a.matched = true;
        b.matched = true;
        on_transfer(send.handle, recv.handle, start, end, send.bytes);
        matched_any = true;
        break;
      }
    }
    auto all_matched = [](const std::vector<CommOp>& g) {
      return std::all_of(g.begin(), g.end(),
                         [](const CommOp& op) { return op.matched; });
    };
    bool popped = false;
    if (all_matched(ga)) {
      side_a_.pop_front();
      popped = true;
    }
    if (all_matched(gb)) {
      side_b_.pop_front();
      popped = true;
    }
    // Stalled: head groups exist but no conjugate pair and nothing retired. Later
    // posts cannot legally match past the heads, so stop (potential deadlock —
    // diagnosed by the simulator if nothing else progresses).
    if (!matched_any && !popped) {
      return;
    }
  }
}

bool Channel::HasPendingOps() const { return !side_a_.empty() || !side_b_.empty(); }

std::string Channel::DescribeHeads() const {
  auto describe = [](const std::deque<std::vector<CommOp>>& side) -> std::string {
    if (side.empty()) {
      return "(empty)";
    }
    std::ostringstream oss;
    oss << "[";
    for (const auto& op : side.front()) {
      oss << (op.is_send ? "send" : "recv") << " tag=" << op.tag
          << (op.matched ? "(matched) " : " ");
    }
    oss << "] (+" << side.size() - 1 << " groups queued)";
    return oss.str();
  };
  std::ostringstream oss;
  oss << "channel[" << dev_a_ << "<->" << dev_b_ << "] head(dev" << dev_a_
      << ")=" << describe(side_a_) << " head(dev" << dev_b_
      << ")=" << describe(side_b_);
  return oss.str();
}

}  // namespace dynapipe::sim
