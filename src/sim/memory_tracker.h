// Per-device activation memory accounting.
//
// Tracks current and peak usage over labelled allocations (micro-batch activations).
// The simulator uses it both to report peak memory (Fig. 18b) and to detect OOM
// against a configured device limit.
#ifndef DYNAPIPE_SRC_SIM_MEMORY_TRACKER_H_
#define DYNAPIPE_SRC_SIM_MEMORY_TRACKER_H_

#include <cstdint>
#include <string>
#include <unordered_map>

namespace dynapipe::sim {

class MemoryTracker {
 public:
  // base_mb: static consumption (weights/optimizer) present from t=0.
  // limit_mb: device limit; <= 0 disables OOM detection.
  explicit MemoryTracker(double base_mb = 0.0, double limit_mb = 0.0);

  // Allocate `mb` under `label` (e.g. micro-batch id). Returns false on OOM
  // (allocation still recorded so diagnostics show the overshoot).
  bool Allocate(int64_t label, double mb);

  // Free the allocation made under `label`. Freeing an unknown label is an error.
  void Free(int64_t label);

  double current_mb() const { return current_mb_; }
  double peak_mb() const { return peak_mb_; }
  double limit_mb() const { return limit_mb_; }
  bool oom() const { return oom_; }
  int64_t live_allocations() const { return static_cast<int64_t>(sizes_.size()); }

  std::string DescribeOom() const;

 private:
  double limit_mb_;
  double current_mb_;
  double peak_mb_;
  bool oom_ = false;
  double oom_at_mb_ = 0.0;
  std::unordered_map<int64_t, double> sizes_;
};

}  // namespace dynapipe::sim

#endif  // DYNAPIPE_SRC_SIM_MEMORY_TRACKER_H_
