// Discrete-event simulation of one pipeline's devices executing an ExecutionPlan.
//
// Each device runs its instruction sequence in order: compute ops occupy the device
// for a ground-truth duration (optionally noisy); comm Start ops post asynchronously
// to the per-pair ordered Channel; Wait ops block the device until the corresponding
// transfer completes. Activation memory is allocated at forward start and released at
// backward completion. The simulation is causal and worklist-driven: when no device
// can make progress and any is unfinished, the iteration has deadlocked and the
// result carries a channel-head diagnostic.
//
// Data-parallel replicas run as independent ClusterSim instances (they interact only
// through the end-of-iteration gradient allreduce, which the Trainer adds
// analytically) and tensor parallelism is folded into per-stage durations, so a
// ClusterSim's devices are exactly the pipeline stages.
#ifndef DYNAPIPE_SRC_SIM_CLUSTER_SIM_H_
#define DYNAPIPE_SRC_SIM_CLUSTER_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/instruction.h"

namespace dynapipe::sim {

// Ground-truth provider: what the "hardware" actually does. The runtime backs this
// with StagePerfModel (+ NoiseModel); tests back it with synthetic tables.
class GroundTruth {
 public:
  virtual ~GroundTruth() = default;
  // Duration of a ForwardPass/BackwardPass instruction on `device`.
  virtual double ComputeMs(int32_t device, const Instruction& instr) = 0;
  // Activation memory retained by `device` between a micro-batch's forward and
  // backward passes.
  virtual double ActivationMb(int32_t device, const Instruction& instr) = 0;
  // Point-to-point transfer duration.
  virtual double TransferMs(int32_t src, int32_t dst, int64_t bytes) = 0;
};

struct ClusterSimOptions {
  // Static (weights/optimizer) memory per device; empty means all zeros.
  std::vector<double> static_memory_mb;
  // Per-device memory limit; <= 0 disables OOM detection.
  double memory_limit_mb = 0.0;
  // Optional: record every compute op and transfer as a timed span (exportable to
  // chrome://tracing via TraceRecorder::ToChromeTrace). Not owned.
  class TraceRecorder* trace = nullptr;
};

struct DeviceStats {
  double finish_ms = 0.0;
  double busy_ms = 0.0;  // compute-occupied time
  double peak_memory_mb = 0.0;
};

struct SimResult {
  bool deadlocked = false;
  bool oom = false;
  std::string diagnostic;
  double makespan_ms = 0.0;
  std::vector<DeviceStats> devices;

  // Mean fraction of the makespan each device spent idle ("bubble" fraction).
  double MeanIdleFraction() const;
};

class ClusterSim {
 public:
  ClusterSim(int32_t num_devices, GroundTruth* ground_truth,
             ClusterSimOptions options = {});

  // Executes the plan from t=0. The plan must have one DevicePlan per device.
  SimResult Run(const ExecutionPlan& plan);

 private:
  int32_t num_devices_;
  GroundTruth* ground_truth_;
  ClusterSimOptions options_;
};

}  // namespace dynapipe::sim

#endif  // DYNAPIPE_SRC_SIM_CLUSTER_SIM_H_
