#include "src/sim/memory_tracker.h"

#include <sstream>

#include "src/common/check.h"

namespace dynapipe::sim {

MemoryTracker::MemoryTracker(double base_mb, double limit_mb)
    : limit_mb_(limit_mb), current_mb_(base_mb), peak_mb_(base_mb) {
  if (limit_mb_ > 0.0 && current_mb_ > limit_mb_) {
    oom_ = true;
    oom_at_mb_ = current_mb_;
  }
}

bool MemoryTracker::Allocate(int64_t label, double mb) {
  DYNAPIPE_CHECK_MSG(sizes_.find(label) == sizes_.end(), "duplicate allocation label");
  DYNAPIPE_CHECK(mb >= 0.0);
  sizes_[label] = mb;
  current_mb_ += mb;
  if (current_mb_ > peak_mb_) {
    peak_mb_ = current_mb_;
  }
  if (limit_mb_ > 0.0 && current_mb_ > limit_mb_) {
    if (!oom_) {
      oom_ = true;
      oom_at_mb_ = current_mb_;
    }
    return false;
  }
  return true;
}

void MemoryTracker::Free(int64_t label) {
  auto it = sizes_.find(label);
  DYNAPIPE_CHECK_MSG(it != sizes_.end(), "freeing unknown allocation label");
  current_mb_ -= it->second;
  sizes_.erase(it);
}

std::string MemoryTracker::DescribeOom() const {
  if (!oom_) {
    return "";
  }
  std::ostringstream oss;
  oss << "OOM: reached " << oom_at_mb_ << " MB against limit " << limit_mb_ << " MB";
  return oss.str();
}

}  // namespace dynapipe::sim
