#include "src/sim/instruction.h"

#include <sstream>

#include "src/common/check.h"

namespace dynapipe::sim {

bool IsCompute(InstrType t) {
  return t == InstrType::kForwardPass || t == InstrType::kBackwardPass;
}

bool IsCommStart(InstrType t) {
  switch (t) {
    case InstrType::kSendActStart:
    case InstrType::kRecvActStart:
    case InstrType::kSendGradStart:
    case InstrType::kRecvGradStart:
      return true;
    default:
      return false;
  }
}

bool IsCommWait(InstrType t) {
  switch (t) {
    case InstrType::kWaitSendAct:
    case InstrType::kWaitRecvAct:
    case InstrType::kWaitSendGrad:
    case InstrType::kWaitRecvGrad:
      return true;
    default:
      return false;
  }
}

bool IsSend(InstrType t) {
  switch (t) {
    case InstrType::kSendActStart:
    case InstrType::kSendGradStart:
    case InstrType::kWaitSendAct:
    case InstrType::kWaitSendGrad:
      return true;
    default:
      return false;
  }
}

InstrType WaitFor(InstrType start) {
  switch (start) {
    case InstrType::kSendActStart:
      return InstrType::kWaitSendAct;
    case InstrType::kRecvActStart:
      return InstrType::kWaitRecvAct;
    case InstrType::kSendGradStart:
      return InstrType::kWaitSendGrad;
    case InstrType::kRecvGradStart:
      return InstrType::kWaitRecvGrad;
    default:
      DYNAPIPE_CHECK_MSG(false, "WaitFor on non-Start instruction");
  }
}

const char* InstrTypeName(InstrType t) {
  switch (t) {
    case InstrType::kForwardPass:
      return "ForwardPass";
    case InstrType::kBackwardPass:
      return "BackwardPass";
    case InstrType::kSendActStart:
      return "SendActStart";
    case InstrType::kRecvActStart:
      return "RecvActStart";
    case InstrType::kSendGradStart:
      return "SendGradStart";
    case InstrType::kRecvGradStart:
      return "RecvGradStart";
    case InstrType::kWaitSendAct:
      return "WaitSendAct";
    case InstrType::kWaitRecvAct:
      return "WaitRecvAct";
    case InstrType::kWaitSendGrad:
      return "WaitSendGrad";
    case InstrType::kWaitRecvGrad:
      return "WaitRecvGrad";
  }
  return "?";
}

std::string Instruction::ToString() const {
  std::ostringstream oss;
  oss << InstrTypeName(type) << "(mb=" << microbatch;
  if (peer >= 0) {
    oss << ", peer=" << peer;
  }
  if (IsCompute(type)) {
    oss << ", shape=" << shape.ToString();
  }
  oss << ")";
  return oss.str();
}

std::string ExecutionPlan::ToString() const {
  std::ostringstream oss;
  for (const auto& dev : devices) {
    oss << "device " << dev.device << ":\n";
    for (const auto& instr : dev.instructions) {
      oss << "  " << instr.ToString() << "\n";
    }
  }
  return oss.str();
}

}  // namespace dynapipe::sim
