// Caching GPU-memory allocator simulation (§7 "Reducing memory fragmentation").
//
// Dynamic tensor shapes stress caching allocators (PyTorch-style): every
// iteration requests differently-sized activations, so cached blocks rarely fit
// exactly, free lists fragment, and the allocator falls back to blocking
// cudaMalloc/cudaFree (and, under pressure, full defragmentation flushes) that
// stall training. DynaPipe's mitigation is a single pre-allocated unified pool.
//
// CachingAllocator models the PyTorch behaviour: power-of-two-ish size-bucketed
// free lists, best-fit with block splitting, device-malloc fallback, and a
// flush-everything defrag when the device is exhausted. It reports the event
// counts (device mallocs/frees, flushes) whose real counterparts block the GPU,
// plus a fragmentation metric. PooledAllocator models DynaPipe's fix: one upfront
// reservation, contiguous first-fit with immediate coalescing, zero runtime
// device calls. The bench_abl_allocator bench replays real iteration allocation
// traces through both.
#ifndef DYNAPIPE_SRC_SIM_CACHING_ALLOCATOR_H_
#define DYNAPIPE_SRC_SIM_CACHING_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

namespace dynapipe::sim {

struct AllocatorStats {
  int64_t alloc_requests = 0;
  int64_t free_requests = 0;
  // Blocking events: each corresponds to a cudaMalloc/cudaFree/defrag-flush on
  // real hardware.
  int64_t device_mallocs = 0;
  int64_t device_frees = 0;
  int64_t cache_flushes = 0;
  int64_t failed_allocs = 0;  // true OOM even after flushing
  // High-water marks (bytes).
  int64_t peak_reserved = 0;   // memory taken from the device
  int64_t peak_requested = 0;  // live bytes actually requested

  // reserved-but-unusable share at peak: 1 - requested/reserved.
  double fragmentation() const {
    return peak_reserved == 0
               ? 0.0
               : 1.0 - static_cast<double>(peak_requested) /
                           static_cast<double>(peak_reserved);
  }
};

// PyTorch-style caching allocator over a fixed device capacity.
class CachingAllocator {
 public:
  explicit CachingAllocator(int64_t device_capacity_bytes);

  // Returns a handle, or nullopt on OOM (after attempting a cache flush).
  std::optional<int64_t> Allocate(int64_t bytes);
  void Free(int64_t handle);

  const AllocatorStats& stats() const { return stats_; }
  int64_t reserved_bytes() const { return reserved_; }
  int64_t live_bytes() const { return live_requested_; }

 private:
  struct Block {
    int64_t size = 0;
    bool in_use = false;
  };

  // Size-class rounding (mirrors PyTorch: 512B granularity below 1MB, 2MB
  // granularity above).
  static int64_t RoundSize(int64_t bytes);

  int64_t capacity_;
  int64_t reserved_ = 0;
  int64_t live_requested_ = 0;
  int64_t next_handle_ = 0;
  int64_t next_block_id_ = 0;
  // Free blocks bucketed by (rounded) size.
  std::multimap<int64_t, int64_t> free_blocks_;  // size -> block id
  std::unordered_map<int64_t, Block> blocks_;    // block id -> block
  std::unordered_map<int64_t, std::pair<int64_t, int64_t>> handles_;  // handle -> (block, requested)
  AllocatorStats stats_;
};

// DynaPipe's pre-allocated unified pool: reserves the full budget once; runtime
// allocation is offset bookkeeping with immediate coalescing, never a device call.
class PooledAllocator {
 public:
  explicit PooledAllocator(int64_t pool_bytes);

  std::optional<int64_t> Allocate(int64_t bytes);
  void Free(int64_t handle);

  const AllocatorStats& stats() const { return stats_; }

 private:
  struct Span {
    int64_t offset = 0;
    int64_t size = 0;
  };

  int64_t pool_bytes_;
  int64_t live_ = 0;
  int64_t next_handle_ = 0;
  std::map<int64_t, int64_t> free_spans_;  // offset -> size, coalesced
  std::unordered_map<int64_t, Span> handles_;
  AllocatorStats stats_;
};

}  // namespace dynapipe::sim

#endif  // DYNAPIPE_SRC_SIM_CACHING_ALLOCATOR_H_
