// Ordered point-to-point channel with NCCL-like semantics.
//
// NCCL requires sends and receives between a pair of ranks to be issued in matching
// order, and only one transfer per pair is in flight at a time (§2.3). Channel
// models one unordered device pair: each side posts *groups* of communication ops
// (a group is a fused/batched issue, like ncclGroupStart/End or PyTorch
// batch_isend_irecv; most groups contain a single op). Transfers happen only
// between ops of the two *head* groups; a head group is retired when all its ops
// have matched. Out-of-order posts therefore stall the channel head — exactly the
// mechanism that deadlocks naively-scheduled dynamic pipelines, while fused
// crossing pairs keep uniform 1F1B deadlock-free (Fig. 8a).
#ifndef DYNAPIPE_SRC_SIM_CHANNEL_H_
#define DYNAPIPE_SRC_SIM_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace dynapipe::sim {

// One half of a transfer. Tag encodes (microbatch, act-or-grad) so conjugate ops
// pair up; direction comes from is_send.
struct CommOp {
  bool is_send = false;
  uint64_t tag = 0;
  int64_t bytes = 0;
  double post_time_ms = 0.0;
  // Simulator handle for the op's completion record.
  int64_t handle = -1;
  bool matched = false;
};

class Channel {
 public:
  // dev_a < dev_b identify the pair.
  Channel(int32_t dev_a, int32_t dev_b);

  // Post a fused group of ops from `device` (single-op groups for unfused issues).
  void PostGroup(int32_t device, std::vector<CommOp> group);

  // Attempt head-group matching. For every transfer scheduled, invokes
  // on_transfer(send_handle, recv_handle, start_ms, end_ms, bytes); duration_ms
  // supplies the latency+bandwidth model.
  void TryMatch(const std::function<double(int64_t)>& duration_ms,
                const std::function<void(int64_t, int64_t, double, double, int64_t)>&
                    on_transfer);

  bool HasPendingOps() const;

  // Human-readable head-of-queue state for deadlock diagnostics.
  std::string DescribeHeads() const;

 private:
  std::deque<std::vector<CommOp>>& SideFor(int32_t device);

  int32_t dev_a_;
  int32_t dev_b_;
  std::deque<std::vector<CommOp>> side_a_;
  std::deque<std::vector<CommOp>> side_b_;
  double free_time_ms_ = 0.0;  // one transfer at a time per pair
};

}  // namespace dynapipe::sim

#endif  // DYNAPIPE_SRC_SIM_CHANNEL_H_
