// Execution-time noise injection.
//
// Real kernels never take exactly their mean time; the paper studies schedule
// robustness under zero-mean Gaussian disturbance of micro-batch execution times
// (Fig. 7). NoiseModel applies multiplicative noise (1 + N(0, sigma)) clamped to a
// floor so durations stay positive; sigma = 0 is exact determinism.
#ifndef DYNAPIPE_SRC_SIM_NOISE_H_
#define DYNAPIPE_SRC_SIM_NOISE_H_

#include <cstdint>

#include "src/common/rng.h"

namespace dynapipe::sim {

class NoiseModel {
 public:
  NoiseModel(double relative_stddev, uint64_t seed);

  // duration * max(floor, 1 + N(0, sigma)).
  double Apply(double duration_ms);

  double relative_stddev() const { return relative_stddev_; }

 private:
  double relative_stddev_;
  Rng rng_;
};

}  // namespace dynapipe::sim

#endif  // DYNAPIPE_SRC_SIM_NOISE_H_
