// Execution trace recording and Chrome-trace export.
//
// ClusterSim can record every compute op and transfer as a timed span; ToChromeTrace
// serializes them in the Chrome tracing JSON format (chrome://tracing, Perfetto),
// with one row per device compute stream and one per channel — the same way the
// paper visualizes pipelines (Figs. 6/8/11). Spans are in simulated milliseconds
// mapped to trace microseconds.
#ifndef DYNAPIPE_SRC_SIM_TRACE_H_
#define DYNAPIPE_SRC_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dynapipe::sim {

struct TraceSpan {
  std::string name;   // e.g. "F3", "B7", "act mb3 0->1"
  int32_t track = 0;  // device id for compute, 1000 + channel index for transfers
  double start_ms = 0.0;
  double end_ms = 0.0;
};

class TraceRecorder {
 public:
  void AddSpan(std::string name, int32_t track, double start_ms, double end_ms);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }

  // Chrome tracing JSON ("traceEvents" array of complete events). Compute tracks
  // are named "device N"; transfer tracks "channel A<->B".
  std::string ToChromeTrace() const;

 private:
  std::vector<TraceSpan> spans_;
};

}  // namespace dynapipe::sim

#endif  // DYNAPIPE_SRC_SIM_TRACE_H_
