#include "src/sim/cluster_sim.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "src/common/check.h"
#include "src/sim/channel.h"
#include "src/sim/memory_tracker.h"
#include "src/sim/trace.h"

namespace dynapipe::sim {
namespace {

// Tag shared by a conjugate send/recv pair on a channel: the micro-batch index and
// whether the tensor is an activation (forward) or a gradient (backward).
uint64_t TagFor(const Instruction& instr) {
  const bool is_grad = instr.type == InstrType::kSendGradStart ||
                       instr.type == InstrType::kRecvGradStart ||
                       instr.type == InstrType::kWaitSendGrad ||
                       instr.type == InstrType::kWaitRecvGrad;
  return (static_cast<uint64_t>(instr.microbatch) << 1) | (is_grad ? 1u : 0u);
}

// Key linking a Wait op back to its Start op on the same device.
struct WaitKey {
  InstrType start_type;
  int32_t microbatch;
  int32_t peer;
  auto operator<=>(const WaitKey&) const = default;
};

InstrType StartTypeForWait(InstrType wait) {
  switch (wait) {
    case InstrType::kWaitSendAct:
      return InstrType::kSendActStart;
    case InstrType::kWaitRecvAct:
      return InstrType::kRecvActStart;
    case InstrType::kWaitSendGrad:
      return InstrType::kSendGradStart;
    case InstrType::kWaitRecvGrad:
      return InstrType::kRecvGradStart;
    default:
      DYNAPIPE_CHECK_MSG(false, "not a Wait instruction");
  }
}

struct Transfer {
  bool complete = false;
  double end_ms = 0.0;
};

struct DeviceState {
  size_t pc = 0;
  double clock_ms = 0.0;
  double busy_ms = 0.0;
  bool done = false;
  int64_t blocked_on = -1;  // transfer handle
  std::map<WaitKey, int64_t> started;  // Start ops posted, for Wait lookup
  std::unique_ptr<MemoryTracker> memory;
};

}  // namespace

double SimResult::MeanIdleFraction() const {
  if (devices.empty() || makespan_ms <= 0.0) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& d : devices) {
    total += 1.0 - d.busy_ms / makespan_ms;
  }
  return total / static_cast<double>(devices.size());
}

ClusterSim::ClusterSim(int32_t num_devices, GroundTruth* ground_truth,
                       ClusterSimOptions options)
    : num_devices_(num_devices), ground_truth_(ground_truth),
      options_(std::move(options)) {
  DYNAPIPE_CHECK(num_devices_ >= 1);
  DYNAPIPE_CHECK(ground_truth_ != nullptr);
  if (!options_.static_memory_mb.empty()) {
    DYNAPIPE_CHECK(options_.static_memory_mb.size() ==
                   static_cast<size_t>(num_devices_));
  }
}

SimResult ClusterSim::Run(const ExecutionPlan& plan) {
  DYNAPIPE_CHECK_MSG(plan.num_devices() == num_devices_,
                     "plan/device count mismatch");

  std::vector<DeviceState> devices(static_cast<size_t>(num_devices_));
  for (int32_t d = 0; d < num_devices_; ++d) {
    const double base = options_.static_memory_mb.empty()
                            ? 0.0
                            : options_.static_memory_mb[static_cast<size_t>(d)];
    devices[static_cast<size_t>(d)].memory =
        std::make_unique<MemoryTracker>(base, options_.memory_limit_mb);
  }

  // Channels per unordered device pair, created lazily.
  std::map<std::pair<int32_t, int32_t>, Channel> channels;
  auto channel_for = [&](int32_t a, int32_t b) -> Channel& {
    const auto key = std::minmax(a, b);
    auto it = channels.find(key);
    if (it == channels.end()) {
      it = channels.emplace(key, Channel(key.first, key.second)).first;
    }
    return it->second;
  };

  std::vector<Transfer> transfers;
  // Human-readable transfer labels + trace track, filled at Start posting (only
  // when tracing): indexed by handle, send side wins the naming race.
  std::vector<std::pair<std::string, int32_t>> transfer_labels;
  // Devices blocked on a given transfer handle.
  std::unordered_map<int64_t, std::vector<int32_t>> waiters;
  std::deque<int32_t> worklist;
  std::vector<bool> queued(static_cast<size_t>(num_devices_), false);
  auto enqueue = [&](int32_t d) {
    if (!queued[static_cast<size_t>(d)]) {
      queued[static_cast<size_t>(d)] = true;
      worklist.push_back(d);
    }
  };
  for (int32_t d = 0; d < num_devices_; ++d) {
    enqueue(d);
  }

  double last_transfer_end_ms = 0.0;

  auto on_transfer = [&](int64_t send_handle, int64_t recv_handle, double start,
                         double end, int64_t /*bytes*/) {
    if (options_.trace != nullptr &&
        send_handle < static_cast<int64_t>(transfer_labels.size()) &&
        !transfer_labels[static_cast<size_t>(send_handle)].first.empty()) {
      const auto& [label, track] = transfer_labels[static_cast<size_t>(send_handle)];
      options_.trace->AddSpan(label, track, start, end);
    }
    for (const int64_t h : {send_handle, recv_handle}) {
      transfers[static_cast<size_t>(h)].complete = true;
      transfers[static_cast<size_t>(h)].end_ms = end;
      auto it = waiters.find(h);
      if (it != waiters.end()) {
        for (const int32_t d : it->second) {
          DeviceState& ds = devices[static_cast<size_t>(d)];
          ds.clock_ms = std::max(ds.clock_ms, end);
          ds.blocked_on = -1;
          enqueue(d);
        }
        waiters.erase(it);
      }
    }
    last_transfer_end_ms = std::max(last_transfer_end_ms, end);
  };

  while (!worklist.empty()) {
    const int32_t d = worklist.front();
    worklist.pop_front();
    queued[static_cast<size_t>(d)] = false;
    DeviceState& ds = devices[static_cast<size_t>(d)];
    if (ds.done || ds.blocked_on >= 0) {
      continue;
    }
    const auto& instrs = plan.devices[static_cast<size_t>(d)].instructions;
    while (ds.pc < instrs.size()) {
      const Instruction& instr = instrs[ds.pc];
      if (IsCompute(instr.type)) {
        const double dur = ground_truth_->ComputeMs(d, instr);
        DYNAPIPE_CHECK_MSG(dur >= 0.0, "negative compute duration");
        if (instr.type == InstrType::kForwardPass) {
          ds.memory->Allocate(instr.microbatch,
                              ground_truth_->ActivationMb(d, instr));
        }
        if (options_.trace != nullptr) {
          options_.trace->AddSpan(
              std::string(instr.type == InstrType::kForwardPass ? "F" : "B") +
                  std::to_string(instr.microbatch),
              d, ds.clock_ms, ds.clock_ms + dur);
        }
        ds.clock_ms += dur;
        ds.busy_ms += dur;
        if (instr.type == InstrType::kBackwardPass) {
          ds.memory->Free(instr.microbatch);
        }
        ++ds.pc;
      } else if (IsCommStart(instr.type)) {
        DYNAPIPE_CHECK_MSG(instr.peer >= 0 && instr.peer < num_devices_,
                           "comm instruction with invalid peer");
        // Gather this Start plus any directly-following Starts sharing a
        // non-negative fusion_group and the same peer into one fused issue.
        std::vector<CommOp> group;
        const int32_t peer = instr.peer;
        size_t pc = ds.pc;
        while (pc < instrs.size()) {
          const Instruction& in = instrs[pc];
          if (!IsCommStart(in.type) || in.peer != peer) {
            break;
          }
          const bool fused_with_first =
              pc == ds.pc || (instr.fusion_group >= 0 &&
                              in.fusion_group == instr.fusion_group);
          if (!fused_with_first) {
            break;
          }
          const int64_t handle = static_cast<int64_t>(transfers.size());
          transfers.push_back(Transfer{});
          CommOp op;
          op.is_send = IsSend(in.type);
          op.tag = TagFor(in);
          op.bytes = in.bytes;
          op.post_time_ms = ds.clock_ms;
          op.handle = handle;
          ds.started[WaitKey{in.type, in.microbatch, in.peer}] = handle;
          if (options_.trace != nullptr) {
            transfer_labels.resize(transfers.size());
            if (op.is_send) {
              const bool is_grad = in.type == InstrType::kSendGradStart;
              const auto ch = std::minmax(d, in.peer);
              transfer_labels[static_cast<size_t>(handle)] = {
                  std::string(is_grad ? "grad" : "act") + " mb" +
                      std::to_string(in.microbatch) + " " + std::to_string(d) +
                      "->" + std::to_string(in.peer),
                  1000 + ch.first * num_devices_ + ch.second};
            }
          }
          group.push_back(op);
          ++pc;
        }
        ds.pc = pc;
        Channel& ch = channel_for(d, peer);
        ch.PostGroup(d, std::move(group));
        const auto pair = std::minmax(d, peer);
        ch.TryMatch(
            [&](int64_t bytes) {
              return ground_truth_->TransferMs(pair.first, pair.second, bytes);
            },
            on_transfer);
      } else {  // Wait op
        const WaitKey key{StartTypeForWait(instr.type), instr.microbatch, instr.peer};
        auto it = ds.started.find(key);
        DYNAPIPE_CHECK_MSG(it != ds.started.end(),
                           "Wait without a preceding Start on this device");
        const int64_t handle = it->second;
        const Transfer& tr = transfers[static_cast<size_t>(handle)];
        if (tr.complete) {
          ds.clock_ms = std::max(ds.clock_ms, tr.end_ms);
          ++ds.pc;
        } else {
          ds.blocked_on = handle;
          waiters[handle].push_back(d);
          break;
        }
      }
    }
    if (ds.pc >= instrs.size()) {
      ds.done = true;
    }
  }

  SimResult result;
  result.devices.resize(static_cast<size_t>(num_devices_));
  bool all_done = true;
  for (int32_t d = 0; d < num_devices_; ++d) {
    const DeviceState& ds = devices[static_cast<size_t>(d)];
    DeviceStats& out = result.devices[static_cast<size_t>(d)];
    out.finish_ms = ds.clock_ms;
    out.busy_ms = ds.busy_ms;
    out.peak_memory_mb = ds.memory->peak_mb();
    result.makespan_ms = std::max(result.makespan_ms, ds.clock_ms);
    if (ds.memory->oom()) {
      result.oom = true;
      if (result.diagnostic.empty()) {
        result.diagnostic = "device " + std::to_string(d) + ": " +
                            ds.memory->DescribeOom();
      }
    }
    all_done = all_done && ds.done;
  }
  result.makespan_ms = std::max(result.makespan_ms, last_transfer_end_ms);

  if (!all_done) {
    result.deadlocked = true;
    std::ostringstream oss;
    oss << "deadlock: ";
    for (int32_t d = 0; d < num_devices_; ++d) {
      const DeviceState& ds = devices[static_cast<size_t>(d)];
      if (!ds.done) {
        const auto& instrs = plan.devices[static_cast<size_t>(d)].instructions;
        oss << "[dev " << d << " stuck at #" << ds.pc << " "
            << instrs[ds.pc].ToString() << "] ";
      }
    }
    for (const auto& [key, ch] : channels) {
      if (ch.HasPendingOps()) {
        oss << ch.DescribeHeads() << " ";
      }
    }
    result.diagnostic = oss.str();
  }
  return result;
}

}  // namespace dynapipe::sim
