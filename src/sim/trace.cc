#include "src/sim/trace.h"

#include <sstream>

#include "src/common/check.h"

namespace dynapipe::sim {

void TraceRecorder::AddSpan(std::string name, int32_t track, double start_ms,
                            double end_ms) {
  DYNAPIPE_CHECK(end_ms >= start_ms);
  spans_.push_back(TraceSpan{std::move(name), track, start_ms, end_ms});
}

std::string TraceRecorder::ToChromeTrace() const {
  std::ostringstream oss;
  oss << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& span : spans_) {
    if (!first) {
      oss << ",";
    }
    first = false;
    // Complete ("X") events: ts/dur in microseconds. pid 0, tid = track.
    oss << "{\"name\":\"" << span.name << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
        << span.track << ",\"ts\":" << span.start_ms * 1000.0
        << ",\"dur\":" << (span.end_ms - span.start_ms) * 1000.0 << "}";
  }
  // Track name metadata, once per distinct track.
  std::vector<int32_t> tracks;
  for (const auto& span : spans_) {
    bool seen = false;
    for (const int32_t t : tracks) {
      seen = seen || t == span.track;
    }
    if (!seen) {
      tracks.push_back(span.track);
    }
  }
  for (const int32_t t : tracks) {
    oss << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << t
        << ",\"args\":{\"name\":\""
        << (t < 1000 ? "device " + std::to_string(t)
                     : "channel " + std::to_string(t - 1000))
        << "\"}}";
  }
  oss << "]}";
  return oss.str();
}

}  // namespace dynapipe::sim
