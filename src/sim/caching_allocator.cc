#include "src/sim/caching_allocator.h"

#include <algorithm>

#include "src/common/check.h"

namespace dynapipe::sim {
namespace {

constexpr int64_t kSmallGranularity = 512;
constexpr int64_t kLargeGranularity = 2ll << 20;  // 2 MB
constexpr int64_t kSmallLimit = 1ll << 20;        // 1 MB

int64_t RoundUp(int64_t v, int64_t g) { return (v + g - 1) / g * g; }

}  // namespace

// ---------------- CachingAllocator ----------------

CachingAllocator::CachingAllocator(int64_t device_capacity_bytes)
    : capacity_(device_capacity_bytes) {
  DYNAPIPE_CHECK(capacity_ > 0);
}

int64_t CachingAllocator::RoundSize(int64_t bytes) {
  return bytes < kSmallLimit ? RoundUp(bytes, kSmallGranularity)
                             : RoundUp(bytes, kLargeGranularity);
}

std::optional<int64_t> CachingAllocator::Allocate(int64_t bytes) {
  DYNAPIPE_CHECK(bytes > 0);
  ++stats_.alloc_requests;
  const int64_t need = RoundSize(bytes);

  auto take_block = [&](int64_t block_id) -> int64_t {
    Block& blk = blocks_[block_id];
    blk.in_use = true;
    // Split if the cached block is much larger than the request (PyTorch splits
    // large blocks; retaining oversized blocks whole is a fragmentation source,
    // splitting leaves remainders that may fit nothing — both modelled).
    const int64_t remainder = blk.size - need;
    if (remainder >= kLargeGranularity) {
      blk.size = need;
      const int64_t rest_id = ++next_block_id_;
      blocks_[rest_id] = Block{remainder, false};
      free_blocks_.emplace(remainder, rest_id);
    }
    const int64_t handle = ++next_handle_;
    handles_[handle] = {block_id, bytes};
    live_requested_ += bytes;
    stats_.peak_requested = std::max(stats_.peak_requested, live_requested_);
    return handle;
  };

  // Best-fit in the free cache: smallest cached block that fits.
  auto it = free_blocks_.lower_bound(need);
  if (it != free_blocks_.end()) {
    const int64_t block_id = it->second;
    free_blocks_.erase(it);
    return take_block(block_id);
  }

  // Cache miss: device malloc if capacity allows.
  auto device_malloc = [&]() -> std::optional<int64_t> {
    if (reserved_ + need > capacity_) {
      return std::nullopt;
    }
    ++stats_.device_mallocs;
    reserved_ += need;
    stats_.peak_reserved = std::max(stats_.peak_reserved, reserved_);
    const int64_t block_id = ++next_block_id_;
    blocks_[block_id] = Block{need, false};
    return take_block(block_id);
  };

  if (auto handle = device_malloc()) {
    return handle;
  }

  // Out of device memory: flush the cache (free every unused block back to the
  // device — PyTorch's empty_cache defrag path, which blocks on cudaFree).
  ++stats_.cache_flushes;
  for (auto& [size, block_id] : free_blocks_) {
    reserved_ -= blocks_[block_id].size;
    blocks_.erase(block_id);
    ++stats_.device_frees;
  }
  free_blocks_.clear();

  if (auto handle = device_malloc()) {
    return handle;
  }
  ++stats_.failed_allocs;
  return std::nullopt;
}

void CachingAllocator::Free(int64_t handle) {
  auto it = handles_.find(handle);
  DYNAPIPE_CHECK_MSG(it != handles_.end(), "freeing unknown handle");
  const auto [block_id, requested] = it->second;
  handles_.erase(it);
  ++stats_.free_requests;
  live_requested_ -= requested;
  Block& blk = blocks_[block_id];
  blk.in_use = false;
  free_blocks_.emplace(blk.size, block_id);  // cached, not returned to device
}

// ---------------- PooledAllocator ----------------

PooledAllocator::PooledAllocator(int64_t pool_bytes) : pool_bytes_(pool_bytes) {
  DYNAPIPE_CHECK(pool_bytes_ > 0);
  free_spans_[0] = pool_bytes_;
  // The single upfront reservation.
  stats_.device_mallocs = 1;
  stats_.peak_reserved = pool_bytes_;
}

std::optional<int64_t> PooledAllocator::Allocate(int64_t bytes) {
  DYNAPIPE_CHECK(bytes > 0);
  ++stats_.alloc_requests;
  // First fit over coalesced spans.
  for (auto it = free_spans_.begin(); it != free_spans_.end(); ++it) {
    if (it->second < bytes) {
      continue;
    }
    const int64_t offset = it->first;
    const int64_t span = it->second;
    free_spans_.erase(it);
    if (span > bytes) {
      free_spans_[offset + bytes] = span - bytes;
    }
    const int64_t handle = ++next_handle_;
    handles_[handle] = Span{offset, bytes};
    live_ += bytes;
    stats_.peak_requested = std::max(stats_.peak_requested, live_);
    return handle;
  }
  ++stats_.failed_allocs;
  return std::nullopt;
}

void PooledAllocator::Free(int64_t handle) {
  auto it = handles_.find(handle);
  DYNAPIPE_CHECK_MSG(it != handles_.end(), "freeing unknown handle");
  Span span = it->second;
  handles_.erase(it);
  ++stats_.free_requests;
  live_ -= span.size;
  // Insert and coalesce with neighbours.
  auto next = free_spans_.lower_bound(span.offset);
  if (next != free_spans_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == span.offset) {
      span.offset = prev->first;
      span.size += prev->second;
      free_spans_.erase(prev);
    }
  }
  if (next != free_spans_.end() && span.offset + span.size == next->first) {
    span.size += next->second;
    free_spans_.erase(next);
  }
  free_spans_[span.offset] = span.size;
}

}  // namespace dynapipe::sim
