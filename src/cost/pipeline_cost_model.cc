#include "src/cost/pipeline_cost_model.h"

#include <algorithm>
#include <istream>
#include <string>
#include <ostream>

#include "src/common/check.h"

namespace dynapipe::cost {

PipelineCostModel PipelineCostModel::Profile(const model::ModelConfig& config,
                                             const model::HardwareSpec& hw,
                                             const model::ParallelConfig& parallel,
                                             const ProfileOptions& options) {
  PipelineCostModel pcm;
  pcm.config_ = config;
  pcm.hw_ = hw;
  pcm.parallel_ = parallel;
  pcm.truth_ = model::BuildStageModels(config, hw, parallel.pp, parallel.tp);
  ProfileOptions opts = options;
  opts.profile_target_axis = config.arch == model::ModelArch::kT5;
  pcm.stages_.reserve(pcm.truth_.size());
  for (const auto& stage_truth : pcm.truth_) {
    pcm.stages_.push_back(StageCostModel::Profile(stage_truth, opts));
  }
  return pcm;
}

void PipelineCostModel::SaveProfile(std::ostream& os) const {
  os << "dynapipe-profile-v1 " << stages_.size() << "\n";
  for (const auto& stage_cm : stages_) {
    stage_cm.Save(os);
  }
}

PipelineCostModel PipelineCostModel::LoadProfile(const model::ModelConfig& config,
                                                 const model::HardwareSpec& hw,
                                                 const model::ParallelConfig& parallel,
                                                 std::istream& is) {
  std::string magic;
  size_t num_stages = 0;
  DYNAPIPE_CHECK_MSG(static_cast<bool>(is >> magic >> num_stages),
                     "malformed profile header");
  DYNAPIPE_CHECK_MSG(magic == "dynapipe-profile-v1", "unknown profile format");
  DYNAPIPE_CHECK_MSG(num_stages == static_cast<size_t>(parallel.pp),
                     "profile stage count does not match parallel config");
  PipelineCostModel pcm;
  pcm.config_ = config;
  pcm.hw_ = hw;
  pcm.parallel_ = parallel;
  pcm.truth_ = model::BuildStageModels(config, hw, parallel.pp, parallel.tp);
  pcm.stages_.reserve(num_stages);
  for (size_t s = 0; s < num_stages; ++s) {
    pcm.stages_.push_back(StageCostModel::Load(is));
  }
  return pcm;
}

const StageCostModel& PipelineCostModel::stage(int32_t s) const {
  DYNAPIPE_CHECK(s >= 0 && s < num_stages());
  return stages_[static_cast<size_t>(s)];
}

double PipelineCostModel::StageFwdMs(int32_t s,
                                     const model::MicroBatchShape& shape) const {
  return stage(s).FwdMs(shape);
}

double PipelineCostModel::StageBwdMs(int32_t s, const model::MicroBatchShape& shape,
                                     model::RecomputeMode mode) const {
  return stage(s).BwdMs(shape, mode);
}

double PipelineCostModel::StageActivationMb(int32_t s,
                                            const model::MicroBatchShape& shape,
                                            model::RecomputeMode mode) const {
  return stage(s).ActivationMb(shape, mode);
}

double PipelineCostModel::MicroBatchTimeMs(const model::MicroBatchShape& shape,
                                           model::RecomputeMode mode) const {
  double worst = 0.0;
  for (const auto& s : stages_) {
    worst = std::max(worst, s.FwdBwdMs(shape, mode));
  }
  return worst;
}

double PipelineCostModel::MaxActivationMb(const model::MicroBatchShape& shape,
                                          model::RecomputeMode mode) const {
  double worst = 0.0;
  for (const auto& s : stages_) {
    worst = std::max(worst, s.ActivationMb(shape, mode));
  }
  return worst;
}

double PipelineCostModel::StaticMemoryMb(int32_t s) const {
  DYNAPIPE_CHECK(s >= 0 && s < num_stages());
  return truth_[static_cast<size_t>(s)].StaticMemoryMb(parallel_.dp);
}

double PipelineCostModel::ActivationBudgetMb() const {
  double worst_static = 0.0;
  for (int32_t s = 0; s < num_stages(); ++s) {
    worst_static = std::max(worst_static, StaticMemoryMb(s));
  }
  return hw_.usable_memory_mb() - worst_static;
}

int64_t PipelineCostModel::BoundaryBytes(int32_t s,
                                         const model::MicroBatchShape& shape) const {
  DYNAPIPE_CHECK(s >= 0 && s < num_stages());
  return static_cast<int64_t>(
      truth_[static_cast<size_t>(s)].OutputActivationBytes(shape));
}

double PipelineCostModel::TransferMs(int32_t from_stage, int32_t to_stage,
                                     int64_t bytes) const {
  // Stage s occupies GPUs [s*tp, (s+1)*tp) within its replica; the boundary is
  // intra-node iff representative GPUs share a node.
  const int32_t src_gpu = from_stage * parallel_.tp;
  const int32_t dst_gpu = to_stage * parallel_.tp;
  const bool same_node =
      src_gpu / hw_.gpus_per_node == dst_gpu / hw_.gpus_per_node;
  const double bw_gbs = same_node ? hw_.intra_node_bw_gbs : hw_.inter_node_bw_gbs;
  return hw_.p2p_latency_us / 1e3 +
         static_cast<double>(bytes) / 1e9 / bw_gbs * 1e3;
}

double PipelineCostModel::DpGradSyncMs() const {
  double worst = 0.0;
  for (const auto& stage_truth : truth_) {
    worst = std::max(worst, model::DpGradSyncMs(config_, hw_, stage_truth.layout(),
                                                parallel_.tp, parallel_.dp));
  }
  return worst;
}

}  // namespace dynapipe::cost
