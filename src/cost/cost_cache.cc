#include "src/cost/cost_cache.h"

#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace dynapipe::cost {
namespace {

// Probe runs longer than this give up and compute uncached; keeps worst-case
// lookup cost bounded when the table approaches capacity.
constexpr size_t kMaxProbe = 64;

// Claim marker for a slot whose value is being written. Cannot collide with a
// real key: those always have num_samples >= 1 in bits 48..61.
constexpr uint64_t kBusy = 1;

// Hit-rate evaluation window, and how many queries a bypass stays in force
// before a probation window re-samples the rate.
constexpr int64_t kRateWindow = 32'768;
constexpr int64_t kBypassSpan = 8 * kRateWindow;

uint64_t Mix(uint64_t key) {
  // splitmix64 finalizer: shape fields occupy fixed bit ranges, so without
  // mixing, nearby shapes would collide into probe clusters.
  key ^= key >> 30;
  key *= 0xBF58476D1CE4E5B9ull;
  key ^= key >> 27;
  key *= 0x94D049BB133111EBull;
  key ^= key >> 31;
  return key;
}

}  // namespace

CachedCostOracle::CachedCostOracle(const PipelineCostModel& cm, size_t capacity)
    : cm_(cm) {
  size_t cap = 16;
  while (cap < capacity) {
    cap <<= 1;
  }
  mask_ = cap - 1;
  insert_cap_ = cap - cap / 4;
  slots_ = std::make_unique<Slot[]>(cap);
}

uint64_t CachedCostOracle::Key(const model::MicroBatchShape& shape,
                               model::RecomputeMode mode) {
  // 2 bits mode | 14 bits num_samples | 24 bits input_len | 24 bits target_len.
  // The bounds comfortably cover profiled ranges (batch <= 16383, lens < 16M);
  // anything larger is a bug upstream, not a cache-capacity concern. A real
  // key is never 0 because num_samples >= 1.
  DYNAPIPE_CHECK(shape.num_samples >= 1 && shape.num_samples < (1 << 14));
  DYNAPIPE_CHECK(shape.input_len >= 0 && shape.input_len < (1 << 24));
  DYNAPIPE_CHECK(shape.target_len >= 0 && shape.target_len < (1 << 24));
  return (static_cast<uint64_t>(mode) << 62) |
         (static_cast<uint64_t>(shape.num_samples) << 48) |
         (static_cast<uint64_t>(shape.input_len) << 24) |
         static_cast<uint64_t>(shape.target_len);
}

CachedCostOracle::Entry CachedCostOracle::Query(
    const model::MicroBatchShape& shape, model::RecomputeMode mode, bool* hit,
    double act_limit) const {
  // Adaptive bypass: probing a cold table only pays off above roughly a 30%
  // hit rate, and some workloads never get there — T5's 2-D length grid
  // across a FLAN-like epoch stays in single digits. The oracle watches its
  // hit rate over windows of kRateWindow queries; a window under 15% switches
  // probing off for kBypassSpan queries, after which a probation window
  // re-samples (reuse is often cross-iteration, so a cold first window must
  // not condemn the cache forever). Cached values are untouched by mode
  // flips, so results stay bit-identical either way; only latency changes.
  {
    const int64_t h = hits_.load(std::memory_order_relaxed);
    const int64_t total = h + misses_.load(std::memory_order_relaxed);
    const int64_t window_total =
        total - window_start_total_.load(std::memory_order_relaxed);
    if (bypassed_.load(std::memory_order_relaxed) != 0) {
      if (window_total >= kBypassSpan) {
        // Probation: resume caching and measure a fresh window. Racing
        // threads may reset concurrently; the window boundaries are
        // heuristics, approximate resets are fine.
        window_start_total_.store(total, std::memory_order_relaxed);
        window_start_hits_.store(h, std::memory_order_relaxed);
        bypassed_.store(0, std::memory_order_relaxed);
      } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
        if (hit != nullptr) {
          *hit = false;
        }
        Entry entry;
        entry.act_mb = cm_.MaxActivationMb(shape, mode);
        entry.time_ms =
            (act_limit == 0.0 || (act_limit > 0.0 && entry.act_mb <= act_limit))
                ? cm_.MicroBatchTimeMs(shape, mode)
                : std::numeric_limits<double>::quiet_NaN();
        return entry;
      }
    } else if (window_total >= kRateWindow) {
      const int64_t window_hits =
          h - window_start_hits_.load(std::memory_order_relaxed);
      if (window_hits * 100 < window_total * 15) {
        bypassed_.store(1, std::memory_order_relaxed);
      }
      window_start_total_.store(total, std::memory_order_relaxed);
      window_start_hits_.store(h, std::memory_order_relaxed);
    }
  }
  const uint64_t key = Key(shape, mode);
  const size_t start = static_cast<size_t>(Mix(key)) & mask_;
  // act_limit > 0: time wanted only for windows within the memory cap (the DP
  // precompute's pattern). act_limit == 0: time unconditionally wanted.
  // act_limit < 0: act-only query, never compute time.
  size_t insert_from = kMaxProbe;
  for (size_t p = 0; p < kMaxProbe; ++p) {
    const size_t idx = (start + p) & mask_;
    const uint64_t seen = slots_[idx].key.load(std::memory_order_acquire);
    if (seen == key) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (hit != nullptr) {
        *hit = true;
      }
      Entry entry;
      entry.act_mb = slots_[idx].act_mb;
      const bool need_time =
          act_limit == 0.0 || (act_limit > 0.0 && entry.act_mb <= act_limit);
      double t = slots_[idx].time_ms.load(std::memory_order_relaxed);
      if (need_time && std::isnan(t)) {
        // Lazy upgrade: the entry was cached by an over-limit probe that never
        // priced it. Racing upgrades store the same deterministic value.
        t = cm_.MicroBatchTimeMs(shape, mode);
        slots_[idx].time_ms.store(t, std::memory_order_relaxed);
      }
      entry.time_ms = t;
      return entry;
    }
    if (seen == 0) {
      // Write-once table: the key cannot live past the first empty slot. (It
      // may be mid-publish in an earlier kBusy slot — then we recompute the
      // same value below, which is benign.)
      insert_from = p;
      break;
    }
    // Other key or kBusy: probe onwards.
  }
  const bool may_insert =
      insert_from < kMaxProbe &&
      entries_.load(std::memory_order_relaxed) < insert_cap_;
  // Miss: compute (no lock held; concurrent misses on the same key all derive
  // the same deterministic value) and try to publish. Claim an empty slot with
  // a CAS to kBusy, write the value fields, then release-store the key —
  // readers that acquire the key therefore always see complete values, and a
  // failed claim never touches another thread's slot.
  Entry entry;
  entry.act_mb = cm_.MaxActivationMb(shape, mode);
  const bool need_time =
      act_limit == 0.0 || (act_limit > 0.0 && entry.act_mb <= act_limit);
  entry.time_ms = need_time ? cm_.MicroBatchTimeMs(shape, mode)
                            : std::numeric_limits<double>::quiet_NaN();
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (hit != nullptr) {
    *hit = false;
  }
  if (!may_insert) {
    return entry;  // probe run exhausted or table at load cap: serve uncached
  }
  for (size_t p = insert_from; p < kMaxProbe; ++p) {
    const size_t idx = (start + p) & mask_;
    const uint64_t seen = slots_[idx].key.load(std::memory_order_acquire);
    if (seen == key) {
      return entry;  // racing miss on the same key already published it
    }
    if (seen != 0) {
      continue;  // taken (or being taken) by another key
    }
    uint64_t expected = 0;
    if (slots_[idx].key.compare_exchange_strong(expected, kBusy,
                                                std::memory_order_acquire,
                                                std::memory_order_acquire)) {
      slots_[idx].act_mb = entry.act_mb;
      slots_[idx].time_ms.store(entry.time_ms, std::memory_order_relaxed);
      slots_[idx].key.store(key, std::memory_order_release);
      entries_.fetch_add(1, std::memory_order_relaxed);
      return entry;
    }
    if (expected == key) {
      return entry;
    }
  }
  return entry;
}

double CachedCostOracle::TimeMs(const model::MicroBatchShape& shape,
                                model::RecomputeMode mode) const {
  return Query(shape, mode).time_ms;
}

double CachedCostOracle::ActivationMb(const model::MicroBatchShape& shape,
                                      model::RecomputeMode mode) const {
  return Query(shape, mode, nullptr, /*act_limit=*/-1.0).act_mb;
}

CostCacheCounters CachedCostOracle::counters() const {
  CostCacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  return c;
}

// --- StageCostCache -------------------------------------------------------

namespace {
// Approximate per-entry footprint: key + value + list node + index slot.
constexpr size_t kStageEntryBytes =
    sizeof(std::pair<const uint64_t, uint64_t>) + 3 * sizeof(double) + 96;
}  // namespace

StageCostCache::StageCostCache() : StageCostCache(size_t{8} << 20) {}

StageCostCache::StageCostCache(size_t max_bytes) : max_bytes_(max_bytes) {}

size_t StageCostCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = k.context ^ 1469598103934665603ull;
  h ^= k.packed;
  h *= 1099511628211ull;
  h ^= h >> 29;
  return static_cast<size_t>(h);
}

bool StageCostCache::PackKey(uint64_t context, int32_t stage,
                             const model::MicroBatchShape& shape,
                             model::RecomputeMode mode, Key* key) {
  // stage(8) | mode(2) | num_samples(14) | input(20) | target(20) = 64 bits,
  // collision-free within the ranges any profile supports.
  if (stage < 0 || stage >= 256 || shape.num_samples < 0 ||
      shape.num_samples >= (1 << 14) || shape.input_len < 0 ||
      shape.input_len >= (1 << 20) || shape.target_len < 0 ||
      shape.target_len >= (1 << 20)) {
    return false;
  }
  key->context = context;
  key->packed = (static_cast<uint64_t>(stage) << 56) |
                (static_cast<uint64_t>(mode) << 54) |
                (static_cast<uint64_t>(shape.num_samples) << 40) |
                (static_cast<uint64_t>(shape.input_len) << 20) |
                static_cast<uint64_t>(shape.target_len);
  return true;
}

bool StageCostCache::Lookup(uint64_t context, int32_t stage,
                            const model::MicroBatchShape& shape,
                            model::RecomputeMode mode, Entry* out) {
  Key key;
  if (!PackKey(context, stage, shape, mode, &key)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  it->second->hot = true;
  *out = it->second->entry;
  return true;
}

void StageCostCache::Insert(uint64_t context, int32_t stage,
                            const model::MicroBatchShape& shape,
                            model::RecomputeMode mode, const Entry& entry) {
  Key key;
  if (!PackKey(context, stage, shape, mode, &key)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Racing misses derive the same deterministic value; keep the first.
    it->second->hot = true;
    return;
  }
  // Churn guard: a regime whose shapes rarely recur (unquantized batches)
  // pays map-insert plus eviction on every priced shape for a cache whose
  // hits save only a cheap grid interpolation — below roughly break-even
  // (50% lifetime hit rate) the cache is a net loss. Once enough traffic has
  // passed to judge, inserts pause under that rate — except for a periodic
  // refresh window so a regime change (say, quantization switched on) can
  // re-seed the cache and lift the rate back up. Skipping an insert never
  // changes plan bytes; the values are recomputed deterministically on the
  // next miss.
  const int64_t lookups = stats_.hits + stats_.misses;
  if (lookups > 10'000 && stats_.hits * 2 < lookups &&
      stats_.misses % 4096 >= 256) {
    return;
  }
  items_.emplace_front(Item{key, entry, false});
  index_.emplace(key, items_.begin());
  stats_.bytes += static_cast<int64_t>(kStageEntryBytes);
  ++stats_.insertions;
  EvictIfNeededLocked();
}

void StageCostCache::EvictIfNeededLocked() {
  while (items_.size() > 1 &&
         stats_.bytes > static_cast<int64_t>(max_bytes_)) {
    Item& victim = items_.back();
    if (victim.hot) {
      // Second chance: recently-hit entries rotate to the front unmarked, so
      // a full sweep always reaches a cold entry and the loop terminates.
      victim.hot = false;
      items_.splice(items_.begin(), items_, std::prev(items_.end()));
      continue;
    }
    index_.erase(victim.key);
    items_.pop_back();
    stats_.bytes -= static_cast<int64_t>(kStageEntryBytes);
    ++stats_.evictions;
  }
}

void StageCostCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.evictions += static_cast<int64_t>(items_.size());
  stats_.bytes = 0;
  items_.clear();
  index_.clear();
}

StageCostCache::Stats StageCostCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t StageCostCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace dynapipe::cost
