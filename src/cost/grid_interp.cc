#include "src/cost/grid_interp.h"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <ostream>

#include "src/common/check.h"

namespace dynapipe::cost {
namespace {

// Segment index (clamped) and interpolation fraction for v on the grid; fraction may
// fall outside [0, 1] for extrapolating queries. Degenerate axes pin to (0, 0).
void Locate(const std::vector<double>& grid, double v, size_t& k, double& frac) {
  if (grid.size() == 1) {
    k = 0;
    frac = 0.0;
    return;
  }
  size_t idx =
      static_cast<size_t>(std::upper_bound(grid.begin(), grid.end(), v) - grid.begin());
  idx = std::clamp<size_t>(idx, 1, grid.size() - 1) - 1;
  k = idx;
  frac = (v - grid[k]) / (grid[k + 1] - grid[k]);
}

void CheckAxis(const std::vector<double>& axis) {
  DYNAPIPE_CHECK(!axis.empty());
  for (size_t i = 1; i < axis.size(); ++i) {
    DYNAPIPE_CHECK_MSG(axis[i] > axis[i - 1], "grid axis must be strictly increasing");
  }
}

}  // namespace

GridInterp3D::GridInterp3D(std::vector<double> xs, std::vector<double> ys,
                           std::vector<double> zs,
                           std::vector<std::vector<std::vector<double>>> values)
    : xs_(std::move(xs)), ys_(std::move(ys)), zs_(std::move(zs)),
      values_(std::move(values)) {
  CheckAxis(xs_);
  CheckAxis(ys_);
  CheckAxis(zs_);
  DYNAPIPE_CHECK(values_.size() == xs_.size());
  for (const auto& plane : values_) {
    DYNAPIPE_CHECK(plane.size() == ys_.size());
    for (const auto& row : plane) {
      DYNAPIPE_CHECK(row.size() == zs_.size());
    }
  }
}

void GridInterp3D::Save(std::ostream& os) const {
  os << std::setprecision(17);
  auto save_axis = [&](const std::vector<double>& axis) {
    os << axis.size();
    for (const double v : axis) {
      os << " " << v;
    }
    os << "\n";
  };
  save_axis(xs_);
  save_axis(ys_);
  save_axis(zs_);
  for (const auto& plane : values_) {
    for (const auto& row : plane) {
      for (const double v : row) {
        os << v << " ";
      }
    }
  }
  os << "\n";
}

GridInterp3D GridInterp3D::Load(std::istream& is) {
  auto load_axis = [&]() {
    size_t n = 0;
    DYNAPIPE_CHECK_MSG(static_cast<bool>(is >> n), "malformed profile: axis size");
    DYNAPIPE_CHECK_MSG(n >= 1 && n < 1'000'000, "malformed profile: axis bounds");
    std::vector<double> axis(n);
    for (auto& v : axis) {
      DYNAPIPE_CHECK_MSG(static_cast<bool>(is >> v), "malformed profile: axis value");
    }
    return axis;
  };
  std::vector<double> xs = load_axis();
  std::vector<double> ys = load_axis();
  std::vector<double> zs = load_axis();
  std::vector<std::vector<std::vector<double>>> values(
      xs.size(), std::vector<std::vector<double>>(ys.size(),
                                                  std::vector<double>(zs.size())));
  for (auto& plane : values) {
    for (auto& row : plane) {
      for (auto& v : row) {
        DYNAPIPE_CHECK_MSG(static_cast<bool>(is >> v), "malformed profile: value");
      }
    }
  }
  return GridInterp3D(std::move(xs), std::move(ys), std::move(zs), std::move(values));
}

double GridInterp3D::operator()(double x, double y, double z) const {
  DYNAPIPE_CHECK_MSG(!empty(), "querying an empty grid");
  size_t i;
  size_t j;
  size_t k;
  double tx;
  double ty;
  double tz;
  Locate(xs_, x, i, tx);
  Locate(ys_, y, j, ty);
  Locate(zs_, z, k, tz);
  const size_t i1 = xs_.size() == 1 ? i : i + 1;
  const size_t j1 = ys_.size() == 1 ? j : j + 1;
  const size_t k1 = zs_.size() == 1 ? k : k + 1;
  auto lerp = [](double a, double b, double t) { return a + t * (b - a); };
  const double c00 = lerp(values_[i][j][k], values_[i1][j][k], tx);
  const double c01 = lerp(values_[i][j][k1], values_[i1][j][k1], tx);
  const double c10 = lerp(values_[i][j1][k], values_[i1][j1][k], tx);
  const double c11 = lerp(values_[i][j1][k1], values_[i1][j1][k1], tx);
  const double c0 = lerp(c00, c10, ty);
  const double c1 = lerp(c01, c11, ty);
  return lerp(c0, c1, tz);
}

}  // namespace dynapipe::cost
