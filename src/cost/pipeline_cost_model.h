// Whole-pipeline cost model: one profiled StageCostModel per pipeline stage, plus
// the quantities the planner knows exactly without profiling — tensor shapes at
// stage boundaries, parameter/optimizer memory, and the interconnect model.
//
// t(M) in Eq. 1 is taken at the bottleneck stage (max over stages of fwd+bwd),
// which both bounds the per-stage time and matches the paper's "execution time of
// all micro-batches on the last stage" term when stages are balanced.
#ifndef DYNAPIPE_SRC_COST_PIPELINE_COST_MODEL_H_
#define DYNAPIPE_SRC_COST_PIPELINE_COST_MODEL_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/cost/stage_cost_model.h"
#include "src/model/hardware_spec.h"
#include "src/model/model_config.h"
#include "src/model/shapes.h"
#include "src/model/stage_partition.h"
#include "src/model/stage_perf_model.h"

namespace dynapipe::cost {

class PipelineCostModel {
 public:
  // Profiles every stage of (config, parallel) on hw. The ground-truth stage models
  // are sampled only at grid points.
  static PipelineCostModel Profile(const model::ModelConfig& config,
                                   const model::HardwareSpec& hw,
                                   const model::ParallelConfig& parallel,
                                   const ProfileOptions& options);

  // Persist the profiled tables so repeated runs skip profiling (the paper's
  // artifact caches profiles the same way). Load rebuilds the exact-math parts
  // from (config, hw, parallel) and restores the tables; the caller must pass the
  // same triple the profile was taken with.
  void SaveProfile(std::ostream& os) const;
  static PipelineCostModel LoadProfile(const model::ModelConfig& config,
                                       const model::HardwareSpec& hw,
                                       const model::ParallelConfig& parallel,
                                       std::istream& is);

  int32_t num_stages() const { return static_cast<int32_t>(stages_.size()); }
  const StageCostModel& stage(int32_t s) const;

  // --- Profiled (interpolated) quantities ---
  double StageFwdMs(int32_t s, const model::MicroBatchShape& shape) const;
  double StageBwdMs(int32_t s, const model::MicroBatchShape& shape,
                    model::RecomputeMode mode) const;
  double StageActivationMb(int32_t s, const model::MicroBatchShape& shape,
                           model::RecomputeMode mode) const;
  // Bottleneck-stage fwd+bwd time — Eq. 1's t(M).
  double MicroBatchTimeMs(const model::MicroBatchShape& shape,
                          model::RecomputeMode mode) const;
  // Max over stages of activation memory (the constraint the DP enforces).
  double MaxActivationMb(const model::MicroBatchShape& shape,
                         model::RecomputeMode mode) const;

  // --- Exact quantities ---
  // Static memory (weights + grads + ZeRO-1 optimizer shard) on stage s.
  double StaticMemoryMb(int32_t s) const;
  // Activation-memory budget shared by all stages: usable device memory minus the
  // worst stage's static footprint.
  double ActivationBudgetMb() const;
  // Bytes stage s sends to stage s+1 for one micro-batch (activations; gradients
  // flow back with the same volume).
  int64_t BoundaryBytes(int32_t s, const model::MicroBatchShape& shape) const;
  // P2P transfer duration between adjacent stages (intra- vs inter-node is derived
  // from the stage→GPU placement implied by (tp, gpus_per_node)).
  double TransferMs(int32_t from_stage, int32_t to_stage, int64_t bytes) const;
  // Per-iteration data-parallel gradient allreduce (max across stages).
  double DpGradSyncMs() const;

  const model::ParallelConfig& parallel() const { return parallel_; }
  const model::HardwareSpec& hw() const { return hw_; }
  const model::ModelConfig& config() const { return config_; }

 private:
  model::ModelConfig config_;
  model::HardwareSpec hw_;
  model::ParallelConfig parallel_;
  std::vector<StageCostModel> stages_;
  // Kept for the exact (non-profiled) shape and memory math only.
  std::vector<model::StagePerfModel> truth_;
};

}  // namespace dynapipe::cost

#endif  // DYNAPIPE_SRC_COST_PIPELINE_COST_MODEL_H_
