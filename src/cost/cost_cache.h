// Shape-memoized cost oracle.
//
// The DP partitioner issues O(N * max window width) cost queries per t_max
// sweep, but on a length-ordered mini-batch the padded window shapes
// (num_samples, input_len, target_len) repeat heavily: runs of equal-length
// samples make consecutive windows collapse to the same shape, the same shapes
// recur across t_max candidates and recompute-mode re-plans, and consecutive
// iterations re-draw similar length mixes. CachedCostOracle memoizes
// PipelineCostModel::MicroBatchTimeMs / MaxActivationMb per (shape, recompute
// mode) so each distinct shape pays the per-stage interpolation walk exactly
// once.
//
// Storage is a fixed-capacity open-addressed table with write-once slots:
// reads are lock-free (one atomic key load + contiguous value read), writes
// claim an empty slot with a CAS after publishing the value, so concurrent
// t_max DPs / recompute modes / planner threads (§3's "planning on spare CPU
// cores", Fig. 17) share one cache without any mutex. Racing misses on the
// same key derive the same deterministic value, so cached reads are
// bit-identical to uncached ones regardless of thread interleaving. When the
// table fills (or a probe run is exhausted), further fresh shapes are simply
// computed uncached — correctness never depends on capacity.
#ifndef DYNAPIPE_SRC_COST_COST_CACHE_H_
#define DYNAPIPE_SRC_COST_COST_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/cost/pipeline_cost_model.h"
#include "src/model/shapes.h"

namespace dynapipe::cost {

// Cumulative hit/miss counters. A "query" is one TimeMs, ActivationMb, or
// Query call; a miss fills both values for the key, so the second call on a
// fresh shape is already a hit.
struct CostCacheCounters {
  int64_t hits = 0;
  int64_t misses = 0;

  double hit_rate() const {
    const int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class CachedCostOracle {
 public:
  // Both values for one key; a miss fills both at once.
  struct Entry {
    double time_ms = 0.0;
    double act_mb = 0.0;
  };

  // `capacity` (rounded up to a power of two) bounds distinct cached keys. The
  // default's ~6 MB table holds the cross-iteration shape reuse of large-batch
  // epochs (the main hit-rate source) while staying LLC-resident on server
  // parts; much larger tables turn cold misses into DRAM round-trips that cost
  // more than the interpolation walk they front. When the table fills, fresh
  // shapes are computed uncached, and a full table whose lifetime hit rate
  // stays under 10% switches to a probe-free bypass.
  explicit CachedCostOracle(const PipelineCostModel& cm,
                            size_t capacity = size_t{1} << 18);

  CachedCostOracle(const CachedCostOracle&) = delete;
  CachedCostOracle& operator=(const CachedCostOracle&) = delete;

  // Memoized PipelineCostModel::MicroBatchTimeMs (bottleneck-stage fwd+bwd).
  double TimeMs(const model::MicroBatchShape& shape,
                model::RecomputeMode mode) const;
  // Memoized PipelineCostModel::MaxActivationMb (worst stage's activations).
  double ActivationMb(const model::MicroBatchShape& shape,
                      model::RecomputeMode mode) const;
  // Underlying lookup. When `act_limit` > 0 and the activation footprint
  // exceeds it, time is not computed (entry.time_ms is NaN) — mirroring the
  // uncached DP precompute, which never prices windows that already broke the
  // memory cap; a later query of the same key that does need time upgrades the
  // entry in place. When `hit` is non-null it reports whether this query was
  // served from the cache — callers that need exact per-caller counters (the
  // planner's per-recompute-mode adapters run concurrently, so deltas of the
  // global counters would cross-attribute) tally these flags themselves.
  Entry Query(const model::MicroBatchShape& shape, model::RecomputeMode mode,
              bool* hit = nullptr, double act_limit = 0.0) const;

  CostCacheCounters counters() const;
  // Number of distinct (shape, mode) keys currently cached.
  size_t size() const { return entries_.load(std::memory_order_relaxed); }
  size_t capacity() const { return mask_ + 1; }

  const PipelineCostModel& cost_model() const { return cm_; }

 private:
  struct Slot {
    // 0 = empty (real keys are never 0: num_samples >= 1). Published with
    // release after the value fields are written; read with acquire.
    std::atomic<uint64_t> key{0};
    double act_mb = 0.0;
    // NaN until computed (lazy: over-limit windows are never priced unless a
    // later caller asks). Atomic so the in-place upgrade after publication
    // cannot tear; racing upgrades store the same deterministic value.
    std::atomic<double> time_ms{0.0};
  };

  static uint64_t Key(const model::MicroBatchShape& shape,
                      model::RecomputeMode mode);

  const PipelineCostModel& cm_;
  size_t mask_;  // capacity - 1, capacity a power of two
  // Inserts stop at ~3/4 load: past that, linear-probe runs grow sharply and a
  // saturated table would make every miss scan (and fault in) long slot runs —
  // costing more than the interpolation walk the cache exists to avoid.
  size_t insert_cap_;
  std::unique_ptr<Slot[]> slots_;
  mutable std::atomic<size_t> entries_{0};
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  // Adaptive-bypass state (see Query): windowed hit-rate tracking decides
  // whether probing currently earns its cost.
  mutable std::atomic<int32_t> bypassed_{0};
  mutable std::atomic<int64_t> window_start_total_{0};
  mutable std::atomic<int64_t> window_start_hits_{0};
};

// Cross-iteration per-stage sub-plan memo (ISSUE 9 level 2). The schedule
// phase prices every distinct micro-batch shape per stage
// (StageFwdMs/StageBwdMs/StageActivationMb — three profile-interpolation
// walks each); CachedCostOracle only covers the *bottleneck-stage aggregate*
// the DP asks for, so these per-stage sub-results were rebuilt for every
// plan. Shapes recur heavily across iterations (sorted near-identical
// batches cut into similar runs), so a small LRU keyed by (context, stage,
// shape, mode) absorbs them. Values are deterministic per key — the profile
// tables are immutable after load — so cached reads are bit-identical to
// uncached ones; `context` must fingerprint the cost model (the planner
// folds config + parallelism + a probe query) so distinct models never
// share entries.
//
// Unlike CachedCostOracle's lock-free table this sits on the schedule phase
// (O(stages x distinct shapes) queries per plan, not the DP's O(n * W)), so
// a plain mutex + LRU list is cheap, byte-bounded, and TSan-clean.
class StageCostCache {
 public:
  struct Entry {
    double fwd_ms = 0.0;
    double bwd_ms = 0.0;
    double act_mb = 0.0;
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
    int64_t bytes = 0;
  };

  StageCostCache();
  explicit StageCostCache(size_t max_bytes);

  // Hits mark the entry recently-used without touching the LRU list: the
  // lookup sits on the planner's schedule hot path, and a per-hit list
  // splice costs more than the grid interpolation the cache saves. Eviction
  // runs CLOCK-style second chance over the list instead (marked entries
  // rotate to the front and survive one sweep). Shapes too large for the
  // packed key (lengths >= 2^20) are never cached; Lookup just misses.
  bool Lookup(uint64_t context, int32_t stage,
              const model::MicroBatchShape& shape, model::RecomputeMode mode,
              Entry* out);
  void Insert(uint64_t context, int32_t stage,
              const model::MicroBatchShape& shape, model::RecomputeMode mode,
              const Entry& entry);
  // Drops everything (explicit cost-model reset).
  void Invalidate();

  Stats stats() const;
  size_t size() const;

 private:
  struct Key {
    uint64_t context = 0;
    uint64_t packed = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Item {
    Key key;
    Entry entry;
    // Recently-hit marker for second-chance eviction; cleared when the
    // evictor rescues the entry.
    bool hot = false;
  };
  using ItemList = std::list<Item>;

  // false when the shape cannot be packed collision-free.
  static bool PackKey(uint64_t context, int32_t stage,
                      const model::MicroBatchShape& shape,
                      model::RecomputeMode mode, Key* key);
  void EvictIfNeededLocked();

  size_t max_bytes_;
  mutable std::mutex mu_;
  ItemList items_;  // front = most recently used
  std::unordered_map<Key, ItemList::iterator, KeyHash> index_;
  Stats stats_;
};

}  // namespace dynapipe::cost

#endif  // DYNAPIPE_SRC_COST_COST_CACHE_H_
