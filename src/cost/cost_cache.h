// Shape-memoized cost oracle.
//
// The DP partitioner issues O(N * max window width) cost queries per t_max
// sweep, but on a length-ordered mini-batch the padded window shapes
// (num_samples, input_len, target_len) repeat heavily: runs of equal-length
// samples make consecutive windows collapse to the same shape, the same shapes
// recur across t_max candidates and recompute-mode re-plans, and consecutive
// iterations re-draw similar length mixes. CachedCostOracle memoizes
// PipelineCostModel::MicroBatchTimeMs / MaxActivationMb per (shape, recompute
// mode) so each distinct shape pays the per-stage interpolation walk exactly
// once.
//
// Storage is a fixed-capacity open-addressed table with write-once slots:
// reads are lock-free (one atomic key load + contiguous value read), writes
// claim an empty slot with a CAS after publishing the value, so concurrent
// t_max DPs / recompute modes / planner threads (§3's "planning on spare CPU
// cores", Fig. 17) share one cache without any mutex. Racing misses on the
// same key derive the same deterministic value, so cached reads are
// bit-identical to uncached ones regardless of thread interleaving. When the
// table fills (or a probe run is exhausted), further fresh shapes are simply
// computed uncached — correctness never depends on capacity.
#ifndef DYNAPIPE_SRC_COST_COST_CACHE_H_
#define DYNAPIPE_SRC_COST_COST_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/cost/pipeline_cost_model.h"
#include "src/model/shapes.h"

namespace dynapipe::cost {

// Cumulative hit/miss counters. A "query" is one TimeMs, ActivationMb, or
// Query call; a miss fills both values for the key, so the second call on a
// fresh shape is already a hit.
struct CostCacheCounters {
  int64_t hits = 0;
  int64_t misses = 0;

  double hit_rate() const {
    const int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class CachedCostOracle {
 public:
  // Both values for one key; a miss fills both at once.
  struct Entry {
    double time_ms = 0.0;
    double act_mb = 0.0;
  };

  // `capacity` (rounded up to a power of two) bounds distinct cached keys. The
  // default's ~6 MB table holds the cross-iteration shape reuse of large-batch
  // epochs (the main hit-rate source) while staying LLC-resident on server
  // parts; much larger tables turn cold misses into DRAM round-trips that cost
  // more than the interpolation walk they front. When the table fills, fresh
  // shapes are computed uncached, and a full table whose lifetime hit rate
  // stays under 10% switches to a probe-free bypass.
  explicit CachedCostOracle(const PipelineCostModel& cm,
                            size_t capacity = size_t{1} << 18);

  CachedCostOracle(const CachedCostOracle&) = delete;
  CachedCostOracle& operator=(const CachedCostOracle&) = delete;

  // Memoized PipelineCostModel::MicroBatchTimeMs (bottleneck-stage fwd+bwd).
  double TimeMs(const model::MicroBatchShape& shape,
                model::RecomputeMode mode) const;
  // Memoized PipelineCostModel::MaxActivationMb (worst stage's activations).
  double ActivationMb(const model::MicroBatchShape& shape,
                      model::RecomputeMode mode) const;
  // Underlying lookup. When `act_limit` > 0 and the activation footprint
  // exceeds it, time is not computed (entry.time_ms is NaN) — mirroring the
  // uncached DP precompute, which never prices windows that already broke the
  // memory cap; a later query of the same key that does need time upgrades the
  // entry in place. When `hit` is non-null it reports whether this query was
  // served from the cache — callers that need exact per-caller counters (the
  // planner's per-recompute-mode adapters run concurrently, so deltas of the
  // global counters would cross-attribute) tally these flags themselves.
  Entry Query(const model::MicroBatchShape& shape, model::RecomputeMode mode,
              bool* hit = nullptr, double act_limit = 0.0) const;

  CostCacheCounters counters() const;
  // Number of distinct (shape, mode) keys currently cached.
  size_t size() const { return entries_.load(std::memory_order_relaxed); }
  size_t capacity() const { return mask_ + 1; }

  const PipelineCostModel& cost_model() const { return cm_; }

 private:
  struct Slot {
    // 0 = empty (real keys are never 0: num_samples >= 1). Published with
    // release after the value fields are written; read with acquire.
    std::atomic<uint64_t> key{0};
    double act_mb = 0.0;
    // NaN until computed (lazy: over-limit windows are never priced unless a
    // later caller asks). Atomic so the in-place upgrade after publication
    // cannot tear; racing upgrades store the same deterministic value.
    std::atomic<double> time_ms{0.0};
  };

  static uint64_t Key(const model::MicroBatchShape& shape,
                      model::RecomputeMode mode);

  const PipelineCostModel& cm_;
  size_t mask_;  // capacity - 1, capacity a power of two
  // Inserts stop at ~3/4 load: past that, linear-probe runs grow sharply and a
  // saturated table would make every miss scan (and fault in) long slot runs —
  // costing more than the interpolation walk the cache exists to avoid.
  size_t insert_cap_;
  std::unique_ptr<Slot[]> slots_;
  mutable std::atomic<size_t> entries_{0};
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  // Adaptive-bypass state (see Query): windowed hit-rate tracking decides
  // whether probing currently earns its cost.
  mutable std::atomic<int32_t> bypassed_{0};
  mutable std::atomic<int64_t> window_start_total_{0};
  mutable std::atomic<int64_t> window_start_hits_{0};
};

}  // namespace dynapipe::cost

#endif  // DYNAPIPE_SRC_COST_COST_CACHE_H_
