// Per-stage cost model built by profiling.
//
// Mirrors the paper's cost-model construction (§3): run forward/backward "profiling"
// at power-of-two micro-batch sizes and sequence lengths, record execution time and
// activation memory per recomputation scheme, and bridge gaps with linear
// interpolation. The planner only ever sees these interpolated tables — never the
// analytic ground truth — so its estimates carry realistic interpolation error
// (quantified in the Fig. 18 bench).
#ifndef DYNAPIPE_SRC_COST_STAGE_COST_MODEL_H_
#define DYNAPIPE_SRC_COST_STAGE_COST_MODEL_H_

#include <array>
#include <cstdint>
#include <iosfwd>

#include "src/cost/grid_interp.h"
#include "src/model/shapes.h"
#include "src/model/stage_perf_model.h"

namespace dynapipe::cost {

struct ProfileOptions {
  int32_t max_microbatch_size = 128;
  int32_t min_seq_len = 32;
  int32_t max_seq_len = 16'384;
  // Profile the decoder (target) axis too; pass false for decoder-only models whose
  // samples carry no target sequence.
  bool profile_target_axis = true;
};

class StageCostModel {
 public:
  StageCostModel() = default;

  // Profiles `truth` on the power-of-two grid. The ground truth is only sampled at
  // the grid points, exactly like profiling real kernels.
  static StageCostModel Profile(const model::StagePerfModel& truth,
                                const ProfileOptions& options);

  double FwdMs(const model::MicroBatchShape& shape) const;
  double BwdMs(const model::MicroBatchShape& shape, model::RecomputeMode mode) const;
  double FwdBwdMs(const model::MicroBatchShape& shape,
                  model::RecomputeMode mode) const;
  double ActivationMb(const model::MicroBatchShape& shape,
                      model::RecomputeMode mode) const;

  // Profiles are expensive to gather on real hardware, so the artifact caches
  // them across runs; Save/Load round-trips all tables in plain text.
  void Save(std::ostream& os) const;
  static StageCostModel Load(std::istream& is);

 private:
  static constexpr size_t kNumModes = 3;

  static size_t ModeIndex(model::RecomputeMode mode);

  GridInterp3D fwd_ms_;
  std::array<GridInterp3D, kNumModes> bwd_ms_;
  std::array<GridInterp3D, kNumModes> activation_mb_;
};

}  // namespace dynapipe::cost

#endif  // DYNAPIPE_SRC_COST_STAGE_COST_MODEL_H_
