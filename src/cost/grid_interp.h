// Trilinear interpolation over a (micro-batch size, input length, target length)
// profiling grid. Any axis may have a single grid point, in which case the function
// is constant along it (used for GPT, whose target axis is degenerate). Queries
// outside the grid extrapolate linearly from the edge cell, mirroring how a profiled
// table behaves beyond its sampled range.
#ifndef DYNAPIPE_SRC_COST_GRID_INTERP_H_
#define DYNAPIPE_SRC_COST_GRID_INTERP_H_

#include <iosfwd>
#include <vector>

namespace dynapipe::cost {

class GridInterp3D {
 public:
  GridInterp3D() = default;
  // values indexed [i][j][k] for (xs[i], ys[j], zs[k]); each axis strictly
  // increasing and non-empty.
  GridInterp3D(std::vector<double> xs, std::vector<double> ys, std::vector<double> zs,
               std::vector<std::vector<std::vector<double>>> values);

  double operator()(double x, double y, double z) const;

  bool empty() const { return values_.empty(); }

  // Plain-text (de)serialization; Load aborts on malformed input.
  void Save(std::ostream& os) const;
  static GridInterp3D Load(std::istream& is);

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> zs_;
  std::vector<std::vector<std::vector<double>>> values_;
};

}  // namespace dynapipe::cost

#endif  // DYNAPIPE_SRC_COST_GRID_INTERP_H_
