#include "src/cost/stage_cost_model.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"

namespace dynapipe::cost {
namespace {

std::vector<double> PowerOfTwoGrid(int32_t lo, int32_t hi) {
  std::vector<double> grid;
  for (int64_t v = lo; v <= hi; v *= 2) {
    grid.push_back(static_cast<double>(v));
  }
  DYNAPIPE_CHECK(grid.size() >= 2);
  return grid;
}

constexpr model::RecomputeMode kModes[] = {model::RecomputeMode::kNone,
                                           model::RecomputeMode::kSelective,
                                           model::RecomputeMode::kFull};

}  // namespace

size_t StageCostModel::ModeIndex(model::RecomputeMode mode) {
  return static_cast<size_t>(mode);
}

StageCostModel StageCostModel::Profile(const model::StagePerfModel& truth,
                                       const ProfileOptions& options) {
  DYNAPIPE_CHECK(options.max_microbatch_size >= 2);
  DYNAPIPE_CHECK(options.min_seq_len >= 1);
  DYNAPIPE_CHECK(options.max_seq_len > options.min_seq_len);

  const std::vector<double> mbs_grid = PowerOfTwoGrid(1, options.max_microbatch_size);
  const std::vector<double> input_grid =
      PowerOfTwoGrid(options.min_seq_len, options.max_seq_len);
  const std::vector<double> target_grid =
      options.profile_target_axis
          ? PowerOfTwoGrid(options.min_seq_len, options.max_seq_len)
          : std::vector<double>{0.0};

  auto make_table = [&](auto&& sample) {
    std::vector<std::vector<std::vector<double>>> values(mbs_grid.size());
    for (size_t i = 0; i < mbs_grid.size(); ++i) {
      values[i].resize(input_grid.size());
      for (size_t j = 0; j < input_grid.size(); ++j) {
        values[i][j].resize(target_grid.size());
        for (size_t k = 0; k < target_grid.size(); ++k) {
          model::MicroBatchShape shape;
          shape.num_samples = static_cast<int32_t>(mbs_grid[i]);
          shape.input_len = static_cast<int32_t>(input_grid[j]);
          shape.target_len = static_cast<int32_t>(target_grid[k]);
          values[i][j][k] = sample(shape);
        }
      }
    }
    return GridInterp3D(mbs_grid, input_grid, target_grid, std::move(values));
  };

  StageCostModel cm;
  cm.fwd_ms_ = make_table([&](const model::MicroBatchShape& s) { return truth.FwdMs(s); });
  for (const auto mode : kModes) {
    cm.bwd_ms_[ModeIndex(mode)] = make_table(
        [&](const model::MicroBatchShape& s) { return truth.BwdMs(s, mode); });
    cm.activation_mb_[ModeIndex(mode)] = make_table(
        [&](const model::MicroBatchShape& s) { return truth.ActivationMb(s, mode); });
  }
  return cm;
}

void StageCostModel::Save(std::ostream& os) const {
  fwd_ms_.Save(os);
  for (const auto& table : bwd_ms_) {
    table.Save(os);
  }
  for (const auto& table : activation_mb_) {
    table.Save(os);
  }
}

StageCostModel StageCostModel::Load(std::istream& is) {
  StageCostModel cm;
  cm.fwd_ms_ = GridInterp3D::Load(is);
  for (auto& table : cm.bwd_ms_) {
    table = GridInterp3D::Load(is);
  }
  for (auto& table : cm.activation_mb_) {
    table = GridInterp3D::Load(is);
  }
  return cm;
}

double StageCostModel::FwdMs(const model::MicroBatchShape& shape) const {
  // Clamp at a microsecond: edge extrapolation on the profiled grid can undershoot
  // for tiny shapes, and the planner must never see a non-positive duration.
  return std::max(0.001, fwd_ms_(shape.num_samples, shape.input_len, shape.target_len));
}

double StageCostModel::BwdMs(const model::MicroBatchShape& shape,
                             model::RecomputeMode mode) const {
  return std::max(0.001, bwd_ms_[ModeIndex(mode)](shape.num_samples, shape.input_len,
                                                  shape.target_len));
}

double StageCostModel::FwdBwdMs(const model::MicroBatchShape& shape,
                                model::RecomputeMode mode) const {
  return FwdMs(shape) + BwdMs(shape, mode);
}

double StageCostModel::ActivationMb(const model::MicroBatchShape& shape,
                                    model::RecomputeMode mode) const {
  return std::max(0.0, activation_mb_[ModeIndex(mode)](
                           shape.num_samples, shape.input_len, shape.target_len));
}

}  // namespace dynapipe::cost
