#include "src/baselines/batchers.h"

#include <algorithm>

#include "src/common/check.h"

namespace dynapipe::baselines {
namespace {

std::vector<mb::MicroBatch> ChunkBySize(const std::vector<data::Sample>& samples,
                                        int32_t microbatch_size) {
  DYNAPIPE_CHECK(microbatch_size >= 1);
  std::vector<mb::MicroBatch> out;
  for (size_t start = 0; start < samples.size();
       start += static_cast<size_t>(microbatch_size)) {
    const size_t end =
        std::min(samples.size(), start + static_cast<size_t>(microbatch_size));
    out.push_back(mb::MakeMicroBatch(std::vector<data::Sample>(
        samples.begin() + static_cast<ptrdiff_t>(start),
        samples.begin() + static_cast<ptrdiff_t>(end))));
  }
  return out;
}

}  // namespace

std::vector<mb::MicroBatch> NaivePaddingMicroBatches(
    const std::vector<data::Sample>& samples, int32_t microbatch_size) {
  return ChunkBySize(samples, microbatch_size);
}

std::vector<mb::MicroBatch> FixedSizeMicroBatches(
    const std::vector<data::Sample>& ordered, int32_t microbatch_size) {
  return ChunkBySize(ordered, microbatch_size);
}

std::vector<mb::MicroBatch> TokenBasedMicroBatches(
    const std::vector<data::Sample>& ordered, int64_t tokens_per_microbatch) {
  DYNAPIPE_CHECK(tokens_per_microbatch >= 1);
  std::vector<mb::MicroBatch> out;
  std::vector<data::Sample> cur;
  int32_t max_input = 0;
  int32_t max_target = 0;
  for (const auto& s : ordered) {
    const int32_t next_input = std::max(max_input, s.input_len);
    const int32_t next_target = std::max(max_target, s.target_len);
    const int64_t padded = static_cast<int64_t>(cur.size() + 1) *
                           (int64_t{next_input} + int64_t{next_target});
    if (!cur.empty() && padded > tokens_per_microbatch) {
      out.push_back(mb::MakeMicroBatch(std::move(cur)));
      cur.clear();
      max_input = 0;
      max_target = 0;
    }
    max_input = std::max(max_input, s.input_len);
    max_target = std::max(max_target, s.target_len);
    cur.push_back(s);
  }
  if (!cur.empty()) {
    out.push_back(mb::MakeMicroBatch(std::move(cur)));
  }
  return out;
}

}  // namespace dynapipe::baselines
