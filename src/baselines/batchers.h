// Alternative micro-batching baselines the paper compares against (§2.3, Fig. 5 and
// the Fig. 16a ablation):
//
//  - NaivePaddingMicroBatches: fixed micro-batch size over *unsorted* samples, every
//    sample padded to the micro-batch maximum (the ">80% padding" strawman).
//  - FixedSizeMicroBatches: fixed micro-batch size over ordered samples.
//  - TokenBasedMicroBatches: split ordered samples so each micro-batch holds roughly
//    the same number of (padded) tokens — fewer samples at longer lengths.
#ifndef DYNAPIPE_SRC_BASELINES_BATCHERS_H_
#define DYNAPIPE_SRC_BASELINES_BATCHERS_H_

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/mb/micro_batch.h"

namespace dynapipe::baselines {

std::vector<mb::MicroBatch> NaivePaddingMicroBatches(
    const std::vector<data::Sample>& samples, int32_t microbatch_size);

// `ordered` is expected in planning order (e.g. mb::OrderSamples output).
std::vector<mb::MicroBatch> FixedSizeMicroBatches(
    const std::vector<data::Sample>& ordered, int32_t microbatch_size);

// Each micro-batch closes once its padded token count (samples-so-far times the
// running max lengths) reaches `tokens_per_microbatch`.
std::vector<mb::MicroBatch> TokenBasedMicroBatches(
    const std::vector<data::Sample>& ordered, int64_t tokens_per_microbatch);

}  // namespace dynapipe::baselines

#endif  // DYNAPIPE_SRC_BASELINES_BATCHERS_H_
