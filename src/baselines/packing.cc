#include "src/baselines/packing.h"

#include <algorithm>

#include "src/common/check.h"

namespace dynapipe::baselines {

std::vector<PackedBin> PackSamples(const std::vector<data::Sample>& samples,
                                   const PackingOptions& options) {
  DYNAPIPE_CHECK(options.max_input_len >= 1);
  const int32_t max_target = options.max_target_len > 0
                                 ? options.max_target_len
                                 : std::max(1, options.max_input_len / 4);

  std::vector<data::Sample> work;
  work.reserve(samples.size());
  for (const auto& s : samples) {
    work.push_back(data::Truncate(s, options.max_input_len,
                                  s.target_len > 0 ? max_target : 0));
  }
  if (options.sort_before_packing) {
    std::sort(work.begin(), work.end(),
              [](const data::Sample& a, const data::Sample& b) {
                return a.total_tokens() > b.total_tokens();
              });
  }

  std::vector<PackedBin> bins;
  for (const auto& s : work) {
    bool placed = false;
    for (auto& bin : bins) {  // first fit
      const bool input_fits = bin.input_fill + s.input_len <= options.max_input_len;
      const bool target_fits =
          s.target_len == 0 || bin.target_fill + s.target_len <= max_target;
      if (input_fits && target_fits) {
        bin.members.push_back(s);
        bin.input_fill += s.input_len;
        bin.target_fill += s.target_len;
        placed = true;
        break;
      }
    }
    if (!placed) {
      PackedBin bin;
      bin.members.push_back(s);
      bin.input_fill = s.input_len;
      bin.target_fill = s.target_len;
      bins.push_back(std::move(bin));
    }
  }
  return bins;
}

std::vector<mb::MicroBatch> PackedMicroBatches(const std::vector<PackedBin>& bins,
                                               int32_t microbatch_size,
                                               int32_t max_input_len,
                                               int32_t max_target_len) {
  DYNAPIPE_CHECK(microbatch_size >= 1);
  DYNAPIPE_CHECK(max_input_len >= 1);
  std::vector<mb::MicroBatch> out;
  for (size_t start = 0; start < bins.size();
       start += static_cast<size_t>(microbatch_size)) {
    const size_t end =
        std::min(bins.size(), start + static_cast<size_t>(microbatch_size));
    std::vector<data::Sample> packed;
    bool any_target = false;
    for (size_t b = start; b < end; ++b) {
      data::Sample seq;
      seq.id = static_cast<uint64_t>(b);
      seq.task_id = -1;  // packed sequences span tasks
      seq.input_len = bins[b].input_fill;
      seq.target_len = bins[b].target_fill;
      any_target = any_target || seq.target_len > 0;
      packed.push_back(seq);
    }
    mb::MicroBatch m = mb::MakeMicroBatch(std::move(packed));
    // Static packed dataloaders emit fixed-shape tensors regardless of fill.
    m.shape.input_len = max_input_len;
    m.shape.target_len = any_target ? max_target_len : 0;
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace dynapipe::baselines
