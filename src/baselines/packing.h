// Packing baseline (the MLM+DS approach of §2.2 / §8).
//
// Short samples are concatenated along the sequence dimension into bins whose
// length matches the configured maximum sequence length; samples longer than the
// maximum are truncated. For encoder–decoder models a bin packs both sequences
// (a sample fits if its input fits the remaining input capacity AND its target fits
// the remaining target capacity). Each bin becomes one packed "sample"; bins are
// then grouped into fixed-size micro-batches.
//
// Packing is padding-efficient but pays quadratic attention compute over the packed
// length — which the performance model charges naturally, reproducing Fig. 3/4's
// throughput gap. Cross-contamination masking (extra attention masks between packed
// samples) is a model-correctness concern, not a simulated-cost one, and is noted
// in DESIGN.md.
#ifndef DYNAPIPE_SRC_BASELINES_PACKING_H_
#define DYNAPIPE_SRC_BASELINES_PACKING_H_

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/mb/micro_batch.h"

namespace dynapipe::baselines {

struct PackingOptions {
  int32_t max_input_len = 2048;
  // <= 0 derives the target capacity from max_input_len / 4 (FLANv2 targets are much
  // shorter than inputs); ignored for decoder-only models (target_len == 0).
  int32_t max_target_len = 0;
  // First-fit over arrival order (preserves sampling randomness, like the
  // production dataloaders); true sorts by length first (first-fit decreasing).
  bool sort_before_packing = false;
};

struct PackedBin {
  std::vector<data::Sample> members;
  int32_t input_fill = 0;
  int32_t target_fill = 0;
};

// Packs (truncated) samples into bins.
std::vector<PackedBin> PackSamples(const std::vector<data::Sample>& samples,
                                   const PackingOptions& options);

// Converts bins into micro-batches of `microbatch_size` packed sequences each
// (the last micro-batch may be smaller). Every packed sequence is represented as
// one synthetic sample of length (input_fill, target_fill) so real-token
// accounting flows through, but the micro-batch *shape* is the fixed
// (max_input_len, max_target_len) the static packed dataloader emits — for T5 the
// input dimension saturates first, leaving the decoder dimension mostly padding
// (the paper's Fig. 15b). Pass max_target_len = 0 for decoder-only models.
std::vector<mb::MicroBatch> PackedMicroBatches(const std::vector<PackedBin>& bins,
                                               int32_t microbatch_size,
                                               int32_t max_input_len,
                                               int32_t max_target_len);

}  // namespace dynapipe::baselines

#endif  // DYNAPIPE_SRC_BASELINES_PACKING_H_
