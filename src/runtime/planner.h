// Per-iteration execution planning.
//
// IterationPlanner is DynaPipe's planner (§3 "Planners"): for one mini-batch it
// orders samples, partitions them into micro-batches with the DP algorithm,
// balances data-parallel replicas (Karmarkar–Karp), builds the memory-aware
// adaptive schedule with micro-batch reordering, lays out communication, and picks
// the cheapest feasible recomputation mode — emitting one ExecutionPlan per
// replica plus its own predictions of iteration time and peak memory (what Fig. 18
// scores against reality).
//
// PlanBaselineIteration is the MLM+DS-style path: packing (or another static
// batcher), uniform 1F1B, naive-but-fused communication, fixed recompute mode.
#ifndef DYNAPIPE_SRC_RUNTIME_PLANNER_H_
#define DYNAPIPE_SRC_RUNTIME_PLANNER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/baselines/batchers.h"
#include "src/baselines/packing.h"
#include "src/cost/cost_cache.h"
#include "src/cost/pipeline_cost_model.h"
#include "src/data/dataset.h"
#include "src/mb/dp_partitioner.h"
#include "src/mb/micro_batch.h"
#include "src/mb/ordering.h"
#include "src/schedule/executor_simulator.h"
#include "src/schedule/schedule_types.h"
#include "src/sim/instruction.h"

namespace dynapipe {
class ThreadPool;
}  // namespace dynapipe

namespace dynapipe::runtime {

// A warm-start hint for planning: the DP-order micro-batch widths of a
// previous solution for a *similar* batch (a near-miss PlanCache entry, a
// neighboring grid-search config). The partitioner revalidates the widths
// against its own window table and uses them only as a pruning upper bound,
// so seeds never change the plan — only how fast it is found.
struct PlanSeed {
  std::vector<int32_t> partition_widths;
};

// Cross-planner warm-start seeds for grid search (ISSUE 9 level 3): the DP
// widths of the best partition each (recompute mode, ordered batch) pair
// produced under *some* parallel config. Neighboring configs planning the
// same mini-batch sequence look the seed up and hand it to the partitioner
// as a candidate-pruning bound. Seeds are hints — always revalidated, never
// copied into a plan — so sharing across configs with different stage
// counts, budgets, or replica counts is bit-identity-safe by construction.
// Thread-safe; bounded (grid searches plan a handful of iterations per
// config, so the book stays tiny).
class WarmStartBook {
 public:
  std::optional<std::vector<int32_t>> Lookup(uint64_t key) const;
  void Update(uint64_t key, std::vector<int32_t> widths);

 private:
  static constexpr size_t kMaxEntries = 4096;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::vector<int32_t>> book_;
};

struct PlannerOptions {
  mb::OrderingMethod ordering = mb::OrderingMethod::kSortByLength;
  // Adaptive schedule + reordering are DynaPipe defaults; both can be disabled for
  // the Fig. 16b ablation (false/false is "1F1B over dynamic micro-batches").
  bool adaptive_schedule = true;
  bool reorder_microbatches = true;
  int32_t reorder_clusters = 3;
  // Dynamic recomputation (§7): try kNone → kSelective → kFull, keep the fastest
  // feasible. When false, only static_recompute is attempted.
  bool dynamic_recompute = true;
  model::RecomputeMode static_recompute = model::RecomputeMode::kNone;
  // DP algorithm knobs (see DpPartitionerOptions).
  double tmax_interval_ms = 0.05;
  int32_t max_tmax_candidates = 256;
  int32_t max_microbatch_size = 128;
  // Memoize DP cost queries in a planner-lifetime CachedCostOracle. On by
  // default; off recovers the seed's uncached oracle (benches use it as the
  // speedup baseline, tests to check bit-equality of cached planning).
  bool cost_cache = true;
  // Share a memoized oracle across planners / epochs instead of building a
  // planner-private one. Null + cost_cache creates a private oracle; the
  // trainer passes its epoch-spanning oracle here so epoch 2 starts with
  // epoch 1's shapes priced. Must be built over the same cost model.
  std::shared_ptr<cost::CachedCostOracle> cost_oracle;
  // --- Incremental planning (see PrefixWindowCache / StageCostCache) ---
  // Reuse window tables, forward-DP rows, and per-stage schedule costs across
  // iterations, and warm-start each partition from previous solutions. On by
  // default: plans are bit-identical with it on or off (every reuse copies
  // values bitwise or prunes provably losing candidates — pinned by
  // tests/planning_incremental_test.cpp), so like cost_cache and pool the
  // knob is excluded from the plan-cache config hash.
  bool incremental_planning = true;
  // Shared caches. Null + incremental_planning creates planner-private ones;
  // the trainer passes its epoch-spanning caches here. Sharing is only valid
  // across planners over the same cost model — entries are context-keyed by
  // a model fingerprint, so a mismatched share degrades to misses, never to
  // wrong plans.
  std::shared_ptr<mb::PrefixWindowCache> prefix_cache;
  std::shared_ptr<cost::StageCostCache> stage_cost_cache;
  // Cross-config warm-start seeds (grid search); null disables.
  std::shared_ptr<WarmStartBook> warm_book;
  // Fan independent planning work (recompute modes, per-t_max DPs) over this
  // pool; null plans serially. Plans are bit-identical either way — parallel
  // slots are merged deterministically (see DpPartitionerOptions::pool). The
  // pool may be shared across planners and with the trainer's plan-ahead
  // workers; nested fan-outs are deadlock-free (see ParallelFor).
  ThreadPool* pool = nullptr;
};

struct ReplicaPlan {
  std::vector<mb::MicroBatch> micro_batches;
  schedule::PipelineSchedule schedule;
  schedule::SimulatedTimeline timeline;  // planner's predicted timeline
  sim::ExecutionPlan exec_plan;
};

// Where one PlanIteration call spent its time and how the cost cache behaved,
// summed over every recompute mode tried (losing modes still cost planning
// time). Phase times are CPU work, so with a pool they can exceed the
// wall-clock planning_time_ms.
struct PlanningStats {
  double order_ms = 0.0;      // sample ordering
  double partition_ms = 0.0;  // DP partitioning (windows + t_max sweep)
  double schedule_ms = 0.0;   // replica balance + schedule + comm construction
  int64_t cost_cache_hits = 0;
  int64_t cost_cache_misses = 0;
  int32_t recompute_modes_tried = 0;
  // Incremental planning, summed over recompute modes: per-mode partitions
  // that found a shared-prefix entry, window/DP rows they copied instead of
  // recomputing, t_max candidates the warm-start bound pruned, and per-stage
  // schedule-cost memo activity.
  int64_t prefix_cache_hits = 0;
  int64_t prefix_cache_misses = 0;
  int64_t prefix_window_rows_reused = 0;
  int64_t prefix_f_rows_reused = 0;
  // Window rows served by the within-batch content dedup (quantized batches
  // are mostly equal-length runs, so most rows repeat).
  int64_t window_rows_deduped = 0;
  int64_t warmstart_pruned = 0;
  int64_t stage_cache_hits = 0;
  int64_t stage_cache_misses = 0;

  double cache_hit_rate() const {
    const int64_t total = cost_cache_hits + cost_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cost_cache_hits) /
                            static_cast<double>(total);
  }
};

struct IterationPlan {
  bool feasible = false;
  std::string infeasible_reason;
  std::vector<ReplicaPlan> replicas;
  model::RecomputeMode recompute = model::RecomputeMode::kNone;
  // Predicted iteration time: max replica makespan. Deliberately excludes the
  // data-parallel gradient allreduce, which the paper's cost model does not cover
  // (its stated source of GPT outliers in Fig. 18a).
  double predicted_iteration_ms = 0.0;
  // Predicted peak memory per stage (max over replicas, static + activations).
  std::vector<double> predicted_peak_mb;
  double planning_time_ms = 0.0;
  mb::PaddingStats padding;
  PlanningStats stats;
  // DP-order micro-batch widths of the winning partition (recorded before
  // replica balancing scatters the micro-batches). Not serialized — they
  // exist so a cached plan can seed the partitioner for a near-miss batch.
  std::vector<int32_t> partition_widths;

  int32_t total_microbatches() const;
};

// Memoized MicroBatchCostFn: binds a CachedCostOracle to one recompute mode.
// Shared by the planner, benches, and tests; thread-safe (the oracle is).
// Tallies hits/misses per adapter, so counters stay exact even when several
// adapters over one oracle run concurrently (the oracle's global counters
// would cross-attribute under concurrency).
class CachedCostAdapter : public mb::MicroBatchCostFn {
 public:
  CachedCostAdapter(const cost::CachedCostOracle& oracle, model::RecomputeMode mode)
      : oracle_(oracle), mode_(mode) {}

  double TimeMs(const model::MicroBatchShape& shape) const override {
    bool hit = false;
    const double v = oracle_.Query(shape, mode_, &hit).time_ms;
    Count(hit);
    return v;
  }
  double ActivationMb(const model::MicroBatchShape& shape) const override {
    bool hit = false;
    const double v =
        oracle_.Query(shape, mode_, &hit, /*act_limit=*/-1.0).act_mb;
    Count(hit);
    return v;
  }
  bool WindowCosts(const model::MicroBatchShape& shape, double limit,
                   double* time_ms, double* act_mb) const override {
    bool hit = false;
    // Forwarding the limit keeps the oracle as lazy as the uncached path:
    // windows that break the memory cap are never priced.
    const cost::CachedCostOracle::Entry e =
        oracle_.Query(shape, mode_, &hit, limit);
    Count(hit);
    *act_mb = e.act_mb;
    if (limit > 0.0 && e.act_mb > limit) {
      return false;
    }
    *time_ms = e.time_ms;
    return true;
  }
  std::pair<int64_t, int64_t> CacheCounters() const override {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

 private:
  void Count(bool hit) const {
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  }

  const cost::CachedCostOracle& oracle_;
  model::RecomputeMode mode_;
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
};

class IterationPlanner {
 public:
  IterationPlanner(const cost::PipelineCostModel& cost_model, PlannerOptions options);

  // Thread-safe: the trainer's plan-ahead workers call this concurrently on one
  // planner instance; the cost cache is shared and sharded. `seed` optionally
  // warm-starts the partitioner (see PlanSeed); plans are bit-identical with
  // or without it.
  IterationPlan PlanIteration(const std::vector<data::Sample>& minibatch,
                              const PlanSeed* seed = nullptr) const;

  const PlannerOptions& options() const { return options_; }
  // Null when options().cost_cache is false.
  const cost::CachedCostOracle* cost_cache() const { return oracle_.get(); }
  // Null when options().incremental_planning is false.
  const mb::PrefixWindowCache* prefix_cache() const {
    return prefix_cache_.get();
  }
  const cost::StageCostCache* stage_cost_cache() const {
    return stage_cache_.get();
  }
  // Drops every incremental cache (prefix entries, stage costs, warm seeds) —
  // the explicit invalidation hook for cost-oracle swaps mid-run. Context
  // keying already prevents cross-model reuse; this is for callers that
  // mutate a model in place.
  void InvalidateIncrementalCaches() const;

 private:
  IterationPlan PlanWithRecompute(const std::vector<data::Sample>& ordered,
                                  model::RecomputeMode mode,
                                  const PlanSeed* seed) const;
  uint64_t ModeContext(model::RecomputeMode mode, double per_mb_limit) const;

  const cost::PipelineCostModel& cm_;
  PlannerOptions options_;
  // Lives as long as the planner, so shapes memoized in one iteration keep
  // paying off across the epoch (consecutive mini-batches draw similar length
  // mixes from the same dataset). Only allocated when the cache is enabled —
  // the table is several MB and uncached planners must not pay for it.
  std::shared_ptr<cost::CachedCostOracle> oracle_;
  // Incremental-planning state (null when disabled). The context fingerprint
  // folds the model config, parallelism, budget, DP knobs, and a probe cost
  // query, so entries from a different cost model can never be returned.
  std::shared_ptr<mb::PrefixWindowCache> prefix_cache_;
  std::shared_ptr<cost::StageCostCache> stage_cache_;
  uint64_t incremental_context_ = 0;
  // Last feasible partition widths per recompute mode: next iteration's
  // warm-start seed. Last-writer-wins under concurrency — any seed is only a
  // pruning bound, so the plan is invariant to which writer won.
  mutable std::mutex warm_mu_;
  mutable std::array<std::vector<int32_t>, 3> warm_widths_;
};

// --- Baseline (MLM+DS-style) planning ---

enum class BaselineBatching { kPacking, kTokenBased, kFixedSize, kNaivePadding };

struct BaselineOptions {
  BaselineBatching batching = BaselineBatching::kPacking;
  // Packing: sequences per micro-batch. Fixed-size/naive: samples per micro-batch.
  int32_t microbatch_size = 1;
  // Token-based batching: padded tokens per micro-batch.
  int64_t tokens_per_microbatch = 4096;
  // Truncation/packing limits.
  int32_t max_input_len = 2048;
  int32_t max_target_len = 0;  // <= 0: derive as max_input_len / 4 for T5
  model::RecomputeMode recompute = model::RecomputeMode::kNone;
  // Order samples before token-based/fixed-size batching (TB(S)/TB(T) in Fig. 16a).
  mb::OrderingMethod ordering = mb::OrderingMethod::kSortByLength;
};

IterationPlan PlanBaselineIteration(const cost::PipelineCostModel& cost_model,
                                    const BaselineOptions& options,
                                    const std::vector<data::Sample>& minibatch);

}  // namespace dynapipe::runtime

#endif  // DYNAPIPE_SRC_RUNTIME_PLANNER_H_
