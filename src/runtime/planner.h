// Per-iteration execution planning.
//
// IterationPlanner is DynaPipe's planner (§3 "Planners"): for one mini-batch it
// orders samples, partitions them into micro-batches with the DP algorithm,
// balances data-parallel replicas (Karmarkar–Karp), builds the memory-aware
// adaptive schedule with micro-batch reordering, lays out communication, and picks
// the cheapest feasible recomputation mode — emitting one ExecutionPlan per
// replica plus its own predictions of iteration time and peak memory (what Fig. 18
// scores against reality).
//
// PlanBaselineIteration is the MLM+DS-style path: packing (or another static
// batcher), uniform 1F1B, naive-but-fused communication, fixed recompute mode.
#ifndef DYNAPIPE_SRC_RUNTIME_PLANNER_H_
#define DYNAPIPE_SRC_RUNTIME_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/baselines/batchers.h"
#include "src/baselines/packing.h"
#include "src/cost/pipeline_cost_model.h"
#include "src/data/dataset.h"
#include "src/mb/dp_partitioner.h"
#include "src/mb/micro_batch.h"
#include "src/mb/ordering.h"
#include "src/schedule/executor_simulator.h"
#include "src/schedule/schedule_types.h"
#include "src/sim/instruction.h"

namespace dynapipe::runtime {

struct PlannerOptions {
  mb::OrderingMethod ordering = mb::OrderingMethod::kSortByLength;
  // Adaptive schedule + reordering are DynaPipe defaults; both can be disabled for
  // the Fig. 16b ablation (false/false is "1F1B over dynamic micro-batches").
  bool adaptive_schedule = true;
  bool reorder_microbatches = true;
  int32_t reorder_clusters = 3;
  // Dynamic recomputation (§7): try kNone → kSelective → kFull, keep the fastest
  // feasible. When false, only static_recompute is attempted.
  bool dynamic_recompute = true;
  model::RecomputeMode static_recompute = model::RecomputeMode::kNone;
  // DP algorithm knobs (see DpPartitionerOptions).
  double tmax_interval_ms = 0.05;
  int32_t max_tmax_candidates = 256;
  int32_t max_microbatch_size = 128;
};

struct ReplicaPlan {
  std::vector<mb::MicroBatch> micro_batches;
  schedule::PipelineSchedule schedule;
  schedule::SimulatedTimeline timeline;  // planner's predicted timeline
  sim::ExecutionPlan exec_plan;
};

struct IterationPlan {
  bool feasible = false;
  std::string infeasible_reason;
  std::vector<ReplicaPlan> replicas;
  model::RecomputeMode recompute = model::RecomputeMode::kNone;
  // Predicted iteration time: max replica makespan. Deliberately excludes the
  // data-parallel gradient allreduce, which the paper's cost model does not cover
  // (its stated source of GPT outliers in Fig. 18a).
  double predicted_iteration_ms = 0.0;
  // Predicted peak memory per stage (max over replicas, static + activations).
  std::vector<double> predicted_peak_mb;
  double planning_time_ms = 0.0;
  mb::PaddingStats padding;

  int32_t total_microbatches() const;
};

class IterationPlanner {
 public:
  IterationPlanner(const cost::PipelineCostModel& cost_model, PlannerOptions options);

  IterationPlan PlanIteration(const std::vector<data::Sample>& minibatch) const;

  const PlannerOptions& options() const { return options_; }

 private:
  IterationPlan PlanWithRecompute(const std::vector<data::Sample>& ordered,
                                  model::RecomputeMode mode) const;

  const cost::PipelineCostModel& cm_;
  PlannerOptions options_;
};

// --- Baseline (MLM+DS-style) planning ---

enum class BaselineBatching { kPacking, kTokenBased, kFixedSize, kNaivePadding };

struct BaselineOptions {
  BaselineBatching batching = BaselineBatching::kPacking;
  // Packing: sequences per micro-batch. Fixed-size/naive: samples per micro-batch.
  int32_t microbatch_size = 1;
  // Token-based batching: padded tokens per micro-batch.
  int64_t tokens_per_microbatch = 4096;
  // Truncation/packing limits.
  int32_t max_input_len = 2048;
  int32_t max_target_len = 0;  // <= 0: derive as max_input_len / 4 for T5
  model::RecomputeMode recompute = model::RecomputeMode::kNone;
  // Order samples before token-based/fixed-size batching (TB(S)/TB(T) in Fig. 16a).
  mb::OrderingMethod ordering = mb::OrderingMethod::kSortByLength;
};

IterationPlan PlanBaselineIteration(const cost::PipelineCostModel& cost_model,
                                    const BaselineOptions& options,
                                    const std::vector<data::Sample>& minibatch);

}  // namespace dynapipe::runtime

#endif  // DYNAPIPE_SRC_RUNTIME_PLANNER_H_
