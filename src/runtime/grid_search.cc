#include "src/runtime/grid_search.h"

#include <algorithm>
#include <memory>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace dynapipe::runtime {
namespace {

std::vector<model::ParallelConfig> Candidates(const model::ModelConfig& config,
                                              const model::HardwareSpec& hw,
                                              int32_t num_gpus) {
  const int32_t max_pp = std::min(config.total_layers(), num_gpus);
  return model::EnumerateParallelConfigs(num_gpus, hw.gpus_per_node, max_pp);
}

}  // namespace

DynaPipeSearchResult GridSearchDynaPipe(const model::ModelConfig& config,
                                        const model::HardwareSpec& hw,
                                        int32_t num_gpus,
                                        const data::Dataset& dataset,
                                        const PlannerOptions& planner,
                                        const GridSearchOptions& options) {
  DynaPipeSearchResult result;
  TrainerOptions trainer_opts = options.trainer;
  trainer_opts.max_iterations = options.eval_iterations;

  // One shared warm-start book: configs cross-seed each other's DP sweeps.
  // Prefix/stage caches are NOT shared — they are context-keyed per cost
  // model, so sharing would only add lock traffic for guaranteed misses.
  PlannerOptions planner_opts = planner;
  if (options.warm_start && planner_opts.warm_book == nullptr) {
    planner_opts.warm_book = std::make_shared<WarmStartBook>();
  }

  // Each configuration profiles its own cost model and runs its own sampled
  // epoch — fully independent, so they fan out over the pool into per-config
  // slots; the merge below is serial and order-deterministic.
  const std::vector<model::ParallelConfig> candidates =
      Candidates(config, hw, num_gpus);
  std::vector<ConfigScore> scores(candidates.size());
  ParallelFor(options.pool, candidates.size(), [&](size_t i) {
    Trainer trainer(config, hw, candidates[i], options.profile);
    const EpochResult epoch = trainer.RunEpoch(dataset, planner_opts, trainer_opts);
    ConfigScore& score = scores[i];
    score.parallel = candidates[i];
    score.feasible = epoch.feasible;
    score.tokens_per_second = epoch.feasible ? epoch.tokens_per_second() : 0.0;
    score.note = epoch.failure;
  });

  for (const ConfigScore& score : scores) {
    result.all.push_back(score);
    if (score.feasible && score.tokens_per_second > result.tokens_per_second) {
      result.found = true;
      result.best = score.parallel;
      result.tokens_per_second = score.tokens_per_second;
    }
  }
  return result;
}

namespace {

// One parallelism configuration's full baseline sweep (recompute x batch-size
// knobs), in the same nesting order the seed's serial loops used. Scores are
// appended to `out` in sweep order; `result`'s best is updated with strict
// improvement, so within a configuration ties keep the earliest knob combo.
void SweepBaselineConfig(const model::ModelConfig& config,
                         const model::HardwareSpec& hw,
                         const model::ParallelConfig& parallel,
                         const data::Dataset& dataset, BaselineBatching batching,
                         const GridSearchOptions& options,
                         const TrainerOptions& trainer_opts,
                         BaselineSearchResult* result,
                         std::vector<ConfigScore>* out) {
  Trainer trainer(config, hw, parallel, options.profile);
  const bool token_based = batching == BaselineBatching::kTokenBased;
  for (const auto recompute : options.recompute_modes) {
    if (token_based) {
      for (const int64_t tokens : options.token_counts) {
        BaselineOptions base;
        base.batching = batching;
        base.tokens_per_microbatch = tokens;
        base.recompute = recompute;
        const EpochResult epoch =
            trainer.RunEpochBaseline(dataset, base, trainer_opts);
        ConfigScore score;
        score.parallel = parallel;
        score.feasible = epoch.feasible;
        score.tokens_per_second = epoch.feasible ? epoch.tokens_per_second() : 0.0;
        score.note = "tokens/mb=" + std::to_string(tokens);
        out->push_back(score);
        if (epoch.feasible && score.tokens_per_second > result->tokens_per_second) {
          result->found = true;
          result->best = parallel;
          result->tokens_per_microbatch = tokens;
          result->recompute = recompute;
          result->tokens_per_second = score.tokens_per_second;
        }
      }
    } else {
      for (const int32_t mbs : options.microbatch_sizes) {
        BaselineOptions base;
        base.batching = batching;
        base.microbatch_size = mbs;
        base.recompute = recompute;
        const EpochResult epoch =
            trainer.RunEpochBaseline(dataset, base, trainer_opts);
        ConfigScore score;
        score.parallel = parallel;
        score.feasible = epoch.feasible;
        score.tokens_per_second = epoch.feasible ? epoch.tokens_per_second() : 0.0;
        score.note = "mbs=" + std::to_string(mbs);
        out->push_back(score);
        if (epoch.feasible && score.tokens_per_second > result->tokens_per_second) {
          result->found = true;
          result->best = parallel;
          result->microbatch_size = mbs;
          result->recompute = recompute;
          result->tokens_per_second = score.tokens_per_second;
        }
      }
    }
  }
}

BaselineSearchResult SearchBaselineOverConfigs(
    const model::ModelConfig& config, const model::HardwareSpec& hw,
    const std::vector<model::ParallelConfig>& parallels,
    const data::Dataset& dataset, BaselineBatching batching,
    const GridSearchOptions& options) {
  BaselineSearchResult result;
  TrainerOptions trainer_opts = options.trainer;
  trainer_opts.max_iterations = options.eval_iterations;

  // Outer fan-out over parallelism configurations; each config's knob sweep
  // stays serial inside its slot. Merging slot-local bests in enumeration
  // order with strict improvement reproduces the seed's config-major serial
  // scan bit for bit (the first config to strictly beat all before it wins).
  std::vector<BaselineSearchResult> locals(parallels.size());
  std::vector<std::vector<ConfigScore>> local_scores(parallels.size());
  ParallelFor(options.pool, parallels.size(), [&](size_t i) {
    SweepBaselineConfig(config, hw, parallels[i], dataset, batching, options,
                        trainer_opts, &locals[i], &local_scores[i]);
  });

  for (size_t i = 0; i < parallels.size(); ++i) {
    result.all.insert(result.all.end(), local_scores[i].begin(),
                      local_scores[i].end());
    const BaselineSearchResult& local = locals[i];
    if (local.found && local.tokens_per_second > result.tokens_per_second) {
      result.found = true;
      result.best = local.best;
      result.microbatch_size = local.microbatch_size;
      result.tokens_per_microbatch = local.tokens_per_microbatch;
      result.recompute = local.recompute;
      result.tokens_per_second = local.tokens_per_second;
    }
  }
  return result;
}

}  // namespace

BaselineSearchResult GridSearchBaseline(const model::ModelConfig& config,
                                        const model::HardwareSpec& hw,
                                        int32_t num_gpus,
                                        const data::Dataset& dataset,
                                        BaselineBatching batching,
                                        const GridSearchOptions& options) {
  return SearchBaselineOverConfigs(config, hw, Candidates(config, hw, num_gpus),
                                   dataset, batching, options);
}

BaselineSearchResult GridSearchBaselineAtParallel(
    const model::ModelConfig& config, const model::HardwareSpec& hw,
    const model::ParallelConfig& parallel, const data::Dataset& dataset,
    BaselineBatching batching, const GridSearchOptions& options) {
  return SearchBaselineOverConfigs(config, hw, {parallel}, dataset, batching,
                                   options);
}

}  // namespace dynapipe::runtime
