#include "src/runtime/grid_search.h"

#include <algorithm>

#include "src/common/check.h"

namespace dynapipe::runtime {
namespace {

std::vector<model::ParallelConfig> Candidates(const model::ModelConfig& config,
                                              const model::HardwareSpec& hw,
                                              int32_t num_gpus) {
  const int32_t max_pp = std::min(config.total_layers(), num_gpus);
  return model::EnumerateParallelConfigs(num_gpus, hw.gpus_per_node, max_pp);
}

}  // namespace

DynaPipeSearchResult GridSearchDynaPipe(const model::ModelConfig& config,
                                        const model::HardwareSpec& hw,
                                        int32_t num_gpus,
                                        const data::Dataset& dataset,
                                        const PlannerOptions& planner,
                                        const GridSearchOptions& options) {
  DynaPipeSearchResult result;
  TrainerOptions trainer_opts = options.trainer;
  trainer_opts.max_iterations = options.eval_iterations;

  for (const auto& parallel : Candidates(config, hw, num_gpus)) {
    Trainer trainer(config, hw, parallel, options.profile);
    const EpochResult epoch = trainer.RunEpoch(dataset, planner, trainer_opts);
    ConfigScore score;
    score.parallel = parallel;
    score.feasible = epoch.feasible;
    score.tokens_per_second = epoch.feasible ? epoch.tokens_per_second() : 0.0;
    score.note = epoch.failure;
    result.all.push_back(score);
    if (epoch.feasible && score.tokens_per_second > result.tokens_per_second) {
      result.found = true;
      result.best = parallel;
      result.tokens_per_second = score.tokens_per_second;
    }
  }
  return result;
}

namespace {

BaselineSearchResult SearchBaselineOverConfigs(
    const model::ModelConfig& config, const model::HardwareSpec& hw,
    const std::vector<model::ParallelConfig>& parallels,
    const data::Dataset& dataset, BaselineBatching batching,
    const GridSearchOptions& options) {
  BaselineSearchResult result;
  TrainerOptions trainer_opts = options.trainer;
  trainer_opts.max_iterations = options.eval_iterations;

  const bool token_based = batching == BaselineBatching::kTokenBased;

  for (const auto& parallel : parallels) {
    Trainer trainer(config, hw, parallel, options.profile);
    for (const auto recompute : options.recompute_modes) {
      if (token_based) {
        for (const int64_t tokens : options.token_counts) {
          BaselineOptions base;
          base.batching = batching;
          base.tokens_per_microbatch = tokens;
          base.recompute = recompute;
          const EpochResult epoch =
              trainer.RunEpochBaseline(dataset, base, trainer_opts);
          ConfigScore score;
          score.parallel = parallel;
          score.feasible = epoch.feasible;
          score.tokens_per_second = epoch.feasible ? epoch.tokens_per_second() : 0.0;
          score.note = "tokens/mb=" + std::to_string(tokens);
          result.all.push_back(score);
          if (epoch.feasible && score.tokens_per_second > result.tokens_per_second) {
            result.found = true;
            result.best = parallel;
            result.tokens_per_microbatch = tokens;
            result.recompute = recompute;
            result.tokens_per_second = score.tokens_per_second;
          }
        }
      } else {
        for (const int32_t mbs : options.microbatch_sizes) {
          BaselineOptions base;
          base.batching = batching;
          base.microbatch_size = mbs;
          base.recompute = recompute;
          const EpochResult epoch =
              trainer.RunEpochBaseline(dataset, base, trainer_opts);
          ConfigScore score;
          score.parallel = parallel;
          score.feasible = epoch.feasible;
          score.tokens_per_second = epoch.feasible ? epoch.tokens_per_second() : 0.0;
          score.note = "mbs=" + std::to_string(mbs);
          result.all.push_back(score);
          if (epoch.feasible && score.tokens_per_second > result.tokens_per_second) {
            result.found = true;
            result.best = parallel;
            result.microbatch_size = mbs;
            result.recompute = recompute;
            result.tokens_per_second = score.tokens_per_second;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace

BaselineSearchResult GridSearchBaseline(const model::ModelConfig& config,
                                        const model::HardwareSpec& hw,
                                        int32_t num_gpus,
                                        const data::Dataset& dataset,
                                        BaselineBatching batching,
                                        const GridSearchOptions& options) {
  return SearchBaselineOverConfigs(config, hw, Candidates(config, hw, num_gpus),
                                   dataset, batching, options);
}

BaselineSearchResult GridSearchBaselineAtParallel(
    const model::ModelConfig& config, const model::HardwareSpec& hw,
    const model::ParallelConfig& parallel, const data::Dataset& dataset,
    BaselineBatching batching, const GridSearchOptions& options) {
  return SearchBaselineOverConfigs(config, hw, {parallel}, dataset, batching,
                                   options);
}

}  // namespace dynapipe::runtime
