// Epoch-level training loop on the simulated cluster.
//
// For every mini-batch the planner (DynaPipe or baseline) produces per-replica
// execution plans; each replica's plan runs on a ClusterSim backed by the noisy
// ground-truth model. Measured iteration time is the slowest replica's makespan
// plus the data-parallel gradient allreduce. Throughput follows the paper's metric:
// real (non-padding) tokens divided by total training time (§8 "Metrics").
#ifndef DYNAPIPE_SRC_RUNTIME_TRAINER_H_
#define DYNAPIPE_SRC_RUNTIME_TRAINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/cost/pipeline_cost_model.h"
#include "src/data/dataset.h"
#include "src/data/minibatch_sampler.h"
#include "src/runtime/planner.h"
#include "src/service/recovery.h"

namespace dynapipe {
class ThreadPool;
namespace service {
class PlanCache;
}  // namespace service
}  // namespace dynapipe

namespace dynapipe::runtime {

struct TrainerOptions {
  int64_t global_batch_tokens = 65'536;
  int32_t max_input_len = 2048;
  // <= 0 derives max target length as max_input_len / 4 for T5 (0 for GPT).
  int32_t max_target_len = 0;
  uint64_t sampler_seed = 7;
  // 0 = full epoch. Benches subsample iterations for tractable run times; the
  // throughput metric is per-time so subsampling is unbiased.
  int32_t max_iterations = 0;
  // Run-time execution noise (relative stddev) applied by the ground truth.
  double noise_stddev = 0.05;
  uint64_t noise_seed = 99;
  // --- Plan-ahead service (src/service/plan_ahead_service.h) ---
  // Every epoch obtains plans through the PlanAheadService; the fields below
  // configure it. Results are identical to inline serial planning — only
  // wall-clock planning latency (and, with quantization > 1, padding) changes.
  //
  // Worker threads for planning future iterations (<= 1 plans inline unless
  // plan_lookahead says otherwise). Mirrors the paper's overlap of CPU-side
  // planning with GPU execution (§3, Fig. 17). The pool is shared with the
  // planner's intra-iteration fan-outs, so iteration i+1's window precompute
  // overlaps iteration i's candidate sweep; when the PlannerOptions already
  // carry a pool, that one is shared instead of creating a second herd.
  int32_t planning_threads = 0;
  // Look-ahead window depth (iterations planned beyond the one executing).
  // < 0 derives the old trainer heuristic: 2x planning_threads when
  // planning_threads > 1, else 0 (inline).
  int32_t plan_lookahead = -1;
  // Cross-iteration plan cache (service/plan_cache.h): mini-batches whose
  // sequence-length multiset recurs skip planning entirely. The cache lives on
  // the Trainer, so consecutive epochs share it (epoch 2 of a replayed
  // shuffle hits epoch 1's plans). DynaPipe planning only — the baseline path
  // repacks samples and cannot be rebound.
  bool plan_cache = false;
  size_t plan_cache_capacity = 256;
  // Byte budget for the plan cache (estimated deep size; 0 = unbounded).
  // Plans scale with batch size x replicas, so large-batch runs cap by bytes
  // rather than trusting the count alone (see PlanCacheOptions::max_bytes).
  size_t plan_cache_max_bytes = 0;
  // Round sequence lengths up to this multiple before keying *and* planning
  // (1 = exact). > 1 trades padding for cache hits across nearly-identical
  // batches; plans are then no longer bit-identical to exact planning.
  int32_t plan_cache_quantization = 1;
  // Distribute plans through the instruction store as serialized bytes
  // (service/plan_serde.h), and bound the store's resident plans (Push
  // backpressure; 0 = unbounded, must be >= dp replicas otherwise).
  bool serialize_plans = false;
  size_t instruction_store_capacity = 0;
  // Which instruction-store backend carries plans from the plan-ahead
  // pipeline to the executors (src/transport/):
  //   - kInProcess: the store lives in this process (serialize_plans decides
  //     whether plans cross an encode/decode boundary);
  //   - kUnixSocket: plans publish through a RemoteInstructionStore client to
  //     an InstructionStoreServer over a Unix domain socket — the full
  //     cross-process wire path (frames, plan_serde bytes, server-side
  //     capacity backpressure), one connection per request, hosted in-process
  //     by the trainer so results stay bit-identical while exercising the
  //     real transport;
  //   - kUnixSocketMux: same server, but through a MuxInstructionStore — one
  //     persistent connection carrying request-id-tagged frames, deferred
  //     kPush replies for backpressure (src/transport/mux.h); amortizes the
  //     connect-per-request cost away;
  //   - kSharedMemory: a ShmInstructionStore segment (src/transport/
  //     shm_store.h) — zero-copy same-host distribution; executors could
  //     attach by name from another process, the trainer uses the same
  //     mapping.
  enum class PlanStoreBackend {
    kInProcess,
    kUnixSocket,
    kUnixSocketMux,
    kSharedMemory,
  };
  PlanStoreBackend plan_store_backend = PlanStoreBackend::kInProcess;
  // Socket path for kUnixSocket/kUnixSocketMux; empty derives a unique /tmp
  // path per epoch.
  std::string plan_store_socket_path;
  // Segment name for kSharedMemory ("/dynapipe-..."); empty derives a unique
  // name per epoch.
  std::string plan_store_shm_name;
  // --- Straggler detection (service/heartbeat_monitor.h) ---
  // Replica completion times feed a HeartbeatMonitor: the trainer reports
  // its in-process replicas' simulated makespans, and on the socket
  // backends the server also routes kHeartbeat frames from any attached
  // reporter into the same monitor (heartbeats are non-destructive, unlike
  // fetch — a plan is consumed exactly once, and this trainer consumes its
  // own plans, so standalone dynapipe_executor processes run against a
  // dedicated publisher as in examples/plan_distribution, not against a
  // live trainer's store). A replica is flagged on iteration i when its
  // completion exceeds
  //   straggler_multiple * median + straggler_min_gap_ms;
  // per-iteration stats land in IterationRecord. The relative criterion
  // needs >= 3 replicas to be meaningful (with two, nothing can exceed
  // twice the pair's mean).
  double straggler_multiple = 2.0;
  double straggler_min_gap_ms = 0.0;
  // --- Failure detection & recovery (service/heartbeat_monitor.h,
  // service/recovery.h), cross-process backends only (sockets and shm —
  // anywhere an executor process can die out from under the trainer; the
  // shm segment's liveness source is its header heartbeat slots, polled by
  // a ShmHeartbeatPoller). ---
  // Liveness deadlines for attached executors; 0 disables the transition. A
  // replica silent past dead_after_ms, or whose connection drops uncleanly
  // and stays gone past connection_grace_ms (grace 0 = a drop is death), is
  // declared kDead: its unfetched plans are re-published to survivors and
  // the death lands in EpochResult::dead_replicas.
  double liveness_suspect_after_ms = 0.0;
  double liveness_dead_after_ms = 0.0;
  double liveness_connection_grace_ms = 0.0;
  // Fleet barrier: hold the epoch (no plan published, no iteration run)
  // until this many replicas have been seen by the liveness monitor —
  // attached executors, counted before the in-process replicas report
  // anything. 0 starts immediately; a barrier that is not met within the
  // timeout fails the epoch rather than training into an absent fleet.
  int32_t liveness_await_replicas = 0;
  double liveness_await_timeout_ms = 30'000.0;
  // kFailFast aborts the epoch (feasible = false) at the first declared
  // death; kDegradeAndContinue (default) finishes on the survivors.
  service::FailurePolicy failure_policy =
      service::FailurePolicy::kDegradeAndContinue;
  // --- Straggler reaction (service/rebalance.h) ---
  // When enabled, a RebalanceCoordinator subscribes to the monitor's
  // straggler signal and moves part of a persistently slow replica's
  // *unfetched* backlog onto fast replicas mid-epoch. Note the trainer's own
  // in-process replicas are immovable (the trainer fetches its plans by
  // exact key), so in-trainer rebalancing acts only on work published for
  // externally attached executors; the full migration path is exercised by
  // the standalone publisher (dynapipe_executor --demo shm --fault stall).
  bool rebalance_stragglers = false;
  // A replica must straggle this many consecutive iterations to shed work...
  int32_t rebalance_consecutive_flags = 3;
  // ...at most this many plans migrate per trigger...
  int32_t rebalance_max_moves = 2;
  // ...and it is immune for this many iterations after shedding (hysteresis
  // so one noisy iteration doesn't thrash plans back and forth).
  int64_t rebalance_hysteresis_iterations = 4;
  // --- Elastic membership (service/membership.h) ---
  // When enabled, a MembershipCoordinator subscribes downstream of recovery
  // and makes the fleet dynamic: an unknown replica that attaches (wire
  // kAttachCapJoin, or a bare shm announce) is admitted and seeded with a
  // fair share of the most-loaded replica's tail backlog; a replica that
  // requests a drain (wire kDrainRequest, or the shm slot's drain word) is
  // fenced, its unfetched backlog is reposted to the survivors, and the
  // expected fleet size re-gates straggler detection. Cross-process backends
  // only (sockets and shm), like recovery.
  bool elastic_membership = false;
  // Cap on backlog stolen for one joiner; 0 = fair share, uncapped.
  int32_t membership_join_steal_max = 0;
  // --- Observability (src/common/trace.h, src/common/metrics.h) ---
  // Non-empty enables plan-lifecycle tracing and names the merged
  // Chrome/Perfetto trace JSON written at epoch end (executor processes
  // started with DYNAPIPE_TRACE pointing at the same path contribute
  // `<path>.<pid>.part` files, folded into the merge). Equivalent to setting
  // DYNAPIPE_TRACE in the environment.
  std::string trace_path;
};

// One attached executor connection's process-wide metrics, pulled over the
// wire (a server-initiated kStatsRequest) at epoch end. Socket backends with
// stats-capable (mux) executors only.
struct ExecutorMetrics {
  // Replicas attached on that connection (usually one).
  std::vector<int32_t> replicas;
  common::MetricsSnapshot snapshot;
};

struct IterationRecord {
  double planning_ms = 0.0;
  double predicted_ms = 0.0;
  double measured_ms = 0.0;
  double predicted_peak_mb = 0.0;
  double measured_peak_mb = 0.0;
  int32_t num_microbatches = 0;
  model::RecomputeMode recompute = model::RecomputeMode::kNone;
  // Copied from IterationPlan::stats so benches (Fig. 17) report cost-cache hit
  // rates and phase splits without re-instrumenting the planner.
  int64_t cost_cache_hits = 0;
  int64_t cost_cache_misses = 0;
  double partition_ms = 0.0;
  double schedule_ms = 0.0;
  // Incremental planning (prefix window cache + warm-started candidate
  // sweep); zero when incremental_planning is off.
  int64_t prefix_cache_hits = 0;
  int64_t prefix_cache_misses = 0;
  int64_t warmstart_pruned = 0;
  // Plan-ahead service: whether this iteration's plan came from the
  // cross-iteration plan cache (its phase counters above are then 0), and how
  // long the trainer stalled waiting for the plan (planning latency the
  // look-ahead pipeline failed to hide; the paper's Fig. 17 overlap target).
  bool plan_cache_hit = false;
  double plan_stall_ms = 0.0;
  // Straggler stats from the HeartbeatMonitor: completion times of every
  // replica that reported this iteration (in-process replicas report their
  // simulated makespan; attached executor processes heartbeat wall clock),
  // and the replicas flagged over straggler_multiple x the median.
  int32_t heartbeat_replicas = 0;
  double replica_median_ms = 0.0;
  double replica_max_ms = 0.0;
  std::vector<int32_t> straggler_replicas;
  // Replicas declared dead by the time this iteration completed (cumulative
  // snapshot, ascending) — which iterations of the epoch ran degraded.
  std::vector<int32_t> dead_replicas;
  // Replicas that had shed work to faster ones by the time this iteration
  // completed (cumulative, first-trigger order) — the rebalance analogue of
  // dead_replicas.
  std::vector<int32_t> rebalanced_replicas;
};

struct EpochResult {
  // False when any iteration could not be planned (OOM) or execution failed
  // (deadlock / OOM at run time); `failure` explains why. Configurations that fail
  // are excluded from grid search, like the paper's OOM bars.
  bool feasible = true;
  std::string failure;

  int64_t iterations = 0;
  int64_t real_tokens = 0;
  double train_time_ms = 0.0;
  double planning_time_ms = 0.0;
  // Plan-ahead service totals: stall is the planning latency the executors
  // actually waited for (<= planning_time_ms once the pipeline is warm);
  // plan-cache counters aggregate the per-iteration hits; serialized bytes is
  // the instruction-store wire volume (serialized mode only).
  double plan_stall_ms = 0.0;
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t serialized_plan_bytes = 0;
  mb::PaddingStats padding;
  std::vector<IterationRecord> records;
  int64_t deadlocks = 0;
  int64_t ooms = 0;
  // Total straggler flags raised across the epoch (per-iteration detail in
  // records[*].straggler_replicas).
  int64_t straggler_flags = 0;
  // Recovery (service/recovery.h): replicas declared dead during the epoch
  // (declaration order), how many of their pending plans were re-published
  // to survivors, and the total detect -> re-publish wall time.
  std::vector<int32_t> dead_replicas;
  int64_t replanned_iterations = 0;
  double recovery_ms = 0.0;
  // Rebalancing (service/rebalance.h): triggers that moved work off a
  // persistently slow replica, and how many plans migrated in total.
  int64_t rebalance_events = 0;
  int64_t rebalanced_iterations = 0;
  // Elastic membership (service/membership.h): replicas admitted mid-epoch
  // (admission order) and drained gracefully (acknowledgement order), plus
  // how much backlog moved each way.
  std::vector<int32_t> joined_replicas;
  std::vector<int32_t> drained_replicas;
  int64_t join_stolen_iterations = 0;
  int64_t drain_reposted_iterations = 0;
  // Per-connection executor metric snapshots pulled over the stats channel
  // at epoch end (empty on non-socket backends or when nothing attached).
  std::vector<ExecutorMetrics> executor_metrics;

  double tokens_per_second() const {
    return train_time_ms <= 0.0 ? 0.0 : static_cast<double>(real_tokens) /
                                            (train_time_ms / 1000.0);
  }
};

class Trainer {
 public:
  Trainer(const model::ModelConfig& config, const model::HardwareSpec& hw,
          const model::ParallelConfig& parallel,
          const cost::ProfileOptions& profile_options = {});

  // DynaPipe planning path.
  EpochResult RunEpoch(const data::Dataset& dataset, const PlannerOptions& planner,
                       const TrainerOptions& options);

  // MLM+DS-style baseline path.
  EpochResult RunEpochBaseline(const data::Dataset& dataset,
                               const BaselineOptions& baseline,
                               const TrainerOptions& options);

  const cost::PipelineCostModel& cost_model() const { return cost_model_; }
  const model::ParallelConfig& parallel() const { return parallel_; }

 private:
  using PlanFn = std::function<IterationPlan(const std::vector<data::Sample>&)>;
  using SeededPlanFn = std::function<IterationPlan(const std::vector<data::Sample>&,
                                                   const PlanSeed*)>;

  // `pool` (nullable) is shared with the plan-ahead service; `config_hash`
  // pins the planning configuration for plan-cache signatures;
  // `allow_plan_cache` gates the cache to rebindable (DynaPipe) plans;
  // `seeded_plan_fn` (nullable) lets plan-cache near-misses warm-start the
  // planner (DynaPipe path only — baselines have no DP sweep to seed).
  EpochResult RunEpochImpl(const data::Dataset& dataset, const TrainerOptions& options,
                           const PlanFn& plan_fn, ThreadPool* pool,
                           uint64_t config_hash, bool allow_plan_cache,
                           const SeededPlanFn& seeded_plan_fn = nullptr);

  model::ModelConfig config_;
  model::HardwareSpec hw_;
  model::ParallelConfig parallel_;
  cost::PipelineCostModel cost_model_;
  // Lazily created when TrainerOptions::plan_cache is set; persists across
  // RunEpoch calls so replayed epochs hit.
  std::shared_ptr<service::PlanCache> plan_cache_;
  // Epoch-spanning planner caches, lazily created on the first RunEpoch and
  // injected into each epoch's planner (unless the caller provided its own):
  // the memoized cost oracle plus the incremental-planning prefix/stage
  // caches, so epoch N+1 plans warm. All three are keyed/validated against
  // the cost model, which is fixed for the Trainer's lifetime.
  std::shared_ptr<cost::CachedCostOracle> cost_oracle_;
  std::shared_ptr<mb::PrefixWindowCache> prefix_cache_;
  std::shared_ptr<cost::StageCostCache> stage_cost_cache_;
};

}  // namespace dynapipe::runtime

#endif  // DYNAPIPE_SRC_RUNTIME_TRAINER_H_
