// Epoch-level training loop on the simulated cluster.
//
// For every mini-batch the planner (DynaPipe or baseline) produces per-replica
// execution plans; each replica's plan runs on a ClusterSim backed by the noisy
// ground-truth model. Measured iteration time is the slowest replica's makespan
// plus the data-parallel gradient allreduce. Throughput follows the paper's metric:
// real (non-padding) tokens divided by total training time (§8 "Metrics").
#ifndef DYNAPIPE_SRC_RUNTIME_TRAINER_H_
#define DYNAPIPE_SRC_RUNTIME_TRAINER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/cost/pipeline_cost_model.h"
#include "src/data/dataset.h"
#include "src/data/minibatch_sampler.h"
#include "src/runtime/planner.h"

namespace dynapipe::runtime {

struct TrainerOptions {
  int64_t global_batch_tokens = 65'536;
  int32_t max_input_len = 2048;
  // <= 0 derives max target length as max_input_len / 4 for T5 (0 for GPT).
  int32_t max_target_len = 0;
  uint64_t sampler_seed = 7;
  // 0 = full epoch. Benches subsample iterations for tractable run times; the
  // throughput metric is per-time so subsampling is unbiased.
  int32_t max_iterations = 0;
  // Run-time execution noise (relative stddev) applied by the ground truth.
  double noise_stddev = 0.05;
  uint64_t noise_seed = 99;
  // Plan future iterations on worker threads (<= 1 plans inline). Mirrors the
  // paper's overlap of CPU-side planning with GPU execution (§3, Fig. 17); the
  // look-ahead window is 2x the thread count. Results are identical to serial
  // planning — only wall-clock planning latency changes.
  int32_t planning_threads = 0;
};

struct IterationRecord {
  double planning_ms = 0.0;
  double predicted_ms = 0.0;
  double measured_ms = 0.0;
  double predicted_peak_mb = 0.0;
  double measured_peak_mb = 0.0;
  int32_t num_microbatches = 0;
  model::RecomputeMode recompute = model::RecomputeMode::kNone;
  // Copied from IterationPlan::stats so benches (Fig. 17) report cost-cache hit
  // rates and phase splits without re-instrumenting the planner.
  int64_t cost_cache_hits = 0;
  int64_t cost_cache_misses = 0;
  double partition_ms = 0.0;
  double schedule_ms = 0.0;
};

struct EpochResult {
  // False when any iteration could not be planned (OOM) or execution failed
  // (deadlock / OOM at run time); `failure` explains why. Configurations that fail
  // are excluded from grid search, like the paper's OOM bars.
  bool feasible = true;
  std::string failure;

  int64_t iterations = 0;
  int64_t real_tokens = 0;
  double train_time_ms = 0.0;
  double planning_time_ms = 0.0;
  mb::PaddingStats padding;
  std::vector<IterationRecord> records;
  int64_t deadlocks = 0;
  int64_t ooms = 0;

  double tokens_per_second() const {
    return train_time_ms <= 0.0 ? 0.0 : static_cast<double>(real_tokens) /
                                            (train_time_ms / 1000.0);
  }
};

class Trainer {
 public:
  Trainer(const model::ModelConfig& config, const model::HardwareSpec& hw,
          const model::ParallelConfig& parallel,
          const cost::ProfileOptions& profile_options = {});

  // DynaPipe planning path.
  EpochResult RunEpoch(const data::Dataset& dataset, const PlannerOptions& planner,
                       const TrainerOptions& options);

  // MLM+DS-style baseline path.
  EpochResult RunEpochBaseline(const data::Dataset& dataset,
                               const BaselineOptions& baseline,
                               const TrainerOptions& options);

  const cost::PipelineCostModel& cost_model() const { return cost_model_; }
  const model::ParallelConfig& parallel() const { return parallel_; }

 private:
  using PlanFn = std::function<IterationPlan(const std::vector<data::Sample>&)>;

  EpochResult RunEpochImpl(const data::Dataset& dataset, const TrainerOptions& options,
                           const PlanFn& plan_fn);

  model::ModelConfig config_;
  model::HardwareSpec hw_;
  model::ParallelConfig parallel_;
  cost::PipelineCostModel cost_model_;
};

}  // namespace dynapipe::runtime

#endif  // DYNAPIPE_SRC_RUNTIME_TRAINER_H_
