#include "src/runtime/planner.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "src/comm/comm_planner.h"
#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/common/timing.h"
#include "src/mb/karmarkar_karp.h"
#include "src/schedule/adaptive_scheduler.h"
#include "src/schedule/one_f_one_b.h"
#include "src/schedule/reorder.h"

namespace dynapipe::runtime {
namespace {

// Uncached cost-oracle adapter for the DP partitioner: bottleneck-stage time and
// the worst per-stage activation footprint. The seed path; kept for
// PlannerOptions::cost_cache = false (benchmark baselines, equivalence tests).
class PipelineCostAdapter : public mb::MicroBatchCostFn {
 public:
  PipelineCostAdapter(const cost::PipelineCostModel& cm, model::RecomputeMode mode)
      : cm_(cm), mode_(mode) {}

  double TimeMs(const model::MicroBatchShape& shape) const override {
    return cm_.MicroBatchTimeMs(shape, mode_);
  }
  double ActivationMb(const model::MicroBatchShape& shape) const override {
    return cm_.MaxActivationMb(shape, mode_);
  }

 private:
  const cost::PipelineCostModel& cm_;
  model::RecomputeMode mode_;
};

struct ReplicaBuild {
  bool feasible = false;
  std::string reason;
  ReplicaPlan plan;
  double makespan_ms = 0.0;
  std::vector<double> peak_mb;  // per stage, static + activation
};

// Assembles schedule + timeline + communication plan for one replica's
// micro-batches. `adaptive` false gives uniform 1F1B; `naive_comm` true gives the
// baseline send-at-production/recv-at-use plan with fused crossing pairs.
ReplicaBuild BuildReplica(const cost::PipelineCostModel& cm,
                          std::vector<mb::MicroBatch> mbs,
                          model::RecomputeMode mode, bool adaptive, bool reorder,
                          int32_t reorder_clusters, bool naive_comm) {
  ReplicaBuild out;
  const int32_t c = cm.num_stages();
  const int32_t m = static_cast<int32_t>(mbs.size());

  std::vector<double> device_limits(static_cast<size_t>(c));
  for (int32_t s = 0; s < c; ++s) {
    device_limits[static_cast<size_t>(s)] =
        cm.hw().usable_memory_mb() - cm.StaticMemoryMb(s);
    if (device_limits[static_cast<size_t>(s)] <= 0.0) {
      out.reason = "static model state exceeds device memory on stage " +
                   std::to_string(s);
      return out;
    }
  }

  out.peak_mb.resize(static_cast<size_t>(c));
  for (int32_t s = 0; s < c; ++s) {
    out.peak_mb[static_cast<size_t>(s)] = cm.StaticMemoryMb(s);
  }
  if (m == 0) {  // replica idles this iteration
    out.feasible = true;
    out.plan.exec_plan.devices.resize(static_cast<size_t>(c));
    for (int32_t s = 0; s < c; ++s) {
      out.plan.exec_plan.devices[static_cast<size_t>(s)].device = s;
    }
    return out;
  }

  schedule::OpCosts costs;
  costs.fwd_ms.assign(static_cast<size_t>(c),
                      std::vector<double>(static_cast<size_t>(m)));
  costs.bwd_ms = costs.fwd_ms;
  costs.act_mb = costs.fwd_ms;
  std::vector<model::MicroBatchShape> shapes(static_cast<size_t>(m));
  std::vector<double> mb_time(static_cast<size_t>(m), 0.0);
  for (int32_t k = 0; k < m; ++k) {
    shapes[static_cast<size_t>(k)] = mbs[static_cast<size_t>(k)].shape;
  }
  // The per-stage profile walks (StageFwdMs/StageBwdMs/StageActivationMb) are
  // the schedule phase's dominant cost, and micro-batches from runs of
  // equal-length samples share padded shapes — query each distinct shape once
  // per stage and fan the values out.
  std::vector<size_t> distinct_of(static_cast<size_t>(m));
  std::vector<model::MicroBatchShape> distinct;
  {
    std::unordered_map<uint64_t, size_t> seen;
    seen.reserve(static_cast<size_t>(m));
    for (int32_t k = 0; k < m; ++k) {
      const model::MicroBatchShape& shape = shapes[static_cast<size_t>(k)];
      // Lengths are < 2^24 and counts < 2^16, so the pack is collision-free.
      const uint64_t key = (static_cast<uint64_t>(shape.num_samples) << 48) |
                           (static_cast<uint64_t>(shape.input_len) << 24) |
                           static_cast<uint64_t>(shape.target_len);
      const auto [it, inserted] = seen.emplace(key, distinct.size());
      if (inserted) {
        distinct.push_back(shape);
      }
      distinct_of[static_cast<size_t>(k)] = it->second;
    }
  }
  std::vector<double> d_fwd(distinct.size());
  std::vector<double> d_bwd(distinct.size());
  std::vector<double> d_act(distinct.size());
  for (int32_t s = 0; s < c; ++s) {
    const size_t ss = static_cast<size_t>(s);
    for (size_t u = 0; u < distinct.size(); ++u) {
      d_fwd[u] = cm.StageFwdMs(s, distinct[u]);
      d_bwd[u] = cm.StageBwdMs(s, distinct[u], mode);
      d_act[u] = cm.StageActivationMb(s, distinct[u], mode);
    }
    for (int32_t k = 0; k < m; ++k) {
      const size_t sk = static_cast<size_t>(k);
      const size_t u = distinct_of[sk];
      costs.fwd_ms[ss][sk] = d_fwd[u];
      costs.bwd_ms[ss][sk] = d_bwd[u];
      costs.act_mb[ss][sk] = d_act[u];
      mb_time[sk] = std::max(mb_time[sk], d_fwd[u] + d_bwd[u]);
    }
  }

  auto boundary_bytes = [&](int32_t stage, int32_t k) {
    return cm.BoundaryBytes(stage, shapes[static_cast<size_t>(k)]);
  };
  schedule::ExecutorSimOptions sim_opts;
  sim_opts.comm_delay_ms = [&cm, shapes](int32_t from, int32_t to, int32_t k,
                                         bool /*backward*/) {
    const int32_t boundary = std::min(from, to);
    return cm.TransferMs(from, to,
                         cm.BoundaryBytes(boundary, shapes[static_cast<size_t>(k)]));
  };

  schedule::PipelineSchedule sched;
  if (adaptive) {
    if (reorder && m > 1) {
      schedule::ReorderOptions ro;
      ro.num_clusters = reorder_clusters;
      ro.device_limit_mb = device_limits;
      ro.sim_options = sim_opts;
      schedule::ReorderResult rr = schedule::ReorderMicroBatches(costs, mb_time, ro);
      if (!rr.feasible) {
        out.reason = "adaptive scheduling infeasible under memory limits";
        return out;
      }
      sched = std::move(rr.schedule);
    } else {
      schedule::AdaptiveScheduleOptions ao;
      ao.device_limit_mb = device_limits;
      auto maybe = schedule::MemoryAwareAdaptiveSchedule(costs, ao);
      if (!maybe.has_value()) {
        out.reason = "adaptive scheduling infeasible under memory limits";
        return out;
      }
      sched = std::move(*maybe);
    }
  } else {
    sched = schedule::OneFOneBSchedule(m, c);
    const std::vector<double> high_water =
        schedule::ScheduleMemoryHighWater(sched, costs);
    for (int32_t s = 0; s < c; ++s) {
      if (high_water[static_cast<size_t>(s)] > device_limits[static_cast<size_t>(s)]) {
        out.reason = "1F1B activation high-water exceeds memory on stage " +
                     std::to_string(s);
        return out;
      }
    }
  }

  out.plan.timeline = schedule::SimulateSchedule(sched, costs, sim_opts);
  out.makespan_ms = out.plan.timeline.makespan_ms;
  for (int32_t s = 0; s < c; ++s) {
    out.peak_mb[static_cast<size_t>(s)] +=
        out.plan.timeline.device_peak_mb[static_cast<size_t>(s)];
  }

  comm::CommPlannerInputs inputs;
  inputs.schedule = &sched;
  inputs.timeline = &out.plan.timeline;
  inputs.shapes = shapes;
  inputs.boundary_bytes = boundary_bytes;
  inputs.recompute = mode;
  out.plan.exec_plan = naive_comm ? comm::PlanCommunicationNaive(inputs)
                                  : comm::PlanCommunication(inputs);
  out.plan.schedule = std::move(sched);
  out.plan.micro_batches = std::move(mbs);
  out.feasible = true;
  return out;
}

// Decoder-only models train on one concatenated sequence per sample (prompt +
// response), so fold target tokens into the input length; otherwise the planner
// would count tokens the compute model never processes.
std::vector<data::Sample> CanonicalizeForArch(const model::ModelConfig& config,
                                              std::vector<data::Sample> samples) {
  if (config.arch != model::ModelArch::kGpt) {
    return samples;
  }
  for (auto& s : samples) {
    s.input_len += s.target_len;
    s.target_len = 0;
  }
  return samples;
}

// Splits micro-batches across replicas with Karmarkar–Karp on predicted times,
// preserving DP output order within each replica.
std::vector<std::vector<mb::MicroBatch>> BalanceReplicas(
    std::vector<mb::MicroBatch> mbs, int32_t dp) {
  std::vector<double> weights;
  weights.reserve(mbs.size());
  for (const auto& m : mbs) {
    weights.push_back(m.predicted_time_ms);
  }
  mb::BalanceResult balance = mb::KarmarkarKarp(weights, dp);
  std::vector<std::vector<mb::MicroBatch>> out(static_cast<size_t>(dp));
  for (size_t d = 0; d < balance.groups.size(); ++d) {
    std::sort(balance.groups[d].begin(), balance.groups[d].end());
    for (const int32_t idx : balance.groups[d]) {
      out[d].push_back(std::move(mbs[static_cast<size_t>(idx)]));
    }
  }
  return out;
}

}  // namespace

int32_t IterationPlan::total_microbatches() const {
  int32_t total = 0;
  for (const auto& r : replicas) {
    total += static_cast<int32_t>(r.micro_batches.size());
  }
  return total;
}

IterationPlanner::IterationPlanner(const cost::PipelineCostModel& cost_model,
                                   PlannerOptions options)
    : cm_(cost_model), options_(std::move(options)),
      oracle_(options_.cost_cache
                  ? std::make_unique<cost::CachedCostOracle>(cost_model)
                  : nullptr) {}

IterationPlan IterationPlanner::PlanWithRecompute(
    const std::vector<data::Sample>& ordered, model::RecomputeMode mode) const {
  IterationPlan plan;
  plan.recompute = mode;
  plan.stats.recompute_modes_tried = 1;
  const int32_t c = cm_.num_stages();
  const int32_t dp = cm_.parallel().dp;

  const double budget = cm_.ActivationBudgetMb();
  if (budget <= 0.0) {
    plan.infeasible_reason = "model static state exceeds device memory";
    return plan;
  }
  // Per-micro-batch memory cap inside the DP (§4 "Limit memory consumption"): 1F1B
  // accumulates up to c in-flight micro-batches so each gets budget/c; the adaptive
  // schedule delays injection on demand, so a single micro-batch may use the whole
  // budget (factors 1/c .. 1 in the paper).
  const double per_mb_limit =
      options_.adaptive_schedule ? budget : budget / static_cast<double>(c);

  const PipelineCostAdapter plain_adapter(cm_, mode);
  std::optional<CachedCostAdapter> cached_adapter;
  if (oracle_ != nullptr) {
    cached_adapter.emplace(*oracle_, mode);
  }
  const mb::MicroBatchCostFn& adapter =
      cached_adapter.has_value()
          ? static_cast<const mb::MicroBatchCostFn&>(*cached_adapter)
          : plain_adapter;
  mb::DpPartitionerOptions dp_opts;
  dp_opts.num_stages = c;
  dp_opts.num_replicas = dp;
  dp_opts.activation_limit_mb = per_mb_limit;
  dp_opts.max_microbatch_size = options_.max_microbatch_size;
  dp_opts.tmax_interval_ms = options_.tmax_interval_ms;
  dp_opts.max_tmax_candidates = options_.max_tmax_candidates;
  dp_opts.pool = options_.pool;
  mb::DpPartitioner partitioner(adapter, dp_opts);
  const auto partition_start = SteadyClock::now();
  mb::PartitionResult part = partitioner.Partition(ordered);
  plan.stats.partition_ms = ElapsedMs(partition_start);
  plan.stats.cost_cache_hits = part.stats.cost_cache_hits;
  plan.stats.cost_cache_misses = part.stats.cost_cache_misses;
  if (!part.feasible) {
    plan.infeasible_reason = "no micro-batch partition fits the memory limit";
    return plan;
  }
  plan.padding = mb::ComputePaddingStats(part.micro_batches);
  const auto schedule_start = SteadyClock::now();

  std::vector<std::vector<mb::MicroBatch>> replica_mbs =
      BalanceReplicas(std::move(part.micro_batches), dp);

  plan.predicted_peak_mb.assign(static_cast<size_t>(c), 0.0);
  for (auto& mbs : replica_mbs) {
    ReplicaBuild rb = BuildReplica(cm_, std::move(mbs), mode,
                                   options_.adaptive_schedule,
                                   options_.reorder_microbatches,
                                   options_.reorder_clusters, /*naive_comm=*/false);
    if (!rb.feasible) {
      plan.infeasible_reason = rb.reason;
      plan.replicas.clear();
      return plan;
    }
    plan.predicted_iteration_ms = std::max(plan.predicted_iteration_ms, rb.makespan_ms);
    for (int32_t s = 0; s < c; ++s) {
      plan.predicted_peak_mb[static_cast<size_t>(s)] =
          std::max(plan.predicted_peak_mb[static_cast<size_t>(s)],
                   rb.peak_mb[static_cast<size_t>(s)]);
    }
    plan.replicas.push_back(std::move(rb.plan));
  }
  plan.stats.schedule_ms = ElapsedMs(schedule_start);
  plan.feasible = true;
  return plan;
}

IterationPlan IterationPlanner::PlanIteration(
    const std::vector<data::Sample>& minibatch) const {
  const auto start = SteadyClock::now();
  const std::vector<data::Sample> ordered = mb::OrderSamples(
      CanonicalizeForArch(cm_.config(), minibatch), options_.ordering);
  const double order_ms = ElapsedMs(start);

  std::vector<model::RecomputeMode> modes;
  if (options_.dynamic_recompute) {
    modes = {model::RecomputeMode::kNone, model::RecomputeMode::kSelective,
             model::RecomputeMode::kFull};
  } else {
    modes = {options_.static_recompute};
  }

  // Recompute modes are independent end-to-end plans over the same ordered
  // samples, so they fan out over the pool into per-mode slots. (Each mode's
  // t_max sweep nests another fan-out on the same pool — safe, see
  // ParallelFor.) The serial merge below prefers strictly faster plans in mode
  // order, which is exactly the seed's serial-loop tie-breaking: kNone beats an
  // equally fast kSelective beats an equally fast kFull.
  std::vector<IterationPlan> outcomes(modes.size());
  ParallelFor(options_.pool, modes.size(), [&](size_t i) {
    outcomes[i] = PlanWithRecompute(ordered, modes[i]);
  });

  IterationPlan best;
  best.predicted_iteration_ms = std::numeric_limits<double>::infinity();
  PlanningStats stats;
  stats.order_ms = order_ms;
  for (auto& candidate : outcomes) {
    stats.partition_ms += candidate.stats.partition_ms;
    stats.schedule_ms += candidate.stats.schedule_ms;
    stats.cost_cache_hits += candidate.stats.cost_cache_hits;
    stats.cost_cache_misses += candidate.stats.cost_cache_misses;
    stats.recompute_modes_tried += candidate.stats.recompute_modes_tried;
    if (candidate.feasible &&
        candidate.predicted_iteration_ms < best.predicted_iteration_ms) {
      best = std::move(candidate);
    } else if (!candidate.feasible && !best.feasible &&
               best.infeasible_reason.empty()) {
      best.infeasible_reason = candidate.infeasible_reason;
    }
  }
  if (!best.feasible) {
    best.predicted_iteration_ms = 0.0;
  }
  best.stats = stats;
  best.planning_time_ms = ElapsedMs(start);
  return best;
}

IterationPlan PlanBaselineIteration(const cost::PipelineCostModel& cost_model,
                                    const BaselineOptions& options,
                                    const std::vector<data::Sample>& raw_minibatch) {
  const auto start = SteadyClock::now();
  const std::vector<data::Sample> minibatch =
      CanonicalizeForArch(cost_model.config(), raw_minibatch);
  IterationPlan plan;
  plan.recompute = options.recompute;
  const int32_t c = cost_model.num_stages();
  const int32_t dp = cost_model.parallel().dp;
  const bool is_t5 = cost_model.config().arch == model::ModelArch::kT5;
  const int32_t max_target =
      options.max_target_len > 0
          ? options.max_target_len
          : (is_t5 ? std::max(1, options.max_input_len / 4) : 0);

  std::vector<mb::MicroBatch> all_mbs;
  switch (options.batching) {
    case BaselineBatching::kPacking: {
      baselines::PackingOptions po;
      po.max_input_len = options.max_input_len;
      po.max_target_len = max_target;
      all_mbs = baselines::PackedMicroBatches(baselines::PackSamples(minibatch, po),
                                              options.microbatch_size,
                                              options.max_input_len,
                                              is_t5 ? max_target : 0);
      break;
    }
    case BaselineBatching::kTokenBased:
    case BaselineBatching::kFixedSize: {
      std::vector<data::Sample> truncated;
      truncated.reserve(minibatch.size());
      for (const auto& s : minibatch) {
        truncated.push_back(data::Truncate(s, options.max_input_len, max_target));
      }
      std::vector<data::Sample> ordered =
          mb::OrderSamples(std::move(truncated), options.ordering);
      all_mbs = options.batching == BaselineBatching::kTokenBased
                    ? baselines::TokenBasedMicroBatches(ordered,
                                                        options.tokens_per_microbatch)
                    : baselines::FixedSizeMicroBatches(ordered,
                                                       options.microbatch_size);
      break;
    }
    case BaselineBatching::kNaivePadding: {
      std::vector<data::Sample> truncated;
      truncated.reserve(minibatch.size());
      for (const auto& s : minibatch) {
        truncated.push_back(data::Truncate(s, options.max_input_len, max_target));
      }
      all_mbs = baselines::NaivePaddingMicroBatches(truncated, options.microbatch_size);
      break;
    }
  }
  plan.padding = mb::ComputePaddingStats(all_mbs);

  // MLM+DS splits the global batch evenly: round-robin micro-batches to replicas.
  std::vector<std::vector<mb::MicroBatch>> replica_mbs(static_cast<size_t>(dp));
  for (size_t k = 0; k < all_mbs.size(); ++k) {
    replica_mbs[k % static_cast<size_t>(dp)].push_back(std::move(all_mbs[k]));
  }

  plan.predicted_peak_mb.assign(static_cast<size_t>(c), 0.0);
  for (auto& mbs : replica_mbs) {
    ReplicaBuild rb =
        BuildReplica(cost_model, std::move(mbs), options.recompute,
                     /*adaptive=*/false, /*reorder=*/false, /*reorder_clusters=*/1,
                     /*naive_comm=*/true);
    if (!rb.feasible) {
      plan.infeasible_reason = rb.reason;
      plan.replicas.clear();
      plan.planning_time_ms = ElapsedMs(start);
      return plan;
    }
    plan.predicted_iteration_ms = std::max(plan.predicted_iteration_ms, rb.makespan_ms);
    for (int32_t s = 0; s < c; ++s) {
      plan.predicted_peak_mb[static_cast<size_t>(s)] =
          std::max(plan.predicted_peak_mb[static_cast<size_t>(s)],
                   rb.peak_mb[static_cast<size_t>(s)]);
    }
    plan.replicas.push_back(std::move(rb.plan));
  }
  plan.feasible = true;
  plan.planning_time_ms = ElapsedMs(start);
  return plan;
}

}  // namespace dynapipe::runtime
