#include "src/runtime/planner.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "src/comm/comm_planner.h"
#include "src/common/check.h"
#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/common/timing.h"
#include "src/mb/karmarkar_karp.h"
#include "src/schedule/adaptive_scheduler.h"
#include "src/schedule/one_f_one_b.h"
#include "src/schedule/reorder.h"

namespace dynapipe::runtime {
namespace {

// FNV-1a-style fold for cache-context fingerprints (local: runtime/ must not
// reach into service/'s hash helpers).
constexpr uint64_t kCtxBasis = 1469598103934665603ull;
uint64_t CtxMix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}
uint64_t CtxMixDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return CtxMix(h, bits);
}
uint64_t CtxMixString(uint64_t h, const std::string& s) {
  h = CtxMix(h, s.size());
  for (const char ch : s) {
    h = CtxMix(h, static_cast<uint64_t>(static_cast<unsigned char>(ch)));
  }
  return h;
}

// Process-wide incremental-planning instruments, resolved once (see
// OBSERVABILITY.md's cached-reference discipline).
struct PlannerMetrics {
  common::Counter& prefix_hits;
  common::Counter& prefix_misses;
  common::Counter& warmstart_pruned;

  static PlannerMetrics& Get() {
    static PlannerMetrics m = [] {
      common::MetricsRegistry& r = common::MetricsRegistry::Instance();
      return PlannerMetrics{r.GetCounter("planner_prefix_cache_hits_total"),
                            r.GetCounter("planner_prefix_cache_misses_total"),
                            r.GetCounter("planner_warmstart_pruned_total")};
    }();
    return m;
  }
};

// Uncached cost-oracle adapter for the DP partitioner: bottleneck-stage time and
// the worst per-stage activation footprint. The seed path; kept for
// PlannerOptions::cost_cache = false (benchmark baselines, equivalence tests).
class PipelineCostAdapter : public mb::MicroBatchCostFn {
 public:
  PipelineCostAdapter(const cost::PipelineCostModel& cm, model::RecomputeMode mode)
      : cm_(cm), mode_(mode) {}

  double TimeMs(const model::MicroBatchShape& shape) const override {
    return cm_.MicroBatchTimeMs(shape, mode_);
  }
  double ActivationMb(const model::MicroBatchShape& shape) const override {
    return cm_.MaxActivationMb(shape, mode_);
  }

 private:
  const cost::PipelineCostModel& cm_;
  model::RecomputeMode mode_;
};

struct ReplicaBuild {
  bool feasible = false;
  std::string reason;
  ReplicaPlan plan;
  double makespan_ms = 0.0;
  std::vector<double> peak_mb;  // per stage, static + activation
};

// Assembles schedule + timeline + communication plan for one replica's
// micro-batches. `adaptive` false gives uniform 1F1B; `naive_comm` true gives the
// baseline send-at-production/recv-at-use plan with fused crossing pairs.
// `stage_cache` (optional) memoizes the per-(stage, shape) profile walks
// across iterations under `stage_context`; hit/miss deltas are accumulated
// into the counters when given.
ReplicaBuild BuildReplica(const cost::PipelineCostModel& cm,
                          std::vector<mb::MicroBatch> mbs,
                          model::RecomputeMode mode, bool adaptive, bool reorder,
                          int32_t reorder_clusters, bool naive_comm,
                          cost::StageCostCache* stage_cache = nullptr,
                          uint64_t stage_context = 0,
                          std::atomic<int64_t>* stage_hits = nullptr,
                          std::atomic<int64_t>* stage_misses = nullptr) {
  ReplicaBuild out;
  const int32_t c = cm.num_stages();
  const int32_t m = static_cast<int32_t>(mbs.size());

  std::vector<double> device_limits(static_cast<size_t>(c));
  for (int32_t s = 0; s < c; ++s) {
    device_limits[static_cast<size_t>(s)] =
        cm.hw().usable_memory_mb() - cm.StaticMemoryMb(s);
    if (device_limits[static_cast<size_t>(s)] <= 0.0) {
      out.reason = "static model state exceeds device memory on stage " +
                   std::to_string(s);
      return out;
    }
  }

  out.peak_mb.resize(static_cast<size_t>(c));
  for (int32_t s = 0; s < c; ++s) {
    out.peak_mb[static_cast<size_t>(s)] = cm.StaticMemoryMb(s);
  }
  if (m == 0) {  // replica idles this iteration
    out.feasible = true;
    out.plan.exec_plan.devices.resize(static_cast<size_t>(c));
    for (int32_t s = 0; s < c; ++s) {
      out.plan.exec_plan.devices[static_cast<size_t>(s)].device = s;
    }
    return out;
  }

  std::vector<model::MicroBatchShape> shapes(static_cast<size_t>(m));
  for (int32_t k = 0; k < m; ++k) {
    shapes[static_cast<size_t>(k)] = mbs[static_cast<size_t>(k)].shape;
  }
  // The per-stage profile walks (StageFwdMs/StageBwdMs/StageActivationMb) are
  // the schedule phase's dominant cost. BuildOpCosts dedups shapes so each
  // distinct one is priced once per stage; the stage cache additionally
  // carries those sub-results across iterations (values are deterministic
  // per key, so cached plans stay bit-identical).
  schedule::OpCostsBuild built = schedule::BuildOpCosts(
      c, shapes,
      [&](int32_t s, const model::MicroBatchShape& shape, double* fwd,
          double* bwd, double* act) {
        cost::StageCostCache::Entry e;
        if (stage_cache != nullptr &&
            stage_cache->Lookup(stage_context, s, shape, mode, &e)) {
          if (stage_hits != nullptr) {
            stage_hits->fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          e.fwd_ms = cm.StageFwdMs(s, shape);
          e.bwd_ms = cm.StageBwdMs(s, shape, mode);
          e.act_mb = cm.StageActivationMb(s, shape, mode);
          if (stage_cache != nullptr) {
            stage_cache->Insert(stage_context, s, shape, mode, e);
            if (stage_misses != nullptr) {
              stage_misses->fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        *fwd = e.fwd_ms;
        *bwd = e.bwd_ms;
        *act = e.act_mb;
      });
  schedule::OpCosts& costs = built.costs;
  std::vector<double>& mb_time = built.mb_time;

  auto boundary_bytes = [&](int32_t stage, int32_t k) {
    return cm.BoundaryBytes(stage, shapes[static_cast<size_t>(k)]);
  };
  schedule::ExecutorSimOptions sim_opts;
  sim_opts.comm_delay_ms = [&cm, shapes](int32_t from, int32_t to, int32_t k,
                                         bool /*backward*/) {
    const int32_t boundary = std::min(from, to);
    return cm.TransferMs(from, to,
                         cm.BoundaryBytes(boundary, shapes[static_cast<size_t>(k)]));
  };

  schedule::PipelineSchedule sched;
  if (adaptive) {
    if (reorder && m > 1) {
      schedule::ReorderOptions ro;
      ro.num_clusters = reorder_clusters;
      ro.device_limit_mb = device_limits;
      ro.sim_options = sim_opts;
      schedule::ReorderResult rr = schedule::ReorderMicroBatches(costs, mb_time, ro);
      if (!rr.feasible) {
        out.reason = "adaptive scheduling infeasible under memory limits";
        return out;
      }
      sched = std::move(rr.schedule);
    } else {
      schedule::AdaptiveScheduleOptions ao;
      ao.device_limit_mb = device_limits;
      auto maybe = schedule::MemoryAwareAdaptiveSchedule(costs, ao);
      if (!maybe.has_value()) {
        out.reason = "adaptive scheduling infeasible under memory limits";
        return out;
      }
      sched = std::move(*maybe);
    }
  } else {
    sched = schedule::OneFOneBSchedule(m, c);
    const std::vector<double> high_water =
        schedule::ScheduleMemoryHighWater(sched, costs);
    for (int32_t s = 0; s < c; ++s) {
      if (high_water[static_cast<size_t>(s)] > device_limits[static_cast<size_t>(s)]) {
        out.reason = "1F1B activation high-water exceeds memory on stage " +
                     std::to_string(s);
        return out;
      }
    }
  }

  out.plan.timeline = schedule::SimulateSchedule(sched, costs, sim_opts);
  out.makespan_ms = out.plan.timeline.makespan_ms;
  for (int32_t s = 0; s < c; ++s) {
    out.peak_mb[static_cast<size_t>(s)] +=
        out.plan.timeline.device_peak_mb[static_cast<size_t>(s)];
  }

  comm::CommPlannerInputs inputs;
  inputs.schedule = &sched;
  inputs.timeline = &out.plan.timeline;
  inputs.shapes = shapes;
  inputs.boundary_bytes = boundary_bytes;
  inputs.recompute = mode;
  out.plan.exec_plan = naive_comm ? comm::PlanCommunicationNaive(inputs)
                                  : comm::PlanCommunication(inputs);
  out.plan.schedule = std::move(sched);
  out.plan.micro_batches = std::move(mbs);
  out.feasible = true;
  return out;
}

// Decoder-only models train on one concatenated sequence per sample (prompt +
// response), so fold target tokens into the input length; otherwise the planner
// would count tokens the compute model never processes.
std::vector<data::Sample> CanonicalizeForArch(const model::ModelConfig& config,
                                              std::vector<data::Sample> samples) {
  if (config.arch != model::ModelArch::kGpt) {
    return samples;
  }
  for (auto& s : samples) {
    s.input_len += s.target_len;
    s.target_len = 0;
  }
  return samples;
}

// Splits micro-batches across replicas with Karmarkar–Karp on predicted times,
// preserving DP output order within each replica.
std::vector<std::vector<mb::MicroBatch>> BalanceReplicas(
    std::vector<mb::MicroBatch> mbs, int32_t dp) {
  std::vector<double> weights;
  weights.reserve(mbs.size());
  for (const auto& m : mbs) {
    weights.push_back(m.predicted_time_ms);
  }
  mb::BalanceResult balance = mb::KarmarkarKarp(weights, dp);
  std::vector<std::vector<mb::MicroBatch>> out(static_cast<size_t>(dp));
  for (size_t d = 0; d < balance.groups.size(); ++d) {
    std::sort(balance.groups[d].begin(), balance.groups[d].end());
    for (const int32_t idx : balance.groups[d]) {
      out[d].push_back(std::move(mbs[static_cast<size_t>(idx)]));
    }
  }
  return out;
}

}  // namespace

int32_t IterationPlan::total_microbatches() const {
  int32_t total = 0;
  for (const auto& r : replicas) {
    total += static_cast<int32_t>(r.micro_batches.size());
  }
  return total;
}

std::optional<std::vector<int32_t>> WarmStartBook::Lookup(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = book_.find(key);
  if (it == book_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void WarmStartBook::Update(uint64_t key, std::vector<int32_t> widths) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = book_.find(key);
  if (it != book_.end()) {
    it->second = std::move(widths);
    return;
  }
  if (book_.size() >= kMaxEntries) {
    return;  // bounded hint store: dropping a seed only costs pruning power
  }
  book_.emplace(key, std::move(widths));
}

IterationPlanner::IterationPlanner(const cost::PipelineCostModel& cost_model,
                                   PlannerOptions options)
    : cm_(cost_model), options_(std::move(options)) {
  if (options_.cost_oracle != nullptr) {
    oracle_ = options_.cost_oracle;
  } else if (options_.cost_cache) {
    oracle_ = std::make_shared<cost::CachedCostOracle>(cost_model);
  }
  if (options_.incremental_planning) {
    prefix_cache_ = options_.prefix_cache != nullptr
                        ? options_.prefix_cache
                        : std::make_shared<mb::PrefixWindowCache>();
    stage_cache_ = options_.stage_cost_cache != nullptr
                       ? options_.stage_cost_cache
                       : std::make_shared<cost::StageCostCache>();
    // Cache-context fingerprint: everything a window table or stage cost
    // depends on. Config + parallelism pin the architecture; the probe
    // queries pin the *profile tables* (two models with the same config but
    // different measured costs produce different probe values), so shared
    // caches can never leak entries across cost models.
    uint64_t h = kCtxBasis;
    const model::ModelConfig& config = cm_.config();
    h = CtxMix(h, static_cast<uint64_t>(config.arch));
    h = CtxMixString(h, config.name);
    h = CtxMix(h, static_cast<uint64_t>(config.num_layers));
    h = CtxMix(h, static_cast<uint64_t>(config.hidden_dim));
    h = CtxMix(h, static_cast<uint64_t>(cm_.parallel().dp));
    h = CtxMix(h, static_cast<uint64_t>(cm_.parallel().tp));
    h = CtxMix(h, static_cast<uint64_t>(cm_.parallel().pp));
    h = CtxMix(h, static_cast<uint64_t>(cm_.num_stages()));
    h = CtxMixDouble(h, cm_.ActivationBudgetMb());
    model::MicroBatchShape probe;
    probe.num_samples = 1;
    probe.input_len = 64;
    probe.target_len = config.arch == model::ModelArch::kT5 ? 16 : 0;
    h = CtxMixDouble(h, cm_.MicroBatchTimeMs(probe, model::RecomputeMode::kNone));
    h = CtxMixDouble(h, cm_.MaxActivationMb(probe, model::RecomputeMode::kFull));
    h = CtxMix(h, static_cast<uint64_t>(options_.max_microbatch_size));
    h = CtxMixDouble(h, options_.tmax_interval_ms);
    h = CtxMix(h, static_cast<uint64_t>(options_.max_tmax_candidates));
    h = CtxMix(h, static_cast<uint64_t>(options_.ordering));
    incremental_context_ = h;
  }
}

uint64_t IterationPlanner::ModeContext(model::RecomputeMode mode,
                                       double per_mb_limit) const {
  // The window table additionally depends on the recompute mode and the
  // per-micro-batch activation cap (which folds adaptive_schedule and the
  // stage count); everything else is in incremental_context_.
  uint64_t h = CtxMix(incremental_context_, static_cast<uint64_t>(mode));
  return CtxMixDouble(h, per_mb_limit);
}

void IterationPlanner::InvalidateIncrementalCaches() const {
  if (prefix_cache_ != nullptr) {
    prefix_cache_->Invalidate();
  }
  if (stage_cache_ != nullptr) {
    stage_cache_->Invalidate();
  }
  std::lock_guard<std::mutex> lock(warm_mu_);
  for (auto& w : warm_widths_) {
    w.clear();
  }
}

IterationPlan IterationPlanner::PlanWithRecompute(
    const std::vector<data::Sample>& ordered, model::RecomputeMode mode,
    const PlanSeed* seed) const {
  IterationPlan plan;
  plan.recompute = mode;
  plan.stats.recompute_modes_tried = 1;
  const int32_t c = cm_.num_stages();
  const int32_t dp = cm_.parallel().dp;

  const double budget = cm_.ActivationBudgetMb();
  if (budget <= 0.0) {
    plan.infeasible_reason = "model static state exceeds device memory";
    return plan;
  }
  // Per-micro-batch memory cap inside the DP (§4 "Limit memory consumption"): 1F1B
  // accumulates up to c in-flight micro-batches so each gets budget/c; the adaptive
  // schedule delays injection on demand, so a single micro-batch may use the whole
  // budget (factors 1/c .. 1 in the paper).
  const double per_mb_limit =
      options_.adaptive_schedule ? budget : budget / static_cast<double>(c);

  const PipelineCostAdapter plain_adapter(cm_, mode);
  std::optional<CachedCostAdapter> cached_adapter;
  if (oracle_ != nullptr) {
    cached_adapter.emplace(*oracle_, mode);
  }
  const mb::MicroBatchCostFn& adapter =
      cached_adapter.has_value()
          ? static_cast<const mb::MicroBatchCostFn&>(*cached_adapter)
          : plain_adapter;
  mb::DpPartitionerOptions dp_opts;
  dp_opts.num_stages = c;
  dp_opts.num_replicas = dp;
  dp_opts.activation_limit_mb = per_mb_limit;
  dp_opts.max_microbatch_size = options_.max_microbatch_size;
  dp_opts.tmax_interval_ms = options_.tmax_interval_ms;
  dp_opts.max_tmax_candidates = options_.max_tmax_candidates;
  dp_opts.pool = options_.pool;
  // Incremental planning: reuse window-table prefixes across iterations and
  // warm-start the t_max sweep from (a) this planner's previous solution for
  // the same recompute mode, (b) the caller's near-miss seed, (c) the grid
  // search's cross-config book. Seeds are pruning bounds only, so order does
  // not matter for the result — the partitioner takes the min over all.
  if (prefix_cache_ != nullptr) {
    dp_opts.prefix_cache = prefix_cache_.get();
    dp_opts.prefix_cache_context = ModeContext(mode, per_mb_limit);
    dp_opts.dedup_window_rows = true;
    std::lock_guard<std::mutex> lock(warm_mu_);
    const std::vector<int32_t>& prev = warm_widths_[static_cast<size_t>(mode)];
    if (!prev.empty()) {
      dp_opts.warm_start_seeds.push_back(prev);
    }
  }
  if (seed != nullptr && !seed->partition_widths.empty()) {
    dp_opts.warm_start_seeds.push_back(seed->partition_widths);
  }
  uint64_t warm_key = 0;
  if (options_.warm_book != nullptr) {
    // Keyed by (mode, exact ordered lengths) only — deliberately *not* by the
    // model/parallel fingerprint, so neighboring grid-search configs planning
    // the same mini-batch share seeds. Safe: seeds are revalidated bounds.
    uint64_t h = CtxMix(kCtxBasis, static_cast<uint64_t>(mode));
    h = CtxMix(h, static_cast<uint64_t>(ordered.size()));
    for (const data::Sample& s : ordered) {
      h = CtxMix(h, mb::PackedSampleLength(s));
    }
    warm_key = h;
    std::optional<std::vector<int32_t>> hint = options_.warm_book->Lookup(warm_key);
    if (hint.has_value() && !hint->empty()) {
      dp_opts.warm_start_seeds.push_back(std::move(*hint));
    }
  }
  mb::DpPartitioner partitioner(adapter, dp_opts);
  const auto partition_start = SteadyClock::now();
  mb::PartitionResult part = partitioner.Partition(ordered);
  plan.stats.partition_ms = ElapsedMs(partition_start);
  plan.stats.cost_cache_hits = part.stats.cost_cache_hits;
  plan.stats.cost_cache_misses = part.stats.cost_cache_misses;
  if (dp_opts.prefix_cache != nullptr) {
    plan.stats.prefix_cache_hits = part.stats.prefix_cache_hit ? 1 : 0;
    plan.stats.prefix_cache_misses = part.stats.prefix_cache_hit ? 0 : 1;
    plan.stats.prefix_window_rows_reused = part.stats.prefix_window_rows_reused;
    plan.stats.prefix_f_rows_reused = part.stats.prefix_f_rows_reused;
    plan.stats.window_rows_deduped = part.stats.window_rows_deduped;
  }
  plan.stats.warmstart_pruned = part.stats.warmstart_pruned;
  if (!part.feasible) {
    plan.infeasible_reason = "no micro-batch partition fits the memory limit";
    return plan;
  }
  plan.padding = mb::ComputePaddingStats(part.micro_batches);
  // Record the DP-order widths before replica balancing scatters the
  // micro-batches; they seed future near-miss plans and the warm book.
  plan.partition_widths.reserve(part.micro_batches.size());
  for (const mb::MicroBatch& m : part.micro_batches) {
    plan.partition_widths.push_back(m.shape.num_samples);
  }
  if (prefix_cache_ != nullptr) {
    std::lock_guard<std::mutex> lock(warm_mu_);
    warm_widths_[static_cast<size_t>(mode)] = plan.partition_widths;
  }
  if (options_.warm_book != nullptr) {
    options_.warm_book->Update(warm_key, plan.partition_widths);
  }
  const auto schedule_start = SteadyClock::now();

  std::vector<std::vector<mb::MicroBatch>> replica_mbs =
      BalanceReplicas(std::move(part.micro_batches), dp);

  std::atomic<int64_t> stage_hits{0};
  std::atomic<int64_t> stage_misses{0};
  plan.predicted_peak_mb.assign(static_cast<size_t>(c), 0.0);
  for (auto& mbs : replica_mbs) {
    ReplicaBuild rb = BuildReplica(cm_, std::move(mbs), mode,
                                   options_.adaptive_schedule,
                                   options_.reorder_microbatches,
                                   options_.reorder_clusters, /*naive_comm=*/false,
                                   stage_cache_.get(), incremental_context_,
                                   &stage_hits, &stage_misses);
    if (!rb.feasible) {
      plan.infeasible_reason = rb.reason;
      plan.replicas.clear();
      plan.stats.stage_cache_hits = stage_hits.load(std::memory_order_relaxed);
      plan.stats.stage_cache_misses = stage_misses.load(std::memory_order_relaxed);
      return plan;
    }
    plan.predicted_iteration_ms = std::max(plan.predicted_iteration_ms, rb.makespan_ms);
    for (int32_t s = 0; s < c; ++s) {
      plan.predicted_peak_mb[static_cast<size_t>(s)] =
          std::max(plan.predicted_peak_mb[static_cast<size_t>(s)],
                   rb.peak_mb[static_cast<size_t>(s)]);
    }
    plan.replicas.push_back(std::move(rb.plan));
  }
  plan.stats.stage_cache_hits = stage_hits.load(std::memory_order_relaxed);
  plan.stats.stage_cache_misses = stage_misses.load(std::memory_order_relaxed);
  plan.stats.schedule_ms = ElapsedMs(schedule_start);
  plan.feasible = true;
  return plan;
}

IterationPlan IterationPlanner::PlanIteration(
    const std::vector<data::Sample>& minibatch, const PlanSeed* seed) const {
  const auto start = SteadyClock::now();
  const std::vector<data::Sample> ordered = mb::OrderSamples(
      CanonicalizeForArch(cm_.config(), minibatch), options_.ordering);
  const double order_ms = ElapsedMs(start);

  std::vector<model::RecomputeMode> modes;
  if (options_.dynamic_recompute) {
    modes = {model::RecomputeMode::kNone, model::RecomputeMode::kSelective,
             model::RecomputeMode::kFull};
  } else {
    modes = {options_.static_recompute};
  }

  // Recompute modes are independent end-to-end plans over the same ordered
  // samples, so they fan out over the pool into per-mode slots. (Each mode's
  // t_max sweep nests another fan-out on the same pool — safe, see
  // ParallelFor.) The serial merge below prefers strictly faster plans in mode
  // order, which is exactly the seed's serial-loop tie-breaking: kNone beats an
  // equally fast kSelective beats an equally fast kFull.
  std::vector<IterationPlan> outcomes(modes.size());
  ParallelFor(options_.pool, modes.size(), [&](size_t i) {
    outcomes[i] = PlanWithRecompute(ordered, modes[i], seed);
  });

  IterationPlan best;
  best.predicted_iteration_ms = std::numeric_limits<double>::infinity();
  PlanningStats stats;
  stats.order_ms = order_ms;
  for (auto& candidate : outcomes) {
    stats.partition_ms += candidate.stats.partition_ms;
    stats.schedule_ms += candidate.stats.schedule_ms;
    stats.cost_cache_hits += candidate.stats.cost_cache_hits;
    stats.cost_cache_misses += candidate.stats.cost_cache_misses;
    stats.recompute_modes_tried += candidate.stats.recompute_modes_tried;
    stats.prefix_cache_hits += candidate.stats.prefix_cache_hits;
    stats.prefix_cache_misses += candidate.stats.prefix_cache_misses;
    stats.prefix_window_rows_reused += candidate.stats.prefix_window_rows_reused;
    stats.prefix_f_rows_reused += candidate.stats.prefix_f_rows_reused;
    stats.window_rows_deduped += candidate.stats.window_rows_deduped;
    stats.warmstart_pruned += candidate.stats.warmstart_pruned;
    stats.stage_cache_hits += candidate.stats.stage_cache_hits;
    stats.stage_cache_misses += candidate.stats.stage_cache_misses;
    if (candidate.feasible &&
        candidate.predicted_iteration_ms < best.predicted_iteration_ms) {
      best = std::move(candidate);
    } else if (!candidate.feasible && !best.feasible &&
               best.infeasible_reason.empty()) {
      best.infeasible_reason = candidate.infeasible_reason;
    }
  }
  if (!best.feasible) {
    best.predicted_iteration_ms = 0.0;
  }
  best.stats = stats;
  best.planning_time_ms = ElapsedMs(start);
  if (prefix_cache_ != nullptr) {
    PlannerMetrics& m = PlannerMetrics::Get();
    m.prefix_hits.Add(stats.prefix_cache_hits);
    m.prefix_misses.Add(stats.prefix_cache_misses);
    m.warmstart_pruned.Add(stats.warmstart_pruned);
  }
  return best;
}

IterationPlan PlanBaselineIteration(const cost::PipelineCostModel& cost_model,
                                    const BaselineOptions& options,
                                    const std::vector<data::Sample>& raw_minibatch) {
  const auto start = SteadyClock::now();
  const std::vector<data::Sample> minibatch =
      CanonicalizeForArch(cost_model.config(), raw_minibatch);
  IterationPlan plan;
  plan.recompute = options.recompute;
  const int32_t c = cost_model.num_stages();
  const int32_t dp = cost_model.parallel().dp;
  const bool is_t5 = cost_model.config().arch == model::ModelArch::kT5;
  const int32_t max_target =
      options.max_target_len > 0
          ? options.max_target_len
          : (is_t5 ? std::max(1, options.max_input_len / 4) : 0);

  std::vector<mb::MicroBatch> all_mbs;
  switch (options.batching) {
    case BaselineBatching::kPacking: {
      baselines::PackingOptions po;
      po.max_input_len = options.max_input_len;
      po.max_target_len = max_target;
      all_mbs = baselines::PackedMicroBatches(baselines::PackSamples(minibatch, po),
                                              options.microbatch_size,
                                              options.max_input_len,
                                              is_t5 ? max_target : 0);
      break;
    }
    case BaselineBatching::kTokenBased:
    case BaselineBatching::kFixedSize: {
      std::vector<data::Sample> truncated;
      truncated.reserve(minibatch.size());
      for (const auto& s : minibatch) {
        truncated.push_back(data::Truncate(s, options.max_input_len, max_target));
      }
      std::vector<data::Sample> ordered =
          mb::OrderSamples(std::move(truncated), options.ordering);
      all_mbs = options.batching == BaselineBatching::kTokenBased
                    ? baselines::TokenBasedMicroBatches(ordered,
                                                        options.tokens_per_microbatch)
                    : baselines::FixedSizeMicroBatches(ordered,
                                                       options.microbatch_size);
      break;
    }
    case BaselineBatching::kNaivePadding: {
      std::vector<data::Sample> truncated;
      truncated.reserve(minibatch.size());
      for (const auto& s : minibatch) {
        truncated.push_back(data::Truncate(s, options.max_input_len, max_target));
      }
      all_mbs = baselines::NaivePaddingMicroBatches(truncated, options.microbatch_size);
      break;
    }
  }
  plan.padding = mb::ComputePaddingStats(all_mbs);

  // MLM+DS splits the global batch evenly: round-robin micro-batches to replicas.
  std::vector<std::vector<mb::MicroBatch>> replica_mbs(static_cast<size_t>(dp));
  for (size_t k = 0; k < all_mbs.size(); ++k) {
    replica_mbs[k % static_cast<size_t>(dp)].push_back(std::move(all_mbs[k]));
  }

  plan.predicted_peak_mb.assign(static_cast<size_t>(c), 0.0);
  for (auto& mbs : replica_mbs) {
    ReplicaBuild rb =
        BuildReplica(cost_model, std::move(mbs), options.recompute,
                     /*adaptive=*/false, /*reorder=*/false, /*reorder_clusters=*/1,
                     /*naive_comm=*/true);
    if (!rb.feasible) {
      plan.infeasible_reason = rb.reason;
      plan.replicas.clear();
      plan.planning_time_ms = ElapsedMs(start);
      return plan;
    }
    plan.predicted_iteration_ms = std::max(plan.predicted_iteration_ms, rb.makespan_ms);
    for (int32_t s = 0; s < c; ++s) {
      plan.predicted_peak_mb[static_cast<size_t>(s)] =
          std::max(plan.predicted_peak_mb[static_cast<size_t>(s)],
                   rb.peak_mb[static_cast<size_t>(s)]);
    }
    plan.replicas.push_back(std::move(rb.plan));
  }
  plan.feasible = true;
  plan.planning_time_ms = ElapsedMs(start);
  return plan;
}

}  // namespace dynapipe::runtime
