#include "src/runtime/trainer.h"

#include <algorithm>
#include <deque>
#include <future>
#include <optional>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/runtime/ground_truth.h"
#include "src/runtime/instruction_store.h"
#include "src/sim/cluster_sim.h"

namespace dynapipe::runtime {

Trainer::Trainer(const model::ModelConfig& config, const model::HardwareSpec& hw,
                 const model::ParallelConfig& parallel,
                 const cost::ProfileOptions& profile_options)
    : config_(config), hw_(hw), parallel_(parallel),
      cost_model_(cost::PipelineCostModel::Profile(config, hw, parallel,
                                                   profile_options)) {}

EpochResult Trainer::RunEpoch(const data::Dataset& dataset,
                              const PlannerOptions& planner,
                              const TrainerOptions& options) {
  IterationPlanner iteration_planner(cost_model_, planner);
  return RunEpochImpl(dataset, options,
                      [&](const std::vector<data::Sample>& minibatch) {
                        return iteration_planner.PlanIteration(minibatch);
                      });
}

EpochResult Trainer::RunEpochBaseline(const data::Dataset& dataset,
                                      const BaselineOptions& baseline,
                                      const TrainerOptions& options) {
  BaselineOptions opts = baseline;
  opts.max_input_len = options.max_input_len;
  if (options.max_target_len > 0) {
    opts.max_target_len = options.max_target_len;
  }
  return RunEpochImpl(dataset, options,
                      [&, opts](const std::vector<data::Sample>& minibatch) {
                        return PlanBaselineIteration(cost_model_, opts, minibatch);
                      });
}

EpochResult Trainer::RunEpochImpl(const data::Dataset& dataset,
                                  const TrainerOptions& options,
                                  const PlanFn& plan_fn) {
  EpochResult result;
  const bool is_t5 = config_.arch == model::ModelArch::kT5;
  data::MiniBatchSamplerOptions sampler_opts;
  sampler_opts.global_batch_tokens = options.global_batch_tokens;
  sampler_opts.max_input_len = options.max_input_len;
  sampler_opts.max_target_len =
      options.max_target_len > 0
          ? options.max_target_len
          : (is_t5 ? std::max(1, options.max_input_len / 4) : 0);
  sampler_opts.seed = options.sampler_seed;
  data::MiniBatchSampler sampler(dataset, sampler_opts);

  SimGroundTruth ground_truth(config_, hw_, parallel_, options.noise_stddev,
                              options.noise_seed);
  sim::ClusterSimOptions sim_opts;
  sim_opts.static_memory_mb = ground_truth.StaticMemoryMb();
  sim_opts.memory_limit_mb = hw_.usable_memory_mb();

  InstructionStore store;

  // Plan-ahead pipeline: worker threads plan future iterations while the cluster
  // executes the current one (the paper overlaps planning with GPU time the same
  // way). A bounded look-ahead window keeps memory in check; with <= 1 thread the
  // deque is trivially depth-1 and planning is inline.
  std::optional<ThreadPool> pool;
  if (options.planning_threads > 1) {
    pool.emplace(options.planning_threads);
  }
  const size_t lookahead =
      pool.has_value() ? 2 * static_cast<size_t>(options.planning_threads) : 1;
  std::deque<std::future<IterationPlan>> pending;
  int64_t submitted = 0;
  auto top_up = [&]() {
    while (pending.size() < lookahead && sampler.HasNext() &&
           (options.max_iterations <= 0 || submitted < options.max_iterations)) {
      std::vector<data::Sample> minibatch = sampler.Next();
      if (minibatch.empty()) {
        continue;
      }
      ++submitted;
      if (pool.has_value()) {
        pending.push_back(pool->Submit(
            [&plan_fn, mb = std::move(minibatch)]() { return plan_fn(mb); }));
      } else {
        std::promise<IterationPlan> ready;
        ready.set_value(plan_fn(minibatch));
        pending.push_back(ready.get_future());
      }
    }
  };

  int64_t iteration = 0;
  for (top_up(); !pending.empty(); top_up()) {
    IterationPlan plan = pending.front().get();
    pending.pop_front();
    result.planning_time_ms += plan.planning_time_ms;
    if (!plan.feasible) {
      result.feasible = false;
      result.failure = "iteration " + std::to_string(iteration) +
                       " planning failed: " + plan.infeasible_reason;
      return result;
    }

    IterationRecord record;
    record.planning_ms = plan.planning_time_ms;
    record.predicted_ms = plan.predicted_iteration_ms;
    record.num_microbatches = plan.total_microbatches();
    record.recompute = plan.recompute;
    record.cost_cache_hits = plan.stats.cost_cache_hits;
    record.cost_cache_misses = plan.stats.cost_cache_misses;
    record.partition_ms = plan.stats.partition_ms;
    record.schedule_ms = plan.stats.schedule_ms;
    for (const double peak : plan.predicted_peak_mb) {
      record.predicted_peak_mb = std::max(record.predicted_peak_mb, peak);
    }

    // Publish, then execute each replica's plan on the simulated cluster.
    for (size_t d = 0; d < plan.replicas.size(); ++d) {
      store.Push(iteration, static_cast<int32_t>(d),
                 std::move(plan.replicas[d].exec_plan));
    }
    double measured = 0.0;
    for (size_t d = 0; d < plan.replicas.size(); ++d) {
      const sim::ExecutionPlan exec =
          store.Fetch(iteration, static_cast<int32_t>(d));
      sim::ClusterSim cluster(parallel_.pp, &ground_truth, sim_opts);
      const sim::SimResult res = cluster.Run(exec);
      if (res.deadlocked) {
        ++result.deadlocks;
        result.feasible = false;
        result.failure = "iteration " + std::to_string(iteration) +
                         " replica " + std::to_string(d) + " " + res.diagnostic;
        return result;
      }
      if (res.oom) {
        ++result.ooms;
        result.feasible = false;
        result.failure = "iteration " + std::to_string(iteration) + " replica " +
                         std::to_string(d) + " " + res.diagnostic;
        return result;
      }
      measured = std::max(measured, res.makespan_ms);
      for (const auto& dev : res.devices) {
        record.measured_peak_mb = std::max(record.measured_peak_mb, dev.peak_memory_mb);
      }
    }
    measured += cost_model_.DpGradSyncMs();
    record.measured_ms = measured;

    for (const auto& replica : plan.replicas) {
      for (const auto& m : replica.micro_batches) {
        result.real_tokens += m.real_tokens();
      }
    }
    result.padding.real_input_tokens += plan.padding.real_input_tokens;
    result.padding.padded_input_tokens += plan.padding.padded_input_tokens;
    result.padding.real_target_tokens += plan.padding.real_target_tokens;
    result.padding.padded_target_tokens += plan.padding.padded_target_tokens;
    result.train_time_ms += measured;
    result.records.push_back(record);
    ++result.iterations;
    ++iteration;
  }
  return result;
}

}  // namespace dynapipe::runtime
