#include "src/runtime/trainer.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include <unistd.h>

#include <atomic>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/common/trace.h"
#include "src/runtime/ground_truth.h"
#include "src/service/heartbeat_monitor.h"
#include "src/service/membership.h"
#include "src/service/plan_ahead_service.h"
#include "src/service/plan_cache.h"
#include "src/service/rebalance.h"
#include "src/service/recovery.h"
#include "src/sim/cluster_sim.h"
#include "src/transport/mux.h"
#include "src/transport/remote_store.h"
#include "src/transport/shm_store.h"
#include "src/transport/store_server.h"
#include "src/transport/transport.h"

namespace dynapipe::runtime {
namespace {

uint64_t HashDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return service::HashCombine(h, bits);
}

uint64_t HashString(uint64_t h, const std::string& s) {
  h = service::HashCombine(h, s.size());
  for (const char c : s) {
    h = service::HashCombine(h, static_cast<uint8_t>(c));
  }
  return h;
}

// Everything a DynaPipe plan depends on besides the mini-batch: model shape,
// hardware, parallelism, and the planner knobs that change plan values. The
// cost cache and pool are deliberately excluded — they are proven
// bit-identical (tests/planning_parallel_test.cpp), so including them would
// only split cache populations.
uint64_t PlannerConfigHash(const model::ModelConfig& config,
                           const model::HardwareSpec& hw,
                           const model::ParallelConfig& parallel,
                           const PlannerOptions& planner) {
  uint64_t h = service::HashCombine(service::kHashBasis, 0x44504c4eull);  // "DPLN"
  h = service::HashCombine(h, static_cast<uint64_t>(config.arch));
  h = HashString(h, config.name);
  h = service::HashCombine(h, static_cast<uint64_t>(config.num_layers));
  h = service::HashCombine(h, static_cast<uint64_t>(config.hidden_dim));
  h = service::HashCombine(h, static_cast<uint64_t>(config.num_heads));
  h = service::HashCombine(h, static_cast<uint64_t>(config.kv_channels));
  h = service::HashCombine(h, static_cast<uint64_t>(config.ffn_dim));
  h = service::HashCombine(h, static_cast<uint64_t>(config.vocab_size));
  h = HashDouble(h, hw.peak_tflops);
  h = HashDouble(h, hw.max_utilization);
  h = HashDouble(h, hw.util_half_tokens);
  h = HashDouble(h, hw.attention_efficiency);
  h = HashDouble(h, hw.kernel_overhead_us);
  h = HashDouble(h, hw.device_memory_mb);
  h = HashDouble(h, hw.memory_reserved_fraction);
  h = HashDouble(h, hw.intra_node_bw_gbs);
  h = HashDouble(h, hw.inter_node_bw_gbs);
  h = HashDouble(h, hw.p2p_latency_us);
  h = service::HashCombine(h, static_cast<uint64_t>(hw.gpus_per_node));
  h = service::HashCombine(h, static_cast<uint64_t>(parallel.dp));
  h = service::HashCombine(h, static_cast<uint64_t>(parallel.tp));
  h = service::HashCombine(h, static_cast<uint64_t>(parallel.pp));
  h = service::HashCombine(h, static_cast<uint64_t>(planner.ordering));
  h = service::HashCombine(h, planner.adaptive_schedule ? 1u : 0u);
  h = service::HashCombine(h, planner.reorder_microbatches ? 1u : 0u);
  h = service::HashCombine(h, static_cast<uint64_t>(planner.reorder_clusters));
  h = service::HashCombine(h, planner.dynamic_recompute ? 1u : 0u);
  h = service::HashCombine(h, static_cast<uint64_t>(planner.static_recompute));
  h = HashDouble(h, planner.tmax_interval_ms);
  h = service::HashCombine(h, static_cast<uint64_t>(planner.max_tmax_candidates));
  h = service::HashCombine(h, static_cast<uint64_t>(planner.max_microbatch_size));
  return h;
}

// Unique per epoch so concurrent trainers (grid search) never collide on a
// socket path or shm segment name.
uint64_t NextStoreId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1);
}

std::string DeriveSocketPath() {
  return "/tmp/dynapipe-store-" + std::to_string(::getpid()) + "-" +
         std::to_string(NextStoreId()) + ".sock";
}

std::string DeriveShmName() {
  return "/dynapipe-store-" + std::to_string(::getpid()) + "-" +
         std::to_string(NextStoreId());
}

}  // namespace

Trainer::Trainer(const model::ModelConfig& config, const model::HardwareSpec& hw,
                 const model::ParallelConfig& parallel,
                 const cost::ProfileOptions& profile_options)
    : config_(config), hw_(hw), parallel_(parallel),
      cost_model_(cost::PipelineCostModel::Profile(config, hw, parallel,
                                                   profile_options)) {}

EpochResult Trainer::RunEpoch(const data::Dataset& dataset,
                              const PlannerOptions& planner,
                              const TrainerOptions& options) {
  // One pool serves both the service's plan-ahead tasks and the planner's
  // intra-iteration fan-outs (recompute modes, per-t_max DPs): a caller-
  // provided planner pool is reused, otherwise planning_threads creates one.
  std::optional<ThreadPool> owned_pool;
  PlannerOptions popts = planner;
  if (popts.pool == nullptr && options.planning_threads > 1) {
    owned_pool.emplace(options.planning_threads);
    popts.pool = &*owned_pool;
  }
  // Persist the planner's memo state on the Trainer so epoch N+1 starts warm:
  // the cost oracle, window-prefix cache, and stage-cost cache all hold
  // values that depend only on the (fixed) cost model. Caller-provided caches
  // win — grid search shares nothing here, its planners span cost models.
  if (popts.cost_cache && popts.cost_oracle == nullptr) {
    if (cost_oracle_ == nullptr) {
      cost_oracle_ = std::make_shared<cost::CachedCostOracle>(cost_model_);
    }
    popts.cost_oracle = cost_oracle_;
  }
  if (popts.incremental_planning) {
    if (popts.prefix_cache == nullptr) {
      if (prefix_cache_ == nullptr) {
        prefix_cache_ = std::make_shared<mb::PrefixWindowCache>();
      }
      popts.prefix_cache = prefix_cache_;
    }
    if (popts.stage_cost_cache == nullptr) {
      if (stage_cost_cache_ == nullptr) {
        stage_cost_cache_ = std::make_shared<cost::StageCostCache>();
      }
      popts.stage_cost_cache = stage_cost_cache_;
    }
  }
  IterationPlanner iteration_planner(cost_model_, popts);
  return RunEpochImpl(
      dataset, options,
      [&](const std::vector<data::Sample>& minibatch) {
        return iteration_planner.PlanIteration(minibatch);
      },
      popts.pool, PlannerConfigHash(config_, hw_, parallel_, planner),
      /*allow_plan_cache=*/true,
      [&](const std::vector<data::Sample>& minibatch, const PlanSeed* seed) {
        return iteration_planner.PlanIteration(minibatch, seed);
      });
}

EpochResult Trainer::RunEpochBaseline(const data::Dataset& dataset,
                                      const BaselineOptions& baseline,
                                      const TrainerOptions& options) {
  BaselineOptions opts = baseline;
  opts.max_input_len = options.max_input_len;
  if (options.max_target_len > 0) {
    opts.max_target_len = options.max_target_len;
  }
  std::optional<ThreadPool> owned_pool;
  ThreadPool* pool = nullptr;
  if (options.planning_threads > 1) {
    owned_pool.emplace(options.planning_threads);
    pool = &*owned_pool;
  }
  // Baseline plans repack/truncate samples, so they cannot be rebound to a new
  // mini-batch: the plan cache stays off regardless of options.plan_cache.
  return RunEpochImpl(dataset, options,
                      [&, opts](const std::vector<data::Sample>& minibatch) {
                        return PlanBaselineIteration(cost_model_, opts, minibatch);
                      },
                      pool, /*config_hash=*/0, /*allow_plan_cache=*/false);
}

EpochResult Trainer::RunEpochImpl(const data::Dataset& dataset,
                                  const TrainerOptions& options,
                                  const PlanFn& plan_fn, ThreadPool* pool,
                                  uint64_t config_hash, bool allow_plan_cache,
                                  const SeededPlanFn& seeded_plan_fn) {
  EpochResult result;
  if (!options.trace_path.empty()) {
    common::Tracer::Instance().EnableToPath(options.trace_path);
  }
  const bool is_t5 = config_.arch == model::ModelArch::kT5;
  data::MiniBatchSamplerOptions sampler_opts;
  sampler_opts.global_batch_tokens = options.global_batch_tokens;
  sampler_opts.max_input_len = options.max_input_len;
  sampler_opts.max_target_len =
      options.max_target_len > 0
          ? options.max_target_len
          : (is_t5 ? std::max(1, options.max_input_len / 4) : 0);
  sampler_opts.seed = options.sampler_seed;
  data::MiniBatchSampler sampler(dataset, sampler_opts);

  SimGroundTruth ground_truth(config_, hw_, parallel_, options.noise_stddev,
                              options.noise_seed);
  sim::ClusterSimOptions sim_opts;
  sim_opts.static_memory_mb = ground_truth.StaticMemoryMb();
  sim_opts.memory_limit_mb = hw_.usable_memory_mb();

  // Replica completion tracking: the trainer reports each in-process
  // replica's simulated makespan, and — on the socket backends — attached
  // executor processes heartbeat their wall clock through the store server
  // into the same monitor. Declared before the server below so heartbeats
  // arriving during teardown still have a live sink.
  service::HeartbeatMonitorOptions monitor_opts;
  monitor_opts.straggler_multiple = options.straggler_multiple;
  monitor_opts.min_straggler_gap_ms = options.straggler_min_gap_ms;
  monitor_opts.suspect_after_ms = options.liveness_suspect_after_ms;
  monitor_opts.dead_after_ms = options.liveness_dead_after_ms;
  monitor_opts.connection_grace_ms = options.liveness_connection_grace_ms;
  // Every iteration has exactly dp in-process replicas reporting; straggler
  // flagging waits for all of them so a fast replica is never compared
  // against a partial report set (an absent replica used to make the rest
  // look fast — or slow — depending on who was missing).
  monitor_opts.expected_replicas = parallel_.dp;
  service::HeartbeatMonitor heartbeat_monitor(monitor_opts);

  // Everything between the sampler and the executors is the plan-ahead
  // service's pipeline: lookahead planning on the shared pool, the
  // cross-iteration plan cache, and (serialized) publication into the
  // instruction store. lookahead == 0 is the inline path.
  const int32_t lookahead =
      options.plan_lookahead >= 0
          ? options.plan_lookahead
          : (options.planning_threads > 1 ? 2 * options.planning_threads : 0);
  std::optional<ThreadPool> service_pool;
  if (lookahead > 0 && pool == nullptr) {
    service_pool.emplace(std::max(2, options.planning_threads));
    pool = &*service_pool;
  }
  service::PlanAheadOptions sopts;
  sopts.lookahead = lookahead;
  sopts.pool = pool;
  sopts.fold_target_lengths = config_.arch == model::ModelArch::kGpt;
  sopts.serialize_plans = options.serialize_plans;
  sopts.store_capacity = options.instruction_store_capacity;
  // Socket backends: host the server side of the wire (store + listener) and
  // hand the service a remote client — one-shot connections (kUnixSocket) or
  // one persistent multiplexed connection (kUnixSocketMux). Declared before
  // `service` below so the server outlives it — the service's shutdown still
  // round-trips through the socket. The publisher's deferral logic needs
  // store_capacity to mirror the server store's bound, which it does by
  // construction here. The shared-memory backend needs no server at all: the
  // segment is the store, and an executor process could attach to it by name.
  std::optional<InstructionStore> server_store;
  std::optional<transport::UnixSocketTransport> socket_transport;
  std::optional<transport::InstructionStoreServer> store_server;
  // Kept alongside sopts.store on the shm path: the coordinators and the
  // heartbeat poller need the concrete segment handle, not the interface.
  std::shared_ptr<transport::ShmInstructionStore> shm_store;
  // Declared after the monitor and store it points at, so it unregisters
  // from the monitor (dtor) before either dies.
  std::optional<service::RecoveryCoordinator> recovery;
  // Declared after recovery: both move plans at spare keys from one shared
  // allocator, and teardown must unhook the straggler callback while the
  // monitor is still alive.
  std::optional<service::RebalanceCoordinator> rebalance;
  // Declared after recovery (it registers as recovery's downstream event tap
  // and must unregister while recovery is alive); shares the spare-key
  // allocator with both coordinators above.
  std::optional<service::MembershipCoordinator> membership;
  // Last, so it stops feeding the monitor before any of the above dies.
  std::optional<transport::ShmHeartbeatPoller> shm_poller;
  // One spare-key space shared by recovery and rebalance — two coordinators
  // moving plans into the same store must never pick colliding destinations.
  const int64_t spare_base = options.max_iterations > 0
                                 ? options.max_iterations
                                 : (int64_t{1} << 32);
  auto spare_keys = std::make_shared<service::SpareKeyAllocator>(spare_base);
  auto all_replicas = [&] {
    std::vector<int32_t> replicas;
    for (int32_t d = 0; d < parallel_.dp; ++d) {
      replicas.push_back(d);
    }
    return replicas;
  };
  // Rebalancing moves *unfetched* plans between replicas, but this trainer
  // fetches every in-process replica's plan by exact (iteration, replica)
  // key — so all of them are immovable and nothing migrates during its own
  // epochs. The wiring still runs the policy (streaks, hysteresis, report)
  // so the knobs and EpochResult fields are live; the full migration path is
  // the cross-process store (standalone publisher + attached executors).
  auto wire_rebalance = [&](runtime::InstructionStoreInterface* store) {
    if (!options.rebalance_stragglers) {
      return;
    }
    service::RebalanceOptions bopts;
    bopts.consecutive_flags = options.rebalance_consecutive_flags;
    bopts.max_moves_per_event = options.rebalance_max_moves;
    bopts.hysteresis_iterations = options.rebalance_hysteresis_iterations;
    bopts.replicas = all_replicas();
    bopts.immovable_replicas = all_replicas();
    bopts.spare_keys = spare_keys;
    rebalance.emplace(store, &heartbeat_monitor, bopts);
  };
  // Elastic membership rides downstream of recovery; the in-process replicas
  // are immovable for the same reason they are for rebalance (this trainer
  // fetches its own plans by exact key, so a joiner must not steal them).
  auto wire_membership = [&](runtime::InstructionStoreInterface* store,
                             std::function<void(int32_t)> drain_ack) {
    if (!options.elastic_membership) {
      return;
    }
    service::MembershipOptions mopts;
    mopts.initial_replicas = all_replicas();
    mopts.immovable_replicas = all_replicas();
    mopts.spare_keys = spare_keys;
    mopts.join_steal_max = options.membership_join_steal_max;
    mopts.drain_ack = std::move(drain_ack);
    membership.emplace(store, &heartbeat_monitor, &*recovery, mopts);
  };
  if (options.plan_store_backend ==
          TrainerOptions::PlanStoreBackend::kUnixSocket ||
      options.plan_store_backend ==
          TrainerOptions::PlanStoreBackend::kUnixSocketMux) {
    server_store.emplace(InstructionStoreOptions{
        /*serialized=*/true, options.instruction_store_capacity});
    socket_transport.emplace(options.plan_store_socket_path.empty()
                                 ? DeriveSocketPath()
                                 : options.plan_store_socket_path);
    // kHeartbeat frames from any attached reporter route through the server
    // store's sink into the same monitor the in-process replicas feed.
    server_store->set_heartbeat_sink(&heartbeat_monitor);
    // React to declared deaths: move the dead replica's unfetched plans to
    // survivors and record the recovery. The coordinator itself always
    // degrades — fail-fast's store shutdown is for a publisher parked in
    // Push backpressure, and would race this trainer's own fetches (it
    // consumes its replicas' plans in-process). options.failure_policy is
    // applied by the epoch loop below instead.
    service::RecoveryOptions ropts;
    ropts.policy = service::FailurePolicy::kDegradeAndContinue;
    ropts.replicas = all_replicas();
    // In-process replicas cannot die (no wire), so reposts are expected only
    // from attached external replicas — which publish nothing here. The
    // shared base still clears every iteration this epoch could publish.
    ropts.spare_keys = spare_keys;
    // Subscribe the coordinator BEFORE the server starts serving: the socket
    // is already bound (transport ctor), so an executor can attach and die in
    // the window between the first served frame and a later subscription —
    // that death event would fire into a null callback and be lost.
    recovery.emplace(&*server_store, &heartbeat_monitor, ropts);
    wire_rebalance(&*server_store);
    // Before the server serves: a joiner attaching in the startup window
    // must land on a live membership subscription. Over the wire the
    // server's kDrainAck reply is the drain acknowledgement (the event chain
    // runs synchronously inside the drain-request handler), so no ack hook.
    wire_membership(&*server_store, nullptr);
    store_server.emplace(&*socket_transport, &*server_store);
    // Fleet barrier: the server is accepting, so executors can attach now;
    // hold the epoch (nothing published yet) until enough have. In-process
    // replicas report nothing before iteration 0, so every replica the
    // monitor knows at this point came over the wire.
    if (options.liveness_await_replicas > 0) {
      const auto barrier_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration<double, std::milli>(
              options.liveness_await_timeout_ms);
      while (static_cast<int32_t>(heartbeat_monitor.KnownReplicas().size()) <
             options.liveness_await_replicas) {
        if (std::chrono::steady_clock::now() >= barrier_deadline) {
          result.feasible = false;
          result.failure =
              "timed out waiting for " +
              std::to_string(options.liveness_await_replicas) +
              " replicas to attach";
          return result;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (options.plan_store_backend ==
        TrainerOptions::PlanStoreBackend::kUnixSocket) {
      sopts.store = transport::RemoteInstructionStore::OverUnixSocket(
          socket_transport->path());
    } else {
      sopts.store = transport::MuxInstructionStore::OverUnixSocket(
          socket_transport->path());
    }
  } else if (options.plan_store_backend ==
             TrainerOptions::PlanStoreBackend::kSharedMemory) {
    transport::ShmStoreOptions shm_opts;
    shm_opts.capacity = options.instruction_store_capacity;
    shm_store = transport::ShmInstructionStore::Create(
        options.plan_store_shm_name.empty() ? DeriveShmName()
                                            : options.plan_store_shm_name,
        shm_opts);
    sopts.store = shm_store;
    // The segment is the store, so recovery acts on it directly — no server
    // in between. Liveness arrives through the segment too: attached
    // executors stamp their heartbeat slot in shared memory, and the poller
    // replays those beats into this monitor as if they came over a wire.
    service::RecoveryOptions ropts;
    ropts.policy = service::FailurePolicy::kDegradeAndContinue;
    ropts.replicas = all_replicas();
    ropts.spare_keys = spare_keys;
    recovery.emplace(shm_store.get(), &heartbeat_monitor, ropts);
    wire_rebalance(shm_store.get());
    // Shm drains acknowledge through the segment: the coordinator flips the
    // leaver's slot drain word once the handoff is done.
    wire_membership(shm_store.get(),
                    [raw = shm_store.get()](int32_t replica) {
                      raw->AcknowledgeDrain(replica);
                    });
    shm_poller.emplace(shm_store, &heartbeat_monitor);
    if (options.liveness_await_replicas > 0) {
      const auto barrier_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration<double, std::milli>(
              options.liveness_await_timeout_ms);
      while (static_cast<int32_t>(heartbeat_monitor.KnownReplicas().size()) <
             options.liveness_await_replicas) {
        if (std::chrono::steady_clock::now() >= barrier_deadline) {
          result.feasible = false;
          result.failure =
              "timed out waiting for " +
              std::to_string(options.liveness_await_replicas) +
              " replicas to attach";
          return result;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  if (allow_plan_cache && options.plan_cache) {
    if (plan_cache_ == nullptr) {
      plan_cache_ = std::make_shared<service::PlanCache>(service::PlanCacheOptions{
          options.plan_cache_capacity, options.plan_cache_max_bytes});
    }
    sopts.plan_cache = plan_cache_;
    sopts.config_hash = config_hash;
    sopts.quantization = std::max(1, options.plan_cache_quantization);
    sopts.seeded_plan_fn = seeded_plan_fn;
  }

  int64_t submitted = 0;
  auto source = [&]() -> std::vector<data::Sample> {
    while (sampler.HasNext() &&
           (options.max_iterations <= 0 || submitted < options.max_iterations)) {
      std::vector<data::Sample> minibatch = sampler.Next();
      if (!minibatch.empty()) {
        ++submitted;
        return minibatch;
      }
    }
    return {};
  };
  service::PlanAheadService service(plan_fn, source, sopts);
  // Runs on every exit path (failed epochs included) so diagnostics keep the
  // cache and wire counters of the iterations that did happen.
  auto capture_service_stats = [&] {
    const service::PlanAheadServiceStats sstats = service.stats();
    result.plan_cache_hits = sstats.plan_cache_hits;
    result.plan_cache_misses = sstats.plan_cache_misses;
    result.serialized_plan_bytes = sstats.published_bytes;
    if (recovery.has_value()) {
      const service::RecoveryReport rreport = recovery->report();
      result.dead_replicas = rreport.dead_replicas;
      result.replanned_iterations = rreport.replanned_iterations;
      result.recovery_ms = rreport.recovery_ms;
    }
    if (rebalance.has_value()) {
      const service::RebalanceReport breport = rebalance->report();
      result.rebalance_events = breport.events;
      result.rebalanced_iterations = breport.moved_iterations;
    }
    if (membership.has_value()) {
      const service::MembershipReport mreport = membership->report();
      result.joined_replicas = mreport.joined;
      result.drained_replicas = mreport.drained;
      result.join_stolen_iterations = mreport.join_stolen_iterations;
      result.drain_reposted_iterations = mreport.drain_reposted_iterations;
    }
    if (store_server.has_value()) {
      // Pull each stats-capable attached executor's process-wide snapshot
      // over its own connection. Bounded: an executor that died mid-epoch
      // just contributes nothing.
      for (transport::RemoteReplicaStats& stats :
           store_server->CollectRemoteStats(/*timeout_ms=*/200)) {
        ExecutorMetrics metrics;
        metrics.replicas = std::move(stats.replicas);
        metrics.snapshot = std::move(stats.snapshot);
        result.executor_metrics.push_back(std::move(metrics));
      }
    }
    // Epoch end is the merge point: fold this process's spans plus any
    // executor .part files into the one trace JSON this trainer owns.
    if (!options.trace_path.empty()) {
      common::Tracer::Instance().WriteMergedTrace();
    }
  };

  while (std::optional<service::ServicedPlan> serviced = service.NextPlan()) {
    // Fail-fast: the first declared death aborts the epoch. Checked at the
    // loop top (not inside the recovery callback) so the abort is a clean
    // infeasible result, never a torn iteration. Read through the
    // coordinator's report, not the monitor: the monitor's state flips
    // before the event callback lands, and the report only shows a death
    // once the coordinator has fully processed it.
    if (recovery.has_value() &&
        options.failure_policy == service::FailurePolicy::kFailFast) {
      const std::vector<int32_t> dead = recovery->report().dead_replicas;
      if (!dead.empty()) {
        result.feasible = false;
        result.failure = "replica " + std::to_string(dead.front()) +
                         " declared dead (fail-fast policy)";
        capture_service_stats();
        return result;
      }
    }
    const int64_t iteration = serviced->iteration;
    IterationPlan& plan = serviced->plan;
    result.planning_time_ms += plan.planning_time_ms;
    result.plan_stall_ms += serviced->stall_ms;
    if (!plan.feasible) {
      result.feasible = false;
      result.failure = "iteration " + std::to_string(iteration) +
                       " planning failed: " + plan.infeasible_reason;
      capture_service_stats();
      return result;
    }

    IterationRecord record;
    record.planning_ms = plan.planning_time_ms;
    record.predicted_ms = plan.predicted_iteration_ms;
    record.num_microbatches = plan.total_microbatches();
    record.recompute = plan.recompute;
    record.cost_cache_hits = plan.stats.cost_cache_hits;
    record.cost_cache_misses = plan.stats.cost_cache_misses;
    record.partition_ms = plan.stats.partition_ms;
    record.schedule_ms = plan.stats.schedule_ms;
    record.prefix_cache_hits = plan.stats.prefix_cache_hits;
    record.prefix_cache_misses = plan.stats.prefix_cache_misses;
    record.warmstart_pruned = plan.stats.warmstart_pruned;
    record.plan_cache_hit = serviced->plan_cache_hit;
    record.plan_stall_ms = serviced->stall_ms;
    for (const double peak : plan.predicted_peak_mb) {
      record.predicted_peak_mb = std::max(record.predicted_peak_mb, peak);
    }

    // The service already published each replica's plan to the instruction
    // store (in iteration order, encoded in serialized mode); execution
    // fetches them back out.
    double measured = 0.0;
    for (size_t d = 0; d < plan.replicas.size(); ++d) {
      const sim::ExecutionPlan exec =
          service.FetchExecPlan(iteration, static_cast<int32_t>(d));
      sim::ClusterSim cluster(parallel_.pp, &ground_truth, sim_opts);
      std::optional<common::TraceSpan> exec_span;
      exec_span.emplace("executed", "plan", iteration, static_cast<int32_t>(d));
      const sim::SimResult res = cluster.Run(exec);
      exec_span.reset();
      if (res.deadlocked) {
        ++result.deadlocks;
        result.feasible = false;
        result.failure = "iteration " + std::to_string(iteration) +
                         " replica " + std::to_string(d) + " " + res.diagnostic;
        capture_service_stats();
        return result;
      }
      if (res.oom) {
        ++result.ooms;
        result.feasible = false;
        result.failure = "iteration " + std::to_string(iteration) + " replica " +
                         std::to_string(d) + " " + res.diagnostic;
        capture_service_stats();
        return result;
      }
      measured = std::max(measured, res.makespan_ms);
      for (const auto& dev : res.devices) {
        record.measured_peak_mb = std::max(record.measured_peak_mb, dev.peak_memory_mb);
      }
      // In-process replicas complete "now" in wall clock; their simulated
      // makespan is the completion time straggler detection should compare.
      {
        common::TraceSpan hb_span("heartbeat", "plan", iteration,
                                  static_cast<int32_t>(d));
        heartbeat_monitor.OnHeartbeat(static_cast<int32_t>(d), iteration,
                                      res.makespan_ms);
      }
    }
    measured += cost_model_.DpGradSyncMs();
    record.measured_ms = measured;
    const service::IterationHeartbeatStats hb_stats =
        heartbeat_monitor.ForIteration(iteration);
    record.heartbeat_replicas = hb_stats.replicas_reported;
    record.replica_median_ms = hb_stats.median_wall_ms;
    record.replica_max_ms = hb_stats.max_wall_ms;
    record.straggler_replicas = hb_stats.stragglers;
    if (recovery.has_value()) {
      record.dead_replicas = heartbeat_monitor.DeadReplicas();
    }
    if (rebalance.has_value()) {
      record.rebalanced_replicas = rebalance->report().rebalanced_replicas;
    }
    result.straggler_flags +=
        static_cast<int64_t>(record.straggler_replicas.size());

    for (const auto& replica : plan.replicas) {
      for (const auto& m : replica.micro_batches) {
        result.real_tokens += m.real_tokens();
      }
    }
    result.padding.real_input_tokens += plan.padding.real_input_tokens;
    result.padding.padded_input_tokens += plan.padding.padded_input_tokens;
    result.padding.real_target_tokens += plan.padding.real_target_tokens;
    result.padding.padded_target_tokens += plan.padding.padded_target_tokens;
    result.train_time_ms += measured;
    result.records.push_back(record);
    ++result.iterations;
  }

  capture_service_stats();
  return result;
}

}  // namespace dynapipe::runtime
