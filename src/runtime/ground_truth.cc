#include "src/runtime/ground_truth.h"

#include "src/common/check.h"

namespace dynapipe::runtime {

SimGroundTruth::SimGroundTruth(const model::ModelConfig& config,
                               const model::HardwareSpec& hw,
                               const model::ParallelConfig& parallel,
                               double noise_stddev, uint64_t noise_seed)
    : hw_(hw), parallel_(parallel),
      stages_(model::BuildStageModels(config, hw, parallel.pp, parallel.tp)),
      noise_(noise_stddev, noise_seed) {}

double SimGroundTruth::ComputeMs(int32_t device, const sim::Instruction& instr) {
  DYNAPIPE_CHECK(device >= 0 && device < static_cast<int32_t>(stages_.size()));
  const auto& stage = stages_[static_cast<size_t>(device)];
  const double base = instr.type == sim::InstrType::kForwardPass
                          ? stage.FwdMs(instr.shape)
                          : stage.BwdMs(instr.shape, instr.recompute);
  return noise_.Apply(base);
}

double SimGroundTruth::ActivationMb(int32_t device, const sim::Instruction& instr) {
  DYNAPIPE_CHECK(device >= 0 && device < static_cast<int32_t>(stages_.size()));
  return stages_[static_cast<size_t>(device)].ActivationMb(instr.shape,
                                                           instr.recompute);
}

double SimGroundTruth::TransferMs(int32_t src, int32_t dst, int64_t bytes) {
  const int32_t src_gpu = src * parallel_.tp;
  const int32_t dst_gpu = dst * parallel_.tp;
  const bool same_node = src_gpu / hw_.gpus_per_node == dst_gpu / hw_.gpus_per_node;
  const double bw_gbs = same_node ? hw_.intra_node_bw_gbs : hw_.inter_node_bw_gbs;
  return hw_.p2p_latency_us / 1e3 + static_cast<double>(bytes) / 1e9 / bw_gbs * 1e3;
}

std::vector<double> SimGroundTruth::StaticMemoryMb() const {
  std::vector<double> out;
  out.reserve(stages_.size());
  for (const auto& stage : stages_) {
    out.push_back(stage.StaticMemoryMb(parallel_.dp));
  }
  return out;
}

}  // namespace dynapipe::runtime
