#include "src/runtime/instruction_store.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/service/plan_serde.h"

namespace dynapipe::runtime {

namespace {
common::StoreMetrics& Metrics() {
  static common::StoreMetrics& m = common::StoreMetrics::For("inprocess");
  return m;
}
}  // namespace

bool InstructionStore::Insert(int64_t iteration, int32_t replica, Entry entry,
                              size_t encoded_bytes) {
  common::StoreMetrics& metrics = Metrics();
  metrics.push_total.Add();
  metrics.bytes_pushed.Add(static_cast<int64_t>(encoded_bytes));
  common::TraceSpan span("published", "plan", iteration, replica);
  const common::LatencyTimer park_timer;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return shutdown_ || options_.capacity == 0 ||
           plans_.size() < options_.capacity;
  });
  park_timer.ObserveInto(metrics.park_us);
  if (shutdown_) {
    return false;  // dropped; the consumer is gone
  }
  const auto key = std::make_pair(iteration, replica);
  DYNAPIPE_CHECK_MSG(plans_.find(key) == plans_.end(),
                     "plan already published for this iteration/replica");
  serialized_bytes_total_ += static_cast<int64_t>(encoded_bytes);
  plans_.emplace(key, std::move(entry));
  return true;
}

InstructionStore::Entry InstructionStore::Remove(int64_t iteration,
                                                 int32_t replica) {
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(std::make_pair(iteration, replica));
    DYNAPIPE_CHECK_MSG(it != plans_.end(), "fetching unpublished plan");
    entry = std::move(it->second);
    plans_.erase(it);
  }
  cv_.notify_all();
  return entry;
}

void InstructionStore::Push(int64_t iteration, int32_t replica,
                            sim::ExecutionPlan plan) {
  const common::LatencyTimer push_timer;
  // Serialize outside the lock: encoding is the expensive part and needs no
  // store state.
  Entry entry;
  size_t encoded_bytes = 0;
  if (options_.serialized) {
    service::EncodeExecutionPlanInto(plan, &entry.bytes);
    encoded_bytes = entry.bytes.size();
  } else {
    entry.plan = std::move(plan);
  }
  Insert(iteration, replica, std::move(entry), encoded_bytes);
  push_timer.ObserveInto(Metrics().push_us);
}

sim::ExecutionPlan InstructionStore::Fetch(int64_t iteration, int32_t replica) {
  common::StoreMetrics& metrics = Metrics();
  metrics.fetch_total.Add();
  const common::LatencyTimer fetch_timer;
  Entry entry;
  {
    common::TraceSpan span("fetched", "plan", iteration, replica);
    entry = Remove(iteration, replica);
  }
  // Decode outside the lock, mirroring Push.
  sim::ExecutionPlan plan;
  {
    common::TraceSpan span("decoded", "plan", iteration, replica);
    plan = options_.serialized ? service::DecodeExecutionPlan(entry.bytes)
                               : std::move(entry.plan);
  }
  fetch_timer.ObserveInto(metrics.fetch_us);
  return plan;
}

bool InstructionStore::PushBytes(int64_t iteration, int32_t replica,
                                 std::string bytes) {
  DYNAPIPE_CHECK_MSG(options_.serialized,
                     "PushBytes needs a serialized-mode store");
  Entry entry;
  entry.bytes = std::move(bytes);
  const size_t encoded_bytes = entry.bytes.size();
  return Insert(iteration, replica, std::move(entry), encoded_bytes);
}

std::string InstructionStore::FetchBytes(int64_t iteration, int32_t replica) {
  DYNAPIPE_CHECK_MSG(options_.serialized,
                     "FetchBytes needs a serialized-mode store");
  return std::move(Remove(iteration, replica).bytes);
}

std::optional<std::string> InstructionStore::TryFetchBytes(int64_t iteration,
                                                           int32_t replica) {
  DYNAPIPE_CHECK_MSG(options_.serialized,
                     "TryFetchBytes needs a serialized-mode store");
  std::optional<std::string> bytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(std::make_pair(iteration, replica));
    if (it == plans_.end()) {
      return std::nullopt;
    }
    bytes = std::move(it->second.bytes);
    plans_.erase(it);
  }
  cv_.notify_all();
  return bytes;
}

std::vector<int64_t> InstructionStore::PendingIterations(
    int32_t replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int64_t> iterations;
  for (const auto& [key, entry] : plans_) {
    if (key.second == replica) {
      iterations.push_back(key.first);  // map order = ascending iteration
    }
  }
  return iterations;
}

RepostOutcome InstructionStore::Repost(int64_t src_iteration,
                                       int32_t src_replica,
                                       int64_t dst_iteration,
                                       int32_t dst_replica) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto src = plans_.find(std::make_pair(src_iteration, src_replica));
    if (src == plans_.end()) {
      return RepostOutcome::kSourceGone;
    }
    const auto dst_key = std::make_pair(dst_iteration, dst_replica);
    if (plans_.find(dst_key) != plans_.end()) {
      return RepostOutcome::kDestinationTaken;  // leave both alone
    }
    // A draining replica must not be handed new work: an in-flight rebalance
    // or recovery move racing a clean drain reads this exactly like a taken
    // key — burn the spare key, pick another destination.
    if (std::find(fenced_.begin(), fenced_.end(), dst_replica) !=
        fenced_.end()) {
      return RepostOutcome::kDestinationTaken;
    }
    plans_.emplace(dst_key, std::move(src->second));
    plans_.erase(src);
    // Residency count is unchanged, but a poller parked on the destination
    // key may be waiting in a Contains/fetch loop — nothing here to wake;
    // executors poll, they do not block on the store cv.
  }
  return RepostOutcome::kMoved;
}

size_t InstructionStore::DropReplica(int32_t replica) {
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = plans_.begin(); it != plans_.end();) {
      if (it->first.second == replica) {
        it = plans_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) {
    cv_.notify_all();  // freed capacity slots
  }
  return dropped;
}

void InstructionStore::FenceReplica(int32_t replica) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(fenced_.begin(), fenced_.end(), replica) == fenced_.end()) {
    fenced_.push_back(replica);
  }
}

void InstructionStore::UnfenceReplica(int32_t replica) {
  std::lock_guard<std::mutex> lock(mu_);
  fenced_.erase(std::remove(fenced_.begin(), fenced_.end(), replica),
                fenced_.end());
}

bool InstructionStore::IsReplicaFenced(int32_t replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::find(fenced_.begin(), fenced_.end(), replica) != fenced_.end();
}

bool InstructionStore::Contains(int64_t iteration, int32_t replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.find(std::make_pair(iteration, replica)) != plans_.end();
}

size_t InstructionStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

void InstructionStore::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

int64_t InstructionStore::serialized_bytes_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return serialized_bytes_total_;
}

void InstructionStore::set_heartbeat_sink(HeartbeatSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  heartbeat_sink_ = sink;
}

bool InstructionStore::supports_heartbeat() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heartbeat_sink_ != nullptr;
}

bool InstructionStore::Heartbeat(int32_t replica, int64_t iteration,
                                 double wall_ms) {
  HeartbeatSink* sink = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = heartbeat_sink_;
  }
  // Deliver outside mu_: the sink takes its own lock, and a sink that calls
  // back into the store must not self-deadlock.
  if (sink == nullptr) {
    return false;
  }
  sink->OnHeartbeat(replica, iteration, wall_ms);
  return true;
}

void InstructionStore::NotifyReplicaAttached(int32_t replica) {
  HeartbeatSink* sink = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = heartbeat_sink_;
  }
  if (sink != nullptr) {
    sink->OnReplicaAttached(replica);  // outside mu_, like OnHeartbeat
  }
}

void InstructionStore::NotifyReplicaDisconnected(int32_t replica, bool clean) {
  HeartbeatSink* sink = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = heartbeat_sink_;
  }
  if (sink != nullptr) {
    sink->OnReplicaDisconnected(replica, clean);
  }
}

void InstructionStore::NotifyReplicaDrainRequested(int32_t replica) {
  HeartbeatSink* sink = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = heartbeat_sink_;
  }
  if (sink != nullptr) {
    // Outside mu_: the sink fires the liveness event chain synchronously, and
    // the MembershipCoordinator at its end calls straight back into this
    // store (FenceReplica, PendingIterations, Repost).
    sink->OnReplicaDrainRequested(replica);
  }
}

bool InstructionStore::ReplicaConsideredDead(int32_t replica) const {
  HeartbeatSink* sink = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = heartbeat_sink_;
  }
  return sink != nullptr && sink->IsReplicaDead(replica);
}

}  // namespace dynapipe::runtime
