// Instruction store: the publish-before-fetch plan hand-off point.
//
// Planners push compiled execution plans keyed by (iteration, replica);
// executors fetch them when the iteration starts. The paper uses Redis in host
// memory holding *serialized* instruction streams so CPU-side planning of
// future iterations overlaps GPU execution (§3). InstructionStoreInterface is
// that contract as an abstract API — fetching a missing plan is a fatal
// error, as is double-publishing, and capacity backpressure surfaces as a
// blocking Push — with two implementations today:
//   - InstructionStore (below): the in-process store, optionally holding
//     plans in the compact plan_serde byte format (serialized mode) and
//     optionally capacity-bounded (Push blocks while `capacity` plans are
//     resident, backpressuring planners that run ahead of the executors — the
//     paper's bounded Redis working set);
//   - transport::RemoteInstructionStore: a client that speaks the same API
//     across a process boundary to an InstructionStoreServer wrapping the
//     store above (src/transport/), which is how executor processes fetch
//     plans for real.
// Everything above the interface (PlanAheadService, Trainer) is agnostic to
// which one it is talking to.
#ifndef DYNAPIPE_SRC_RUNTIME_INSTRUCTION_STORE_H_
#define DYNAPIPE_SRC_RUNTIME_INSTRUCTION_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/instruction.h"

namespace dynapipe::runtime {

// Receives executor liveness reports on the planner side. The transport
// server and the in-process store forward heartbeats here; the concrete sink
// is service::HeartbeatMonitor (straggler detection), kept abstract at this
// layer so runtime does not depend on service. Implementations must be
// thread-safe: heartbeats arrive from any number of connection handlers.
class HeartbeatSink {
 public:
  virtual ~HeartbeatSink() = default;
  // One executor finished `iteration` on `replica` in `wall_ms` of wall-clock
  // time (measured from plan availability to completion).
  virtual void OnHeartbeat(int32_t replica, int64_t iteration,
                          double wall_ms) = 0;

  // --- Liveness lifecycle (optional; defaults are no-ops so lag-only sinks
  // keep working). The transport server calls these from its connection
  // handlers: an executor announces itself with a kAttach frame, leaves
  // cleanly with kDetach, and a connection that ends while replicas are
  // still attached is an *unclean* disconnect — the SIGKILLed/vanished
  // executor case the liveness machinery exists for.
  virtual void OnReplicaAttached(int32_t replica) { (void)replica; }
  virtual void OnReplicaDisconnected(int32_t replica, bool clean) {
    (void)replica;
    (void)clean;
  }
  // True once the sink has declared `replica` dead (sticky). The server uses
  // this to fence zombies: heartbeats and attaches from a dead replica get a
  // kEvicted reply instead of an ack, so a stalled-then-woken executor
  // learns its plans were re-published and exits instead of double-running.
  virtual bool IsReplicaDead(int32_t replica) const {
    (void)replica;
    return false;
  }
  // frame v4: the replica asked to leave gracefully (kDrainRequest on the
  // wire, a drain-state heartbeat slot on shm). Default no-op so lag-only
  // sinks keep working; the HeartbeatMonitor turns it into a kDraining
  // liveness event, which is what the MembershipCoordinator acts on.
  virtual void OnReplicaDrainRequested(int32_t replica) { (void)replica; }
};

// Why a plan move failed (or didn't). Recovery and rebalance coordinators
// branch on this: a vanished source means the work already happened (skip),
// a taken destination means the spare key is burned (advance and retry) —
// collapsing both into `false` is exactly the bug that silently lost reposts
// when a survivor died twice.
enum class RepostOutcome : uint8_t {
  kMoved,             // plan now resides at the destination key
  kSourceGone,        // fetched out from under us — the race is benign
  kDestinationTaken,  // destination key already published; pick another
  kUnsupported,       // backend has no recovery surface
};

// The store contract every backend implements. Thread-safe; one producer
// pipeline and any number of fetching executors.
class InstructionStoreInterface {
 public:
  virtual ~InstructionStoreInterface() = default;

  // Publishes one replica's plan. Blocks while the store is at capacity;
  // publishing a key twice aborts. After Shutdown, Push drops the plan and
  // returns immediately (the pipeline is being torn down).
  virtual void Push(int64_t iteration, int32_t replica,
                    sim::ExecutionPlan plan) = 0;

  // Fetch removes the plan (each plan is executed exactly once) and unblocks
  // one waiting Push. Fetching an unpublished plan aborts.
  virtual sim::ExecutionPlan Fetch(int64_t iteration, int32_t replica) = 0;

  virtual bool Contains(int64_t iteration, int32_t replica) const = 0;
  virtual size_t size() const = 0;

  // Unblocks and disarms all current and future Push calls. For tearing down
  // a plan-ahead pipeline whose consumer stopped fetching (e.g. the epoch
  // failed mid-flight); fetch of already-published plans still works.
  virtual void Shutdown() = 0;

  // Cumulative encoded bytes pushed through this endpoint (0 when plans never
  // cross an encode boundary) — the "wire" volume the paper's Redis store
  // would carry.
  virtual int64_t serialized_bytes_total() const = 0;

  // --- Executor liveness (optional capability) ---
  // Whether this backend has a channel carrying iteration-completion
  // heartbeats back toward the planner. Wire backends do (a kHeartbeat
  // frame), and the shared-memory segment carries per-replica heartbeat
  // slots in its header. Callers must treat "no" as a capability, never an
  // error.
  virtual bool supports_heartbeat() const { return false; }
  // Reports that this executor finished `iteration` on `replica` in `wall_ms`
  // of wall clock. Returns false — a clean no-op, not a crash — when the
  // backend has no heartbeat channel (supports_heartbeat() is false).
  virtual bool Heartbeat(int32_t replica, int64_t iteration, double wall_ms) {
    (void)replica;
    (void)iteration;
    (void)wall_ms;
    return false;
  }

  // --- Recovery surface (optional capability) ---
  // Whether this backend can enumerate and move resident plans — the
  // planner-side machinery RecoveryCoordinator and RebalanceCoordinator sit
  // on. Backends the coordinators run next to (the in-process store, the shm
  // segment) say yes; remote *clients* say no — recovery always runs where
  // the plans actually live.
  virtual bool supports_recovery() const { return false; }
  // Iterations currently published for `replica`, ascending — the unfetched
  // backlog recovery or rebalance must move.
  virtual std::vector<int64_t> PendingIterations(int32_t replica) const {
    (void)replica;
    return {};
  }
  // Moves one resident plan to a new key, verbatim (plans are byte-stable, so
  // re-publishing to a survivor is a key move, not a re-encode). Outcomes are
  // never fatal: coordinator races must degrade, not abort the trainer.
  virtual RepostOutcome Repost(int64_t src_iteration, int32_t src_replica,
                               int64_t dst_iteration, int32_t dst_replica) {
    (void)src_iteration;
    (void)src_replica;
    (void)dst_iteration;
    (void)dst_replica;
    return RepostOutcome::kUnsupported;
  }
  // Discards every resident plan for `replica` and returns how many; frees
  // capacity slots (wakes blocked pushes) like any fetch.
  virtual size_t DropReplica(int32_t replica) {
    (void)replica;
    return 0;
  }

  // --- Membership fence (optional capability, rides the recovery surface) ---
  // A draining replica must stop *receiving* work while it hands off: once
  // fenced, any Repost naming it as the destination returns
  // kDestinationTaken, so an in-flight rebalance move racing the drain burns
  // its spare key and retries elsewhere instead of stranding a plan on the
  // leaver. Process-local state: the coordinators that call Repost live in
  // the publisher process alongside the fence. Backends without a recovery
  // surface ignore the calls (there is nothing to repost anyway).
  virtual void FenceReplica(int32_t replica) { (void)replica; }
  virtual void UnfenceReplica(int32_t replica) { (void)replica; }
  virtual bool IsReplicaFenced(int32_t replica) const {
    (void)replica;
    return false;
  }
};

struct InstructionStoreOptions {
  // Encode plans on Push and decode on Fetch (service/plan_serde format).
  bool serialized = false;
  // Maximum resident plans; Push blocks until a Fetch frees a slot. 0 means
  // unbounded (the in-process default).
  size_t capacity = 0;
};

// The in-process backend (and the storage a transport server fronts).
class InstructionStore final : public InstructionStoreInterface {
 public:
  InstructionStore() = default;
  explicit InstructionStore(InstructionStoreOptions options)
      : options_(options) {}

  void Push(int64_t iteration, int32_t replica,
            sim::ExecutionPlan plan) override;
  sim::ExecutionPlan Fetch(int64_t iteration, int32_t replica) override;
  bool Contains(int64_t iteration, int32_t replica) const override;
  size_t size() const override;
  void Shutdown() override;
  int64_t serialized_bytes_total() const override;

  // Byte-level entry points for the transport server (serialized mode only):
  // the wire already carries plan_serde bytes, so the server stores and
  // returns them verbatim — no decode/encode cycle, and plans stay
  // byte-identical end to end. Same contract as Push/Fetch: PushBytes blocks
  // at capacity (returns false when Shutdown dropped the plan instead), and
  // FetchBytes of an unpublished key aborts.
  bool PushBytes(int64_t iteration, int32_t replica, std::string bytes);
  std::string FetchBytes(int64_t iteration, int32_t replica);
  // Like FetchBytes, but a missing key is nullopt instead of an abort. The
  // transport server fetches through this: after recovery reposted a dead
  // replica's plans, a zombie executor's fetch of the moved key must become
  // a kMissing reply on *its* connection, never a crash in the publisher.
  std::optional<std::string> TryFetchBytes(int64_t iteration, int32_t replica);

  // --- Recovery surface (planner side) ---
  bool supports_recovery() const override { return true; }
  std::vector<int64_t> PendingIterations(int32_t replica) const override;
  RepostOutcome Repost(int64_t src_iteration, int32_t src_replica,
                       int64_t dst_iteration, int32_t dst_replica) override;
  size_t DropReplica(int32_t replica) override;
  void FenceReplica(int32_t replica) override;
  void UnfenceReplica(int32_t replica) override;
  bool IsReplicaFenced(int32_t replica) const override;

  // Liveness relays for the transport server; forwarded to the sink (outside
  // the store lock) when one is attached, no-ops otherwise.
  void NotifyReplicaAttached(int32_t replica);
  void NotifyReplicaDisconnected(int32_t replica, bool clean);
  void NotifyReplicaDrainRequested(int32_t replica);
  bool ReplicaConsideredDead(int32_t replica) const;

  // Attaching a sink turns the heartbeat capability on: Heartbeat forwards to
  // it and returns true. Not owned; must strictly outlive the store —
  // delivery happens outside the store's lock, so swapping the sink out (or
  // to nullptr) cannot be used to quiesce in-flight Heartbeat calls.
  void set_heartbeat_sink(HeartbeatSink* sink);
  bool supports_heartbeat() const override;
  bool Heartbeat(int32_t replica, int64_t iteration, double wall_ms) override;

  const InstructionStoreOptions& options() const { return options_; }

 private:
  struct Entry {
    sim::ExecutionPlan plan;  // in-memory mode
    std::string bytes;        // serialized mode
  };

  // Shared Push/PushBytes tail: waits for headroom, rejects double publish,
  // inserts. Returns false when Shutdown dropped the entry.
  bool Insert(int64_t iteration, int32_t replica, Entry entry,
              size_t encoded_bytes);
  Entry Remove(int64_t iteration, int32_t replica);

  InstructionStoreOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  HeartbeatSink* heartbeat_sink_ = nullptr;  // guarded by mu_
  bool shutdown_ = false;
  int64_t serialized_bytes_total_ = 0;
  std::map<std::pair<int64_t, int32_t>, Entry> plans_;
  std::vector<int32_t> fenced_;  // draining replicas; guarded by mu_
};

}  // namespace dynapipe::runtime

#endif  // DYNAPIPE_SRC_RUNTIME_INSTRUCTION_STORE_H_
