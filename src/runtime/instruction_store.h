// In-process stand-in for DynaPipe's distributed instruction store (§3).
//
// Planners push compiled execution plans keyed by (iteration, replica);
// executors fetch them when the iteration starts. The paper uses Redis in host
// memory holding *serialized* instruction streams so CPU-side planning of
// future iterations overlaps GPU execution; this store keeps the same
// publish-before-fetch contract (fetching a missing plan is a fatal error, as
// is double-publishing) and adds the two properties the plan-ahead pipeline
// needs:
//   - serialized mode: plans are encoded to the compact plan_serde byte format
//     on Push and decoded on Fetch, so the contract is exercised across a real
//     encode/decode boundary instead of moving in-process objects around;
//   - a capacity bound: Push blocks while `capacity` plans are resident, which
//     backpressures planners that run ahead of the executors (the paper's
//     bounded Redis working set).
// Thread-safe; one producer pipeline and any number of fetching executors.
#ifndef DYNAPIPE_SRC_RUNTIME_INSTRUCTION_STORE_H_
#define DYNAPIPE_SRC_RUNTIME_INSTRUCTION_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "src/sim/instruction.h"

namespace dynapipe::runtime {

struct InstructionStoreOptions {
  // Encode plans on Push and decode on Fetch (service/plan_serde format).
  bool serialized = false;
  // Maximum resident plans; Push blocks until a Fetch frees a slot. 0 means
  // unbounded (the in-process default).
  size_t capacity = 0;
};

class InstructionStore {
 public:
  InstructionStore() = default;
  explicit InstructionStore(InstructionStoreOptions options)
      : options_(options) {}

  // Publishes one replica's plan. Blocks while the store is at capacity;
  // publishing a key twice aborts. After Shutdown, Push drops the plan and
  // returns immediately (the pipeline is being torn down).
  void Push(int64_t iteration, int32_t replica, sim::ExecutionPlan plan);

  // Fetch removes the plan (each plan is executed exactly once) and unblocks
  // one waiting Push. Fetching an unpublished plan aborts.
  sim::ExecutionPlan Fetch(int64_t iteration, int32_t replica);

  bool Contains(int64_t iteration, int32_t replica) const;
  size_t size() const;

  // Unblocks and disarms all current and future Push calls. For tearing down
  // a plan-ahead pipeline whose consumer stopped fetching (e.g. the epoch
  // failed mid-flight); fetch of already-published plans still works.
  void Shutdown();

  const InstructionStoreOptions& options() const { return options_; }
  // Cumulative encoded bytes pushed in serialized mode (0 otherwise) — the
  // "wire" volume the paper's Redis store would carry.
  int64_t serialized_bytes_total() const;

 private:
  struct Entry {
    sim::ExecutionPlan plan;  // in-memory mode
    std::string bytes;        // serialized mode
  };

  InstructionStoreOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  int64_t serialized_bytes_total_ = 0;
  std::map<std::pair<int64_t, int32_t>, Entry> plans_;
};

}  // namespace dynapipe::runtime

#endif  // DYNAPIPE_SRC_RUNTIME_INSTRUCTION_STORE_H_
