// In-process stand-in for DynaPipe's distributed instruction store (§3).
//
// Planners push compiled execution plans keyed by (iteration, replica); executors
// fetch them when the iteration starts. The paper uses Redis in host memory so
// CPU-side planning of future iterations overlaps GPU execution; in this
// single-process reproduction the store keeps the same publish-before-fetch
// contract (fetching a missing plan is an error) and is thread-safe so planning
// could be offloaded to worker threads.
#ifndef DYNAPIPE_SRC_RUNTIME_INSTRUCTION_STORE_H_
#define DYNAPIPE_SRC_RUNTIME_INSTRUCTION_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/sim/instruction.h"

namespace dynapipe::runtime {

class InstructionStore {
 public:
  void Push(int64_t iteration, int32_t replica, sim::ExecutionPlan plan) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto key = std::make_pair(iteration, replica);
    DYNAPIPE_CHECK_MSG(plans_.find(key) == plans_.end(),
                       "plan already published for this iteration/replica");
    plans_.emplace(key, std::move(plan));
  }

  // Fetch removes the plan (each plan is executed exactly once).
  sim::ExecutionPlan Fetch(int64_t iteration, int32_t replica) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(std::make_pair(iteration, replica));
    DYNAPIPE_CHECK_MSG(it != plans_.end(), "fetching unpublished plan");
    sim::ExecutionPlan plan = std::move(it->second);
    plans_.erase(it);
    return plan;
  }

  bool Contains(int64_t iteration, int32_t replica) const {
    std::lock_guard<std::mutex> lock(mu_);
    return plans_.find(std::make_pair(iteration, replica)) != plans_.end();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return plans_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::pair<int64_t, int32_t>, sim::ExecutionPlan> plans_;
};

}  // namespace dynapipe::runtime

#endif  // DYNAPIPE_SRC_RUNTIME_INSTRUCTION_STORE_H_
