// Parallelism / hyper-parameter grid search (§8 "Baselines").
//
// The paper grid-searches power-of-two 3D parallelism combinations (tensor
// parallelism intra-node only) for both systems, and additionally micro-batch size
// and activation-checkpointing strategy for the packing baseline, reporting each
// system at its best configuration. Evaluations run a few sampled iterations per
// configuration; configurations that OOM or cannot be planned are discarded.
#ifndef DYNAPIPE_SRC_RUNTIME_GRID_SEARCH_H_
#define DYNAPIPE_SRC_RUNTIME_GRID_SEARCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/runtime/planner.h"
#include "src/runtime/trainer.h"

namespace dynapipe {
class ThreadPool;
}  // namespace dynapipe

namespace dynapipe::runtime {

struct GridSearchOptions {
  int32_t eval_iterations = 4;
  TrainerOptions trainer;
  cost::ProfileOptions profile;
  // Share a WarmStartBook across the DynaPipe configurations (ISSUE 9 level
  // 3): every config plans the same sampled mini-batches, so the widths the
  // first-finishing config found become candidate-pruning upper bounds for
  // its neighbors. Scores and the winner are unchanged — seeds are
  // revalidated bounds (see WarmStartBook) — only planning time drops.
  bool warm_start = true;
  // Baseline-only sweeps.
  std::vector<int32_t> microbatch_sizes = {1, 2, 4, 8, 16, 32};
  std::vector<int64_t> token_counts = {1024, 2048, 4096, 8192, 16'384};
  std::vector<model::RecomputeMode> recompute_modes = {
      model::RecomputeMode::kNone, model::RecomputeMode::kSelective,
      model::RecomputeMode::kFull};
  // Evaluate parallelism configurations on this pool (profiling + sample epochs
  // are independent per configuration); null evaluates serially. Results are
  // identical either way: per-config scores land in per-config slots, and the
  // winner is merged in enumeration order with strict improvement, so ties go
  // to the earliest-enumerated configuration exactly like the serial loop.
  ThreadPool* pool = nullptr;
};

struct ConfigScore {
  model::ParallelConfig parallel;
  double tokens_per_second = 0.0;
  bool feasible = false;
  std::string note;
};

struct DynaPipeSearchResult {
  bool found = false;
  model::ParallelConfig best;
  double tokens_per_second = 0.0;
  std::vector<ConfigScore> all;
};

DynaPipeSearchResult GridSearchDynaPipe(const model::ModelConfig& config,
                                        const model::HardwareSpec& hw,
                                        int32_t num_gpus,
                                        const data::Dataset& dataset,
                                        const PlannerOptions& planner,
                                        const GridSearchOptions& options);

struct BaselineSearchResult {
  bool found = false;
  model::ParallelConfig best;
  int32_t microbatch_size = 0;
  int64_t tokens_per_microbatch = 0;
  model::RecomputeMode recompute = model::RecomputeMode::kNone;
  double tokens_per_second = 0.0;
  std::vector<ConfigScore> all;
};

BaselineSearchResult GridSearchBaseline(const model::ModelConfig& config,
                                        const model::HardwareSpec& hw,
                                        int32_t num_gpus,
                                        const data::Dataset& dataset,
                                        BaselineBatching batching,
                                        const GridSearchOptions& options);

// Baseline restricted to one parallelism configuration — the paper's "MLM+DS (C)"
// bars (baseline forced onto DynaPipe's chosen parallelism).
BaselineSearchResult GridSearchBaselineAtParallel(
    const model::ModelConfig& config, const model::HardwareSpec& hw,
    const model::ParallelConfig& parallel, const data::Dataset& dataset,
    BaselineBatching batching, const GridSearchOptions& options);

}  // namespace dynapipe::runtime

#endif  // DYNAPIPE_SRC_RUNTIME_GRID_SEARCH_H_
