// Production GroundTruth: backs the cluster simulator with the analytic stage
// performance models plus run-time execution noise. This is the "hardware" the
// planner's profiled cost model tries to predict.
#ifndef DYNAPIPE_SRC_RUNTIME_GROUND_TRUTH_H_
#define DYNAPIPE_SRC_RUNTIME_GROUND_TRUTH_H_

#include <cstdint>
#include <vector>

#include "src/model/hardware_spec.h"
#include "src/model/model_config.h"
#include "src/model/stage_perf_model.h"
#include "src/sim/cluster_sim.h"
#include "src/sim/noise.h"

namespace dynapipe::runtime {

class SimGroundTruth : public sim::GroundTruth {
 public:
  SimGroundTruth(const model::ModelConfig& config, const model::HardwareSpec& hw,
                 const model::ParallelConfig& parallel, double noise_stddev,
                 uint64_t noise_seed);

  double ComputeMs(int32_t device, const sim::Instruction& instr) override;
  double ActivationMb(int32_t device, const sim::Instruction& instr) override;
  double TransferMs(int32_t src, int32_t dst, int64_t bytes) override;

  // Per-stage static (weights/grads/optimizer) memory, for ClusterSimOptions.
  std::vector<double> StaticMemoryMb() const;

  const std::vector<model::StagePerfModel>& stages() const { return stages_; }

 private:
  model::HardwareSpec hw_;
  model::ParallelConfig parallel_;
  std::vector<model::StagePerfModel> stages_;
  sim::NoiseModel noise_;
};

}  // namespace dynapipe::runtime

#endif  // DYNAPIPE_SRC_RUNTIME_GROUND_TRUTH_H_
