#include "src/transport/remote_store.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/service/plan_serde.h"

namespace dynapipe::transport {

namespace {
common::StoreMetrics& Metrics() {
  static common::StoreMetrics& m = common::StoreMetrics::For("remote");
  return m;
}
}  // namespace

RemoteInstructionStore::RemoteInstructionStore(Connector connect)
    : connect_(std::move(connect)) {
  DYNAPIPE_CHECK(connect_ != nullptr);
}

std::shared_ptr<RemoteInstructionStore> RemoteInstructionStore::OverTransport(
    Transport* transport) {
  DYNAPIPE_CHECK(transport != nullptr);
  return std::make_shared<RemoteInstructionStore>(
      [transport] { return transport->Connect(); });
}

std::shared_ptr<RemoteInstructionStore> RemoteInstructionStore::OverUnixSocket(
    std::string path, int connect_timeout_ms) {
  return std::make_shared<RemoteInstructionStore>(
      [path = std::move(path), connect_timeout_ms] {
        return ConnectUnixSocket(path, connect_timeout_ms);
      });
}

Frame RemoteInstructionStore::Call(const Frame& request,
                                   FrameType expected_reply) const {
  std::unique_ptr<Stream> conn = connect_();
  DYNAPIPE_CHECK_MSG(conn != nullptr,
                     "remote instruction store: connect failed");
  // Per-thread wire scratch: assembling the frame reuses one buffer, so a
  // steady-state publisher's request path does no per-plan heap allocation.
  thread_local std::string wire;
  DYNAPIPE_CHECK_MSG(WriteFrame(*conn, request, &wire),
                     "remote instruction store: request write failed");
  std::string error;
  std::optional<Frame> reply = ReadFrame(*conn, &error);
  DYNAPIPE_CHECK_MSG(reply.has_value(),
                     "remote instruction store: no reply (" +
                         (error.empty() ? std::string("connection closed")
                                        : error) +
                         ")");
  if (reply->type == FrameType::kMissing) {
    // The server-side store did not hold the key. Same intentional contract
    // as the in-process store's fatal fetch-before-publish.
    DYNAPIPE_CHECK_MSG(false,
                       "remote instruction store: fetching unpublished plan");
  }
  DYNAPIPE_CHECK_MSG(reply->type == expected_reply,
                     "remote instruction store: unexpected reply type");
  return std::move(*reply);
}

std::optional<Frame> RemoteInstructionStore::TryCall(
    const Frame& request) const {
  std::unique_ptr<Stream> conn = connect_();
  if (conn == nullptr) {
    return std::nullopt;
  }
  thread_local std::string wire;
  if (!WriteFrame(*conn, request, &wire)) {
    return std::nullopt;
  }
  return ReadFrame(*conn);
}

void RemoteInstructionStore::Push(int64_t iteration, int32_t replica,
                                  sim::ExecutionPlan plan) {
  // The frame persists per thread so its payload buffer (the encode scratch)
  // keeps its capacity across pushes: steady-state publishing allocates
  // nothing once the buffer has grown to plan size.
  thread_local Frame request;
  request.type = FrameType::kPush;
  request.iteration = iteration;
  request.replica = replica;
  service::EncodeExecutionPlanInto(plan, &request.payload);
  serialized_bytes_total_.fetch_add(
      static_cast<int64_t>(request.payload.size()), std::memory_order_relaxed);
  common::StoreMetrics& metrics = Metrics();
  metrics.push_total.Add();
  metrics.bytes_pushed.Add(static_cast<int64_t>(request.payload.size()));
  const common::LatencyTimer push_timer;
  common::TraceSpan span("published", "plan", iteration, replica);
  // Blocks in Call until the server's store has headroom — the kOk *is* the
  // capacity backpressure. The whole exchange is the park time: on this
  // backend there is no way to split wire latency from the capacity wait.
  Call(request, FrameType::kOk);
  push_timer.ObserveInto(metrics.push_us);
}

sim::ExecutionPlan RemoteInstructionStore::Fetch(int64_t iteration,
                                                 int32_t replica) {
  Frame request;
  request.type = FrameType::kFetch;
  request.iteration = iteration;
  request.replica = replica;
  common::StoreMetrics& metrics = Metrics();
  metrics.fetch_total.Add();
  const common::LatencyTimer fetch_timer;
  Frame reply;
  {
    common::TraceSpan span("fetched", "plan", iteration, replica);
    reply = Call(request, FrameType::kPlanBytes);
  }
  std::string error;
  std::optional<sim::ExecutionPlan> plan;
  {
    common::TraceSpan span("decoded", "plan", iteration, replica);
    plan = service::TryDecodeExecutionPlan(reply.payload, &error);
  }
  fetch_timer.ObserveInto(metrics.fetch_us);
  DYNAPIPE_CHECK_MSG(plan.has_value(),
                     "remote instruction store: fetched plan is corrupt (" +
                         error + ")");
  return std::move(*plan);
}

bool RemoteInstructionStore::Contains(int64_t iteration,
                                      int32_t replica) const {
  Frame request;
  request.type = FrameType::kContains;
  request.iteration = iteration;
  request.replica = replica;
  const Frame reply = Call(request, FrameType::kBool);
  DYNAPIPE_CHECK_MSG(reply.payload.size() == 1,
                     "remote instruction store: malformed kBool reply");
  return reply.payload[0] != '\0';
}

size_t RemoteInstructionStore::size() const {
  Frame request;
  request.type = FrameType::kSize;
  const Frame reply = Call(request, FrameType::kCount);
  uint64_t count = 0;
  size_t pos = 0;
  DYNAPIPE_CHECK_MSG(
      service::TryParseVarint(reply.payload, &pos, &count) &&
          pos == reply.payload.size(),
      "remote instruction store: malformed kCount reply");
  return static_cast<size_t>(count);
}

void RemoteInstructionStore::Shutdown() {
  Frame request;
  request.type = FrameType::kShutdown;
  Call(request, FrameType::kOk);
}

bool RemoteInstructionStore::Heartbeat(int32_t replica, int64_t iteration,
                                       double wall_ms) {
  // The frame persists per thread so its payload scratch is reused: a
  // steady-state heartbeat (one per iteration) allocates nothing.
  thread_local Frame request;
  request.type = FrameType::kHeartbeat;
  request.iteration = iteration;
  request.replica = replica;
  request.payload.clear();
  AppendHeartbeatPayload(wall_ms, &request.payload);
  Call(request, FrameType::kOk);
  return true;
}

std::optional<sim::ExecutionPlan> RemoteInstructionStore::TryFetch(
    int64_t iteration, int32_t replica, bool* connection_lost) {
  *connection_lost = false;
  Frame request;
  request.type = FrameType::kFetch;
  request.iteration = iteration;
  request.replica = replica;
  common::StoreMetrics& metrics = Metrics();
  metrics.fetch_total.Add();
  const common::LatencyTimer fetch_timer;
  std::optional<Frame> reply;
  {
    common::TraceSpan span("fetched", "plan", iteration, replica);
    reply = TryCall(request);
  }
  if (!reply.has_value()) {
    *connection_lost = true;
    return std::nullopt;
  }
  if (reply->type == FrameType::kMissing) {
    return std::nullopt;  // key reclaimed (recovery reposted it) — not fatal
  }
  if (reply->type != FrameType::kPlanBytes) {
    *connection_lost = true;  // protocol confusion: connection-grade failure
    return std::nullopt;
  }
  std::string error;
  std::optional<sim::ExecutionPlan> plan;
  {
    common::TraceSpan span("decoded", "plan", iteration, replica);
    plan = service::TryDecodeExecutionPlan(reply->payload, &error);
  }
  fetch_timer.ObserveInto(metrics.fetch_us);
  // Corrupt plan bytes stay fatal even on the resilient path: executing a
  // damaged plan is the one thing recovery must never do.
  DYNAPIPE_CHECK_MSG(plan.has_value(),
                     "remote instruction store: fetched plan is corrupt (" +
                         error + ")");
  return plan;
}

bool RemoteInstructionStore::TryHeartbeat(int32_t replica, int64_t iteration,
                                          double wall_ms, bool* evicted) {
  *evicted = false;
  thread_local Frame request;
  request.type = FrameType::kHeartbeat;
  request.iteration = iteration;
  request.replica = replica;
  request.payload.clear();
  AppendHeartbeatPayload(wall_ms, &request.payload);
  std::optional<Frame> reply = TryCall(request);
  if (!reply.has_value()) {
    return false;
  }
  if (reply->type == FrameType::kEvicted) {
    *evicted = true;
    return true;  // delivered — and the server told us to stop
  }
  return reply->type == FrameType::kOk;
}

int64_t RemoteInstructionStore::serialized_bytes_total() const {
  return serialized_bytes_total_.load(std::memory_order_relaxed);
}

}  // namespace dynapipe::transport
