// Length-prefixed frame protocol for the instruction-store wire.
//
// Every message is one frame:
//
//   u32 little-endian body length | body
//   body = type byte, varint(request_id), zigzag(iteration),
//          zigzag(replica), payload...
//
// The payload is the rest of the body and is type-specific: plan_serde bytes
// for kPush/kPlanBytes, one 0/1 byte for kBool, a varint for kCount, empty
// otherwise. Integers reuse the plan_serde varint primitives so the whole
// wire speaks one encoding.
//
// request_id correlates replies with requests on a multiplexed connection
// (mux.h): the client tags every request with a fresh id and the server
// echoes it on the reply, so many requests can be in flight on one long-lived
// stream and the demux loop matches each reply to its waiter. The
// one-connection-per-request path sends id 0 (one varint byte) and ignores it
// on replies — on a strict request/response stream there is nothing to
// correlate. Either way, the server replying to kPush only after the store
// accepted the plan is exactly how capacity backpressure crosses the process
// boundary: the client's Push blocks waiting for that kOk until a Fetch frees
// a slot.
//
// ReadFrame never trusts the peer: a corrupt length (over kMaxFrameBytes),
// truncated body, or unparsable header field is a clean nullopt, not a crash
// in the receiving process.
#ifndef DYNAPIPE_SRC_TRANSPORT_FRAME_H_
#define DYNAPIPE_SRC_TRANSPORT_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/metrics.h"
#include "src/transport/transport.h"

namespace dynapipe::transport {

enum class FrameType : uint8_t {
  // Requests (client -> server).
  kPush = 1,       // payload = encoded plan; response kOk once stored/dropped
  kFetch = 2,      // response kPlanBytes
  kContains = 3,   // response kBool
  kSize = 4,       // response kCount
  kShutdown = 5,   // response kOk
  kHeartbeat = 6,  // executor liveness: iteration/replica in the header,
                   // payload = varint(wall-clock microseconds the iteration
                   // took); response kOk (the reply keeps the protocol
                   // strictly request/response on every transport)
  kAttach = 7,     // replica announces itself on this connection; response
                   // kOk — or kEvicted when the replica was declared dead
                   // (a zombie reconnecting after recovery moved its plans).
                   // A connection that ends after kAttach without a matching
                   // kDetach is an *unclean* disconnect: the server reports
                   // it to the liveness sink, which is how a SIGKILLed
                   // executor is detected immediately instead of after a
                   // heartbeat deadline.
  kDetach = 8,     // clean goodbye for one replica; response kOk
  kStatsRequest = 9,  // frame v3: "send me your metrics snapshot"; response
                      // kStatsReply. Travels *both* directions: any client
                      // may ask the server (this round trip is also the
                      // clock-alignment exchange at executor attach), and the
                      // server may ask a mux client that declared the stats
                      // capability in its kAttach payload — that is how the
                      // trainer pulls executor-side snapshots mid-epoch.
  kDrainRequest = 10,  // frame v4: replica (in the header) asks to leave the
                       // fleet gracefully. The server fences the replica as a
                       // repost destination and hands the event to the
                       // membership layer, which reposts the leaver's
                       // unfetched backlog to survivors *before* the reply is
                       // written — so the kDrainAck the client blocks on IS
                       // the handoff-complete signal. The replica then
                       // finishes anything already fetched and sends a normal
                       // kDetach. Response kDrainAck (kEvicted when the
                       // replica was already declared dead — too late to
                       // drain what recovery already reposted).
  // Responses (server -> client).
  kOk = 64,
  kPlanBytes = 65,
  kBool = 66,
  kCount = 67,
  kMissing = 68,   // kFetch of a key the store does not hold — after
                   // recovery reposted a dead replica's plan, the zombie's
                   // fetch gets this instead of crashing the server. Clients
                   // keeping the fatal fetch contract abort on it; resilient
                   // fetchers (the executor) treat it as "reclaimed".
  kEvicted = 69,   // kHeartbeat/kAttach from a replica declared dead: stop —
                   // your plans were re-published, exit instead of
                   // double-running them.
  kStatsReply = 70,  // frame v3: payload = varint(responder's aligned
                     // trace-clock now, µs) + metrics snapshot (codec below).
                     // A malformed payload is handled like any malformed
                     // frame: drop the connection, never crash.
  kDrainAck = 71,  // frame v4: the drain handoff finished — the replica is
                   // fenced, its unfetched backlog lives with survivors.
                   // Receiving it is the green light to finish in-flight
                   // work and kDetach.
};

// Ceiling on one frame's body; anything larger is a corrupt length field.
// Plans are a few KB — 1 GiB is beyond any real instruction stream.
inline constexpr uint64_t kMaxFrameBytes = uint64_t{1} << 30;

struct Frame {
  FrameType type = FrameType::kOk;
  // Reply-correlation id on multiplexed connections; 0 on the
  // one-connection-per-request path.
  uint64_t request_id = 0;
  int64_t iteration = 0;
  int32_t replica = 0;
  std::string payload;
};

// Writes one frame; false when the peer is gone. The overload taking
// `scratch` assembles the wire bytes in the caller's buffer instead of a
// fresh allocation — steady-state publishers (remote store, mux client) reuse
// one buffer per thread so pushing a plan does no per-plan heap allocation
// once the buffer has grown to plan size.
bool WriteFrame(Stream& stream, const Frame& frame);
bool WriteFrame(Stream& stream, const Frame& frame, std::string* scratch);

// Reads one frame; nullopt on clean EOF, peer loss, or a malformed frame
// (reason in *error when provided — empty for clean EOF before any byte).
std::optional<Frame> ReadFrame(Stream& stream, std::string* error = nullptr);

// kHeartbeat payload codec. Wall time travels as a varint of whole
// microseconds (negatives and NaN clamp to 0, values at or over 2^64 µs to
// UINT64_MAX; sub-microsecond precision is noise next to scheduler jitter),
// so the frame stays a couple of bytes for millisecond-scale iterations and
// reuses the wire's one integer encoding.
void AppendHeartbeatPayload(double wall_ms, std::string* out);
// False on a truncated/overlong varint or trailing bytes — the caller treats
// that like any malformed frame (drop the connection, never crash).
bool TryParseHeartbeatPayload(std::string_view payload, double* wall_ms);

// kStatsReply payload codec (frame v3). Layout, varints/zigzags throughout:
//
//   varint(trace_now_us)            responder's aligned trace clock (µs;
//                                   negatives clamp to 0 at encode)
//   varint(#counters)   then per counter:   varint(len) name zigzag(value)
//   varint(#gauges)     then per gauge:     varint(len) name zigzag(value)
//   varint(#histograms) then per histogram: varint(len) name varint(count)
//                                           varint(sum_us) varint(#buckets)
//                                           varint(bucket)...
//
// TryParse distrusts the peer the same way plan_serde does: entry counts are
// bounded by remaining payload bytes (a corrupt count cannot drive
// allocation), names are capped at 256 bytes, bucket vectors at
// LatencyHistogram::kNumBuckets, and trailing bytes are malformed. False
// means "treat as malformed frame" — drop the connection, never crash.
void AppendStatsPayload(int64_t trace_now_us,
                        const common::MetricsSnapshot& snapshot,
                        std::string* out);
bool TryParseStatsPayload(std::string_view payload, int64_t* trace_now_us,
                          common::MetricsSnapshot* snapshot);

// kAttach capability payload (frame v3/v4). v2 attach payloads were empty and
// remain valid (no capabilities). Byte 0 is a capability bitmask today;
// kAttachCapStats marks a connection whose client demux answers
// server-initiated kStatsRequest frames (the mux client); one-shot liveness
// attaches must NOT set it — nothing reads their stream between requests.
inline constexpr uint8_t kAttachCapStats = 0x01;
// frame v4: the attaching replica declares it may be *outside* the fleet the
// publisher configured — a mid-epoch joiner. The server's handling is
// identical either way (attach + liveness touch); the bit exists so the
// intent is explicit on the wire and a future server may refuse unknown
// replicas that do not declare it. Admission itself rides the liveness event
// stream: the MembershipCoordinator admits any unknown replica that goes
// alive, which is also how shm joiners (who have no attach frame at all —
// AnnounceReplica claims a heartbeat slot) are admitted.
inline constexpr uint8_t kAttachCapJoin = 0x02;

}  // namespace dynapipe::transport

#endif  // DYNAPIPE_SRC_TRANSPORT_FRAME_H_
