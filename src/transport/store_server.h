// Server side of cross-process plan distribution.
//
// InstructionStoreServer exposes an in-process InstructionStore over a
// Transport: the planner process owns the store and the server; executor
// processes reach it through RemoteInstructionStore (remote_store.h). This is
// the paper's Redis role (§3) — a host-memory store of serialized instruction
// streams between the dataloader-side planners and the executors.
//
// Concurrency model: one connection per request (the client opens, sends one
// frame, reads one reply). The accept loop hands each connection to its own
// handler thread, so a kPush parked in the store's capacity wait blocks only
// that handler — fetches on other connections keep draining the store and
// eventually free it, which is how Push backpressure works end to end without
// the server ever stalling its accept loop.
//
// Plan bytes pass through verbatim (InstructionStore::PushBytes/FetchBytes):
// the server never decodes a plan, so what the executor fetches is
// byte-identical to what the planner published.
#ifndef DYNAPIPE_SRC_TRANSPORT_STORE_SERVER_H_
#define DYNAPIPE_SRC_TRANSPORT_STORE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/runtime/instruction_store.h"
#include "src/transport/transport.h"

namespace dynapipe::transport {

class InstructionStoreServer {
 public:
  // Starts serving immediately. `store` must be in serialized mode (the wire
  // carries plan_serde bytes). Neither pointer is owned; both must outlive
  // the server.
  InstructionStoreServer(Transport* transport, runtime::InstructionStore* store);
  ~InstructionStoreServer();

  InstructionStoreServer(const InstructionStoreServer&) = delete;
  InstructionStoreServer& operator=(const InstructionStoreServer&) = delete;

  // Stops accepting, shuts the store down (unblocking handlers parked in a
  // capacity wait), closes live connections (unblocking handlers parked on a
  // silent client), and joins every handler thread. Idempotent; the
  // destructor calls it.
  void Stop();

  // Requests answered so far (malformed ones excluded).
  int64_t requests_served() const { return requests_served_.load(); }

 private:
  // One live connection: the stream (so Stop can close it out from under a
  // blocked read/write) and the thread serving it.
  struct Handler {
    std::shared_ptr<Stream> conn;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void HandleConnection(Stream& conn);
  // Joins and erases handlers whose request completed, so the handler list
  // stays bounded by live connections rather than growing one entry per
  // request served. Caller holds mu_.
  void ReapFinishedLocked();

  Transport* transport_;
  runtime::InstructionStore* store_;
  std::atomic<int64_t> requests_served_{0};

  std::mutex mu_;
  bool stopped_ = false;
  std::vector<std::unique_ptr<Handler>> handlers_;  // guarded by mu_
  std::thread accept_thread_;
};

}  // namespace dynapipe::transport

#endif  // DYNAPIPE_SRC_TRANSPORT_STORE_SERVER_H_
