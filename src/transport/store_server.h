// Server side of cross-process plan distribution.
//
// InstructionStoreServer exposes an in-process InstructionStore over a
// Transport: the planner process owns the store and the server; executor
// processes reach it through RemoteInstructionStore (one connection per
// request) or MuxInstructionStore (one persistent multiplexed connection).
// This is the paper's Redis role (§3) — a host-memory store of serialized
// instruction streams between the dataloader-side planners and the executors.
//
// Concurrency model: the accept loop hands each connection to its own demux
// thread, which serves request frames in a loop until the peer closes (a
// one-shot client closes after its single exchange, a mux client keeps the
// stream for its lifetime). Non-blocking requests (fetch/contains/size/
// shutdown) are answered inline; kPush is handed to the connection's push
// worker thread, which may park in the store's capacity wait — the kOk reply
// is *deferred* until the store accepted the plan, which is how blocking-Push
// backpressure crosses the process boundary without ever stalling the demux
// loop: fetches on the same (or any other) connection keep draining the
// store and eventually free the parked push. Deferred pushes per connection
// are bounded by kMuxPushCredits (mux.h); a peer that exceeds it is
// misbehaving and gets dropped.
//
// Plan bytes pass through verbatim (InstructionStore::PushBytes/FetchBytes):
// the server never decodes a plan, so what the executor fetches is
// byte-identical to what the planner published. Malformed frames (corrupt
// length, truncated body, unparsable header) drop the connection cleanly —
// the server never crashes or hangs on hostile bytes.
#ifndef DYNAPIPE_SRC_TRANSPORT_STORE_SERVER_H_
#define DYNAPIPE_SRC_TRANSPORT_STORE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/runtime/instruction_store.h"
#include "src/transport/transport.h"

namespace dynapipe::transport {

class InstructionStoreServer {
 public:
  // Starts serving immediately. `store` must be in serialized mode (the wire
  // carries plan_serde bytes). Executor kHeartbeat reports route through the
  // store's heartbeat capability (InstructionStore::set_heartbeat_sink —
  // typically a service::HeartbeatMonitor); a store without a sink
  // acknowledges and discards them, so the wire clients' capability answer
  // stays unconditional. Neither pointer is owned; both must outlive the
  // server.
  InstructionStoreServer(Transport* transport, runtime::InstructionStore* store);
  ~InstructionStoreServer();

  InstructionStoreServer(const InstructionStoreServer&) = delete;
  InstructionStoreServer& operator=(const InstructionStoreServer&) = delete;

  // Stops accepting, shuts the store down (unblocking push workers parked in
  // a capacity wait), closes live connections (unblocking demux loops parked
  // on a silent client), and joins every handler thread. Idempotent; the
  // destructor calls it.
  void Stop();

  // Requests answered so far (malformed ones excluded).
  int64_t requests_served() const { return requests_served_.load(); }

 private:
  // One live connection: the stream (so Stop can close it out from under a
  // blocked read/write) and the demux thread serving it (which owns the
  // connection's push worker).
  struct Handler {
    std::shared_ptr<Stream> conn;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void HandleConnection(Stream& conn);
  // Joins and erases handlers whose connection completed, so the handler
  // list stays bounded by live connections. Caller holds mu_.
  void ReapFinishedLocked();

  Transport* transport_;
  runtime::InstructionStore* store_;
  std::atomic<int64_t> requests_served_{0};
  // Set before Stop() tears connections down: handler threads suppress the
  // unclean-disconnect liveness report for connections *we* are closing —
  // server teardown must not declare every attached executor dead.
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  bool stopped_ = false;
  std::vector<std::unique_ptr<Handler>> handlers_;  // guarded by mu_
  std::thread accept_thread_;
};

}  // namespace dynapipe::transport

#endif  // DYNAPIPE_SRC_TRANSPORT_STORE_SERVER_H_
