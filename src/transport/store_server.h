// Server side of cross-process plan distribution.
//
// InstructionStoreServer exposes an in-process InstructionStore over a
// Transport: the planner process owns the store and the server; executor
// processes reach it through RemoteInstructionStore (one connection per
// request) or MuxInstructionStore (one persistent multiplexed connection).
// This is the paper's Redis role (§3) — a host-memory store of serialized
// instruction streams between the dataloader-side planners and the executors.
//
// Concurrency model: the accept loop hands each connection to its own demux
// thread, which serves request frames in a loop until the peer closes (a
// one-shot client closes after its single exchange, a mux client keeps the
// stream for its lifetime). Non-blocking requests (fetch/contains/size/
// shutdown) are answered inline; kPush is handed to the connection's push
// worker thread, which may park in the store's capacity wait — the kOk reply
// is *deferred* until the store accepted the plan, which is how blocking-Push
// backpressure crosses the process boundary without ever stalling the demux
// loop: fetches on the same (or any other) connection keep draining the
// store and eventually free the parked push. Deferred pushes per connection
// are bounded by kMuxPushCredits (mux.h); a peer that exceeds it is
// misbehaving and gets dropped.
//
// Plan bytes pass through verbatim (InstructionStore::PushBytes/FetchBytes):
// the server never decodes a plan, so what the executor fetches is
// byte-identical to what the planner published. Malformed frames (corrupt
// length, truncated body, unparsable header) drop the connection cleanly —
// the server never crashes or hangs on hostile bytes.
#ifndef DYNAPIPE_SRC_TRANSPORT_STORE_SERVER_H_
#define DYNAPIPE_SRC_TRANSPORT_STORE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/runtime/instruction_store.h"
#include "src/transport/transport.h"

namespace dynapipe::transport {

// One executor-side metrics snapshot pulled over the wire (frame v3
// kStatsRequest/kStatsReply): which replicas were attached on the connection
// that answered, the responder's aligned trace-clock at answer time, and its
// process-wide snapshot.
struct RemoteReplicaStats {
  std::vector<int32_t> replicas;
  int64_t remote_trace_now_us = 0;
  common::MetricsSnapshot snapshot;
};

class InstructionStoreServer {
 public:
  // Starts serving immediately. `store` must be in serialized mode (the wire
  // carries plan_serde bytes). Executor kHeartbeat reports route through the
  // store's heartbeat capability (InstructionStore::set_heartbeat_sink —
  // typically a service::HeartbeatMonitor); a store without a sink
  // acknowledges and discards them, so the wire clients' capability answer
  // stays unconditional. Neither pointer is owned; both must outlive the
  // server.
  InstructionStoreServer(Transport* transport, runtime::InstructionStore* store);
  ~InstructionStoreServer();

  InstructionStoreServer(const InstructionStoreServer&) = delete;
  InstructionStoreServer& operator=(const InstructionStoreServer&) = delete;

  // Stops accepting, shuts the store down (unblocking push workers parked in
  // a capacity wait), closes live connections (unblocking demux loops parked
  // on a silent client), and joins every handler thread. Idempotent; the
  // destructor calls it.
  void Stop();

  // Requests answered so far (malformed ones excluded).
  int64_t requests_served() const { return requests_served_.load(); }

  // Mid-epoch executor observability: sends kStatsRequest to every live
  // connection that attached a replica AND declared the stats capability in
  // its kAttach payload (the mux client does; one-shot liveness connections
  // do not — nothing reads their stream between requests), then waits up to
  // `timeout_ms` for the kStatsReply round trips. Returns whatever arrived in
  // time; a silent or vanished peer just drops out of the result. Safe to
  // call at any time, including concurrently with traffic on the polled
  // connections — server-initiated requests use their own id space and the
  // client demux answers them by type, so they never collide with the
  // client's own in-flight ids.
  std::vector<RemoteReplicaStats> CollectRemoteStats(int timeout_ms);

 private:
  // One live connection: the stream (so Stop can close it out from under a
  // blocked read/write), the demux thread serving it (which owns the
  // connection's push worker), and the per-connection write lock shared by
  // inline replies, deferred push replies, and server-initiated stats
  // requests. Held by shared_ptr so CollectRemoteStats can write to a
  // connection that races with its own reap.
  struct Handler {
    std::shared_ptr<Stream> conn;
    std::thread thread;
    std::atomic<bool> done{false};
    std::mutex write_mu;
    std::atomic<bool> stats_capable{false};
    std::mutex attach_mu;
    std::vector<int32_t> attached;  // guarded by attach_mu
  };

  void AcceptLoop();
  void HandleConnection(Handler& handler);
  // Joins and erases handlers whose connection completed, so the handler
  // list stays bounded by live connections. Caller holds mu_.
  void ReapFinishedLocked();

  Transport* transport_;
  runtime::InstructionStore* store_;
  std::atomic<int64_t> requests_served_{0};
  // Set before Stop() tears connections down: handler threads suppress the
  // unclean-disconnect liveness report for connections *we* are closing —
  // server teardown must not declare every attached executor dead.
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  bool stopped_ = false;
  std::vector<std::shared_ptr<Handler>> handlers_;  // guarded by mu_
  std::thread accept_thread_;

  // In-flight server-initiated stats pulls, keyed by the request id minted
  // for them; handler threads fill entries when the matching kStatsReply
  // lands on their connection.
  struct PendingStats {
    bool done = false;
    RemoteReplicaStats result;
  };
  std::mutex stats_mu_;
  std::condition_variable stats_cv_;
  uint64_t next_stats_request_id_ = 1;
  std::map<uint64_t, PendingStats> pending_stats_;  // guarded by stats_mu_
};

}  // namespace dynapipe::transport

#endif  // DYNAPIPE_SRC_TRANSPORT_STORE_SERVER_H_
