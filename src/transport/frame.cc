#include "src/transport/frame.h"

#include <cstring>

#include "src/common/check.h"
#include "src/service/plan_serde.h"

namespace dynapipe::transport {

bool WriteFrame(Stream& stream, const Frame& frame) {
  // The reader enforces this bound, so catch the overflow where it is a bug
  // (the sender) instead of desyncing the peer: a body over 2^32 would wrap
  // the length prefix and turn the tail into garbage frames.
  DYNAPIPE_CHECK_MSG(frame.payload.size() <= kMaxFrameBytes,
                     "frame: payload exceeds kMaxFrameBytes");
  std::string body;
  body.reserve(16 + frame.payload.size());
  body.push_back(static_cast<char>(frame.type));
  service::AppendZigzag(frame.iteration, &body);
  service::AppendZigzag(frame.replica, &body);
  body.append(frame.payload);

  char header[4];
  const uint32_t len = static_cast<uint32_t>(body.size());
  header[0] = static_cast<char>(len & 0xff);
  header[1] = static_cast<char>((len >> 8) & 0xff);
  header[2] = static_cast<char>((len >> 16) & 0xff);
  header[3] = static_cast<char>((len >> 24) & 0xff);
  // One buffer, one write: the loopback transport wakes its reader per
  // WriteAll, and socket writes stay a single syscall for small frames.
  std::string wire;
  wire.reserve(sizeof(header) + body.size());
  wire.append(header, sizeof(header));
  wire.append(body);
  return stream.WriteAll(wire.data(), wire.size());
}

std::optional<Frame> ReadFrame(Stream& stream, std::string* error) {
  const auto fail = [&](const char* what) -> std::optional<Frame> {
    if (error != nullptr) {
      *error = what;
    }
    return std::nullopt;
  };
  if (error != nullptr) {
    error->clear();
  }

  unsigned char header[4];
  if (!stream.ReadAll(header, sizeof(header))) {
    return std::nullopt;  // clean EOF (or peer loss) between frames
  }
  const uint64_t len = static_cast<uint64_t>(header[0]) |
                       static_cast<uint64_t>(header[1]) << 8 |
                       static_cast<uint64_t>(header[2]) << 16 |
                       static_cast<uint64_t>(header[3]) << 24;
  if (len == 0) {
    return fail("frame: empty body");
  }
  if (len > kMaxFrameBytes) {
    return fail("frame: implausible length");
  }
  std::string body(len, '\0');
  if (!stream.ReadAll(body.data(), body.size())) {
    return fail("frame: truncated body");
  }

  Frame frame;
  size_t pos = 0;
  frame.type = static_cast<FrameType>(static_cast<uint8_t>(body[pos++]));
  int64_t iteration = 0;
  int64_t replica = 0;
  if (!service::TryParseZigzag(body, &pos, &iteration) ||
      !service::TryParseZigzag(body, &pos, &replica) ||
      replica < INT32_MIN || replica > INT32_MAX) {
    return fail("frame: malformed header fields");
  }
  frame.iteration = iteration;
  frame.replica = static_cast<int32_t>(replica);
  frame.payload = body.substr(pos);
  return frame;
}

}  // namespace dynapipe::transport
