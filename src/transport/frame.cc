#include "src/transport/frame.h"

#include <cstring>

#include "src/common/check.h"
#include "src/common/fault_injection.h"
#include "src/service/plan_serde.h"

namespace dynapipe::transport {

namespace {

// Frames-by-type counters, resolved once per type. WriteFrame is the one
// choke point every outbound frame in both directions passes through, so
// counting here covers requests and replies alike.
common::Counter& FrameCounterFor(FrameType type) {
  common::MetricsRegistry& reg = common::MetricsRegistry::Instance();
  switch (type) {
    case FrameType::kPush: {
      static common::Counter& c = reg.GetCounter("transport_frames_push_total");
      return c;
    }
    case FrameType::kFetch: {
      static common::Counter& c =
          reg.GetCounter("transport_frames_fetch_total");
      return c;
    }
    case FrameType::kContains: {
      static common::Counter& c =
          reg.GetCounter("transport_frames_contains_total");
      return c;
    }
    case FrameType::kHeartbeat: {
      static common::Counter& c =
          reg.GetCounter("transport_frames_heartbeat_total");
      return c;
    }
    case FrameType::kAttach: {
      static common::Counter& c =
          reg.GetCounter("transport_frames_attach_total");
      return c;
    }
    case FrameType::kDetach: {
      static common::Counter& c =
          reg.GetCounter("transport_frames_detach_total");
      return c;
    }
    case FrameType::kStatsRequest:
    case FrameType::kStatsReply: {
      static common::Counter& c =
          reg.GetCounter("transport_frames_stats_total");
      return c;
    }
    case FrameType::kPlanBytes: {
      static common::Counter& c =
          reg.GetCounter("transport_frames_plan_bytes_total");
      return c;
    }
    case FrameType::kDrainRequest: {
      static common::Counter& c =
          reg.GetCounter("transport_frames_drain_total");
      return c;
    }
    case FrameType::kOk:
    case FrameType::kBool:
    case FrameType::kCount:
    case FrameType::kMissing:
    case FrameType::kEvicted:
    case FrameType::kDrainAck: {
      static common::Counter& c =
          reg.GetCounter("transport_frames_reply_total");
      return c;
    }
    case FrameType::kSize:
    case FrameType::kShutdown:
      break;
  }
  static common::Counter& c = reg.GetCounter("transport_frames_other_total");
  return c;
}

}  // namespace

bool WriteFrame(Stream& stream, const Frame& frame) {
  std::string wire;
  return WriteFrame(stream, frame, &wire);
}

bool WriteFrame(Stream& stream, const Frame& frame, std::string* scratch) {
  // The reader enforces this bound, so catch the overflow where it is a bug
  // (the sender) instead of desyncing the peer: a body over 2^32 would wrap
  // the length prefix and turn the tail into garbage frames.
  DYNAPIPE_CHECK_MSG(frame.payload.size() <= kMaxFrameBytes,
                     "frame: payload exceeds kMaxFrameBytes");
  // One buffer, one write: the loopback transport wakes its reader per
  // WriteAll, and socket writes stay a single syscall for small frames. The
  // length prefix is patched in after the body is assembled so the whole
  // frame builds in `scratch` with no second buffer.
  std::string& wire = *scratch;
  wire.clear();
  wire.append(4, '\0');  // length prefix placeholder
  wire.push_back(static_cast<char>(frame.type));
  service::AppendVarint(frame.request_id, &wire);
  service::AppendZigzag(frame.iteration, &wire);
  service::AppendZigzag(frame.replica, &wire);
  wire.append(frame.payload);
  const uint32_t len = static_cast<uint32_t>(wire.size() - 4);
  wire[0] = static_cast<char>(len & 0xff);
  wire[1] = static_cast<char>((len >> 8) & 0xff);
  wire[2] = static_cast<char>((len >> 16) & 0xff);
  wire[3] = static_cast<char>((len >> 24) & 0xff);
  // Fault point on the send path (disarmed: one relaxed atomic load). The
  // n-th frame this process writes can be dropped (close instead of write —
  // the peer sees a torn connection) or corrupted (flip a body byte — the
  // peer's ReadFrame/decoder must reject it and drop the connection).
  switch (common::FaultPoint("transport.write")) {
    case common::FaultKind::kDropConnection:
      stream.Close();
      return false;
    case common::FaultKind::kCorruptFrame:
      // Flip a bit in the type byte: every request type maps to something
      // the receiver's demux switch rejects, so the corruption is
      // *deterministically* detected and answered with a connection drop
      // (a flipped payload bit could still parse as a different valid
      // varint and sail through).
      wire[4] ^= 0x40;
      break;
    default:
      break;
  }
  FrameCounterFor(frame.type).Add();
  return stream.WriteAll(wire.data(), wire.size());
}

std::optional<Frame> ReadFrame(Stream& stream, std::string* error) {
  const auto fail = [&](const char* what) -> std::optional<Frame> {
    if (error != nullptr) {
      *error = what;
    }
    return std::nullopt;
  };
  if (error != nullptr) {
    error->clear();
  }

  unsigned char header[4];
  if (!stream.ReadAll(header, sizeof(header))) {
    return std::nullopt;  // clean EOF (or peer loss) between frames
  }
  const uint64_t len = static_cast<uint64_t>(header[0]) |
                       static_cast<uint64_t>(header[1]) << 8 |
                       static_cast<uint64_t>(header[2]) << 16 |
                       static_cast<uint64_t>(header[3]) << 24;
  if (len == 0) {
    return fail("frame: empty body");
  }
  if (len > kMaxFrameBytes) {
    return fail("frame: implausible length");
  }
  std::string body(len, '\0');
  if (!stream.ReadAll(body.data(), body.size())) {
    return fail("frame: truncated body");
  }

  Frame frame;
  size_t pos = 0;
  frame.type = static_cast<FrameType>(static_cast<uint8_t>(body[pos++]));
  uint64_t request_id = 0;
  int64_t iteration = 0;
  int64_t replica = 0;
  if (!service::TryParseVarint(body, &pos, &request_id) ||
      !service::TryParseZigzag(body, &pos, &iteration) ||
      !service::TryParseZigzag(body, &pos, &replica) ||
      replica < INT32_MIN || replica > INT32_MAX) {
    return fail("frame: malformed header fields");
  }
  frame.request_id = request_id;
  frame.iteration = iteration;
  frame.replica = static_cast<int32_t>(replica);
  frame.payload = body.substr(pos);
  return frame;
}

void AppendHeartbeatPayload(double wall_ms, std::string* out) {
  const double us = wall_ms * 1000.0;
  // Clamp the whole cast domain: negatives and NaN encode 0, anything at or
  // above 2^64 µs encodes UINT64_MAX — static_cast of an out-of-range double
  // is undefined behavior, and a broken timing source (inf, NaN) must yield
  // a garbage-but-well-formed frame, never UB in the sender.
  uint64_t v = 0;
  if (us >= 18446744073709549568.0) {  // largest double below 2^64
    v = UINT64_MAX;
  } else if (us > 0.0) {
    v = static_cast<uint64_t>(us);
  }
  service::AppendVarint(v, out);
}

bool TryParseHeartbeatPayload(std::string_view payload, double* wall_ms) {
  size_t pos = 0;
  uint64_t us = 0;
  if (!service::TryParseVarint(payload, &pos, &us) || pos != payload.size()) {
    return false;
  }
  *wall_ms = static_cast<double>(us) / 1000.0;
  return true;
}

namespace {

constexpr size_t kMaxStatsNameBytes = 256;

void AppendName(const std::string& name, std::string* out) {
  service::AppendVarint(name.size(), out);
  out->append(name);
}

bool TryParseName(std::string_view payload, size_t* pos, std::string* name) {
  uint64_t len = 0;
  if (!service::TryParseVarint(payload, pos, &len) ||
      len > kMaxStatsNameBytes || len > payload.size() - *pos) {
    return false;
  }
  name->assign(payload.data() + *pos, static_cast<size_t>(len));
  *pos += static_cast<size_t>(len);
  return true;
}

// An entry count larger than the remaining bytes is corrupt (every entry is
// at least 2 bytes); rejecting it here means a flipped count byte cannot
// drive allocation — same discipline as plan_serde's implausible counts.
bool PlausibleCount(uint64_t count, std::string_view payload, size_t pos) {
  return count <= payload.size() - pos;
}

}  // namespace

void AppendStatsPayload(int64_t trace_now_us,
                        const common::MetricsSnapshot& snapshot,
                        std::string* out) {
  service::AppendVarint(
      trace_now_us < 0 ? 0 : static_cast<uint64_t>(trace_now_us), out);
  service::AppendVarint(snapshot.counters.size(), out);
  for (const auto& c : snapshot.counters) {
    AppendName(c.name, out);
    service::AppendZigzag(c.value, out);
  }
  service::AppendVarint(snapshot.gauges.size(), out);
  for (const auto& g : snapshot.gauges) {
    AppendName(g.name, out);
    service::AppendZigzag(g.value, out);
  }
  service::AppendVarint(snapshot.histograms.size(), out);
  for (const auto& h : snapshot.histograms) {
    AppendName(h.name, out);
    service::AppendVarint(static_cast<uint64_t>(h.count < 0 ? 0 : h.count),
                          out);
    service::AppendVarint(static_cast<uint64_t>(h.sum_us < 0 ? 0 : h.sum_us),
                          out);
    service::AppendVarint(h.buckets.size(), out);
    for (const int64_t b : h.buckets) {
      service::AppendVarint(static_cast<uint64_t>(b < 0 ? 0 : b), out);
    }
  }
}

bool TryParseStatsPayload(std::string_view payload, int64_t* trace_now_us,
                          common::MetricsSnapshot* snapshot) {
  *snapshot = common::MetricsSnapshot{};
  size_t pos = 0;
  uint64_t now = 0;
  if (!service::TryParseVarint(payload, &pos, &now) || now > INT64_MAX) {
    return false;
  }
  *trace_now_us = static_cast<int64_t>(now);

  uint64_t count = 0;
  if (!service::TryParseVarint(payload, &pos, &count) ||
      !PlausibleCount(count, payload, pos)) {
    return false;
  }
  snapshot->counters.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    common::MetricsSnapshot::CounterValue c;
    if (!TryParseName(payload, &pos, &c.name) ||
        !service::TryParseZigzag(payload, &pos, &c.value)) {
      return false;
    }
    snapshot->counters.push_back(std::move(c));
  }

  if (!service::TryParseVarint(payload, &pos, &count) ||
      !PlausibleCount(count, payload, pos)) {
    return false;
  }
  snapshot->gauges.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    common::MetricsSnapshot::CounterValue g;
    if (!TryParseName(payload, &pos, &g.name) ||
        !service::TryParseZigzag(payload, &pos, &g.value)) {
      return false;
    }
    snapshot->gauges.push_back(std::move(g));
  }

  if (!service::TryParseVarint(payload, &pos, &count) ||
      !PlausibleCount(count, payload, pos)) {
    return false;
  }
  snapshot->histograms.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    common::MetricsSnapshot::HistogramValue h;
    uint64_t v = 0;
    if (!TryParseName(payload, &pos, &h.name) ||
        !service::TryParseVarint(payload, &pos, &v) || v > INT64_MAX) {
      return false;
    }
    h.count = static_cast<int64_t>(v);
    if (!service::TryParseVarint(payload, &pos, &v) || v > INT64_MAX) {
      return false;
    }
    h.sum_us = static_cast<int64_t>(v);
    uint64_t num_buckets = 0;
    if (!service::TryParseVarint(payload, &pos, &num_buckets) ||
        num_buckets > common::LatencyHistogram::kNumBuckets) {
      return false;
    }
    h.buckets.reserve(static_cast<size_t>(num_buckets));
    for (uint64_t b = 0; b < num_buckets; ++b) {
      if (!service::TryParseVarint(payload, &pos, &v) || v > INT64_MAX) {
        return false;
      }
      h.buckets.push_back(static_cast<int64_t>(v));
    }
    snapshot->histograms.push_back(std::move(h));
  }
  return pos == payload.size();
}

}  // namespace dynapipe::transport
