#include "src/transport/mux.h"

#include <utility>

#include "src/common/check.h"
#include "src/service/plan_serde.h"

namespace dynapipe::transport {

MuxInstructionStore::MuxInstructionStore(std::unique_ptr<Stream> stream)
    : stream_(std::move(stream)) {
  DYNAPIPE_CHECK_MSG(stream_ != nullptr,
                     "mux instruction store: connect failed");
  demux_thread_ = std::thread([this] { DemuxLoop(); });
}

MuxInstructionStore::~MuxInstructionStore() {
  stream_->Close();  // demux loop's ReadFrame returns, loop exits
  demux_thread_.join();
}

std::shared_ptr<MuxInstructionStore> MuxInstructionStore::OverTransport(
    Transport* transport) {
  DYNAPIPE_CHECK(transport != nullptr);
  return std::make_shared<MuxInstructionStore>(transport->Connect());
}

std::shared_ptr<MuxInstructionStore> MuxInstructionStore::OverUnixSocket(
    std::string path, int connect_timeout_ms) {
  return std::make_shared<MuxInstructionStore>(
      ConnectUnixSocket(path, connect_timeout_ms));
}

void MuxInstructionStore::DemuxLoop() {
  std::string error;
  for (;;) {
    std::optional<Frame> reply = ReadFrame(*stream_, &error);
    if (!reply.has_value()) {
      break;  // closed, torn, or malformed: the connection is over
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = waiters_.find(reply->request_id);
    if (it == waiters_.end()) {
      // A reply nobody asked for is a protocol violation; treat it like a
      // malformed frame and drop the connection rather than guess.
      error = "mux: reply for unknown request id";
      break;
    }
    it->second->reply = std::move(*reply);
    waiters_.erase(it);
    cv_.notify_all();
  }
  // Connection over (clean teardown or error): fail every outstanding waiter
  // so no caller hangs on a reply that will never come.
  stream_->Close();
  std::lock_guard<std::mutex> lock(mu_);
  connection_failed_ = true;
  connection_error_ = error.empty() ? "connection closed" : error;
  for (auto& [id, waiter] : waiters_) {
    waiter->failed = true;
  }
  waiters_.clear();
  cv_.notify_all();
}

Frame MuxInstructionStore::Call(Frame& request,
                                FrameType expected_reply) const {
  request.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  Waiter waiter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DYNAPIPE_CHECK_MSG(!connection_failed_,
                       "mux instruction store: connection lost (" +
                           connection_error_ + ")");
    waiters_.emplace(request.request_id, &waiter);
  }
  bool write_ok;
  {
    // Per-thread scratch: steady-state requests assemble their wire bytes
    // with no per-call allocation.
    thread_local std::string wire;
    std::lock_guard<std::mutex> lock(write_mu_);
    write_ok = WriteFrame(*stream_, request, &wire);
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!write_ok) {
    // The demux loop will notice the dead stream and fail the waiter; don't
    // wait for it — deregister ourselves if it has not already.
    waiters_.erase(request.request_id);
    DYNAPIPE_CHECK_MSG(false, "mux instruction store: request write failed");
  }
  cv_.wait(lock, [&] { return waiter.reply.has_value() || waiter.failed; });
  DYNAPIPE_CHECK_MSG(waiter.reply.has_value(),
                     "mux instruction store: no reply (" + connection_error_ +
                         ")");
  DYNAPIPE_CHECK_MSG(waiter.reply->type == expected_reply,
                     "mux instruction store: unexpected reply type");
  return std::move(*waiter.reply);
}

void MuxInstructionStore::Push(int64_t iteration, int32_t replica,
                               sim::ExecutionPlan plan) {
  // The frame persists per thread so its payload buffer (the encode scratch)
  // keeps its capacity across pushes: steady-state publishing allocates
  // nothing once the buffer has grown to plan size.
  thread_local Frame request;
  request.type = FrameType::kPush;
  request.iteration = iteration;
  request.replica = replica;
  service::EncodeExecutionPlanInto(plan, &request.payload);
  serialized_bytes_total_.fetch_add(
      static_cast<int64_t>(request.payload.size()), std::memory_order_relaxed);
  // Take a push credit: bounds the kPush replies the server may be holding
  // back for us. Returned when our kOk lands (or the connection dies — the
  // credits die with it).
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock,
             [&] { return push_credits_ > 0 || connection_failed_; });
    DYNAPIPE_CHECK_MSG(!connection_failed_,
                       "mux instruction store: connection lost (" +
                           connection_error_ + ")");
    --push_credits_;
  }
  // Blocks until the server's deferred kOk — the capacity backpressure.
  Call(request, FrameType::kOk);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++push_credits_;
    cv_.notify_all();
  }
}

sim::ExecutionPlan MuxInstructionStore::Fetch(int64_t iteration,
                                              int32_t replica) {
  Frame request;
  request.type = FrameType::kFetch;
  request.iteration = iteration;
  request.replica = replica;
  const Frame reply = Call(request, FrameType::kPlanBytes);
  std::string error;
  std::optional<sim::ExecutionPlan> plan =
      service::TryDecodeExecutionPlan(reply.payload, &error);
  DYNAPIPE_CHECK_MSG(plan.has_value(),
                     "mux instruction store: fetched plan is corrupt (" +
                         error + ")");
  return std::move(*plan);
}

bool MuxInstructionStore::Contains(int64_t iteration, int32_t replica) const {
  Frame request;
  request.type = FrameType::kContains;
  request.iteration = iteration;
  request.replica = replica;
  const Frame reply = Call(request, FrameType::kBool);
  DYNAPIPE_CHECK_MSG(reply.payload.size() == 1,
                     "mux instruction store: malformed kBool reply");
  return reply.payload[0] != '\0';
}

size_t MuxInstructionStore::size() const {
  Frame request;
  request.type = FrameType::kSize;
  const Frame reply = Call(request, FrameType::kCount);
  uint64_t count = 0;
  size_t pos = 0;
  DYNAPIPE_CHECK_MSG(
      service::TryParseVarint(reply.payload, &pos, &count) &&
          pos == reply.payload.size(),
      "mux instruction store: malformed kCount reply");
  return static_cast<size_t>(count);
}

void MuxInstructionStore::Shutdown() {
  Frame request;
  request.type = FrameType::kShutdown;
  Call(request, FrameType::kOk);
}

int64_t MuxInstructionStore::serialized_bytes_total() const {
  return serialized_bytes_total_.load(std::memory_order_relaxed);
}

bool MuxInstructionStore::connection_ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !connection_failed_;
}

}  // namespace dynapipe::transport
